#!/usr/bin/env python3
"""Unit tests for compare_bench.py, run from ctest (compare_bench_test).

Drives the comparator as a subprocess over temp JSON reports — the exit
status IS the contract CI depends on, so that is what gets asserted:
0 = all gates pass, 1 = regression or dropped metric, 2 = malformed input.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

COMPARE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "compare_bench.py")


def run_compare(baseline, current):
    """Writes the two dicts to temp files and runs compare_bench.py."""
    with tempfile.TemporaryDirectory() as tmp:
        base_path = os.path.join(tmp, "baseline.json")
        cur_path = os.path.join(tmp, "current.json")
        with open(base_path, "w", encoding="utf-8") as f:
            json.dump(baseline, f)
        with open(cur_path, "w", encoding="utf-8") as f:
            json.dump(current, f)
        return subprocess.run(
            [sys.executable, COMPARE, base_path, cur_path],
            capture_output=True, text=True, check=False)


def report(metrics, gates=None):
    return {"bench": "test", "metrics": metrics, "gates": gates or {}}


class CompareBenchTest(unittest.TestCase):

    def test_identical_reports_pass(self):
        base = report({"hit_rate": 0.99, "p99_us": 1500.0},
                      {"hit_rate": {"direction": "higher", "tol": 0.01},
                       "p99_us": {"direction": "lower", "tol": 0.2}})
        proc = run_compare(base, report(base["metrics"]))
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_within_tolerance_passes(self):
        base = report({"p99_us": 1000.0},
                      {"p99_us": {"direction": "lower", "tol": 0.2}})
        proc = run_compare(base, report({"p99_us": 1150.0}))
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_gated_regression_fails(self):
        base = report({"hit_rate": 0.99},
                      {"hit_rate": {"direction": "higher", "tol": 0.01}})
        proc = run_compare(base, report({"hit_rate": 0.50}))
        self.assertEqual(proc.returncode, 1, proc.stderr)
        self.assertIn("hit_rate", proc.stderr)

    def test_lower_direction_regression_fails(self):
        base = report({"p99_us": 1000.0},
                      {"p99_us": {"direction": "lower", "tol": 0.1}})
        proc = run_compare(base, report({"p99_us": 2000.0}))
        self.assertEqual(proc.returncode, 1, proc.stderr)

    def test_ungated_baseline_metric_missing_from_current_fails(self):
        # The new rule: a metric the baseline recorded but the current run
        # no longer reports is a hard failure even without a gate —
        # silently dropped coverage must not read as green.
        base = report({"hit_rate": 0.99, "partials": 96.0},
                      {"hit_rate": {"direction": "higher", "tol": 0.01}})
        proc = run_compare(base, report({"hit_rate": 0.99}))
        self.assertEqual(proc.returncode, 1, proc.stderr)
        self.assertIn("partials", proc.stderr)
        self.assertIn("missing from current", proc.stderr)

    def test_gated_metric_missing_from_current_fails(self):
        base = report({"hit_rate": 0.99},
                      {"hit_rate": {"direction": "higher", "tol": 0.01}})
        proc = run_compare(base, report({}))
        self.assertEqual(proc.returncode, 1, proc.stderr)

    def test_new_metric_in_current_is_informational(self):
        # Extra metrics in the new run (added before the baseline is
        # regenerated) must not fail the gate.
        base = report({"hit_rate": 0.99},
                      {"hit_rate": {"direction": "higher", "tol": 0.01}})
        proc = run_compare(base, report({"hit_rate": 0.99, "new_one": 1.0}))
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_gate_without_baseline_metric_warns_not_fails(self):
        base = report({}, {"future": {"direction": "higher", "tol": 0.1}})
        proc = run_compare(base, report({"future": 5.0}))
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("regenerate the baseline", proc.stderr)

    def test_near_zero_baseline_gets_absolute_slack(self):
        base = report({"miss_rate": 0.0},
                      {"miss_rate": {"direction": "lower", "tol": 0.2}})
        proc = run_compare(base, report({"miss_rate": 0.005}))
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_malformed_json_exits_2(self):
        with tempfile.TemporaryDirectory() as tmp:
            good = os.path.join(tmp, "good.json")
            bad = os.path.join(tmp, "bad.json")
            with open(good, "w", encoding="utf-8") as f:
                json.dump(report({}), f)
            with open(bad, "w", encoding="utf-8") as f:
                f.write("{not json")
            proc = subprocess.run([sys.executable, COMPARE, good, bad],
                                  capture_output=True, text=True, check=False)
            self.assertEqual(proc.returncode, 2, proc.stderr)

    def test_missing_file_exits_2(self):
        with tempfile.TemporaryDirectory() as tmp:
            good = os.path.join(tmp, "good.json")
            with open(good, "w", encoding="utf-8") as f:
                json.dump(report({}), f)
            proc = subprocess.run(
                [sys.executable, COMPARE, good,
                 os.path.join(tmp, "nope.json")],
                capture_output=True, text=True, check=False)
            self.assertEqual(proc.returncode, 2, proc.stderr)


if __name__ == "__main__":
    unittest.main()
