#!/usr/bin/env python3
"""Compare a BENCH_*.json report against its checked-in baseline.

Usage: compare_bench.py BASELINE CURRENT

The baseline file carries the gates: per metric, which direction is an
improvement ("higher" or "lower") and the fractional regression `tol`
the CI job tolerates before failing (default 0.2 = 20%, per-metric
overrides live in the baseline so it documents its own tolerances).
Metrics without a gate are printed as informational. Near-zero baselines
get a small absolute slack instead of a relative one, so a 0.0 -> 0.003
wobble on a rate metric does not fail the build.

Exit status: 0 when every gated metric is within tolerance, 1 otherwise
(failures are listed), 2 on malformed input.
"""

import json
import sys

DEFAULT_TOL = 0.2
# Absolute slack for near-zero baselines (rates/ratios that are exactly
# 0 or ~0 in the baseline run).
ABS_SLACK = 0.01


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"compare_bench: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline = load(argv[1])
    current = load(argv[2])
    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    gates = baseline.get("gates", {})

    name = current.get("bench", "?")
    print(f"[{name}] current vs baseline ({argv[1]})")
    header = f"{'metric':<32}{'baseline':>14}{'current':>14}{'delta':>10}  status"
    print(header)
    print("-" * len(header))

    failures = []
    warnings = []
    for key, gate in gates.items():
        if key not in base_metrics:
            # A gate whose metric predates the checked-in baseline (a new
            # metric gated before the baseline was regenerated) is a
            # warning, not a failure: there is nothing to compare against
            # yet. Regenerating the baseline arms the gate.
            warnings.append(
                f"{key}: gated but missing from baseline metrics "
                "(skipped; regenerate the baseline to arm this gate)"
            )
            continue
        if key not in cur_metrics:
            failures.append(f"{key}: missing from current report")
            continue
        base = float(base_metrics[key])
        cur = float(cur_metrics[key])
        tol = float(gate.get("tol", DEFAULT_TOL))
        direction = gate.get("direction", "higher")
        if direction not in ("higher", "lower"):
            failures.append(f"{key}: bad direction {direction!r} in baseline")
            continue
        slack = max(abs(base) * tol, ABS_SLACK)
        if direction == "higher":
            ok = cur >= base - slack
        else:
            ok = cur <= base + slack
        delta = (cur - base) / base * 100.0 if base != 0.0 else float("inf")
        delta_s = f"{delta:+9.1f}%" if base != 0.0 else "       n/a"
        status = "ok" if ok else f"FAIL ({direction} is better, tol {tol:.0%})"
        print(f"{key:<32}{base:>14.4g}{cur:>14.4g}{delta_s}  {status}")
        if not ok:
            failures.append(
                f"{key}: {cur:.6g} vs baseline {base:.6g} "
                f"(direction={direction}, tol={tol})"
            )

    # A metric that existed in the baseline but vanished from the new run
    # is a failure even when ungated: a silently dropped metric reads as
    # "still covered" while regressions in it go blind. (Gated metrics
    # missing from the current report were already failed above.)
    for key in sorted(set(base_metrics) - set(cur_metrics)):
        if key in gates:
            continue
        failures.append(
            f"{key}: present in baseline but missing from current report "
            "(metric dropped; regenerate the baseline if this is intended)"
        )

    informational = sorted(set(cur_metrics) - set(gates))
    if informational:
        print("\ninformational (ungated):")
        for key in informational:
            print(f"  {key:<30} {cur_metrics[key]:.6g}")

    if warnings:
        print(f"\n{len(warnings)} gate warning(s):", file=sys.stderr)
        for warning in warnings:
            print(f"  - {warning}", file=sys.stderr)

    if failures:
        print(f"\n{len(failures)} gate(s) FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall {len(gates) - len(warnings)} armed gate(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
