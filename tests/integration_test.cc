// Cross-module integration tests: full exploration sessions through the
// kernel, trace persistence round trips, rotation under live gestures,
// join resumption through the hash-table cache, and the remote split.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>

#include "cache/buffer_manager.h"
#include "cache/hash_table_cache.h"
#include "common/macros.h"
#include "core/ascii_screen.h"
#include "core/kernel.h"
#include "remote/remote_store.h"
#include "sim/motion_profile.h"
#include "sim/trace_builder.h"
#include "sim/trace_io.h"
#include "storage/csv_loader.h"
#include "storage/datagen.h"

namespace dbtouch {
namespace {

using core::ActionConfig;
using core::Kernel;
using core::KernelConfig;
using core::ResultKind;
using sim::MotionProfile;
using sim::PointCm;
using sim::TraceBuilder;
using storage::Column;
using storage::RowId;
using storage::Table;
using touch::RectCm;

sim::GestureTrace MakeSession(const Kernel& kernel) {
  TraceBuilder builder(kernel.device());
  sim::GestureTrace session =
      builder.Slide("pass1", PointCm{3.0, 1.0}, PointCm{3.0, 11.0},
                    MotionProfile::Constant(2.0));
  session.Append(builder.Pinch("zoom", PointCm{3.0, 6.0}, M_PI / 2.0, 2.0,
                               4.0, 0.5),
                 300'000);
  MotionProfile back_and_forth;
  back_and_forth.ThenMoveTo(0.7, 1.0).ThenPause(0.5).ThenMoveTo(0.3, 1.0);
  session.Append(builder.Slide("pass2", PointCm{3.0, 1.0},
                               PointCm{3.0, 13.0}, back_and_forth),
                 300'000);
  return session;
}

std::unique_ptr<Kernel> MakeSeqKernel(std::int64_t rows) {
  auto kernel = std::make_unique<Kernel>();
  std::vector<Column> cols;
  cols.push_back(storage::GenSequenceInt64("v", rows, 0, 1));
  DBTOUCH_CHECK_OK(
      kernel->RegisterTable(*Table::FromColumns("seq", std::move(cols))));
  auto obj = kernel->CreateColumnObject("seq", "v",
                                        RectCm{2.0, 1.0, 2.0, 10.0});
  DBTOUCH_CHECK_OK(obj.status());
  DBTOUCH_CHECK_OK(kernel->SetAction(*obj, ActionConfig::Summary(10)));
  return kernel;
}

TEST(IntegrationTest, TraceFileRoundTripReplaysIdentically) {
  auto kernel_a = MakeSeqKernel(500'000);
  const auto session = MakeSession(*kernel_a);

  // Persist, reload, replay on a fresh kernel.
  const std::string path =
      testing::TempDir() + "/dbtouch_session.trace";
  ASSERT_TRUE(sim::SaveTrace(session, path).ok());
  const auto loaded = sim::LoadTrace(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  kernel_a->Replay(session);
  auto kernel_b = MakeSeqKernel(500'000);
  kernel_b->Replay(*loaded);

  const auto& items_a = kernel_a->results().items();
  const auto& items_b = kernel_b->results().items();
  ASSERT_EQ(items_a.size(), items_b.size());
  for (std::size_t i = 0; i < items_a.size(); ++i) {
    EXPECT_EQ(items_a[i].row, items_b[i].row);
    EXPECT_EQ(items_a[i].kind, items_b[i].kind);
    EXPECT_EQ(items_a[i].timestamp_us, items_b[i].timestamp_us);
    EXPECT_EQ(items_a[i].value, items_b[i].value);
  }
  std::remove(path.c_str());
}

TEST(IntegrationTest, MonitoringRegimesSurfaceThroughSummaries) {
  // The monitoring generator plants latency regimes with means
  // {12,14,11,55,13,12.5,90,12}: the 4th and 7th segments are slow. A
  // single max-summary slide must surface both.
  std::vector<RowId> spikes;
  const auto table = storage::MakeMonitoringTable(500'000, 3, &spikes);
  Kernel kernel;
  ASSERT_TRUE(kernel.RegisterTable(table).ok());
  const auto latency_col = table->schema().FieldIndex("latency_ms");
  ASSERT_TRUE(latency_col.ok());
  const auto obj = kernel.CreateColumnObject("monitoring", "latency_ms",
                                             RectCm{2.0, 1.0, 2.0, 10.0});
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE(kernel
                  .SetAction(*obj, ActionConfig::Summary(
                                       10, exec::AggKind::kMax))
                  .ok());
  TraceBuilder builder(kernel.device());
  kernel.Replay(builder.Slide("scan", PointCm{3.0, 1.0}, PointCm{3.0, 11.0},
                              MotionProfile::Constant(4.0)));

  const std::int64_t n = table->row_count();
  bool regime4 = false;
  bool regime7 = false;
  for (const auto& item : kernel.results().items()) {
    if (item.value.AsDouble() < 40.0) {
      continue;
    }
    const RowId mid = (item.band_first + item.band_last) / 2;
    const std::int64_t segment = mid * 8 / n;
    regime4 |= segment == 3;
    regime7 |= segment == 6;
  }
  EXPECT_TRUE(regime4);
  EXPECT_TRUE(regime7);
}

TEST(IntegrationTest, SlidesKeepWorkingWhileRotationConverts) {
  KernelConfig config;
  // Small per-touch conversion budget so the rotation genuinely spans
  // many touches (200k rows / 2048 per step ~ 98 steps).
  config.rotation_rows_per_step = 2048;
  Kernel kernel(config);
  std::vector<Column> cols;
  cols.push_back(storage::GenSequenceInt64("id", 200'000, 0, 1));
  cols.push_back(storage::GenUniformInt32("x", 200'000, 0, 99, 1));
  ASSERT_TRUE(
      kernel.RegisterTable(*Table::FromColumns("t", std::move(cols))).ok());
  const auto obj = kernel.CreateTableObject("t", RectCm{6.0, 1.0, 6.0, 10.0});
  ASSERT_TRUE(obj.ok());
  TraceBuilder builder(kernel.device());

  // Trigger the layout rotation...
  kernel.Replay(builder.TwoFingerRotate("rot", PointCm{9.0, 6.0}, 2.0, 0.0,
                                        M_PI / 2.0, 1.0));
  ASSERT_TRUE(*kernel.rotation_in_progress(*obj));

  // ...and keep exploring while it converts in per-touch steps. The
  // rotated (horizontal) object now maps x to tuples.
  kernel.Replay(builder.Slide("during", PointCm{6.5, 3.0},
                              PointCm{15.5, 3.0},
                              MotionProfile::Constant(3.0),
                              kernel.clock().now() + 200'000));
  EXPECT_GT(kernel.results().CountKind(ResultKind::kValue), 10);

  // The slide's touches drove conversion steps.
  while (*kernel.rotation_in_progress(*obj)) {
    kernel.PumpMaintenance();
  }
  const auto table = kernel.catalog().Get("t");
  EXPECT_EQ((*table)->layout(), storage::MajorOrder::kRowMajor);
  EXPECT_EQ((*table)->GetValue(123'456, 0).AsInt(), 123'456);
  // Results produced during conversion read consistent (old-layout) data.
  for (const auto& item : kernel.results().items()) {
    if (item.kind == ResultKind::kValue && item.attribute == 0) {
      EXPECT_EQ(item.value.AsInt(), item.row);
    }
  }
}

TEST(IntegrationTest, JoinResumesThroughHashTableCache) {
  const Column left = storage::GenSequenceInt64("k", 10'000, 0, 1);
  const Column right = storage::GenSequenceInt64("k", 10'000, 0, 1);
  cache::HashTableCache table_cache(4);
  const std::string key = cache::HashTableCache::MakeKey("L.k=R.k", 0);

  // Session 1: feed some left rows, cache the join state.
  {
    auto join = std::make_shared<exec::SymmetricHashJoin>(left.View(),
                                                          right.View());
    for (RowId r = 0; r < 100; ++r) {
      join->Feed(exec::JoinSide::kLeft, r);
    }
    table_cache.Put(key, join);
  }
  // Session 2 (later, same granularity): resume and probe from the right.
  auto resumed = table_cache.Get(key);
  ASSERT_NE(resumed, nullptr);
  EXPECT_EQ(resumed->left_fed(), 100);
  std::int64_t matches = 0;
  for (RowId r = 0; r < 100; ++r) {
    matches += static_cast<std::int64_t>(
        resumed->Feed(exec::JoinSide::kRight, r).size());
  }
  EXPECT_EQ(matches, 100);  // Every probe found its cached partner.
}

TEST(IntegrationTest, RemoteHybridMatchesServerAtLocalFidelity) {
  Column base = storage::GenSequenceInt64("v", 1 << 18, 0, 1);
  remote::RemoteServer server(base.View());
  remote::SimulatedNetwork network;
  remote::RemoteClient::Config config;
  config.strategy = remote::RemoteStrategy::kBatchedHybrid;
  remote::RemoteClient client(&server, &network, config);

  // Touch rows derived from a recorded slide's mapped positions.
  sim::TouchDevice device;
  TraceBuilder builder(device);
  const auto trace = builder.Slide("s", PointCm{3.0, 1.0}, PointCm{3.0, 11.0},
                                   MotionProfile::Constant(2.0));
  const std::int64_t n = base.row_count();
  for (const auto& event : trace.events) {
    const RowId row = touch::MapPositionToRow(event.position.y - 1.0, 10.0,
                                              n);
    const double answer = client.OnTouch(event.timestamp_us, row);
    // The instant answer equals the value of the nearest local-level
    // sample — a bounded-error approximation of the touched row.
    const std::int64_t stride = std::int64_t{1} << client.local_level();
    EXPECT_NEAR(answer, static_cast<double>(row),
                static_cast<double>(stride));
  }
  client.Flush(trace.duration_us());
  EXPECT_GT(network.requests_sent(), 0);
  EXPECT_LT(network.requests_sent(), 8);  // Batched, not per touch.
}

TEST(IntegrationTest, AsciiScreenShowsObjectsAndResults) {
  auto kernel = MakeSeqKernel(100'000);
  TraceBuilder builder(kernel->device());
  kernel->Replay(builder.Slide("s", PointCm{3.0, 1.0}, PointCm{3.0, 11.0},
                               MotionProfile::Constant(1.0)));
  const std::string screen = core::RenderScreen(*kernel);
  // Object frame and name are drawn.
  EXPECT_NE(screen.find("seq.v"), std::string::npos);
  EXPECT_NE(screen.find('+'), std::string::npos);
  EXPECT_NE(screen.find('|'), std::string::npos);
  // At least one fresh result value is legible (digits on screen).
  EXPECT_NE(screen.find_first_of("0123456789"), std::string::npos);
}

TEST(IntegrationTest, CsvLoadsStraightIntoExploration) {
  // Raw file -> catalog -> data object -> slide: the full adoption path.
  std::string csv = "reading\n";
  for (int i = 0; i < 20'000; ++i) {
    csv += std::to_string(i % 500) + "\n";
  }
  const auto table = storage::LoadCsv(csv, "sensor");
  ASSERT_TRUE(table.ok()) << table.status();
  Kernel kernel;
  ASSERT_TRUE(kernel.RegisterTable(*table).ok());
  const auto obj = kernel.CreateColumnObject("sensor", "reading",
                                             RectCm{2.0, 1.0, 2.0, 10.0});
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE(kernel.SetAction(*obj, ActionConfig::Summary(10)).ok());
  TraceBuilder builder(kernel.device());
  kernel.Replay(builder.Slide("s", PointCm{3.0, 1.0}, PointCm{3.0, 11.0},
                              MotionProfile::Constant(2.0)));
  ASSERT_GT(kernel.results().size(), 20);
  // Sawtooth data with period 500: every band average stays within the
  // sawtooth's value range.
  for (const auto& item : kernel.results().items()) {
    EXPECT_GE(item.value.AsDouble(), 0.0);
    EXPECT_LE(item.value.AsDouble(), 500.0);
  }
}

TEST(IntegrationTest, MultiObjectSessionKeepsStatsSeparate) {
  Kernel kernel;
  for (const char* name : {"t1", "t2"}) {
    std::vector<Column> cols;
    cols.push_back(storage::GenSequenceInt64("v", 50'000, 0, 1));
    ASSERT_TRUE(
        kernel.RegisterTable(*Table::FromColumns(name, std::move(cols)))
            .ok());
  }
  const auto obj1 =
      kernel.CreateColumnObject("t1", "v", RectCm{1.0, 1.0, 2.0, 10.0});
  const auto obj2 =
      kernel.CreateColumnObject("t2", "v", RectCm{8.0, 1.0, 2.0, 10.0});
  ASSERT_TRUE(obj1.ok());
  ASSERT_TRUE(obj2.ok());
  TraceBuilder builder(kernel.device());
  auto session = builder.Slide("s1", PointCm{2.0, 1.0}, PointCm{2.0, 11.0},
                               MotionProfile::Constant(1.0));
  session.Append(builder.Slide("s2", PointCm{9.0, 1.0}, PointCm{9.0, 11.0},
                               MotionProfile::Constant(2.0)),
                 200'000);
  kernel.Replay(session);

  const auto stats1 = kernel.object_stats(*obj1);
  const auto stats2 = kernel.object_stats(*obj2);
  ASSERT_TRUE(stats1.ok());
  ASSERT_TRUE(stats2.ok());
  EXPECT_GT((*stats1)->touches, 5);
  EXPECT_GT((*stats2)->touches, (*stats1)->touches);  // Slower slide.
  EXPECT_EQ((*stats1)->entries_returned + (*stats2)->entries_returned,
            kernel.stats().entries_returned);
}

TEST(IntegrationTest, PagedSlideMatchesUnpagedBeyondBudget) {
  // A column larger than the buffer budget, explored with base-data
  // summaries (sampling off) plus a back-and-forth slide: the paged path
  // must return byte-identical results to raw whole-column reads while
  // resident bytes never exceed the budget.
  const std::int64_t rows = 262'144;  // 2 MiB of doubles.
  const auto make_kernel = [&](bool paged) {
    KernelConfig config;
    config.use_sampling = false;  // Every summary reads base data.
    config.use_buffer_manager = paged;
    config.buffer.budget_bytes = 128 << 10;  // 6% of the column.
    config.buffer.rows_per_block = 4'096;
    auto kernel = std::make_unique<Kernel>(config);
    std::vector<Column> cols;
    cols.push_back(storage::GenSegmentedDouble(
        "v", rows, {5.0, -3.0, 12.0, 0.5}, 1.0, 42));
    DBTOUCH_CHECK_OK(
        kernel->RegisterTable(*Table::FromColumns("big", std::move(cols))));
    auto obj = kernel->CreateColumnObject("big", "v",
                                          RectCm{2.0, 1.0, 2.0, 10.0});
    DBTOUCH_CHECK_OK(obj.status());
    DBTOUCH_CHECK_OK(kernel->SetAction(*obj, ActionConfig::Summary(3'000)));
    return kernel;
  };
  const auto make_trace = [](const Kernel& kernel) {
    TraceBuilder builder(kernel.device());
    sim::GestureTrace trace =
        builder.Slide("down", PointCm{3.0, 1.0}, PointCm{3.0, 11.0},
                      MotionProfile::Constant(4.0));
    trace.Append(builder.Slide("back", PointCm{3.0, 11.0}, PointCm{3.0, 4.0},
                               MotionProfile::Constant(2.0)),
                 150'000);
    return trace;
  };

  auto unpaged = make_kernel(false);
  auto paged = make_kernel(true);
  unpaged->Replay(make_trace(*unpaged));
  paged->Replay(make_trace(*paged));

  const auto& expect = unpaged->results().items();
  const auto& got = paged->results().items();
  ASSERT_GT(expect.size(), 20u);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(got[i].kind, expect[i].kind);
    EXPECT_EQ(got[i].row, expect[i].row);
    EXPECT_EQ(got[i].band_first, expect[i].band_first);
    EXPECT_EQ(got[i].band_last, expect[i].band_last);
    EXPECT_EQ(got[i].rows_aggregated, expect[i].rows_aggregated);
    // Bit-identical: both paths feed the aggregate in ascending row order.
    EXPECT_EQ(got[i].value.AsDouble(), expect[i].value.AsDouble())
        << "result " << i;
  }
  EXPECT_EQ(paged->stats().rows_scanned, unpaged->stats().rows_scanned);

  const cache::BufferManager& pool =
      paged->shared_state()->buffer_manager();
  const cache::BlockCacheStats stats = pool.stats();
  EXPECT_GT(stats.faults, 0);
  EXPECT_GT(rows * 8, pool.config().budget_bytes);  // Data exceeds budget.
  EXPECT_LE(stats.resident_bytes, pool.config().budget_bytes);
  EXPECT_LE(stats.peak_resident_bytes, pool.config().budget_bytes);
  // Gesture ended: the session's working pins were released, so nothing
  // idles pinned in the shared pool.
  EXPECT_EQ(stats.pinned_blocks, 0);
}

TEST(IntegrationTest, KernelJoinResumesThroughHashTableCache) {
  // Slide over the left column object, destroy both objects, recreate
  // them, re-enable the join: the session's hash-table cache must resume
  // the old join state, so right-side touches match immediately.
  Kernel kernel;
  for (const char* name : {"L", "R"}) {
    std::vector<Column> cols;
    cols.push_back(storage::GenSequenceInt64("k", 20'000, 0, 1));
    ASSERT_TRUE(
        kernel.RegisterTable(*Table::FromColumns(name, std::move(cols)))
            .ok());
  }
  const RectCm left_frame{1.0, 1.0, 2.0, 10.0};
  const RectCm right_frame{8.0, 1.0, 2.0, 10.0};
  auto left = kernel.CreateColumnObject("L", "k", left_frame);
  auto right = kernel.CreateColumnObject("R", "k", right_frame);
  ASSERT_TRUE(left.ok() && right.ok());
  ASSERT_TRUE(kernel.EnableJoin(*left, *right).ok());
  EXPECT_EQ(kernel.stats().join_cache_hits, 0);

  TraceBuilder builder(kernel.device());
  kernel.Replay(builder.Slide("feed-left", PointCm{2.0, 1.0},
                              PointCm{2.0, 11.0},
                              MotionProfile::Constant(2.0)));
  ASSERT_GT(kernel.stats().slide_steps, 10);
  EXPECT_EQ(kernel.results().CountKind(ResultKind::kJoinMatch), 0);

  ASSERT_TRUE(kernel.DestroyObject(*left).ok());
  ASSERT_TRUE(kernel.DestroyObject(*right).ok());
  left = kernel.CreateColumnObject("L", "k", left_frame);
  right = kernel.CreateColumnObject("R", "k", right_frame);
  ASSERT_TRUE(left.ok() && right.ok());
  ASSERT_TRUE(kernel.EnableJoin(*left, *right).ok());
  EXPECT_EQ(kernel.stats().join_cache_hits, 1);

  // Same rows from the right: every touch finds its cached left partner.
  kernel.Replay(builder.Slide("probe-right", PointCm{9.0, 1.0},
                              PointCm{9.0, 11.0},
                              MotionProfile::Constant(2.0),
                              kernel.clock().now() + 500'000));
  EXPECT_GT(kernel.results().CountKind(ResultKind::kJoinMatch), 10);
}

}  // namespace
}  // namespace dbtouch
