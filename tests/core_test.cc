// Integration tests for the dbTouch kernel: the full per-touch pipeline
// (touch -> gesture -> map -> execute -> result) driven by synthetic
// gesture traces, exactly as the benchmarks and examples drive it.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/kernel.h"
#include "sim/motion_profile.h"
#include "sim/trace_builder.h"
#include "storage/datagen.h"

namespace dbtouch::core {
namespace {

using sim::MotionProfile;
using sim::PointCm;
using sim::TraceBuilder;
using storage::Column;
using storage::Table;
using touch::RectCm;

constexpr std::int64_t kRows = 100'000;

/// A kernel with one registered column of sequential values 0..n-1 and a
/// 10cm-tall column object at x=2..4, y=1..11.
class KernelFixture : public testing::Test {
 protected:
  void SetUp() override { Rebuild(KernelConfig{}); }

  void Rebuild(KernelConfig config) {
    kernel_ = std::make_unique<Kernel>(config);
    std::vector<Column> cols;
    cols.push_back(storage::GenSequenceInt64("v", kRows, 0, 1));
    ASSERT_TRUE(kernel_
                    ->RegisterTable(
                        *Table::FromColumns("seq", std::move(cols)))
                    .ok());
    auto id = kernel_->CreateColumnObject("seq", "v",
                                          RectCm{2.0, 1.0, 2.0, 10.0});
    ASSERT_TRUE(id.ok()) << id.status();
    object_ = *id;
  }

  TraceBuilder builder() const { return TraceBuilder(kernel_->device()); }

  /// Slide top-to-bottom over the object, `duration_s` long.
  sim::GestureTrace Slide(double duration_s) const {
    return builder().Slide("slide", PointCm{3.0, 1.0}, PointCm{3.0, 11.0},
                           MotionProfile::Constant(duration_s));
  }

  std::unique_ptr<Kernel> kernel_;
  ObjectId object_ = 0;
};

TEST_F(KernelFixture, TapRevealsSingleValue) {
  // Tap the middle of the object: row ~ n/2 (paper: "a single tap
  // anywhere on a column data object reveals a single column value").
  kernel_->Replay(builder().Tap("tap", PointCm{3.0, 6.0}));
  ASSERT_EQ(kernel_->results().size(), 1);
  const ResultItem& item = kernel_->results().back();
  EXPECT_EQ(item.kind, ResultKind::kValue);
  EXPECT_NEAR(static_cast<double>(item.row), kRows / 2.0, kRows * 0.01);
  EXPECT_EQ(item.value.AsInt(), item.row);  // Sequential data.
  EXPECT_EQ(kernel_->stats().taps, 1);
}

TEST_F(KernelFixture, TapOutsideObjectsDoesNothing) {
  kernel_->Replay(builder().Tap("tap", PointCm{15.0, 13.0}));
  EXPECT_EQ(kernel_->results().size(), 0);
}

TEST_F(KernelFixture, SlideScanSurfacesEntriesAsGestureProgresses) {
  kernel_->Replay(Slide(2.0));
  const auto& results = kernel_->results().items();
  ASSERT_GT(results.size(), 20u);
  // Rows grow monotonically with the downward slide.
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i].row, results[i - 1].row);
    EXPECT_GE(results[i].timestamp_us, results[i - 1].timestamp_us);
  }
  // First touches map near the top, last near the bottom.
  EXPECT_LT(results.front().row, kRows / 10);
  EXPECT_GT(results.back().row, kRows * 9 / 10);
}

TEST_F(KernelFixture, SlowerSlideReturnsMoreEntries) {
  kernel_->Replay(Slide(0.5));
  const auto fast = kernel_->stats().entries_returned;
  Rebuild(KernelConfig{});
  kernel_->Replay(Slide(4.0));
  const auto slow = kernel_->stats().entries_returned;
  EXPECT_GT(slow, fast * 5);  // Paper Figure 4(a): ~8 vs ~60.
}

TEST_F(KernelFixture, AggregateActionMaintainsRunningAverage) {
  ASSERT_TRUE(kernel_
                  ->SetAction(object_, ActionConfig::Aggregate(
                                           exec::AggKind::kAvg))
                  .ok());
  kernel_->Replay(Slide(1.0));
  const auto& results = kernel_->results().items();
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results.back().kind, ResultKind::kAggregate);
  // Sliding uniformly over 0..n-1 top to bottom: the running average of
  // touched entries approaches n/2.
  EXPECT_NEAR(results.back().value.AsDouble(), kRows / 2.0, kRows * 0.06);
  // rows_aggregated grows monotonically.
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i].rows_aggregated, results[i - 1].rows_aggregated);
  }
}

TEST_F(KernelFixture, SummaryActionAggregatesBands) {
  ASSERT_TRUE(
      kernel_->SetAction(object_, ActionConfig::Summary(10)).ok());
  kernel_->Replay(Slide(1.0));
  const auto& results = kernel_->results().items();
  ASSERT_FALSE(results.empty());
  for (const ResultItem& item : results) {
    EXPECT_EQ(item.kind, ResultKind::kSummary);
    EXPECT_LE(item.band_first, item.row);
    EXPECT_GE(item.band_last, item.row);
    // Sequential data: the band average approximates the band midpoint.
    // Sample entries sit at stride starts, so the approximation is offset
    // by up to half the sample stride.
    ASSERT_GT(item.rows_aggregated, 0);
    const double stride =
        static_cast<double>(item.band_last - item.band_first + 1) /
        static_cast<double>(item.rows_aggregated);
    const double mid =
        static_cast<double>(item.band_first + item.band_last) / 2.0;
    EXPECT_NEAR(item.value.AsDouble(), mid, stride);
  }
}

TEST_F(KernelFixture, SummaryUsesSampleLevelsWhenEnabled) {
  ASSERT_TRUE(
      kernel_->SetAction(object_, ActionConfig::Summary(10)).ok());
  kernel_->Replay(Slide(1.0));
  const auto stats = kernel_->object_stats(object_);
  ASSERT_TRUE(stats.ok());
  // 100k rows over a 10cm object (~521 positions): the level policy picks
  // a coarse level, so summaries are approximate and cheap.
  EXPECT_GT((*stats)->last_level_used, 0);
  EXPECT_TRUE(kernel_->results().back().approximate);
}

TEST_F(KernelFixture, SamplingOffReadsBaseBands) {
  KernelConfig config;
  config.use_sampling = false;
  Rebuild(config);
  ASSERT_TRUE(
      kernel_->SetAction(object_, ActionConfig::Summary(10)).ok());
  kernel_->Replay(Slide(1.0));
  ASSERT_GT(kernel_->results().size(), 0);
  EXPECT_FALSE(kernel_->results().back().approximate);
  // Base bands read stride*k entries per touch: far more rows scanned.
  const auto base_rows = kernel_->stats().rows_scanned;
  Rebuild(KernelConfig{});
  ASSERT_TRUE(
      kernel_->SetAction(object_, ActionConfig::Summary(10)).ok());
  kernel_->Replay(Slide(1.0));
  EXPECT_LT(kernel_->stats().rows_scanned, base_rows / 4);
}

TEST_F(KernelFixture, FilteredScanOnlySurfacesMatches) {
  // Values are 0..n-1; keep only > 90% of n.
  ASSERT_TRUE(kernel_
                  ->SetAction(object_,
                              ActionConfig::Filter(exec::Predicate(
                                  exec::CompareOp::kGt, kRows * 0.9)))
                  .ok());
  kernel_->Replay(Slide(2.0));
  const auto& results = kernel_->results().items();
  ASSERT_FALSE(results.empty());
  for (const ResultItem& item : results) {
    EXPECT_EQ(item.kind, ResultKind::kFilterMatch);
    EXPECT_GT(item.value.AsInt(), static_cast<std::int64_t>(kRows * 0.9));
  }
  // Roughly 10% of touches pass.
  EXPECT_LT(results.size(), 10u);
}

TEST_F(KernelFixture, ZoneMapPrunesNonMatchingTouches) {
  // Sequential values 0..n-1 with a predicate matching only the last 2%:
  // zone maps answer "cannot match" for ~98% of touches without a read.
  const exec::Predicate top_slice(exec::CompareOp::kGt, kRows * 0.98);
  ASSERT_TRUE(kernel_
                  ->SetAction(object_, ActionConfig::Filter(
                                           top_slice, /*use_zone_map=*/true))
                  .ok());
  kernel_->Replay(Slide(2.0));
  const auto& stats = kernel_->stats();
  EXPECT_GT(stats.rows_pruned, stats.rows_scanned * 10);
  // Pruning never changes the answer: rerun without the zone map.
  const auto matches_with = kernel_->results().size();
  Rebuild(KernelConfig{});
  ASSERT_TRUE(kernel_
                  ->SetAction(object_, ActionConfig::Filter(
                                           top_slice, /*use_zone_map=*/false))
                  .ok());
  kernel_->Replay(Slide(2.0));
  EXPECT_EQ(kernel_->results().size(), matches_with);
  EXPECT_EQ(kernel_->stats().rows_pruned, 0);
}

TEST_F(KernelFixture, PinchZoomInGrowsObjectAndGranularity) {
  const auto view = kernel_->object_view(object_);
  ASSERT_TRUE(view.ok());
  const double before = (*view)->tuple_axis_extent();
  kernel_->Replay(builder().Pinch("zoom", PointCm{3.0, 6.0}, M_PI / 2.0,
                                  2.0, 6.0, 1.0));
  const double after = (*view)->tuple_axis_extent();
  EXPECT_GT(after, before * 2.0);  // ~3x pinch.
  EXPECT_GT(kernel_->stats().pinch_steps, 0);
}

TEST_F(KernelFixture, ZoomOutShrinksWithinClamp) {
  KernelConfig config;
  config.zoom_min_extent_cm = 2.0;
  Rebuild(config);
  const auto view = kernel_->object_view(object_);
  kernel_->Replay(builder().Pinch("shrink", PointCm{3.0, 6.0}, M_PI / 2.0,
                                  8.0, 1.0, 1.0));
  EXPECT_GE((*view)->tuple_axis_extent(), 2.0);
}

TEST_F(KernelFixture, SessionTracksGesturesAndEntries) {
  kernel_->Replay(Slide(1.0));
  kernel_->sessions().EndSession(kernel_->clock().now());
  ASSERT_EQ(kernel_->sessions().completed().size(), 1u);
  const SessionSummary& s = kernel_->sessions().completed()[0];
  EXPECT_EQ(s.gestures, 1);
  EXPECT_GT(s.entries_returned, 5);
  EXPECT_GT(s.touches, 5);
}

TEST_F(KernelFixture, IdleGapSplitsSessions) {
  KernelConfig config;
  config.session_idle_gap_us = 1'000'000;
  Rebuild(config);
  auto trace = Slide(0.5);
  trace.Append(Slide(0.5), /*gap_us=*/5'000'000);  // 5s idle.
  kernel_->Replay(trace);
  kernel_->sessions().EndSession(kernel_->clock().now());
  EXPECT_EQ(kernel_->sessions().completed().size(), 2u);
}

TEST_F(KernelFixture, ResultsFadeAfterWindow) {
  kernel_->Replay(Slide(1.0));
  const sim::Micros end = kernel_->clock().now();
  const auto visible_now = kernel_->results().VisibleAt(end);
  EXPECT_GT(visible_now.size(), 0u);
  // Recent results are bolder than older ones.
  for (std::size_t i = 1; i < visible_now.size(); ++i) {
    EXPECT_GE(visible_now[i].opacity, visible_now[i - 1].opacity);
  }
  const auto visible_later =
      kernel_->results().VisibleAt(end + kernel_->results().fade_us() + 1);
  EXPECT_TRUE(visible_later.empty());
}

TEST_F(KernelFixture, ObjectStatsTrackTouches) {
  kernel_->Replay(Slide(1.0));
  const auto stats = kernel_->object_stats(object_);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT((*stats)->touches, 5);
  EXPECT_EQ((*stats)->entries_returned,
            kernel_->stats().entries_returned);
}

TEST_F(KernelFixture, DestroyObjectStopsRouting) {
  ASSERT_TRUE(kernel_->DestroyObject(object_).ok());
  kernel_->Replay(Slide(1.0));
  EXPECT_EQ(kernel_->results().size(), 0);
  EXPECT_TRUE(kernel_->DestroyObject(object_).IsNotFound());
}

TEST_F(KernelFixture, SetActionValidates) {
  EXPECT_TRUE(kernel_->SetAction(999, ActionConfig::Scan()).IsNotFound());
  // Group-by needs a table object.
  EXPECT_TRUE(kernel_
                  ->SetAction(object_, ActionConfig::GroupBy(
                                           0, 0, exec::AggKind::kSum))
                  .IsInvalidArgument());
}

// ---- ResultStream & SessionTracker units -----------------------------------

TEST(ResultStreamTest, VisibleAtHonoursFadeWindow) {
  ResultStream stream(/*fade_us=*/1'000'000);
  ResultItem item;
  item.timestamp_us = 500'000;
  item.value = storage::Value(std::int64_t{7});
  stream.Append(item);
  EXPECT_TRUE(stream.VisibleAt(400'000).empty());   // Not yet produced.
  ASSERT_EQ(stream.VisibleAt(500'000).size(), 1u);  // Fresh: opacity 1.
  EXPECT_DOUBLE_EQ(stream.VisibleAt(500'000)[0].opacity, 1.0);
  ASSERT_EQ(stream.VisibleAt(1'000'000).size(), 1u);
  EXPECT_DOUBLE_EQ(stream.VisibleAt(1'000'000)[0].opacity, 0.5);
  EXPECT_TRUE(stream.VisibleAt(1'500'000).empty());  // Fully faded.
}

TEST(ResultStreamTest, CountKindFilters) {
  ResultStream stream;
  ResultItem a;
  a.kind = ResultKind::kSummary;
  ResultItem b;
  b.kind = ResultKind::kValue;
  stream.Append(a);
  stream.Append(a);
  stream.Append(b);
  EXPECT_EQ(stream.CountKind(ResultKind::kSummary), 2);
  EXPECT_EQ(stream.CountKind(ResultKind::kValue), 1);
  EXPECT_EQ(stream.CountKind(ResultKind::kJoinMatch), 0);
  stream.Clear();
  EXPECT_EQ(stream.size(), 0);
}

TEST(ResultStreamTest, KindNamesAreStable) {
  EXPECT_STREQ(ResultKindName(ResultKind::kValue), "value");
  EXPECT_STREQ(ResultKindName(ResultKind::kSummary), "summary");
  EXPECT_STREQ(ResultKindName(ResultKind::kJoinMatch), "join-match");
  EXPECT_STREQ(ResultKindName(ResultKind::kGroupUpdate), "group-update");
}

TEST(SessionTrackerTest, GesturesWithinGapShareASession) {
  SessionTracker tracker(/*idle_gap_us=*/1'000'000);
  tracker.OnGestureBegin(0);
  tracker.OnTouch(100'000);
  tracker.OnGestureBegin(600'000);  // Within the gap.
  tracker.EndSession(700'000);
  ASSERT_EQ(tracker.completed().size(), 1u);
  EXPECT_EQ(tracker.completed()[0].gestures, 2);
}

TEST(SessionTrackerTest, GapOpensNewSession) {
  SessionTracker tracker(/*idle_gap_us=*/1'000'000);
  tracker.OnGestureBegin(0);
  tracker.OnTouch(100'000);
  tracker.OnGestureBegin(5'000'000);  // Past the gap.
  tracker.EndSession(5'100'000);
  ASSERT_EQ(tracker.completed().size(), 2u);
  EXPECT_EQ(tracker.completed()[0].ended_us, 100'000);
  EXPECT_EQ(tracker.completed()[1].id, 2);
}

TEST(SessionTrackerTest, AccountingOnlyWhileActive) {
  SessionTracker tracker;
  tracker.AddEntries(5);  // No session: dropped.
  tracker.OnGestureBegin(0);
  tracker.AddEntries(3);
  tracker.AddRowsScanned(21);
  tracker.EndSession(10);
  EXPECT_EQ(tracker.completed()[0].entries_returned, 3);
  EXPECT_EQ(tracker.completed()[0].rows_scanned, 21);
  EXPECT_FALSE(tracker.active());
  tracker.EndSession(20);  // Idempotent.
  EXPECT_EQ(tracker.completed().size(), 1u);
}

TEST(SessionTrackerTest, GestureExactlyAtIdleGapSharesSession) {
  // The gap check is strict: a gesture arriving exactly idle_gap_us after
  // the last activity still belongs to the same session; one microsecond
  // later opens a new one.
  SessionTracker tracker(/*idle_gap_us=*/1'000'000);
  tracker.OnGestureBegin(0);
  tracker.OnTouch(100'000);
  tracker.OnGestureBegin(1'100'000);  // Exactly at the boundary.
  tracker.EndSession(1'200'000);
  ASSERT_EQ(tracker.completed().size(), 1u);
  EXPECT_EQ(tracker.completed()[0].gestures, 2);

  SessionTracker split(/*idle_gap_us=*/1'000'000);
  split.OnGestureBegin(0);
  split.OnTouch(100'000);
  split.OnGestureBegin(1'100'001);  // One microsecond past the boundary.
  split.EndSession(1'200'000);
  EXPECT_EQ(split.completed().size(), 2u);
}

TEST(SessionTrackerTest, EndSessionWithNoActiveSessionIsANoOp) {
  SessionTracker tracker;
  tracker.EndSession(5);  // Nothing active: must not record anything.
  EXPECT_TRUE(tracker.completed().empty());
  EXPECT_FALSE(tracker.active());
  tracker.OnTouch(10);  // Touch without a session: also dropped.
  EXPECT_FALSE(tracker.active());
  EXPECT_EQ(tracker.current().touches, 0);
}

TEST(SessionTrackerTest, BackToBackSessionsAccountSeparately) {
  SessionTracker tracker(/*idle_gap_us=*/1'000'000);
  tracker.OnGestureBegin(0);
  tracker.OnTouch(10);
  tracker.AddEntries(2);
  tracker.AddRowsScanned(9);
  tracker.EndSession(20);
  tracker.OnGestureBegin(30);  // Immediately reopens.
  tracker.OnTouch(40);
  tracker.OnTouch(50);
  tracker.AddRowsScanned(7);
  tracker.EndSession(60);
  ASSERT_EQ(tracker.completed().size(), 2u);
  const SessionSummary& first = tracker.completed()[0];
  const SessionSummary& second = tracker.completed()[1];
  EXPECT_EQ(first.id, 1);
  EXPECT_EQ(second.id, 2);
  // No accounting bleeds between sessions.
  EXPECT_EQ(first.entries_returned, 2);
  EXPECT_EQ(first.rows_scanned, 9);
  EXPECT_EQ(first.touches, 1);
  EXPECT_EQ(second.entries_returned, 0);
  EXPECT_EQ(second.rows_scanned, 7);
  EXPECT_EQ(second.touches, 2);
  EXPECT_EQ(first.started_us, 0);
  EXPECT_EQ(first.ended_us, 20);
  EXPECT_EQ(second.started_us, 30);
  EXPECT_EQ(second.ended_us, 60);
}

TEST(ActionConfigTest, FactoriesSetKindAndParameters) {
  EXPECT_EQ(ActionConfig::Scan().kind, ActionKind::kScan);
  const auto agg = ActionConfig::Aggregate(exec::AggKind::kMax);
  EXPECT_EQ(agg.kind, ActionKind::kAggregate);
  EXPECT_EQ(agg.agg, exec::AggKind::kMax);
  const auto sum = ActionConfig::Summary(32, exec::AggKind::kStdDev);
  EXPECT_EQ(sum.summary_k, 32);
  const auto filt = ActionConfig::Filter(
      exec::Predicate(exec::CompareOp::kLt, 5.0), true);
  EXPECT_TRUE(filt.predicate.has_value());
  EXPECT_TRUE(filt.use_zone_map);
  const auto gb = ActionConfig::GroupBy(1, 2, exec::AggKind::kSum);
  EXPECT_EQ(gb.group_key_attribute, 1u);
  EXPECT_EQ(gb.group_value_attribute, 2u);
  EXPECT_STREQ(ActionKindName(ActionKind::kSummary), "summary");
}

// ---- Table objects -------------------------------------------------------

class TableKernelFixture : public testing::Test {
 protected:
  void SetUp() override {
    kernel_ = std::make_unique<Kernel>();
    std::vector<Column> cols;
    cols.push_back(storage::GenSequenceInt64("id", 10'000, 0, 1));
    cols.push_back(storage::GenUniformInt32("grp", 10'000, 0, 4, 5));
    cols.push_back(storage::GenGaussianDouble("val", 10'000, 10.0, 2.0, 6));
    ASSERT_TRUE(
        kernel_->RegisterTable(*Table::FromColumns("t", std::move(cols)))
            .ok());
    auto id =
        kernel_->CreateTableObject("t", RectCm{6.0, 1.0, 6.0, 10.0});
    ASSERT_TRUE(id.ok());
    object_ = *id;
  }

  TraceBuilder builder() const { return TraceBuilder(kernel_->device()); }

  std::unique_ptr<Kernel> kernel_;
  ObjectId object_ = 0;
};

TEST_F(TableKernelFixture, TapRevealsFullTuple) {
  kernel_->Replay(builder().Tap("tap", PointCm{9.0, 6.0}));
  // One ResultItem per attribute (paper: "reveals a full tuple").
  EXPECT_EQ(kernel_->results().size(), 3);
  const auto& items = kernel_->results().items();
  EXPECT_EQ(items[0].kind, ResultKind::kTuple);
  EXPECT_EQ(items[0].row, items[2].row);
  EXPECT_EQ(items[0].attribute, 0u);
  EXPECT_EQ(items[2].attribute, 2u);
}

TEST_F(TableKernelFixture, VerticalSlideScansTuplesOfTouchedAttribute) {
  kernel_->Replay(builder().Slide("slide", PointCm{7.0, 1.0},
                                  PointCm{7.0, 11.0},
                                  MotionProfile::Constant(1.0)));
  const auto& items = kernel_->results().items();
  ASSERT_FALSE(items.empty());
  // x=7cm in a 6cm-wide 3-attribute object: first attribute band.
  for (const ResultItem& item : items) {
    EXPECT_EQ(item.attribute, 0u);
  }
}

TEST_F(TableKernelFixture, HorizontalSlideWalksAttributes) {
  // Horizontal slide at fixed y: same tuple, attribute varies with x
  // (paper Section 2.4: "with a horizontal slide ... we slide through the
  // attributes values of a given tuple entry").
  kernel_->Replay(builder().Slide("hslide", PointCm{6.2, 6.0},
                                  PointCm{11.8, 6.0},
                                  MotionProfile::Constant(1.0)));
  const auto& items = kernel_->results().items();
  ASSERT_GT(items.size(), 2u);
  EXPECT_EQ(items.front().attribute, 0u);
  EXPECT_EQ(items.back().attribute, 2u);
  for (std::size_t i = 1; i < items.size(); ++i) {
    EXPECT_EQ(items[i].row, items[0].row);  // Same tuple throughout.
  }
}

TEST_F(TableKernelFixture, GroupByAccretesGroups) {
  ASSERT_TRUE(kernel_
                  ->SetAction(object_, ActionConfig::GroupBy(
                                           1, 2, exec::AggKind::kAvg))
                  .ok());
  kernel_->Replay(builder().Slide("slide", PointCm{7.0, 1.0},
                                  PointCm{7.0, 11.0},
                                  MotionProfile::Constant(2.0)));
  const auto& items = kernel_->results().items();
  ASSERT_FALSE(items.empty());
  for (const ResultItem& item : items) {
    EXPECT_EQ(item.kind, ResultKind::kGroupUpdate);
    // Group averages of val ~ N(10, 2) stay near 10.
    EXPECT_NEAR(item.value.AsDouble(), 10.0, 5.0);
  }
}

TEST_F(TableKernelFixture, RotateGestureFlipsLayoutIncrementally) {
  ASSERT_EQ(*kernel_->rotation_in_progress(object_), false);
  const auto table = kernel_->catalog().Get("t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->layout(), storage::MajorOrder::kColumnMajor);

  kernel_->Replay(builder().TwoFingerRotate("rot", PointCm{9.0, 6.0}, 2.0,
                                            0.0, M_PI / 2.0, 1.0));
  // Rotation begins (visual flip immediate; physical conversion stepped).
  const auto view = kernel_->object_view(object_);
  EXPECT_EQ((*view)->orientation(), touch::Orientation::kHorizontal);
  // Drive remaining conversion.
  while (*kernel_->rotation_in_progress(object_)) {
    kernel_->PumpMaintenance();
  }
  EXPECT_EQ((*table)->layout(), storage::MajorOrder::kRowMajor);
  EXPECT_EQ(kernel_->stats().layout_rotations, 1);
  // Data intact after rotation.
  EXPECT_EQ((*table)->GetValue(5000, 0).AsInt(), 5000);
}

// ---- Joins ----------------------------------------------------------------

TEST(KernelJoinTest, SlideDrivenJoinStreamsMatches) {
  Kernel kernel;
  std::vector<Column> l;
  l.push_back(storage::GenSequenceInt64("k", 5'000, 0, 1));  // 0..4999
  ASSERT_TRUE(
      kernel.RegisterTable(*Table::FromColumns("left", std::move(l))).ok());
  std::vector<Column> r;
  r.push_back(storage::GenSequenceInt64("k", 5'000, 0, 1));  // Same keys.
  ASSERT_TRUE(
      kernel.RegisterTable(*Table::FromColumns("right", std::move(r))).ok());
  const auto left_obj = kernel.CreateColumnObject(
      "left", "k", RectCm{1.0, 1.0, 2.0, 10.0});
  const auto right_obj = kernel.CreateColumnObject(
      "right", "k", RectCm{8.0, 1.0, 2.0, 10.0});
  ASSERT_TRUE(left_obj.ok());
  ASSERT_TRUE(right_obj.ok());
  ASSERT_TRUE(kernel.EnableJoin(*left_obj, *right_obj).ok());

  TraceBuilder builder(kernel.device());
  // Slide over the left column, then the same region of the right column:
  // matches stream out during the second slide.
  auto session = builder.Slide("l", PointCm{2.0, 1.0}, PointCm{2.0, 11.0},
                               MotionProfile::Constant(1.0));
  session.Append(builder.Slide("r", PointCm{9.0, 1.0}, PointCm{9.0, 11.0},
                               MotionProfile::Constant(1.0)),
                 200'000);
  kernel.Replay(session);
  const std::int64_t matches =
      kernel.results().CountKind(ResultKind::kJoinMatch);
  // Both slides touch the same relative positions -> same keys: nearly
  // every right-side touch finds its left partner.
  EXPECT_GT(matches, 8);
}

TEST(KernelJoinTest, EnableJoinValidatesObjects) {
  Kernel kernel;
  std::vector<Column> cols;
  cols.push_back(storage::GenGaussianDouble("f", 100, 0, 1, 1));
  ASSERT_TRUE(
      kernel.RegisterTable(*Table::FromColumns("t", std::move(cols))).ok());
  const auto obj =
      kernel.CreateColumnObject("t", "f", RectCm{1, 1, 2, 10});
  ASSERT_TRUE(obj.ok());
  EXPECT_TRUE(kernel.EnableJoin(*obj, 999).IsNotFound());
  // Float keys rejected.
  EXPECT_TRUE(kernel.EnableJoin(*obj, *obj).IsInvalidArgument());
}

// ---- Interactivity bound ---------------------------------------------------

TEST(KernelBudgetTest, MaxRowsPerTouchBoundsSummaryWork) {
  KernelConfig config;
  config.use_sampling = false;          // Worst case: base-data bands.
  config.max_rows_per_touch = 10'000;   // Tight budget.
  Kernel kernel(config);
  std::vector<Column> cols;
  cols.push_back(storage::MakePaperEvalColumn(2'000'000));
  ASSERT_TRUE(
      kernel.RegisterTable(*Table::FromColumns("big", std::move(cols))).ok());
  const auto obj = kernel.CreateColumnObject(
      "big", "values", RectCm{2.0, 1.0, 2.0, 10.0});
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE(kernel.SetAction(*obj, ActionConfig::Summary(10)).ok());
  TraceBuilder builder(kernel.device());
  kernel.Replay(builder.Slide("s", PointCm{3.0, 1.0}, PointCm{3.0, 11.0},
                              MotionProfile::Constant(1.0)));
  const auto& stats = kernel.stats();
  ASSERT_GT(stats.entries_returned, 0);
  // No touch scanned more than the budget.
  EXPECT_LE(stats.rows_scanned / stats.entries_returned,
            config.max_rows_per_touch);
}

}  // namespace
}  // namespace dbtouch::core
