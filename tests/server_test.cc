// Tests for the multi-session touch server: scheduler EDF semantics,
// session isolation (zero cross-session leakage), deadline accounting,
// load shedding and stats roll-up. Patterns are ThreadSanitizer-friendly:
// every cross-thread assertion happens after Drain()/Stop() joins, and
// in-flight state is only inspected through the locked WithSession door.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cache/block_provider.h"
#include "core/kernel.h"
#include "remote/remote_store.h"
#include "sampling/level_policy.h"
#include "server/frame_scheduler.h"
#include "server/session_manager.h"
#include "server/server_stats.h"
#include "server/touch_server.h"
#include "sim/motion_profile.h"
#include "sim/trace_builder.h"
#include "storage/datagen.h"

namespace dbtouch::server {
namespace {

using core::ActionConfig;
using core::Kernel;
using core::KernelConfig;
using sim::MotionProfile;
using sim::PointCm;
using sim::TraceBuilder;
using storage::Column;
using storage::Table;
using touch::RectCm;

constexpr std::int64_t kRows = 20'000;
/// Disjoint value ranges per session table: any value observed outside a
/// session's own range is cross-session leakage.
constexpr std::int64_t kRangeStride = 1'000'000;

std::shared_ptr<Table> SequenceTable(const std::string& name,
                                     std::int64_t start) {
  std::vector<Column> cols;
  cols.push_back(storage::GenSequenceInt64("v", kRows, start, 1));
  auto table = Table::FromColumns(name, std::move(cols));
  EXPECT_TRUE(table.ok());
  return *table;
}

/// A generous config: budgets far above any realistic execution time, so
/// nothing sheds or drops and behaviour is deterministic.
TouchServerConfig RelaxedConfig(int workers) {
  TouchServerConfig config;
  config.num_workers = workers;
  config.base_frame_budget_us = 10'000'000;  // 10 s.
  config.min_frame_budget_us = 10'000'000;
  config.est_row_ns = 0.0;
  config.drop_slack_us = 3'600'000'000;  // Effectively never drop.
  return config;
}

sim::GestureTrace SlideOver(const TouchServer& /*server*/,
                            const Kernel& reference, double duration_s) {
  TraceBuilder builder(reference.device());
  return builder.Slide("slide", PointCm{3.0, 1.0}, PointCm{3.0, 11.0},
                       MotionProfile::Constant(duration_s));
}

/// A slow-tier provider for async tests: delegates to an in-memory
/// TableBlockProvider but advertises async() (so the kernel suspends on
/// its cold blocks) and blocks each fetch on a gate the test controls.
class GatedSlowProvider final : public cache::BlockProvider {
 public:
  GatedSlowProvider(std::shared_ptr<const Table> table, std::size_t column,
                    std::int64_t rows_per_block)
      : inner_(std::move(table), column, rows_per_block) {}

  const cache::BlockGeometry& geometry() const override {
    return inner_.geometry();
  }
  const storage::Dictionary* dictionary() const override {
    return inner_.dictionary();
  }
  bool async() const override { return true; }

  Result<std::vector<std::byte>> Fetch(std::int64_t block) override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++fetches_started_;
      started_cv_.notify_all();
      // Safety valve: a wedged test run releases itself instead of
      // hanging the suite.
      gate_cv_.wait_for(lock, std::chrono::seconds(10),
                        [this] { return open_; });
    }
    fetches_.fetch_add(1, std::memory_order_relaxed);
    return inner_.Fetch(block);
  }

  void OpenGate() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    gate_cv_.notify_all();
  }

  /// Blocks until at least `n` fetches have entered the gate.
  void AwaitFetchStarted(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    started_cv_.wait_for(lock, std::chrono::seconds(10),
                         [&] { return fetches_started_ >= n; });
  }

  std::int64_t fetches() const {
    return fetches_.load(std::memory_order_relaxed);
  }

 private:
  cache::TableBlockProvider inner_;
  std::mutex mu_;
  std::condition_variable gate_cv_;
  std::condition_variable started_cv_;
  bool open_ = false;
  int fetches_started_ = 0;
  std::atomic<std::int64_t> fetches_{0};
};

// ---- FrameScheduler unit tests --------------------------------------------

TouchTask MakeTask(std::int64_t session, sim::Micros deadline,
                   sim::Micros release = 0, bool droppable = false) {
  TouchTask task;
  task.session_id = session;
  task.release_us = release;
  task.deadline_us = deadline;
  task.droppable = droppable;
  return task;
}

TEST(FrameSchedulerTest, PopsEarliestDeadlineFirst) {
  FrameScheduler scheduler;
  const sim::Micros now = SteadyNowUs();
  scheduler.Push(MakeTask(1, now + 300));
  scheduler.Push(MakeTask(2, now + 100));
  scheduler.Push(MakeTask(3, now + 200));
  const auto first = scheduler.PopRunnable();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->session_id, 2);
  scheduler.OnTaskDone(2);
  const auto second = scheduler.PopRunnable();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->session_id, 3);
  scheduler.OnTaskDone(3);
}

TEST(FrameSchedulerTest, SessionOrderIsFifoEvenWithDeadlineInversion) {
  FrameScheduler scheduler;
  const sim::Micros now = SteadyNowUs();
  // Session 1 queues a late-deadline task before an early-deadline one;
  // FIFO within the session must win (gesture order is sacred).
  scheduler.Push(MakeTask(1, now + 500));
  auto second_task = MakeTask(1, now + 10);
  second_task.event.finger_id = 42;  // Marker.
  scheduler.Push(second_task);
  const auto first = scheduler.PopRunnable();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->event.finger_id, 0);
  scheduler.OnTaskDone(1);
  const auto second = scheduler.PopRunnable();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->event.finger_id, 42);
  scheduler.OnTaskDone(1);
}

TEST(FrameSchedulerTest, BusySessionIsSkipped) {
  FrameScheduler scheduler;
  const sim::Micros now = SteadyNowUs();
  scheduler.Push(MakeTask(1, now + 10));
  scheduler.Push(MakeTask(1, now + 20));
  scheduler.Push(MakeTask(2, now + 500));
  const auto first = scheduler.PopRunnable();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->session_id, 1);
  // Session 1 is busy; its earlier-deadline second task must not run, so
  // session 2 is next despite the later deadline.
  const auto second = scheduler.PopRunnable();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->session_id, 2);
  scheduler.OnTaskDone(1);
  scheduler.OnTaskDone(2);
  const auto third = scheduler.PopRunnable();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->session_id, 1);
  scheduler.OnTaskDone(1);
}

TEST(FrameSchedulerTest, ReleaseTimeGatesRunnability) {
  FrameScheduler scheduler;
  const sim::Micros now = SteadyNowUs();
  scheduler.Push(MakeTask(1, now + 100'000, now + 20'000));  // Future.
  scheduler.Push(MakeTask(2, now + 500'000, now));           // Released.
  const auto first = scheduler.PopRunnable();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->session_id, 2);
  scheduler.OnTaskDone(2);
  // Blocks until session 1's release time passes, then returns it.
  const auto second = scheduler.PopRunnable();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->session_id, 1);
  EXPECT_GE(SteadyNowUs(), second->release_us);
  scheduler.OnTaskDone(1);
}

TEST(FrameSchedulerTest, DropSessionDiscardsQueue) {
  FrameScheduler scheduler;
  const sim::Micros now = SteadyNowUs();
  scheduler.Push(MakeTask(7, now + 10));
  scheduler.Push(MakeTask(7, now + 20));
  EXPECT_EQ(scheduler.PendingOf(7), 2u);
  EXPECT_EQ(scheduler.DropSession(7), 2u);
  EXPECT_EQ(scheduler.PendingOf(7), 0u);
  EXPECT_EQ(scheduler.pending(), 0u);
}

TEST(FrameSchedulerTest, ShutdownUnblocksPop) {
  FrameScheduler scheduler;
  std::thread closer([&scheduler] { scheduler.Shutdown(); });
  EXPECT_FALSE(scheduler.PopRunnable().has_value());
  closer.join();
}

TEST(FrameSchedulerTest, ParkedSessionYieldsToOthersAndResumesOnUnpark) {
  FrameScheduler scheduler;
  const sim::Micros now = SteadyNowUs();
  scheduler.Push(MakeTask(1, now + 10));
  scheduler.Push(MakeTask(2, now + 500));
  const auto first = scheduler.PopRunnable();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->session_id, 1);
  // Session 1's quantum suspends on a fetch: parked, its worker freed.
  scheduler.ParkForFetch(*first);
  EXPECT_EQ(scheduler.parked(), 1u);
  // Session 2 runs although session 1's (parked) head has the earlier
  // deadline — that is the idle slot the fetch fills.
  const auto second = scheduler.PopRunnable();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->session_id, 2);
  scheduler.OnTaskDone(2);
  // Fetch completes: the suspended quantum comes back first, marked as a
  // resume so the worker re-enters instead of re-feeding the recognizer.
  scheduler.Unpark(1);
  EXPECT_EQ(scheduler.parked(), 0u);
  const auto third = scheduler.PopRunnable();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->session_id, 1);
  EXPECT_TRUE(third->resume);
  scheduler.OnTaskDone(1);
  // Unparking an unknown session is a harmless no-op.
  scheduler.Unpark(42);
}

// ---- Stats helpers ---------------------------------------------------------

TEST(ServerStatsTest, PercentilesAndFairness) {
  std::vector<sim::Micros> samples;
  for (sim::Micros v = 1; v <= 100; ++v) {
    samples.push_back(v);
  }
  EXPECT_EQ(LatencyPercentile(samples, 0.5), 50);
  EXPECT_EQ(LatencyPercentile(samples, 0.99), 99);
  EXPECT_EQ(LatencyPercentile({}, 0.99), 0);
  EXPECT_DOUBLE_EQ(JainFairness({5, 5, 5, 5}), 1.0);
  EXPECT_NEAR(JainFairness({10, 0, 0, 0}), 0.25, 1e-9);
  EXPECT_DOUBLE_EQ(JainFairness({}), 1.0);
}

// ---- TouchServer integration ----------------------------------------------

TEST(TouchServerTest, SessionsShareOneHierarchyPerColumn) {
  TouchServer server(RelaxedConfig(2));
  ASSERT_TRUE(server.RegisterTable(SequenceTable("t", 0)).ok());
  ASSERT_TRUE(server.Start().ok());
  for (int i = 0; i < 4; ++i) {
    const auto session = server.OpenSession();
    ASSERT_TRUE(session.ok());
    const auto object = server.CreateColumnObject(
        *session, "t", "v", RectCm{2.0, 1.0, 2.0, 10.0});
    ASSERT_TRUE(object.ok());
  }
  // Four sessions, one shared sample hierarchy: the memory story of the
  // server — samples are paid for once, not per user.
  EXPECT_EQ(server.shared().hierarchy_count(), 1u);
  EXPECT_GT(server.shared().sample_bytes(), 0u);
  ASSERT_TRUE(server.Stop().ok());
}

TEST(TouchServerTest, NoCrossSessionLeakageAndResultsMatchSingleUser) {
  constexpr int kSessions = 6;
  TouchServer server(RelaxedConfig(4));
  for (int i = 0; i < kSessions; ++i) {
    ASSERT_TRUE(server
                    .RegisterTable(SequenceTable("t" + std::to_string(i),
                                                 i * kRangeStride))
                    .ok());
  }
  ASSERT_TRUE(server.Start().ok());

  std::vector<SessionId> ids;
  for (int i = 0; i < kSessions; ++i) {
    const auto session = server.OpenSession();
    ASSERT_TRUE(session.ok());
    ids.push_back(*session);
    const auto object = server.CreateColumnObject(
        *session, "t" + std::to_string(i), "v",
        RectCm{2.0, 1.0, 2.0, 10.0});
    ASSERT_TRUE(object.ok());
  }

  // Golden: the identical exploration in a single-user kernel.
  KernelConfig golden_config;
  Kernel golden(golden_config);
  ASSERT_TRUE(golden.RegisterTable(SequenceTable("g", 0)).ok());
  ASSERT_TRUE(
      golden.CreateColumnObject("g", "v", RectCm{2.0, 1.0, 2.0, 10.0})
          .ok());
  const sim::GestureTrace trace = SlideOver(server, golden, 1.0);
  golden.Replay(trace);

  for (const SessionId id : ids) {
    ASSERT_TRUE(server.SubmitTrace(id, trace, {/*paced=*/false}).ok());
  }
  ASSERT_TRUE(server.Drain().ok());

  for (int i = 0; i < kSessions; ++i) {
    ASSERT_TRUE(server
                    .WithSession(ids[i],
                                 [&](Kernel& kernel) {
                                   const auto& items =
                                       kernel.results().items();
                                   ASSERT_EQ(
                                       items.size(),
                                       golden.results().items().size());
                                   const std::int64_t lo =
                                       i * kRangeStride;
                                   for (std::size_t j = 0;
                                        j < items.size(); ++j) {
                                     // Same rows as the single-user run,
                                     // values offset into this session's
                                     // private range — any value outside
                                     // it would be leakage.
                                     EXPECT_EQ(
                                         items[j].row,
                                         golden.results().items()[j].row);
                                     EXPECT_EQ(items[j].value.AsInt(),
                                               golden.results()
                                                       .items()[j]
                                                       .value.AsInt() +
                                                   lo);
                                     EXPECT_GE(items[j].value.AsInt(), lo);
                                     EXPECT_LT(items[j].value.AsInt(),
                                               lo + kRows);
                                   }
                                   EXPECT_EQ(
                                       kernel.stats().entries_returned,
                                       golden.stats().entries_returned);
                                   EXPECT_EQ(kernel.stats().rows_scanned,
                                             golden.stats().rows_scanned);
                                 })
                    .ok());
  }

  const ServerStatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.dropped_quanta, 0);
  EXPECT_EQ(stats.executed, stats.submitted);
  EXPECT_EQ(stats.sessions_active, kSessions);
  ASSERT_TRUE(server.Stop().ok());
}

TEST(TouchServerTest, StatsRollUpAndFairness) {
  constexpr int kSessions = 4;
  TouchServer server(RelaxedConfig(2));
  ASSERT_TRUE(server.RegisterTable(SequenceTable("t", 0)).ok());
  ASSERT_TRUE(server.Start().ok());
  Kernel reference;  // Only for the device geometry in trace building.
  const sim::GestureTrace trace = SlideOver(server, reference, 1.0);

  std::vector<SessionId> ids;
  for (int i = 0; i < kSessions; ++i) {
    const auto session = server.OpenSession();
    ASSERT_TRUE(session.ok());
    const auto object = server.CreateColumnObject(
        *session, "t", "v", RectCm{2.0, 1.0, 2.0, 10.0});
    ASSERT_TRUE(object.ok());
    ids.push_back(*session);
    ASSERT_TRUE(server.SubmitTrace(*session, trace, {/*paced=*/false}).ok());
  }
  ASSERT_TRUE(server.Drain().ok());
  const ServerStatsSnapshot stats = server.stats();

  EXPECT_EQ(stats.submitted,
            static_cast<std::int64_t>(kSessions * trace.events.size()));
  EXPECT_EQ(stats.executed + stats.dropped_quanta, stats.submitted);
  std::int64_t executed_sum = 0;
  for (const auto& [id, per] : stats.per_session) {
    executed_sum += per.executed;
    EXPECT_EQ(per.submitted,
              static_cast<std::int64_t>(trace.events.size()));
    EXPECT_GT(per.touch_events, 0);
  }
  EXPECT_EQ(executed_sum, stats.executed);
  // Identical workloads, relaxed deadlines: service must be even.
  EXPECT_GT(stats.fairness, 0.99);
  EXPECT_GE(stats.p99_latency_us, stats.p50_latency_us);
  EXPECT_GE(stats.max_latency_us, stats.p99_latency_us);
  ASSERT_TRUE(server.Stop().ok());
}

TEST(TouchServerTest, StageHistogramsTileEndToEndLatencyExactly) {
  // The worker loop accounts every quantum's lifetime into exactly one of
  // queue-wait / exec / fetch-stall at any instant, so the stage sums must
  // equal the end-to-end sum to the microsecond — no tolerance.
  TouchServer server(RelaxedConfig(2));
  ASSERT_TRUE(server.RegisterTable(SequenceTable("t", 0)).ok());
  ASSERT_TRUE(server.Start().ok());
  Kernel reference;
  const sim::GestureTrace trace = SlideOver(server, reference, 1.0);
  for (int i = 0; i < 3; ++i) {
    const auto session = server.OpenSession();
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(server
                    .CreateColumnObject(*session, "t", "v",
                                        RectCm{2.0, 1.0, 2.0, 10.0})
                    .ok());
    ASSERT_TRUE(server.SubmitTrace(*session, trace, {/*paced=*/false}).ok());
  }
  ASSERT_TRUE(server.Drain().ok());
  const ServerStatsSnapshot stats = server.stats();
  ASSERT_GT(stats.executed, 0);
  EXPECT_EQ(stats.stages.e2e.count, stats.executed);
  EXPECT_EQ(stats.stages.queue_wait.count, stats.executed);
  EXPECT_EQ(stats.stages.exec.count, stats.executed);
  EXPECT_EQ(stats.stages.fetch_stall.count, stats.executed);
  EXPECT_EQ(stats.stages.queue_wait.sum + stats.stages.exec.sum +
                stats.stages.fetch_stall.sum,
            stats.stages.e2e.sum);
  // In-memory tables never suspend, so the stall stage is all zeros.
  EXPECT_EQ(stats.stages.fetch_stall.max, 0);
  // The legacy headline percentiles are now derived from the e2e stage.
  EXPECT_EQ(stats.p50_latency_us, stats.stages.e2e.Percentile(0.50));
  EXPECT_EQ(stats.p99_latency_us, stats.stages.e2e.Percentile(0.99));
  EXPECT_EQ(stats.max_latency_us, stats.stages.e2e.max);
  ASSERT_TRUE(server.Stop().ok());
}

TEST(TouchServerTest, TracedRunRecordsFullQuantumLifecycles) {
  TouchServerConfig config = RelaxedConfig(2);
  config.enable_tracing = true;
  TouchServer server(config);
  ASSERT_TRUE(server.RegisterTable(SequenceTable("t", 0)).ok());
  ASSERT_TRUE(server.Start().ok());
  Kernel reference;
  const auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(server
                  .CreateColumnObject(*session, "t", "v",
                                      RectCm{2.0, 1.0, 2.0, 10.0})
                  .ok());
  ASSERT_TRUE(server
                  .SubmitTrace(*session, SlideOver(server, reference, 1.0),
                               {/*paced=*/false})
                  .ok());
  ASSERT_TRUE(server.Drain().ok());
  const ServerStatsSnapshot stats = server.stats();
  ASSERT_NE(server.trace_recorder(), nullptr);
  const std::vector<obs::SpanEvent> events =
      server.trace_recorder()->Snapshot();
  ASSERT_FALSE(events.empty());
  // Every executed quantum logged a full submit->dispatch->execute->
  // complete lifecycle, in that order.
  std::map<std::int64_t, std::vector<obs::SpanStage>> lifecycles;
  for (const obs::SpanEvent& event : events) {
    if (event.quantum != 0) {
      lifecycles[event.quantum].push_back(event.stage);
    }
  }
  EXPECT_EQ(lifecycles.size(), static_cast<std::size_t>(stats.executed));
  std::int64_t completed = 0;
  for (const auto& [quantum, stages] : lifecycles) {
    ASSERT_GE(stages.size(), 4u);
    EXPECT_EQ(stages.front(), obs::SpanStage::kSubmitted);
    EXPECT_EQ(stages[1], obs::SpanStage::kDispatched);
    EXPECT_EQ(stages[2], obs::SpanStage::kExecuting);
    if (stages.back() == obs::SpanStage::kCompleted) {
      ++completed;
    }
  }
  EXPECT_EQ(completed, stats.executed);
  // The slowest completions were retained as exemplars, and each exemplar
  // roll-up obeys the same stage-partition identity as the histograms.
  const auto exemplars = server.trace_recorder()->Exemplars();
  ASSERT_FALSE(exemplars.empty());
  for (const auto& exemplar : exemplars) {
    EXPECT_EQ(exemplar.queue_wait_us + exemplar.exec_us +
                  exemplar.fetch_stall_us,
              exemplar.e2e_us);
  }
  ASSERT_TRUE(server.Stop().ok());
}

TEST(TouchServerTest, ImpossibleDeadlinesAreCountedAndShed) {
  TouchServerConfig config;
  config.num_workers = 1;
  config.base_frame_budget_us = 1;  // Unmeetable on purpose.
  config.min_frame_budget_us = 1;
  config.est_row_ns = 0.0;
  config.drop_slack_us = 0;  // Late droppable quanta are shed.
  TouchServer server(config);
  ASSERT_TRUE(server.RegisterTable(SequenceTable("t", 0)).ok());
  ASSERT_TRUE(server.Start().ok());
  const auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());
  const auto object = server.CreateColumnObject(
      *session, "t", "v", RectCm{2.0, 1.0, 2.0, 10.0});
  ASSERT_TRUE(object.ok());
  ASSERT_TRUE(
      server.SetAction(*session, *object, ActionConfig::Summary(10)).ok());

  Kernel reference;
  const sim::GestureTrace trace = SlideOver(server, reference, 2.0);
  // Submit touch-by-touch: each deadline is one microsecond after its
  // submission, so every executed touch misses and queued move quanta
  // exceed the drop slack.
  for (const sim::TouchEvent& event : trace.events) {
    ASSERT_TRUE(server.Submit(*session, event).ok());
  }
  ASSERT_TRUE(server.Drain().ok());
  const ServerStatsSnapshot stats = server.stats();

  EXPECT_EQ(stats.executed + stats.dropped_quanta, stats.submitted);
  EXPECT_GT(stats.deadline_misses, 0);
  // Begin/end quanta always execute — a session can fall behind but its
  // recognizer state machine never wedges.
  EXPECT_GE(stats.executed, 2);
  const SessionStatsSnapshot& per = stats.per_session.at(*session);
  EXPECT_GT(per.deadline_misses + per.dropped_quanta, 0);
  ASSERT_TRUE(server.Stop().ok());
}

TEST(TouchServerTest, CloseSessionDropsPendingWork) {
  TouchServer server(RelaxedConfig(1));
  ASSERT_TRUE(server.RegisterTable(SequenceTable("t", 0)).ok());
  ASSERT_TRUE(server.Start().ok());
  const auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());
  const auto object = server.CreateColumnObject(
      *session, "t", "v", RectCm{2.0, 1.0, 2.0, 10.0});
  ASSERT_TRUE(object.ok());

  Kernel reference;
  const sim::GestureTrace trace = SlideOver(server, reference, 1.0);
  // Paced far into the future: tasks sit queued, then the session closes.
  ASSERT_TRUE(server.SubmitTrace(*session, trace, {/*paced=*/true}).ok());
  ASSERT_TRUE(server.CloseSession(*session).ok());
  EXPECT_TRUE(server.CloseSession(*session).IsNotFound());
  EXPECT_TRUE(
      server.WithSession(*session, [](Kernel&) {}).IsNotFound());
  ASSERT_TRUE(server.Drain().ok());
  const ServerStatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.sessions_active, 0);
  EXPECT_EQ(stats.executed + stats.dropped_quanta, stats.submitted);
  ASSERT_TRUE(server.Stop().ok());
}

TEST(TouchServerTest, LifecycleGuards) {
  TouchServer server(RelaxedConfig(1));
  ASSERT_TRUE(server.RegisterTable(SequenceTable("t", 0)).ok());
  const auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());
  sim::TouchEvent event;
  EXPECT_TRUE(server.Submit(*session, event).IsFailedPrecondition());
  EXPECT_TRUE(server.Drain().IsFailedPrecondition());
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.Start().IsFailedPrecondition());
  ASSERT_TRUE(server.Stop().ok());
  ASSERT_TRUE(server.Stop().ok());  // Idempotent.
}

TEST(TouchServerTest, RestartAfterStopServesAgain) {
  TouchServer server(RelaxedConfig(1));
  ASSERT_TRUE(server.RegisterTable(SequenceTable("t", 0)).ok());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(server.Stop().ok());
  // Second run: the scheduler's shutdown latch must clear, or workers
  // would exit immediately and the server would silently serve nothing.
  ASSERT_TRUE(server.Start().ok());
  const auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());
  const auto object = server.CreateColumnObject(
      *session, "t", "v", RectCm{2.0, 1.0, 2.0, 10.0});
  ASSERT_TRUE(object.ok());
  Kernel reference;
  TraceBuilder builder(reference.device());
  ASSERT_TRUE(
      server
          .SubmitTrace(*session, builder.Tap("tap", PointCm{3.0, 6.0}),
                       {/*paced=*/false})
          .ok());
  ASSERT_TRUE(server.Drain().ok());
  const ServerStatsSnapshot stats = server.stats();
  EXPECT_GT(stats.executed, 0);
  std::int64_t results = 0;
  ASSERT_TRUE(server
                  .WithSession(*session,
                               [&results](Kernel& kernel) {
                                 results = kernel.results().size();
                               })
                  .ok());
  EXPECT_EQ(results, 1);
  ASSERT_TRUE(server.Stop().ok());
}

TEST(SharedStateTest, ReRegisteredTableRebuildsHierarchy) {
  core::SharedState shared;
  ASSERT_TRUE(shared.RegisterTable(SequenceTable("t", 0)).ok());
  const auto first = shared.GetOrBuildHierarchy("t", 0);
  ASSERT_TRUE(first.ok());
  const auto first_again = shared.GetOrBuildHierarchy("t", 0);
  ASSERT_TRUE(first_again.ok());
  EXPECT_EQ(first->get(), first_again->get());  // Cached.
  const auto zone_map = shared.GetOrBuildBaseZoneMap(*first);
  ASSERT_NE(zone_map, nullptr);
  EXPECT_EQ(shared.GetOrBuildBaseZoneMap(*first).get(),
            zone_map.get());  // Cached by hierarchy identity.
  // Drop and re-register the name with different data: the cache must
  // rebuild instead of serving the stale (and, without the table pin,
  // dangling) hierarchy.
  ASSERT_TRUE(shared.catalog().Drop("t").ok());
  ASSERT_TRUE(shared.RegisterTable(SequenceTable("t", 500)).ok());
  const auto rebuilt = shared.GetOrBuildHierarchy("t", 0);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_NE(first->get(), rebuilt->get());
  // The old zone map handle stays valid (aliasing pin) and still answers
  // for the old data: rows of value < 500 existed only there.
  EXPECT_TRUE(zone_map->MayMatch(0, 0.0, 10.0));
  // An object bound to the new hierarchy prunes with a map over the new
  // data, never the old table that happens to share the name.
  const auto new_zone_map = shared.GetOrBuildBaseZoneMap(*rebuilt);
  ASSERT_NE(new_zone_map, nullptr);
  EXPECT_NE(new_zone_map.get(), zone_map.get());
  EXPECT_FALSE(new_zone_map->MayMatch(0, 0.0, 10.0));
  EXPECT_TRUE(new_zone_map->MayMatch(0, 500.0, 510.0));
}

TEST(TouchServerTest, ConcurrentSubmittersAreSafe) {
  constexpr int kSessions = 8;
  TouchServer server(RelaxedConfig(4));
  ASSERT_TRUE(server.RegisterTable(SequenceTable("t", 0)).ok());
  ASSERT_TRUE(server.Start().ok());
  Kernel reference;
  const sim::GestureTrace trace = SlideOver(server, reference, 0.5);

  std::vector<SessionId> ids(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    const auto session = server.OpenSession();
    ASSERT_TRUE(session.ok());
    ids[i] = *session;
    const auto object = server.CreateColumnObject(
        *session, "t", "v", RectCm{2.0, 1.0, 2.0, 10.0});
    ASSERT_TRUE(object.ok());
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    submitters.emplace_back([&, i] {
      if (!server.SubmitTrace(ids[i], trace, {/*paced=*/false}).ok()) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : submitters) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(server.Drain().ok());
  const ServerStatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.submitted,
            static_cast<std::int64_t>(kSessions * trace.events.size()));
  EXPECT_EQ(stats.executed + stats.dropped_quanta, stats.submitted);
  ASSERT_TRUE(server.Stop().ok());
}

// ---- Kernel-level shedding semantics ---------------------------------------

TEST(ShedLevelsTest, LevelPolicyAppliesShed) {
  sampling::LevelPolicyConfig config;
  // 1M rows over 4000 positions, finger on adjacent positions: a middling
  // level with headroom above it.
  const int base = sampling::ChooseLevel(1'000'000, 4'000, 1.0, 12, config);
  ASSERT_GT(base, 0);
  ASSERT_LT(base, 9);
  config.shed_levels = 2;
  EXPECT_EQ(sampling::ChooseLevel(1'000'000, 4'000, 1.0, 12, config),
            base + 2);
  // Shedding coarsens even when positions resolve individual tuples.
  EXPECT_EQ(sampling::ChooseLevel(100, 521, 1.0, 5, config), 2);
  // And clamps at the top of the hierarchy.
  config.shed_levels = 50;
  EXPECT_EQ(sampling::ChooseLevel(1'000'000, 521, 1.0, 12, config), 11);
}

TEST(ShedLevelsTest, CoarsensSummaryLevelAndWidensBands) {
  // A very slow slide (no speed coarsening) over a large column leaves
  // headroom above the policy's normal level choice, so shedding is
  // visible in the executed touches.
  auto run = [](int shed) {
    KernelConfig config;
    Kernel kernel(config);
    std::vector<Column> cols;
    cols.push_back(storage::GenSequenceInt64("v", 1'000'000, 0, 1));
    EXPECT_TRUE(
        kernel.RegisterTable(*Table::FromColumns("t", std::move(cols)))
            .ok());
    const auto object = kernel.CreateColumnObject(
        "t", "v", RectCm{2.0, 1.0, 2.0, 10.0});
    EXPECT_TRUE(object.ok());
    EXPECT_TRUE(
        kernel.SetAction(*object, ActionConfig::Summary(10)).ok());
    kernel.set_shed_levels(shed);
    TraceBuilder builder(kernel.device());
    // 2cm in 8s: ~0.25 cm/s, under one position per registered event.
    kernel.Replay(builder.Slide("s", PointCm{3.0, 5.0}, PointCm{3.0, 7.0},
                                MotionProfile::Constant(8.0)));
    const auto stats = kernel.object_stats(*object);
    EXPECT_TRUE(stats.ok());
    const auto& back = kernel.results().back();
    return std::pair<int, std::int64_t>(
        (*stats)->last_level_used, back.band_last - back.band_first + 1);
  };
  const auto [level_normal, band_normal] = run(0);
  const auto [level_shed, band_shed] = run(1);
  EXPECT_EQ(level_shed, level_normal + 1);
  EXPECT_GT(band_shed, band_normal);
}

TEST(TouchServerTest, BufferManagerStatsSurfaceInSnapshot) {
  TouchServerConfig config = RelaxedConfig(2);
  config.session_defaults.buffer.budget_bytes = 256 << 10;
  config.session_defaults.buffer.rows_per_block = 1'024;
  TouchServer server(config);
  ASSERT_TRUE(server.RegisterTable(SequenceTable("t", 0)).ok());
  ASSERT_TRUE(server.Start().ok());
  const auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());
  const auto object = server.CreateColumnObject(*session, "t", "v",
                                                RectCm{2.0, 1.0, 2.0, 10.0});
  ASSERT_TRUE(object.ok());

  Kernel reference{KernelConfig{}};
  ASSERT_TRUE(server
                  .SubmitTrace(*session, SlideOver(server, reference, 1.0),
                               {.paced = false})
                  .ok());
  ASSERT_TRUE(server.Drain().ok());

  // Every scan touch read its row through the shared buffer pool.
  const ServerStatsSnapshot stats = server.stats();
  EXPECT_GT(stats.buffer.lookups, 0);
  EXPECT_GT(stats.buffer.faulted_blocks, 0);
  EXPECT_EQ(stats.buffer.budget_bytes, 256 << 10);
  EXPECT_LE(stats.buffer.resident_bytes, stats.buffer.budget_bytes);
  EXPECT_LE(stats.buffer.peak_resident_bytes, stats.buffer.budget_bytes);
  EXPECT_GE(stats.buffer.hit_rate(), 0.0);
  ASSERT_TRUE(server.Stop().ok());
}

// ---- Async block fetch: suspend / resume / retry ----------------------------

/// Server config for cold-tier tests: small blocks so single-table data
/// spans several, fast retry backoff, relaxed deadlines.
TouchServerConfig ColdTierConfig(int workers) {
  TouchServerConfig config = RelaxedConfig(workers);
  config.session_defaults.buffer.rows_per_block = 1'024;
  config.session_defaults.buffer.fetch.retry_backoff_us = 100;
  return config;
}

TEST(TouchServerAsyncTest, SuspendOnMissWorkerServesOtherSessions) {
  // ONE worker, two sessions: if a cold fault blocked the worker, the
  // fast session could not execute until the slow fetch finished.
  TouchServer server(ColdTierConfig(1));
  auto slow_table = SequenceTable("slow", 0);
  ASSERT_TRUE(server.RegisterTable(slow_table).ok());
  ASSERT_TRUE(server.RegisterTable(SequenceTable("fast", 0)).ok());
  auto provider = std::make_shared<GatedSlowProvider>(slow_table, 0, 1'024);
  ASSERT_TRUE(server.shared().SetColumnProvider("slow", 0, provider).ok());
  ASSERT_TRUE(server.Start().ok());

  const auto slow_session = server.OpenSession();
  const auto fast_session = server.OpenSession();
  ASSERT_TRUE(slow_session.ok());
  ASSERT_TRUE(fast_session.ok());
  ASSERT_TRUE(server
                  .CreateColumnObject(*slow_session, "slow", "v",
                                      RectCm{2.0, 1.0, 2.0, 10.0})
                  .ok());
  ASSERT_TRUE(server
                  .CreateColumnObject(*fast_session, "fast", "v",
                                      RectCm{2.0, 1.0, 2.0, 10.0})
                  .ok());

  Kernel reference;
  TraceBuilder builder(reference.device());
  const auto tap = builder.Tap("tap", PointCm{3.0, 6.0});
  // The slow session's tap suspends on the gated fetch...
  ASSERT_TRUE(
      server.SubmitTrace(*slow_session, tap, {/*paced=*/false}).ok());
  provider->AwaitFetchStarted(1);
  // ...and with the fetch still in flight, the single worker picks up and
  // fully executes the fast session's tap — no worker blocks on a fetch.
  ASSERT_TRUE(
      server.SubmitTrace(*fast_session, tap, {/*paced=*/false}).ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    const ServerStatsSnapshot stats = server.stats();
    const SessionStatsSnapshot& fast = stats.per_session.at(*fast_session);
    if (fast.submitted > 0 && fast.executed == fast.submitted) {
      break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "fast session starved behind a slow-tier fetch";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    const ServerStatsSnapshot stats = server.stats();
    const SessionStatsSnapshot& slow = stats.per_session.at(*slow_session);
    EXPECT_LT(slow.executed, slow.submitted);  // Still parked on the gate.
    EXPECT_GE(stats.fetch.suspended_quanta, 1);
  }

  // Fetch completes: the parked quantum resumes and answers correctly.
  provider->OpenGate();
  ASSERT_TRUE(server.Drain().ok());
  const ServerStatsSnapshot stats = server.stats();
  EXPECT_GE(stats.fetch.resumed_quanta, 1);
  EXPECT_GE(stats.fetch.demand_fetches, 1);
  EXPECT_EQ(stats.fetch.fetch_errors, 0);
  ASSERT_TRUE(server
                  .WithSession(*slow_session,
                               [](Kernel& kernel) {
                                 ASSERT_EQ(kernel.results().size(), 1u);
                                 const auto& item =
                                     kernel.results().items().front();
                                 // Sequence table: value == row id.
                                 EXPECT_EQ(item.value.AsInt(), item.row);
                                 EXPECT_FALSE(
                                     kernel.has_pending_gestures());
                               })
                  .ok());
  ASSERT_TRUE(server.Stop().ok());
}

TEST(TouchServerAsyncTest, RetriesTransientRemoteFailuresThenAnswers) {
  TouchServer server(ColdTierConfig(2));
  auto table = SequenceTable("t", 0);
  ASSERT_TRUE(server.RegisterTable(table).ok());
  remote::RemoteServer remote_server(table->ColumnViewAt(0));
  auto provider = std::make_shared<cache::RemoteBlockProvider>(
      &remote_server, storage::DataType::kInt64, 1'024);
  ASSERT_TRUE(server.shared().SetColumnProvider("t", 0, provider).ok());
  // The next two reads lose their response on the wire; the fetcher must
  // classify the short read as transient and retry with backoff.
  remote_server.FailNextReads(2);
  ASSERT_TRUE(server.Start().ok());

  const auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(server
                  .CreateColumnObject(*session, "t", "v",
                                      RectCm{2.0, 1.0, 2.0, 10.0})
                  .ok());
  Kernel reference;
  TraceBuilder builder(reference.device());
  ASSERT_TRUE(server
                  .SubmitTrace(*session,
                               builder.Tap("tap", PointCm{3.0, 6.0}),
                               {/*paced=*/false})
                  .ok());
  ASSERT_TRUE(server.Drain().ok());

  const ServerStatsSnapshot stats = server.stats();
  EXPECT_GE(stats.fetch.retries, 2);
  EXPECT_EQ(stats.fetch.fetch_errors, 0);
  EXPECT_EQ(stats.fetch.shed_on_fetch_error, 0);
  ASSERT_TRUE(server
                  .WithSession(*session,
                               [](Kernel& kernel) {
                                 ASSERT_EQ(kernel.results().size(), 1u);
                                 const auto& item =
                                     kernel.results().items().front();
                                 EXPECT_EQ(item.value.AsInt(), item.row);
                               })
                  .ok());
  ASSERT_TRUE(server.Stop().ok());
}

TEST(TouchServerAsyncTest, PermanentFetchFailureShedsQuantumNotSession) {
  TouchServerConfig config = ColdTierConfig(1);
  config.session_defaults.buffer.fetch.max_retries = 1;
  TouchServer server(config);
  auto table = SequenceTable("t", 0);
  ASSERT_TRUE(server.RegisterTable(table).ok());
  remote::RemoteServer remote_server(table->ColumnViewAt(0));
  auto provider = std::make_shared<cache::RemoteBlockProvider>(
      &remote_server, storage::DataType::kInt64, 1'024);
  ASSERT_TRUE(server.shared().SetColumnProvider("t", 0, provider).ok());
  ASSERT_TRUE(server.Start().ok());

  const auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(server
                  .CreateColumnObject(*session, "t", "v",
                                      RectCm{2.0, 1.0, 2.0, 10.0})
                  .ok());
  Kernel reference;
  TraceBuilder builder(reference.device());
  // Every read fails: the first tap's fetch exhausts its retries, the
  // resume sheds the parked gesture, and the session stays serviceable.
  remote_server.FailNextReads(1'000);
  ASSERT_TRUE(server
                  .SubmitTrace(*session,
                               builder.Tap("tap", PointCm{3.0, 6.0}),
                               {/*paced=*/false})
                  .ok());
  ASSERT_TRUE(server.Drain().ok());
  {
    const ServerStatsSnapshot stats = server.stats();
    EXPECT_GE(stats.fetch.fetch_errors, 1);
    EXPECT_GE(stats.fetch.shed_on_fetch_error, 1);
  }
  // The tier heals; the same session answers the next touch normally.
  remote_server.FailNextReads(0);
  ASSERT_TRUE(server
                  .SubmitTrace(*session,
                               builder.Tap("tap2", PointCm{3.0, 8.0}, 0.05,
                                           /*start_time_us=*/1'000'000),
                               {/*paced=*/false})
                  .ok());
  ASSERT_TRUE(server.Drain().ok());
  ASSERT_TRUE(server
                  .WithSession(*session,
                               [](Kernel& kernel) {
                                 ASSERT_EQ(kernel.results().size(), 1u);
                                 const auto& item =
                                     kernel.results().items().front();
                                 EXPECT_EQ(item.value.AsInt(), item.row);
                                 EXPECT_FALSE(
                                     kernel.has_pending_gestures());
                               })
                  .ok());
  ASSERT_TRUE(server.Stop().ok());
}

TEST(TouchServerAsyncTest, CloseSessionCancelsQueuedFetchTickets) {
  // ONE fetcher: session A's fetch is in flight at the gate, session B's
  // is still queued behind it. Closing B must retract B's ticket — the
  // provider never reads B's block — while A's in-flight fetch settles
  // normally.
  TouchServerConfig config = ColdTierConfig(1);
  config.session_defaults.buffer.fetch.num_fetchers = 1;
  TouchServer server(config);
  auto table = SequenceTable("t", 0);
  ASSERT_TRUE(server.RegisterTable(table).ok());
  auto provider = std::make_shared<GatedSlowProvider>(table, 0, 1'024);
  ASSERT_TRUE(server.shared().SetColumnProvider("t", 0, provider).ok());
  ASSERT_TRUE(server.Start().ok());

  const auto a = server.OpenSession();
  const auto b = server.OpenSession();
  ASSERT_TRUE(a.ok() && b.ok());
  for (const auto& session : {a, b}) {
    ASSERT_TRUE(server
                    .CreateColumnObject(*session, "t", "v",
                                        RectCm{2.0, 1.0, 2.0, 10.0})
                    .ok());
  }
  Kernel reference;
  TraceBuilder builder(reference.device());
  // Taps at different heights -> different rows -> different blocks.
  ASSERT_TRUE(server
                  .SubmitTrace(*a, builder.Tap("a", PointCm{3.0, 2.0}),
                               {/*paced=*/false})
                  .ok());
  provider->AwaitFetchStarted(1);  // A's fetch holds the only fetcher.
  ASSERT_TRUE(server
                  .SubmitTrace(*b, builder.Tap("b", PointCm{3.0, 10.0}),
                               {/*paced=*/false})
                  .ok());
  // Wait until B's demand ticket is actually in the queue (the enqueue
  // counter, not the suspend counter — the suspend is recorded just
  // before the tickets are filed).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().fetch.demand_fetches < 2) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "session B's fetch ticket never queued";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  ASSERT_TRUE(server.CloseSession(*b).ok());
  {
    const ServerStatsSnapshot stats = server.stats();
    EXPECT_EQ(stats.fetch.cancelled_fetches, 1);
  }
  provider->OpenGate();
  ASSERT_TRUE(server.Drain().ok());

  // Only A's block was ever read from the cold tier.
  EXPECT_EQ(provider->fetches(), 1);
  ASSERT_TRUE(server
                  .WithSession(*a,
                               [](Kernel& kernel) {
                                 ASSERT_EQ(kernel.results().size(), 1u);
                                 const auto& item =
                                     kernel.results().items().front();
                                 EXPECT_EQ(item.value.AsInt(), item.row);
                               })
                  .ok());
  ASSERT_TRUE(server.Stop().ok());
}

TEST(TouchServerAsyncTest, ManySessionsColdTierStress) {
  // Many sessions sliding over a flaky cold tier with few workers: the
  // TSan job runs this to shake out races between workers, fetchers,
  // completions and stats snapshots.
  constexpr int kSessions = 6;
  TouchServerConfig config = ColdTierConfig(3);
  config.session_defaults.buffer.fetch.num_fetchers = 2;
  TouchServer server(config);
  auto table = SequenceTable("t", 0);
  ASSERT_TRUE(server.RegisterTable(table).ok());
  remote::RemoteServer remote_server(table->ColumnViewAt(0));
  auto provider = std::make_shared<cache::RemoteBlockProvider>(
      &remote_server, storage::DataType::kInt64, 1'024);
  ASSERT_TRUE(server.shared().SetColumnProvider("t", 0, provider).ok());
  remote_server.set_fail_every(7);  // Steady transient flakiness.
  ASSERT_TRUE(server.Start().ok());

  Kernel reference;
  const sim::GestureTrace trace = SlideOver(server, reference, 0.5);
  std::vector<SessionId> ids;
  for (int i = 0; i < kSessions; ++i) {
    const auto session = server.OpenSession();
    ASSERT_TRUE(session.ok());
    ids.push_back(*session);
    const auto object = server.CreateColumnObject(
        *session, "t", "v", RectCm{2.0, 1.0, 2.0, 10.0});
    ASSERT_TRUE(object.ok());
  }
  std::vector<std::thread> submitters;
  submitters.reserve(kSessions);
  for (const SessionId id : ids) {
    submitters.emplace_back([&server, &trace, id] {
      EXPECT_TRUE(server.SubmitTrace(id, trace, {/*paced=*/false}).ok());
    });
  }
  for (std::thread& t : submitters) {
    t.join();
  }
  ASSERT_TRUE(server.Drain().ok());
  const ServerStatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.executed + stats.dropped_quanta, stats.submitted);
  EXPECT_GE(stats.fetch.suspended_quanta, 1);
  EXPECT_EQ(stats.fetch.suspended_quanta, stats.fetch.resumed_quanta);
  // Sequence data: every answered value equals its row id, whichever
  // worker/fetcher interleaving produced it.
  for (const SessionId id : ids) {
    ASSERT_TRUE(server
                    .WithSession(id,
                                 [](Kernel& kernel) {
                                   for (const auto& item :
                                        kernel.results().items()) {
                                     EXPECT_EQ(item.value.AsInt(),
                                               item.row);
                                   }
                                   EXPECT_FALSE(
                                       kernel.has_pending_gestures());
                                 })
                    .ok());
  }
  ASSERT_TRUE(server.Stop().ok());
}

}  // namespace
}  // namespace dbtouch::server
