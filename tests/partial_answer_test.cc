// Tests for the deadline-sacred partial-answer path: scheduler ordering
// of refinement quanta, the wire protocol's append-only partial-answer
// extension (old clients must keep decoding), and the end-to-end server
// contract — at deadline pressure a fetch-stalled quantum answers
// coarsely on time, and every partial answer is later refined to a
// result bit-identical to a blocking full-fidelity execution.

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/block_provider.h"
#include "core/kernel.h"
#include "core/result_stream.h"
#include "gateway/wire.h"
#include "server/api.h"
#include "server/frame_scheduler.h"
#include "server/server_stats.h"
#include "server/touch_server.h"
#include "sim/motion_profile.h"
#include "sim/trace_builder.h"
#include "storage/datagen.h"

namespace dbtouch::server {
namespace {

using core::ActionConfig;
using core::Kernel;
using sim::MotionProfile;
using sim::PointCm;
using sim::TraceBuilder;
using storage::Column;
using storage::Table;
using touch::RectCm;

// ---- FrameScheduler: refinement re-queue ordering ---------------------------

TouchTask MakeTask(std::int64_t session, sim::Micros deadline,
                   sim::Micros release = 0) {
  TouchTask task;
  task.session_id = session;
  task.release_us = release;
  task.deadline_us = deadline;
  return task;
}

TouchTask MakeRefineTask(std::int64_t session, sim::Micros deadline) {
  TouchTask task = MakeTask(session, deadline);
  task.refine = true;
  return task;
}

TEST(RefinementSchedulingTest, PushFrontRunsAheadOfUnreleasedTouches) {
  // The session's next touch is not released for another 100 ms. A
  // refinement whose blocks just landed must not wait it out: PushFront
  // puts it at the head and it pops immediately.
  FrameScheduler scheduler;
  const sim::Micros now = SteadyNowUs();
  scheduler.Push(MakeTask(1, now + 200'000, now + 100'000));
  scheduler.PushFront(MakeRefineTask(1, now + 5'000));
  const auto popped = scheduler.PopRunnable();
  ASSERT_TRUE(popped.has_value());
  EXPECT_TRUE(popped->refine);
  scheduler.OnTaskDone(1);
  // The ordinary touch is still queued, gated by its release time.
  EXPECT_EQ(scheduler.PendingOf(1), 1u);
}

TEST(RefinementSchedulingTest, PushFrontJumpsAheadOfReleasedQueueToo) {
  FrameScheduler scheduler;
  const sim::Micros now = SteadyNowUs();
  scheduler.Push(MakeTask(1, now + 50'000));
  scheduler.Push(MakeTask(1, now + 60'000));
  scheduler.PushFront(MakeRefineTask(1, now + 70'000));
  // Within a session the queue is strict FIFO, so front position — not
  // deadline — decides: the refinement runs first.
  const auto popped = scheduler.PopRunnable();
  ASSERT_TRUE(popped.has_value());
  EXPECT_TRUE(popped->refine);
  scheduler.OnTaskDone(1);
  const auto next = scheduler.PopRunnable();
  ASSERT_TRUE(next.has_value());
  EXPECT_FALSE(next->refine);
  EXPECT_EQ(next->deadline_us, now + 50'000);
  scheduler.OnTaskDone(1);
}

TEST(RefinementSchedulingTest, RefinementsCompeteByDeadlineAcrossSessions) {
  // Across sessions EDF still rules: a refinement with a later (EWMA-
  // extended) deadline yields to another session's earlier-deadline touch.
  FrameScheduler scheduler;
  const sim::Micros now = SteadyNowUs();
  scheduler.PushFront(MakeRefineTask(1, now + 300'000));
  scheduler.Push(MakeTask(2, now + 100'000));
  const auto first = scheduler.PopRunnable();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->session_id, 2);
  EXPECT_FALSE(first->refine);
  const auto second = scheduler.PopRunnable();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->session_id, 1);
  EXPECT_TRUE(second->refine);
  scheduler.OnTaskDone(1);
  scheduler.OnTaskDone(2);
}

TEST(RefinementSchedulingTest, ParkedSessionHoldsQueuedRefinement) {
  // A refinement pushed to a session parked on a classic fetch waits for
  // the unpark — the parked resume quantum owns the kernel's pending
  // queue and must re-enter first.
  FrameScheduler scheduler;
  const sim::Micros now = SteadyNowUs();
  scheduler.Push(MakeTask(1, now + 10'000));
  auto popped = scheduler.PopRunnable();
  ASSERT_TRUE(popped.has_value());
  scheduler.ParkForFetch(std::move(*popped));
  scheduler.PushFront(MakeRefineTask(1, now + 5'000));
  scheduler.Push(MakeTask(2, now + 500'000));
  const auto other = scheduler.PopRunnable();
  ASSERT_TRUE(other.has_value());
  EXPECT_EQ(other->session_id, 2);  // Session 1 is parked; skipped.
  scheduler.OnTaskDone(2);
  scheduler.Unpark(1);
  const auto refine = scheduler.PopRunnable();
  ASSERT_TRUE(refine.has_value());
  EXPECT_EQ(refine->session_id, 1);
  EXPECT_TRUE(refine->refine);
  scheduler.OnTaskDone(1);
}

// ---- Wire protocol: append-only partial-answer extension --------------------

api::SessionSnapshotResp SampleSnapshot() {
  api::SessionSnapshotResp resp;
  resp.session = 7;
  api::ObjectInfo object;
  object.object = 3;
  object.kind = 0;
  object.table = "t";
  object.column = 0;
  object.frame = {2.0, 1.0, 2.0, 10.0};
  object.tuple_count = 1'000;
  resp.objects.push_back(object);
  resp.touch_events = 12;
  resp.gesture_events = 9;
  resp.entries_returned = 5;
  resp.rows_scanned = 40;
  resp.result_count = 2;
  api::ResultInfo full;
  full.object = 3;
  full.row = 11;
  full.value = 11.0;
  api::ResultInfo partial;
  partial.object = 3;
  partial.row = 512;
  partial.value = 500.0;
  partial.approximate = true;
  partial.partial = true;
  partial.refine_seq = 2;
  resp.results.push_back(full);
  resp.results.push_back(partial);
  resp.partial_answers = 3;
  resp.refinements = 2;
  return resp;
}

/// Bytes the partial-answer extension appends after the v1 payload:
/// partial_answers (i64) + refinements (i64) + flag count (u32) + one
/// (bool, i64) pair per result.
std::size_t ExtensionBytes(const api::SessionSnapshotResp& resp) {
  return 8 + 8 + 4 + resp.results.size() * (1 + 8);
}

TEST(PartialAnswerWireTest, SnapshotRoundTripPreservesPartialFlags) {
  const api::SessionSnapshotResp resp = SampleSnapshot();
  gateway::WireWriter w;
  Encode(resp, w);
  gateway::WireReader r(w.buffer());
  api::SessionSnapshotResp decoded;
  ASSERT_TRUE(Decode(r, &decoded).ok());
  EXPECT_EQ(decoded, resp);
  EXPECT_TRUE(decoded.results[1].partial);
  EXPECT_EQ(decoded.results[1].refine_seq, 2);
}

TEST(PartialAnswerWireTest, OldClientDecodesV1PrefixWithoutExtension) {
  // An old client's decoder consumed exactly the v1 payload and knows
  // nothing of the trailing extension. Emulate it by handing the new
  // decoder only the v1 prefix of a new server's frame: decoding must
  // succeed and the partial-answer fields must keep their defaults.
  const api::SessionSnapshotResp resp = SampleSnapshot();
  gateway::WireWriter w;
  Encode(resp, w);
  const std::string& buffer = w.buffer();
  ASSERT_GT(buffer.size(), ExtensionBytes(resp));
  const std::string_view v1_prefix(buffer.data(),
                                   buffer.size() - ExtensionBytes(resp));
  gateway::WireReader r(v1_prefix);
  api::SessionSnapshotResp decoded;
  ASSERT_TRUE(Decode(r, &decoded).ok());
  // Every v1 field survived...
  EXPECT_EQ(decoded.session, resp.session);
  EXPECT_EQ(decoded.objects, resp.objects);
  EXPECT_EQ(decoded.result_count, resp.result_count);
  ASSERT_EQ(decoded.results.size(), resp.results.size());
  EXPECT_EQ(decoded.results[0].row, resp.results[0].row);
  EXPECT_EQ(decoded.results[1].row, resp.results[1].row);
  // ...and the extension fields are the zero defaults, not garbage.
  EXPECT_EQ(decoded.partial_answers, 0);
  EXPECT_EQ(decoded.refinements, 0);
  EXPECT_FALSE(decoded.results[1].partial);
  EXPECT_EQ(decoded.results[1].refine_seq, 0);
}

TEST(PartialAnswerWireTest, TruncatedExtensionFailsCleanly) {
  // A frame cut mid-extension is malformed, not a v1 frame: the decoder
  // must return an error (and not crash), never half-applied flags.
  const api::SessionSnapshotResp resp = SampleSnapshot();
  gateway::WireWriter w;
  Encode(resp, w);
  const std::string& buffer = w.buffer();
  const std::string_view cut(buffer.data(), buffer.size() - 1);
  gateway::WireReader r(cut);
  api::SessionSnapshotResp decoded;
  EXPECT_FALSE(Decode(r, &decoded).ok());
}

// ---- End-to-end: deadline-preserving partial dispatch -----------------------

constexpr std::int64_t kRows = 20'000;
constexpr std::int64_t kRowsPerBlock = 1'024;
constexpr double kFetchLatencyMs = 12.0;
constexpr sim::Micros kBudgetUs = 5'000;

/// Async provider with a fixed per-fetch latency: every cold block costs
/// kFetchLatencyMs, far beyond the frame budget, so a classic park
/// guarantees a deadline miss while a partial answer meets it.
class SlowTierProvider final : public cache::BlockProvider {
 public:
  SlowTierProvider(std::shared_ptr<const Table> table, std::size_t column,
                   std::int64_t rows_per_block)
      : inner_(std::move(table), column, rows_per_block) {}

  const cache::BlockGeometry& geometry() const override {
    return inner_.geometry();
  }
  const storage::Dictionary* dictionary() const override {
    return inner_.dictionary();
  }
  bool async() const override { return true; }

  Result<std::vector<std::byte>> Fetch(std::int64_t block) override {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(kFetchLatencyMs));
    return inner_.Fetch(block);
  }

 private:
  cache::TableBlockProvider inner_;
};

std::shared_ptr<Table> SequenceTable(const std::string& name) {
  std::vector<Column> cols;
  cols.push_back(storage::GenSequenceInt64("v", kRows, 0, 1));
  auto table = Table::FromColumns(name, std::move(cols));
  EXPECT_TRUE(table.ok());
  return *table;
}

TouchServerConfig PartialAnswerConfig(bool partial_answers) {
  TouchServerConfig config;
  config.num_workers = 2;
  config.async_fetch = true;
  config.partial_answers = partial_answers;
  config.base_frame_budget_us = kBudgetUs;
  config.min_frame_budget_us = kBudgetUs;
  config.est_row_ns = 0.0;
  config.drop_slack_us = 3'600'000'000;  // Never drop: count misses instead.
  config.session_defaults.buffer.rows_per_block = kRowsPerBlock;
  config.session_defaults.buffer.fetch.num_fetchers = 2;
  // Isolate the partial-answer mechanism from prefetch warm-ups.
  config.session_defaults.prefetch_enabled = false;
  return config;
}

struct ArmResult {
  std::int64_t executed = 0;
  std::int64_t misses = 0;
  std::int64_t partials = 0;
  std::int64_t refinements = 0;
  std::int64_t refinements_shed = 0;
};

/// Runs the cold-fault regime against one server arm: a warm-up tap that
/// seeds the fetch-latency EWMA (deadlines extend only by MEASURED
/// latency) and warms the first block, then a paced slide over the cold
/// column. Returns the slide's stats delta; `inspect` (optional) runs
/// against the session kernel after Drain.
ArmResult RunColdSlide(
    bool partial_answers,
    const std::function<void(TouchServer&, SessionId)>& inspect = {}) {
  TouchServer server(PartialAnswerConfig(partial_answers));
  auto table = SequenceTable("cold");
  EXPECT_TRUE(server.RegisterTable(table).ok());
  auto provider =
      std::make_shared<SlowTierProvider>(table, 0, kRowsPerBlock);
  EXPECT_TRUE(server.shared().SetColumnProvider("cold", 0, provider).ok());
  EXPECT_TRUE(server.Start().ok());

  const auto session = server.OpenSession();
  EXPECT_TRUE(session.ok());
  const auto object = server.CreateColumnObject(*session, "cold", "v",
                                                RectCm{2.0, 1.0, 2.0, 10.0});
  EXPECT_TRUE(object.ok());
  EXPECT_TRUE(server.SetAction(*session, *object, ActionConfig::Scan()).ok());

  Kernel reference;
  TraceBuilder builder(reference.device());
  EXPECT_TRUE(server
                  .SubmitTrace(*session,
                               builder.Tap("warm", PointCm{3.0, 1.0}),
                               {/*paced=*/false})
                  .ok());
  EXPECT_TRUE(server.Drain().ok());
  const ServerStatsSnapshot before = server.stats();

  EXPECT_TRUE(server
                  .SubmitTrace(*session,
                               builder.Slide("slide", PointCm{3.0, 1.0},
                                             PointCm{3.0, 11.0},
                                             MotionProfile::Constant(1.0)),
                               {/*paced=*/true})
                  .ok());
  EXPECT_TRUE(server.Drain().ok());
  const ServerStatsSnapshot after = server.stats();

  ArmResult result;
  result.executed = after.executed - before.executed;
  result.misses = after.deadline_misses - before.deadline_misses;
  result.partials = after.partial_answers - before.partial_answers;
  result.refinements = after.refinements - before.refinements;
  result.refinements_shed =
      after.refinements_shed - before.refinements_shed;
  if (inspect) {
    inspect(server, *session);
  }
  EXPECT_TRUE(server.Stop().ok());
  return result;
}

TEST(PartialAnswerServerTest, ClassicParkingMissesDeadlinesUnderColdFaults) {
  // Control arm: with partial answers off, every cold stall parks the
  // session for a fetch that alone exceeds the frame budget — misses are
  // structural, not scheduling noise.
  const ArmResult classic = RunColdSlide(/*partial_answers=*/false);
  ASSERT_GT(classic.executed, 0);
  EXPECT_GE(classic.misses * 4, classic.executed);  // >= 25% missed.
  EXPECT_EQ(classic.partials, 0);
  EXPECT_EQ(classic.refinements, 0);
}

TEST(PartialAnswerServerTest, PartialDispatchPreservesDeadlinesAndConverges) {
  Kernel full_fidelity;
  ASSERT_TRUE(full_fidelity.RegisterTable(SequenceTable("cold")).ok());
  const auto ref_object = full_fidelity.CreateColumnObject(
      "cold", "v", RectCm{2.0, 1.0, 2.0, 10.0});
  ASSERT_TRUE(ref_object.ok());
  ASSERT_TRUE(
      full_fidelity.SetAction(*ref_object, ActionConfig::Scan()).ok());
  TraceBuilder ref_builder(full_fidelity.device());
  full_fidelity.Replay(ref_builder.Tap("warm", PointCm{3.0, 1.0}));
  full_fidelity.Replay(ref_builder.Slide("slide", PointCm{3.0, 1.0},
                                         PointCm{3.0, 11.0},
                                         MotionProfile::Constant(1.0)));
  // The blocking reference kernel's answers, by base row.
  std::map<storage::RowId, std::int64_t> reference_values;
  for (const auto& item : full_fidelity.results().items()) {
    if (item.kind == core::ResultKind::kValue) {
      reference_values[item.row] = item.value.AsInt();
    }
  }
  ASSERT_FALSE(reference_values.empty());

  const ArmResult partial = RunColdSlide(
      /*partial_answers=*/true,
      [&](TouchServer& server, SessionId session) {
        // Every partial answer must have converged: a later full-fidelity
        // item for the same object and row, bit-identical to the blocking
        // reference kernel's value.
        ASSERT_TRUE(
            server
                .WithSession(session,
                             [&](Kernel& kernel) {
                               const auto& items =
                                   kernel.results().items();
                               std::int64_t checked = 0;
                               for (std::size_t i = 0; i < items.size();
                                    ++i) {
                                 if (!items[i].partial) {
                                   continue;
                                 }
                                 bool refined = false;
                                 for (std::size_t j = i + 1;
                                      j < items.size(); ++j) {
                                   if (items[j].partial ||
                                       items[j].object !=
                                           items[i].object ||
                                       items[j].row != items[i].row) {
                                     continue;
                                   }
                                   refined = true;
                                   ASSERT_TRUE(reference_values.count(
                                       items[j].row));
                                   EXPECT_EQ(
                                       items[j].value.AsInt(),
                                       reference_values[items[j].row]);
                                   break;
                                 }
                                 EXPECT_TRUE(refined)
                                     << "partial answer at row "
                                     << items[i].row << " never refined";
                                 ++checked;
                               }
                               EXPECT_GT(checked, 0);
                             })
                .ok());
        // The api layer reports the same story: partial counters are up
        // and the result tail carries partial-flagged entries.
        api::SessionSnapshotReq req;
        req.session = session;
        req.max_results = 100'000;
        const auto resp = server.Call(req);
        ASSERT_TRUE(resp.ok());
        EXPECT_GT(resp->partial_answers, 0);
        EXPECT_GT(resp->refinements, 0);
        bool saw_partial_flag = false;
        for (const auto& info : resp->results) {
          saw_partial_flag = saw_partial_flag || info.partial;
        }
        EXPECT_TRUE(saw_partial_flag);
      });

  ASSERT_GT(partial.executed, 0);
  // The deadline is sacred: coarse-from-resident answers keep the touch
  // inside its frame budget. A small allowance absorbs scheduler jitter
  // on loaded CI runners; the classic arm misses >= 25% structurally.
  EXPECT_LE(partial.misses * 10, partial.executed);
  EXPECT_GT(partial.partials, 0);
  // Convergence: every partial answer was refined (none shed — the tier
  // serves every fetch eventually).
  EXPECT_EQ(partial.partials,
            partial.refinements + partial.refinements_shed);
  EXPECT_EQ(partial.refinements_shed, 0);
}

}  // namespace
}  // namespace dbtouch::server
