// Unit tests for the monolithic DBMS baseline.

#include <gtest/gtest.h>

#include <memory>

#include "baseline/monolithic.h"
#include "storage/catalog.h"
#include "storage/datagen.h"

namespace dbtouch::baseline {
namespace {

using storage::Catalog;
using storage::Column;
using storage::Table;

class BaselineTest : public testing::Test {
 protected:
  void SetUp() override {
    std::vector<Column> cols;
    cols.push_back(Column::FromInt32("k", {1, 2, 3, 2, 1}));
    cols.push_back(Column::FromDouble("v", {10.0, 20.0, 30.0, 40.0, 50.0}));
    ASSERT_TRUE(catalog_.Register(*Table::FromColumns("t", std::move(cols)))
                    .ok());
    std::vector<Column> other;
    other.push_back(Column::FromInt32("k2", {2, 3, 9}));
    ASSERT_TRUE(
        catalog_.Register(*Table::FromColumns("u", std::move(other))).ok());
  }

  Catalog catalog_;
};

TEST_F(BaselineTest, AggregateFullColumn) {
  const MonolithicExecutor exec(&catalog_);
  const auto r = exec.Aggregate("t", "v", exec::AggKind::kSum);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_DOUBLE_EQ(r->value, 150.0);
  EXPECT_EQ(r->rows_scanned, 5);
  EXPECT_GE(r->wall_ms, 0.0);
}

TEST_F(BaselineTest, AggregateWithPredicate) {
  const MonolithicExecutor exec(&catalog_);
  const auto r = exec.Aggregate("t", "v", exec::AggKind::kCount,
                                exec::Predicate(exec::CompareOp::kGt, 25.0));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->value, 3.0);  // 30, 40, 50.
  EXPECT_EQ(r->rows_scanned, 5);    // Monolithic: scans everything anyway.
}

TEST_F(BaselineTest, FindExtreme) {
  const MonolithicExecutor exec(&catalog_);
  const auto max = exec.FindExtreme("t", "v", /*find_max=*/true);
  ASSERT_TRUE(max.ok());
  EXPECT_EQ(max->row, 4);
  EXPECT_DOUBLE_EQ(max->value, 50.0);
  const auto min = exec.FindExtreme("t", "v", /*find_max=*/false);
  ASSERT_TRUE(min.ok());
  EXPECT_EQ(min->row, 0);
}

TEST_F(BaselineTest, HashJoinCountsMatches) {
  const MonolithicExecutor exec(&catalog_);
  const auto r = exec.HashJoin("t", "k", "u", "k2");
  ASSERT_TRUE(r.ok()) << r.status();
  // t.k = {1,2,3,2,1}; u.k2 = {2,3,9}: matches = 2 (k=2) x2 rows + 1 (k=3).
  EXPECT_EQ(r->matches, 3);
  EXPECT_EQ(r->rows_scanned, 8);
  EXPECT_GE(r->total_ms, r->build_ms);
}

TEST_F(BaselineTest, JoinRejectsFloatKeys) {
  const MonolithicExecutor exec(&catalog_);
  EXPECT_TRUE(
      exec.HashJoin("t", "v", "u", "k2").status().IsInvalidArgument());
}

TEST_F(BaselineTest, MissingTableOrColumn) {
  const MonolithicExecutor exec(&catalog_);
  EXPECT_TRUE(exec.Aggregate("ghost", "v", exec::AggKind::kSum)
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(exec.Aggregate("t", "ghost", exec::AggKind::kSum)
                  .status()
                  .IsNotFound());
}

TEST_F(BaselineTest, CountWhere) {
  const MonolithicExecutor exec(&catalog_);
  const auto r = exec.CountWhere("t", "v", exec::Predicate(15.0, 45.0));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->value, 3.0);  // 20, 30, 40.
}

TEST(BaselineScaleTest, MonolithicScansEverything) {
  Catalog catalog;
  std::vector<Column> cols;
  cols.push_back(storage::MakePaperEvalColumn(200'000));
  ASSERT_TRUE(
      catalog.Register(*Table::FromColumns("big", std::move(cols))).ok());
  const MonolithicExecutor exec(&catalog);
  const auto r = exec.Aggregate("big", "values", exec::AggKind::kAvg);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows_scanned, 200'000);
  // Uniform [0, 10^6]: mean near 500k.
  EXPECT_NEAR(r->value, 500'000.0, 5'000.0);
}

}  // namespace
}  // namespace dbtouch::baseline
