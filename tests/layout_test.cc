// Unit tests for incremental layout rotation and schema restructuring.

#include <gtest/gtest.h>

#include <memory>

#include "layout/restructure.h"
#include "layout/rotation.h"
#include "storage/catalog.h"
#include "storage/datagen.h"

namespace dbtouch::layout {
namespace {

using storage::Catalog;
using storage::Column;
using storage::MajorOrder;
using storage::RowId;
using storage::Table;

std::shared_ptr<Table> MakeTable(std::int64_t rows, MajorOrder order) {
  std::vector<Column> cols;
  cols.push_back(storage::GenSequenceInt64("id", rows, 0, 1));
  cols.push_back(storage::GenUniformInt32("a", rows, 0, 999, 1));
  cols.push_back(storage::GenGaussianDouble("b", rows, 5.0, 1.0, 2));
  auto t = Table::FromColumns("t", std::move(cols), order);
  return std::move(t).value();
}

TEST(RotatorTest, NoopWhenAlreadyInTargetOrder) {
  auto t = MakeTable(100, MajorOrder::kColumnMajor);
  IncrementalRotator rotator(t.get(), MajorOrder::kColumnMajor, 10);
  EXPECT_TRUE(rotator.IsNoop());
  EXPECT_TRUE(rotator.done());
  EXPECT_TRUE(rotator.Finish().ok());
  EXPECT_EQ(t->layout(), MajorOrder::kColumnMajor);
}

TEST(RotatorTest, StepsConvertBoundedChunks) {
  auto t = MakeTable(1000, MajorOrder::kColumnMajor);
  IncrementalRotator rotator(t.get(), MajorOrder::kRowMajor, 100);
  EXPECT_FALSE(rotator.done());
  rotator.Step();
  EXPECT_EQ(rotator.rows_converted(), 100);
  EXPECT_NEAR(rotator.progress(), 0.1, 1e-9);
  // Reads still come from the old layout mid-conversion.
  EXPECT_EQ(t->layout(), MajorOrder::kColumnMajor);
  EXPECT_EQ(t->GetValue(999, 0).AsInt(), 999);
}

TEST(RotatorTest, FinishBeforeDoneFails) {
  auto t = MakeTable(1000, MajorOrder::kColumnMajor);
  IncrementalRotator rotator(t.get(), MajorOrder::kRowMajor, 100);
  rotator.Step();
  EXPECT_EQ(rotator.Finish().code(), StatusCode::kFailedPrecondition);
}

TEST(RotatorTest, CompleteRotationPreservesAllData) {
  auto t = MakeTable(1234, MajorOrder::kColumnMajor);
  // Record the table contents before rotation.
  std::vector<std::int64_t> ids;
  std::vector<double> bs;
  for (RowId r = 0; r < t->row_count(); ++r) {
    ids.push_back(t->GetValue(r, 0).AsInt());
    bs.push_back(t->GetValue(r, 2).AsDouble());
  }
  IncrementalRotator rotator(t.get(), MajorOrder::kRowMajor, 100);
  int steps = 0;
  while (!rotator.Step()) {
    ++steps;
  }
  EXPECT_GE(steps, 11);  // 1234/100 chunks.
  ASSERT_TRUE(rotator.Finish().ok());
  EXPECT_EQ(t->layout(), MajorOrder::kRowMajor);
  for (RowId r = 0; r < t->row_count(); ++r) {
    EXPECT_EQ(t->GetValue(r, 0).AsInt(), ids[static_cast<std::size_t>(r)]);
    EXPECT_DOUBLE_EQ(t->GetValue(r, 2).AsDouble(),
                     bs[static_cast<std::size_t>(r)]);
  }
}

TEST(RotatorTest, DoubleFinishFails) {
  auto t = MakeTable(50, MajorOrder::kColumnMajor);
  IncrementalRotator rotator(t.get(), MajorOrder::kRowMajor, 100);
  rotator.Step();
  ASSERT_TRUE(rotator.Finish().ok());
  EXPECT_EQ(rotator.Finish().code(), StatusCode::kFailedPrecondition);
}

TEST(RotatorTest, RoundTripRotationIsIdentity) {
  auto t = MakeTable(500, MajorOrder::kColumnMajor);
  const double before = t->GetValue(250, 2).AsDouble();
  for (const MajorOrder target :
       {MajorOrder::kRowMajor, MajorOrder::kColumnMajor}) {
    IncrementalRotator rotator(t.get(), target, 64);
    while (!rotator.Step()) {
    }
    ASSERT_TRUE(rotator.Finish().ok());
  }
  EXPECT_EQ(t->layout(), MajorOrder::kColumnMajor);
  EXPECT_DOUBLE_EQ(t->GetValue(250, 2).AsDouble(), before);
}

TEST(RotateMonolithicTest, ConvertsInOneCall) {
  auto t = MakeTable(300, MajorOrder::kRowMajor);
  ASSERT_TRUE(RotateMonolithic(t.get(), MajorOrder::kColumnMajor).ok());
  EXPECT_EQ(t->layout(), MajorOrder::kColumnMajor);
  EXPECT_EQ(t->GetValue(299, 0).AsInt(), 299);
  EXPECT_TRUE(RotateMonolithic(nullptr, MajorOrder::kColumnMajor)
                  .IsInvalidArgument());
}

TEST(RestructureTest, ExtractColumnToTable) {
  Catalog catalog;
  auto t = MakeTable(100, MajorOrder::kColumnMajor);
  ASSERT_TRUE(catalog.Register(t).ok());
  const auto extracted =
      ExtractColumnToTable(&catalog, *t, 2, "t_b");
  ASSERT_TRUE(extracted.ok()) << extracted.status();
  EXPECT_TRUE(catalog.Contains("t_b"));
  EXPECT_EQ((*extracted)->schema().num_fields(), 1u);
  EXPECT_EQ((*extracted)->row_count(), 100);
  EXPECT_DOUBLE_EQ((*extracted)->GetValue(42, 0).AsDouble(),
                   t->GetValue(42, 2).AsDouble());
}

TEST(RestructureTest, ExtractRejectsBadColumn) {
  Catalog catalog;
  auto t = MakeTable(10, MajorOrder::kColumnMajor);
  EXPECT_TRUE(ExtractColumnToTable(&catalog, *t, 99, "x")
                  .status()
                  .IsOutOfRange());
}

TEST(RestructureTest, GroupTablesCombinesColumns) {
  Catalog catalog;
  std::vector<Column> a;
  a.push_back(Column::FromInt32("x", {1, 2, 3}));
  ASSERT_TRUE(catalog.Register(*Table::FromColumns("ta", std::move(a))).ok());
  std::vector<Column> b;
  b.push_back(Column::FromDouble("y", {0.1, 0.2, 0.3}));
  ASSERT_TRUE(catalog.Register(*Table::FromColumns("tb", std::move(b))).ok());
  const auto grouped = GroupTables(&catalog, {"ta", "tb"}, "tc");
  ASSERT_TRUE(grouped.ok()) << grouped.status();
  EXPECT_EQ((*grouped)->schema().num_fields(), 2u);
  EXPECT_EQ((*grouped)->GetValue(1, 0).AsInt(), 2);
  EXPECT_DOUBLE_EQ((*grouped)->GetValue(1, 1).AsDouble(), 0.2);
  EXPECT_TRUE(catalog.Contains("tc"));
}

TEST(RestructureTest, GroupRejectsRaggedTables) {
  Catalog catalog;
  std::vector<Column> a;
  a.push_back(Column::FromInt32("x", {1, 2, 3}));
  ASSERT_TRUE(catalog.Register(*Table::FromColumns("ta", std::move(a))).ok());
  std::vector<Column> b;
  b.push_back(Column::FromInt32("y", {1}));
  ASSERT_TRUE(catalog.Register(*Table::FromColumns("tb", std::move(b))).ok());
  EXPECT_TRUE(GroupTables(&catalog, {"ta", "tb"}, "tc")
                  .status()
                  .IsInvalidArgument());
}

TEST(RestructureTest, GroupRejectsDuplicateColumnNames) {
  Catalog catalog;
  for (const char* name : {"ta", "tb"}) {
    std::vector<Column> cols;
    cols.push_back(Column::FromInt32("same", {1, 2}));
    ASSERT_TRUE(
        catalog.Register(*Table::FromColumns(name, std::move(cols))).ok());
  }
  EXPECT_TRUE(GroupTables(&catalog, {"ta", "tb"}, "tc")
                  .status()
                  .IsInvalidArgument());
}

TEST(RestructureTest, GroupRejectsMissingTable) {
  Catalog catalog;
  EXPECT_TRUE(
      GroupTables(&catalog, {"ghost"}, "tc").status().IsNotFound());
}

}  // namespace
}  // namespace dbtouch::layout
