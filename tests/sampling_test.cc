// Unit and property tests for the sample hierarchy and level policy.

#include <gtest/gtest.h>

#include <cstdint>

#include "sampling/level_policy.h"
#include "sampling/sample_hierarchy.h"
#include "storage/datagen.h"

namespace dbtouch::sampling {
namespace {

using storage::Column;
using storage::ColumnView;
using storage::RowId;

Column MakeSequential(std::int64_t n) {
  Column c("seq", storage::DataType::kInt32);
  c.Reserve(n);
  for (std::int64_t i = 0; i < n; ++i) {
    c.AppendInt32(static_cast<std::int32_t>(i));
  }
  return c;
}

TEST(SampleHierarchyTest, LevelZeroIsBase) {
  const Column base = MakeSequential(10000);
  SampleHierarchy h(base.View());
  EXPECT_EQ(h.LevelRows(0), 10000);
  EXPECT_EQ(h.LevelView(0).GetInt32(123), 123);
  EXPECT_TRUE(h.IsMaterialized(0));
}

TEST(SampleHierarchyTest, LevelCountRespectsMinRows) {
  const Column base = MakeSequential(10000);
  SampleHierarchyConfig config;
  config.min_level_rows = 1000;
  const SampleHierarchy h(base.View(), config);
  // 10000 -> 5000 -> 2500 -> 1250 -> 625(too small): levels 0..3.
  EXPECT_EQ(h.num_levels(), 4);
}

TEST(SampleHierarchyTest, LevelRowsHalve) {
  const Column base = MakeSequential(1 << 14);
  SampleHierarchyConfig config;
  config.min_level_rows = 256;
  const SampleHierarchy h(base.View(), config);
  for (int l = 1; l < h.num_levels(); ++l) {
    EXPECT_EQ(h.LevelRows(l), (1 << 14) >> l);
  }
}

TEST(SampleHierarchyTest, SampleRowsHoldStridedBaseValues) {
  const Column base = MakeSequential(4096);
  SampleHierarchy h(base.View());
  for (int l = 1; l < h.num_levels(); ++l) {
    const ColumnView level = h.LevelView(l);
    const std::int64_t stride = h.LevelStride(l);
    for (RowId s = 0; s < level.row_count(); ++s) {
      EXPECT_EQ(level.GetInt32(s), s * stride)
          << "level " << l << " sample row " << s;
    }
  }
}

TEST(SampleHierarchyTest, RowMappingsRoundTrip) {
  const Column base = MakeSequential(100000);
  SampleHierarchy h(base.View());
  for (int l = 0; l < h.num_levels(); ++l) {
    for (const RowId base_row : {0L, 17L, 99999L, 51200L}) {
      const RowId s = h.FromBaseRow(l, base_row);
      const RowId back = h.ToBaseRow(l, s);
      EXPECT_LE(back, base_row);
      EXPECT_GT(back + h.LevelStride(l), base_row);
    }
  }
}

TEST(SampleHierarchyTest, LazyMaterialization) {
  const Column base = MakeSequential(1 << 16);
  SampleHierarchyConfig config;
  config.eager = false;
  SampleHierarchy h(base.View(), config);
  ASSERT_GT(h.num_levels(), 3);
  EXPECT_FALSE(h.IsMaterialized(2));
  EXPECT_EQ(h.sample_bytes(), 0u);
  h.EnsureLevel(2);
  EXPECT_TRUE(h.IsMaterialized(2));
  // Building level 2 materialises the chain below it.
  EXPECT_TRUE(h.IsMaterialized(1));
  EXPECT_GT(h.sample_bytes(), 0u);
  // Reading a view materialises on demand.
  const int top = h.num_levels() - 1;
  EXPECT_EQ(h.LevelView(top).GetInt32(1), h.LevelStride(top));
  EXPECT_TRUE(h.IsMaterialized(top));
}

TEST(SampleHierarchyTest, SampleBytesGeometricBound) {
  const Column base = MakeSequential(1 << 18);
  SampleHierarchy h(base.View());
  // Sum of all levels above base is < base size (geometric series).
  EXPECT_LT(h.sample_bytes(), base.raw_size());
}

TEST(SampleHierarchyTest, WorksForDoubles) {
  const Column base =
      storage::GenGaussianDouble("g", 8192, 10.0, 1.0, 42);
  SampleHierarchy h(base.View());
  const ColumnView l2 = h.LevelView(2);
  for (RowId s = 0; s < 16; ++s) {
    EXPECT_DOUBLE_EQ(l2.GetDouble(s), base.View().GetDouble(s * 4));
  }
}

TEST(SampleHierarchyTest, TinyBaseHasSingleLevel) {
  const Column base = MakeSequential(10);
  const SampleHierarchy h(base.View());
  EXPECT_EQ(h.num_levels(), 1);
}

TEST(LevelPolicyTest, FinePositionsUseBase) {
  // 1000 rows over 2000 positions: every tuple individually addressable.
  EXPECT_EQ(ChooseLevel(1000, 2000, 1.0, 8), 0);
}

TEST(LevelPolicyTest, CoarseObjectsUseHighLevels) {
  // 10^7 rows over ~520 positions (10cm at 52/cm): stride ~19230 -> level 14.
  const int level = ChooseLevel(10'000'000, 520, 1.0, 20);
  EXPECT_GE(level, 13);
  EXPECT_LE(level, 15);
}

TEST(LevelPolicyTest, ClampsToAvailableLevels) {
  EXPECT_EQ(ChooseLevel(10'000'000, 520, 1.0, 5), 4);
}

TEST(LevelPolicyTest, FasterGesturesCoarsen) {
  const int slow = ChooseLevel(10'000'000, 520, 1.0, 20);
  const int fast = ChooseLevel(10'000'000, 520, 8.0, 20);
  EXPECT_GT(fast, slow);
}

TEST(LevelPolicyTest, SpeedWeightZeroDisablesCoarsening) {
  LevelPolicyConfig config;
  config.speed_weight = 0.0;
  const int slow = ChooseLevel(10'000'000, 520, 1.0, 20, config);
  const int fast = ChooseLevel(10'000'000, 520, 8.0, 20, config);
  EXPECT_EQ(fast, slow);
}

TEST(LevelPolicyTest, DegenerateInputsReturnBase) {
  EXPECT_EQ(ChooseLevel(0, 100, 1.0, 8), 0);
  EXPECT_EQ(ChooseLevel(100, 0, 1.0, 8), 0);
  EXPECT_EQ(ChooseLevel(100, 100, 1.0, 1), 0);
}

// Property sweep: the chosen level's stride never exceeds the touch
// distance more than the configured overshoot, and never wastes more than
// 2x (the next level up would also have fit).
class LevelPolicyPropertyTest
    : public testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {
};

TEST_P(LevelPolicyPropertyTest, StrideMatchesTouchDistance) {
  const auto [rows, positions] = GetParam();
  const int level = ChooseLevel(rows, positions, 1.0, 30);
  const double rows_per_position =
      static_cast<double>(rows) / static_cast<double>(positions);
  const double stride = static_cast<double>(std::int64_t{1} << level);
  EXPECT_LE(stride, std::max(rows_per_position, 1.0))
      << "level overshoots touch distance";
  if (level + 1 < 30 && rows_per_position >= 2.0) {
    EXPECT_GT(stride * 2.0, rows_per_position / 2.0)
        << "level is needlessly fine";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LevelPolicyPropertyTest,
    testing::Combine(testing::Values<std::int64_t>(1'000, 100'000, 10'000'000,
                                                   1'000'000'000),
                     testing::Values<std::int64_t>(52, 520, 1040, 5200)));

}  // namespace
}  // namespace dbtouch::sampling
