// Spill reclamation: SpillTable(reclaim_raw) must actually free the
// table's matrix — MemoryTracker-verified — while every remaining reader
// (taps and group-bys via Table::GetValue, sample-hierarchy rebuilds,
// zone maps, CSV export, column extraction) keeps answering bit-identical
// through PagedColumnSource pins. Plus the race edges: a raw reader in
// flight makes reclamation wait, a stale provider fails cleanly after it.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/block_provider.h"
#include "cache/buffer_manager.h"
#include "core/kernel.h"
#include "core/shared_state.h"
#include "index/zone_map.h"
#include "sim/motion_profile.h"
#include "sim/trace_builder.h"
#include "storage/csv_loader.h"
#include "storage/datagen.h"
#include "storage/memory_tracker.h"
#include "storage/paged_column.h"
#include "storage/spill.h"
#include "storage/table.h"

namespace dbtouch {
namespace {

using core::ActionConfig;
using core::Kernel;
using core::KernelConfig;
using sim::MotionProfile;
using sim::PointCm;
using sim::TraceBuilder;
using storage::Column;
using storage::MemoryTracker;
using storage::RowId;
using storage::SpillOptions;
using storage::Table;
using storage::TableSpiller;
using touch::RectCm;

class ScratchDir {
 public:
  ScratchDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "dbtouch_reclaim_XXXXXX")
                           .string();
    path_ = ::mkdtemp(tmpl.data());
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::shared_ptr<Table> MixedTable(const std::string& name,
                                  std::int64_t rows) {
  std::vector<Column> cols;
  cols.push_back(storage::GenSequenceInt64("v", rows, 0, 1));
  cols.push_back(storage::GenCategorical(
      "tag", rows, {"alpha", "beta", "gamma"}, 7));
  return *Table::FromColumns(name, std::move(cols));
}

std::shared_ptr<core::SharedState> MakeShared(std::int64_t rows_per_block) {
  cache::BufferManagerConfig buffer;
  buffer.rows_per_block = rows_per_block;
  return std::make_shared<core::SharedState>(
      sampling::SampleHierarchyConfig{}, /*force_eager=*/true, buffer);
}

// ---- The tentpole: reclamation frees tracked memory ------------------------

TEST(ReclaimTest, SpillWithReclaimDropsTrackedMatrixBytesToZero) {
  ScratchDir dir;
  const std::int64_t rows = 10'000;
  const std::int64_t before = MemoryTracker::Instance().matrix_bytes();
  auto shared = MakeShared(512);
  auto table = MixedTable("m", rows);
  // Matrix bytes for int64 + int32-coded string columns.
  const std::int64_t data_bytes = table->resident_raw_bytes();
  EXPECT_GE(data_bytes, rows * 12);
  EXPECT_GE(MemoryTracker::Instance().matrix_bytes() - before, data_bytes);
  ASSERT_TRUE(shared->RegisterTable(table).ok());
  // Reference values captured before anything is freed.
  std::vector<std::string> reference;
  for (RowId r = 0; r < rows; r += 97) {
    reference.push_back(table->GetValue(r, 0).ToString() + "|" +
                        table->GetValue(r, 1).ToString());
  }
  const std::string csv_before = storage::TableToCsv(*table);

  TableSpiller spiller(dir.path(), SpillOptions{.rows_per_block = 512});
  ASSERT_TRUE(
      shared->SpillTable("m", spiller, /*reclaim_raw=*/true).ok());

  // The headline assertion: the matrix is gone. What the process still
  // holds of this table is schema + dictionaries + pool blocks (bounded
  // by the buffer budget), nothing else.
  EXPECT_TRUE(table->raw_released());
  EXPECT_EQ(table->resident_raw_bytes(), 0);
  EXPECT_LE(MemoryTracker::Instance().matrix_bytes() - before,
            data_bytes / 10);

  // Frozen: mutation surfaces fail cleanly, never crash.
  EXPECT_EQ(table
                ->AppendRow({storage::Value(std::int64_t{1}),
                             storage::Value("alpha")})
                .code(),
            StatusCode::kFailedPrecondition);

  // Point reads — the tap/group-by path — now pin blocks and still
  // decode strings through the dictionary.
  std::size_t i = 0;
  for (RowId r = 0; r < rows; r += 97, ++i) {
    EXPECT_EQ(table->GetValue(r, 0).ToString() + "|" +
                  table->GetValue(r, 1).ToString(),
              reference[i])
        << "row " << r;
  }
  // The CSV export accessor reads through the same fallback.
  EXPECT_EQ(storage::TableToCsv(*table), csv_before);
  // Column extraction too.
  const Column extracted = table->ExtractColumn(1);
  EXPECT_EQ(extracted.row_count(), rows);
  EXPECT_EQ(extracted.GetValue(11).ToString(),
            table->GetValue(11, 1).ToString());
}

TEST(ReclaimTest, SecondReclaimAndRotationAreRejected) {
  ScratchDir dir;
  auto shared = MakeShared(256);
  auto table = MixedTable("twice", 2'000);
  ASSERT_TRUE(shared->RegisterTable(table).ok());
  TableSpiller spiller(dir.path(), SpillOptions{.rows_per_block = 256});
  ASSERT_TRUE(
      shared->SpillTable("twice", spiller, /*reclaim_raw=*/true).ok());
  // A second spill streams from... nothing: the matrix is gone, and the
  // spiller's raw read fails cleanly instead of crashing.
  EXPECT_FALSE(shared->SpillTable("twice", spiller, true).ok());
  // Rotation has no matrix to rewrite.
  storage::Matrix replacement(table->schema(),
                              storage::MajorOrder::kRowMajor);
  EXPECT_EQ(table->ReplaceStorage(std::move(replacement)).code(),
            StatusCode::kFailedPrecondition);
}

// ---- Hierarchy rebuild over a reclaimed base -------------------------------

TEST(ReclaimTest, HierarchyRebuildsFromPagedBaseAfterReclaim) {
  ScratchDir dir;
  const std::int64_t rows = 1 << 14;
  auto shared = MakeShared(1'024);
  auto table = MixedTable("h", rows);
  ASSERT_TRUE(shared->RegisterTable(table).ok());
  TableSpiller spiller(dir.path(), SpillOptions{.rows_per_block = 1'024});
  // Reclaim BEFORE any hierarchy exists: the later build must pin blocks.
  ASSERT_TRUE(
      shared->SpillTable("h", spiller, /*reclaim_raw=*/true).ok());

  const auto hierarchy = shared->GetOrBuildHierarchy("h", 0);
  ASSERT_TRUE(hierarchy.ok()) << hierarchy.status();
  EXPECT_TRUE((*hierarchy)->base_is_paged());
  ASSERT_GT((*hierarchy)->num_levels(), 2);
  // Level l samples every 2^l-th value of the sequence — bit-exact.
  for (int level = 1; level < (*hierarchy)->num_levels(); ++level) {
    const storage::ColumnView view = (*hierarchy)->LevelView(level);
    const std::int64_t stride = (*hierarchy)->LevelStride(level);
    for (RowId s = 0; s < view.row_count(); s += 31) {
      EXPECT_EQ(view.GetInt64(s), s * stride)
          << "level " << level << " sample " << s;
    }
  }
  // The base zone map builds by scanning pinned blocks; over a sequence
  // every zone's [min, max] is exactly its row range.
  const auto zone_map = shared->GetOrBuildBaseZoneMap(*hierarchy);
  ASSERT_NE(zone_map, nullptr);
  ASSERT_GT(zone_map->num_zones(), 1);
  const index::Zone& z = zone_map->zone(1);
  EXPECT_EQ(z.min, static_cast<double>(z.first));
  EXPECT_EQ(z.max, static_cast<double>(z.last));
}

TEST(ReclaimTest, PreBuiltHierarchyIsRebondAndServesSampledSummaries) {
  ScratchDir dir;
  const std::int64_t rows = 1 << 14;
  auto shared = MakeShared(1'024);
  auto table = MixedTable("pre", rows);
  ASSERT_TRUE(shared->RegisterTable(table).ok());
  // Hierarchy built over the live matrix first...
  const auto hierarchy = shared->GetOrBuildHierarchy("pre", 0);
  ASSERT_TRUE(hierarchy.ok());
  EXPECT_FALSE((*hierarchy)->base_is_paged());

  TableSpiller spiller(dir.path(), SpillOptions{.rows_per_block = 1'024});
  ASSERT_TRUE(
      shared->SpillTable("pre", spiller, /*reclaim_raw=*/true).ok());
  // ...then rebound in place: the same shared object sessions hold.
  EXPECT_TRUE((*hierarchy)->base_is_paged());
  const auto again = shared->GetOrBuildHierarchy("pre", 0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->get(), hierarchy->get());
  // Sample levels survived the reclaim (they are all that stays in RAM).
  const storage::ColumnView level1 = (*hierarchy)->LevelView(1);
  for (RowId s = 0; s < level1.row_count(); s += 53) {
    EXPECT_EQ(level1.GetInt64(s), s * 2);
  }
}

// ---- Spill racing an active raw reader -------------------------------------

TEST(ReclaimTest, ReclaimWaitsForInFlightRawReadsThenStaleReadersFailClean) {
  ScratchDir dir;
  const std::int64_t rows = 1 << 15;
  auto shared = MakeShared(1'024);
  auto table = MixedTable("race", rows);
  ASSERT_TRUE(shared->RegisterTable(table).ok());

  // A stale binding: the provider sessions used before the spill.
  auto stale = std::make_shared<cache::TableBlockProvider>(table, 0, 1'024);
  ASSERT_TRUE(stale->Fetch(0).ok());

  // Hammer raw reads while the spill+reclaim runs. Each read either sees
  // the matrix (and must be correct) or the released state (and must be
  // a clean FailedPrecondition) — never freed memory. ASan/TSan CI runs
  // this suite.
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> clean_failures{0};
  std::thread reader([&] {
    std::int64_t block = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const auto payload =
          stale->Fetch(block % stale->geometry().num_blocks());
      if (payload.ok()) {
        // Spot-check: sequence data, first value of block b.
        std::int64_t first_value = 0;
        std::memcpy(&first_value, payload->data(), sizeof(first_value));
        EXPECT_EQ(first_value, (block % stale->geometry().num_blocks()) *
                                   1'024);
      } else {
        EXPECT_EQ(payload.status().code(),
                  StatusCode::kFailedPrecondition);
        clean_failures.fetch_add(1, std::memory_order_relaxed);
      }
      ++block;
    }
  });
  TableSpiller spiller(dir.path(), SpillOptions{.rows_per_block = 1'024});
  ASSERT_TRUE(
      shared->SpillTable("race", spiller, /*reclaim_raw=*/true).ok());
  // Give the reader a moment against the released table, then stop.
  for (int i = 0; i < 1'000 && clean_failures.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_release);
  reader.join();

  // After the reclaim the stale binding failed cleanly at least once...
  EXPECT_GT(clean_failures.load(), 0);
  // ...while the rebound path serves the same data from disk.
  storage::PagedColumnCursor cursor(table->PagedColumnAt(0));
  EXPECT_EQ(cursor.GetInt64(12'345), 12'345);
}

TEST(ReclaimTest, ReclaimFailsCleanlyWhileZeroCopyPinLiveThenSucceeds) {
  ScratchDir dir;
  auto shared = MakeShared(512);
  auto table = MixedTable("pinned", 4'096);
  ASSERT_TRUE(shared->RegisterTable(table).ok());
  TableSpiller spiller(dir.path(), SpillOptions{.rows_per_block = 512});
  {
    // An operator mid-gesture: a zero-copy pin into the matrix.
    storage::PagedColumnCursor cursor(table->PagedColumnAt(0, 512));
    EXPECT_EQ(cursor.GetInt64(100), 100);
    // The reclaim must NOT free under it — it fails cleanly instead.
    const Status status =
        shared->SpillTable("pinned", spiller, /*reclaim_raw=*/true);
    EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
    EXPECT_FALSE(table->raw_released());
    EXPECT_GT(table->resident_raw_bytes(), 0);
    EXPECT_EQ(cursor.GetInt64(200), 200);  // The pinned view stayed valid.
  }
  // Gesture paused (pin dropped): the retry reclaims for real.
  ASSERT_TRUE(
      shared->SpillTable("pinned", spiller, /*reclaim_raw=*/true).ok());
  EXPECT_TRUE(table->raw_released());
  EXPECT_EQ(table->resident_raw_bytes(), 0);
  storage::PagedColumnCursor cursor(table->PagedColumnAt(0));
  EXPECT_EQ(cursor.GetInt64(300), 300);  // Served from the spill file.
}

// ---- Fat-table gestures over a reclaimed table -----------------------------

TEST(ReclaimTest, TapScanAndGroupByServeFromReclaimedTable) {
  ScratchDir dir;
  const std::int64_t rows = 1 << 14;

  // Reference run: everything in memory, no buffer manager.
  const auto run = [&](bool reclaim) {
    std::shared_ptr<core::SharedState> shared;
    KernelConfig config;
    config.buffer.rows_per_block = 1'024;
    if (reclaim) {
      shared = std::make_shared<core::SharedState>(
          config.sampling, /*force_eager=*/false, config.buffer);
      auto table = MixedTable("fat", rows);
      EXPECT_TRUE(shared->RegisterTable(table).ok());
      TableSpiller spiller(dir.path(),
                           SpillOptions{.rows_per_block = 1'024});
      EXPECT_TRUE(
          shared->SpillTable("fat", spiller, /*reclaim_raw=*/true).ok());
    }
    Kernel kernel(config, shared);
    if (!reclaim) {
      EXPECT_TRUE(kernel.RegisterTable(MixedTable("fat", rows)).ok());
    }
    const auto object =
        kernel.CreateTableObject("fat", RectCm{2.0, 1.0, 4.0, 10.0});
    EXPECT_TRUE(object.ok());
    TraceBuilder builder(kernel.device());

    // Fat tap: full tuple.
    kernel.Replay(builder.Tap("tap", PointCm{3.0, 4.0}));
    // Group-by slide: tag -> avg(v).
    EXPECT_TRUE(kernel
                    .SetAction(*object,
                               ActionConfig::GroupBy(1, 0,
                                                     exec::AggKind::kAvg))
                    .ok());
    kernel.Replay(builder.Slide("groupby", PointCm{3.0, 1.0},
                                PointCm{3.0, 11.0},
                                MotionProfile::Constant(1.0),
                                /*start_time_us=*/1'000'000));
    // Scan slide: touched cells surface as-is.
    EXPECT_TRUE(kernel.SetAction(*object, ActionConfig::Scan()).ok());
    kernel.Replay(builder.Slide("scan", PointCm{2.5, 11.0},
                                PointCm{2.5, 1.0},
                                MotionProfile::Constant(1.0),
                                /*start_time_us=*/3'000'000));
    EXPECT_EQ(kernel.stats().fetch_errors, 0);
    std::vector<std::string> out;
    for (const auto& item : kernel.results().items()) {
      out.push_back(std::to_string(static_cast<int>(item.kind)) + "@" +
                    std::to_string(item.row) + "=" +
                    item.value.ToString() + "#" +
                    std::to_string(item.rows_aggregated));
    }
    return out;
  };

  const std::vector<std::string> reference = run(/*reclaim=*/false);
  ASSERT_GT(reference.size(), 10u);
  EXPECT_EQ(run(/*reclaim=*/true), reference);
}

}  // namespace
}  // namespace dbtouch
