// Unit tests for the simulated network and remote client/server split.

#include <gtest/gtest.h>

#include "remote/network.h"
#include "remote/remote_store.h"
#include "storage/datagen.h"

namespace dbtouch::remote {
namespace {

using storage::Column;

TEST(NetworkTest, RoundTripIncludesLatencyAndTransfer) {
  NetworkConfig config;
  config.one_way_latency_us = 10'000;
  config.bytes_per_second = 1'000'000.0;  // 1 MB/s
  config.server_overhead_us = 500;
  const SimulatedNetwork net(config);
  // 2*10ms + 0.5ms + (1000+1000)/1MBps = 20.5ms + 2ms.
  EXPECT_EQ(net.RoundTripDone(0, 1000, 1000), 22'500);
  // Issued later shifts linearly.
  EXPECT_EQ(net.RoundTripDone(100, 1000, 1000), 22'600);
}

TEST(NetworkTest, AccountingAccumulates) {
  SimulatedNetwork net;
  net.Account(100, 2000);
  net.Account(50, 1000);
  EXPECT_EQ(net.requests_sent(), 2);
  EXPECT_EQ(net.bytes_up(), 150);
  EXPECT_EQ(net.bytes_down(), 3000);
}

TEST(ServerTest, ReadRangeServesLevelData) {
  const Column base = storage::GenSequenceInt64("v", 4096, 0, 1);
  RemoteServer server(base.View());
  std::int64_t bytes = 0;
  const auto values = server.ReadRange(0, 100, 5, &bytes);
  ASSERT_EQ(values.size(), 5u);
  EXPECT_DOUBLE_EQ(values[0], 100.0);
  EXPECT_DOUBLE_EQ(values[4], 104.0);
  EXPECT_EQ(bytes, 40);
  EXPECT_EQ(server.requests_served(), 1);
}

TEST(ServerTest, ReadRangeClampsToLevel) {
  const Column base = storage::GenSequenceInt64("v", 1000, 0, 1);
  RemoteServer server(base.View());
  std::int64_t bytes = 0;
  const auto values = server.ReadRange(0, 995, 100, &bytes);
  EXPECT_EQ(values.size(), 5u);
}

TEST(ClientTest, LocalOnlyAnswersInstantlyFromCoarseSample) {
  const Column base = storage::GenSequenceInt64("v", 1 << 16, 0, 1);
  RemoteServer server(base.View());
  SimulatedNetwork net;
  RemoteClient::Config config;
  config.strategy = RemoteStrategy::kLocalOnly;
  config.local_levels = 2;
  RemoteClient client(&server, &net, config);
  const double v = client.OnTouch(0, 32'768);
  // Coarse answer: the nearest sample entry at the local level.
  const std::int64_t stride = std::int64_t{1} << client.local_level();
  EXPECT_NEAR(v, 32'768.0, static_cast<double>(stride));
  EXPECT_EQ(net.requests_sent(), 0);
  EXPECT_EQ(client.stats().local_answers, 1);
  EXPECT_DOUBLE_EQ(client.stats().avg_first_answer_ms(), 0.0);
}

TEST(ClientTest, PerTouchRpcPaysRoundTripEveryTouch) {
  const Column base = storage::GenSequenceInt64("v", 1 << 16, 0, 1);
  RemoteServer server(base.View());
  SimulatedNetwork net;
  RemoteClient::Config config;
  config.strategy = RemoteStrategy::kPerTouchRpc;
  RemoteClient client(&server, &net, config);
  for (int i = 0; i < 10; ++i) {
    const double v = client.OnTouch(i * 66'000, i * 1000);
    EXPECT_DOUBLE_EQ(v, i * 1000.0);  // Full fidelity.
  }
  EXPECT_EQ(net.requests_sent(), 10);
  // Each touch waited at least the round trip (40ms default).
  EXPECT_GT(client.stats().avg_first_answer_ms(), 40.0);
}

TEST(ClientTest, BatchedHybridAnswersLocallyAndBatchesRefinement) {
  const Column base = storage::GenSequenceInt64("v", 1 << 16, 0, 1);
  RemoteServer server(base.View());
  SimulatedNetwork net;
  RemoteClient::Config config;
  config.strategy = RemoteStrategy::kBatchedHybrid;
  config.batch_window_us = 500'000;
  RemoteClient client(&server, &net, config);
  for (int i = 0; i < 8; ++i) {  // 8 touches inside one window.
    client.OnTouch(i * 60'000, i * 1000);
  }
  client.Flush(480'000);
  EXPECT_EQ(client.stats().local_answers, 8);
  EXPECT_EQ(net.requests_sent(), 1);  // One ranged request for all 8.
  EXPECT_EQ(client.stats().refined_answers, 8);
  // First answers were instant; refinement took a round trip.
  EXPECT_DOUBLE_EQ(client.stats().avg_first_answer_ms(), 0.0);
  EXPECT_GT(client.stats().avg_refined_ms(), 20.0);
}

TEST(ClientTest, BatchWindowClosesAutomatically) {
  const Column base = storage::GenSequenceInt64("v", 1 << 16, 0, 1);
  RemoteServer server(base.View());
  SimulatedNetwork net;
  RemoteClient::Config config;
  config.strategy = RemoteStrategy::kBatchedHybrid;
  config.batch_window_us = 100'000;
  RemoteClient client(&server, &net, config);
  client.OnTouch(0, 100);
  client.OnTouch(50'000, 200);
  client.OnTouch(150'000, 300);  // Window closed: batch issued here.
  EXPECT_EQ(net.requests_sent(), 1);
  client.OnTouch(160'000, 400);  // Opens a fresh batch.
  client.Flush(200'000);
  EXPECT_EQ(net.requests_sent(), 2);
}

TEST(ClientTest, HybridUsesFarFewerRequestsThanPerTouch) {
  const Column base = storage::GenSequenceInt64("v", 1 << 20, 0, 1);
  RemoteServer server(base.View());
  const auto run = [&server](RemoteStrategy strategy) {
    SimulatedNetwork net;
    RemoteClient::Config config;
    config.strategy = strategy;
    RemoteClient client(&server, &net, config);
    for (int i = 0; i < 60; ++i) {
      client.OnTouch(i * 66'000, i * 5000);
    }
    client.Flush(60 * 66'000);
    return net.requests_sent();
  };
  const auto per_touch = run(RemoteStrategy::kPerTouchRpc);
  const auto hybrid = run(RemoteStrategy::kBatchedHybrid);
  EXPECT_EQ(per_touch, 60);
  EXPECT_LT(hybrid, per_touch / 3);
}

TEST(StrategyNameTest, AllNamed) {
  EXPECT_STREQ(RemoteStrategyName(RemoteStrategy::kLocalOnly), "local-only");
  EXPECT_STREQ(RemoteStrategyName(RemoteStrategy::kPerTouchRpc),
               "per-touch-rpc");
  EXPECT_STREQ(RemoteStrategyName(RemoteStrategy::kBatchedHybrid),
               "batched-hybrid");
}

}  // namespace
}  // namespace dbtouch::remote
