// Tests for the observability layer: log-spaced histogram bucket math and
// merge/percentile behaviour, the JsonWriter emitter (golden outputs,
// escaping), the TraceRecorder ring (wraparound, torn-slot rejection,
// concurrent writers — the TSan payload for the seqlock-style slots) and
// slow-quantum exemplar retention, plus the ServerStatsSnapshot::ToJson
// document shape.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/trace_recorder.h"
#include "server/server_stats.h"

namespace dbtouch::obs {
namespace {

// ---- Histogram bucket math ------------------------------------------------

TEST(HistogramTest, SmallValuesGetExactBuckets) {
  // Below 2^kPrecisionBits every integer has its own bucket.
  for (std::int64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), static_cast<std::size_t>(v));
    EXPECT_EQ(Histogram::BucketLowerBound(Histogram::BucketIndex(v)), v);
  }
}

TEST(HistogramTest, BucketRelativeErrorIsBounded) {
  // Above the exact range the quantisation error (value - bucket lower
  // bound) must stay under 2^-kPrecisionBits of the value.
  for (std::int64_t v = Histogram::kSubBuckets; v < (1ll << 40);
       v = v * 3 + 7) {
    const std::size_t index = Histogram::BucketIndex(v);
    const std::int64_t lower = Histogram::BucketLowerBound(index);
    EXPECT_LE(lower, v);
    EXPECT_LT(v - lower,
              (v >> Histogram::kPrecisionBits) + 1);
    // Bucket bounds are monotone in the index.
    EXPECT_GT(Histogram::BucketLowerBound(index + 1), lower);
  }
}

TEST(HistogramTest, CountSumMinMaxAreExact) {
  Histogram hist;
  std::int64_t expected_sum = 0;
  for (std::int64_t v = 1; v <= 1000; ++v) {
    hist.Record(v * 17);
    expected_sum += v * 17;
  }
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 1000);
  EXPECT_EQ(snap.sum, expected_sum);  // Sums are exact, not bucketised.
  EXPECT_EQ(snap.min, 17);
  EXPECT_EQ(snap.max, 17'000);
}

TEST(HistogramTest, PercentilesAtBucketResolution) {
  Histogram hist;
  for (std::int64_t v = 1; v <= 10'000; ++v) {
    hist.Record(v);
  }
  const HistogramSnapshot snap = hist.Snapshot();
  // p50 of 1..10000 is 5000; bucket resolution allows ~3.1% low.
  const std::int64_t p50 = snap.Percentile(0.50);
  EXPECT_GE(p50, 4600);
  EXPECT_LE(p50, 5000);
  const std::int64_t p99 = snap.Percentile(0.99);
  EXPECT_GE(p99, 9500);
  EXPECT_LE(p99, 9900);
  // p0/p100 come from the exact extremes, not buckets.
  EXPECT_EQ(snap.Percentile(0.0), 1);
  EXPECT_EQ(snap.Percentile(1.0), 10'000);
  EXPECT_EQ(HistogramSnapshot{}.Percentile(0.5), 0);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram hist;
  hist.Record(-123);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 1);
  EXPECT_EQ(snap.sum, 0);
  EXPECT_EQ(snap.min, 0);
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 100; ++i) {
    a.Record(10);
    b.Record(1'000);
  }
  a.Merge(b);
  const HistogramSnapshot snap = a.Snapshot();
  EXPECT_EQ(snap.count, 200);
  EXPECT_EQ(snap.sum, 100 * 10 + 100 * 1'000);
  EXPECT_EQ(snap.min, 10);
  EXPECT_EQ(snap.max, 1'000);
}

TEST(HistogramTest, ResetDiscardsEverything) {
  Histogram hist;
  hist.Record(42);
  hist.Reset();
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.sum, 0);
  EXPECT_EQ(snap.max, 0);
  EXPECT_EQ(snap.Percentile(0.99), 0);
}

TEST(HistogramTest, ConcurrentRecordersLoseNothing) {
  Histogram hist;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record((t + 1) * 100);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  std::int64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += static_cast<std::int64_t>(kPerThread) * (t + 1) * 100;
  }
  EXPECT_EQ(snap.sum, expected_sum);
  EXPECT_EQ(snap.min, 100);
  EXPECT_EQ(snap.max, kThreads * 100);
}

// ---- JsonWriter -----------------------------------------------------------

TEST(JsonWriterTest, GoldenDocument) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Field("name", std::string_view("dbtouch"));
  writer.Field("executed", static_cast<std::int64_t>(42));
  writer.Field("enabled", true);
  writer.Key("tags");
  writer.BeginArray();
  writer.Int(1);
  writer.Int(2);
  writer.EndArray();
  writer.Key("nested");
  writer.BeginObject();
  writer.Key("none");
  writer.Null();
  writer.EndObject();
  writer.EndObject();
  const std::string json = std::move(writer).str();
  EXPECT_EQ(json,
            "{\"name\":\"dbtouch\",\"executed\":42,\"enabled\":true,"
            "\"tags\":[1,2],\"nested\":{\"none\":null}}");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Field("k", std::string_view("a\"b\\c\n\t\x01"));
  writer.EndObject();
  EXPECT_EQ(std::move(writer).str(),
            "{\"k\":\"a\\\"b\\\\c\\n\\t\\u0001\"}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter writer;
  writer.BeginArray();
  writer.Double(1.5);
  writer.Double(std::numeric_limits<double>::infinity());
  writer.Double(std::numeric_limits<double>::quiet_NaN());
  writer.EndArray();
  EXPECT_EQ(std::move(writer).str(), "[1.5,null,null]");
}

// ---- TraceRecorder --------------------------------------------------------

TEST(TraceRecorderTest, RecordsOrderedEvents) {
  TraceRecorderConfig config;
  config.capacity = 64;
  TraceRecorder recorder(config);
  recorder.Record(SpanStage::kSubmitted, 7, 1, /*a=*/1000, /*b=*/1);
  recorder.Record(SpanStage::kDispatched, 7, 1);
  recorder.Record(SpanStage::kExecuting, 7, 1);
  recorder.Record(SpanStage::kCompleted, 7, 1, /*a=*/350, /*b=*/0);
  const std::vector<SpanEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].stage, SpanStage::kSubmitted);
  EXPECT_EQ(events[0].quantum, 7);
  EXPECT_EQ(events[0].session, 1);
  EXPECT_EQ(events[0].a, 1000);
  EXPECT_EQ(events[3].stage, SpanStage::kCompleted);
  EXPECT_EQ(events[3].a, 350);
  // Tickets are 1-based and strictly increasing.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ticket, i + 1);
    EXPECT_GE(events[i].t_us, 0);
  }
  EXPECT_EQ(recorder.recorded(), 4u);
}

TEST(TraceRecorderTest, CapacityRoundsUpToPowerOfTwo) {
  TraceRecorderConfig config;
  config.capacity = 33;
  const TraceRecorder recorder(config);
  EXPECT_EQ(recorder.capacity(), 64u);
}

TEST(TraceRecorderTest, RingWrapsKeepingNewestEvents) {
  TraceRecorderConfig config;
  config.capacity = 16;
  TraceRecorder recorder(config);
  constexpr int kEvents = 100;
  for (int i = 0; i < kEvents; ++i) {
    recorder.Record(SpanStage::kExecuting, /*quantum=*/i + 1,
                    /*session=*/1, /*a=*/i);
  }
  EXPECT_EQ(recorder.recorded(), static_cast<std::uint64_t>(kEvents));
  const std::vector<SpanEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 16u);
  // The survivors are exactly the last 16 events, oldest first.
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::uint64_t expected_ticket = kEvents - 16 + i + 1;
    EXPECT_EQ(events[i].ticket, expected_ticket);
    EXPECT_EQ(events[i].quantum,
              static_cast<std::int64_t>(expected_ticket));
  }
}

TEST(TraceRecorderTest, ConcurrentWritersNeverYieldTornEvents) {
  // Writers stamp every payload field with a value derived from their own
  // ticket; a snapshot event mixing two writers' stores would break the
  // relation. Concurrent Snapshot() calls exercise the torn-slot
  // rejection path under TSan.
  TraceRecorderConfig config;
  config.capacity = 256;  // Small ring => constant wraparound.
  TraceRecorder recorder(config);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const SpanEvent& event : recorder.Snapshot()) {
        // quantum == session + 1 and a == 2 * session hold for every
        // untorn event.
        ASSERT_EQ(event.quantum, event.session + 1);
        ASSERT_EQ(event.a, 2 * event.session);
      }
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::int64_t tag =
            static_cast<std::int64_t>(t) * kPerThread + i;
        recorder.Record(SpanStage::kExecuting, tag + 1, tag, 2 * tag);
      }
    });
  }
  for (auto& writer : writers) {
    writer.join();
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(recorder.recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const std::vector<SpanEvent> events = recorder.Snapshot();
  EXPECT_EQ(events.size(), recorder.capacity());
  for (const SpanEvent& event : events) {
    EXPECT_EQ(event.quantum, event.session + 1);
    EXPECT_EQ(event.a, 2 * event.session);
  }
}

TEST(TraceRecorderTest, ExemplarsKeepTheSlowestCompletions) {
  TraceRecorderConfig config;
  config.max_exemplars = 4;
  TraceRecorder recorder(config);
  for (std::int64_t i = 1; i <= 100; ++i) {
    SlowQuantumExemplar exemplar;
    exemplar.quantum = i;
    exemplar.session = 1;
    exemplar.e2e_us = i * 10;
    exemplar.exec_us = i * 10;
    recorder.NoteCompletion(exemplar);
  }
  const std::vector<SlowQuantumExemplar> kept = recorder.Exemplars();
  ASSERT_EQ(kept.size(), 4u);
  std::set<std::int64_t> e2e;
  for (const SlowQuantumExemplar& exemplar : kept) {
    e2e.insert(exemplar.e2e_us);
  }
  EXPECT_EQ(e2e, (std::set<std::int64_t>{970, 980, 990, 1000}));
}

TEST(TraceRecorderTest, DumpJsonIsWellFormedish) {
  TraceRecorderConfig config;
  config.capacity = 16;
  TraceRecorder recorder(config);
  recorder.Record(SpanStage::kSubmitted, 1, 1);
  recorder.Record(SpanStage::kCompleted, 1, 1, /*a=*/500);
  const std::string json = recorder.DumpJson();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"events\""), std::string::npos);
  EXPECT_NE(json.find("\"submitted\""), std::string::npos);
  EXPECT_NE(json.find("\"completed\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// ---- ServerStatsSnapshot::ToJson ------------------------------------------

TEST(ServerStatsJsonTest, DocumentCarriesStagesBufferFetchAndSessions) {
  server::ServerStatsSnapshot snapshot;
  snapshot.sessions_opened = 2;
  snapshot.submitted = 10;
  snapshot.executed = 8;
  snapshot.deadline_misses = 1;
  {
    Histogram e2e;
    e2e.Record(100);
    e2e.Record(200);
    snapshot.stages.e2e = e2e.Snapshot();
    Histogram queue;
    queue.Record(30);
    snapshot.stages.queue_wait = queue.Snapshot();
  }
  snapshot.per_session[7].executed = 8;
  const std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"executed\":8"), std::string::npos);
  EXPECT_NE(json.find("\"stages\":{\"queue_wait\":"), std::string::npos);
  EXPECT_NE(json.find("\"e2e\":"), std::string::npos);
  EXPECT_NE(json.find("\"buffer\":"), std::string::npos);
  EXPECT_NE(json.find("\"fetch\":"), std::string::npos);
  EXPECT_NE(json.find("\"per_session\":{\"7\":"), std::string::npos);
  // The e2e stage serialised its exact extremes.
  EXPECT_NE(json.find("\"min\":100"), std::string::npos);
  EXPECT_NE(json.find("\"max\":200"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  // Bucket arrays stay opt-in: the default document has no raw buckets.
  EXPECT_EQ(json.find("\"buckets\""), std::string::npos);
  EXPECT_NE(snapshot.ToJson(/*include_buckets=*/true).find("\"buckets\""),
            std::string::npos);
}

}  // namespace
}  // namespace dbtouch::obs
