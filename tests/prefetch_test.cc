// Unit tests for gesture extrapolation and the prefetcher.

#include <gtest/gtest.h>

#include "prefetch/extrapolator.h"
#include "prefetch/prefetcher.h"
#include "sim/virtual_clock.h"

namespace dbtouch::prefetch {
namespace {

using sim::Micros;
using sim::SecondsToMicros;

TEST(ExtrapolatorTest, VelocityConvergesToSteadyRate) {
  GestureExtrapolator ex;
  // 1000 rows per 100ms = 10000 rows/s.
  for (int i = 0; i <= 20; ++i) {
    ex.Observe(i * 100'000, i * 1000);
  }
  EXPECT_NEAR(ex.velocity_rows_per_s(), 10'000.0, 500.0);
}

TEST(ExtrapolatorTest, NegativeVelocityForUpwardSlides) {
  GestureExtrapolator ex;
  for (int i = 0; i <= 10; ++i) {
    ex.Observe(i * 100'000, 100'000 - i * 2000);
  }
  EXPECT_LT(ex.velocity_rows_per_s(), -10'000.0);
}

TEST(ExtrapolatorTest, PredictsForwardRange) {
  GestureExtrapolator ex;
  for (int i = 0; i <= 10; ++i) {
    ex.Observe(i * 100'000, i * 1000);
  }
  const RowRange range = ex.PredictRange(1'000'000, 0.5, 1'000'000);
  EXPECT_EQ(range.first, 10'000);
  // ~0.5s at ~10000 rows/s ahead.
  EXPECT_NEAR(static_cast<double>(range.last), 15'000.0, 1'500.0);
}

TEST(ExtrapolatorTest, PredictsBackwardRangeWhenReversing) {
  GestureExtrapolator ex;
  for (int i = 0; i <= 10; ++i) {
    ex.Observe(i * 100'000, 500'000 - i * 1000);
  }
  const RowRange range = ex.PredictRange(1'000'000, 0.5, 1'000'000);
  EXPECT_EQ(range.last, 490'000);
  EXPECT_LT(range.first, 490'000);
}

TEST(ExtrapolatorTest, PauseDetection) {
  GestureExtrapolator ex;
  ex.Observe(0, 100);
  ex.Observe(100'000, 200);
  EXPECT_FALSE(ex.IsPaused(150'000));
  EXPECT_TRUE(ex.IsPaused(SecondsToMicros(1.0)));
}

TEST(ExtrapolatorTest, PausedPredictionIsSymmetric) {
  GestureExtrapolator ex;
  for (int i = 0; i <= 10; ++i) {
    ex.Observe(i * 100'000, i * 1000);
  }
  const Micros later = SecondsToMicros(5.0);
  const RowRange range = ex.PredictRange(later, 0.5, 1'000'000);
  EXPECT_LT(range.first, 10'000);
  EXPECT_GT(range.last, 10'000);
}

TEST(ExtrapolatorTest, ClampsToColumn) {
  GestureExtrapolator ex;
  ex.Observe(0, 10);
  ex.Observe(100'000, 5);
  const RowRange range = ex.PredictRange(200'000, 10.0, 100);
  EXPECT_GE(range.first, 0);
  EXPECT_LE(range.last, 99);
}

TEST(ExtrapolatorTest, NoObservationsPredictEmpty) {
  GestureExtrapolator ex;
  EXPECT_TRUE(ex.PredictRange(0, 1.0, 1000).empty());
}

TEST(ExtrapolatorTest, ResetForgets) {
  GestureExtrapolator ex;
  ex.Observe(0, 100);
  ex.Observe(100'000, 5000);
  ex.Reset();
  EXPECT_DOUBLE_EQ(ex.velocity_rows_per_s(), 0.0);
  EXPECT_TRUE(ex.PredictRange(200'000, 1.0, 10'000).empty());
}

TEST(BlockStoreTest, FetchCompletesAfterLatency) {
  SimulatedBlockStore store(1000, 50'000);
  EXPECT_FALSE(store.IsResident(3, 0));
  const Micros done = store.Fetch(3, 100);
  EXPECT_EQ(done, 50'100);
  EXPECT_FALSE(store.IsResident(3, 50'099));
  EXPECT_TRUE(store.IsResident(3, 50'100));
  EXPECT_EQ(store.fetches_issued(), 1);
}

TEST(BlockStoreTest, RefetchIsNoop) {
  SimulatedBlockStore store(1000, 50'000);
  store.Fetch(3, 0);
  const Micros done = store.Fetch(3, 40'000);  // Already in flight.
  EXPECT_EQ(done, 50'000);
  EXPECT_EQ(store.fetches_issued(), 1);
}

TEST(BlockStoreTest, BlockOfMapsRows) {
  SimulatedBlockStore store(1000, 1);
  EXPECT_EQ(store.BlockOf(0), 0);
  EXPECT_EQ(store.BlockOf(999), 0);
  EXPECT_EQ(store.BlockOf(1000), 1);
}

TEST(PrefetcherTest, SteadySlideHitsAfterWarmup) {
  // Slide at 10000 rows/s over blocks of 1000 rows with 50ms fetches: the
  // 0.5s horizon keeps ~5 blocks in flight ahead; after the first block's
  // stall everything is resident on arrival.
  SimulatedBlockStore store(1000, 50'000);
  Prefetcher::Config config;
  config.horizon_s = 0.5;
  Prefetcher prefetcher(&store, config);
  Micros now = 0;
  storage::RowId row = 0;
  std::int64_t late_stalls = 0;
  for (int i = 0; i < 100; ++i) {
    const Micros stall = prefetcher.OnTouch(now, row, 1'000'000);
    if (i > 10 && stall > 0) {
      ++late_stalls;
    }
    now += 66'000;  // ~15Hz
    row += 660;     // 10000 rows/s
  }
  EXPECT_EQ(late_stalls, 0);
  EXPECT_GT(prefetcher.stats().hits, 80);
  EXPECT_GT(prefetcher.stats().blocks_prefetched, 10);
}

TEST(PrefetcherTest, DisabledPrefetchStallsOnEveryBlock) {
  SimulatedBlockStore store(1000, 50'000);
  Prefetcher::Config config;
  config.enabled = false;
  Prefetcher prefetcher(&store, config);
  Micros now = 0;
  storage::RowId row = 0;
  for (int i = 0; i < 100; ++i) {
    prefetcher.OnTouch(now, row, 1'000'000);
    now += 66'000;
    row += 660;
  }
  // Every new block (roughly 2 touches per 1000-row block at 660 rows per
  // touch) is a demand miss.
  EXPECT_GT(prefetcher.stats().stalls, 30);
  EXPECT_GT(prefetcher.stats().stall_us, 0);
  EXPECT_EQ(prefetcher.stats().blocks_prefetched, 0);
}

TEST(PrefetcherTest, PrefetchBeatsNoPrefetchOnStallTime) {
  const auto run = [](bool enabled) {
    SimulatedBlockStore store(1000, 50'000);
    Prefetcher::Config config;
    config.enabled = enabled;
    Prefetcher prefetcher(&store, config);
    Micros now = 0;
    storage::RowId row = 0;
    for (int i = 0; i < 200; ++i) {
      prefetcher.OnTouch(now, row, 10'000'000);
      now += 66'000;
      row += 660;
    }
    return prefetcher.stats().stall_us;
  };
  EXPECT_LT(run(true), run(false) / 5);
}

// Property sweep: across fetch latencies and gesture speeds, prefetching
// never increases stall time, and with a horizon comfortably above the
// fetch latency the steady-state stall count is O(1) (warmup only).
class PrefetcherSweep
    : public testing::TestWithParam<std::tuple<Micros, int>> {};

TEST_P(PrefetcherSweep, PrefetchNeverHurtsAndWarmupBounds) {
  const auto [fetch_latency, rows_per_touch] = GetParam();
  const auto run = [&](bool enabled) {
    SimulatedBlockStore store(1000, fetch_latency);
    Prefetcher::Config config;
    config.enabled = enabled;
    config.horizon_s = 4.0 * sim::MicrosToSeconds(fetch_latency) + 0.2;
    Prefetcher prefetcher(&store, config);
    Micros now = 0;
    storage::RowId row = 0;
    for (int i = 0; i < 150; ++i) {
      prefetcher.OnTouch(now, row, 10'000'000);
      now += 66'000;
      row += rows_per_touch;
    }
    return prefetcher.stats();
  };
  const auto with = run(true);
  const auto without = run(false);
  EXPECT_LE(with.stall_us, without.stall_us);
  EXPECT_LE(with.stalls, 4) << "steady slides should only stall in warmup";
}

INSTANTIATE_TEST_SUITE_P(
    LatencySpeedGrid, PrefetcherSweep,
    testing::Combine(testing::Values<Micros>(5'000, 30'000, 100'000),
                     testing::Values(200, 660, 2'000)));

TEST(PrefetcherTest, PauseResumeCoversResumption) {
  SimulatedBlockStore store(1000, 50'000);
  Prefetcher::Config config;
  config.horizon_s = 0.5;
  Prefetcher prefetcher(&store, config);
  Micros now = 0;
  storage::RowId row = 0;
  // Slide...
  for (int i = 0; i < 30; ++i) {
    prefetcher.OnTouch(now, row, 1'000'000);
    now += 66'000;
    row += 660;
  }
  // ...pause 2 seconds (no touches)...
  now += 2'000'000;
  // ...resume: the symmetric pause prefetch covered the neighbourhood.
  const Micros stall = prefetcher.OnTouch(now, row + 100, 1'000'000);
  EXPECT_EQ(stall, 0);
}

}  // namespace
}  // namespace dbtouch::prefetch
