// Unit tests for src/sim: virtual clock, touch device, motion profiles,
// trace builder and trace serde.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "sim/motion_profile.h"
#include "sim/touch_device.h"
#include "sim/touch_event.h"
#include "sim/trace_builder.h"
#include "sim/trace_io.h"
#include "sim/virtual_clock.h"

namespace dbtouch::sim {
namespace {

TEST(VirtualClockTest, StartsAtZeroAndAdvances) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.Advance(100);
  EXPECT_EQ(clock.now(), 100);
  clock.AdvanceTo(500);
  EXPECT_EQ(clock.now(), 500);
}

TEST(VirtualClockTest, NeverGoesBackwards) {
  VirtualClock clock;
  clock.AdvanceTo(1000);
  clock.AdvanceTo(500);  // Ignored.
  EXPECT_EQ(clock.now(), 1000);
  clock.Advance(-50);  // Ignored.
  EXPECT_EQ(clock.now(), 1000);
}

TEST(VirtualClockTest, UnitConversions) {
  EXPECT_EQ(SecondsToMicros(1.5), 1'500'000);
  EXPECT_DOUBLE_EQ(MicrosToSeconds(250'000), 0.25);
  EXPECT_DOUBLE_EQ(MicrosToMillis(2'500), 2.5);
}

TEST(TouchDeviceTest, DefaultsModelIpad1) {
  TouchDevice device;
  EXPECT_NEAR(device.config().screen_width_cm, 19.7, 1e-9);
  EXPECT_NEAR(device.config().touch_event_hz, 15.0, 1e-9);
  // 15 Hz -> ~66.6ms between registered moves.
  EXPECT_EQ(device.event_interval_us(), 66'666);
}

TEST(TouchDeviceTest, QuantizeClampsToScreen) {
  TouchDevice device;
  const PointCm p = device.Quantize(PointCm{-5.0, 100.0});
  EXPECT_EQ(p.x, 0.0);
  EXPECT_NEAR(p.y, device.config().screen_height_cm, 1.0 / 52.0);
}

TEST(TouchDeviceTest, QuantizeSnapsToGrid) {
  TouchDevice device;
  const PointCm p = device.Quantize(PointCm{1.0001, 2.0002});
  const double ppc = device.config().points_per_cm;
  EXPECT_NEAR(p.x * ppc, std::round(p.x * ppc), 1e-9);
  EXPECT_NEAR(p.y * ppc, std::round(p.y * ppc), 1e-9);
}

TEST(TouchDeviceTest, DistinctPositionsScaleWithLength) {
  TouchDevice device;
  EXPECT_EQ(device.DistinctPositions(0.0), 0);
  const std::int64_t at10 = device.DistinctPositions(10.0);
  const std::int64_t at20 = device.DistinctPositions(20.0);
  EXPECT_EQ(at10, 521);  // 10cm * 52 points/cm + 1
  EXPECT_GT(at20, 2 * at10 - 2);
}

TEST(MotionProfileTest, ConstantProfileIsLinear) {
  const MotionProfile p = MotionProfile::Constant(2.0);
  EXPECT_DOUBLE_EQ(p.total_duration_s(), 2.0);
  EXPECT_DOUBLE_EQ(p.FractionAt(0.0), 0.0);
  EXPECT_DOUBLE_EQ(p.FractionAt(1.0), 0.5);
  EXPECT_DOUBLE_EQ(p.FractionAt(2.0), 1.0);
  EXPECT_DOUBLE_EQ(p.SpeedAt(1.0), 0.5);
}

TEST(MotionProfileTest, PauseHoldsPosition) {
  MotionProfile p;
  p.ThenMoveTo(0.5, 1.0).ThenPause(2.0).ThenMoveTo(1.0, 1.0);
  EXPECT_DOUBLE_EQ(p.total_duration_s(), 4.0);
  EXPECT_DOUBLE_EQ(p.FractionAt(1.5), 0.5);
  EXPECT_DOUBLE_EQ(p.FractionAt(2.9), 0.5);
  EXPECT_DOUBLE_EQ(p.SpeedAt(2.0), 0.0);
  EXPECT_DOUBLE_EQ(p.FractionAt(4.0), 1.0);
}

TEST(MotionProfileTest, ReversalDecreasesFraction) {
  MotionProfile p;
  p.ThenMoveTo(0.8, 1.0).ThenMoveTo(0.2, 1.0);
  EXPECT_DOUBLE_EQ(p.FractionAt(1.0), 0.8);
  EXPECT_DOUBLE_EQ(p.FractionAt(2.0), 0.2);
  EXPECT_LT(p.SpeedAt(1.5), 0.0);
}

TEST(MotionProfileTest, ClampsOutsideDuration) {
  const MotionProfile p = MotionProfile::Constant(1.0);
  EXPECT_DOUBLE_EQ(p.FractionAt(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(p.FractionAt(9.0), 1.0);
}

TEST(TraceBuilderTest, SlideEventCountMatchesRateAndDuration) {
  TouchDevice device;
  TraceBuilder builder(device);
  const GestureTrace trace =
      builder.Slide("s", PointCm{2.0, 1.0}, PointCm{2.0, 11.0},
                    MotionProfile::Constant(4.0));
  // Began + moves + Ended. At 15 Hz over 4s there are 59 in-between steps.
  ASSERT_GE(trace.events.size(), 3u);
  EXPECT_EQ(trace.events.front().phase, TouchPhase::kBegan);
  EXPECT_EQ(trace.events.back().phase, TouchPhase::kEnded);
  const std::size_t moves = trace.events.size() - 2;
  EXPECT_NEAR(static_cast<double>(moves), 59.0, 2.0);
}

TEST(TraceBuilderTest, SlideTimestampsMonotonic) {
  TouchDevice device;
  TraceBuilder builder(device);
  const GestureTrace trace =
      builder.Slide("s", PointCm{0.0, 0.0}, PointCm{0.0, 10.0},
                    MotionProfile::Constant(1.0));
  for (std::size_t i = 1; i < trace.events.size(); ++i) {
    EXPECT_GE(trace.events[i].timestamp_us,
              trace.events[i - 1].timestamp_us);
  }
}

TEST(TraceBuilderTest, PauseProducesNoMoveEvents) {
  TouchDevice device;
  TraceBuilder builder(device);
  MotionProfile with_pause;
  with_pause.ThenMoveTo(0.5, 1.0).ThenPause(5.0).ThenMoveTo(1.0, 1.0);
  const GestureTrace paused = builder.Slide(
      "p", PointCm{1.0, 1.0}, PointCm{1.0, 11.0}, with_pause);
  const GestureTrace unpaused = builder.Slide(
      "u", PointCm{1.0, 1.0}, PointCm{1.0, 11.0}, MotionProfile::Constant(2.0));
  // The pause adds 5 seconds but no events (the finger is stationary), so
  // event counts match the unpaused two-second slide (±1 boundary effect).
  EXPECT_NEAR(static_cast<double>(paused.events.size()),
              static_cast<double>(unpaused.events.size()), 2.0);
}

TEST(TraceBuilderTest, SlowerSlideRegistersMoreEvents) {
  TouchDevice device;
  TraceBuilder builder(device);
  const auto fast = builder.Slide("f", PointCm{1, 0}, PointCm{1, 10},
                                  MotionProfile::Constant(0.5));
  const auto slow = builder.Slide("s", PointCm{1, 0}, PointCm{1, 10},
                                  MotionProfile::Constant(4.0));
  EXPECT_GT(slow.events.size(), 4 * fast.events.size());
}

TEST(TraceBuilderTest, VerySlowSlideBoundedByDistinctPositions) {
  // At extreme slowness, consecutive samples land on the same device point
  // and collapse; the number of moves can't exceed distinct positions.
  TouchDeviceConfig config;
  config.touch_event_hz = 1000.0;
  TouchDevice device(config);
  TraceBuilder builder(device);
  const auto trace = builder.Slide("s", PointCm{1, 0}, PointCm{1, 1},
                                   MotionProfile::Constant(10.0));
  EXPECT_LE(static_cast<std::int64_t>(trace.events.size()),
            device.DistinctPositions(1.0) + 2);
}

TEST(TraceBuilderTest, TapIsBeganEndedPair) {
  TouchDevice device;
  TraceBuilder builder(device);
  const auto trace = builder.Tap("t", PointCm{3.0, 4.0});
  ASSERT_EQ(trace.events.size(), 2u);
  EXPECT_EQ(trace.events[0].phase, TouchPhase::kBegan);
  EXPECT_EQ(trace.events[1].phase, TouchPhase::kEnded);
  EXPECT_EQ(trace.events[0].position, trace.events[1].position);
}

TEST(TraceBuilderTest, PinchUsesTwoFingersAndChangesSeparation) {
  TouchDevice device;
  TraceBuilder builder(device);
  const auto trace = builder.Pinch("z", PointCm{9.0, 7.0}, M_PI / 2.0, 2.0,
                                   6.0, 1.0);
  std::set<int> fingers;
  for (const auto& e : trace.events) {
    fingers.insert(e.finger_id);
  }
  EXPECT_EQ(fingers.size(), 2u);
  // First two events: separation 2; last two: separation 6.
  const double sep_begin =
      DistanceCm(trace.events[0].position, trace.events[1].position);
  const double sep_end =
      DistanceCm(trace.events[trace.events.size() - 2].position,
                 trace.events.back().position);
  EXPECT_NEAR(sep_begin, 2.0, 0.1);
  EXPECT_NEAR(sep_end, 6.0, 0.1);
}

TEST(TraceBuilderTest, RotateSweepsAngle) {
  TouchDevice device;
  TraceBuilder builder(device);
  const auto trace = builder.TwoFingerRotate("r", PointCm{9.0, 7.0}, 3.0, 0.0,
                                             M_PI / 2.0, 1.0);
  ASSERT_GE(trace.events.size(), 4u);
  // Finger 0 starts at angle 0 (east of center) and ends at pi/2 (south).
  const PointCm first = trace.events[0].position;
  EXPECT_NEAR(first.x, 12.0, 0.1);
  EXPECT_NEAR(first.y, 7.0, 0.1);
  PointCm last{};
  for (auto it = trace.events.rbegin(); it != trace.events.rend(); ++it) {
    if (it->finger_id == 0) {
      last = it->position;
      break;
    }
  }
  EXPECT_NEAR(last.x, 9.0, 0.1);
  EXPECT_NEAR(last.y, 10.0, 0.1);
}

TEST(TraceAppendTest, ShiftsTimestamps) {
  TouchDevice device;
  TraceBuilder builder(device);
  GestureTrace a = builder.Tap("a", PointCm{1, 1});
  const GestureTrace b = builder.Tap("b", PointCm{2, 2});
  const Micros end_a = a.duration_us();
  a.Append(b, 500'000);
  EXPECT_EQ(a.events[2].timestamp_us, end_a + 500'000);
}

TEST(TraceIoTest, RoundTripsThroughText) {
  TouchDevice device;
  TraceBuilder builder(device);
  const GestureTrace original =
      builder.Slide("roundtrip", PointCm{1, 0}, PointCm{1, 10},
                    MotionProfile::Constant(1.0));
  const std::string text = SerializeTrace(original);
  const auto parsed = ParseTrace(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->name, original.name);
  ASSERT_EQ(parsed->events.size(), original.events.size());
  for (std::size_t i = 0; i < original.events.size(); ++i) {
    EXPECT_EQ(parsed->events[i].timestamp_us,
              original.events[i].timestamp_us);
    EXPECT_EQ(parsed->events[i].phase, original.events[i].phase);
    EXPECT_NEAR(parsed->events[i].position.x, original.events[i].position.x,
                1e-6);
  }
}

TEST(TraceIoTest, RejectsBadHeader) {
  EXPECT_TRUE(ParseTrace("bogus\n").status().IsInvalidArgument());
  EXPECT_TRUE(ParseTrace("").status().IsInvalidArgument());
}

TEST(TraceIoTest, RejectsMalformedEvent) {
  const std::string text = "# dbtouch-trace v1\nname x\ne 1 2\n";
  EXPECT_TRUE(ParseTrace(text).status().IsInvalidArgument());
}

TEST(TraceIoTest, RejectsNonMonotonicTimestamps) {
  const std::string text =
      "# dbtouch-trace v1\nname x\ne 100 0 0 1 1\ne 50 0 1 1 2\n";
  EXPECT_TRUE(ParseTrace(text).status().IsInvalidArgument());
}

TEST(TraceIoTest, RejectsBadPhase) {
  const std::string text = "# dbtouch-trace v1\ne 1 0 9 1 1\n";
  EXPECT_TRUE(ParseTrace(text).status().IsInvalidArgument());
}

TEST(TraceIoTest, FileRoundTrip) {
  TouchDevice device;
  TraceBuilder builder(device);
  const GestureTrace original = builder.Tap("file", PointCm{5, 5});
  const std::string path = testing::TempDir() + "/dbtouch_trace_test.txt";
  ASSERT_TRUE(SaveTrace(original, path).ok());
  const auto loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->events.size(), original.events.size());
  std::remove(path.c_str());
}

TEST(TraceIoTest, LoadMissingFileIsNotFound) {
  EXPECT_TRUE(LoadTrace("/nonexistent/path.trace").status().IsNotFound());
}

}  // namespace
}  // namespace dbtouch::sim
