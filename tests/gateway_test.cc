// Gateway tests: the wire path end-to-end over real sockets, plus the
// protocol-robustness matrix — truncated / oversized / garbage frames,
// version rejection, mid-frame disconnects (sessions closed, in-flight
// fetches cancelled), slow-reader backpressure and admission rejection.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/block_provider.h"
#include "gateway/client.h"
#include "gateway/gateway.h"
#include "gateway/replay.h"
#include "gateway/wire.h"
#include "server/touch_server.h"
#include "storage/datagen.h"
#include "storage/table.h"

namespace dbtouch::gateway {
namespace {

using server::TouchServer;
using server::TouchServerConfig;
using storage::Column;
using storage::Table;

constexpr std::int64_t kRows = 20'000;

std::shared_ptr<Table> SequenceTable(const std::string& name) {
  std::vector<Column> cols;
  cols.push_back(storage::GenSequenceInt64("v", kRows, 0, 1));
  auto table = Table::FromColumns(name, std::move(cols));
  EXPECT_TRUE(table.ok());
  return *table;
}

TouchServerConfig RelaxedConfig(int workers = 2) {
  TouchServerConfig config;
  config.num_workers = workers;
  config.base_frame_budget_us = 10'000'000;
  config.min_frame_budget_us = 10'000'000;
  config.est_row_ns = 0.0;
  config.drop_slack_us = 3'600'000'000;
  return config;
}

/// Async cold-tier provider whose fetches block on a test-controlled
/// gate (same shape as the server_test helper): lets a test park a
/// session mid-fetch, disconnect its connection, and observe the abort.
class GatedSlowProvider final : public cache::BlockProvider {
 public:
  GatedSlowProvider(std::shared_ptr<const Table> table, std::size_t column,
                    std::int64_t rows_per_block)
      : inner_(std::move(table), column, rows_per_block) {}

  const cache::BlockGeometry& geometry() const override {
    return inner_.geometry();
  }
  const storage::Dictionary* dictionary() const override {
    return inner_.dictionary();
  }
  bool async() const override { return true; }

  Result<std::vector<std::byte>> Fetch(std::int64_t block) override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++fetches_started_;
      started_cv_.notify_all();
      gate_cv_.wait_for(lock, std::chrono::seconds(10),
                        [this] { return open_; });
    }
    fetches_.fetch_add(1, std::memory_order_relaxed);
    return inner_.Fetch(block);
  }

  void OpenGate() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    gate_cv_.notify_all();
  }

  void AwaitFetchStarted(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    started_cv_.wait_for(lock, std::chrono::seconds(10),
                         [&] { return fetches_started_ >= n; });
  }

  std::int64_t fetches() const {
    return fetches_.load(std::memory_order_relaxed);
  }

 private:
  cache::TableBlockProvider inner_;
  std::mutex mu_;
  std::condition_variable gate_cv_;
  std::condition_variable started_cv_;
  bool open_ = false;
  int fetches_started_ = 0;
  std::atomic<std::int64_t> fetches_{0};
};

struct Stack {
  std::unique_ptr<TouchServer> server;
  std::unique_ptr<Gateway> gateway;

  static std::unique_ptr<Stack> Up(
      TouchServerConfig server_config = RelaxedConfig(),
      GatewayConfig gateway_config = {},
      const std::shared_ptr<Table>& table = nullptr) {
    auto stack = std::make_unique<Stack>();
    stack->server = std::make_unique<TouchServer>(server_config);
    EXPECT_TRUE(
        stack->server->RegisterTable(table ? table : SequenceTable("t")).ok());
    EXPECT_TRUE(stack->server->Start().ok());
    stack->gateway =
        std::make_unique<Gateway>(*stack->server, std::move(gateway_config));
    EXPECT_TRUE(stack->gateway->Start().ok());
    return stack;
  }

  ~Stack() {
    if (gateway) (void)gateway->Stop();
    if (server) (void)server->Stop();
  }

  Client Connect() {
    Client client;
    EXPECT_TRUE(client.Connect("127.0.0.1", gateway->port()).ok());
    return client;
  }
};

/// Spin-waits (bounded) for a gateway/server-side condition that follows
/// a socket event asynchronously.
template <typename Fn>
bool Eventually(Fn&& condition, int timeout_ms = 5'000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (condition()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

api::SubmitBatchReq FloodBatch(api::SessionId session, int moves,
                               double y0 = 2.0, double y1 = 12.0) {
  api::SubmitBatchReq req;
  req.session = session;
  req.paced = false;
  api::WireTouchEvent event;
  event.finger_id = 0;
  event.phase = 0;  // kBegan
  event.x_cm = 3.0;
  event.y_cm = y0;
  req.events.push_back(event);
  for (int i = 1; i <= moves; ++i) {
    event.phase = 1;  // kMoved
    event.timestamp_us = static_cast<std::int64_t>(i) * 1'000;
    event.y_cm = y0 + (y1 - y0) * i / moves;
    req.events.push_back(event);
  }
  event.phase = 2;  // kEnded
  event.timestamp_us = static_cast<std::int64_t>(moves + 1) * 1'000;
  req.events.push_back(event);
  return req;
}

// ---- Happy path ------------------------------------------------------------

TEST(GatewayTest, EndToEndSessionOverTheWire) {
  auto stack = Stack::Up();
  Client client = stack->Connect();

  auto open = client.OpenSession();
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(stack->server->session_count(), 1u);

  api::CreateObjectReq create;
  create.session = open->session;
  create.kind = 0;
  create.table = "t";
  create.column = "v";
  create.frame = api::WireRect{2.0, 1.0, 2.0, 10.0};
  auto object = client.CreateObject(create);
  ASSERT_TRUE(object.ok());

  api::SetActionReq set;
  set.session = open->session;
  set.object = object->object;
  set.action.kind = 0;  // Scan.
  ASSERT_TRUE(client.SetAction(set).ok());

  auto submitted = client.SubmitBatch(FloodBatch(open->session, 30));
  ASSERT_TRUE(submitted.ok());
  EXPECT_EQ(submitted->accepted, 32);
  EXPECT_EQ(submitted->rejected, 0);
  ASSERT_TRUE(client.WaitIdle().ok());

  api::SessionSnapshotReq snap;
  snap.session = open->session;
  snap.max_results = 100;
  auto snapshot = client.SessionSnapshot(snap);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_GT(snapshot->result_count, 0);
  EXPECT_FALSE(snapshot->results.empty());
  ASSERT_EQ(snapshot->objects.size(), 1u);
  EXPECT_EQ(snapshot->objects[0].table, "t");
  EXPECT_EQ(snapshot->objects[0].tuple_count, kRows);

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->sessions_active, 1);
  EXPECT_GE(stats->executed, 32);

  ASSERT_TRUE(client.CloseSession(open->session).ok());
  EXPECT_EQ(stack->server->session_count(), 0u);

  GatewayStatsSnapshot gw = stack->gateway->stats();
  EXPECT_EQ(gw.protocol_errors, 0);
  EXPECT_GT(gw.frames_received, 0);
}

TEST(GatewayTest, ManyConnectionsAcrossLoops) {
  GatewayConfig gateway_config;
  gateway_config.num_loops = 3;
  auto stack = Stack::Up(RelaxedConfig(), gateway_config);
  constexpr int kClients = 24;
  std::vector<Client> clients(kClients);
  std::vector<api::SessionId> sessions;
  for (int i = 0; i < kClients; ++i) {
    clients[i] = stack->Connect();
    auto open = clients[i].OpenSession();
    ASSERT_TRUE(open.ok());
    sessions.push_back(open->session);
  }
  EXPECT_EQ(stack->server->session_count(), kClients);
  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(clients[i].CloseSession(sessions[i]).ok());
  }
  EXPECT_EQ(stack->server->session_count(), 0u);
}

// ---- Robustness: malformed input -------------------------------------------

TEST(GatewayTest, GarbageBytesRejectedAndClosed) {
  auto stack = Stack::Up();
  Client client = stack->Connect();
  ASSERT_TRUE(client.SendRaw("this is definitely not a dbtouch frame").ok());

  FrameHeader header;
  auto payload = client.TryReadFrame(&header);
  ASSERT_TRUE(payload.ok());
  auto envelope = DecodeResponsePayload(*payload);
  ASSERT_TRUE(envelope.ok());
  EXPECT_EQ(envelope->code, api::WireCode::kMalformedFrame);
  // And then the server hangs up.
  EXPECT_EQ(client.TryReadFrame(nullptr).status().code(),
            StatusCode::kAborted);
  EXPECT_TRUE(Eventually(
      [&] { return stack->gateway->stats().connections_active == 0; }));
  EXPECT_EQ(stack->gateway->stats().protocol_errors, 1);
}

TEST(GatewayTest, OversizedFrameRejected) {
  auto stack = Stack::Up();
  Client client = stack->Connect();
  // Valid magic/version, payload_len over the cap: must be refused
  // before the gateway tries to buffer 100 MB.
  WireWriter w;
  w.U32(kMagic);
  w.U16(kWireVersion);
  w.U16(static_cast<std::uint16_t>(MessageType::kSubmitBatch));
  w.U32(1);              // request id
  w.U32(100'000'000u);   // payload_len: hostile
  ASSERT_TRUE(client.SendRaw(w.buffer()).ok());

  FrameHeader header;
  auto payload = client.TryReadFrame(&header);
  ASSERT_TRUE(payload.ok());
  auto envelope = DecodeResponsePayload(*payload);
  ASSERT_TRUE(envelope.ok());
  EXPECT_EQ(envelope->code, api::WireCode::kMalformedFrame);
  EXPECT_EQ(client.TryReadFrame(nullptr).status().code(),
            StatusCode::kAborted);
}

TEST(GatewayTest, TruncatedPayloadRejected) {
  auto stack = Stack::Up();
  Client client = stack->Connect();
  // Header promises a CreateObject payload of 4 bytes — far too short
  // for the struct. Framing is intact; the typed decode must fail.
  WireWriter w;
  w.U32(kMagic);
  w.U16(kWireVersion);
  w.U16(static_cast<std::uint16_t>(MessageType::kCreateObject));
  w.U32(9);
  w.U32(4);
  w.U32(0xdeadbeef);
  ASSERT_TRUE(client.SendRaw(w.buffer()).ok());

  FrameHeader header;
  auto payload = client.TryReadFrame(&header);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(header.request_id, 9u);
  EXPECT_EQ(header.message_type(), MessageType::kCreateObject);
  auto envelope = DecodeResponsePayload(*payload);
  ASSERT_TRUE(envelope.ok());
  EXPECT_EQ(envelope->code, api::WireCode::kMalformedFrame);
  EXPECT_EQ(client.TryReadFrame(nullptr).status().code(),
            StatusCode::kAborted);
}

TEST(GatewayTest, UnknownTypeRejected) {
  auto stack = Stack::Up();
  Client client = stack->Connect();
  WireWriter w;
  w.U32(kMagic);
  w.U16(kWireVersion);
  w.U16(500);  // No such MessageType.
  w.U32(3);
  w.U32(0);
  ASSERT_TRUE(client.SendRaw(w.buffer()).ok());

  FrameHeader header;
  auto payload = client.TryReadFrame(&header);
  ASSERT_TRUE(payload.ok());
  auto envelope = DecodeResponsePayload(*payload);
  ASSERT_TRUE(envelope.ok());
  EXPECT_EQ(envelope->code, api::WireCode::kMalformedFrame);
  EXPECT_EQ(client.TryReadFrame(nullptr).status().code(),
            StatusCode::kAborted);
}

TEST(GatewayTest, UnsupportedVersionRejected) {
  auto stack = Stack::Up();
  Client client = stack->Connect();
  // A well-formed OpenSession frame from a hypothetical v99 client.
  WireWriter w;
  w.U32(kMagic);
  w.U16(99);
  w.U16(static_cast<std::uint16_t>(MessageType::kOpenSession));
  w.U32(7);
  w.U32(0);
  ASSERT_TRUE(client.SendRaw(w.buffer()).ok());

  FrameHeader header;
  auto payload = client.TryReadFrame(&header);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(header.request_id, 7u);  // Rejection echoes the request id.
  auto envelope = DecodeResponsePayload(*payload);
  ASSERT_TRUE(envelope.ok());
  EXPECT_EQ(envelope->code, api::WireCode::kUnsupportedVersion);
  // Version rejection closes the connection: no session leaked, v99
  // frames after the first are never interpreted.
  EXPECT_EQ(client.TryReadFrame(nullptr).status().code(),
            StatusCode::kAborted);
  EXPECT_EQ(stack->server->session_count(), 0u);
  EXPECT_EQ(stack->gateway->stats().version_rejections, 1);
}

// ---- Robustness: disconnects -----------------------------------------------

TEST(GatewayTest, MidFrameDisconnectClosesSessions) {
  auto stack = Stack::Up();
  Client client = stack->Connect();
  auto open = client.OpenSession();
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(stack->server->session_count(), 1u);

  // Send half a frame — header promising 64 payload bytes, then only a
  // few — and vanish.
  WireWriter w;
  w.U32(kMagic);
  w.U16(kWireVersion);
  w.U16(static_cast<std::uint16_t>(MessageType::kSubmitBatch));
  w.U32(2);
  w.U32(64);
  w.U64(0x1234);
  ASSERT_TRUE(client.SendRaw(w.buffer()).ok());
  client.Close();

  // The gateway must notice and close the connection-owned session.
  EXPECT_TRUE(
      Eventually([&] { return stack->server->session_count() == 0; }));
  EXPECT_TRUE(Eventually([&] {
    return stack->gateway->stats().sessions_closed_on_disconnect == 1;
  }));
}

TEST(GatewayTest, DisconnectCancelsInFlightFetches) {
  // Cold-tier variant of the mid-frame disconnect: one fetcher, two
  // sessions on one connection. Session A's touch holds the fetcher at
  // the provider gate; session B's touch files a demand-fetch ticket
  // behind it. Dropping the connection closes both sessions, which must
  // cancel B's queued fetch through the server's abort path — after the
  // gate opens, the cold tier has served exactly A's block, nothing for B.
  TouchServerConfig config = RelaxedConfig(1);
  config.session_defaults.buffer.rows_per_block = 1'024;
  config.session_defaults.buffer.fetch.retry_backoff_us = 100;
  config.session_defaults.buffer.fetch.num_fetchers = 1;
  auto table = SequenceTable("t");
  auto provider = std::make_shared<GatedSlowProvider>(table, 0, 1'024);
  auto stack = Stack::Up(config, {}, table);
  ASSERT_TRUE(stack->server->shared().SetColumnProvider("t", 0, provider).ok());

  Client client = stack->Connect();
  auto a = client.OpenSession();
  auto b = client.OpenSession();
  ASSERT_TRUE(a.ok() && b.ok());
  for (const auto& open : {a, b}) {
    api::CreateObjectReq create;
    create.session = open->session;
    create.kind = 0;
    create.table = "t";
    create.column = "v";
    create.frame = api::WireRect{2.0, 1.0, 2.0, 10.0};
    ASSERT_TRUE(client.CreateObject(create).ok());
  }
  // Taps at different heights -> different rows -> different blocks.
  ASSERT_TRUE(client.SubmitBatch(FloodBatch(a->session, 1, 2.0, 2.1)).ok());
  provider->AwaitFetchStarted(1);  // A's fetch holds the only fetcher.
  ASSERT_TRUE(client.SubmitBatch(FloodBatch(b->session, 1, 10.0, 10.1)).ok());
  ASSERT_TRUE(Eventually(
      [&] { return stack->server->stats().fetch.demand_fetches >= 2; }))
      << "session B's fetch ticket never queued";

  client.Close();  // Mid-fetch disconnect takes both sessions down.
  EXPECT_TRUE(
      Eventually([&] { return stack->server->session_count() == 0; }));
  EXPECT_TRUE(Eventually([&] {
    return stack->server->stats().fetch.cancelled_fetches >= 1;
  }));
  provider->OpenGate();
  ASSERT_TRUE(stack->server->Drain().ok());
  EXPECT_EQ(stack->gateway->stats().sessions_closed_on_disconnect, 2);
}

// ---- Backpressure ----------------------------------------------------------

TEST(GatewayTest, SlowReaderIsDisconnected) {
  GatewayConfig gateway_config;
  gateway_config.write_queue_limit_bytes = 64 * 1024;
  auto stack = Stack::Up(RelaxedConfig(), gateway_config);
  Client client = stack->Connect();
  auto open = client.OpenSession();
  ASSERT_TRUE(open.ok());
  api::CreateObjectReq create;
  create.session = open->session;
  create.kind = 0;
  create.table = "t";
  create.column = "v";
  create.frame = api::WireRect{2.0, 1.0, 2.0, 10.0};
  auto object = client.CreateObject(create);
  ASSERT_TRUE(object.ok());
  // 3k scan touches -> 3k results -> ~80 KB per full snapshot response.
  auto submitted = client.SubmitBatch(FloodBatch(open->session, 3'000));
  ASSERT_TRUE(submitted.ok());
  ASSERT_EQ(submitted->rejected, 0);
  ASSERT_TRUE(client.WaitIdle().ok());

  // Request full snapshots over and over WITHOUT reading any response:
  // kernel socket buffers fill first, then the gateway's per-connection
  // write queue crosses its bound and the slow reader is evicted.
  api::SessionSnapshotReq snap;
  snap.session = open->session;
  snap.max_results = 1'000'000;
  const std::string frame =
      EncodeRequestFrame(MessageType::kSessionSnapshot, 99, snap);
  for (int i = 0; i < 400; ++i) {
    if (!client.SendRaw(frame).ok()) break;  // Server already hung up.
    if (stack->gateway->stats().slow_reader_closes > 0) break;
  }
  EXPECT_TRUE(Eventually(
      [&] { return stack->gateway->stats().slow_reader_closes == 1; }))
      << "slow reader was never evicted";
  // Eviction closes the connection-owned session too.
  EXPECT_TRUE(
      Eventually([&] { return stack->server->session_count() == 0; }));
}

TEST(GatewayTest, AdmissionRejectionsSurfaceInBatchResponse) {
  // Park the session on a gated cold fetch, then flood it: admission
  // control (max_session_queue) must reject the overflow and the counts
  // must come back over the wire in SubmitBatchResp.
  TouchServerConfig config = RelaxedConfig(1);
  config.session_defaults.buffer.rows_per_block = 1'024;
  config.session_defaults.buffer.fetch.retry_backoff_us = 100;
  config.max_session_queue = 8;
  auto table = SequenceTable("t");
  auto provider = std::make_shared<GatedSlowProvider>(table, 0, 1'024);
  auto stack = Stack::Up(config, {}, table);
  ASSERT_TRUE(stack->server->shared().SetColumnProvider("t", 0, provider).ok());

  Client client = stack->Connect();
  auto open = client.OpenSession();
  ASSERT_TRUE(open.ok());
  api::CreateObjectReq create;
  create.session = open->session;
  create.kind = 0;
  create.table = "t";
  create.column = "v";
  create.frame = api::WireRect{2.0, 1.0, 2.0, 10.0};
  ASSERT_TRUE(client.CreateObject(create).ok());

  ASSERT_TRUE(client.SubmitBatch(FloodBatch(open->session, 1, 2.0, 2.1)).ok());
  provider->AwaitFetchStarted(1);  // Session parked; queue can only grow.

  auto flood = client.SubmitBatch(FloodBatch(open->session, 100));
  ASSERT_TRUE(flood.ok());
  EXPECT_GT(flood->rejected, 0);
  EXPECT_GT(flood->accepted, 0);  // Begin/end always admitted.
  EXPECT_EQ(flood->accepted + flood->rejected, 102);

  provider->OpenGate();
  ASSERT_TRUE(client.WaitIdle().ok());
  ASSERT_TRUE(client.CloseSession(open->session).ok());
}

TEST(GatewayTest, ConnectionLimitAnsweredWithBackpressure) {
  GatewayConfig gateway_config;
  gateway_config.max_connections = 2;
  auto stack = Stack::Up(RelaxedConfig(), gateway_config);
  Client first = stack->Connect();
  Client second = stack->Connect();
  // Roundtrips prove both connections are fully adopted.
  ASSERT_TRUE(first.Stats().ok());
  ASSERT_TRUE(second.Stats().ok());

  Client third;
  ASSERT_TRUE(third.Connect("127.0.0.1", stack->gateway->port()).ok());
  FrameHeader header;
  auto payload = third.TryReadFrame(&header);
  ASSERT_TRUE(payload.ok());
  auto envelope = DecodeResponsePayload(*payload);
  ASSERT_TRUE(envelope.ok());
  EXPECT_EQ(envelope->code, api::WireCode::kBackpressure);
  EXPECT_EQ(third.TryReadFrame(nullptr).status().code(),
            StatusCode::kAborted);
  EXPECT_EQ(stack->gateway->stats().connections_rejected, 1);
}

// ---- Replay harness --------------------------------------------------------

TEST(GatewayTest, ReplayHarnessPacedRun) {
  auto stack = Stack::Up();
  ReplayConfig config;
  config.port = stack->gateway->port();
  config.sessions = 8;
  config.threads = 4;
  config.gestures_per_session = 1;
  config.slide_min_s = 0.1;
  config.slide_max_s = 0.2;
  config.table = "t";
  config.column = "v";
  config.snapshot_tail = 4;
  ReplayHarness harness(config);
  auto result = harness.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->errors, 0);
  EXPECT_GT(result->batches_sent, 0);
  EXPECT_GT(result->events_sent, 0);
  EXPECT_EQ(result->events_accepted, result->events_sent);
  EXPECT_EQ(result->events_rejected, 0);
  EXPECT_GT(result->snapshot_results, 0);
  EXPECT_GE(result->server_stats.executed, result->events_sent);
  EXPECT_TRUE(result->server_stats.idle());
  EXPECT_EQ(stack->server->session_count(), 0u);
  EXPECT_EQ(stack->gateway->stats().protocol_errors, 0);
}

// ---- Lifecycle -------------------------------------------------------------

TEST(GatewayTest, StopClosesLiveConnectionsAndSessions) {
  auto stack = Stack::Up();
  Client client = stack->Connect();
  auto open = client.OpenSession();
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(stack->server->session_count(), 1u);

  ASSERT_TRUE(stack->gateway->Stop().ok());
  EXPECT_EQ(stack->server->session_count(), 0u);
  // The client observes the close.
  EXPECT_FALSE(client.Stats().ok());
  // Stop is idempotent.
  ASSERT_TRUE(stack->gateway->Stop().ok());
}

}  // namespace
}  // namespace dbtouch::gateway
