// Parity battery for the vectorized span kernels (exec/span_kernels.h).
//
// Every kernel claims bit-identity with the per-row cursor path it
// replaces, across SIMD dispatch tiers. These tests pin that contract
// down directly: each kernel runs against a hand-written per-row
// reference that replays the scalar path (GetAsDouble + RunningAggregate
// ::Add / Predicate::Matches), over ragged span lengths that exercise
// every vector-tail combination, with NaN/infinity/extreme payloads, and
// at forced-scalar vs hardware dispatch for bitwise cross-checks.

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/aggregate.h"
#include "exec/predicate.h"
#include "exec/span_kernels.h"
#include "storage/column.h"
#include "storage/dictionary.h"
#include "storage/types.h"

namespace dbtouch {
namespace {

using exec::AggKind;
using exec::CompareOp;
using exec::MinMaxState;
using exec::Predicate;
using exec::RunningAggregate;
using exec::SimdLevel;
using storage::ColumnView;
using storage::DataType;
using storage::RowId;

// Span lengths chosen to hit every AVX2 lane/tail split: empty, below one
// vector, exact vectors, one past, and large-with-ragged-tail.
constexpr std::int64_t kSizes[] = {0, 1, 3, 4, 7, 8, 9, 31, 32, 33, 1000, 1023};

template <typename T>
ColumnView ViewOf(const std::vector<T>& values, DataType type) {
  // Empty vectors may hand out a null data(); give zero-row spans a real
  // (aligned) address so the kernels see "contiguous span of 0 rows"
  // rather than declining on the null pointer.
  alignas(8) static const std::byte kEmpty[8] = {};
  const std::byte* data = values.empty()
                              ? kEmpty
                              : reinterpret_cast<const std::byte*>(
                                    values.data());
  return ColumnView(type, data, sizeof(T),
                    static_cast<std::int64_t>(values.size()));
}

std::uint64_t Bits(double v) { return std::bit_cast<std::uint64_t>(v); }

// The scalar reference the kernels must replay: GetAsDouble per row into
// the exact `if (v < min_)` update discipline.
MinMaxState ReferenceMinMax(const ColumnView& view) {
  MinMaxState state;
  for (RowId row = 0; row < view.row_count(); ++row) {
    const double v = view.GetAsDouble(row);
    ++state.count;
    if (v < state.min) {
      state.min = v;
    }
    if (v > state.max) {
      state.max = v;
    }
  }
  return state;
}

std::vector<RowId> ReferenceFilter(const ColumnView& view,
                                   const Predicate& predicate,
                                   RowId first_row) {
  std::vector<RowId> rows;
  for (RowId row = 0; row < view.row_count(); ++row) {
    if (predicate.Matches(view.GetAsDouble(row))) {
      rows.push_back(first_row + row);
    }
  }
  return rows;
}

template <typename T>
std::vector<T> FillInts(Rng& rng, std::int64_t n) {
  std::vector<T> values(static_cast<std::size_t>(n));
  for (auto& v : values) {
    // Full-range values, including both extremes somewhere in the stream.
    v = static_cast<T>(rng.NextUint64());
  }
  if (n >= 4) {
    values[static_cast<std::size_t>(n / 3)] = std::numeric_limits<T>::min();
    values[static_cast<std::size_t>(2 * n / 3)] = std::numeric_limits<T>::max();
  }
  return values;
}

template <typename T>
std::vector<T> FillFloats(Rng& rng, std::int64_t n, bool with_nans) {
  std::vector<T> values(static_cast<std::size_t>(n));
  for (auto& v : values) {
    v = static_cast<T>(rng.NextDouble(-1e6, 1e6));
  }
  if (n >= 8) {
    values[1] = std::numeric_limits<T>::infinity();
    values[static_cast<std::size_t>(n / 2)] =
        -std::numeric_limits<T>::infinity();
    // -0.0 next to a strictly smaller value so the zero is never the
    // min/max extreme (the +-0.0 lane-partition caveat in the header).
    values[3] = static_cast<T>(-0.0);
    values[4] = static_cast<T>(-1.0);
    if (with_nans) {
      values[0] = std::numeric_limits<T>::quiet_NaN();
      values[static_cast<std::size_t>(n - 1)] =
          std::numeric_limits<T>::quiet_NaN();
    }
  }
  return values;
}

void ExpectMinMaxEq(const MinMaxState& got, const MinMaxState& want) {
  EXPECT_EQ(got.count, want.count);
  EXPECT_EQ(Bits(got.min), Bits(want.min));
  EXPECT_EQ(Bits(got.max), Bits(want.max));
}

class SpanKernelsTest : public ::testing::Test {
 protected:
  void SetUp() override { hardware_level_ = exec::ActiveSimdLevel(); }
  void TearDown() override { exec::SetSimdLevelForTest(hardware_level_); }

  SimdLevel hardware_level_ = SimdLevel::kScalar;
};

TEST_F(SpanKernelsTest, MinMaxMatchesScalarReferenceAllTypes) {
  Rng rng(0xb10cc);
  for (const std::int64_t n : kSizes) {
    const auto i32 = FillInts<std::int32_t>(rng, n);
    const auto i64 = FillInts<std::int64_t>(rng, n);
    const auto f32 = FillFloats<float>(rng, n, /*with_nans=*/false);
    const auto f64 = FillFloats<double>(rng, n, /*with_nans=*/false);
    const ColumnView views[] = {
        ViewOf(i32, DataType::kInt32), ViewOf(i64, DataType::kInt64),
        ViewOf(f32, DataType::kFloat), ViewOf(f64, DataType::kDouble)};
    for (const ColumnView& view : views) {
      SCOPED_TRACE(testing::Message()
                   << "n=" << n << " type=" << static_cast<int>(view.type()));
      const MinMaxState want = ReferenceMinMax(view);
      for (const SimdLevel level : {SimdLevel::kScalar, SimdLevel::kAvx2}) {
        exec::SetSimdLevelForTest(level);
        MinMaxState got;
        ASSERT_TRUE(exec::MinMaxSpan(view, &got));
        ExpectMinMaxEq(got, want);
      }
    }
  }
}

TEST_F(SpanKernelsTest, MinMaxSkipsNaNsLikeScalarComparison) {
  Rng rng(0x7a9);
  for (const std::int64_t n : {8L, 33L, 1023L}) {
    const auto f32 = FillFloats<float>(rng, n, /*with_nans=*/true);
    const auto f64 = FillFloats<double>(rng, n, /*with_nans=*/true);
    // All-NaN span: count advances, min/max keep their +-infinity seeds.
    const std::vector<double> all_nan(
        static_cast<std::size_t>(n), std::numeric_limits<double>::quiet_NaN());
    const ColumnView views[] = {ViewOf(f32, DataType::kFloat),
                                ViewOf(f64, DataType::kDouble),
                                ViewOf(all_nan, DataType::kDouble)};
    for (const ColumnView& view : views) {
      SCOPED_TRACE(testing::Message()
                   << "n=" << n << " type=" << static_cast<int>(view.type()));
      const MinMaxState want = ReferenceMinMax(view);
      for (const SimdLevel level : {SimdLevel::kScalar, SimdLevel::kAvx2}) {
        exec::SetSimdLevelForTest(level);
        MinMaxState got;
        ASSERT_TRUE(exec::MinMaxSpan(view, &got));
        ExpectMinMaxEq(got, want);
      }
    }
  }
}

TEST_F(SpanKernelsTest, MinMaxAccumulatesAcrossSpans) {
  // Feeding two spans into one state must equal feeding the concatenation
  // — the zone-map builder and summary path accumulate block by block.
  Rng rng(0xacc);
  const auto head = FillFloats<double>(rng, 100, false);
  const auto tail = FillFloats<double>(rng, 37, false);
  std::vector<double> all = head;
  all.insert(all.end(), tail.begin(), tail.end());

  MinMaxState split;
  ASSERT_TRUE(exec::MinMaxSpan(ViewOf(head, DataType::kDouble), &split));
  ASSERT_TRUE(exec::MinMaxSpan(ViewOf(tail, DataType::kDouble), &split));
  ExpectMinMaxEq(split, ReferenceMinMax(ViewOf(all, DataType::kDouble)));
}

TEST_F(SpanKernelsTest, AggregateSpanBitIdenticalToCursorFeed) {
  Rng rng(0x5e9);
  const AggKind kinds[] = {AggKind::kCount,    AggKind::kSum,
                           AggKind::kAvg,      AggKind::kMin,
                           AggKind::kMax,      AggKind::kVariance,
                           AggKind::kStdDev};
  for (const std::int64_t n : kSizes) {
    const auto i32 = FillInts<std::int32_t>(rng, n);
    const auto f64 = FillFloats<double>(rng, n, /*with_nans=*/false);
    const ColumnView views[] = {ViewOf(i32, DataType::kInt32),
                                ViewOf(f64, DataType::kDouble)};
    for (const ColumnView& view : views) {
      for (const AggKind kind : kinds) {
        SCOPED_TRACE(testing::Message()
                     << "n=" << n << " type=" << static_cast<int>(view.type())
                     << " kind=" << static_cast<int>(kind));
        // The reference is the cursor path's exact op sequence: GetAsDouble
        // per ascending row into RunningAggregate::Add.
        RunningAggregate want(kind);
        for (RowId row = 0; row < view.row_count(); ++row) {
          want.Add(view.GetAsDouble(row));
        }
        RunningAggregate got(kind);
        ASSERT_TRUE(exec::AggregateSpan(view, &got));
        EXPECT_EQ(got.count(), want.count());
        EXPECT_EQ(Bits(got.value()), Bits(want.value()));
      }
    }
  }
}

TEST_F(SpanKernelsTest, FilterSpanMatchesPerRowAllOps) {
  Rng rng(0xf117);
  const Predicate predicates[] = {
      Predicate(CompareOp::kLt, 0.0),   Predicate(CompareOp::kLe, 250.0),
      Predicate(CompareOp::kEq, 42.0),  Predicate(CompareOp::kNe, 42.0),
      Predicate(CompareOp::kGe, -10.0), Predicate(CompareOp::kGt, 1e5),
      Predicate(-500.0, 500.0)};
  for (const std::int64_t n : kSizes) {
    auto i32 = FillInts<std::int32_t>(rng, n);
    auto f64 = FillFloats<double>(rng, n, /*with_nans=*/true);
    // Plant exact-equality hits so kEq/kNe see both outcomes.
    for (std::size_t i = 5; i < i32.size(); i += 7) {
      i32[i] = 42;
    }
    for (std::size_t i = 5; i < f64.size(); i += 7) {
      f64[i] = 42.0;
    }
    const ColumnView views[] = {ViewOf(i32, DataType::kInt32),
                                ViewOf(f64, DataType::kDouble)};
    for (const ColumnView& view : views) {
      for (const Predicate& predicate : predicates) {
        const RowId first_row = 4096;
        const std::vector<RowId> want =
            ReferenceFilter(view, predicate, first_row);
        for (const SimdLevel level : {SimdLevel::kScalar, SimdLevel::kAvx2}) {
          SCOPED_TRACE(testing::Message()
                       << "n=" << n << " type="
                       << static_cast<int>(view.type()) << " op="
                       << exec::CompareOpName(predicate.op()) << " level="
                       << exec::SimdLevelName(level));
          exec::SetSimdLevelForTest(level);
          std::vector<RowId> got;
          std::int64_t passed = 0;
          ASSERT_TRUE(exec::FilterSpan(view, predicate, first_row, &got,
                                       &passed));
          EXPECT_EQ(got, want);
          EXPECT_EQ(passed, static_cast<std::int64_t>(want.size()));

          // Count-only form agrees with the materializing form.
          std::int64_t count_only = 0;
          ASSERT_TRUE(exec::FilterSpan(view, predicate, first_row, nullptr,
                                       &count_only));
          EXPECT_EQ(count_only, passed);
        }
      }
    }
  }
}

TEST_F(SpanKernelsTest, FilterSelectedRefinesLikePerRow) {
  Rng rng(0x5e1);
  const auto f64 = FillFloats<double>(rng, 1023, /*with_nans=*/true);
  const ColumnView view = ViewOf(f64, DataType::kDouble);
  // A strided candidate selection, as a second predicate stage sees.
  std::vector<RowId> in_rows;
  for (RowId row = 0; row < view.row_count(); row += 3) {
    in_rows.push_back(row);
  }
  const Predicate predicate(CompareOp::kGt, 0.0);
  std::vector<RowId> want;
  for (const RowId row : in_rows) {
    if (predicate.Matches(view.GetAsDouble(row))) {
      want.push_back(row);
    }
  }
  for (const SimdLevel level : {SimdLevel::kScalar, SimdLevel::kAvx2}) {
    exec::SetSimdLevelForTest(level);
    std::vector<RowId> got;
    ASSERT_TRUE(exec::FilterSelected(view, predicate, in_rows, &got));
    EXPECT_EQ(got, want) << exec::SimdLevelName(level);
  }
}

TEST_F(SpanKernelsTest, NonSpanLayoutsFallBackUntouched) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  // Strided (row-major) view: stride wider than the field.
  const ColumnView strided(DataType::kDouble,
                           reinterpret_cast<const std::byte*>(values.data()),
                           /*stride=*/16, /*row_count=*/2);
  // Dictionary-coded string view: codes are numeric but the kernels must
  // decline (the cursor path owns string semantics).
  const std::vector<std::int32_t> codes = {0, 1, 0, 2};
  storage::Dictionary dict;
  const ColumnView strings(DataType::kString,
                           reinterpret_cast<const std::byte*>(codes.data()),
                           sizeof(std::int32_t),
                           static_cast<std::int64_t>(codes.size()), &dict);
  for (const ColumnView& view : {strided, strings}) {
    MinMaxState state;
    state.count = 7;
    EXPECT_FALSE(exec::MinMaxSpan(view, &state));
    EXPECT_EQ(state.count, 7);  // untouched on fallback

    RunningAggregate agg(AggKind::kSum);
    EXPECT_FALSE(exec::AggregateSpan(view, &agg));
    EXPECT_EQ(agg.count(), 0);

    std::vector<RowId> rows;
    std::int64_t passed = 0;
    EXPECT_FALSE(
        exec::FilterSpan(view, Predicate(CompareOp::kLt, 10.0), 0, &rows,
                         &passed));
    EXPECT_TRUE(rows.empty());
    EXPECT_EQ(passed, 0);

    std::vector<RowId> out;
    EXPECT_FALSE(exec::FilterSelected(view, Predicate(CompareOp::kLt, 10.0),
                                      {0, 1}, &out));
    EXPECT_TRUE(out.empty());
  }
}

TEST_F(SpanKernelsTest, SimdLevelOverrideClampsAndRestores) {
  exec::SetSimdLevelForTest(SimdLevel::kScalar);
  EXPECT_EQ(exec::ActiveSimdLevel(), SimdLevel::kScalar);
  exec::SetSimdLevelForTest(SimdLevel::kAvx2);
  // Clamped to hardware: either honored or degraded to scalar, never UB.
  const SimdLevel active = exec::ActiveSimdLevel();
  EXPECT_TRUE(active == SimdLevel::kAvx2 || active == SimdLevel::kScalar);
  exec::SetSimdLevelForTest(hardware_level_);
  EXPECT_EQ(exec::ActiveSimdLevel(), hardware_level_);
}

}  // namespace
}  // namespace dbtouch
