// The PAX multi-column block tier: layout math, whole-table spill round
// trips, the one-fault-per-tuple residency contract, aligned-extent and
// O_DIRECT file formats, Open validation, and the server-level
// multi-attribute stall batching a fat-table tap rides on.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fcntl.h>
#include <filesystem>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include "cache/block_provider.h"
#include "cache/buffer_manager.h"
#include "cache/file_block_provider.h"
#include "core/kernel.h"
#include "core/shared_state.h"
#include "server/touch_server.h"
#include "sim/motion_profile.h"
#include "sim/trace_builder.h"
#include "storage/datagen.h"
#include "storage/paged_column.h"
#include "storage/pax.h"
#include "storage/spill.h"
#include "storage/table.h"

namespace dbtouch {
namespace {

using cache::FileBlockProvider;
using cache::FileProviderOptions;
using core::Kernel;
using core::KernelConfig;
using server::SessionId;
using server::TouchServer;
using server::TouchServerConfig;
using sim::MotionProfile;
using sim::PointCm;
using sim::TraceBuilder;
using storage::Column;
using storage::DataType;
using storage::PaxLayout;
using storage::RowId;
using storage::SpillOptions;
using storage::Table;
using storage::TableSpiller;
using touch::RectCm;

/// Scratch directory, removed with everything in it at scope exit.
class ScratchDir {
 public:
  ScratchDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "dbtouch_pax_XXXXXX")
            .string();
    path_ = ::mkdtemp(tmpl.data());
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Four columns mixing widths and a dictionary: int64, double, int32,
/// string — the fat-table shape the PAX tier exists for.
std::shared_ptr<Table> FatTable(const std::string& name, std::int64_t rows) {
  std::vector<Column> cols;
  cols.push_back(storage::GenSequenceInt64("v", rows, 0, 1));
  cols.push_back(storage::GenGaussianDouble("g", rows, 10.0, 2.0, 11));
  cols.push_back(storage::GenUniformInt32("u", rows, -100, 100, 13));
  cols.push_back(storage::GenCategorical(
      "tag", rows, {"alpha", "beta", "gamma"}, 7));
  return *Table::FromColumns(name, std::move(cols));
}

std::shared_ptr<core::SharedState> MakeShared(std::int64_t rows_per_block) {
  cache::BufferManagerConfig buffer;
  buffer.rows_per_block = rows_per_block;
  return std::make_shared<core::SharedState>(
      sampling::SampleHierarchyConfig{}, /*force_eager=*/true, buffer);
}

// ---- Layout math ------------------------------------------------------------

TEST(PaxLayoutTest, MinipagesDescendByWidthWithStableTies) {
  // Schema order: i32(4), double(8), float(4), i64(8), string(4).
  // Placement order (width desc, schema index ties): double, i64, i32,
  // float, string.
  const PaxLayout layout({DataType::kInt32, DataType::kDouble,
                          DataType::kFloat, DataType::kInt64,
                          DataType::kString});
  EXPECT_EQ(layout.row_bytes(), 28u);
  const std::int64_t rows = 1023;  // Odd: alignment must not rely on rows.
  EXPECT_EQ(layout.MinipageOffset(rows, 1), 0u);           // double first
  EXPECT_EQ(layout.MinipageOffset(rows, 3), rows * 8u);    // then i64
  EXPECT_EQ(layout.MinipageOffset(rows, 0), rows * 16u);   // then i32
  EXPECT_EQ(layout.MinipageOffset(rows, 2), rows * 20u);   // then float
  EXPECT_EQ(layout.MinipageOffset(rows, 4), rows * 24u);   // then string
  EXPECT_EQ(layout.BlockBytes(rows), rows * 28u);
  // Natural alignment with zero padding: every minipage offset is a
  // multiple of its field width for ANY row count, because 8-byte
  // minipages all precede 4-byte ones.
  for (const std::int64_t r : {1, 7, 96, 1023}) {
    for (std::size_t c = 0; c < layout.num_columns(); ++c) {
      EXPECT_EQ(layout.MinipageOffset(r, c) %
                    storage::TypeWidth(layout.type(c)),
                0u)
          << "rows=" << r << " col=" << c;
    }
    // Minipages tile the payload exactly.
    std::size_t total = 0;
    for (std::size_t c = 0; c < layout.num_columns(); ++c) {
      total += layout.MinipageBytes(r, c);
    }
    EXPECT_EQ(total, layout.BlockBytes(r));
  }
}

// ---- Whole-table spill round trip -------------------------------------------

TEST(PaxSpillTest, ReclaimedPaxTableServesIdenticalValuesAllColumns) {
  ScratchDir dir;
  const std::int64_t rows = 1'000;
  const std::int64_t rows_per_block = 96;  // 1000 % 96 != 0: ragged tail.
  auto shared = MakeShared(rows_per_block);
  auto table = FatTable("fat", rows);
  ASSERT_TRUE(shared->RegisterTable(table).ok());
  const auto reference = FatTable("fat", rows);  // Same seeds, own copy.

  TableSpiller spiller(dir.path(),
                       SpillOptions{.rows_per_block = rows_per_block});
  ASSERT_TRUE(
      shared->SpillTablePax("fat", spiller, /*reclaim_raw=*/true).ok());
  EXPECT_TRUE(table->raw_released());
  EXPECT_TRUE(std::filesystem::exists(spiller.PaxPathFor("fat")));

  // Every column — across widths, the string dictionary, and the ragged
  // last block — reads back identical through the shared PAX binding.
  for (std::size_t col = 0; col < 4; ++col) {
    const auto source = shared->GetColumnSource("fat", col);
    ASSERT_TRUE(source.ok());
    EXPECT_EQ((*source)->type(), reference->schema().field(col).type);
    storage::PagedColumnCursor cursor(*source);
    for (RowId r = 0; r < rows; ++r) {
      ASSERT_EQ(cursor.GetValue(r).ToString(),
                reference->GetValue(r, col).ToString())
          << "col " << col << " row " << r;
    }
  }
}

TEST(PaxSpillTest, OneFaultMakesBlockResidentForAllAttributes) {
  ScratchDir dir;
  const std::int64_t rows = 1'000;
  const std::int64_t rows_per_block = 128;
  auto shared = MakeShared(rows_per_block);
  auto table = FatTable("fat", rows);
  ASSERT_TRUE(shared->RegisterTable(table).ok());

  TableSpiller spiller(dir.path(),
                       SpillOptions{.rows_per_block = rows_per_block});
  const auto provider = spiller.SpillTablePax(table);
  ASSERT_TRUE(provider.ok());
  ASSERT_NE((*provider)->pax_layout(), nullptr);
  EXPECT_EQ((*provider)->geometry().width(),
            (*provider)->pax_layout()->row_bytes());
  for (std::size_t col = 0; col < 4; ++col) {
    ASSERT_TRUE(shared->SetColumnProvider("fat", col, *provider).ok());
  }

  std::vector<std::shared_ptr<storage::PagedColumnSource>> sources;
  for (std::size_t col = 0; col < 4; ++col) {
    const auto source = shared->GetColumnSource("fat", col);
    ASSERT_TRUE(source.ok());
    sources.push_back(*source);
  }
  // All four columns share one residency token (one block namespace).
  for (const auto& source : sources) {
    EXPECT_EQ(source->share_token(), sources.front()->share_token());
  }

  // The PAX contract: pinning block 0 for the first attribute faults ONE
  // block from disk; the other three attributes' pins are cache hits.
  {
    std::vector<storage::BlockPin> pins;
    for (const auto& source : sources) {
      auto pin = source->PinBlock(0);
      ASSERT_TRUE(pin.ok());
      EXPECT_EQ(pin->view().row_count(), rows_per_block);
      pins.push_back(std::move(*pin));
    }
    EXPECT_EQ((*provider)->blocks_read(), 1);
  }
  // A different block costs exactly one more fault, again for all four.
  for (const auto& source : sources) {
    ASSERT_TRUE(source->PinBlock(3).ok());
  }
  EXPECT_EQ((*provider)->blocks_read(), 2);
}

TEST(PaxSpillTest, ColumnPerBlockSpillFaultsOncePerAttribute) {
  // The contrast case the ABL-PAX bench gates: the same fat-tuple read
  // over a column-per-block spill costs one fault PER attribute.
  ScratchDir dir;
  const std::int64_t rows = 1'000;
  const std::int64_t rows_per_block = 128;
  auto shared = MakeShared(rows_per_block);
  auto table = FatTable("fat", rows);
  ASSERT_TRUE(shared->RegisterTable(table).ok());

  TableSpiller spiller(dir.path(),
                       SpillOptions{.rows_per_block = rows_per_block});
  ASSERT_TRUE(shared->SpillTable("fat", spiller).ok());

  std::int64_t faults_before = shared->buffer_manager().stats().faults;
  for (std::size_t col = 0; col < 4; ++col) {
    const auto source = shared->GetColumnSource("fat", col);
    ASSERT_TRUE(source.ok());
    ASSERT_TRUE((*source)->PinBlock(0).ok());
  }
  EXPECT_EQ(shared->buffer_manager().stats().faults - faults_before, 4);
}

// ---- Aligned extents and O_DIRECT -------------------------------------------

TEST(PaxFileFormatTest, AlignedExtentsRoundTripWithDenseRangedReads) {
  ScratchDir dir;
  const std::int64_t rows = 1'000;
  const std::int64_t rows_per_block = 96;
  auto table = FatTable("fat", rows);

  std::filesystem::create_directories(dir.path() + "/plain");
  std::filesystem::create_directories(dir.path() + "/aligned");
  TableSpiller plain(dir.path() + "/plain",
                     SpillOptions{.rows_per_block = rows_per_block});
  TableSpiller aligned(dir.path() + "/aligned",
                       SpillOptions{.rows_per_block = rows_per_block,
                                    .aligned_extents = true});
  const auto plain_provider = plain.SpillTablePax(table);
  const auto aligned_provider = aligned.SpillTablePax(table);
  ASSERT_TRUE(plain_provider.ok());
  ASSERT_TRUE(aligned_provider.ok());
  EXPECT_FALSE((*plain_provider)->aligned_extents());
  EXPECT_TRUE((*aligned_provider)->aligned_extents());

  // Per-block payloads are byte-identical despite the padded placement.
  const std::int64_t num_blocks = (*plain_provider)->geometry().num_blocks();
  std::vector<std::byte> concatenated;
  for (std::int64_t b = 0; b < num_blocks; ++b) {
    const auto want = (*plain_provider)->Fetch(b);
    const auto got = (*aligned_provider)->Fetch(b);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, *want) << "block " << b;
    concatenated.insert(concatenated.end(), want->begin(), want->end());
  }
  // A ranged read over the aligned file compacts the inter-extent padding
  // away: callers always get dense back-to-back payloads.
  const auto range = (*aligned_provider)->ReadRange(0, num_blocks);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(*range, concatenated);
}

TEST(PaxFileFormatTest, DirectIoSpillRoundTripsWithGracefulFallback) {
  ScratchDir dir;
  const std::int64_t rows = 1'000;
  const std::int64_t rows_per_block = 96;
  auto shared = MakeShared(rows_per_block);
  auto table = FatTable("fat", rows);
  ASSERT_TRUE(shared->RegisterTable(table).ok());
  const auto reference = FatTable("fat", rows);

  // use_direct on both the write and read side. On filesystems that
  // refuse O_DIRECT (tmpfs — common for CI scratch dirs) both sides fall
  // back to buffered I/O; the data contract is identical either way, and
  // the file always carries aligned extents.
  TableSpiller spiller(dir.path(),
                       SpillOptions{.rows_per_block = rows_per_block,
                                    .use_direct = true});
  ASSERT_TRUE(
      shared->SpillTablePax("fat", spiller, /*reclaim_raw=*/true).ok());

  const auto direct = FileBlockProvider::Open(
      spiller.PaxPathFor("fat"), FileProviderOptions{.use_direct = true});
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE((*direct)->aligned_extents());
  // direct_active() reports whichever engaged; no assert — it is
  // filesystem-dependent. Reads must agree with buffered reads exactly.
  const auto buffered =
      FileBlockProvider::Open(spiller.PaxPathFor("fat"));
  ASSERT_TRUE(buffered.ok());
  for (std::int64_t b = 0; b < (*direct)->geometry().num_blocks(); ++b) {
    const auto got = (*direct)->Fetch(b);
    const auto want = (*buffered)->Fetch(b);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(*got, *want) << "block " << b;
  }

  // And end to end: the rebound (possibly-direct) tier answers row reads
  // identically to the in-memory reference.
  for (std::size_t col = 0; col < 4; ++col) {
    const auto source = shared->GetColumnSource("fat", col);
    ASSERT_TRUE(source.ok());
    storage::PagedColumnCursor cursor(*source);
    for (RowId r = 0; r < rows; r += 17) {
      ASSERT_EQ(cursor.GetValue(r).ToString(),
                reference->GetValue(r, col).ToString())
          << "col " << col << " row " << r;
    }
  }
}

TEST(PaxFileFormatTest, OpenRejectsUnknownFlagsAndCorruptColumnTypes) {
  ScratchDir dir;
  const std::int64_t rows = 500;
  auto table = FatTable("fat", rows);
  TableSpiller spiller(dir.path(), SpillOptions{.rows_per_block = 128});
  ASSERT_TRUE(spiller.SpillTablePax(table).ok());
  const std::string path = spiller.PaxPathFor("fat");
  ASSERT_TRUE(FileBlockProvider::Open(path).ok());

  const auto corrupt_u32 = [&path](off_t offset, std::uint32_t value) {
    const int fd = ::open(path.c_str(), O_WRONLY);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::pwrite(fd, &value, sizeof(value), offset),
              static_cast<ssize_t>(sizeof(value)));
    ::close(fd);
  };

  // Unknown header flag bit (offset 48 = flags field): a future-format
  // file must be refused, not misread.
  std::uint32_t flags = 0;
  {
    const int fd = ::open(path.c_str(), O_RDONLY);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::pread(fd, &flags, sizeof(flags), 48),
              static_cast<ssize_t>(sizeof(flags)));
    ::close(fd);
  }
  corrupt_u32(48, flags | (1u << 31));
  EXPECT_FALSE(FileBlockProvider::Open(path).ok());
  corrupt_u32(48, flags);  // Restore.
  ASSERT_TRUE(FileBlockProvider::Open(path).ok());

  // Corrupt the first column-directory entry (at 64 + num_blocks * 16)
  // with an invalid type code.
  const std::int64_t num_blocks = (rows + 127) / 128;
  corrupt_u32(static_cast<off_t>(64 + num_blocks * 16), 99);
  EXPECT_FALSE(FileBlockProvider::Open(path).ok());
}

// ---- Server-level: fat-table stalls batch into one suspend ------------------

/// Runs one cold fat-table tap against a spilled table and returns the
/// server stats. `pax` picks the spill layout.
server::ServerStatsSnapshot RunFatTap(const std::string& dir, bool pax) {
  std::filesystem::create_directories(dir);
  TouchServerConfig config;
  config.num_workers = 1;
  config.base_frame_budget_us = 1'000'000;  // Relaxed deadlines.
  config.session_defaults.buffer.rows_per_block = 1'024;
  TouchServer server(config);
  auto table = FatTable("fat", 1 << 14);
  EXPECT_TRUE(server.RegisterTable(table).ok());
  TableSpiller spiller(dir, SpillOptions{.rows_per_block = 1'024});
  if (pax) {
    EXPECT_TRUE(server.shared()
                    .SpillTablePax("fat", spiller, /*reclaim_raw=*/true)
                    .ok());
  } else {
    EXPECT_TRUE(server.shared()
                    .SpillTable("fat", spiller, /*reclaim_raw=*/true)
                    .ok());
  }
  EXPECT_TRUE(server.Start().ok());
  const auto session = server.OpenSession();
  EXPECT_TRUE(session.ok());
  const auto object = server.CreateTableObject(
      *session, "fat", RectCm{2.0, 1.0, 4.0, 10.0});
  EXPECT_TRUE(object.ok());

  Kernel reference;
  TraceBuilder builder(reference.device());
  EXPECT_TRUE(server
                  .SubmitTrace(*session,
                               builder.Tap("tap", PointCm{3.0, 6.0}),
                               {/*paced=*/false})
                  .ok());
  EXPECT_TRUE(server.Drain().ok());
  EXPECT_TRUE(server
                  .WithSession(*session,
                               [](Kernel& kernel) {
                                 EXPECT_FALSE(
                                     kernel.has_pending_gestures());
                                 EXPECT_GT(kernel.results().size(), 0u);
                               })
                  .ok());
  server::ServerStatsSnapshot stats = server.stats();
  EXPECT_TRUE(server.Stop().ok());
  return stats;
}

TEST(PaxServerTest, FatTableTapBatchesColdAttributesIntoOneSuspend) {
  ScratchDir dir;
  // Column-per-block spill: the tap's tuple probe misses on all four
  // attribute sources and suspends ONCE, with the extra attributes riding
  // the same stall (3 round trips saved).
  const server::ServerStatsSnapshot col =
      RunFatTap(dir.path() + "/col", /*pax=*/false);
  EXPECT_GE(col.fetch.suspended_quanta, 1);
  EXPECT_GE(col.fetch.batched_stall_attrs, 3);
  EXPECT_EQ(col.fetch.shed_on_fetch_error, 0);

  // PAX spill: all four attributes miss on the SAME block of the shared
  // provider, so the stall has one entry and nothing to batch.
  const server::ServerStatsSnapshot pax =
      RunFatTap(dir.path() + "/pax", /*pax=*/true);
  EXPECT_GE(pax.fetch.suspended_quanta, 1);
  EXPECT_EQ(pax.fetch.batched_stall_attrs, 0);
  EXPECT_EQ(pax.fetch.shed_on_fetch_error, 0);
  // And the headline fat-table economics: strictly fewer cold faults per
  // tap than the column-per-block layout.
  EXPECT_LT(pax.buffer.faulted_blocks, col.buffer.faulted_blocks);
}

}  // namespace
}  // namespace dbtouch
