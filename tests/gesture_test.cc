// Unit tests for gesture recognition: classification of synthetic traces
// into tap/slide/pinch/rotate and velocity estimation.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gesture/gesture_event.h"
#include "gesture/recognizer.h"
#include "sim/motion_profile.h"
#include "sim/touch_device.h"
#include "sim/trace_builder.h"

namespace dbtouch::gesture {
namespace {

using sim::GestureTrace;
using sim::MotionProfile;
using sim::PointCm;
using sim::TouchDevice;
using sim::TraceBuilder;

std::vector<GestureEvent> Recognize(const GestureTrace& trace,
                                    GestureRecognizer* recognizer) {
  std::vector<GestureEvent> out;
  for (const auto& e : trace.events) {
    auto batch = recognizer->OnTouch(e);
    out.insert(out.end(), batch.begin(), batch.end());
  }
  return out;
}

int CountType(const std::vector<GestureEvent>& events, GestureType type,
              GesturePhase phase) {
  int n = 0;
  for (const auto& e : events) {
    if (e.type == type && e.phase == phase) {
      ++n;
    }
  }
  return n;
}

TEST(GestureTypeTest, Names) {
  EXPECT_STREQ(GestureTypeName(GestureType::kTap), "tap");
  EXPECT_STREQ(GestureTypeName(GestureType::kSlide), "slide");
  EXPECT_STREQ(GestureTypeName(GestureType::kPinch), "pinch");
  EXPECT_STREQ(GestureTypeName(GestureType::kRotate), "rotate");
}

TEST(RecognizerTest, TapIsRecognized) {
  TouchDevice device;
  TraceBuilder builder(device);
  GestureRecognizer rec;
  const auto events = Recognize(builder.Tap("t", PointCm{3, 4}), &rec);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, GestureType::kTap);
  EXPECT_EQ(events[0].phase, GesturePhase::kEnded);
  EXPECT_NEAR(events[0].position.x, 3.0, 0.05);
}

TEST(RecognizerTest, LongHoldIsNotATap) {
  TouchDevice device;
  TraceBuilder builder(device);
  GestureRecognizer rec;
  const auto events =
      Recognize(builder.Tap("hold", PointCm{3, 4}, /*hold_s=*/1.0), &rec);
  EXPECT_TRUE(events.empty());
}

TEST(RecognizerTest, SlideEmitsBeganChangedEnded) {
  TouchDevice device;
  TraceBuilder builder(device);
  GestureRecognizer rec;
  const auto trace = builder.Slide("s", PointCm{2, 1}, PointCm{2, 11},
                                   MotionProfile::Constant(2.0));
  const auto events = Recognize(trace, &rec);
  EXPECT_EQ(CountType(events, GestureType::kSlide, GesturePhase::kBegan), 1);
  EXPECT_EQ(CountType(events, GestureType::kSlide, GesturePhase::kEnded), 1);
  const int changed =
      CountType(events, GestureType::kSlide, GesturePhase::kChanged);
  // ~30 moves at 15Hz over 2s; nearly all register as changes.
  EXPECT_GT(changed, 24);
  // No other gesture types leak out.
  EXPECT_EQ(CountType(events, GestureType::kTap, GesturePhase::kEnded), 0);
}

TEST(RecognizerTest, SlideVelocityApproximatesTrueSpeed) {
  TouchDevice device;
  TraceBuilder builder(device);
  GestureRecognizer rec;
  // 10cm down in 2s -> 5 cm/s along +y.
  const auto trace = builder.Slide("s", PointCm{2, 1}, PointCm{2, 11},
                                   MotionProfile::Constant(2.0));
  double last_vy = 0.0;
  for (const auto& e : trace.events) {
    for (const auto& g : rec.OnTouch(e)) {
      if (g.type == GestureType::kSlide &&
          g.phase == GesturePhase::kChanged) {
        last_vy = g.velocity_y_cm_s;
      }
    }
  }
  EXPECT_NEAR(last_vy, 5.0, 1.0);
}

TEST(RecognizerTest, SlideChangesAreMonotonicInTime) {
  TouchDevice device;
  TraceBuilder builder(device);
  GestureRecognizer rec;
  const auto trace = builder.Slide("s", PointCm{2, 1}, PointCm{2, 11},
                                   MotionProfile::Constant(1.0));
  sim::Micros last = -1;
  for (const auto& e : Recognize(trace, &rec)) {
    EXPECT_GE(e.timestamp_us, last);
    last = e.timestamp_us;
  }
}

TEST(RecognizerTest, PauseResumeStaysOneSlide) {
  TouchDevice device;
  TraceBuilder builder(device);
  GestureRecognizer rec;
  MotionProfile profile;
  profile.ThenMoveTo(0.5, 1.0).ThenPause(1.0).ThenMoveTo(1.0, 1.0);
  const auto trace =
      builder.Slide("p", PointCm{2, 1}, PointCm{2, 11}, profile);
  const auto events = Recognize(trace, &rec);
  EXPECT_EQ(CountType(events, GestureType::kSlide, GesturePhase::kBegan), 1);
  EXPECT_EQ(CountType(events, GestureType::kSlide, GesturePhase::kEnded), 1);
}

TEST(RecognizerTest, ZoomInPinchScaleGrows) {
  TouchDevice device;
  TraceBuilder builder(device);
  GestureRecognizer rec;
  const auto trace =
      builder.Pinch("z", PointCm{9, 7}, M_PI / 2.0, 2.0, 6.0, 1.0);
  const auto events = Recognize(trace, &rec);
  ASSERT_GT(CountType(events, GestureType::kPinch, GesturePhase::kBegan), 0);
  ASSERT_GT(CountType(events, GestureType::kPinch, GesturePhase::kEnded), 0);
  double final_scale = 1.0;
  for (const auto& e : events) {
    if (e.type == GestureType::kPinch) {
      final_scale = e.pinch_scale;
    }
  }
  EXPECT_NEAR(final_scale, 3.0, 0.25);  // 6cm / 2cm.
}

TEST(RecognizerTest, ZoomOutPinchScaleShrinks) {
  TouchDevice device;
  TraceBuilder builder(device);
  GestureRecognizer rec;
  const auto trace =
      builder.Pinch("z", PointCm{9, 7}, M_PI / 2.0, 6.0, 2.0, 1.0);
  const auto events = Recognize(trace, &rec);
  double final_scale = 1.0;
  for (const auto& e : events) {
    if (e.type == GestureType::kPinch) {
      final_scale = e.pinch_scale;
    }
  }
  EXPECT_NEAR(final_scale, 1.0 / 3.0, 0.1);
  EXPECT_EQ(CountType(events, GestureType::kRotate, GesturePhase::kBegan), 0);
}

TEST(RecognizerTest, RotateAccumulatesAngle) {
  TouchDevice device;
  TraceBuilder builder(device);
  GestureRecognizer rec;
  const auto trace = builder.TwoFingerRotate("r", PointCm{9, 7}, 3.0, 0.0,
                                             M_PI / 2.0, 1.0);
  const auto events = Recognize(trace, &rec);
  ASSERT_GT(CountType(events, GestureType::kRotate, GesturePhase::kBegan),
            0);
  double final_rotation = 0.0;
  for (const auto& e : events) {
    if (e.type == GestureType::kRotate) {
      final_rotation = e.rotation_rad;
    }
  }
  EXPECT_NEAR(std::abs(final_rotation), M_PI / 2.0, 0.2);
  EXPECT_EQ(CountType(events, GestureType::kPinch, GesturePhase::kBegan), 0);
}

TEST(RecognizerTest, SecondFingerEndsSlide) {
  TouchDevice device;
  TraceBuilder builder(device);
  GestureRecognizer rec;
  // Start a slide...
  auto slide = builder.Slide("s", PointCm{2, 1}, PointCm{2, 6},
                             MotionProfile::Constant(1.0));
  slide.events.pop_back();  // Keep finger 0 down.
  auto events = Recognize(slide, &rec);
  EXPECT_EQ(CountType(events, GestureType::kSlide, GesturePhase::kBegan), 1);
  EXPECT_EQ(CountType(events, GestureType::kSlide, GesturePhase::kEnded), 0);
  // ...then land a second finger.
  const sim::TouchEvent second{slide.duration_us() + 1000, 1,
                               sim::TouchPhase::kBegan, PointCm{6, 6}};
  events = rec.OnTouch(second);
  EXPECT_EQ(CountType(events, GestureType::kSlide, GesturePhase::kEnded), 1);
}

TEST(RecognizerTest, ResetAbandonsGesture) {
  TouchDevice device;
  TraceBuilder builder(device);
  GestureRecognizer rec;
  auto slide = builder.Slide("s", PointCm{2, 1}, PointCm{2, 6},
                             MotionProfile::Constant(1.0));
  const sim::TouchEvent last_event = slide.events.back();
  slide.events.pop_back();
  Recognize(slide, &rec);
  rec.Reset();
  // The dangling end event is for an untracked finger: no output.
  EXPECT_TRUE(rec.OnTouch(last_event).empty());
}

TEST(RecognizerTest, ConsecutiveGesturesBothRecognized) {
  TouchDevice device;
  TraceBuilder builder(device);
  GestureRecognizer rec;
  GestureTrace session = builder.Slide("s1", PointCm{2, 1}, PointCm{2, 11},
                                       MotionProfile::Constant(1.0));
  session.Append(builder.Tap("t", PointCm{5, 5}), 300'000);
  const auto events = Recognize(session, &rec);
  EXPECT_EQ(CountType(events, GestureType::kSlide, GesturePhase::kEnded), 1);
  EXPECT_EQ(CountType(events, GestureType::kTap, GesturePhase::kEnded), 1);
}

TEST(RecognizerTest, CancelledTouchIsNotATap) {
  GestureRecognizer rec;
  EXPECT_TRUE(rec.OnTouch({0, 0, sim::TouchPhase::kBegan, PointCm{1, 1}})
                  .empty());
  EXPECT_TRUE(
      rec.OnTouch({10'000, 0, sim::TouchPhase::kCancelled, PointCm{1, 1}})
          .empty());
}

TEST(RecognizerTest, CancelledSlideStillEmitsEnded) {
  // A cancelled contact mid-slide must close the gesture so the kernel's
  // per-gesture state (target lock, session accounting) is released.
  TouchDevice device;
  TraceBuilder builder(device);
  GestureRecognizer rec;
  auto slide = builder.Slide("s", PointCm{2, 1}, PointCm{2, 8},
                             MotionProfile::Constant(1.0));
  slide.events.back().phase = sim::TouchPhase::kCancelled;
  const auto events = Recognize(slide, &rec);
  EXPECT_EQ(CountType(events, GestureType::kSlide, GesturePhase::kEnded), 1);
}

TEST(RecognizerTest, ThirdFingerIsIgnored) {
  TouchDevice device;
  TraceBuilder builder(device);
  GestureRecognizer rec;
  auto pinch = builder.Pinch("z", PointCm{9, 7}, M_PI / 2.0, 2.0, 6.0, 1.0);
  // Land a third finger mid-pinch; classification must be unaffected.
  sim::GestureTrace with_third;
  with_third.name = "three";
  for (std::size_t i = 0; i < pinch.events.size(); ++i) {
    with_third.events.push_back(pinch.events[i]);
    if (i == pinch.events.size() / 2) {
      with_third.events.push_back(sim::TouchEvent{
          pinch.events[i].timestamp_us + 1, 2, sim::TouchPhase::kBegan,
          PointCm{15.0, 10.0}});
    }
  }
  const auto events = Recognize(with_third, &rec);
  EXPECT_GT(CountType(events, GestureType::kPinch, GesturePhase::kChanged),
            0);
  EXPECT_EQ(CountType(events, GestureType::kSlide, GesturePhase::kBegan), 0);
  EXPECT_EQ(CountType(events, GestureType::kTap, GesturePhase::kEnded), 0);
}

TEST(RecognizerTest, DrainAfterTwoFingerGestureSwallowsStragglers) {
  TouchDevice device;
  TraceBuilder builder(device);
  GestureRecognizer rec;
  auto pinch = builder.Pinch("z", PointCm{9, 7}, M_PI / 2.0, 2.0, 6.0, 1.0);
  // Remove the final Ended of finger 1: finger 0 ends (gesture kEnded),
  // then finger 1 keeps moving — those moves must produce nothing.
  const auto last = pinch.events.back();
  pinch.events.pop_back();
  auto events = Recognize(pinch, &rec);
  EXPECT_EQ(CountType(events, GestureType::kPinch, GesturePhase::kEnded), 1);
  events = rec.OnTouch(sim::TouchEvent{last.timestamp_us + 10'000, 1,
                                       sim::TouchPhase::kMoved,
                                       PointCm{10.0, 10.0}});
  EXPECT_TRUE(events.empty());
  // Once the straggler lifts, a fresh tap recognises normally.
  EXPECT_TRUE(rec.OnTouch(sim::TouchEvent{last.timestamp_us + 20'000, 1,
                                          sim::TouchPhase::kEnded,
                                          PointCm{10.0, 10.0}})
                  .empty());
  const auto tap = Recognize(builder.Tap("t", PointCm{4, 4}, 0.05,
                                         last.timestamp_us + 100'000),
                             &rec);
  EXPECT_EQ(CountType(tap, GestureType::kTap, GesturePhase::kEnded), 1);
}

TEST(RecognizerTest, DiagonalSlideVelocityHasBothComponents) {
  TouchDevice device;
  TraceBuilder builder(device);
  GestureRecognizer rec;
  // 6cm right and 8cm down in 2s: vx ~3, vy ~4 cm/s.
  const auto trace = builder.Slide("d", PointCm{2, 1}, PointCm{8, 9},
                                   MotionProfile::Constant(2.0));
  for (const auto& e : trace.events) {
    rec.OnTouch(e);
  }
  EXPECT_NEAR(rec.velocity_x(), 3.0, 0.8);
  EXPECT_NEAR(rec.velocity_y(), 4.0, 0.8);
}

}  // namespace
}  // namespace dbtouch::gesture
