// Many-sessions stress over the disk spill tier: concurrent workers,
// fetchers, ranged coalesced reads, steady transient fault injection and
// mid-flight session closes (cancellation), all against one spilled table
// 4x the buffer budget. The TSan CI job runs this binary to shake out
// races; the assertions are parity (sequence data: value == row) and the
// bounded-residency contract.
//
// Labeled `slow` in CMake: CI runs it in the dedicated stress/fault step.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/file_block_provider.h"
#include "core/kernel.h"
#include "server/touch_server.h"
#include "sim/motion_profile.h"
#include "sim/trace_builder.h"
#include "storage/datagen.h"
#include "storage/spill.h"
#include "storage/table.h"

namespace dbtouch {
namespace {

using cache::FileFaultInjector;
using core::Kernel;
using server::ServerStatsSnapshot;
using server::SessionId;
using server::TouchServer;
using server::TouchServerConfig;
using sim::MotionProfile;
using sim::PointCm;
using sim::TraceBuilder;
using storage::Column;
using storage::SpillOptions;
using storage::Table;
using storage::TableSpiller;
using touch::RectCm;

TEST(SpillStressTest, ManySessionsOverFlakySpilledTableStayConsistent) {
  std::string tmpl = (std::filesystem::temp_directory_path() /
                      "dbtouch_spill_stress_XXXXXX")
                         .string();
  const std::string dir = ::mkdtemp(tmpl.data());

  constexpr int kSessions = 6;
  constexpr std::int64_t kRows = 1 << 15;
  TouchServerConfig config;
  config.num_workers = 3;
  config.base_frame_budget_us = 1'000'000;  // Relaxed: stress, not pacing.
  config.drop_slack_us = 10'000'000;
  config.session_defaults.buffer.rows_per_block = 1'024;
  config.session_defaults.buffer.budget_bytes = kRows * 8 / 4;
  config.session_defaults.buffer.fetch.num_fetchers = 2;
  config.session_defaults.buffer.fetch.retry_backoff_us = 100;
  // Summaries read base bands (multi-block stalls -> coalesced ranged
  // reads) instead of sample levels.
  config.session_defaults.use_sampling = false;
  TouchServer server(config);
  std::vector<Column> cols;
  cols.push_back(storage::GenSequenceInt64("v", kRows, 0, 1));
  auto table = *Table::FromColumns("t", std::move(cols));
  ASSERT_TRUE(server.RegisterTable(table).ok());

  TableSpiller spiller(dir, SpillOptions{.rows_per_block = 1'024});
  const auto provider = spiller.SpillColumn(table, 0);
  ASSERT_TRUE(provider.ok()) << provider.status();
  FileFaultInjector injector;
  injector.set_fail_every(7, FileFaultInjector::Fault::kShortRead);
  (*provider)->set_fault_injector(&injector);
  ASSERT_TRUE(server.shared().SetColumnProvider("t", 0, *provider).ok());
  ASSERT_TRUE(server.Start().ok());

  Kernel reference;
  TraceBuilder builder(reference.device());
  const sim::GestureTrace trace =
      builder.Slide("s", PointCm{3.0, 1.0}, PointCm{3.0, 11.0},
                    MotionProfile::Constant(0.5));

  std::vector<SessionId> ids;
  for (int i = 0; i < kSessions; ++i) {
    const auto session = server.OpenSession();
    ASSERT_TRUE(session.ok());
    ids.push_back(*session);
    const auto object = server.CreateColumnObject(
        *session, "t", "v", RectCm{2.0, 1.0, 2.0, 10.0});
    ASSERT_TRUE(object.ok());
    if (i % 2 == 0) {
      // Half the fleet slides summaries: multi-block band stalls that the
      // fetch queue serves as coalesced ranged reads. The rest stay on
      // the default point-read scan.
      ASSERT_TRUE(server
                      .SetAction(*session, *object,
                                 core::ActionConfig::Summary(24))
                      .ok());
    }
  }
  // One extra session submits and closes immediately: its queued demand
  // fetches must be retracted (or settle as no-ops), never wedge the
  // server or deliver into a dead session.
  const auto doomed = server.OpenSession();
  ASSERT_TRUE(doomed.ok());
  ASSERT_TRUE(server
                  .CreateColumnObject(*doomed, "t", "v",
                                      RectCm{2.0, 1.0, 2.0, 10.0})
                  .ok());

  std::vector<std::thread> submitters;
  submitters.reserve(kSessions + 1);
  for (const SessionId id : ids) {
    submitters.emplace_back([&server, &trace, id] {
      EXPECT_TRUE(server.SubmitTrace(id, trace, {/*paced=*/false}).ok());
    });
  }
  submitters.emplace_back([&server, &trace, doomed = *doomed] {
    EXPECT_TRUE(
        server.SubmitTrace(doomed, trace, {/*paced=*/false}).ok());
    EXPECT_TRUE(server.CloseSession(doomed).ok());
  });
  for (std::thread& t : submitters) {
    t.join();
  }
  ASSERT_TRUE(server.Drain().ok());

  const ServerStatsSnapshot stats = server.stats();
  EXPECT_EQ(stats.executed + stats.dropped_quanta, stats.submitted);
  EXPECT_GT(stats.buffer.faulted_blocks, 0);
  EXPECT_LE(stats.buffer.peak_resident_bytes, stats.buffer.budget_bytes);
  // Sequence data parity, whichever worker/fetcher/fault interleaving
  // produced the answer: point reads equal their row id, summary bands
  // average to their band midpoint.
  for (const SessionId id : ids) {
    ASSERT_TRUE(
        server
            .WithSession(id,
                         [](Kernel& kernel) {
                           for (const auto& item :
                                kernel.results().items()) {
                             if (item.kind ==
                                 core::ResultKind::kSummary) {
                               const double mid =
                                   static_cast<double>(item.band_first +
                                                       item.band_last) /
                                   2.0;
                               EXPECT_DOUBLE_EQ(item.value.ToDouble(),
                                                mid);
                             } else {
                               EXPECT_EQ(item.value.AsInt(), item.row);
                             }
                           }
                           EXPECT_FALSE(kernel.has_pending_gestures());
                         })
            .ok());
  }
  // The spill tier actually served coalesced ranged reads under stress.
  EXPECT_GT(stats.fetch.ranged_reads, 0);
  ASSERT_TRUE(server.Stop().ok());

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace dbtouch
