// Property-based suites: the paper's headline relations and the
// kernel/operator invariants, swept over parameter grids with
// INSTANTIATE_TEST_SUITE_P.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "core/kernel.h"
#include "core/shared_state.h"
#include "exec/join.h"
#include "exec/span_kernels.h"
#include "layout/rotation.h"
#include "sampling/sample_hierarchy.h"
#include "sim/motion_profile.h"
#include "sim/trace_builder.h"
#include "storage/datagen.h"
#include "storage/spill.h"

namespace dbtouch {
namespace {

using core::ActionConfig;
using core::Kernel;
using core::KernelConfig;
using sim::MotionProfile;
using sim::PointCm;
using sim::TraceBuilder;
using storage::Column;
using storage::RowId;
using storage::Table;
using touch::RectCm;

// ---- Paper Figure 4(a) as a property: entries ~ rate * duration --------

class Fig4aProperty
    : public testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(Fig4aProperty, EntriesScaleWithDurationAtAnyRate) {
  const auto [duration_s, touch_hz] = GetParam();
  KernelConfig config;
  config.device.touch_event_hz = touch_hz;
  Kernel kernel(config);
  std::vector<Column> cols;
  cols.push_back(storage::MakePaperEvalColumn(1'000'000));
  ASSERT_TRUE(
      kernel.RegisterTable(*Table::FromColumns("eval", std::move(cols)))
          .ok());
  const auto obj = kernel.CreateColumnObject("eval", "values",
                                             RectCm{2.0, 1.0, 2.0, 10.0});
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE(kernel.SetAction(*obj, ActionConfig::Summary(10)).ok());
  TraceBuilder builder(kernel.device());
  kernel.Replay(builder.Slide("s", PointCm{3.0, 1.0}, PointCm{3.0, 11.0},
                              MotionProfile::Constant(duration_s)));
  const double expected = touch_hz * duration_s;
  EXPECT_NEAR(static_cast<double>(kernel.stats().entries_returned),
              expected, expected * 0.15 + 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    RateDurationGrid, Fig4aProperty,
    testing::Combine(testing::Values(0.5, 1.0, 2.0, 4.0),
                     testing::Values(15.0, 30.0, 60.0)));

// ---- Paper Figure 4(b) as a property: entries ~ size at fixed speed ----

class Fig4bProperty : public testing::TestWithParam<double> {};

TEST_P(Fig4bProperty, DoublingSizeDoublesEntries) {
  const double size_cm = GetParam();
  const double speed_cm_s = 2.0;
  const auto entries_at = [&](double cm) {
    Kernel kernel;
    std::vector<Column> cols;
    cols.push_back(storage::MakePaperEvalColumn(1'000'000));
    DBTOUCH_CHECK_OK(
        kernel.RegisterTable(*Table::FromColumns("eval", std::move(cols))));
    const auto obj = kernel.CreateColumnObject(
        "eval", "values", RectCm{2.0, 0.5, 2.0, cm});
    DBTOUCH_CHECK_OK(obj.status());
    DBTOUCH_CHECK_OK(kernel.SetAction(*obj, ActionConfig::Summary(10)));
    TraceBuilder builder(kernel.device());
    kernel.Replay(builder.Slide("s", PointCm{3.0, 0.5},
                                PointCm{3.0, 0.5 + cm},
                                MotionProfile::Constant(cm / speed_cm_s)));
    return static_cast<double>(kernel.stats().entries_returned);
  };
  const double small = entries_at(size_cm);
  const double big = entries_at(2.0 * size_cm);
  EXPECT_GT(small, 0.0);
  EXPECT_NEAR(big / small, 2.0, 0.45);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Fig4bProperty,
                         testing::Values(1.5, 2.0, 3.0, 5.0));

// ---- Summary sample-level consistency across grids ----------------------

class SummaryConsistencyProperty
    : public testing::TestWithParam<std::tuple<std::int64_t, double>> {};

TEST_P(SummaryConsistencyProperty, SampleSummaryTracksBaseBandMidpoint) {
  const auto [rows, object_cm] = GetParam();
  Kernel kernel;
  std::vector<Column> cols;
  cols.push_back(storage::GenSequenceInt64("v", rows, 0, 1));
  ASSERT_TRUE(
      kernel.RegisterTable(*Table::FromColumns("seq", std::move(cols)))
          .ok());
  const auto obj = kernel.CreateColumnObject(
      "seq", "v", RectCm{2.0, 0.5, 2.0, object_cm});
  ASSERT_TRUE(obj.ok());
  ASSERT_TRUE(kernel.SetAction(*obj, ActionConfig::Summary(10)).ok());
  TraceBuilder builder(kernel.device());
  kernel.Replay(builder.Slide("s", PointCm{3.0, 0.5},
                              PointCm{3.0, 0.5 + object_cm},
                              MotionProfile::Constant(2.0)));
  ASSERT_GT(kernel.results().size(), 0);
  for (const auto& item : kernel.results().items()) {
    ASSERT_GT(item.rows_aggregated, 0);
    const double stride =
        static_cast<double>(item.band_last - item.band_first + 1) /
        static_cast<double>(item.rows_aggregated);
    const double mid =
        static_cast<double>(item.band_first + item.band_last) / 2.0;
    EXPECT_NEAR(item.value.AsDouble(), mid, std::max(stride, 1.0));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SummaryConsistencyProperty,
    testing::Combine(testing::Values<std::int64_t>(10'000, 300'000,
                                                   2'000'000),
                     testing::Values(4.0, 10.0)));

// ---- Symmetric join == nested loop, across seeds -------------------------

class JoinEquivalenceProperty : public testing::TestWithParam<int> {};

TEST_P(JoinEquivalenceProperty, MatchesNestedLoopReference) {
  const int seed = GetParam();
  const Column left = storage::GenUniformInt32(
      "l", 300, 0, 40, static_cast<std::uint64_t>(seed));
  const Column right = storage::GenUniformInt32(
      "r", 400, 0, 40, static_cast<std::uint64_t>(seed) + 1000);
  Rng rng(static_cast<std::uint64_t>(seed) + 2000);
  exec::SymmetricHashJoin join(left.View(), right.View());
  std::vector<bool> fed_left(300, false);
  std::vector<bool> fed_right(400, false);
  for (int i = 0; i < 250; ++i) {
    if (rng.NextBernoulli(0.5)) {
      const RowId r = static_cast<RowId>(rng.NextBounded(300));
      fed_left[static_cast<std::size_t>(r)] = true;
      join.Feed(exec::JoinSide::kLeft, r);
    } else {
      const RowId r = static_cast<RowId>(rng.NextBounded(400));
      fed_right[static_cast<std::size_t>(r)] = true;
      join.Feed(exec::JoinSide::kRight, r);
    }
  }
  std::int64_t reference = 0;
  for (RowId l = 0; l < 300; ++l) {
    if (!fed_left[static_cast<std::size_t>(l)]) {
      continue;
    }
    for (RowId r = 0; r < 400; ++r) {
      if (fed_right[static_cast<std::size_t>(r)] &&
          left.View().GetInt32(l) == right.View().GetInt32(r)) {
        ++reference;
      }
    }
  }
  EXPECT_EQ(static_cast<std::int64_t>(join.matches().size()), reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinEquivalenceProperty,
                         testing::Range(1, 9));

// ---- Rotation identity across shapes and chunk sizes ---------------------

class RotationIdentityProperty
    : public testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {
};

TEST_P(RotationIdentityProperty, RoundTripPreservesEveryCell) {
  const auto [rows, chunk] = GetParam();
  std::vector<Column> cols;
  cols.push_back(storage::GenSequenceInt64("a", rows, 7, 3));
  cols.push_back(storage::GenUniformInt32("b", rows, -100, 100, 11));
  cols.push_back(storage::GenGaussianDouble("c", rows, 0.0, 1.0, 12));
  auto table = *Table::FromColumns("t", std::move(cols));
  // Fingerprint before.
  double checksum = 0.0;
  for (RowId r = 0; r < rows; r += 97) {
    checksum += table->GetValue(r, 0).ToDouble() +
                table->GetValue(r, 1).ToDouble() +
                table->GetValue(r, 2).AsDouble();
  }
  for (const storage::MajorOrder target :
       {storage::MajorOrder::kRowMajor, storage::MajorOrder::kColumnMajor}) {
    layout::IncrementalRotator rotator(table.get(), target, chunk);
    while (!rotator.Step()) {
    }
    ASSERT_TRUE(rotator.Finish().ok());
  }
  double after = 0.0;
  for (RowId r = 0; r < rows; r += 97) {
    after += table->GetValue(r, 0).ToDouble() +
             table->GetValue(r, 1).ToDouble() +
             table->GetValue(r, 2).AsDouble();
  }
  EXPECT_DOUBLE_EQ(checksum, after);
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, RotationIdentityProperty,
    testing::Combine(testing::Values<std::int64_t>(1, 100, 10'000),
                     testing::Values<std::int64_t>(1, 64, 100'000)));

// ---- Sample hierarchy nesting across sizes -------------------------------

class HierarchyNestingProperty : public testing::TestWithParam<std::int64_t> {
};

TEST_P(HierarchyNestingProperty, EachLevelIsEverySecondOfTheLevelBelow) {
  const std::int64_t rows = GetParam();
  const Column base = storage::GenUniformInt32("c", rows, 0, 1'000'000, 3);
  sampling::SampleHierarchy h(base.View());
  for (int level = 1; level < h.num_levels(); ++level) {
    const auto fine = h.LevelView(level - 1);
    const auto coarse = h.LevelView(level);
    for (RowId s = 0; s < coarse.row_count(); ++s) {
      ASSERT_EQ(coarse.GetInt32(s), fine.GetInt32(2 * s))
          << "level " << level << " row " << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, HierarchyNestingProperty,
                         testing::Values<std::int64_t>(1'000, 65'536,
                                                       1'000'000));

// ---- Aggregates are feeding-order independent -----------------------------

class AggregateOrderProperty : public testing::TestWithParam<int> {};

TEST_P(AggregateOrderProperty, ShuffledFeedMatchesSequentialFeed) {
  const int seed = GetParam();
  const Column c = storage::GenGaussianDouble(
      "c", 2'000, 5.0, 2.0, static_cast<std::uint64_t>(seed));
  std::vector<RowId> order(2'000);
  std::iota(order.begin(), order.end(), 0);
  // Deterministic shuffle via seeded rng.
  Rng rng(static_cast<std::uint64_t>(seed) + 7);
  for (std::size_t i = order.size() - 1; i > 0; --i) {
    std::swap(order[i], order[rng.NextBounded(i + 1)]);
  }
  for (const auto kind :
       {exec::AggKind::kAvg, exec::AggKind::kMin, exec::AggKind::kMax,
        exec::AggKind::kStdDev}) {
    exec::TouchedAggregateOp sequential(c.View(), kind);
    exec::TouchedAggregateOp shuffled(c.View(), kind);
    for (RowId r = 0; r < 2'000; ++r) {
      sequential.Feed(r);
    }
    for (const RowId r : order) {
      shuffled.Feed(r);
    }
    EXPECT_NEAR(sequential.value(), shuffled.value(), 1e-9)
        << AggKindName(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateOrderProperty,
                         testing::Range(1, 6));

// ---- Storage-tier parity: identical gestures, bit-identical answers --------
//
// The same gesture script — column summaries and taps PLUS fat-table taps
// and a group-by slide — runs against every backend: raw in-memory
// reads, the paged buffer pool over the in-memory table (both with the
// span kernels' default dispatch and with the scalar tier forced), the
// pool over file-spilled columns, the spilled table with its matrix
// actually reclaimed (SpillTable reclaim_raw: every read must come off
// disk), the table PAX-spilled into one multi-column file, and the spill
// written and faulted through O_DIRECT with aligned extents — at
// 10/50/100% buffer budgets. The storage tier, the SIMD tier and the
// budget are performance knobs; every answer must be bit-identical
// across all.

enum class Backend {
  kInMemory,
  kPagedRam,
  kFileSpilled,
  kFileReclaimed,
  kPaxReclaimed,
  kDirectReclaimed,
};

struct TierParityParam {
  Backend backend;
  int budget_pct;
};

/// Everything observable about one answered touch, value as raw bits.
struct AnswerFingerprint {
  core::ResultKind kind;
  RowId row;
  std::uint64_t value_bits;
  RowId band_first;
  RowId band_last;
  std::int64_t rows_aggregated;
  bool approximate;

  friend bool operator==(const AnswerFingerprint&,
                         const AnswerFingerprint&) = default;
};

std::vector<AnswerFingerprint> RunTierScript(Backend backend,
                                             int budget_pct) {
  constexpr std::int64_t kRows = 1 << 15;
  constexpr std::int64_t kRowsPerBlock = 1'024;
  KernelConfig config;
  config.use_buffer_manager = backend != Backend::kInMemory;
  config.buffer.rows_per_block = kRowsPerBlock;
  config.buffer.budget_bytes = kRows * 8 * budget_pct / 100;

  const auto make_table = [] {
    std::vector<Column> cols;
    cols.push_back(storage::GenSequenceInt64("v", kRows, 0, 1));
    cols.push_back(storage::GenCategorical(
        "g", kRows, {"red", "green", "blue", "grey"}, 11));
    return *Table::FromColumns("tier", std::move(cols));
  };

  const bool spilled = backend == Backend::kFileSpilled ||
                       backend == Backend::kFileReclaimed ||
                       backend == Backend::kPaxReclaimed ||
                       backend == Backend::kDirectReclaimed;
  std::shared_ptr<core::SharedState> shared;
  std::string spill_dir;
  if (spilled) {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "dbtouch_tier_parity_XXXXXX")
                           .string();
    spill_dir = ::mkdtemp(tmpl.data());
    // Same private-state shape a plain Kernel builds (lazy hierarchies),
    // with the columns rebound to their spill files — and, for the
    // reclaimed backend, the matrix actually freed.
    shared = std::make_shared<core::SharedState>(
        config.sampling, /*force_eager=*/false, config.buffer);
    DBTOUCH_CHECK_OK(shared->RegisterTable(make_table()));
    storage::SpillOptions spill_options{.rows_per_block = kRowsPerBlock};
    // The O_DIRECT backend asks for direct + aligned I/O; on filesystems
    // that refuse O_DIRECT (tmpfs) it degrades to buffered reads over the
    // same aligned-extent file — the answers must not care either way.
    spill_options.use_direct = backend == Backend::kDirectReclaimed;
    storage::TableSpiller spiller(spill_dir, spill_options);
    if (backend == Backend::kPaxReclaimed) {
      DBTOUCH_CHECK_OK(
          shared->SpillTablePax("tier", spiller, /*reclaim_raw=*/true));
    } else {
      DBTOUCH_CHECK_OK(shared->SpillTable(
          "tier", spiller,
          /*reclaim_raw=*/backend != Backend::kFileSpilled));
    }
  }
  Kernel kernel(config, shared);
  if (!spilled) {
    DBTOUCH_CHECK_OK(kernel.RegisterTable(make_table()));
  }
  const auto object = kernel.CreateColumnObject(
      "tier", "v", RectCm{2.0, 1.0, 2.0, 10.0});
  DBTOUCH_CHECK_OK(object.status());
  DBTOUCH_CHECK_OK(
      kernel.SetAction(*object, ActionConfig::Summary(16)));
  // A fat-table object beside the column: taps reveal whole tuples and a
  // slide feeds the tag -> avg(v) group-by — the read paths that used to
  // require the raw matrix.
  const auto fat = kernel.CreateTableObject(
      "tier", RectCm{6.0, 1.0, 3.0, 10.0});
  DBTOUCH_CHECK_OK(fat.status());
  DBTOUCH_CHECK_OK(kernel.SetAction(
      *fat, ActionConfig::GroupBy(1, 0, exec::AggKind::kAvg)));

  // The script mixes speeds (sampled and base-band summaries), direction
  // reversals (gesture-aware admission), point taps, a fat-table tap and
  // a group-by slide.
  TraceBuilder builder(kernel.device());
  kernel.Replay(builder.Slide("down", PointCm{3.0, 1.0},
                              PointCm{3.0, 11.0},
                              MotionProfile::Constant(2.0)));
  kernel.Replay(builder.Slide("flick", PointCm{3.0, 11.0},
                              PointCm{3.0, 4.0},
                              MotionProfile::Constant(0.3),
                              /*start_time_us=*/4'000'000));
  kernel.Replay(builder.Tap("tap-a", PointCm{3.0, 2.5}, 0.05,
                            /*start_time_us=*/6'000'000));
  kernel.Replay(builder.Tap("tap-b", PointCm{3.0, 9.5}, 0.05,
                            /*start_time_us=*/7'000'000));
  kernel.Replay(builder.Tap("fat-tap", PointCm{7.5, 6.0}, 0.05,
                            /*start_time_us=*/8'000'000));
  kernel.Replay(builder.Slide("groupby", PointCm{7.0, 1.0},
                              PointCm{7.0, 11.0},
                              MotionProfile::Constant(1.5),
                              /*start_time_us=*/9'000'000));

  std::vector<AnswerFingerprint> out;
  out.reserve(kernel.results().items().size());
  for (const auto& item : kernel.results().items()) {
    // Numeric answers compare as raw bits; string answers (fat-tap tuple
    // fields decoded through the dictionary) by hash.
    const std::uint64_t bits =
        item.value.is_string()
            ? std::hash<std::string>{}(item.value.AsString())
            : std::bit_cast<std::uint64_t>(item.value.ToDouble());
    out.push_back(AnswerFingerprint{item.kind, item.row, bits,
                                    item.band_first, item.band_last,
                                    item.rows_aggregated,
                                    item.approximate});
  }
  if (!spill_dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(spill_dir, ec);
  }
  return out;
}

class TierParityProperty : public testing::TestWithParam<int> {};

TEST_P(TierParityProperty, PagedAndSpilledTiersMatchInMemoryBitForBit) {
  const int budget_pct = GetParam();
  const std::vector<AnswerFingerprint> reference =
      RunTierScript(Backend::kInMemory, 100);
  ASSERT_GT(reference.size(), 10u);
  const std::vector<AnswerFingerprint> paged =
      RunTierScript(Backend::kPagedRam, budget_pct);
  // The same paged run with the span kernels' SIMD dispatch forced down
  // to the scalar tier: vectorization is a performance knob too.
  const exec::SimdLevel hardware_level = exec::ActiveSimdLevel();
  exec::SetSimdLevelForTest(exec::SimdLevel::kScalar);
  const std::vector<AnswerFingerprint> scalar =
      RunTierScript(Backend::kPagedRam, budget_pct);
  exec::SetSimdLevelForTest(hardware_level);
  const std::vector<AnswerFingerprint> spilled =
      RunTierScript(Backend::kFileSpilled, budget_pct);
  const std::vector<AnswerFingerprint> reclaimed =
      RunTierScript(Backend::kFileReclaimed, budget_pct);
  const std::vector<AnswerFingerprint> pax =
      RunTierScript(Backend::kPaxReclaimed, budget_pct);
  const std::vector<AnswerFingerprint> direct =
      RunTierScript(Backend::kDirectReclaimed, budget_pct);
  EXPECT_EQ(paged, reference);
  EXPECT_EQ(scalar, reference);
  EXPECT_EQ(spilled, reference);
  EXPECT_EQ(reclaimed, reference);
  EXPECT_EQ(pax, reference);
  EXPECT_EQ(direct, reference);
}

INSTANTIATE_TEST_SUITE_P(BufferBudgets, TierParityProperty,
                         testing::Values(10, 50, 100));

// ---- Gesture classification across the speed/length grid ------------------

class RecognizerClassProperty
    : public testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RecognizerClassProperty, SlidesAlwaysClassifyAsSlides) {
  const auto [length_cm, duration_s] = GetParam();
  sim::TouchDevice device;
  TraceBuilder builder(device);
  gesture::GestureRecognizer recognizer;
  const auto trace =
      builder.Slide("s", PointCm{2.0, 1.0}, PointCm{2.0, 1.0 + length_cm},
                    MotionProfile::Constant(duration_s));
  int slide_began = 0;
  int slide_ended = 0;
  int others = 0;
  for (const auto& event : trace.events) {
    for (const auto& g : recognizer.OnTouch(event)) {
      if (g.type == gesture::GestureType::kSlide) {
        slide_began += g.phase == gesture::GesturePhase::kBegan;
        slide_ended += g.phase == gesture::GesturePhase::kEnded;
      } else {
        ++others;
      }
    }
  }
  EXPECT_EQ(slide_began, 1);
  EXPECT_EQ(slide_ended, 1);
  EXPECT_EQ(others, 0);
}

INSTANTIATE_TEST_SUITE_P(
    SpeedLengthGrid, RecognizerClassProperty,
    testing::Combine(testing::Values(1.0, 5.0, 12.0),
                     testing::Values(0.25, 1.0, 4.0)));

}  // namespace
}  // namespace dbtouch
