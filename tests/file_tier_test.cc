// The disk spill tier: block-file format round trips, TableSpiller +
// SharedState rebinding, the bounded-residency acceptance criterion
// (a table 4x the buffer budget served through the pool), ranged-read
// coalescing against the file, and the fault-injection battery
// (truncation, short reads, deletion, permission errors).
//
// Labeled `slow` in CMake: CI runs this suite in its dedicated
// stress/fault ctest step.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cache/block_provider.h"
#include "cache/buffer_manager.h"
#include "cache/fetch_queue.h"
#include "cache/file_block_provider.h"
#include "core/kernel.h"
#include "core/shared_state.h"
#include "server/touch_server.h"
#include "sim/motion_profile.h"
#include "sim/trace_builder.h"
#include "storage/datagen.h"
#include "storage/memory_tracker.h"
#include "storage/paged_column.h"
#include "storage/spill.h"
#include "storage/table.h"

namespace dbtouch {
namespace {

using cache::BlockFileWriter;
using cache::FileBlockProvider;
using cache::FileFaultInjector;
using cache::FileProviderOptions;
using cache::TableBlockProvider;
using core::ActionConfig;
using core::Kernel;
using core::KernelConfig;
using server::TouchServer;
using server::TouchServerConfig;
using sim::MotionProfile;
using sim::PointCm;
using sim::TraceBuilder;
using storage::Column;
using storage::RowId;
using storage::SpillOptions;
using storage::Table;
using storage::TableSpiller;
using touch::RectCm;

/// Scratch directory, removed with everything in it at scope exit.
class ScratchDir {
 public:
  ScratchDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "dbtouch_file_tier_XXXXXX")
                           .string();
    path_ = ::mkdtemp(tmpl.data());
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::shared_ptr<Table> SequenceTable(const std::string& name,
                                     std::int64_t rows) {
  std::vector<Column> cols;
  cols.push_back(storage::GenSequenceInt64("v", rows, 0, 1));
  return *Table::FromColumns(name, std::move(cols));
}

// ---- Format round trips -----------------------------------------------------

class FileProviderModes : public testing::TestWithParam<bool> {};

TEST_P(FileProviderModes, SpilledBlocksAreByteIdenticalToTableProvider) {
  const bool use_mmap = GetParam();
  ScratchDir dir;
  SpillOptions options;
  options.rows_per_block = 96;  // 1000 % 96 != 0: a ragged tail block.
  options.use_mmap = use_mmap;
  TableSpiller spiller(dir.path(), options);
  auto table = SequenceTable("t", 1'000);
  const auto provider = spiller.SpillColumn(table, 0);
  ASSERT_TRUE(provider.ok()) << provider.status();
  EXPECT_EQ(spiller.columns_spilled(), 1);
  EXPECT_GT(spiller.bytes_written(), 1'000 * 8);

  TableBlockProvider reference(table, 0, options.rows_per_block);
  ASSERT_EQ((*provider)->geometry().num_blocks(),
            reference.geometry().num_blocks());
  for (std::int64_t b = 0; b < reference.geometry().num_blocks(); ++b) {
    const auto from_file = (*provider)->Fetch(b);
    const auto from_table = reference.Fetch(b);
    ASSERT_TRUE(from_file.ok()) << from_file.status();
    ASSERT_TRUE(from_table.ok());
    EXPECT_EQ(*from_file, *from_table) << "block " << b;
  }
}

TEST_P(FileProviderModes, ReadRangeMatchesConcatenatedFetches) {
  const bool use_mmap = GetParam();
  ScratchDir dir;
  SpillOptions options;
  options.rows_per_block = 64;
  options.use_mmap = use_mmap;
  TableSpiller spiller(dir.path(), options);
  const auto provider = spiller.SpillColumn(SequenceTable("t", 1'000), 0);
  ASSERT_TRUE(provider.ok()) << provider.status();

  const auto ranged = (*provider)->ReadRange(3, 5);
  ASSERT_TRUE(ranged.ok()) << ranged.status();
  std::vector<std::byte> expected;
  for (std::int64_t b = 3; b < 8; ++b) {
    const auto one = (*provider)->Fetch(b);
    ASSERT_TRUE(one.ok());
    expected.insert(expected.end(), one->begin(), one->end());
  }
  EXPECT_EQ(*ranged, expected);
  EXPECT_EQ((*provider)->ranged_reads(), 1);
  EXPECT_GE((*provider)->blocks_read(), 6);
}

INSTANTIATE_TEST_SUITE_P(PreadAndMmap, FileProviderModes,
                         testing::Values(false, true),
                         [](const testing::TestParamInfo<bool>& info) {
                           return info.param ? "mmap" : "pread";
                         });

TEST(FileBlockProviderTest, OpenRejectsMissingCorruptAndUnfinishedFiles) {
  ScratchDir dir;
  // Missing.
  EXPECT_EQ(FileBlockProvider::Open(dir.path() + "/absent.dbb")
                .status()
                .code(),
            StatusCode::kNotFound);

  // Garbage bytes: bad magic.
  const std::string garbage = dir.path() + "/garbage.dbb";
  {
    std::vector<char> noise(256, 'x');
    FILE* f = std::fopen(garbage.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(noise.data(), 1, noise.size(), f);
    std::fclose(f);
  }
  EXPECT_EQ(FileBlockProvider::Open(garbage).status().code(),
            StatusCode::kInvalidArgument);

  // A writer that never Finished leaves no committed header.
  auto table = SequenceTable("t", 500);
  TableBlockProvider reader(table, 0, 128);
  const std::string unfinished = dir.path() + "/unfinished.dbb";
  {
    BlockFileWriter writer(unfinished, reader.geometry());
    const auto block = reader.Fetch(0);
    ASSERT_TRUE(block.ok());
    ASSERT_TRUE(writer.Append(block->data(), block->size()).ok());
    // No Finish.
  }
  EXPECT_EQ(FileBlockProvider::Open(unfinished).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FileBlockProviderTest, WriterEnforcesBlockOrderAndSizes) {
  ScratchDir dir;
  auto table = SequenceTable("t", 300);
  TableBlockProvider reader(table, 0, 128);  // Blocks: 128, 128, 44 rows.
  BlockFileWriter writer(dir.path() + "/t.dbb", reader.geometry());
  const auto block = reader.Fetch(0);
  ASSERT_TRUE(block.ok());
  // Wrong size for block 0.
  EXPECT_EQ(writer.Append(block->data(), block->size() - 8).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(writer.Append(block->data(), block->size()).ok());
  // Finish before all blocks are written.
  EXPECT_EQ(writer.Finish().code(), StatusCode::kFailedPrecondition);
}

// ---- Spill + rebind through the SharedState ---------------------------------

TEST(TableSpillerTest, SpilledColumnsServeIdenticalValuesThroughThePool) {
  ScratchDir dir;
  const std::int64_t rows = 10'000;
  std::vector<Column> cols;
  cols.push_back(storage::GenSequenceInt64("v", rows, 0, 1));
  cols.push_back(storage::GenCategorical(
      "tag", rows, {"alpha", "beta", "gamma"}, 7));
  auto table = *Table::FromColumns("spilled", std::move(cols));

  cache::BufferManagerConfig buffer;
  buffer.rows_per_block = 512;
  auto shared = std::make_shared<core::SharedState>(
      sampling::SampleHierarchyConfig{}, /*force_eager=*/true, buffer);
  ASSERT_TRUE(shared->RegisterTable(table).ok());
  TableSpiller spiller(dir.path(), SpillOptions{.rows_per_block = 512});
  ASSERT_TRUE(shared->SpillTable("spilled", spiller).ok());
  EXPECT_EQ(spiller.columns_spilled(), 2);

  // Both columns now fault from their block files; values — including
  // dictionary-decoded strings — match the in-memory table exactly.
  for (std::size_t col = 0; col < 2; ++col) {
    const auto source = shared->GetColumnSource("spilled", col);
    ASSERT_TRUE(source.ok());
    storage::PagedColumnCursor cursor(*source);
    for (RowId r = 0; r < rows; r += 37) {
      EXPECT_EQ(cursor.GetValue(r).ToString(),
                table->GetValue(r, col).ToString())
          << "col " << col << " row " << r;
    }
  }
}

// ---- The acceptance criterion: 4x-budget table, bounded residency -----------

TEST(FileTierAcceptanceTest, BeyondBudgetTableServesSlideSummaryWithinBudget) {
  ScratchDir dir;
  const std::int64_t rows = 1 << 16;          // 512 KiB of int64.
  const std::int64_t table_bytes = rows * 8;
  const std::int64_t rows_per_block = 1'024;  // 8 KiB blocks.

  cache::BufferManagerConfig buffer;
  buffer.rows_per_block = rows_per_block;
  buffer.budget_bytes = table_bytes / 4;  // Table is 4x the budget.
  // Staging pad sized to one summary band, so Preload's coalesced blocks
  // survive until the probe pins claim them (staged bytes live outside
  // the resident budget; the residency assertion below is untouched).
  buffer.staged_cap_bytes = buffer.budget_bytes;
  auto shared = std::make_shared<core::SharedState>(
      sampling::SampleHierarchyConfig{}, /*force_eager=*/true, buffer);
  auto table = SequenceTable("big", rows);
  ASSERT_TRUE(shared->RegisterTable(table).ok());

  const std::int64_t matrix_before =
      storage::MemoryTracker::Instance().matrix_bytes();
  TableSpiller spiller(dir.path(),
                       SpillOptions{.rows_per_block = rows_per_block});
  // Spill with reclamation: the matrix is gone, so the whole script below
  // genuinely runs a 4x-budget table out of core.
  ASSERT_TRUE(
      shared->SpillTable("big", spiller, /*reclaim_raw=*/true).ok());
  EXPECT_TRUE(table->raw_released());
  EXPECT_EQ(table->resident_raw_bytes(), 0);
  // MemoryTracker accounting: the reclaim gave the table's bytes back.
  EXPECT_LE(storage::MemoryTracker::Instance().matrix_bytes(),
            matrix_before - table_bytes);

  KernelConfig config;
  config.use_sampling = false;  // Every summary reads base bands (disk).
  Kernel kernel(config, shared);
  const auto object = kernel.CreateColumnObject(
      "big", "v", RectCm{2.0, 1.0, 2.0, 10.0});
  ASSERT_TRUE(object.ok());
  ASSERT_TRUE(
      kernel.SetAction(*object, ActionConfig::Summary(40)).ok());

  // The full gesture script: slide down the object (summary bands), slide
  // back up, then tap spots — all served from the spilled file.
  TraceBuilder builder(kernel.device());
  kernel.Replay(builder.Slide("down", PointCm{3.0, 1.0}, PointCm{3.0, 11.0},
                              MotionProfile::Constant(1.0)));
  kernel.Replay(builder.Slide("up", PointCm{3.0, 11.0}, PointCm{3.0, 1.0},
                              MotionProfile::Constant(1.0),
                              /*start_time_us=*/2'000'000));
  kernel.Replay(builder.Tap("tap", PointCm{3.0, 6.0}, 0.05,
                            /*start_time_us=*/4'000'000));
  ASSERT_GT(kernel.results().size(), 0u);
  EXPECT_EQ(kernel.stats().fetch_errors, 0);

  // Sequence data: every summary over band [first, last] averages to the
  // band midpoint, whatever tier served it.
  for (const auto& item : kernel.results().items()) {
    if (item.kind == core::ResultKind::kSummary) {
      const double mid = static_cast<double>(item.band_first +
                                             item.band_last) /
                         2.0;
      EXPECT_DOUBLE_EQ(item.value.AsDouble(), mid);
    }
  }

  // The bounded-residency contract: the whole script ran against a table
  // 4x the budget — whose raw storage no longer exists — and the pool's
  // resident high-water mark never crossed the budget.
  const cache::BlockCacheStats stats = shared->buffer_manager().stats();
  EXPECT_GT(stats.faults, 0);
  EXPECT_LE(stats.peak_resident_bytes, buffer.budget_bytes);
  EXPECT_LE(stats.resident_bytes, buffer.budget_bytes);
  // ...and the reclaimed matrix stayed gone throughout.
  EXPECT_EQ(table->resident_raw_bytes(), 0);

  // Batched demand fetches: adjacent cold-band misses coalesced into
  // ranged reads (the blocking probe path's Preload) — strictly fewer
  // provider round trips than blocks covered.
  EXPECT_GT(shared->buffer_manager().sync_ranged_reads(), 0);
  EXPECT_LT(shared->buffer_manager().sync_ranged_reads(),
            shared->buffer_manager().sync_ranged_blocks());
}

// ---- Fault battery ----------------------------------------------------------

TEST(FileTierFaultTest, TruncatedFileIsTransientUntilRetriesExhaust) {
  ScratchDir dir;
  TableSpiller spiller(dir.path(), SpillOptions{.rows_per_block = 128});
  const auto provider = spiller.SpillColumn(SequenceTable("t", 1'000), 0);
  ASSERT_TRUE(provider.ok());
  const std::string path = (*provider)->path();

  // Chop the file in half: later blocks now end at EOF mid-extent.
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) / 2);
  cache::FetchQueueConfig retry;
  retry.max_retries = 2;
  retry.retry_backoff_us = 50;
  std::int64_t retries = 0;
  const auto last_block = (*provider)->geometry().num_blocks() - 1;
  const auto result =
      cache::FetchBlockWithRetry(**provider, last_block, retry, &retries);
  ASSERT_FALSE(result.ok());
  // Short read: transient (the file may heal), so the bounded retry
  // policy spent its full budget before giving up.
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  EXPECT_TRUE(cache::IsTransientFetchError(result.status()));
  EXPECT_EQ(retries, retry.max_retries);

  // Early blocks are still intact and keep serving.
  EXPECT_TRUE((*provider)->Fetch(0).ok());
}

TEST(FileTierFaultTest, InjectedShortReadsRetryAndHeal) {
  ScratchDir dir;
  TableSpiller spiller(dir.path(), SpillOptions{.rows_per_block = 128});
  const auto provider = spiller.SpillColumn(SequenceTable("t", 1'000), 0);
  ASSERT_TRUE(provider.ok());
  FileFaultInjector injector;
  (*provider)->set_fault_injector(&injector);

  cache::FetchQueueConfig retry;
  retry.max_retries = 3;
  retry.retry_backoff_us = 50;
  injector.FailNextReads(2, FileFaultInjector::Fault::kShortRead);
  std::int64_t retries = 0;
  const auto result =
      cache::FetchBlockWithRetry(**provider, 0, retry, &retries);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(retries, 2);
  EXPECT_EQ(injector.injected(), 2);

  // I/O hiccups (EAGAIN-shaped) are transient too.
  injector.FailNextReads(1, FileFaultInjector::Fault::kIoError);
  retries = 0;
  ASSERT_TRUE(
      cache::FetchBlockWithRetry(**provider, 1, retry, &retries).ok());
  EXPECT_EQ(retries, 1);
}

TEST(FileTierFaultTest, PermissionErrorFailsFastWithoutRetries) {
  ScratchDir dir;
  TableSpiller spiller(dir.path(), SpillOptions{.rows_per_block = 128});
  const auto provider = spiller.SpillColumn(SequenceTable("t", 1'000), 0);
  ASSERT_TRUE(provider.ok());
  FileFaultInjector injector;
  (*provider)->set_fault_injector(&injector);

  injector.FailNextReads(1, FileFaultInjector::Fault::kPermissionDenied);
  cache::FetchQueueConfig retry;
  retry.max_retries = 5;
  retry.retry_backoff_us = 50;
  std::int64_t retries = 0;
  const auto result =
      cache::FetchBlockWithRetry(**provider, 0, retry, &retries);
  ASSERT_FALSE(result.ok());
  EXPECT_FALSE(cache::IsTransientFetchError(result.status()));
  EXPECT_EQ(retries, 0);  // Permanent: not a single retry spent.

  // The fault was one-shot; the tier heals.
  EXPECT_TRUE((*provider)->Fetch(0).ok());
}

TEST(FileTierFaultTest, FileDeletedMidSessionFailsPermanently) {
  ScratchDir dir;
  SpillOptions options;
  options.rows_per_block = 128;
  options.reopen_per_fetch = true;  // Observe file-system state per read.
  TableSpiller spiller(dir.path(), options);
  const auto provider = spiller.SpillColumn(SequenceTable("t", 1'000), 0);
  ASSERT_TRUE(provider.ok());
  ASSERT_TRUE((*provider)->Fetch(0).ok());

  std::filesystem::remove((*provider)->path());
  std::int64_t retries = 0;
  const auto result = cache::FetchBlockWithRetry(
      **provider, 0, cache::FetchQueueConfig{}, &retries);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(cache::IsTransientFetchError(result.status()));
  EXPECT_EQ(retries, 0);
}

/// Server-level battery: the file tier's failures shed only the stalled
/// gesture — transient faults retry to an answer, permanent ones lose one
/// gesture and the session keeps serving (mirror of the remote tier's
/// PermanentFetchFailureShedsQuantumNotSession).
TEST(FileTierFaultTest, ServerShedsOnlyStalledGestureOnFileFaults) {
  ScratchDir dir;
  TouchServerConfig config;
  config.num_workers = 1;
  config.base_frame_budget_us = 1'000'000;  // Relaxed deadlines.
  config.session_defaults.buffer.rows_per_block = 1'024;
  config.session_defaults.buffer.fetch.retry_backoff_us = 100;
  config.session_defaults.buffer.fetch.max_retries = 1;
  TouchServer server(config);
  auto table = SequenceTable("t", 1 << 14);
  ASSERT_TRUE(server.RegisterTable(table).ok());
  TableSpiller spiller(dir.path(), SpillOptions{.rows_per_block = 1'024});
  const auto provider = spiller.SpillColumn(table, 0);
  ASSERT_TRUE(provider.ok());
  FileFaultInjector injector;
  (*provider)->set_fault_injector(&injector);
  ASSERT_TRUE(server.shared().SetColumnProvider("t", 0, *provider).ok());
  ASSERT_TRUE(server.Start().ok());

  const auto session = server.OpenSession();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(server
                  .CreateColumnObject(*session, "t", "v",
                                      RectCm{2.0, 1.0, 2.0, 10.0})
                  .ok());
  Kernel reference;
  TraceBuilder builder(reference.device());

  // 1. Transient faults: the tap's fetch retries short reads and answers.
  injector.FailNextReads(1, FileFaultInjector::Fault::kShortRead);
  ASSERT_TRUE(server
                  .SubmitTrace(*session,
                               builder.Tap("tap", PointCm{3.0, 6.0}),
                               {/*paced=*/false})
                  .ok());
  ASSERT_TRUE(server.Drain().ok());
  {
    const server::ServerStatsSnapshot stats = server.stats();
    EXPECT_GE(stats.fetch.retries, 1);
    EXPECT_EQ(stats.fetch.shed_on_fetch_error, 0);
  }

  // 2. Permanent faults: the next gesture's fetch dies at once; only that
  // gesture is shed and the session stays serviceable.
  injector.FailNextReads(1'000,
                         FileFaultInjector::Fault::kPermissionDenied);
  ASSERT_TRUE(server
                  .SubmitTrace(*session,
                               builder.Tap("tap2", PointCm{3.0, 9.0}, 0.05,
                                           /*start_time_us=*/1'000'000),
                               {/*paced=*/false})
                  .ok());
  ASSERT_TRUE(server.Drain().ok());
  {
    const server::ServerStatsSnapshot stats = server.stats();
    EXPECT_GE(stats.fetch.fetch_errors, 1);
    EXPECT_GE(stats.fetch.shed_on_fetch_error, 1);
  }

  // 3. The tier heals; the same session answers normally again.
  injector.FailNextReads(0);
  ASSERT_TRUE(server
                  .SubmitTrace(*session,
                               builder.Tap("tap3", PointCm{3.0, 3.0}, 0.05,
                                           /*start_time_us=*/2'000'000),
                               {/*paced=*/false})
                  .ok());
  ASSERT_TRUE(server.Drain().ok());
  ASSERT_TRUE(
      server
          .WithSession(*session,
                       [](Kernel& kernel) {
                         EXPECT_FALSE(kernel.has_pending_gestures());
                         ASSERT_GE(kernel.results().size(), 1u);
                         for (const auto& item :
                              kernel.results().items()) {
                           EXPECT_EQ(item.value.AsInt(), item.row);
                         }
                       })
          .ok());
  ASSERT_TRUE(server.Stop().ok());
}

}  // namespace
}  // namespace dbtouch
