// Unit tests for the payload-holding gesture-aware block cache, the
// buffer manager with its pluggable block providers, and the hash-table
// cache.

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "cache/block_cache.h"
#include "cache/block_provider.h"
#include "cache/buffer_manager.h"
#include "cache/fetch_queue.h"
#include "cache/hash_table_cache.h"
#include "remote/remote_store.h"
#include "storage/column.h"
#include "storage/datagen.h"
#include "storage/paged_column.h"
#include "storage/table.h"

namespace dbtouch::cache {
namespace {

using storage::Column;
using storage::RowId;

constexpr std::int64_t kBlockBytes = 64;

/// Deterministic payload so hits can be checked byte-for-byte.
std::vector<std::byte> PayloadFor(std::int64_t block,
                                  std::int64_t bytes = kBlockBytes) {
  std::vector<std::byte> out(static_cast<std::size_t>(bytes));
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::byte>((block * 131 + static_cast<std::int64_t>(i)) & 0xff);
  }
  return out;
}

BlockCache::Config SmallCache(bool gesture_aware,
                              std::int64_t capacity_blocks = 4) {
  BlockCache::Config config;
  config.capacity_bytes = capacity_blocks * kBlockBytes;
  config.gesture_aware = gesture_aware;
  config.scan_run_length = 4;
  return config;
}

/// Pin + immediate unpin — the old metadata cache's Access(), with bytes.
BlockCache::Pinned Touch(BlockCache& cache, std::int64_t block, RowId row) {
  auto pinned = cache.Pin(BlockKey{0, block}, row,
                          [block] { return PayloadFor(block); });
  EXPECT_TRUE(pinned.ok());
  cache.Unpin(BlockKey{0, block});
  return *pinned;
}

bool Resident(const BlockCache& cache, std::int64_t block) {
  return cache.Contains(BlockKey{0, block});
}

TEST(BlockCacheTest, MissThenHitServesSamePayload) {
  BlockCache cache(SmallCache(false));
  const auto miss = Touch(cache, 1, 100);
  EXPECT_FALSE(miss.hit);
  EXPECT_TRUE(miss.retained);
  auto hit = cache.Pin(BlockKey{0, 1}, 101,
                       [] { return PayloadFor(99); });  // Filler unused.
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->hit);
  const auto expected = PayloadFor(1);
  EXPECT_EQ(hit->size, expected.size());
  EXPECT_EQ(std::memcmp(hit->data, expected.data(), expected.size()), 0);
  cache.Unpin(BlockKey{0, 1});
  EXPECT_EQ(cache.stats().lookups, 2);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().faults, 1);
}

TEST(BlockCacheTest, LruEvictsOldest) {
  BlockCache cache(SmallCache(false));
  for (std::int64_t b = 0; b < 5; ++b) {
    Touch(cache, b, b);  // Blocks 0..4; capacity 4 blocks evicts block 0.
  }
  EXPECT_FALSE(Resident(cache, 0));
  EXPECT_TRUE(Resident(cache, 4));
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_LE(cache.resident_bytes(), cache.config().capacity_bytes);
}

TEST(BlockCacheTest, TouchRefreshesLruPosition) {
  BlockCache cache(SmallCache(false));
  for (std::int64_t b = 0; b < 4; ++b) {
    Touch(cache, b, b * 10);
  }
  Touch(cache, 0, 100);  // Refresh block 0.
  Touch(cache, 9, 200);  // Evicts block 1, not 0.
  EXPECT_TRUE(Resident(cache, 0));
  EXPECT_FALSE(Resident(cache, 1));
}

TEST(BlockCacheTest, SteadyScanBypassesAdmission) {
  BlockCache cache(SmallCache(true));
  // A long one-directional slide: rows strictly increasing.
  for (std::int64_t i = 0; i < 20; ++i) {
    Touch(cache, i, i * 1000);
  }
  EXPECT_TRUE(cache.in_scan_mode());
  EXPECT_GT(cache.stats().bypasses, 0);
  // The cache did not fill with scan blocks.
  EXPECT_LE(cache.size(), 5);
}

TEST(BlockCacheTest, ReversalReenablesAdmission) {
  BlockCache cache(SmallCache(true));
  for (std::int64_t i = 0; i < 20; ++i) {
    Touch(cache, i, i * 1000);
  }
  ASSERT_TRUE(cache.in_scan_mode());
  // Reverse direction: user is re-examining.
  Touch(cache, 19, 18'500);
  EXPECT_FALSE(cache.in_scan_mode());
  Touch(cache, 18, 18'000);
  EXPECT_TRUE(Resident(cache, 18));
}

TEST(BlockCacheTest, PauseReenablesAdmission) {
  BlockCache cache(SmallCache(true));
  for (std::int64_t i = 0; i < 20; ++i) {
    Touch(cache, i, i * 1000);
  }
  ASSERT_TRUE(cache.in_scan_mode());
  cache.OnGesturePause();
  EXPECT_FALSE(cache.in_scan_mode());
}

TEST(BlockCacheTest, GestureAwarePolicyRetainsRegionAcrossScan) {
  // Workload: the user studies a small region (ping-pong), then a long
  // scan passes through, then they return to the region. Plain LRU admits
  // every scan block and evicts the region; the gesture-aware policy
  // bypasses the scan so the region survives.
  const auto run = [](bool aware) {
    BlockCache::Config config;
    config.capacity_bytes = 10 * kBlockBytes;
    config.gesture_aware = aware;
    config.scan_run_length = 3;
    BlockCache cache(config);
    // Phase 1: establish interest in blocks 50..52 (alternating
    // direction keeps admission on).
    for (int round = 0; round < 3; ++round) {
      for (std::int64_t b = 50; b < 53; ++b) {
        Touch(cache, b, b * 1000 + round);
      }
      for (std::int64_t b = 52; b >= 50; --b) {
        Touch(cache, b, b * 1000 - round);
      }
    }
    // Phase 2: a long one-directional scan over 40 other blocks.
    for (std::int64_t i = 0; i < 40; ++i) {
      Touch(cache, i, i * 1000);
    }
    int retained = 0;
    for (std::int64_t b = 50; b < 53; ++b) {
      retained += Resident(cache, b) ? 1 : 0;
    }
    return retained;
  };
  EXPECT_EQ(run(true), 3);   // Scan bypassed: region intact.
  EXPECT_EQ(run(false), 0);  // LRU: scan evicted everything.
}

TEST(BlockCacheTest, EvictionSkipsPinnedBlocks) {
  BlockCache cache(SmallCache(false, /*capacity_blocks=*/2));
  auto a = cache.Pin(BlockKey{0, 1}, 0, [] { return PayloadFor(1); });
  auto b = cache.Pin(BlockKey{0, 2}, 1, [] { return PayloadFor(2); });
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->retained && b->retained);

  // Budget full of pinned blocks: the next pin must not evict them — it
  // is served transient and the budget holds.
  auto c = cache.Pin(BlockKey{0, 3}, 2, [] { return PayloadFor(3); });
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(c->retained);
  EXPECT_EQ(cache.stats().budget_rejections, 1);
  EXPECT_EQ(cache.stats().evictions, 0);
  EXPECT_LE(cache.resident_bytes(), cache.config().capacity_bytes);
  EXPECT_TRUE(Resident(cache, 1));
  EXPECT_TRUE(Resident(cache, 2));

  // The transient block frees with its last pin.
  cache.Unpin(BlockKey{0, 3});
  EXPECT_FALSE(Resident(cache, 3));

  // Once a pin drops, that block is evictable again.
  cache.Unpin(BlockKey{0, 1});
  auto d = cache.Pin(BlockKey{0, 4}, 3, [] { return PayloadFor(4); });
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->retained);
  EXPECT_FALSE(Resident(cache, 1));  // Evicted (unpinned LRU victim).
  EXPECT_TRUE(Resident(cache, 2));   // Still pinned, still resident.
  cache.Unpin(BlockKey{0, 2});
  cache.Unpin(BlockKey{0, 4});
}

TEST(BlockCacheTest, PinnedPayloadStableUnderEvictionPressure) {
  BlockCache cache(SmallCache(false, /*capacity_blocks=*/3));
  auto pinned = cache.Pin(BlockKey{0, 77}, 0, [] { return PayloadFor(77); });
  ASSERT_TRUE(pinned.ok());
  // Churn far more blocks through the cache than the budget holds.
  for (std::int64_t b = 0; b < 64; ++b) {
    Touch(cache, b, b);
  }
  const auto expected = PayloadFor(77);
  EXPECT_EQ(std::memcmp(pinned->data, expected.data(), expected.size()), 0);
  cache.Unpin(BlockKey{0, 77});
}

TEST(BlockCacheTest, ResidentBytesNeverExceedBudget) {
  BlockCache cache(SmallCache(false, /*capacity_blocks=*/4));
  for (std::int64_t i = 0; i < 500; ++i) {
    Touch(cache, (i * 7919) % 97, i);
    ASSERT_LE(cache.resident_bytes(), cache.config().capacity_bytes);
  }
  EXPECT_LE(cache.stats().peak_resident_bytes,
            cache.config().capacity_bytes);
}

TEST(BlockCacheTest, OversizedBlockServedTransient) {
  BlockCache::Config config;
  config.capacity_bytes = 100;  // Smaller than one block.
  config.gesture_aware = false;
  BlockCache cache(config);
  auto pinned = cache.Pin(BlockKey{0, 5}, 0,
                          [] { return PayloadFor(5, 150); });
  ASSERT_TRUE(pinned.ok());
  EXPECT_FALSE(pinned->retained);
  EXPECT_EQ(pinned->size, 150u);
  EXPECT_EQ(cache.resident_bytes(), 0);
  cache.Unpin(BlockKey{0, 5});
  EXPECT_FALSE(Resident(cache, 5));
}

// ---- BufferManager over block providers -----------------------------------

std::shared_ptr<storage::Table> SequenceTable(std::int64_t rows) {
  std::vector<Column> cols;
  cols.push_back(storage::GenSequenceInt64("v", rows, 0, 1));
  auto table = storage::Table::FromColumns("t", std::move(cols));
  EXPECT_TRUE(table.ok());
  return *table;
}

TEST(BufferManagerTest, TableProviderReadsAreByteIdenticalToViews) {
  const std::int64_t rows = 257;  // Two full blocks + a 57-row tail.
  auto table = SequenceTable(rows);
  BufferManagerConfig config;
  config.rows_per_block = 100;
  BufferManager manager(config);
  auto source = manager.ColumnSource(table, 0);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ((*source)->num_blocks(), 3);
  EXPECT_EQ((*source)->BlockRowCount(2), 57);

  const storage::ColumnView view = table->ColumnViewAt(0);
  storage::PagedColumnCursor cursor(*source);
  for (RowId r = 0; r < rows; ++r) {
    EXPECT_EQ(cursor.GetAsDouble(r), view.GetAsDouble(r)) << "row " << r;
  }
  EXPECT_EQ(manager.stats().faults, 3);
}

TEST(BufferManagerTest, StringColumnsDecodeThroughDictionary) {
  std::vector<Column> cols;
  cols.push_back(Column::FromStrings("s", {"ursa", "lyra", "ursa", "vega"}));
  auto table = storage::Table::FromColumns("stars", std::move(cols));
  ASSERT_TRUE(table.ok());
  BufferManagerConfig config;
  config.rows_per_block = 2;
  BufferManager manager(config);
  auto source = manager.ColumnSource(*table, 0);
  ASSERT_TRUE(source.ok());
  storage::PagedColumnCursor cursor(*source);
  EXPECT_EQ(cursor.GetValue(0).AsString(), "ursa");
  EXPECT_EQ(cursor.GetValue(3).AsString(), "vega");
}

TEST(BufferManagerTest, ScanBeyondBudgetStaysBounded) {
  const std::int64_t rows = 10'000;  // 80 KB of int64.
  auto table = SequenceTable(rows);
  BufferManagerConfig config;
  config.rows_per_block = 512;  // 4 KB blocks.
  config.budget_bytes = 16 << 10;
  config.gesture_aware = false;  // Plain LRU: every block admitted.
  BufferManager manager(config);
  auto source = manager.ColumnSource(table, 0);
  ASSERT_TRUE(source.ok());
  storage::PagedColumnCursor cursor(*source);
  double sum = 0.0;
  for (RowId r = 0; r < rows; ++r) {
    sum += cursor.GetAsDouble(r);
    ASSERT_LE(manager.resident_bytes(), config.budget_bytes);
  }
  EXPECT_EQ(sum, static_cast<double>(rows - 1) * rows / 2);
  const BlockCacheStats stats = manager.stats();
  EXPECT_EQ(stats.faults, (*source)->num_blocks());
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LE(stats.peak_resident_bytes, config.budget_bytes);
}

TEST(BufferManagerTest, WarmRegionHitsWithoutRefaulting) {
  auto table = SequenceTable(4'096);
  BufferManagerConfig config;
  config.rows_per_block = 256;
  config.gesture_aware = false;
  BufferManager manager(config);
  auto source = manager.ColumnSource(table, 0);
  ASSERT_TRUE(source.ok());
  storage::PagedColumnCursor cursor(*source);
  for (RowId r = 1'000; r < 2'000; ++r) {
    cursor.GetAsDouble(r);
  }
  const std::int64_t cold_faults = manager.stats().faults;
  cursor.ReleasePin();
  for (RowId r = 1'000; r < 2'000; ++r) {
    cursor.GetAsDouble(r);
  }
  EXPECT_EQ(manager.stats().faults, cold_faults);  // All warm hits.
  EXPECT_GT(manager.stats().hits, 0);
}

// ---- Async fetch: TryPin / Insert / FetchQueue ------------------------------

TEST(BlockCacheTest, TryPinMissesWithoutFillingAndHitsAfterInsert) {
  BlockCache cache(SmallCache(false));
  const BlockKey key{0, 7};
  EXPECT_FALSE(cache.TryPin(key, -1).has_value());
  EXPECT_EQ(cache.stats().would_block, 1);
  EXPECT_FALSE(cache.Contains(key));  // A probe materialises nothing.

  cache.Insert(key, PayloadFor(7));
  EXPECT_EQ(cache.stats().staged_blocks, 1);
  const auto pinned = cache.TryPin(key, -1);
  ASSERT_TRUE(pinned.has_value());
  EXPECT_TRUE(pinned->hit);
  // The claim promoted the staged payload into the retained set.
  EXPECT_TRUE(pinned->retained);
  EXPECT_EQ(cache.stats().staged_blocks, 0);
  EXPECT_EQ(std::memcmp(pinned->data, PayloadFor(7).data(), kBlockBytes),
            0);
  cache.Unpin(key);
  EXPECT_TRUE(cache.Contains(key));  // Retained past the last unpin.
}

TEST(BlockCacheTest, InsertIsDroppedWhenPayloadAlreadyPresent) {
  BlockCache cache(SmallCache(false));
  Touch(cache, 3, -1);  // Synchronous fill wins the race.
  cache.Insert(BlockKey{0, 3}, PayloadFor(99));
  const auto pinned = cache.TryPin(BlockKey{0, 3}, -1);
  ASSERT_TRUE(pinned.has_value());
  // The original payload survived; the late completion was discarded.
  EXPECT_EQ(std::memcmp(pinned->data, PayloadFor(3).data(), kBlockBytes), 0);
  EXPECT_EQ(cache.stats().insert_duplicates, 1);
  cache.Unpin(BlockKey{0, 3});
}

TEST(BlockCacheTest, UnclaimedStagedBlocksAreBoundedByTheCap) {
  BlockCache::Config config = SmallCache(false);
  config.staged_cap_bytes = 2 * kBlockBytes;
  BlockCache cache(config);
  cache.Insert(BlockKey{0, 1}, PayloadFor(1));
  cache.Insert(BlockKey{0, 2}, PayloadFor(2));
  cache.Insert(BlockKey{0, 3}, PayloadFor(3));  // Evicts oldest staged (1).
  const BlockCacheStats stats = cache.stats();
  EXPECT_EQ(stats.staged_blocks, 2);
  EXPECT_LE(stats.staged_bytes, config.staged_cap_bytes);
  EXPECT_EQ(stats.staged_evictions, 1);
  EXPECT_FALSE(cache.Contains(BlockKey{0, 1}));
  EXPECT_TRUE(cache.Contains(BlockKey{0, 2}));
  EXPECT_TRUE(cache.Contains(BlockKey{0, 3}));
}

/// Provider whose fetches can be held at a gate, recording fetch order.
/// Geometry is payload-consistent: kBlockBytes of int64 per block, so the
/// queue's ranged split sees exactly the sizes the geometry promises.
class GatedProvider final : public BlockProvider {
 public:
  GatedProvider() {
    geometry_.type = storage::DataType::kInt64;
    geometry_.row_count = 1'000'000;
    geometry_.rows_per_block = kBlockBytes / 8;
  }

  const BlockGeometry& geometry() const override { return geometry_; }
  bool async() const override { return true; }

  Result<std::vector<std::byte>> Fetch(std::int64_t block) override {
    std::unique_lock<std::mutex> lock(mu_);
    ++entered_;
    entered_cv_.notify_all();
    gate_cv_.wait_for(lock, std::chrono::seconds(10),
                      [this] { return open_; });
    order_.push_back(block);
    return PayloadFor(block);
  }

  void OpenGate() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    gate_cv_.notify_all();
  }
  void AwaitFetchEntered(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    entered_cv_.wait_for(lock, std::chrono::seconds(10),
                         [&] { return entered_ >= n; });
  }
  std::vector<std::int64_t> order() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return order_;
  }

 private:
  BlockGeometry geometry_;
  mutable std::mutex mu_;
  std::condition_variable gate_cv_;
  std::condition_variable entered_cv_;
  bool open_ = false;
  int entered_ = 0;
  std::vector<std::int64_t> order_;
};

TEST(FetchQueueTest, DemandFetchesPreemptQueuedPrefetches) {
  BlockCache::Config cache_config = SmallCache(false, 16);
  cache_config.staged_cap_bytes = 16 * kBlockBytes;  // Hold all completions.
  BlockCache cache(cache_config);
  FetchQueueConfig config;
  config.num_fetchers = 1;  // Deterministic service order.
  FetchQueue queue(config, [&cache](const BlockKey& key,
                                    std::vector<std::byte> payload,
                                    FetchPriority priority) {
    cache.Insert(key, std::move(payload),
                 priority == FetchPriority::kDemand);
  });
  auto provider = std::make_shared<GatedProvider>();

  // Prefetch A starts fetching and parks at the gate; prefetches B and C
  // queue behind it; then a demand fetch D arrives.
  queue.Enqueue(BlockKey{1, 0}, provider, 0, FetchPriority::kPrefetch,
                nullptr);
  provider->AwaitFetchEntered(1);
  queue.Enqueue(BlockKey{1, 1}, provider, 1, FetchPriority::kPrefetch,
                nullptr);
  queue.Enqueue(BlockKey{1, 2}, provider, 2, FetchPriority::kPrefetch,
                nullptr);
  Status demand_status = Status::Internal("never completed");
  queue.Enqueue(BlockKey{1, 3}, provider, 3, FetchPriority::kDemand,
                [&demand_status](const Status& s) { demand_status = s; });
  provider->OpenGate();
  queue.WaitIdle();

  // D overtook the queued prefetches: service order A, D, then B, C.
  const std::vector<std::int64_t> order = provider->order();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 3);
  EXPECT_EQ(order[2], 1);
  EXPECT_EQ(order[3], 2);
  EXPECT_TRUE(demand_status.ok());
  for (std::int64_t b = 0; b < 4; ++b) {
    EXPECT_TRUE(cache.Contains(BlockKey{1, b}));
  }
  const FetchQueueStats stats = queue.stats();
  EXPECT_EQ(stats.demand_enqueued, 1);
  EXPECT_EQ(stats.prefetch_enqueued, 3);
  EXPECT_EQ(stats.completed, 4);
}

TEST(FetchQueueTest, DemandEnqueueUpgradesQueuedPrefetch) {
  BlockCache cache(SmallCache(false, 16));
  FetchQueueConfig config;
  config.num_fetchers = 1;
  FetchQueue queue(config, [&cache](const BlockKey& key,
                                    std::vector<std::byte> payload,
                                    FetchPriority priority) {
    cache.Insert(key, std::move(payload),
                 priority == FetchPriority::kDemand);
  });
  auto provider = std::make_shared<GatedProvider>();

  queue.Enqueue(BlockKey{1, 0}, provider, 0, FetchPriority::kPrefetch,
                nullptr);
  provider->AwaitFetchEntered(1);
  queue.Enqueue(BlockKey{1, 1}, provider, 1, FetchPriority::kPrefetch,
                nullptr);
  // Block 2 queues as a warm-up, then a session parks on it: one fetch,
  // served at demand priority, both callers coalesced.
  queue.Enqueue(BlockKey{1, 2}, provider, 2, FetchPriority::kPrefetch,
                nullptr);
  bool completed = false;
  queue.Enqueue(BlockKey{1, 2}, provider, 2, FetchPriority::kDemand,
                [&completed](const Status& s) { completed = s.ok(); });
  provider->OpenGate();
  queue.WaitIdle();

  const std::vector<std::int64_t> order = provider->order();
  ASSERT_EQ(order.size(), 3u);  // Block 2 fetched exactly once.
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 2);  // Upgraded ahead of prefetch 1.
  EXPECT_EQ(order[2], 1);
  EXPECT_TRUE(completed);
  const FetchQueueStats stats = queue.stats();
  EXPECT_EQ(stats.upgraded, 1);
  EXPECT_EQ(stats.coalesced, 1);
}

TEST(FetchQueueTest, TransientErrorsRetryUntilBoundThenFail) {
  /// Fails with a transient status the first `fail` times per block.
  class FlakyProvider final : public BlockProvider {
   public:
    explicit FlakyProvider(int fail) : fail_(fail) {
      geometry_.type = storage::DataType::kInt64;
      geometry_.row_count = 10'000;
      geometry_.rows_per_block = 1'000;
    }
    const BlockGeometry& geometry() const override { return geometry_; }
    bool async() const override { return true; }
    Result<std::vector<std::byte>> Fetch(std::int64_t block) override {
      const std::lock_guard<std::mutex> lock(mu_);
      if (attempts_++ < fail_) {
        return Status::Aborted("injected transport failure");
      }
      return PayloadFor(block);
    }

   private:
    BlockGeometry geometry_;
    std::mutex mu_;
    int fail_;
    int attempts_ = 0;
  };

  BlockCache cache(SmallCache(false, 16));
  FetchQueueConfig config;
  config.num_fetchers = 1;
  config.max_retries = 3;
  config.retry_backoff_us = 50;
  const FetchQueue::Sink sink = [&cache](const BlockKey& key,
                                         std::vector<std::byte> payload,
                                         FetchPriority priority) {
    cache.Insert(key, std::move(payload),
                 priority == FetchPriority::kDemand);
  };
  {
    // Two transient failures, then success: waiter sees OK.
    FetchQueue queue(config, sink);
    auto provider = std::make_shared<FlakyProvider>(2);
    Status status = Status::Internal("never completed");
    queue.Enqueue(BlockKey{1, 0}, provider, 0, FetchPriority::kDemand,
                  [&status](const Status& s) { status = s; });
    queue.WaitIdle();
    EXPECT_TRUE(status.ok());
    EXPECT_TRUE(cache.Contains(BlockKey{1, 0}));
    EXPECT_EQ(queue.stats().retries, 2);
    EXPECT_EQ(queue.stats().failures, 0);
  }
  {
    // More failures than the bound: the final error reaches the waiter.
    FetchQueue queue(config, sink);
    auto provider = std::make_shared<FlakyProvider>(100);
    Status status;
    queue.Enqueue(BlockKey{2, 0}, provider, 0, FetchPriority::kDemand,
                  [&status](const Status& s) { status = s; });
    queue.WaitIdle();
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kAborted);
    EXPECT_FALSE(cache.Contains(BlockKey{2, 0}));
    EXPECT_EQ(queue.stats().failures, 1);
    EXPECT_EQ(queue.stats().retries, 3);
  }
}

TEST(BufferManagerTest, AsyncSourceSuspendsOnColdBlockAndHitsAfterFetch) {
  BufferManagerConfig config;
  config.rows_per_block = 1'000;
  BufferManager manager(config);
  auto provider = std::make_shared<GatedProvider>();
  provider->OpenGate();  // No latency needed here.
  auto source = manager.SourceFor("cold.v", 0, provider);
  ASSERT_TRUE(source->may_block());

  // Probe: miss, no blocking fill.
  auto probe = source->TryPinBlock(3, -1);
  ASSERT_TRUE(probe.ok());
  EXPECT_FALSE(probe->has_value());

  // Demand-fetch it, then the probe hits.
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  ASSERT_TRUE(source
                  ->StartFetch(3,
                               [&](const Status& s) {
                                 EXPECT_TRUE(s.ok());
                                 const std::lock_guard<std::mutex> lock(mu);
                                 done = true;
                                 cv.notify_all();
                               })
                  .ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait_for(lock, std::chrono::seconds(10), [&] { return done; });
    ASSERT_TRUE(done);
  }
  auto pinned = source->TryPinBlock(3, -1);
  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE(pinned->has_value());
  EXPECT_EQ((*pinned)->view().row_count(), kBlockBytes / 8);
}

TEST(BufferManagerTest, RemoteProviderFaultsColdBlocksOnce) {
  const Column base = storage::GenSequenceInt64("v", 1 << 12, 0, 1);
  remote::RemoteServer server(base.View());
  BufferManagerConfig config;
  config.rows_per_block = 256;
  BufferManager manager(config);
  auto provider = std::make_shared<RemoteBlockProvider>(
      &server, storage::DataType::kInt64, config.rows_per_block);
  auto source = manager.SourceFor("cold.v", 0, provider);
  storage::PagedColumnCursor cursor(source);

  for (RowId r = 0; r < 512; ++r) {
    EXPECT_EQ(cursor.GetAsDouble(r), static_cast<double>(r));
  }
  EXPECT_EQ(provider->requests(), 2);  // Two blocks faulted from the slow tier.
  cursor.ReleasePin();
  // Warm re-examination: answered from the cache, no new remote reads.
  for (RowId r = 0; r < 512; ++r) {
    cursor.GetAsDouble(r);
  }
  EXPECT_EQ(provider->requests(), 2);
  EXPECT_GT(provider->bytes_fetched(), 0);
}

// ---- Ranged-read coalescing (batched demand fetches) ------------------------

/// Gated provider that also records ReadRange calls, so tests can assert
/// how many provider round trips a set of misses actually cost.
class RangedGatedProvider final : public BlockProvider {
 public:
  struct Call {
    std::int64_t first = 0;
    std::int64_t count = 0;  // 1 = single-block Fetch.
  };

  RangedGatedProvider() {
    geometry_.type = storage::DataType::kInt64;
    geometry_.row_count = 1'000'000;
    geometry_.rows_per_block = kBlockBytes / 8;
  }

  const BlockGeometry& geometry() const override { return geometry_; }
  bool async() const override { return true; }

  Result<std::vector<std::byte>> Fetch(std::int64_t block) override {
    Gate(Call{block, 1});
    return PayloadFor(block);
  }

  Result<std::vector<std::byte>> ReadRange(std::int64_t first_block,
                                           std::int64_t count) override {
    Gate(Call{first_block, count});
    std::vector<std::byte> payload;
    for (std::int64_t b = first_block; b < first_block + count; ++b) {
      const std::vector<std::byte> one = PayloadFor(b);
      payload.insert(payload.end(), one.begin(), one.end());
    }
    return payload;
  }

  void OpenGate() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    gate_cv_.notify_all();
  }
  void AwaitCallEntered(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    entered_cv_.wait_for(lock, std::chrono::seconds(10),
                         [&] { return entered_ >= n; });
  }
  std::vector<Call> calls() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return calls_;
  }

 private:
  void Gate(const Call& call) {
    std::unique_lock<std::mutex> lock(mu_);
    ++entered_;
    entered_cv_.notify_all();
    gate_cv_.wait_for(lock, std::chrono::seconds(10),
                      [this] { return open_; });
    calls_.push_back(call);
  }

  BlockGeometry geometry_;
  mutable std::mutex mu_;
  std::condition_variable gate_cv_;
  std::condition_variable entered_cv_;
  bool open_ = false;
  int entered_ = 0;
  std::vector<Call> calls_;
};

FetchQueue::Sink InsertSink(BlockCache& cache) {
  return [&cache](const BlockKey& key, std::vector<std::byte> payload,
                  FetchPriority priority) {
    cache.Insert(key, std::move(payload),
                 priority == FetchPriority::kDemand);
  };
}

TEST(FetchQueueTest, AdjacentDemandMissesCoalesceIntoOneRangedRead) {
  BlockCache::Config cache_config = SmallCache(false, 16);
  cache_config.staged_cap_bytes = 16 * kBlockBytes;
  BlockCache cache(cache_config);
  FetchQueueConfig config;
  config.num_fetchers = 1;
  FetchQueue queue(config, InsertSink(cache));
  auto provider = std::make_shared<RangedGatedProvider>();

  // Hold the fetcher on an unrelated block so the band's four demand
  // enqueues are all queued when the fetcher next pops.
  queue.Enqueue(BlockKey{1, 100}, provider, 100, FetchPriority::kDemand,
                nullptr);
  provider->AwaitCallEntered(1);
  int completions = 0;
  for (std::int64_t b = 3; b <= 6; ++b) {
    queue.Enqueue(BlockKey{1, b}, provider, b, FetchPriority::kDemand,
                  [&completions](const Status& s) {
                    EXPECT_TRUE(s.ok());
                    ++completions;
                  });
  }
  provider->OpenGate();
  queue.WaitIdle();

  // One ranged read served the whole band; every waiter completed and
  // every block is resident with its own bytes.
  const std::vector<RangedGatedProvider::Call> calls = provider->calls();
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[0].first, 100);
  EXPECT_EQ(calls[0].count, 1);
  EXPECT_EQ(calls[1].first, 3);
  EXPECT_EQ(calls[1].count, 4);
  EXPECT_EQ(completions, 4);
  for (std::int64_t b = 3; b <= 6; ++b) {
    auto pinned = cache.TryPin(BlockKey{1, b}, -1);
    ASSERT_TRUE(pinned.has_value()) << "block " << b;
    const auto expected = PayloadFor(b);
    EXPECT_EQ(std::memcmp(pinned->data, expected.data(), expected.size()),
              0)
        << "block " << b;
    cache.Unpin(BlockKey{1, b});
  }
  const FetchQueueStats stats = queue.stats();
  EXPECT_EQ(stats.ranged_reads, 1);
  EXPECT_EQ(stats.ranged_blocks, 4);
  EXPECT_EQ(stats.completed, 5);
}

TEST(FetchQueueTest, NonAdjacentMissesDoNotMerge) {
  BlockCache cache(SmallCache(false, 16));
  FetchQueueConfig config;
  config.num_fetchers = 1;
  FetchQueue queue(config, InsertSink(cache));
  auto provider = std::make_shared<RangedGatedProvider>();

  queue.Enqueue(BlockKey{1, 100}, provider, 100, FetchPriority::kDemand,
                nullptr);
  provider->AwaitCallEntered(1);
  for (const std::int64_t b : {1, 5, 9}) {  // Gaps between every pair.
    queue.Enqueue(BlockKey{1, b}, provider, b, FetchPriority::kDemand,
                  nullptr);
  }
  provider->OpenGate();
  queue.WaitIdle();

  const std::vector<RangedGatedProvider::Call> calls = provider->calls();
  ASSERT_EQ(calls.size(), 4u);
  for (const auto& call : calls) {
    EXPECT_EQ(call.count, 1);
  }
  EXPECT_EQ(queue.stats().ranged_reads, 0);
  EXPECT_EQ(queue.stats().ranged_blocks, 0);
}

TEST(FetchQueueTest, CoalescingIsBoundedByMaxCoalesceBlocks) {
  BlockCache::Config cache_config = SmallCache(false, 32);
  cache_config.staged_cap_bytes = 32 * kBlockBytes;
  BlockCache cache(cache_config);
  FetchQueueConfig config;
  config.num_fetchers = 1;
  config.max_coalesce_blocks = 4;
  FetchQueue queue(config, InsertSink(cache));
  auto provider = std::make_shared<RangedGatedProvider>();

  queue.Enqueue(BlockKey{1, 100}, provider, 100, FetchPriority::kDemand,
                nullptr);
  provider->AwaitCallEntered(1);
  for (std::int64_t b = 0; b < 6; ++b) {  // An adjacent run of 6.
    queue.Enqueue(BlockKey{1, b}, provider, b, FetchPriority::kDemand,
                  nullptr);
  }
  provider->OpenGate();
  queue.WaitIdle();

  // 4-block cap: the run is served as a range of 4 plus a range of 2.
  const std::vector<RangedGatedProvider::Call> calls = provider->calls();
  ASSERT_EQ(calls.size(), 3u);
  EXPECT_EQ(calls[1].count, 4);
  EXPECT_EQ(calls[2].count, 2);
  EXPECT_EQ(queue.stats().ranged_reads, 2);
  EXPECT_EQ(queue.stats().ranged_blocks, 6);
}

TEST(FetchQueueTest, DemandFaultPreemptsCoalescedPrefetchRange) {
  BlockCache::Config cache_config = SmallCache(false, 16);
  cache_config.staged_cap_bytes = 16 * kBlockBytes;
  BlockCache cache(cache_config);
  FetchQueueConfig config;
  config.num_fetchers = 1;
  FetchQueue queue(config, InsertSink(cache));
  auto provider = std::make_shared<RangedGatedProvider>();

  // An adjacent prefetch run queues behind a gated fetch; then a demand
  // fault for an unrelated block arrives.
  queue.Enqueue(BlockKey{1, 100}, provider, 100, FetchPriority::kPrefetch,
                nullptr);
  provider->AwaitCallEntered(1);
  for (std::int64_t b = 0; b < 4; ++b) {
    queue.Enqueue(BlockKey{1, b}, provider, b, FetchPriority::kPrefetch,
                  nullptr);
  }
  Status demand_status = Status::Internal("never completed");
  queue.Enqueue(BlockKey{1, 20}, provider, 20, FetchPriority::kDemand,
                [&demand_status](const Status& s) { demand_status = s; });
  provider->OpenGate();
  queue.WaitIdle();

  // The demand fault ran BEFORE the coalesced prefetch range, and the
  // range still went out as one ranged read (not block by block).
  const std::vector<RangedGatedProvider::Call> calls = provider->calls();
  ASSERT_EQ(calls.size(), 3u);
  EXPECT_EQ(calls[1].first, 20);
  EXPECT_EQ(calls[1].count, 1);
  EXPECT_EQ(calls[2].first, 0);
  EXPECT_EQ(calls[2].count, 4);
  EXPECT_TRUE(demand_status.ok());
}

TEST(FetchQueueTest, DemandRangeDoesNotSwallowAdjacentPrefetch) {
  BlockCache::Config cache_config = SmallCache(false, 16);
  cache_config.staged_cap_bytes = 16 * kBlockBytes;
  BlockCache cache(cache_config);
  FetchQueueConfig config;
  config.num_fetchers = 1;
  FetchQueue queue(config, InsertSink(cache));
  auto provider = std::make_shared<RangedGatedProvider>();

  queue.Enqueue(BlockKey{1, 100}, provider, 100, FetchPriority::kDemand,
                nullptr);
  provider->AwaitCallEntered(1);
  // A warm-up sits right next to a two-block demand band: the demand
  // range must not grow by it (a parked session would wait on warm-up
  // bytes), so it is served separately at prefetch priority.
  queue.Enqueue(BlockKey{1, 2}, provider, 2, FetchPriority::kPrefetch,
                nullptr);
  queue.Enqueue(BlockKey{1, 3}, provider, 3, FetchPriority::kDemand,
                nullptr);
  queue.Enqueue(BlockKey{1, 4}, provider, 4, FetchPriority::kDemand,
                nullptr);
  provider->OpenGate();
  queue.WaitIdle();

  const std::vector<RangedGatedProvider::Call> calls = provider->calls();
  ASSERT_EQ(calls.size(), 3u);
  EXPECT_EQ(calls[1].first, 3);  // Demand pair as one range...
  EXPECT_EQ(calls[1].count, 2);
  EXPECT_EQ(calls[2].first, 2);  // ...the warm-up on its own after.
  EXPECT_EQ(calls[2].count, 1);
}

// ---- Cancellation on session close ------------------------------------------

TEST(FetchQueueTest, CancelTaggedDropsQueuedButNotInFlightFetches) {
  BlockCache cache(SmallCache(false, 16));
  FetchQueueConfig config;
  config.num_fetchers = 1;
  config.max_coalesce_blocks = 1;  // One request per provider call.
  FetchQueue queue(config, InsertSink(cache));
  auto provider = std::make_shared<RangedGatedProvider>();

  // Session 7 has one fetch in flight and two queued (non-adjacent);
  // session 8 has one queued.
  Status in_flight_status = Status::Internal("never completed");
  queue.Enqueue(BlockKey{1, 0}, provider, 0, FetchPriority::kDemand,
                [&in_flight_status](const Status& s) {
                  in_flight_status = s;
                },
                /*tag=*/7);
  provider->AwaitCallEntered(1);
  std::vector<Status> cancelled_statuses;
  std::mutex cancelled_mu;
  const auto record = [&](const Status& s) {
    const std::lock_guard<std::mutex> lock(cancelled_mu);
    cancelled_statuses.push_back(s);
  };
  queue.Enqueue(BlockKey{1, 10}, provider, 10, FetchPriority::kDemand,
                record, /*tag=*/7);
  queue.Enqueue(BlockKey{1, 20}, provider, 20, FetchPriority::kDemand,
                record, /*tag=*/7);
  Status other_status = Status::Internal("never completed");
  queue.Enqueue(BlockKey{1, 30}, provider, 30, FetchPriority::kDemand,
                [&other_status](const Status& s) { other_status = s; },
                /*tag=*/8);

  // Session 7 closes: its queued tickets die now, and its in-flight
  // waiter fails fast too (the ticket balance a caller counts on) — the
  // read itself finishes its current attempt and still delivers to the
  // shared cache, it just spends no retries on the dead session.
  EXPECT_EQ(queue.CancelTagged(7), 2u);
  {
    const std::lock_guard<std::mutex> lock(cancelled_mu);
    ASSERT_EQ(cancelled_statuses.size(), 2u);
    for (const Status& s : cancelled_statuses) {
      EXPECT_EQ(s.code(), StatusCode::kAborted);
    }
  }
  EXPECT_EQ(in_flight_status.code(), StatusCode::kAborted);
  provider->OpenGate();
  queue.WaitIdle();

  EXPECT_TRUE(other_status.ok());
  // Blocks 10 and 20 were never read from the provider; block 0's read
  // was already running, so its payload still lands in the shared pool.
  const std::vector<RangedGatedProvider::Call> calls = provider->calls();
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[0].first, 0);
  EXPECT_EQ(calls[1].first, 30);
  EXPECT_TRUE(cache.Contains(BlockKey{1, 0}));
  EXPECT_FALSE(cache.Contains(BlockKey{1, 10}));
  EXPECT_FALSE(cache.Contains(BlockKey{1, 20}));
  EXPECT_EQ(queue.stats().cancelled, 2);
}

TEST(FetchQueueTest, CancelTaggedKeepsRequestsWithOtherWaiters) {
  BlockCache cache(SmallCache(false, 16));
  FetchQueueConfig config;
  config.num_fetchers = 1;
  FetchQueue queue(config, InsertSink(cache));
  auto provider = std::make_shared<RangedGatedProvider>();

  queue.Enqueue(BlockKey{1, 100}, provider, 100, FetchPriority::kDemand,
                nullptr);
  provider->AwaitCallEntered(1);
  // Two sessions coalesced onto one block; one of them closes.
  Status survivor_status = Status::Internal("never completed");
  bool cancelled_fired = false;
  queue.Enqueue(BlockKey{1, 5}, provider, 5, FetchPriority::kDemand,
                [&cancelled_fired](const Status&) {
                  cancelled_fired = true;
                },
                /*tag=*/7);
  queue.Enqueue(BlockKey{1, 5}, provider, 5, FetchPriority::kDemand,
                [&survivor_status](const Status& s) {
                  survivor_status = s;
                },
                /*tag=*/8);
  EXPECT_EQ(queue.CancelTagged(7), 0u);  // Request survives for tag 8.
  EXPECT_TRUE(cancelled_fired);          // But 7's waiter was released.
  provider->OpenGate();
  queue.WaitIdle();

  EXPECT_TRUE(survivor_status.ok());
  EXPECT_TRUE(cache.Contains(BlockKey{1, 5}));
  EXPECT_EQ(queue.stats().cancelled, 0);
}

TEST(FetchQueueTest, CancelTaggedAbortsInFlightRetryLoop) {
  /// Gates the first attempt, then fails transiently forever: without an
  /// abort the queue would grind through every retry (with backoff).
  class GatedFailingProvider final : public BlockProvider {
   public:
    GatedFailingProvider() {
      geometry_.type = storage::DataType::kInt64;
      geometry_.row_count = 10'000;
      geometry_.rows_per_block = 1'000;
    }
    const BlockGeometry& geometry() const override { return geometry_; }
    bool async() const override { return true; }
    Result<std::vector<std::byte>> Fetch(std::int64_t) override {
      std::unique_lock<std::mutex> lock(mu_);
      ++attempts_;
      entered_cv_.notify_all();
      gate_cv_.wait_for(lock, std::chrono::seconds(10),
                        [this] { return open_; });
      return Status::Aborted("injected transport failure");
    }
    void OpenGate() {
      {
        const std::lock_guard<std::mutex> lock(mu_);
        open_ = true;
      }
      gate_cv_.notify_all();
    }
    void AwaitAttempt() {
      std::unique_lock<std::mutex> lock(mu_);
      entered_cv_.wait_for(lock, std::chrono::seconds(10),
                           [this] { return attempts_ >= 1; });
    }
    int attempts() const {
      const std::lock_guard<std::mutex> lock(mu_);
      return attempts_;
    }

   private:
    BlockGeometry geometry_;
    mutable std::mutex mu_;
    std::condition_variable gate_cv_;
    std::condition_variable entered_cv_;
    bool open_ = false;
    int attempts_ = 0;
  };

  BlockCache cache(SmallCache(false, 16));
  FetchQueueConfig config;
  config.num_fetchers = 1;
  config.max_retries = 8;            // A full fetch would spend 8 retries.
  config.retry_backoff_us = 10'000;  // ...and ~2.5s of backoff.
  FetchQueue queue(config, InsertSink(cache));
  auto provider = std::make_shared<GatedFailingProvider>();

  Status waiter_status = Status::Internal("never fired");
  queue.Enqueue(BlockKey{1, 0}, provider, 0, FetchPriority::kDemand,
                [&waiter_status](const Status& s) { waiter_status = s; },
                /*tag=*/7);
  provider->AwaitAttempt();
  // The session closes mid-attempt: its waiter fails now, the abort
  // latch caps the read at the attempt already running.
  EXPECT_EQ(queue.CancelTagged(7), 0u);  // In flight: not "dropped".
  EXPECT_EQ(waiter_status.code(), StatusCode::kAborted);
  provider->OpenGate();
  queue.WaitIdle();

  EXPECT_EQ(provider->attempts(), 1);  // One attempt, zero retries.
  const FetchQueueStats stats = queue.stats();
  EXPECT_EQ(stats.aborted, 1);
  EXPECT_EQ(stats.retries, 0);
  EXPECT_EQ(stats.failures, 1);
}

TEST(FetchQueueTest, EnqueueRangePopsAsOnePreFormedRangedRead) {
  BlockCache::Config cache_config = SmallCache(false, 16);
  cache_config.staged_cap_bytes = 16 * kBlockBytes;
  BlockCache cache(cache_config);
  FetchQueueConfig config;
  config.num_fetchers = 1;
  // Coalescing OFF: a pre-formed ranged ticket needs no pop-time
  // re-merging — the horizon sized it at enqueue time.
  config.max_coalesce_blocks = 1;
  FetchQueue queue(config, InsertSink(cache));
  auto provider = std::make_shared<RangedGatedProvider>();

  // Hold the fetcher on an unrelated block so the ticket is popped whole.
  queue.Enqueue(BlockKey{1, 100}, provider, 100, FetchPriority::kDemand,
                nullptr);
  provider->AwaitCallEntered(1);
  EXPECT_EQ(queue.EnqueueRange(1, provider, 3, 5), 5u);
  // Re-requesting overlapping blocks coalesces into the queued ticket.
  EXPECT_EQ(queue.EnqueueRange(1, provider, 4, 2), 0u);
  provider->OpenGate();
  queue.WaitIdle();

  const std::vector<RangedGatedProvider::Call> calls = provider->calls();
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[1].first, 3);
  EXPECT_EQ(calls[1].count, 5);  // ONE ReadRange despite the merge cap.
  for (std::int64_t b = 3; b <= 7; ++b) {
    EXPECT_TRUE(cache.Contains(BlockKey{1, b})) << "block " << b;
  }
  const FetchQueueStats stats = queue.stats();
  EXPECT_EQ(stats.prefetch_enqueued, 5);
  EXPECT_EQ(stats.prefetch_ranges, 1);
  EXPECT_EQ(stats.ranged_reads, 1);
  EXPECT_EQ(stats.ranged_blocks, 5);
  EXPECT_EQ(stats.coalesced, 2);
}

TEST(FetchQueueTest, DemandEnqueueSplitsQueuedPrefetchRange) {
  BlockCache::Config cache_config = SmallCache(false, 16);
  cache_config.staged_cap_bytes = 16 * kBlockBytes;
  BlockCache cache(cache_config);
  FetchQueueConfig config;
  config.num_fetchers = 1;
  config.max_coalesce_blocks = 1;
  FetchQueue queue(config, InsertSink(cache));
  auto provider = std::make_shared<RangedGatedProvider>();

  queue.Enqueue(BlockKey{1, 100}, provider, 100, FetchPriority::kDemand,
                nullptr);
  provider->AwaitCallEntered(1);
  EXPECT_EQ(queue.EnqueueRange(1, provider, 0, 4), 4u);  // Blocks 0..3.
  // A session faults on block 2: it must pop block-sized in the demand
  // lane, ahead of — and carved out of — the warm-up ticket.
  Status demand_status = Status::Internal("never fired");
  queue.Enqueue(BlockKey{1, 2}, provider, 2, FetchPriority::kDemand,
                [&demand_status](const Status& s) { demand_status = s; });
  provider->OpenGate();
  queue.WaitIdle();

  EXPECT_TRUE(demand_status.ok());
  const std::vector<RangedGatedProvider::Call> calls = provider->calls();
  ASSERT_EQ(calls.size(), 4u);
  EXPECT_EQ(calls[1].first, 2);  // Demand first, alone.
  EXPECT_EQ(calls[1].count, 1);
  EXPECT_EQ(calls[2].first, 0);  // Left remainder of the ticket.
  EXPECT_EQ(calls[2].count, 2);
  EXPECT_EQ(calls[3].first, 3);  // Right remainder, re-headed.
  EXPECT_EQ(calls[3].count, 1);
  for (std::int64_t b = 0; b <= 3; ++b) {
    EXPECT_TRUE(cache.Contains(BlockKey{1, b})) << "block " << b;
  }
  EXPECT_EQ(queue.stats().upgraded, 1);
}

// ---- HashTableCache --------------------------------------------------------

TEST(HashTableCacheTest, KeyEncodesJoinAndLevel) {
  EXPECT_EQ(HashTableCache::MakeKey("a=b", 3), "a=b@L3");
}

TEST(HashTableCacheTest, PutGetRoundTrip) {
  const Column l = Column::FromInt32("l", {1, 2});
  const Column r = Column::FromInt32("r", {2, 3});
  HashTableCache cache(2);
  auto join = std::make_shared<exec::SymmetricHashJoin>(l.View(), r.View());
  join->Feed(exec::JoinSide::kLeft, 1);
  cache.Put("j@L0", join);
  const auto got = cache.Get("j@L0");
  ASSERT_NE(got, nullptr);
  // The cached join resumes with its fed state intact.
  EXPECT_EQ(got->left_fed(), 1);
  EXPECT_EQ(got->Feed(exec::JoinSide::kRight, 0).size(), 1u);
}

TEST(HashTableCacheTest, MissReturnsNull) {
  HashTableCache cache(2);
  EXPECT_EQ(cache.Get("nope"), nullptr);
  EXPECT_EQ(cache.stats().lookups, 1);
  EXPECT_EQ(cache.stats().hits, 0);
}

TEST(HashTableCacheTest, EvictsLeastRecentlyUsed) {
  const Column l = Column::FromInt32("l", {1});
  const Column r = Column::FromInt32("r", {1});
  HashTableCache cache(2);
  const auto mk = [&] {
    return std::make_shared<exec::SymmetricHashJoin>(l.View(), r.View());
  };
  cache.Put("a", mk());
  cache.Put("b", mk());
  cache.Get("a");      // a most recent.
  cache.Put("c", mk());  // Evicts b.
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(HashTableCacheTest, PutSameKeyReplaces) {
  const Column l = Column::FromInt32("l", {1});
  const Column r = Column::FromInt32("r", {1});
  HashTableCache cache(2);
  auto first = std::make_shared<exec::SymmetricHashJoin>(l.View(), r.View());
  first->Feed(exec::JoinSide::kLeft, 0);
  cache.Put("k", first);
  auto fresh = std::make_shared<exec::SymmetricHashJoin>(l.View(), r.View());
  cache.Put("k", fresh);
  EXPECT_EQ(cache.Get("k")->left_fed(), 0);
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace dbtouch::cache
