// Unit tests for the gesture-aware block cache and the hash-table cache.

#include <gtest/gtest.h>

#include <memory>

#include "cache/block_cache.h"
#include "cache/hash_table_cache.h"
#include "storage/column.h"

namespace dbtouch::cache {
namespace {

using storage::Column;

BlockCache::Config SmallCache(bool gesture_aware) {
  BlockCache::Config config;
  config.capacity_blocks = 4;
  config.gesture_aware = gesture_aware;
  config.scan_run_length = 4;
  return config;
}

TEST(BlockCacheTest, MissThenHit) {
  BlockCache cache(SmallCache(false));
  EXPECT_FALSE(cache.Access(1, 100));
  EXPECT_TRUE(cache.Access(1, 101));
  EXPECT_EQ(cache.stats().lookups, 2);
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(BlockCacheTest, LruEvictsOldest) {
  BlockCache cache(SmallCache(false));
  for (std::int64_t b = 0; b < 5; ++b) {
    cache.Access(b, b);  // Blocks 0..4; capacity 4 evicts block 0.
  }
  EXPECT_FALSE(cache.Contains(0));
  EXPECT_TRUE(cache.Contains(4));
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(BlockCacheTest, TouchRefreshesLruPosition) {
  BlockCache cache(SmallCache(false));
  for (std::int64_t b = 0; b < 4; ++b) {
    cache.Access(b, b * 10);
  }
  cache.Access(0, 100);  // Refresh block 0.
  cache.Access(9, 200);  // Evicts block 1, not 0.
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_FALSE(cache.Contains(1));
}

TEST(BlockCacheTest, SteadyScanBypassesAdmission) {
  BlockCache cache(SmallCache(true));
  // A long one-directional slide: rows strictly increasing.
  for (std::int64_t i = 0; i < 20; ++i) {
    cache.Access(i, i * 1000);
  }
  EXPECT_TRUE(cache.in_scan_mode());
  EXPECT_GT(cache.stats().bypasses, 0);
  // The cache did not fill with scan blocks.
  EXPECT_LE(cache.size(), 5);
}

TEST(BlockCacheTest, ReversalReenablesAdmission) {
  BlockCache cache(SmallCache(true));
  for (std::int64_t i = 0; i < 20; ++i) {
    cache.Access(i, i * 1000);
  }
  ASSERT_TRUE(cache.in_scan_mode());
  // Reverse direction: user is re-examining.
  cache.Access(19, 18'500);
  EXPECT_FALSE(cache.in_scan_mode());
  cache.Access(18, 18'000);
  EXPECT_TRUE(cache.Contains(18));
}

TEST(BlockCacheTest, PauseReenablesAdmission) {
  BlockCache cache(SmallCache(true));
  for (std::int64_t i = 0; i < 20; ++i) {
    cache.Access(i, i * 1000);
  }
  ASSERT_TRUE(cache.in_scan_mode());
  cache.OnGesturePause();
  EXPECT_FALSE(cache.in_scan_mode());
}

TEST(BlockCacheTest, GestureAwarePolicyRetainsRegionAcrossScan) {
  // Workload: the user studies a small region (ping-pong), then a long
  // scan passes through, then they return to the region. Plain LRU admits
  // every scan block and evicts the region; the gesture-aware policy
  // bypasses the scan so the region survives.
  const auto run = [](bool aware) {
    BlockCache::Config config;
    config.capacity_blocks = 10;
    config.gesture_aware = aware;
    config.scan_run_length = 3;
    BlockCache cache(config);
    // Phase 1: establish interest in blocks 50..52 (alternating
    // direction keeps admission on).
    for (int round = 0; round < 3; ++round) {
      for (std::int64_t b = 50; b < 53; ++b) {
        cache.Access(b, b * 1000 + round);
      }
      for (std::int64_t b = 52; b >= 50; --b) {
        cache.Access(b, b * 1000 - round);
      }
    }
    // Phase 2: a long one-directional scan over 40 other blocks.
    for (std::int64_t i = 0; i < 40; ++i) {
      cache.Access(i, i * 1000);
    }
    int retained = 0;
    for (std::int64_t b = 50; b < 53; ++b) {
      retained += cache.Contains(b) ? 1 : 0;
    }
    return retained;
  };
  EXPECT_EQ(run(true), 3);   // Scan bypassed: region intact.
  EXPECT_EQ(run(false), 0);  // LRU: scan evicted everything.
}

TEST(HashTableCacheTest, KeyEncodesJoinAndLevel) {
  EXPECT_EQ(HashTableCache::MakeKey("a=b", 3), "a=b@L3");
}

TEST(HashTableCacheTest, PutGetRoundTrip) {
  const Column l = Column::FromInt32("l", {1, 2});
  const Column r = Column::FromInt32("r", {2, 3});
  HashTableCache cache(2);
  auto join = std::make_shared<exec::SymmetricHashJoin>(l.View(), r.View());
  join->Feed(exec::JoinSide::kLeft, 1);
  cache.Put("j@L0", join);
  const auto got = cache.Get("j@L0");
  ASSERT_NE(got, nullptr);
  // The cached join resumes with its fed state intact.
  EXPECT_EQ(got->left_fed(), 1);
  EXPECT_EQ(got->Feed(exec::JoinSide::kRight, 0).size(), 1u);
}

TEST(HashTableCacheTest, MissReturnsNull) {
  HashTableCache cache(2);
  EXPECT_EQ(cache.Get("nope"), nullptr);
  EXPECT_EQ(cache.stats().lookups, 1);
  EXPECT_EQ(cache.stats().hits, 0);
}

TEST(HashTableCacheTest, EvictsLeastRecentlyUsed) {
  const Column l = Column::FromInt32("l", {1});
  const Column r = Column::FromInt32("r", {1});
  HashTableCache cache(2);
  const auto mk = [&] {
    return std::make_shared<exec::SymmetricHashJoin>(l.View(), r.View());
  };
  cache.Put("a", mk());
  cache.Put("b", mk());
  cache.Get("a");      // a most recent.
  cache.Put("c", mk());  // Evicts b.
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(HashTableCacheTest, PutSameKeyReplaces) {
  const Column l = Column::FromInt32("l", {1});
  const Column r = Column::FromInt32("r", {1});
  HashTableCache cache(2);
  auto first = std::make_shared<exec::SymmetricHashJoin>(l.View(), r.View());
  first->Feed(exec::JoinSide::kLeft, 0);
  cache.Put("k", first);
  auto fresh = std::make_shared<exec::SymmetricHashJoin>(l.View(), r.View());
  cache.Put("k", fresh);
  EXPECT_EQ(cache.Get("k")->left_fed(), 0);
  EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace dbtouch::cache
