// server::api layer tests: the wire codec round-trips every request and
// response type bit-identically, the WireCode<->Status mapping is total
// and stable, and the legacy TouchServer convenience methods are
// observably thin wrappers over the Call overloads.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gateway/wire.h"
#include "server/api.h"
#include "server/touch_server.h"
#include "sim/motion_profile.h"
#include "sim/trace_builder.h"
#include "storage/datagen.h"
#include "storage/table.h"

namespace dbtouch::server {
namespace {

namespace gw = dbtouch::gateway;

using core::Kernel;
using sim::MotionProfile;
using sim::PointCm;
using sim::TraceBuilder;
using storage::Column;
using storage::Table;
using touch::RectCm;

// ---- Codec round-trips -----------------------------------------------------

/// THE api acceptance check: encode -> decode -> re-encode must be
/// bit-identical, and the decoded struct must compare equal. Any codec
/// asymmetry (field order drift, lossy narrowing, missed field) fails
/// one of the two.
template <typename T>
void ExpectBitIdenticalRoundtrip(const T& value) {
  gw::WireWriter first;
  Encode(value, first);

  T decoded;
  gw::WireReader reader(first.buffer());
  ASSERT_TRUE(Decode(reader, &decoded).ok());
  EXPECT_TRUE(reader.AtEnd()) << "decoder left trailing bytes";
  EXPECT_TRUE(decoded == value);

  gw::WireWriter second;
  Encode(decoded, second);
  EXPECT_EQ(first.buffer(), second.buffer()) << "re-encode not bit-identical";
}

api::WireAction SampleAction() {
  api::WireAction action;
  action.kind = 2;
  action.agg = 1;
  action.summary_k = 128;
  action.has_predicate = true;
  action.predicate_op = 6;
  action.predicate_lo = -3.25;
  action.predicate_hi = 700.5;
  action.use_zone_map = true;
  action.group_key_attribute = 3;
  action.group_value_attribute = 9;
  return action;
}

std::vector<api::WireTouchEvent> SampleEvents() {
  std::vector<api::WireTouchEvent> events;
  for (int i = 0; i < 5; ++i) {
    api::WireTouchEvent event;
    event.timestamp_us = 66'667 * i;
    event.finger_id = i % 2;
    event.phase = i == 0 ? 0 : (i == 4 ? 2 : 1);
    event.x_cm = 3.0 + 0.1 * i;
    event.y_cm = 1.0 + 2.0 * i;
    events.push_back(event);
  }
  return events;
}

TEST(ApiCodecTest, OpenSessionRoundtrip) {
  ExpectBitIdenticalRoundtrip(api::OpenSessionReq{});
  api::OpenSessionResp resp;
  resp.session = 42;
  ExpectBitIdenticalRoundtrip(resp);
}

TEST(ApiCodecTest, CloseSessionRoundtrip) {
  api::CloseSessionReq req;
  req.session = -7;  // Ids are opaque i64; sign must survive.
  ExpectBitIdenticalRoundtrip(req);
  ExpectBitIdenticalRoundtrip(api::CloseSessionResp{});
}

TEST(ApiCodecTest, CreateObjectRoundtrip) {
  api::CreateObjectReq req;
  req.session = 3;
  req.kind = 1;
  req.table = "lineitem";
  req.column = "";  // Table objects carry an empty column name.
  req.frame = api::WireRect{0.5, 1.5, 6.25, 12.0};
  ExpectBitIdenticalRoundtrip(req);
  api::CreateObjectResp resp;
  resp.object = 11;
  ExpectBitIdenticalRoundtrip(resp);
}

TEST(ApiCodecTest, SetActionRoundtrip) {
  api::SetActionReq req;
  req.session = 5;
  req.object = 2;
  req.action = SampleAction();
  ExpectBitIdenticalRoundtrip(req);
  ExpectBitIdenticalRoundtrip(api::SetActionResp{});
}

TEST(ApiCodecTest, SubmitBatchRoundtrip) {
  api::SubmitBatchReq req;
  req.session = 9;
  req.paced = false;
  req.events = SampleEvents();
  ExpectBitIdenticalRoundtrip(req);
  api::SubmitBatchResp resp;
  resp.accepted = 4;
  resp.rejected = 1;
  ExpectBitIdenticalRoundtrip(resp);
}

TEST(ApiCodecTest, StatsRoundtrip) {
  ExpectBitIdenticalRoundtrip(api::StatsReq{});
  api::StatsResp resp;
  resp.sessions_active = 12;
  resp.submitted = 100;
  resp.executed = 90;
  resp.dropped_quanta = 10;
  resp.deadline_misses = 3;
  resp.p50_latency_us = 400;
  resp.p99_latency_us = 9'000;
  resp.suspended_quanta = 7;
  resp.buffer_hits = 55;
  resp.buffer_lookups = 60;
  ExpectBitIdenticalRoundtrip(resp);
}

TEST(ApiCodecTest, SessionSnapshotRoundtrip) {
  api::SessionSnapshotReq req;
  req.session = 4;
  req.max_results = 16;
  ExpectBitIdenticalRoundtrip(req);

  api::SessionSnapshotResp resp;
  resp.session = 4;
  api::ObjectInfo object;
  object.object = 1;
  object.kind = 0;
  object.orientation = 1;
  object.table = "t";
  object.column = 2;
  object.frame = api::WireRect{1, 2, 3, 4};
  object.tuple_count = 20'000;
  resp.objects.push_back(object);
  resp.touch_events = 31;
  resp.gesture_events = 30;
  resp.entries_returned = 29;
  resp.rows_scanned = 1'000;
  resp.rows_pruned = 500;
  resp.suspensions = 2;
  resp.fetch_errors = 1;
  resp.shed_levels = 3;
  resp.result_count = 2;
  api::ResultInfo result;
  result.object = 1;
  result.kind = 1;
  result.row = 77;
  result.value = 3.5;
  result.approximate = true;
  resp.results.push_back(result);
  result.row = 78;
  result.value = -1.0;
  result.approximate = false;
  resp.results.push_back(result);
  ExpectBitIdenticalRoundtrip(resp);
}

TEST(ApiCodecTest, RequestFrameRoundtripsThroughHeader) {
  // Full frame (header + payload) for every request type, decoded the
  // way the gateway does it: header first, then the typed payload.
  api::SubmitBatchReq req;
  req.session = 1;
  req.paced = true;
  req.events = SampleEvents();
  const std::string frame =
      gw::EncodeRequestFrame(gw::MessageType::kSubmitBatch, 7, req);
  ASSERT_GE(frame.size(), gw::kFrameHeaderBytes);

  auto header = gw::DecodeHeader(frame);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->version, gw::kWireVersion);
  EXPECT_EQ(header->message_type(), gw::MessageType::kSubmitBatch);
  EXPECT_FALSE(header->is_response());
  EXPECT_EQ(header->request_id, 7u);
  EXPECT_EQ(header->payload_len, frame.size() - gw::kFrameHeaderBytes);

  api::SubmitBatchReq decoded;
  gw::WireReader reader(
      std::string_view(frame).substr(gw::kFrameHeaderBytes));
  ASSERT_TRUE(Decode(reader, &decoded).ok());
  EXPECT_TRUE(decoded == req);
}

TEST(ApiCodecTest, TruncationFailsCleanly) {
  api::SetActionReq req;
  req.session = 5;
  req.object = 2;
  req.action = SampleAction();
  gw::WireWriter w;
  Encode(req, w);
  // Every proper prefix must fail to decode — never read past the end,
  // never succeed on partial data.
  for (std::size_t cut = 0; cut < w.buffer().size(); ++cut) {
    api::SetActionReq out;
    gw::WireReader reader(std::string_view(w.buffer()).substr(0, cut));
    EXPECT_FALSE(Decode(reader, &out).ok()) << "cut=" << cut;
  }
}

TEST(ApiCodecTest, HostileVectorCountRejected) {
  // A SubmitBatch claiming 2^31 events in a 32-byte payload must fail
  // before any allocation, not OOM.
  gw::WireWriter w;
  w.I64(1);                     // session
  w.Bool(true);                 // paced
  w.U32(0x8000'0000u);          // events count: hostile
  api::SubmitBatchReq out;
  gw::WireReader reader(w.buffer());
  EXPECT_FALSE(Decode(reader, &out).ok());
}

// ---- WireCode mapping ------------------------------------------------------

TEST(ApiWireCodeTest, StatusCodesMapOneToOne) {
  const StatusCode codes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kAlreadyExists,
      StatusCode::kOutOfRange,   StatusCode::kFailedPrecondition,
      StatusCode::kUnimplemented, StatusCode::kResourceExhausted,
      StatusCode::kDeadlineExceeded, StatusCode::kAborted,
      StatusCode::kInternal};
  for (StatusCode code : codes) {
    const Status status(code, "msg");
    const api::WireCode wire = api::WireCodeFromStatus(status);
    EXPECT_EQ(static_cast<int>(wire), static_cast<int>(code));
    const Status back = api::StatusFromWire(wire, "msg");
    EXPECT_EQ(back.code(), code);
  }
}

TEST(ApiWireCodeTest, ProtocolCodesMapToCanonicalStatuses) {
  EXPECT_EQ(api::StatusFromWire(api::WireCode::kUnsupportedVersion, "").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(api::StatusFromWire(api::WireCode::kMalformedFrame, "").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(api::StatusFromWire(api::WireCode::kBackpressure, "").code(),
            StatusCode::kResourceExhausted);
}

TEST(ApiWireCodeTest, EveryCodeHasAName) {
  const api::WireCode codes[] = {
      api::WireCode::kOk,          api::WireCode::kInvalidArgument,
      api::WireCode::kNotFound,    api::WireCode::kAlreadyExists,
      api::WireCode::kOutOfRange,  api::WireCode::kFailedPrecondition,
      api::WireCode::kUnimplemented, api::WireCode::kResourceExhausted,
      api::WireCode::kDeadlineExceeded, api::WireCode::kAborted,
      api::WireCode::kInternal,    api::WireCode::kUnsupportedVersion,
      api::WireCode::kMalformedFrame, api::WireCode::kBackpressure};
  for (api::WireCode code : codes) {
    EXPECT_NE(api::WireCodeName(code), "Unknown");
  }
  EXPECT_EQ(api::WireCodeName(static_cast<api::WireCode>(999)), "Unknown");
}

// ---- Call overloads vs legacy wrappers -------------------------------------

std::shared_ptr<Table> SmallTable() {
  std::vector<Column> cols;
  cols.push_back(storage::GenSequenceInt64("v", 20'000, 0, 1));
  auto table = Table::FromColumns("t", std::move(cols));
  EXPECT_TRUE(table.ok());
  return *table;
}

TouchServerConfig RelaxedConfig() {
  TouchServerConfig config;
  config.num_workers = 2;
  config.base_frame_budget_us = 10'000'000;
  config.min_frame_budget_us = 10'000'000;
  config.est_row_ns = 0.0;
  config.drop_slack_us = 3'600'000'000;
  return config;
}

TEST(ApiCallTest, LegacyWrappersAndCallAgree) {
  // Two sessions, one driven through the legacy convenience methods, one
  // through Call(api::...). Identical traces must produce identical
  // result streams — the wrappers are wrappers, not a second code path.
  TouchServer server(RelaxedConfig());
  ASSERT_TRUE(server.RegisterTable(SmallTable()).ok());
  ASSERT_TRUE(server.Start().ok());

  const auto legacy = server.OpenSession();
  ASSERT_TRUE(legacy.ok());
  const auto via_api = server.Call(api::OpenSessionReq{});
  ASSERT_TRUE(via_api.ok());

  const RectCm frame{2.0, 1.0, 2.0, 10.0};
  ASSERT_TRUE(server.CreateColumnObject(*legacy, "t", "v", frame).ok());
  api::CreateObjectReq create;
  create.session = via_api->session;
  create.kind = 0;
  create.table = "t";
  create.column = "v";
  create.frame = api::WireRect{frame.x, frame.y, frame.width, frame.height};
  ASSERT_TRUE(server.Call(create).ok());

  Kernel reference;
  TraceBuilder builder(reference.device());
  const auto trace = builder.Slide("s", PointCm{3.0, 1.0}, PointCm{3.0, 11.0},
                                   MotionProfile::Constant(0.5));
  ASSERT_TRUE(server.SubmitTrace(*legacy, trace, {/*paced=*/false}).ok());
  api::SubmitBatchReq batch;
  batch.session = via_api->session;
  batch.paced = false;
  for (const auto& event : trace.events) {
    batch.events.push_back(api::ToWire(event));
  }
  const auto submitted = server.Call(batch);
  ASSERT_TRUE(submitted.ok());
  EXPECT_EQ(submitted->accepted,
            static_cast<std::int64_t>(trace.events.size()));
  EXPECT_EQ(submitted->rejected, 0);
  ASSERT_TRUE(server.Drain().ok());

  api::SessionSnapshotReq snap;
  snap.max_results = 1'000'000;
  snap.session = *legacy;
  const auto legacy_snap = server.Call(snap);
  snap.session = via_api->session;
  const auto api_snap = server.Call(snap);
  ASSERT_TRUE(legacy_snap.ok() && api_snap.ok());
  EXPECT_GT(legacy_snap->result_count, 0);
  EXPECT_EQ(legacy_snap->result_count, api_snap->result_count);
  ASSERT_EQ(legacy_snap->results.size(), api_snap->results.size());
  for (std::size_t i = 0; i < legacy_snap->results.size(); ++i) {
    EXPECT_EQ(legacy_snap->results[i].row, api_snap->results[i].row);
    EXPECT_EQ(legacy_snap->results[i].value, api_snap->results[i].value);
  }
  EXPECT_EQ(legacy_snap->objects.size(), 1u);
  EXPECT_EQ(legacy_snap->objects[0].table, "t");
  EXPECT_EQ(legacy_snap->objects[0].tuple_count, 20'000);

  ASSERT_TRUE(server.CloseSession(*legacy).ok());
  api::CloseSessionReq close;
  close.session = via_api->session;
  ASSERT_TRUE(server.Call(close).ok());
  EXPECT_EQ(server.session_count(), 0u);
  ASSERT_TRUE(server.Stop().ok());
}

TEST(ApiCallTest, ErrorsSurfaceAsStatuses) {
  TouchServer server(RelaxedConfig());
  ASSERT_TRUE(server.RegisterTable(SmallTable()).ok());
  ASSERT_TRUE(server.Start().ok());

  api::CloseSessionReq close;
  close.session = 12345;
  EXPECT_EQ(server.Call(close).status().code(), StatusCode::kNotFound);

  const auto session = server.Call(api::OpenSessionReq{});
  ASSERT_TRUE(session.ok());
  api::CreateObjectReq create;
  create.session = session->session;
  create.kind = 0;
  create.table = "missing";
  create.column = "v";
  create.frame = api::WireRect{1, 1, 2, 10};
  EXPECT_FALSE(server.Call(create).ok());

  api::SetActionReq set;
  set.session = session->session;
  set.object = 99;
  set.action.kind = 200;  // No such ActionKind.
  EXPECT_EQ(server.Call(set).status().code(), StatusCode::kInvalidArgument);

  ASSERT_TRUE(server.Stop().ok());
}

TEST(ApiCallTest, StatsIdleSemantics) {
  api::StatsResp stats;
  stats.submitted = 10;
  stats.executed = 8;
  stats.dropped_quanta = 1;
  EXPECT_FALSE(stats.idle());
  stats.dropped_quanta = 2;
  EXPECT_TRUE(stats.idle());
}

}  // namespace
}  // namespace dbtouch::server
