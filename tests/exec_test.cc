// Unit and property tests for the incremental operators: running
// aggregates, interactive summaries, predicates, symmetric join, group-by.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "exec/adaptive_filter.h"
#include "exec/aggregate.h"
#include "exec/groupby.h"
#include "exec/join.h"
#include "exec/predicate.h"
#include "exec/summary.h"
#include "storage/column.h"
#include "storage/datagen.h"

namespace dbtouch::exec {
namespace {

using storage::Column;
using storage::RowId;

TEST(RunningAggregateTest, CountSumAvg) {
  RunningAggregate count(AggKind::kCount);
  RunningAggregate sum(AggKind::kSum);
  RunningAggregate avg(AggKind::kAvg);
  for (const double v : {1.0, 2.0, 3.0, 4.0}) {
    count.Add(v);
    sum.Add(v);
    avg.Add(v);
  }
  EXPECT_DOUBLE_EQ(count.value(), 4.0);
  EXPECT_DOUBLE_EQ(sum.value(), 10.0);
  EXPECT_DOUBLE_EQ(avg.value(), 2.5);
}

TEST(RunningAggregateTest, MinMax) {
  RunningAggregate mn(AggKind::kMin);
  RunningAggregate mx(AggKind::kMax);
  for (const double v : {3.0, -1.0, 7.0, 0.0}) {
    mn.Add(v);
    mx.Add(v);
  }
  EXPECT_DOUBLE_EQ(mn.value(), -1.0);
  EXPECT_DOUBLE_EQ(mx.value(), 7.0);
}

TEST(RunningAggregateTest, VarianceMatchesTwoPass) {
  Rng rng(3);
  std::vector<double> xs;
  RunningAggregate var(AggKind::kVariance);
  RunningAggregate sd(AggKind::kStdDev);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.NextGaussian() * 3.0 + 10.0;
    xs.push_back(v);
    var.Add(v);
    sd.Add(v);
  }
  double mean = 0.0;
  for (const double v : xs) {
    mean += v;
  }
  mean /= static_cast<double>(xs.size());
  double two_pass = 0.0;
  for (const double v : xs) {
    two_pass += (v - mean) * (v - mean);
  }
  two_pass /= static_cast<double>(xs.size());
  EXPECT_NEAR(var.value(), two_pass, 1e-9);
  EXPECT_NEAR(sd.value(), std::sqrt(two_pass), 1e-9);
}

TEST(RunningAggregateTest, EmptyIsNaNExceptCount) {
  EXPECT_DOUBLE_EQ(RunningAggregate(AggKind::kCount).value(), 0.0);
  EXPECT_TRUE(std::isnan(RunningAggregate(AggKind::kAvg).value()));
  EXPECT_TRUE(std::isnan(RunningAggregate(AggKind::kMin).value()));
}

TEST(RunningAggregateTest, ResetClears) {
  RunningAggregate agg(AggKind::kSum);
  agg.Add(5.0);
  agg.Reset();
  EXPECT_EQ(agg.count(), 0);
  agg.Add(2.0);
  EXPECT_DOUBLE_EQ(agg.value(), 2.0);
}

TEST(TouchedAggregateTest, DeduplicatesRevisits) {
  const Column c = Column::FromInt32("c", {10, 20, 30});
  TouchedAggregateOp op(c.View(), AggKind::kSum);
  EXPECT_TRUE(op.Feed(0));
  EXPECT_TRUE(op.Feed(1));
  EXPECT_FALSE(op.Feed(0));  // Back-and-forth slide revisits row 0.
  EXPECT_DOUBLE_EQ(op.value(), 30.0);
  EXPECT_EQ(op.rows_seen(), 2);
  EXPECT_NEAR(op.coverage(), 2.0 / 3.0, 1e-12);
}

TEST(TouchedAggregateTest, OutOfRangeIgnored) {
  const Column c = Column::FromInt32("c", {1});
  TouchedAggregateOp op(c.View(), AggKind::kSum);
  EXPECT_FALSE(op.Feed(-1));
  EXPECT_FALSE(op.Feed(5));
  EXPECT_EQ(op.rows_seen(), 0);
}

TEST(TouchedAggregateTest, OrderIndependence) {
  // Property (paper: users walk the data in any direction/order): the
  // final aggregate is order-independent.
  const Column c = storage::GenUniformInt32("c", 500, 0, 100, 21);
  std::vector<RowId> order_a;
  std::vector<RowId> order_b;
  for (RowId r = 0; r < 500; ++r) {
    order_a.push_back(r);
    order_b.push_back(499 - r);
  }
  TouchedAggregateOp a(c.View(), AggKind::kAvg);
  TouchedAggregateOp b(c.View(), AggKind::kAvg);
  for (const RowId r : order_a) {
    a.Feed(r);
  }
  for (const RowId r : order_b) {
    b.Feed(r);
  }
  EXPECT_NEAR(a.value(), b.value(), 1e-9);
}

TEST(SummaryTest, WindowAveragesMatchManual) {
  const Column c = Column::FromInt32("c", {0, 10, 20, 30, 40, 50});
  InteractiveSummaryOp op(c.View(), /*k=*/1);
  const SummaryResult mid = op.ComputeAt(2);
  EXPECT_EQ(mid.first, 1);
  EXPECT_EQ(mid.last, 3);
  EXPECT_EQ(mid.rows, 3);
  EXPECT_DOUBLE_EQ(mid.value, 20.0);
}

TEST(SummaryTest, WindowClampsAtEdges) {
  const Column c = Column::FromInt32("c", {0, 10, 20, 30, 40, 50});
  InteractiveSummaryOp op(c.View(), /*k=*/2);
  const SummaryResult top = op.ComputeAt(0);
  EXPECT_EQ(top.first, 0);
  EXPECT_EQ(top.last, 2);
  EXPECT_DOUBLE_EQ(top.value, 10.0);
  const SummaryResult bottom = op.ComputeAt(5);
  EXPECT_EQ(bottom.first, 3);
  EXPECT_EQ(bottom.last, 5);
}

TEST(SummaryTest, CenterClampsOutOfRange) {
  const Column c = Column::FromInt32("c", {1, 2, 3});
  InteractiveSummaryOp op(c.View(), 0);
  EXPECT_EQ(op.ComputeAt(-5).center, 0);
  EXPECT_EQ(op.ComputeAt(99).center, 2);
}

TEST(SummaryTest, KZeroIsPointRead) {
  const Column c = Column::FromInt32("c", {7, 8, 9});
  InteractiveSummaryOp op(c.View(), 0);
  const SummaryResult r = op.ComputeAt(1);
  EXPECT_EQ(r.rows, 1);
  EXPECT_DOUBLE_EQ(r.value, 8.0);
}

TEST(SummaryTest, RowsScannedAccumulates) {
  const Column c = storage::GenUniformInt32("c", 1000, 0, 9, 2);
  InteractiveSummaryOp op(c.View(), 10);
  op.ComputeAt(500);
  op.ComputeAt(501);
  EXPECT_EQ(op.rows_scanned(), 42);  // 21 + 21.
}

TEST(SummaryTest, SupportsOtherAggKinds) {
  const Column c = Column::FromInt32("c", {5, 1, 9, 3});
  InteractiveSummaryOp mx(c.View(), 3, AggKind::kMax);
  EXPECT_DOUBLE_EQ(mx.ComputeAt(1).value, 9.0);
  InteractiveSummaryOp mn(c.View(), 3, AggKind::kMin);
  EXPECT_DOUBLE_EQ(mn.ComputeAt(1).value, 1.0);
}

TEST(PredicateTest, AllOperators) {
  EXPECT_TRUE(Predicate(CompareOp::kLt, 5).Matches(4));
  EXPECT_FALSE(Predicate(CompareOp::kLt, 5).Matches(5));
  EXPECT_TRUE(Predicate(CompareOp::kLe, 5).Matches(5));
  EXPECT_TRUE(Predicate(CompareOp::kEq, 5).Matches(5));
  EXPECT_TRUE(Predicate(CompareOp::kNe, 5).Matches(4));
  EXPECT_TRUE(Predicate(CompareOp::kGe, 5).Matches(5));
  EXPECT_TRUE(Predicate(CompareOp::kGt, 5).Matches(6));
  EXPECT_TRUE(Predicate(2.0, 4.0).Matches(3.0));
  EXPECT_FALSE(Predicate(2.0, 4.0).Matches(4.5));
}

TEST(PredicateTest, ToStringReadable) {
  EXPECT_EQ(Predicate(CompareOp::kLt, 10).ToString(), "< 10");
  EXPECT_EQ(Predicate(1.0, 2.0).ToString(), "between 1 and 2");
}

TEST(FilteredScanTest, TracksSelectivity) {
  const Column c = Column::FromInt32("c", {1, 5, 10, 15, 20});
  FilteredScanOp op(c.View(), Predicate(CompareOp::kGt, 9));
  int passes = 0;
  for (RowId r = 0; r < 5; ++r) {
    if (op.Feed(r)) {
      ++passes;
    }
  }
  EXPECT_EQ(passes, 3);
  EXPECT_EQ(op.rows_fed(), 5);
  EXPECT_EQ(op.rows_passed(), 3);
  EXPECT_DOUBLE_EQ(op.observed_selectivity(), 0.6);
}

TEST(FilteredScanTest, OutOfRangeDoesNotCount) {
  const Column c = Column::FromInt32("c", {1});
  FilteredScanOp op(c.View(), Predicate(CompareOp::kGt, 0));
  EXPECT_FALSE(op.Feed(10));
  EXPECT_EQ(op.rows_fed(), 0);
}

TEST(SymmetricJoinTest, MatchesAppearWhenBothSidesTouched) {
  const Column left = Column::FromInt32("l", {1, 2, 3});
  const Column right = Column::FromInt32("r", {2, 3, 4});
  SymmetricHashJoin join(left.View(), right.View());
  EXPECT_TRUE(join.Feed(JoinSide::kLeft, 1).empty());  // key 2, no partner.
  const auto matches = join.Feed(JoinSide::kRight, 0);  // key 2 -> match.
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].left_row, 1);
  EXPECT_EQ(matches[0].right_row, 0);
  EXPECT_EQ(matches[0].key, 2);
}

TEST(SymmetricJoinTest, RevisitsDoNotDuplicate) {
  const Column left = Column::FromInt32("l", {7});
  const Column right = Column::FromInt32("r", {7});
  SymmetricHashJoin join(left.View(), right.View());
  join.Feed(JoinSide::kLeft, 0);
  EXPECT_EQ(join.Feed(JoinSide::kRight, 0).size(), 1u);
  EXPECT_TRUE(join.Feed(JoinSide::kRight, 0).empty());
  EXPECT_TRUE(join.Feed(JoinSide::kLeft, 0).empty());
  EXPECT_EQ(join.matches().size(), 1u);
}

TEST(SymmetricJoinTest, DuplicateKeysProduceAllPairs) {
  const Column left = Column::FromInt32("l", {5, 5});
  const Column right = Column::FromInt32("r", {5, 5, 5});
  SymmetricHashJoin join(left.View(), right.View());
  for (RowId r = 0; r < 2; ++r) {
    join.Feed(JoinSide::kLeft, r);
  }
  for (RowId r = 0; r < 3; ++r) {
    join.Feed(JoinSide::kRight, r);
  }
  EXPECT_EQ(join.matches().size(), 6u);  // 2 x 3 pairs.
}

TEST(SymmetricJoinTest, EquivalentToNestedLoopReference) {
  // Property: feeding any interleaving produces exactly the nested-loop
  // match set of the *fed* subsets.
  const Column left = storage::GenUniformInt32("l", 200, 0, 20, 31);
  const Column right = storage::GenUniformInt32("r", 300, 0, 20, 32);
  Rng rng(33);
  SymmetricHashJoin join(left.View(), right.View());
  std::vector<RowId> fed_left;
  std::vector<RowId> fed_right;
  for (int i = 0; i < 150; ++i) {
    if (rng.NextBernoulli(0.5)) {
      const RowId r = static_cast<RowId>(rng.NextBounded(200));
      if (std::find(fed_left.begin(), fed_left.end(), r) == fed_left.end()) {
        fed_left.push_back(r);
      }
      join.Feed(JoinSide::kLeft, r);
    } else {
      const RowId r = static_cast<RowId>(rng.NextBounded(300));
      if (std::find(fed_right.begin(), fed_right.end(), r) ==
          fed_right.end()) {
        fed_right.push_back(r);
      }
      join.Feed(JoinSide::kRight, r);
    }
  }
  std::vector<JoinMatch> reference;
  for (const RowId l : fed_left) {
    for (const RowId r : fed_right) {
      if (left.View().GetInt32(l) == right.View().GetInt32(r)) {
        reference.push_back(
            JoinMatch{l, r, left.View().GetInt32(l)});
      }
    }
  }
  auto key = [](const JoinMatch& m) {
    return m.left_row * 1000 + m.right_row;
  };
  auto sorted = join.matches();
  std::sort(sorted.begin(), sorted.end(),
            [&](const auto& a, const auto& b) { return key(a) < key(b); });
  std::sort(reference.begin(), reference.end(),
            [&](const auto& a, const auto& b) { return key(a) < key(b); });
  EXPECT_EQ(sorted, reference);
}

TEST(SymmetricJoinTest, CostCountersTrackFeeds) {
  const Column left = Column::FromInt32("l", {1, 2});
  const Column right = Column::FromInt32("r", {1});
  SymmetricHashJoin join(left.View(), right.View());
  join.Feed(JoinSide::kLeft, 0);
  join.Feed(JoinSide::kLeft, 1);
  join.Feed(JoinSide::kRight, 0);
  EXPECT_EQ(join.left_fed(), 2);
  EXPECT_EQ(join.right_fed(), 1);
  EXPECT_EQ(join.hash_entries(), 3);
}

TEST(GroupByTest, GroupsAccreteIncrementally) {
  const Column keys = Column::FromInt32("k", {1, 2, 1, 2, 3});
  const Column vals = Column::FromDouble("v", {10, 20, 30, 40, 50});
  IncrementalGroupBy gb(keys.View(), vals.View(), AggKind::kSum);
  gb.Feed(0);
  gb.Feed(1);
  EXPECT_EQ(gb.num_groups(), 2);
  gb.Feed(2);
  gb.Feed(3);
  gb.Feed(4);
  const auto snapshot = gb.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].key, 1);
  EXPECT_DOUBLE_EQ(snapshot[0].value, 40.0);
  EXPECT_EQ(snapshot[1].key, 2);
  EXPECT_DOUBLE_EQ(snapshot[1].value, 60.0);
  EXPECT_EQ(snapshot[2].count, 1);
}

TEST(GroupByTest, RevisitsIgnored) {
  const Column keys = Column::FromInt32("k", {1});
  const Column vals = Column::FromDouble("v", {10});
  IncrementalGroupBy gb(keys.View(), vals.View(), AggKind::kSum);
  EXPECT_TRUE(gb.Feed(0));
  EXPECT_FALSE(gb.Feed(0));
  EXPECT_DOUBLE_EQ(gb.Snapshot()[0].value, 10.0);
}

// ---- Adaptive predicate ordering (paper Section 2.9 "Optimization") ----

/// Data whose properties flip between halves: predicate A is selective on
/// the first half only, predicate B on the second half only.
struct AdaptiveFixture {
  AdaptiveFixture()
      : a("a", storage::DataType::kInt32),
        b("b", storage::DataType::kInt32) {
    constexpr std::int64_t kHalf = 4000;
    Rng rng(71);
    for (std::int64_t i = 0; i < 2 * kHalf; ++i) {
      const bool first_half = i < kHalf;
      // Value 1 passes "== 1". In its selective half a predicate passes
      // 10% of rows; in the other half 90%.
      a.AppendInt32(rng.NextBernoulli(first_half ? 0.1 : 0.9) ? 1 : 0);
      b.AppendInt32(rng.NextBernoulli(first_half ? 0.9 : 0.1) ? 1 : 0);
    }
  }

  AdaptiveConjunctionOp MakeOp(const AdaptiveConjunctionConfig& config) {
    return AdaptiveConjunctionOp(
        {{a.View(), Predicate(CompareOp::kEq, 1.0)},
         {b.View(), Predicate(CompareOp::kEq, 1.0)}},
        a.row_count(), config);
  }

  Column a;
  Column b;
};

TEST(AdaptiveFilterTest, ConjunctionSemanticsMatchReference) {
  AdaptiveFixture fx;
  AdaptiveConjunctionOp op = fx.MakeOp({});
  for (RowId r = 0; r < fx.a.row_count(); ++r) {
    const bool expected =
        fx.a.View().GetInt32(r) == 1 && fx.b.View().GetInt32(r) == 1;
    EXPECT_EQ(op.Feed(r), expected) << "row " << r;
  }
}

TEST(AdaptiveFilterTest, OrderAdaptsPerRegion) {
  AdaptiveFixture fx;
  AdaptiveConjunctionConfig config;
  config.num_regions = 2;
  config.warmup_evals = 16;
  AdaptiveConjunctionOp op = fx.MakeOp(config);
  for (RowId r = 0; r < fx.a.row_count(); ++r) {
    op.Feed(r);
  }
  // First half: A selective -> A first. Second half: B selective.
  EXPECT_EQ(op.RegionOrder(0)[0], 0u);
  EXPECT_EQ(op.RegionOrder(1)[0], 1u);
}

TEST(AdaptiveFilterTest, AdaptiveBeatsFixedOrderOnShiftingData) {
  AdaptiveFixture fx;
  AdaptiveConjunctionConfig adaptive_config;
  adaptive_config.num_regions = 64;
  AdaptiveConjunctionOp adaptive = fx.MakeOp(adaptive_config);
  // A "fixed order" optimizer is the degenerate single-region case warmed
  // on global statistics — its one order cannot fit both halves.
  AdaptiveConjunctionConfig fixed_config;
  fixed_config.num_regions = 1;
  AdaptiveConjunctionOp fixed = fx.MakeOp(fixed_config);
  for (RowId r = 0; r < fx.a.row_count(); ++r) {
    adaptive.Feed(r);
    fixed.Feed(r);
  }
  EXPECT_LT(adaptive.evaluations(), fixed.evaluations());
  // Lower bound sanity: every row costs at least one evaluation.
  EXPECT_GE(adaptive.evaluations(), adaptive.rows_fed());
}

TEST(AdaptiveFilterTest, OutOfRangeRowsIgnored) {
  AdaptiveFixture fx;
  AdaptiveConjunctionOp op = fx.MakeOp({});
  EXPECT_FALSE(op.Feed(-1));
  EXPECT_FALSE(op.Feed(1 << 30));
  EXPECT_EQ(op.rows_fed(), 0);
  EXPECT_EQ(op.evaluations(), 0);
}

TEST(AdaptiveFilterTest, RegionOfPartitionsEvenly) {
  AdaptiveFixture fx;
  AdaptiveConjunctionConfig config;
  config.num_regions = 8;
  AdaptiveConjunctionOp op = fx.MakeOp(config);
  EXPECT_EQ(op.RegionOf(0), 0);
  EXPECT_EQ(op.RegionOf(fx.a.row_count() - 1), 7);
  EXPECT_EQ(op.RegionOf(fx.a.row_count() / 2), 4);
}

TEST(GroupByTest, Int64KeysWork) {
  const Column keys = Column::FromInt64("k", {1'000'000'000'000LL,
                                              1'000'000'000'000LL, 2});
  const Column vals = Column::FromDouble("v", {1, 2, 3});
  IncrementalGroupBy gb(keys.View(), vals.View(), AggKind::kCount);
  for (RowId r = 0; r < 3; ++r) {
    gb.Feed(r);
  }
  const auto snap = gb.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[1].key, 1'000'000'000'000LL);
  EXPECT_EQ(snap[1].count, 2);
}

}  // namespace
}  // namespace dbtouch::exec
