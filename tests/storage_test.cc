// Unit tests for src/storage: types, values, dictionary, columns, matrices
// (both major orders), tables, catalog and data generators.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "storage/catalog.h"
#include "storage/column.h"
#include "storage/datagen.h"
#include "storage/dictionary.h"
#include "storage/matrix.h"
#include "storage/paged_column.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/types.h"
#include "storage/value.h"

namespace dbtouch::storage {
namespace {

TEST(TypesTest, WidthsAreFixed) {
  EXPECT_EQ(TypeWidth(DataType::kInt32), 4u);
  EXPECT_EQ(TypeWidth(DataType::kInt64), 8u);
  EXPECT_EQ(TypeWidth(DataType::kFloat), 4u);
  EXPECT_EQ(TypeWidth(DataType::kDouble), 8u);
  EXPECT_EQ(TypeWidth(DataType::kString), 4u);  // dictionary code
}

TEST(TypesTest, Names) {
  EXPECT_EQ(DataTypeName(DataType::kInt32), "int32");
  EXPECT_EQ(DataTypeName(DataType::kString), "string");
  EXPECT_TRUE(IsNumeric(DataType::kDouble));
  EXPECT_FALSE(IsNumeric(DataType::kString));
}

TEST(ValueTest, IntRoundTrip) {
  const Value v(std::int64_t{42});
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 42);
  EXPECT_DOUBLE_EQ(v.ToDouble(), 42.0);
  EXPECT_EQ(v.ToString(), "42");
}

TEST(ValueTest, DoubleRoundTrip) {
  const Value v(2.5);
  EXPECT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.AsDouble(), 2.5);
  EXPECT_EQ(v.ToString(), "2.5");
}

TEST(ValueTest, StringRoundTrip) {
  const Value v(std::string("hi"));
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.AsString(), "hi");
  EXPECT_EQ(v.ToString(), "hi");
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value(std::int64_t{1}), Value(std::int64_t{1}));
  EXPECT_FALSE(Value(std::int64_t{1}) == Value(1.0));
}

TEST(DictionaryTest, InternAssignsDenseCodes) {
  Dictionary dict;
  EXPECT_EQ(dict.Intern("a"), 0);
  EXPECT_EQ(dict.Intern("b"), 1);
  EXPECT_EQ(dict.Intern("a"), 0);  // Idempotent.
  EXPECT_EQ(dict.size(), 2);
  EXPECT_EQ(dict.Lookup(1), "b");
}

TEST(DictionaryTest, FindDoesNotInsert) {
  Dictionary dict;
  EXPECT_EQ(dict.Find("missing"), -1);
  EXPECT_EQ(dict.size(), 0);
  dict.Intern("x");
  EXPECT_EQ(dict.Find("x"), 0);
}

TEST(SchemaTest, OffsetsAndWidth) {
  const Schema s({{"a", DataType::kInt32},
                  {"b", DataType::kDouble},
                  {"c", DataType::kInt64}});
  EXPECT_EQ(s.num_fields(), 3u);
  EXPECT_EQ(s.row_width(), 20u);
  EXPECT_EQ(s.field_offset(0), 0u);
  EXPECT_EQ(s.field_offset(1), 4u);
  EXPECT_EQ(s.field_offset(2), 12u);
}

TEST(SchemaTest, FieldIndexLookup) {
  const Schema s({{"x", DataType::kInt32}, {"y", DataType::kFloat}});
  ASSERT_TRUE(s.FieldIndex("y").ok());
  EXPECT_EQ(s.FieldIndex("y").value(), 1u);
  EXPECT_TRUE(s.FieldIndex("z").status().IsNotFound());
}

TEST(SchemaTest, Project) {
  const Schema s({{"a", DataType::kInt32},
                  {"b", DataType::kDouble},
                  {"c", DataType::kInt64}});
  const Schema p = s.Project({2, 0});
  ASSERT_EQ(p.num_fields(), 2u);
  EXPECT_EQ(p.field(0).name, "c");
  EXPECT_EQ(p.field(1).name, "a");
  EXPECT_EQ(p.row_width(), 12u);
}

TEST(SchemaTest, ToStringListsFields) {
  const Schema s({{"a", DataType::kInt32}});
  EXPECT_EQ(s.ToString(), "(a:int32)");
}

TEST(ColumnTest, TypedAppendAndRead) {
  Column c("c", DataType::kInt32);
  c.AppendInt32(7);
  c.AppendInt32(-3);
  EXPECT_EQ(c.row_count(), 2);
  const ColumnView v = c.View();
  EXPECT_EQ(v.GetInt32(0), 7);
  EXPECT_EQ(v.GetInt32(1), -3);
  EXPECT_DOUBLE_EQ(v.GetAsDouble(1), -3.0);
}

TEST(ColumnTest, FromVectors) {
  const Column a = Column::FromInt64("a", {1, 2, 3});
  EXPECT_EQ(a.View().GetInt64(2), 3);
  const Column d = Column::FromDouble("d", {1.5, 2.5});
  EXPECT_DOUBLE_EQ(d.View().GetDouble(0), 1.5);
  const Column f = Column::FromFloat("f", {0.5f});
  EXPECT_FLOAT_EQ(f.View().GetFloat(0), 0.5f);
}

TEST(ColumnTest, StringColumnDictEncodes) {
  const Column c = Column::FromStrings("s", {"x", "y", "x", "z"});
  EXPECT_EQ(c.row_count(), 4);
  EXPECT_EQ(c.dictionary()->size(), 3);
  const ColumnView v = c.View();
  EXPECT_EQ(v.GetInt32(0), v.GetInt32(2));  // Same code for "x".
  EXPECT_EQ(v.GetValue(1).AsString(), "y");
}

TEST(ColumnTest, AppendValueChecksType) {
  Column c("c", DataType::kDouble);
  c.AppendValue(Value(1.25));
  c.AppendValue(Value(std::int64_t{2}));  // Int coerces into double column.
  EXPECT_DOUBLE_EQ(c.View().GetDouble(0), 1.25);
  EXPECT_DOUBLE_EQ(c.View().GetDouble(1), 2.0);
}

TEST(ColumnViewTest, SliceWindows) {
  const Column c = Column::FromInt32("c", {10, 20, 30, 40, 50});
  const ColumnView s = c.View().Slice(1, 3);
  EXPECT_EQ(s.row_count(), 3);
  EXPECT_EQ(s.GetInt32(0), 20);
  EXPECT_EQ(s.GetInt32(2), 40);
}

TEST(ColumnViewTest, InRange) {
  const Column c = Column::FromInt32("c", {1, 2});
  EXPECT_TRUE(c.View().InRange(0));
  EXPECT_TRUE(c.View().InRange(1));
  EXPECT_FALSE(c.View().InRange(2));
  EXPECT_FALSE(c.View().InRange(-1));
}

class MatrixOrderTest : public testing::TestWithParam<MajorOrder> {};

TEST_P(MatrixOrderTest, AppendAndGetCells) {
  const Schema schema({{"i", DataType::kInt32}, {"d", DataType::kDouble}});
  Matrix m(schema, GetParam());
  for (int r = 0; r < 100; ++r) {
    m.AppendRow({Value(std::int64_t{r}), Value(r * 0.5)});
  }
  EXPECT_EQ(m.row_count(), 100);
  EXPECT_EQ(m.GetCell(42, 0).AsInt(), 42);
  EXPECT_DOUBLE_EQ(m.GetCell(42, 1).AsDouble(), 21.0);
}

TEST_P(MatrixOrderTest, ColumnViewReadsMatchCells) {
  const Schema schema({{"i", DataType::kInt32},
                       {"l", DataType::kInt64},
                       {"d", DataType::kDouble}});
  Matrix m(schema, GetParam());
  for (int r = 0; r < 257; ++r) {  // Crosses growth boundaries.
    m.AppendRow({Value(std::int64_t{r}), Value(std::int64_t{r * 10}),
                 Value(r * 0.25)});
  }
  const ColumnView c0 = m.ColumnAt(0);
  const ColumnView c1 = m.ColumnAt(1);
  const ColumnView c2 = m.ColumnAt(2);
  for (RowId r = 0; r < 257; ++r) {
    EXPECT_EQ(c0.GetInt32(r), r);
    EXPECT_EQ(c1.GetInt64(r), r * 10);
    EXPECT_DOUBLE_EQ(c2.GetDouble(r), r * 0.25);
  }
}

TEST_P(MatrixOrderTest, SetCellOverwrites) {
  const Schema schema({{"i", DataType::kInt32}});
  Matrix m(schema, GetParam());
  m.AppendRow({Value(std::int64_t{1})});
  m.SetCell(0, 0, Value(std::int64_t{99}));
  EXPECT_EQ(m.GetCell(0, 0).AsInt(), 99);
}

TEST_P(MatrixOrderTest, ToOrderPreservesData) {
  const Schema schema({{"i", DataType::kInt32}, {"d", DataType::kDouble}});
  Matrix m(schema, GetParam());
  for (int r = 0; r < 50; ++r) {
    m.AppendRow({Value(std::int64_t{r}), Value(r * 1.5)});
  }
  const MajorOrder other = GetParam() == MajorOrder::kRowMajor
                               ? MajorOrder::kColumnMajor
                               : MajorOrder::kRowMajor;
  const Matrix t = m.ToOrder(other);
  EXPECT_EQ(t.order(), other);
  for (RowId r = 0; r < 50; ++r) {
    EXPECT_EQ(t.GetCell(r, 0).AsInt(), m.GetCell(r, 0).AsInt());
    EXPECT_DOUBLE_EQ(t.GetCell(r, 1).AsDouble(), m.GetCell(r, 1).AsDouble());
  }
}

TEST_P(MatrixOrderTest, ColumnStrideMatchesOrder) {
  const Schema schema({{"i", DataType::kInt32}, {"d", DataType::kDouble}});
  const Matrix m(schema, GetParam());
  if (GetParam() == MajorOrder::kColumnMajor) {
    EXPECT_EQ(m.column_stride(0), 4u);
    EXPECT_EQ(m.column_stride(1), 8u);
  } else {
    EXPECT_EQ(m.column_stride(0), 12u);
    EXPECT_EQ(m.column_stride(1), 12u);
  }
}

INSTANTIATE_TEST_SUITE_P(BothOrders, MatrixOrderTest,
                         testing::Values(MajorOrder::kColumnMajor,
                                         MajorOrder::kRowMajor),
                         [](const auto& info) {
                           return info.param == MajorOrder::kColumnMajor
                                      ? "ColumnMajor"
                                      : "RowMajor";
                         });

TEST(MatrixTest, AppendRowsColumnarBulkLoads) {
  const Schema schema({{"a", DataType::kInt32}, {"b", DataType::kInt64}});
  Matrix m(schema, MajorOrder::kColumnMajor);
  const std::vector<std::int32_t> a{1, 2, 3};
  const std::vector<std::int64_t> b{10, 20, 30};
  m.AppendRowsColumnar(
      {reinterpret_cast<const std::byte*>(a.data()),
       reinterpret_cast<const std::byte*>(b.data())},
      3);
  EXPECT_EQ(m.row_count(), 3);
  EXPECT_EQ(m.GetCell(2, 1).AsInt(), 30);
}

TEST(TableTest, FromColumnsBuildsAndReads) {
  std::vector<Column> cols;
  cols.push_back(Column::FromInt32("id", {1, 2, 3}));
  cols.push_back(Column::FromDouble("v", {0.1, 0.2, 0.3}));
  const auto table = Table::FromColumns("t", std::move(cols));
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ((*table)->row_count(), 3);
  EXPECT_EQ((*table)->GetValue(1, 0).AsInt(), 2);
  EXPECT_DOUBLE_EQ((*table)->GetValue(2, 1).AsDouble(), 0.3);
}

TEST(TableTest, FromColumnsRejectsRaggedColumns) {
  std::vector<Column> cols;
  cols.push_back(Column::FromInt32("a", {1, 2}));
  cols.push_back(Column::FromInt32("b", {1}));
  EXPECT_TRUE(Table::FromColumns("t", std::move(cols))
                  .status()
                  .IsInvalidArgument());
}

TEST(TableTest, FromColumnsRejectsEmpty) {
  EXPECT_TRUE(
      Table::FromColumns("t", {}).status().IsInvalidArgument());
}

TEST(TableTest, AppendRowWithStringsInterns) {
  Table t("t", Schema({{"host", DataType::kString},
                       {"ms", DataType::kDouble}}));
  ASSERT_TRUE(t.AppendRow({Value(std::string("web-1")), Value(1.5)}).ok());
  ASSERT_TRUE(t.AppendRow({Value(std::string("web-2")), Value(2.5)}).ok());
  ASSERT_TRUE(t.AppendRow({Value(std::string("web-1")), Value(3.5)}).ok());
  EXPECT_EQ(t.row_count(), 3);
  EXPECT_EQ(t.GetValue(2, 0).AsString(), "web-1");
  EXPECT_EQ(t.dictionary(0)->size(), 2);
}

TEST(TableTest, AppendRowValidatesArityAndTypes) {
  Table t("t", Schema({{"a", DataType::kInt32}}));
  EXPECT_TRUE(t.AppendRow({}).IsInvalidArgument());
  EXPECT_TRUE(
      t.AppendRow({Value(std::string("not a number"))}).IsInvalidArgument());
}

TEST(TableTest, ColumnViewByName) {
  Table t("t", Schema({{"a", DataType::kInt32}, {"b", DataType::kInt32}}));
  ASSERT_TRUE(
      t.AppendRow({Value(std::int64_t{1}), Value(std::int64_t{2})}).ok());
  const auto view = t.ColumnViewByName("b");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->GetInt32(0), 2);
  EXPECT_TRUE(t.ColumnViewByName("zzz").status().IsNotFound());
}

TEST(TableTest, ExtractColumnDeepCopies) {
  std::vector<Column> cols;
  cols.push_back(Column::FromInt32("id", {5, 6}));
  cols.push_back(Column::FromStrings("tag", {"p", "q"}));
  auto table = *Table::FromColumns("t", std::move(cols));
  const Column extracted = table->ExtractColumn(1);
  EXPECT_EQ(extracted.row_count(), 2);
  EXPECT_EQ(extracted.GetValue(0).AsString(), "p");
  EXPECT_EQ(extracted.GetValue(1).AsString(), "q");
}

TEST(TableTest, ReplaceStorageSwapsLayout) {
  std::vector<Column> cols;
  cols.push_back(Column::FromInt32("a", {1, 2, 3}));
  auto table = *Table::FromColumns("t", std::move(cols));
  EXPECT_EQ(table->layout(), MajorOrder::kColumnMajor);
  Matrix rotated = table->storage().ToOrder(MajorOrder::kRowMajor);
  ASSERT_TRUE(table->ReplaceStorage(std::move(rotated)).ok());
  EXPECT_EQ(table->layout(), MajorOrder::kRowMajor);
  EXPECT_EQ(table->GetValue(2, 0).AsInt(), 3);
}

TEST(TableTest, ReplaceStorageRejectsMismatch) {
  std::vector<Column> cols;
  cols.push_back(Column::FromInt32("a", {1, 2, 3}));
  auto table = *Table::FromColumns("t", std::move(cols));
  Matrix wrong(Schema({{"b", DataType::kInt64}}), MajorOrder::kRowMajor);
  EXPECT_TRUE(
      table->ReplaceStorage(std::move(wrong)).IsInvalidArgument());
}

TEST(CatalogTest, RegisterGetDrop) {
  Catalog catalog;
  std::vector<Column> cols;
  cols.push_back(Column::FromInt32("a", {1}));
  ASSERT_TRUE(catalog.Register(*Table::FromColumns("t1", std::move(cols)))
                  .ok());
  EXPECT_TRUE(catalog.Contains("t1"));
  EXPECT_EQ(catalog.size(), 1u);
  ASSERT_TRUE(catalog.Get("t1").ok());
  EXPECT_TRUE(catalog.Get("nope").status().IsNotFound());
  ASSERT_TRUE(catalog.Drop("t1").ok());
  EXPECT_TRUE(catalog.Drop("t1").IsNotFound());
}

TEST(CatalogTest, RejectsDuplicatesAndNull) {
  Catalog catalog;
  std::vector<Column> cols;
  cols.push_back(Column::FromInt32("a", {1}));
  auto t = *Table::FromColumns("t", std::move(cols));
  ASSERT_TRUE(catalog.Register(t).ok());
  EXPECT_TRUE(catalog.Register(t).code() == StatusCode::kAlreadyExists);
  EXPECT_TRUE(catalog.Register(nullptr).IsInvalidArgument());
}

TEST(CatalogTest, ListIsSorted) {
  Catalog catalog;
  for (const char* name : {"zeta", "alpha", "mid"}) {
    std::vector<Column> cols;
    cols.push_back(Column::FromInt32("a", {1}));
    ASSERT_TRUE(
        catalog.Register(*Table::FromColumns(name, std::move(cols))).ok());
  }
  const auto names = catalog.List();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[2], "zeta");
}

TEST(DatagenTest, UniformRespectsBounds) {
  const Column c = GenUniformInt32("u", 10000, -50, 50, 1);
  const ColumnView v = c.View();
  for (RowId r = 0; r < v.row_count(); ++r) {
    EXPECT_GE(v.GetInt32(r), -50);
    EXPECT_LE(v.GetInt32(r), 50);
  }
}

TEST(DatagenTest, DeterministicAcrossCalls) {
  const Column a = GenUniformInt32("a", 100, 0, 1000, 99);
  const Column b = GenUniformInt32("b", 100, 0, 1000, 99);
  for (RowId r = 0; r < 100; ++r) {
    EXPECT_EQ(a.View().GetInt32(r), b.View().GetInt32(r));
  }
}

TEST(DatagenTest, SequenceIsMonotonic) {
  const Column c = GenSequenceInt64("seq", 100, 1000, 3);
  EXPECT_EQ(c.View().GetInt64(0), 1000);
  EXPECT_EQ(c.View().GetInt64(99), 1000 + 99 * 3);
}

TEST(DatagenTest, SegmentedMeansDiffer) {
  const Column c = GenSegmentedDouble("seg", 4000, {0.0, 100.0}, 1.0, 5);
  const ColumnView v = c.View();
  double first_half = 0.0;
  double second_half = 0.0;
  for (RowId r = 0; r < 2000; ++r) {
    first_half += v.GetDouble(r);
    second_half += v.GetDouble(r + 2000);
  }
  EXPECT_NEAR(first_half / 2000, 0.0, 1.0);
  EXPECT_NEAR(second_half / 2000, 100.0, 1.0);
}

TEST(DatagenTest, OutliersPlantedAtReportedRows) {
  Column c = GenGaussianDouble("g", 5000, 0.0, 1.0, 7);
  const auto rows = InjectOutliers(c, 0.01, 500.0, 8);
  EXPECT_GT(rows.size(), 10u);
  const ColumnView v = c.View();
  for (const RowId r : rows) {
    EXPECT_GT(std::abs(v.GetDouble(r)), 400.0);
  }
  // Sorted and unique.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1], rows[i]);
  }
}

TEST(DatagenTest, PaperEvalColumnShape) {
  const Column c = MakePaperEvalColumn(1000);
  EXPECT_EQ(c.row_count(), 1000);
  EXPECT_EQ(c.type(), DataType::kInt32);
}

TEST(DatagenTest, SkyTableSchemaAndTransients) {
  std::vector<RowId> transients;
  const auto sky = MakeSkyTable(10000, 3, &transients);
  EXPECT_EQ(sky->schema().num_fields(), 4u);
  EXPECT_EQ(sky->row_count(), 10000);
  EXPECT_FALSE(transients.empty());
  const auto brightness = sky->ColumnViewByName("brightness");
  ASSERT_TRUE(brightness.ok());
  for (const RowId r : transients) {
    EXPECT_GT(std::abs(brightness->GetDouble(r)), 20.0);
  }
}

TEST(DatagenTest, MonitoringTableSchema) {
  std::vector<RowId> spikes;
  const auto mon = MakeMonitoringTable(5000, 4, &spikes);
  EXPECT_EQ(mon->schema().num_fields(), 4u);
  EXPECT_EQ(mon->GetValue(0, 1).is_string(), true);
  EXPECT_FALSE(spikes.empty());
}

TEST(DatagenTest, ZipfSkewsLowRanks) {
  const Column c = GenZipfInt32("z", 20000, 100, 1.2, 6);
  const ColumnView v = c.View();
  std::int64_t low = 0;
  for (RowId r = 0; r < v.row_count(); ++r) {
    if (v.GetInt32(r) < 5) {
      ++low;
    }
  }
  // With skew 1.2 the top 5 of 100 ranks should take well over a third.
  EXPECT_GT(low, v.row_count() / 3);
}

TEST(PagedColumnTest, GeometryCoversTailBlock) {
  const Column c = GenSequenceInt64("v", 257, 0, 1);
  const auto source = c.PagedSource(100);
  EXPECT_EQ(source->num_blocks(), 3);
  EXPECT_EQ(source->BlockFirstRow(2), 200);
  EXPECT_EQ(source->BlockRowCount(0), 100);
  EXPECT_EQ(source->BlockRowCount(2), 57);
  EXPECT_EQ(source->BlockFor(199), 1);
  EXPECT_EQ(source->BlockFor(200), 2);
}

TEST(PagedColumnTest, PinnedSlicesMatchTheColumn) {
  const Column c = GenSequenceInt64("v", 257, 10, 3);
  const auto source = c.PagedSource(100);
  const ColumnView whole = c.View();
  for (std::int64_t b = 0; b < source->num_blocks(); ++b) {
    auto pin = source->PinBlock(b);
    ASSERT_TRUE(pin.ok());
    EXPECT_EQ(pin->first_row(), b * 100);
    for (std::int64_t i = 0; i < pin->view().row_count(); ++i) {
      EXPECT_EQ(pin->view().GetInt64(i), whole.GetInt64(pin->first_row() + i));
    }
  }
  EXPECT_FALSE(source->PinBlock(3).ok());  // Past the end.
}

TEST(PagedColumnTest, CursorReadsAcrossBlockBoundaries) {
  const Column c = GenSequenceInt64("v", 1'000, 0, 1);
  PagedColumnCursor cursor(c.PagedSource(64));
  EXPECT_TRUE(cursor.InRange(999));
  EXPECT_FALSE(cursor.InRange(1'000));
  // Forward, backward, and random jumps all cross block boundaries.
  for (RowId r = 0; r < 1'000; r += 7) {
    EXPECT_EQ(cursor.GetAsDouble(r), static_cast<double>(r));
  }
  for (RowId r = 999; r >= 0; r -= 13) {
    EXPECT_EQ(cursor.GetAsDouble(r), static_cast<double>(r));
  }
}

TEST(PagedColumnTest, ScanVisitsEachRowOnceInOrder) {
  const Column c = GenSequenceInt64("v", 330, 0, 1);
  PagedColumnCursor cursor(c.PagedSource(100));
  std::vector<RowId> seen;
  cursor.Scan(50, 284, [&seen](const ColumnView& rows, RowId first_row) {
    for (std::int64_t i = 0; i < rows.row_count(); ++i) {
      seen.push_back(first_row + i);
      EXPECT_EQ(rows.GetInt64(i), first_row + i);
    }
  });
  ASSERT_EQ(seen.size(), 235u);
  EXPECT_EQ(seen.front(), 50);
  EXPECT_EQ(seen.back(), 284);
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], seen[i - 1] + 1);
  }
  // Out-of-range bounds clamp instead of faulting.
  std::int64_t clamped = 0;
  cursor.Scan(-5, 1'000'000, [&clamped](const ColumnView& rows, RowId) {
    clamped += rows.row_count();
  });
  EXPECT_EQ(clamped, 330);
}

TEST(PagedColumnTest, TablePagedColumnWorksInBothLayouts) {
  for (const MajorOrder order :
       {MajorOrder::kColumnMajor, MajorOrder::kRowMajor}) {
    std::vector<Column> cols;
    cols.push_back(GenSequenceInt64("a", 120, 0, 1));
    cols.push_back(GenSequenceInt64("b", 120, 1'000, 2));
    auto table = Table::FromColumns("t", std::move(cols), order);
    ASSERT_TRUE(table.ok());
    PagedColumnCursor cursor((*table)->PagedColumnAt(1, 32));
    for (RowId r = 0; r < 120; ++r) {
      EXPECT_EQ(cursor.GetAsDouble(r), static_cast<double>(1'000 + 2 * r));
    }
  }
}

TEST(PagedColumnTest, CursorDecodesStringsThroughDictionary) {
  const Column c = Column::FromStrings("s", {"ok", "warn", "ok", "crit"});
  PagedColumnCursor cursor(c.PagedSource(2));
  EXPECT_EQ(cursor.GetValue(1).AsString(), "warn");
  EXPECT_EQ(cursor.GetValue(3).AsString(), "crit");
}

}  // namespace
}  // namespace dbtouch::storage
