// Unit tests for src/common: Status, Result, macros, Rng, string utils.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace dbtouch {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Status FailIfNegative(int x) {
  if (x < 0) {
    return Status::InvalidArgument("negative");
  }
  return Status::OK();
}

Status UseReturnIfError(int x) {
  DBTOUCH_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(MacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UseReturnIfError(1).ok());
  EXPECT_TRUE(UseReturnIfError(-1).IsInvalidArgument());
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) {
    return Status::InvalidArgument("odd");
  }
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  DBTOUCH_ASSIGN_OR_RETURN(const int half, HalveEven(x));
  *out = half;
  return Status::OK();
}

TEST(MacrosTest, AssignOrReturnAssignsAndPropagates) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_TRUE(UseAssignOrReturn(3, &out).IsInvalidArgument());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, IntRangeInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.NextInt64(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All 7 values hit in 2000 draws.
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(5);
  Rng b(5);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(fa.NextUint64(), fb.NextUint64());
  }
}

TEST(ZipfTest, SkewConcentratesMass) {
  Rng rng(17);
  ZipfDistribution zipf(1000, 1.0);
  int rank0 = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    if (zipf.Sample(rng) == 0) {
      ++rank0;
    }
  }
  // Under Zipf(1.0) over 1000 ranks, rank 0 has ~13% mass; uniform would
  // give 0.1%.
  EXPECT_GT(rank0, draws / 20);
}

TEST(ZipfTest, ZeroSkewIsUniformish) {
  Rng rng(19);
  ZipfDistribution zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    counts[zipf.Sample(rng)]++;
  }
  for (const int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, "|"), "a|b|c");
}

TEST(StringUtilTest, Split) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.5 KiB");
  EXPECT_EQ(HumanBytes(40'000'000), "38.1 MiB");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("dbtouch", "db"));
  EXPECT_FALSE(StartsWith("db", "dbtouch"));
  EXPECT_TRUE(EndsWith("trace.txt", ".txt"));
  EXPECT_FALSE(EndsWith("trace.txt", ".csv"));
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \n"), "x y");
  EXPECT_EQ(StripWhitespace("\t\r\n "), "");
}

}  // namespace
}  // namespace dbtouch
