// Unit tests for the CSV loader: type inference, quoting, malformed
// input diagnostics, and round-tripping through TableToCsv.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "storage/csv_loader.h"

namespace dbtouch::storage {
namespace {

TEST(CsvLoaderTest, LoadsTypedColumnsWithHeader) {
  const std::string csv =
      "id,price,name\n"
      "1,9.5,apple\n"
      "2,3.25,banana\n"
      "3,12,cherry\n";
  const auto table = LoadCsv(csv, "fruit");
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ((*table)->row_count(), 3);
  const Schema& s = (*table)->schema();
  EXPECT_EQ(s.field(0).type, DataType::kInt64);
  EXPECT_EQ(s.field(1).type, DataType::kDouble);
  EXPECT_EQ(s.field(2).type, DataType::kString);
  EXPECT_EQ((*table)->GetValue(1, 2).AsString(), "banana");
  EXPECT_DOUBLE_EQ((*table)->GetValue(2, 1).AsDouble(), 12.0);
}

TEST(CsvLoaderTest, HeaderlessGetsGeneratedNames) {
  CsvOptions options;
  options.has_header = false;
  const auto table = LoadCsv("1,2\n3,4\n", "t", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->schema().field(0).name, "c0");
  EXPECT_EQ((*table)->schema().field(1).name, "c1");
  EXPECT_EQ((*table)->row_count(), 2);
}

TEST(CsvLoaderTest, IntWidensToDoubleThenString) {
  // Column starts integer, later holds a float -> double for all rows.
  const auto doubles = LoadCsv("v\n1\n2.5\n3\n", "t");
  ASSERT_TRUE(doubles.ok());
  EXPECT_EQ((*doubles)->schema().field(0).type, DataType::kDouble);
  EXPECT_DOUBLE_EQ((*doubles)->GetValue(0, 0).AsDouble(), 1.0);
  // A stray word widens everything to string.
  const auto strings = LoadCsv("v\n1\n2.5\nN/A\n", "t");
  ASSERT_TRUE(strings.ok());
  EXPECT_EQ((*strings)->schema().field(0).type, DataType::kString);
  EXPECT_EQ((*strings)->GetValue(2, 0).AsString(), "N/A");
}

TEST(CsvLoaderTest, QuotedFieldsKeepDelimitersAndQuotes) {
  const std::string csv =
      "name,note\n"
      "\"Doe, Jane\",\"said \"\"hi\"\"\"\n";
  const auto table = LoadCsv(csv, "t");
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ((*table)->GetValue(0, 0).AsString(), "Doe, Jane");
  EXPECT_EQ((*table)->GetValue(0, 1).AsString(), "said \"hi\"");
}

TEST(CsvLoaderTest, CustomDelimiter) {
  CsvOptions options;
  options.delimiter = '\t';
  const auto table = LoadCsv("a\tb\n1\t2\n", "t", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->GetValue(0, 1).AsInt(), 2);
}

TEST(CsvLoaderTest, RejectsEmptyAndHeaderOnly) {
  EXPECT_TRUE(LoadCsv("", "t").status().IsInvalidArgument());
  EXPECT_TRUE(LoadCsv("a,b\n", "t").status().IsInvalidArgument());
}

TEST(CsvLoaderTest, RejectsRaggedRowsWithLineNumber) {
  const auto r = LoadCsv("a,b\n1,2\n3\n", "t");
  ASSERT_TRUE(r.status().IsInvalidArgument());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos);
}

TEST(CsvLoaderTest, RejectsTypeMismatchBeyondInferenceSample) {
  // Inference samples only the first row; the bad value at line 4 is
  // caught during the load with a precise diagnostic.
  CsvOptions options;
  options.inference_rows = 1;
  const auto r = LoadCsv("v\n1\n2\noops\n", "t", options);
  ASSERT_TRUE(r.status().IsInvalidArgument());
  EXPECT_NE(r.status().message().find("line 4"), std::string::npos);
  EXPECT_NE(r.status().message().find("not an integer"),
            std::string::npos);
}

TEST(CsvLoaderTest, HandlesCrlfAndBlankLines) {
  const auto table = LoadCsv("a\r\n1\r\n\r\n2\r\n", "t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->row_count(), 2);
}

TEST(CsvLoaderTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/dbtouch_csv_test.csv";
  {
    std::ofstream out(path);
    out << "x,y\n1,hello\n2,world\n";
  }
  const auto table = LoadCsvFile(path, "t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->row_count(), 2);
  EXPECT_TRUE(LoadCsvFile("/nonexistent.csv", "t").status().IsNotFound());
  std::remove(path.c_str());
}

TEST(CsvLoaderTest, ExportImportRoundTrip) {
  const std::string csv =
      "id,ratio,label\n"
      "1,0.5,alpha\n"
      "2,1.5,\"beta, gamma\"\n";
  const auto original = LoadCsv(csv, "t");
  ASSERT_TRUE(original.ok());
  const std::string exported = TableToCsv(**original);
  const auto reloaded = LoadCsv(exported, "t2");
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  ASSERT_EQ((*reloaded)->row_count(), (*original)->row_count());
  for (RowId r = 0; r < (*original)->row_count(); ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ((*reloaded)->GetValue(r, c).ToString(),
                (*original)->GetValue(r, c).ToString());
    }
  }
}

TEST(CsvLoaderTest, LoadedTableWorksWithColumnViews) {
  const auto table = LoadCsv("v\n10\n20\n30\n", "t");
  ASSERT_TRUE(table.ok());
  const auto view = (*table)->ColumnViewByName("v");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->GetInt64(2), 30);
  EXPECT_DOUBLE_EQ(view->GetAsDouble(1), 20.0);
}

}  // namespace
}  // namespace dbtouch::storage
