// Unit tests for zone maps, sorted indexes and per-level index sets.

#include <gtest/gtest.h>

#include <algorithm>

#include "index/level_index_set.h"
#include "index/sorted_index.h"
#include "index/zone_map.h"
#include "storage/column.h"
#include "storage/datagen.h"

namespace dbtouch::index {
namespace {

using storage::Column;
using storage::RowId;

TEST(ZoneMapTest, ZonesCoverColumn) {
  const Column c = storage::GenUniformInt32("c", 1000, 0, 99, 1);
  const ZoneMap zm(c.View(), 128);
  EXPECT_EQ(zm.num_zones(), 8);  // ceil(1000/128)
  EXPECT_EQ(zm.zone(0).first, 0);
  EXPECT_EQ(zm.zone(7).last, 999);
  // Zones tile without gaps.
  for (std::int64_t z = 1; z < zm.num_zones(); ++z) {
    EXPECT_EQ(zm.zone(z).first, zm.zone(z - 1).last + 1);
  }
}

TEST(ZoneMapTest, MinMaxAreTight) {
  const Column c = Column::FromInt32("c", {5, 1, 9, 100, 90, 95});
  const ZoneMap zm(c.View(), 3);
  EXPECT_DOUBLE_EQ(zm.zone(0).min, 1.0);
  EXPECT_DOUBLE_EQ(zm.zone(0).max, 9.0);
  EXPECT_DOUBLE_EQ(zm.zone(1).min, 90.0);
  EXPECT_DOUBLE_EQ(zm.zone(1).max, 100.0);
  EXPECT_DOUBLE_EQ(zm.global_min(), 1.0);
  EXPECT_DOUBLE_EQ(zm.global_max(), 100.0);
}

TEST(ZoneMapTest, MayMatchPrunesDisjointZones) {
  const Column c = Column::FromInt32("c", {5, 1, 9, 100, 90, 95});
  const ZoneMap zm(c.View(), 3);
  EXPECT_TRUE(zm.MayMatch(0, 0.0, 2.0));    // Zone 0 holds 1.
  EXPECT_FALSE(zm.MayMatch(0, 50.0, 80.0));  // Zone 0 max is 9.
  EXPECT_TRUE(zm.MayMatch(4, 99.0, 200.0));  // Zone 1 holds 100.
}

TEST(ZoneMapTest, MatchingZonesFindsPlantedOutlier) {
  Column c = storage::GenGaussianDouble("g", 10000, 0.0, 1.0, 7);
  const auto rows = storage::InjectOutliers(c, 0.0005, 500.0, 8);
  ASSERT_FALSE(rows.empty());
  const ZoneMap zm(c.View(), 256);
  const auto zones = zm.MatchingZones(400.0, 600.0);
  // Every positive outlier lies in some returned zone.
  for (const RowId r : rows) {
    if (c.View().GetDouble(r) > 0) {
      const bool covered =
          std::any_of(zones.begin(), zones.end(), [r](const Zone& z) {
            return z.first <= r && r <= z.last;
          });
      EXPECT_TRUE(covered) << "outlier row " << r << " not covered";
    }
  }
  // And pruning is real: far fewer zones than total.
  EXPECT_LT(zones.size(), static_cast<std::size_t>(zm.num_zones()) / 2);
}

TEST(SortedIndexTest, ValueOrder) {
  const Column c = Column::FromInt32("c", {30, 10, 20});
  const SortedIndex idx(c.View());
  ASSERT_EQ(idx.size(), 3);
  EXPECT_DOUBLE_EQ(idx.ValueAt(0), 10.0);
  EXPECT_EQ(idx.RowAt(0), 1);
  EXPECT_DOUBLE_EQ(idx.ValueAt(2), 30.0);
  EXPECT_EQ(idx.RowAt(2), 0);
}

TEST(SortedIndexTest, LowerBound) {
  const Column c = Column::FromInt32("c", {10, 20, 30, 30, 40});
  const SortedIndex idx(c.View());
  EXPECT_EQ(idx.LowerBound(5.0), 0);
  EXPECT_EQ(idx.LowerBound(30.0), 2);
  EXPECT_EQ(idx.LowerBound(31.0), 4);
  EXPECT_EQ(idx.LowerBound(99.0), 5);
}

TEST(SortedIndexTest, RowsInValueRangeMatchesScan) {
  const Column c = storage::GenUniformInt32("c", 2000, 0, 999, 11);
  const SortedIndex idx(c.View());
  const auto rows = idx.RowsInValueRange(100.0, 150.0);
  // Reference scan.
  std::int64_t expected = 0;
  for (RowId r = 0; r < 2000; ++r) {
    const int v = c.View().GetInt32(r);
    if (v >= 100 && v <= 150) {
      ++expected;
    }
  }
  EXPECT_EQ(static_cast<std::int64_t>(rows.size()), expected);
  EXPECT_EQ(idx.CountInValueRange(100.0, 150.0), expected);
  for (const RowId r : rows) {
    const int v = c.View().GetInt32(r);
    EXPECT_GE(v, 100);
    EXPECT_LE(v, 150);
  }
}

TEST(SortedIndexTest, EmptyRangeYieldsNothing) {
  const Column c = Column::FromInt32("c", {1, 2, 3});
  const SortedIndex idx(c.View());
  EXPECT_TRUE(idx.RowsInValueRange(10.0, 20.0).empty());
  EXPECT_EQ(idx.CountInValueRange(10.0, 20.0), 0);
}

TEST(LevelIndexSetTest, BuildsLazilyAndCounts) {
  const Column c = storage::GenUniformInt32("c", 1 << 14, 0, 999, 3);
  sampling::SampleHierarchy hierarchy(c.View());
  LevelIndexSet set(&hierarchy, 1024);
  EXPECT_FALSE(set.HasZoneMap(0));
  const ZoneMap& zm = set.ZoneMapAt(0);
  EXPECT_GT(zm.num_zones(), 0);
  EXPECT_TRUE(set.HasZoneMap(0));
  EXPECT_EQ(set.stats().zone_map_builds, 1);
  set.ZoneMapAt(0);  // Cached.
  EXPECT_EQ(set.stats().zone_map_builds, 1);
  EXPECT_EQ(set.stats().zone_map_uses, 2);
}

TEST(LevelIndexSetTest, PerLevelIndexesAreIndependent) {
  const Column c = storage::GenUniformInt32("c", 1 << 14, 0, 999, 3);
  sampling::SampleHierarchy hierarchy(c.View());
  ASSERT_GT(hierarchy.num_levels(), 2);
  LevelIndexSet set(&hierarchy);
  const SortedIndex& l0 = set.SortedAt(0);
  const SortedIndex& l2 = set.SortedAt(2);
  EXPECT_EQ(l0.size(), hierarchy.LevelRows(0));
  EXPECT_EQ(l2.size(), hierarchy.LevelRows(2));
  EXPECT_FALSE(set.HasSorted(1));
  EXPECT_EQ(set.stats().sorted_builds, 2);
}

TEST(LevelIndexSetTest, SampleLevelIndexIsConsistentWithSample) {
  const Column c = storage::GenUniformInt32("c", 1 << 12, 0, 99, 5);
  sampling::SampleHierarchy hierarchy(c.View());
  LevelIndexSet set(&hierarchy);
  const int level = std::min(2, hierarchy.num_levels() - 1);
  const SortedIndex& idx = set.SortedAt(level);
  const auto view = hierarchy.LevelView(level);
  for (std::int64_t i = 1; i < idx.size(); ++i) {
    EXPECT_LE(idx.ValueAt(i - 1), idx.ValueAt(i));
  }
  // Every indexed row maps back into the sample view's range.
  for (std::int64_t i = 0; i < idx.size(); ++i) {
    EXPECT_LT(idx.RowAt(i), view.row_count());
  }
}

}  // namespace
}  // namespace dbtouch::index
