// Unit and property tests for the view system and touch->tuple mapping.

#include <gtest/gtest.h>

#include <memory>

#include "touch/data_object_view.h"
#include "touch/touch_mapper.h"
#include "touch/view.h"

namespace dbtouch::touch {
namespace {

using sim::PointCm;

TEST(RectTest, ContainsEdgesInclusive) {
  const RectCm r{1.0, 2.0, 3.0, 4.0};
  EXPECT_TRUE(r.Contains(PointCm{1.0, 2.0}));
  EXPECT_TRUE(r.Contains(PointCm{4.0, 6.0}));
  EXPECT_TRUE(r.Contains(PointCm{2.0, 3.0}));
  EXPECT_FALSE(r.Contains(PointCm{0.9, 3.0}));
  EXPECT_FALSE(r.Contains(PointCm{2.0, 6.1}));
}

TEST(ViewTest, AddChildSetsParent) {
  View root("root", RectCm{0, 0, 20, 15});
  View* child = root.AddChild(
      std::make_unique<View>("child", RectCm{2, 3, 5, 5}));
  EXPECT_EQ(child->parent(), &root);
  EXPECT_EQ(root.children().size(), 1u);
}

TEST(ViewTest, RemoveChildReturnsOwnership) {
  View root("root", RectCm{0, 0, 20, 15});
  View* child = root.AddChild(
      std::make_unique<View>("child", RectCm{2, 3, 5, 5}));
  auto removed = root.RemoveChild(child);
  ASSERT_NE(removed, nullptr);
  EXPECT_EQ(removed->parent(), nullptr);
  EXPECT_TRUE(root.children().empty());
  EXPECT_EQ(root.RemoveChild(child), nullptr);  // Already gone.
}

TEST(ViewTest, HitTestFindsDeepestView) {
  View root("root", RectCm{0, 0, 20, 15});
  View* mid = root.AddChild(
      std::make_unique<View>("mid", RectCm{5, 5, 10, 8}));
  View* inner = mid->AddChild(
      std::make_unique<View>("inner", RectCm{2, 2, 3, 3}));
  EXPECT_EQ(root.HitTest(PointCm{1, 1}), &root);
  EXPECT_EQ(root.HitTest(PointCm{6, 6}), mid);
  EXPECT_EQ(root.HitTest(PointCm{8, 8}), inner);
  EXPECT_EQ(root.HitTest(PointCm{25, 5}), nullptr);
}

TEST(ViewTest, HitTestTopmostSiblingWins) {
  View root("root", RectCm{0, 0, 20, 15});
  root.AddChild(std::make_unique<View>("below", RectCm{2, 2, 6, 6}));
  View* above = root.AddChild(
      std::make_unique<View>("above", RectCm{4, 4, 6, 6}));
  EXPECT_EQ(root.HitTest(PointCm{5, 5}), above);  // Overlap region.
}

TEST(ViewTest, CoordinateRoundTrip) {
  View root("root", RectCm{0, 0, 20, 15});
  View* mid = root.AddChild(
      std::make_unique<View>("mid", RectCm{5, 5, 10, 8}));
  View* inner = mid->AddChild(
      std::make_unique<View>("inner", RectCm{2, 2, 3, 3}));
  const PointCm screen{8.5, 9.0};
  const PointCm local = inner->ScreenToLocal(screen);
  EXPECT_DOUBLE_EQ(local.x, 1.5);
  EXPECT_DOUBLE_EQ(local.y, 2.0);
  const PointCm back = inner->LocalToScreen(local);
  EXPECT_DOUBLE_EQ(back.x, screen.x);
  EXPECT_DOUBLE_EQ(back.y, screen.y);
}

TEST(DataObjectViewTest, ColumnObjectProperties) {
  DataObjectView col("c", RectCm{1, 1, 2, 10}, ObjectKind::kColumn, 1000000,
                     1);
  EXPECT_EQ(col.kind(), ObjectKind::kColumn);
  EXPECT_EQ(col.tuple_count(), 1000000);
  EXPECT_DOUBLE_EQ(col.tuple_axis_extent(), 10.0);
  EXPECT_DOUBLE_EQ(col.attribute_axis_extent(), 2.0);
}

TEST(DataObjectViewTest, FlipOrientationSwapsAxes) {
  DataObjectView col("c", RectCm{1, 1, 2, 10}, ObjectKind::kColumn, 100, 1);
  col.FlipOrientation();
  EXPECT_EQ(col.orientation(), Orientation::kHorizontal);
  EXPECT_DOUBLE_EQ(col.tuple_axis_extent(), 10.0);  // Still 10 along x now.
  EXPECT_DOUBLE_EQ(col.frame().width, 10.0);
  EXPECT_DOUBLE_EQ(col.frame().height, 2.0);
  col.FlipOrientation();
  EXPECT_EQ(col.orientation(), Orientation::kVertical);
}

TEST(DataObjectViewTest, ZoomScalesAboutCenter) {
  DataObjectView col("c", RectCm{4, 2, 2, 10}, ObjectKind::kColumn, 100, 1);
  const PointCm before = col.frame().center();
  col.ApplyZoom(2.0, 0.5, 40.0);
  const PointCm after = col.frame().center();
  EXPECT_NEAR(before.x, after.x, 1e-9);
  EXPECT_NEAR(before.y, after.y, 1e-9);
  EXPECT_DOUBLE_EQ(col.frame().height, 20.0);
  EXPECT_DOUBLE_EQ(col.frame().width, 4.0);
}

TEST(DataObjectViewTest, ZoomClampsToBounds) {
  DataObjectView col("c", RectCm{4, 2, 2, 10}, ObjectKind::kColumn, 100, 1);
  col.ApplyZoom(100.0, 0.5, 25.0);
  EXPECT_DOUBLE_EQ(col.frame().height, 25.0);
  col.ApplyZoom(0.0001, 0.5, 25.0);
  EXPECT_DOUBLE_EQ(col.frame().width, 0.5);
}

TEST(DataObjectViewTest, Binding) {
  DataObjectView v("v", RectCm{0, 0, 2, 10}, ObjectKind::kColumn, 100, 1);
  v.BindColumn("sky", 3);
  EXPECT_EQ(v.table_name(), "sky");
  ASSERT_TRUE(v.column_index().has_value());
  EXPECT_EQ(*v.column_index(), 3u);
  v.BindTable("sky");
  EXPECT_FALSE(v.column_index().has_value());
}

TEST(TouchMapperTest, RuleOfThreeMatchesPaperFormula) {
  // id = n * t / o (paper Section 2.4).
  EXPECT_EQ(MapPositionToRow(5.0, 10.0, 10'000'000), 5'000'000);
  EXPECT_EQ(MapPositionToRow(0.0, 10.0, 1000), 0);
  EXPECT_EQ(MapPositionToRow(2.5, 10.0, 1000), 250);
}

TEST(TouchMapperTest, ClampsToValidRows) {
  EXPECT_EQ(MapPositionToRow(10.0, 10.0, 1000), 999);   // Bottom edge.
  EXPECT_EQ(MapPositionToRow(11.0, 10.0, 1000), 999);   // Past the edge.
  EXPECT_EQ(MapPositionToRow(-1.0, 10.0, 1000), 0);     // Above the top.
  EXPECT_EQ(MapPositionToRow(5.0, 0.0, 1000), 0);       // Degenerate size.
  EXPECT_EQ(MapPositionToRow(5.0, 10.0, 0), 0);         // Empty column.
}

TEST(TouchMapperTest, RowToPositionInvertsWithinOnePosition) {
  const std::int64_t n = 10'000'000;
  const double o = 10.0;
  for (const storage::RowId row : {0L, 123'456L, 5'000'000L, 9'999'999L}) {
    const double t = RowToPosition(row, o, n);
    EXPECT_EQ(MapPositionToRow(t, o, n), row);
  }
}

TEST(TouchMapperTest, VerticalColumnUsesY) {
  DataObjectView col("c", RectCm{0, 0, 2, 10}, ObjectKind::kColumn, 1000, 1);
  const TouchMapping m = MapTouch(col, PointCm{1.0, 2.5});
  EXPECT_EQ(m.row, 250);
  EXPECT_EQ(m.attribute, 0u);
}

TEST(TouchMapperTest, HorizontalColumnUsesX) {
  DataObjectView col("c", RectCm{0, 0, 2, 10}, ObjectKind::kColumn, 1000, 1);
  col.FlipOrientation();  // Now 10 wide, 2 tall.
  const TouchMapping m = MapTouch(col, PointCm{2.5, 1.0});
  EXPECT_EQ(m.row, 250);
}

TEST(TouchMapperTest, TableMapsAttributeFromCrossAxis) {
  // 4-attribute table, 8cm wide: each attribute band is 2cm.
  DataObjectView table("t", RectCm{0, 0, 8, 10}, ObjectKind::kTable, 1000,
                       4);
  EXPECT_EQ(MapTouch(table, PointCm{0.5, 5.0}).attribute, 0u);
  EXPECT_EQ(MapTouch(table, PointCm{3.0, 5.0}).attribute, 1u);
  EXPECT_EQ(MapTouch(table, PointCm{7.9, 5.0}).attribute, 3u);
  EXPECT_EQ(MapTouch(table, PointCm{3.0, 5.0}).row, 500);
}

TEST(TouchMapperTest, RotatedTableKeepsMappingConsistent) {
  // Paper: "when we rotate an object ... touches and identifiers
  // calculated relative to the object view are not affected."
  DataObjectView table("t", RectCm{0, 0, 8, 10}, ObjectKind::kTable, 1000,
                       4);
  const storage::RowId row_before = MapTouch(table, PointCm{3.0, 5.0}).row;
  table.FlipOrientation();  // Now 10 wide, 8 tall; x is the tuple axis.
  const TouchMapping after = MapTouch(table, PointCm{5.0, 3.0});
  EXPECT_EQ(after.row, row_before);
  EXPECT_EQ(after.attribute, 1u);
}

TEST(TouchMapperTest, TuplesPerPosition) {
  // 10^7 tuples on a 10cm object at 52 positions/cm: ~19231 tuples/touch.
  const double tpp = TuplesPerPosition(10'000'000, 10.0, 52.0);
  EXPECT_NEAR(tpp, 19230.8, 1.0);
  // Small data on a large object: every tuple addressable -> 1.
  EXPECT_DOUBLE_EQ(TuplesPerPosition(100, 10.0, 52.0), 1.0);
}

// Property sweep: mapping is monotonic in touch position and covers the
// full row range, for several object sizes and tuple counts.
class MapperPropertyTest
    : public testing::TestWithParam<std::tuple<double, std::int64_t>> {};

TEST_P(MapperPropertyTest, MonotonicAndCovering) {
  const auto [extent, n] = GetParam();
  storage::RowId prev = -1;
  const int steps = 500;
  for (int i = 0; i <= steps; ++i) {
    const double t = extent * static_cast<double>(i) / steps;
    const storage::RowId row = MapPositionToRow(t, extent, n);
    EXPECT_GE(row, prev) << "mapping must be monotonic";
    EXPECT_GE(row, 0);
    EXPECT_LT(row, n);
    prev = row;
  }
  EXPECT_EQ(MapPositionToRow(0.0, extent, n), 0);
  EXPECT_EQ(MapPositionToRow(extent, extent, n), n - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MapperPropertyTest,
    testing::Combine(testing::Values(1.5, 10.0, 24.0),
                     testing::Values<std::int64_t>(10, 1000, 10'000'000)));

}  // namespace
}  // namespace dbtouch::touch
