#include "touch/view.h"

#include "common/macros.h"

namespace dbtouch::touch {

View::View(std::string name, RectCm frame)
    : name_(std::move(name)), frame_(frame) {}

View* View::AddChild(std::unique_ptr<View> child) {
  DBTOUCH_CHECK(child != nullptr);
  DBTOUCH_CHECK(child->parent_ == nullptr);
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

std::unique_ptr<View> View::RemoveChild(View* child) {
  for (auto it = children_.begin(); it != children_.end(); ++it) {
    if (it->get() == child) {
      std::unique_ptr<View> out = std::move(*it);
      children_.erase(it);
      out->parent_ = nullptr;
      return out;
    }
  }
  return nullptr;
}

View* View::HitTest(const PointCm& point) {
  const RectCm self{0.0, 0.0, frame_.width, frame_.height};
  if (!self.Contains(point)) {
    return nullptr;
  }
  // Topmost (last added) child wins.
  for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
    View* child = it->get();
    if (View* hit = child->HitTest(ToChild(*child, point))) {
      return hit;
    }
  }
  return this;
}

PointCm View::ToChild(const View& child, const PointCm& point) const {
  DBTOUCH_CHECK(child.parent_ == this);
  return PointCm{point.x - child.frame_.x, point.y - child.frame_.y};
}

PointCm View::ScreenToLocal(const PointCm& screen_point) const {
  if (parent_ == nullptr) {
    return screen_point;
  }
  const PointCm in_parent = parent_->ScreenToLocal(screen_point);
  return PointCm{in_parent.x - frame_.x, in_parent.y - frame_.y};
}

PointCm View::LocalToScreen(const PointCm& local_point) const {
  PointCm p = local_point;
  const View* v = this;
  while (v->parent_ != nullptr) {
    p.x += v->frame_.x;
    p.y += v->frame_.y;
    v = v->parent_;
  }
  return p;
}

}  // namespace dbtouch::touch
