// View system: "dbTouch exploits the view concept of modern touch-based
// operating systems. Views are placeholders for visual objects ... each
// view can be placed in a master view, forming hierarchies" (paper
// Section 2.4 "Object Views").
//
// Frames are expressed in the parent's coordinate space, in centimetres
// (x right, y down). The root view's space is the screen.

#ifndef DBTOUCH_TOUCH_VIEW_H_
#define DBTOUCH_TOUCH_VIEW_H_

#include <memory>
#include <string>
#include <vector>

#include "sim/touch_event.h"

namespace dbtouch::touch {

using sim::PointCm;

/// Axis-aligned rectangle in cm. `x`/`y` is the top-left corner.
struct RectCm {
  double x = 0.0;
  double y = 0.0;
  double width = 0.0;
  double height = 0.0;

  bool Contains(const PointCm& p) const {
    return p.x >= x && p.x <= x + width && p.y >= y && p.y <= y + height;
  }

  PointCm center() const { return PointCm{x + width / 2.0, y + height / 2.0}; }

  friend bool operator==(const RectCm&, const RectCm&) = default;
};

/// A node in the view hierarchy. Owns its children.
class View {
 public:
  View(std::string name, RectCm frame);
  virtual ~View() = default;

  View(const View&) = delete;
  View& operator=(const View&) = delete;

  const std::string& name() const { return name_; }
  const RectCm& frame() const { return frame_; }
  void set_frame(const RectCm& frame) { frame_ = frame; }

  View* parent() const { return parent_; }
  const std::vector<std::unique_ptr<View>>& children() const {
    return children_;
  }

  /// Adds `child` (frame in this view's coordinates); returns a borrowed
  /// pointer for convenience.
  View* AddChild(std::unique_ptr<View> child);

  /// Removes and returns the child, or nullptr if not a direct child.
  std::unique_ptr<View> RemoveChild(View* child);

  /// Deepest descendant (or this view) containing `point`, expressed in
  /// this view's own coordinate space; nullptr when outside. Later-added
  /// siblings sit on top and win ties, matching UIKit.
  View* HitTest(const PointCm& point);

  /// Converts a point in this view's space to the child's local space.
  PointCm ToChild(const View& child, const PointCm& point) const;

  /// Converts a point in root (screen) space to this view's local space by
  /// walking the ancestor chain.
  PointCm ScreenToLocal(const PointCm& screen_point) const;

  /// Converts a local point to root (screen) space.
  PointCm LocalToScreen(const PointCm& local_point) const;

 private:
  std::string name_;
  RectCm frame_;
  View* parent_ = nullptr;
  std::vector<std::unique_ptr<View>> children_;
};

}  // namespace dbtouch::touch

#endif  // DBTOUCH_TOUCH_VIEW_H_
