#include "touch/touch_mapper.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace dbtouch::touch {

storage::RowId MapPositionToRow(double t_cm, double extent_cm,
                                std::int64_t n) {
  if (n <= 0) {
    return 0;
  }
  if (extent_cm <= 0.0) {
    return 0;
  }
  const double id = static_cast<double>(n) * t_cm / extent_cm;
  const auto row = static_cast<storage::RowId>(std::floor(id));
  return std::clamp<storage::RowId>(row, 0, n - 1);
}

double RowToPosition(storage::RowId row, double extent_cm, std::int64_t n) {
  if (n <= 0) {
    return 0.0;
  }
  // Centre of the band of positions that maps to `row`.
  return (static_cast<double>(row) + 0.5) * extent_cm /
         static_cast<double>(n);
}

TouchMapping MapTouch(const DataObjectView& object, const PointCm& local) {
  TouchMapping out;
  const bool vertical = object.orientation() == Orientation::kVertical;
  const double t = vertical ? local.y : local.x;
  out.row = MapPositionToRow(t, object.tuple_axis_extent(),
                             object.tuple_count());
  if (object.kind() == ObjectKind::kTable && object.num_attributes() > 1) {
    const double cross = vertical ? local.x : local.y;
    const double cross_extent = object.attribute_axis_extent();
    if (cross_extent > 0.0) {
      const auto attrs = static_cast<double>(object.num_attributes());
      const auto idx = static_cast<std::int64_t>(
          std::floor(cross / cross_extent * attrs));
      out.attribute = static_cast<std::size_t>(std::clamp<std::int64_t>(
          idx, 0, static_cast<std::int64_t>(object.num_attributes()) - 1));
    }
  }
  return out;
}

double TuplesPerPosition(std::int64_t n, double extent_cm,
                         double positions_per_cm) {
  if (n <= 0 || extent_cm <= 0.0 || positions_per_cm <= 0.0) {
    return 1.0;
  }
  const double positions = extent_cm * positions_per_cm;
  return std::max(1.0, static_cast<double>(n) / positions);
}

}  // namespace dbtouch::touch
