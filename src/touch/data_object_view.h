// DataObjectView: a view that visualises a data object — "a column shape
// for an attribute or a fat rectangle shape for a table" (paper abstract).
// dbTouch "adds a number of properties to each view, e.g., the number of
// data entries in the underlying column or table, the data type(s), the
// data size" (Section 2.4); those properties are what the touch mapper
// needs to turn a location into a tuple identifier.

#ifndef DBTOUCH_TOUCH_DATA_OBJECT_VIEW_H_
#define DBTOUCH_TOUCH_DATA_OBJECT_VIEW_H_

#include <cstdint>
#include <optional>
#include <string>

#include "storage/types.h"
#include "touch/view.h"

namespace dbtouch::touch {

enum class ObjectKind : std::uint8_t {
  kColumn = 0,  // one attribute; one axis maps to tuples
  kTable = 1,   // whole relation; second axis maps to attributes
};

/// Which screen axis runs along the tuples. Vertical objects map y to
/// rows; the rotate gesture flips the orientation ("if a data object is
/// rotated such as it lies horizontally, then a horizontal slide is used
/// to scan through the data", Section 2.4).
enum class Orientation : std::uint8_t {
  kVertical = 0,
  kHorizontal = 1,
};

class DataObjectView : public View {
 public:
  DataObjectView(std::string name, RectCm frame, ObjectKind kind,
                 std::int64_t tuple_count, std::size_t num_attributes,
                 Orientation orientation = Orientation::kVertical);

  ObjectKind kind() const { return kind_; }
  std::int64_t tuple_count() const { return tuple_count_; }
  std::size_t num_attributes() const { return num_attributes_; }
  Orientation orientation() const { return orientation_; }

  /// Flips the orientation (rotate gesture / rotating the tablet).
  void FlipOrientation();

  /// Extent (cm) of the axis that maps to tuples.
  double tuple_axis_extent() const;
  /// Extent (cm) of the axis that maps to attributes (table objects).
  double attribute_axis_extent() const;

  /// Grows/shrinks the frame about its centre by `scale` (> 1 zoom-in,
  /// < 1 zoom-out), clamping the resulting size to
  /// [min_extent_cm, max_extent_cm] per axis.
  void ApplyZoom(double scale, double min_extent_cm, double max_extent_cm);

  /// Binding to the catalog: table name, plus the column index when this
  /// object visualises a single attribute.
  void BindTable(std::string table_name);
  void BindColumn(std::string table_name, std::size_t column_index);
  const std::string& table_name() const { return table_name_; }
  const std::optional<std::size_t>& column_index() const {
    return column_index_;
  }

 private:
  ObjectKind kind_;
  std::int64_t tuple_count_;
  std::size_t num_attributes_;
  Orientation orientation_;
  std::string table_name_;
  std::optional<std::size_t> column_index_;
};

}  // namespace dbtouch::touch

#endif  // DBTOUCH_TOUCH_DATA_OBJECT_VIEW_H_
