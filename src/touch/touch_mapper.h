// Touch -> tuple-identifier mapping (paper Section 2.4): "if the touch
// location is t, the size of the data object is o and the number of total
// tuples is n, then the tuple identifier we are looking for is
// id = n * t / o" — the Rule of Three.

#ifndef DBTOUCH_TOUCH_TOUCH_MAPPER_H_
#define DBTOUCH_TOUCH_TOUCH_MAPPER_H_

#include <cstdint>

#include "storage/types.h"
#include "touch/data_object_view.h"

namespace dbtouch::touch {

/// Result of mapping one touch on a data object.
struct TouchMapping {
  storage::RowId row = 0;
  /// Attribute index (always 0 for column objects; for table objects,
  /// derived from the cross-axis position).
  std::size_t attribute = 0;
};

/// Rule of Three: maps location `t_cm` along an axis of extent `extent_cm`
/// onto [0, n). Results clamp into the valid row range, so edge touches
/// land on the first/last tuple.
storage::RowId MapPositionToRow(double t_cm, double extent_cm,
                                std::int64_t n);

/// Inverse mapping: the axis position (cm) whose touch maps to `row`.
/// Used to place results on screen and by the prefetcher to convert
/// predicted positions back to rows.
double RowToPosition(storage::RowId row, double extent_cm, std::int64_t n);

/// Maps a touch in `object`'s local coordinates to (row, attribute),
/// honouring the object's orientation and kind (paper: vertical slide over
/// a table returns tuples; the attribute is chosen "by the relative width
/// of the touch location within the view").
TouchMapping MapTouch(const DataObjectView& object, const PointCm& local);

/// Touch granularity: base tuples represented by each distinct touchable
/// position ("how many tuples correspond to each touch", Section 2.5).
/// `positions_per_cm` comes from the device. Always >= 1.
double TuplesPerPosition(std::int64_t n, double extent_cm,
                         double positions_per_cm);

}  // namespace dbtouch::touch

#endif  // DBTOUCH_TOUCH_TOUCH_MAPPER_H_
