#include "touch/data_object_view.h"

#include <algorithm>

#include "common/macros.h"

namespace dbtouch::touch {

DataObjectView::DataObjectView(std::string name, RectCm frame, ObjectKind kind,
                               std::int64_t tuple_count,
                               std::size_t num_attributes,
                               Orientation orientation)
    : View(std::move(name), frame),
      kind_(kind),
      tuple_count_(tuple_count),
      num_attributes_(num_attributes),
      orientation_(orientation) {
  DBTOUCH_CHECK(tuple_count >= 0);
  DBTOUCH_CHECK(num_attributes >= 1);
}

void DataObjectView::FlipOrientation() {
  orientation_ = orientation_ == Orientation::kVertical
                     ? Orientation::kHorizontal
                     : Orientation::kVertical;
  // Rotating the shape swaps its visual extents about the same origin.
  RectCm f = frame();
  std::swap(f.width, f.height);
  set_frame(f);
}

double DataObjectView::tuple_axis_extent() const {
  return orientation_ == Orientation::kVertical ? frame().height
                                                : frame().width;
}

double DataObjectView::attribute_axis_extent() const {
  return orientation_ == Orientation::kVertical ? frame().width
                                                : frame().height;
}

void DataObjectView::ApplyZoom(double scale, double min_extent_cm,
                               double max_extent_cm) {
  DBTOUCH_CHECK(scale > 0.0);
  DBTOUCH_CHECK(min_extent_cm > 0.0 && min_extent_cm <= max_extent_cm);
  RectCm f = frame();
  const PointCm c = f.center();
  f.width = std::clamp(f.width * scale, min_extent_cm, max_extent_cm);
  f.height = std::clamp(f.height * scale, min_extent_cm, max_extent_cm);
  f.x = c.x - f.width / 2.0;
  f.y = c.y - f.height / 2.0;
  set_frame(f);
}

void DataObjectView::BindTable(std::string table_name) {
  table_name_ = std::move(table_name);
  column_index_.reset();
}

void DataObjectView::BindColumn(std::string table_name,
                                std::size_t column_index) {
  table_name_ = std::move(table_name);
  column_index_ = column_index;
}

}  // namespace dbtouch::touch
