#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/macros.h"

namespace dbtouch::obs {

void JsonWriter::Separate() {
  if (scopes_.empty()) {
    return;
  }
  if (key_pending_) {
    return;  // "key": <value> — the colon was already written.
  }
  if (has_member_.back()) {
    out_.push_back(',');
  }
  has_member_.back() = true;
}

void JsonWriter::BeginObject() {
  Separate();
  key_pending_ = false;
  out_.push_back('{');
  scopes_.push_back(Scope::kObject);
  has_member_.push_back(false);
}

void JsonWriter::EndObject() {
  DBTOUCH_CHECK(!scopes_.empty() && scopes_.back() == Scope::kObject);
  DBTOUCH_CHECK(!key_pending_);
  out_.push_back('}');
  scopes_.pop_back();
  has_member_.pop_back();
}

void JsonWriter::BeginArray() {
  Separate();
  key_pending_ = false;
  out_.push_back('[');
  scopes_.push_back(Scope::kArray);
  has_member_.push_back(false);
}

void JsonWriter::EndArray() {
  DBTOUCH_CHECK(!scopes_.empty() && scopes_.back() == Scope::kArray);
  DBTOUCH_CHECK(!key_pending_);
  out_.push_back(']');
  scopes_.pop_back();
  has_member_.pop_back();
}

void JsonWriter::Key(std::string_view key) {
  DBTOUCH_CHECK(!scopes_.empty() && scopes_.back() == Scope::kObject);
  DBTOUCH_CHECK(!key_pending_);
  Separate();
  Escaped(key);
  out_.push_back(':');
  key_pending_ = true;
}

void JsonWriter::String(std::string_view value) {
  Separate();
  key_pending_ = false;
  Escaped(value);
}

void JsonWriter::Int(std::int64_t value) {
  Separate();
  key_pending_ = false;
  out_ += std::to_string(value);
}

void JsonWriter::UInt(std::uint64_t value) {
  Separate();
  key_pending_ = false;
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  Separate();
  key_pending_ = false;
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  // %.17g round-trips any double but litters simple values with digits;
  // shortest-first: try increasing precision until the value round-trips.
  char buf[32];
  for (const int precision : {6, 12, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) {
      break;
    }
  }
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  Separate();
  key_pending_ = false;
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  Separate();
  key_pending_ = false;
  out_ += "null";
}

void JsonWriter::Escaped(std::string_view raw) {
  out_.push_back('"');
  for (const char c : raw) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out_ += buf;
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

}  // namespace dbtouch::obs
