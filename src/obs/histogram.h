// obs::Histogram — fixed log-spaced latency histogram for the hot path.
//
// The server used to keep a reservoir of raw latency samples; that capped
// how much history a long-lived server could represent and made percentiles
// reflect whichever samples survived the reservoir. A histogram has neither
// problem: every recorded value lands in a bucket, memory is fixed, and
// percentiles are exact at bucket resolution no matter how long the server
// runs.
//
// Bucket layout (HdrHistogram-style, microsecond values):
//   - values in [0, 2^kPrecisionBits) get one bucket each (exact);
//   - above that, each power-of-two octave is subdivided into
//     2^kPrecisionBits log-spaced buckets, so the relative quantisation
//     error is bounded by 2^-kPrecisionBits (~3.1% at 5 bits) at any
//     magnitude up to kMaxTrackableUs (values beyond clamp into the last
//     bucket).
//
// Concurrency: recording is wait-free — a relaxed atomic increment into a
// lock-striped counter bank (stripe picked by thread id) so concurrent
// server workers never contend on one cache line for hot buckets. Snapshot
// and Merge sum across stripes; snapshots are plain structs safe to copy
// around and serialise.

#ifndef DBTOUCH_OBS_HISTOGRAM_H_
#define DBTOUCH_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace dbtouch::obs {

class JsonWriter;

/// Coherent copy of a Histogram: plain counters, percentile math, JSON.
struct HistogramSnapshot {
  std::int64_t count = 0;
  std::int64_t sum = 0;
  /// Exact extremes (tracked outside the buckets, so p100 is not
  /// quantised).
  std::int64_t min = 0;
  std::int64_t max = 0;
  /// Dense bucket counts, index per Histogram::BucketIndex.
  std::vector<std::int64_t> buckets;

  /// Exact-bucket percentile: the lower bound of the bucket holding the
  /// p-th ranked value (p in [0, 1]). 0 when empty. p=1 returns the exact
  /// tracked max.
  std::int64_t Percentile(double p) const;

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// {"count":N,"sum":S,"min":m,"max":M,"mean":x,"p50":...,"p95":...,
  ///  "p99":...} plus, when `include_buckets`, a compact sparse
  ///  "buckets":[[lower_bound,count],...] array.
  void AppendJson(JsonWriter& writer, bool include_buckets = false) const;
};

class Histogram {
 public:
  /// Sub-bucket precision: relative error <= 2^-kPrecisionBits.
  static constexpr int kPrecisionBits = 5;
  static constexpr std::int64_t kSubBuckets = 1ll << kPrecisionBits;
  /// Largest distinguishable value (~1.1e12 us ≈ 13 days); larger values
  /// clamp into the final bucket.
  static constexpr int kMaxOctave = 40;
  static constexpr std::int64_t kNumBuckets =
      kSubBuckets + (kMaxOctave - kPrecisionBits) * kSubBuckets;
  /// Counter stripes; recording threads hash onto one.
  static constexpr int kStripes = 4;

  Histogram();

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Wait-free; negative values clamp to 0.
  void Record(std::int64_t value);

  /// Adds another histogram's counts into this one (not atomic as a whole;
  /// callers merge quiescent histograms).
  void Merge(const Histogram& other);

  HistogramSnapshot Snapshot() const;

  /// Discards all counts (tests / between bench regimes).
  void Reset();

  /// Bucket index for `value` (>= 0).
  static std::size_t BucketIndex(std::int64_t value);
  /// Smallest value mapping to bucket `index`.
  static std::int64_t BucketLowerBound(std::size_t index);

 private:
  struct alignas(64) Stripe {
    std::array<std::atomic<std::int64_t>, kNumBuckets> counts;
  };

  /// Monotone-max update with relaxed CAS.
  static void UpdateMax(std::atomic<std::int64_t>& slot, std::int64_t value);
  static void UpdateMin(std::atomic<std::int64_t>& slot, std::int64_t value);

  std::array<std::unique_ptr<Stripe>, kStripes> stripes_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{0};
  std::atomic<std::int64_t> max_{0};
};

}  // namespace dbtouch::obs

#endif  // DBTOUCH_OBS_HISTOGRAM_H_
