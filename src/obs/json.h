// Minimal JSON emitter for the observability layer. Every machine-readable
// artefact the server produces — ServerStatsSnapshot::ToJson, trace span
// dumps, the BENCH_*.json perf trajectory — goes through this one writer so
// the output is valid JSON by construction: commas, nesting and string
// escaping are handled by the writer, not by callers gluing strings.
//
// No parsing, no DOM, no allocation beyond the output string. Not a general
// JSON library; it emits exactly the subset the project needs.

#ifndef DBTOUCH_OBS_JSON_H_
#define DBTOUCH_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dbtouch::obs {

/// Streaming JSON writer with automatic comma placement. Usage:
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("executed"); w.Int(42);
///   w.Key("stages"); w.BeginArray(); ... w.EndArray();
///   w.EndObject();
///   std::string json = std::move(w).str();
///
/// Misnesting (EndObject without BeginObject, a bare value where a key is
/// required) is a programming error and asserts in debug builds.
class JsonWriter {
 public:
  JsonWriter() { out_.reserve(256); }

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Next member's key; must be inside an object.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(std::int64_t value);
  void UInt(std::uint64_t value);
  /// Non-finite doubles serialise as null (JSON has no NaN/Inf).
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Key + value in one call, for flat metric maps.
  void Field(std::string_view key, std::int64_t value) {
    Key(key);
    Int(value);
  }
  void Field(std::string_view key, double value) {
    Key(key);
    Double(value);
  }
  void Field(std::string_view key, std::string_view value) {
    Key(key);
    String(value);
  }
  /// Without this overload a string literal or C string would prefer the
  /// bool overload (pointer->bool is a standard conversion, ->string_view
  /// is user-defined) and serialise as `true`.
  void Field(std::string_view key, const char* value) {
    Key(key);
    String(value);
  }
  void Field(std::string_view key, bool value) {
    Key(key);
    Bool(value);
  }

  /// The finished document. Call once, after the root value is closed.
  std::string str() && { return std::move(out_); }
  const std::string& view() const { return out_; }

 private:
  enum class Scope : std::uint8_t { kObject, kArray };

  /// Emits the separating comma before a value/key when needed.
  void Separate();
  void Escaped(std::string_view raw);

  std::string out_;
  std::vector<Scope> scopes_;
  /// Whether the current scope already holds a member (comma needed).
  std::vector<bool> has_member_;
  /// A Key() was written and its value is pending.
  bool key_pending_ = false;
};

}  // namespace dbtouch::obs

#endif  // DBTOUCH_OBS_JSON_H_
