#include "obs/histogram.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "obs/json.h"

namespace dbtouch::obs {

namespace {

/// Stripe for the calling thread: round-robin assignment at first use, so
/// a worker pool spreads evenly without hashing pointers.
int ThreadStripe() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned mine =
      next.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(mine % Histogram::kStripes);
}

}  // namespace

std::size_t Histogram::BucketIndex(std::int64_t value) {
  if (value < 0) {
    value = 0;
  }
  if (value < kSubBuckets) {
    return static_cast<std::size_t>(value);
  }
  const int octave =
      std::bit_width(static_cast<std::uint64_t>(value)) - 1;
  if (octave >= kMaxOctave) {
    return static_cast<std::size_t>(kNumBuckets - 1);
  }
  const std::int64_t sub =
      (value >> (octave - kPrecisionBits)) - kSubBuckets;
  return static_cast<std::size_t>(
      kSubBuckets + (octave - kPrecisionBits) * kSubBuckets + sub);
}

std::int64_t Histogram::BucketLowerBound(std::size_t index) {
  const auto i = static_cast<std::int64_t>(index);
  if (i < kSubBuckets) {
    return i;
  }
  const std::int64_t band = (i - kSubBuckets) / kSubBuckets;
  const std::int64_t sub = (i - kSubBuckets) % kSubBuckets;
  return (kSubBuckets + sub) << band;
}

Histogram::Histogram() : min_(std::numeric_limits<std::int64_t>::max()) {
  for (auto& stripe : stripes_) {
    stripe = std::make_unique<Stripe>();
    for (auto& c : stripe->counts) {
      c.store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::UpdateMax(std::atomic<std::int64_t>& slot,
                          std::int64_t value) {
  std::int64_t seen = slot.load(std::memory_order_relaxed);
  while (value > seen &&
         !slot.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::UpdateMin(std::atomic<std::int64_t>& slot,
                          std::int64_t value) {
  std::int64_t seen = slot.load(std::memory_order_relaxed);
  while (value < seen &&
         !slot.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::Record(std::int64_t value) {
  if (value < 0) {
    value = 0;
  }
  stripes_[ThreadStripe()]->counts[BucketIndex(value)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  UpdateMax(max_, value);
  UpdateMin(min_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (int s = 0; s < kStripes; ++s) {
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      const std::int64_t n =
          other.stripes_[s]->counts[b].load(std::memory_order_relaxed);
      if (n != 0) {
        stripes_[0]->counts[b].fetch_add(n, std::memory_order_relaxed);
      }
    }
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  UpdateMax(max_, other.max_.load(std::memory_order_relaxed));
  UpdateMin(min_, other.min_.load(std::memory_order_relaxed));
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.buckets.assign(kNumBuckets, 0);
  for (int s = 0; s < kStripes; ++s) {
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      snapshot.buckets[b] +=
          stripes_[s]->counts[b].load(std::memory_order_relaxed);
    }
  }
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  snapshot.max = max_.load(std::memory_order_relaxed);
  const std::int64_t min = min_.load(std::memory_order_relaxed);
  snapshot.min =
      snapshot.count == 0 || min == std::numeric_limits<std::int64_t>::max()
          ? 0
          : min;
  if (snapshot.count == 0) {
    snapshot.max = 0;
  }
  return snapshot;
}

void Histogram::Reset() {
  for (auto& stripe : stripes_) {
    for (auto& c : stripe->counts) {
      c.store(0, std::memory_order_relaxed);
    }
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<std::int64_t>::max(),
             std::memory_order_relaxed);
}

std::int64_t HistogramSnapshot::Percentile(double p) const {
  if (count <= 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 1.0);
  if (p >= 1.0) {
    return max;  // Exact: the extremes are tracked outside the buckets.
  }
  // Same rank convention as server::LatencyPercentile over raw samples:
  // the value at 0-based index p*(count-1) of the sorted sample list.
  const auto rank =
      static_cast<std::int64_t>(p * static_cast<double>(count - 1));
  std::int64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen > rank) {
      // Report the bucket's lower bound, clamped into the tracked range
      // so quantisation never reports below the true min or above max.
      return std::clamp(Histogram::BucketLowerBound(b), min, max);
    }
  }
  return max;
}

void HistogramSnapshot::AppendJson(JsonWriter& writer,
                                   bool include_buckets) const {
  writer.BeginObject();
  writer.Field("count", count);
  writer.Field("sum", sum);
  writer.Field("min", min);
  writer.Field("max", max);
  writer.Field("mean", Mean());
  writer.Field("p50", Percentile(0.50));
  writer.Field("p95", Percentile(0.95));
  writer.Field("p99", Percentile(0.99));
  if (include_buckets) {
    writer.Key("buckets");
    writer.BeginArray();
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      if (buckets[b] == 0) {
        continue;  // Sparse: most of the 1k+ buckets are empty.
      }
      writer.BeginArray();
      writer.Int(Histogram::BucketLowerBound(b));
      writer.Int(buckets[b]);
      writer.EndArray();
    }
    writer.EndArray();
  }
  writer.EndObject();
}

}  // namespace dbtouch::obs
