#include "obs/trace_recorder.h"

#include <algorithm>
#include <bit>
#include <chrono>

#include "obs/json.h"

namespace dbtouch::obs {

namespace {

/// Same timebase as server::SteadyNowUs (steady_clock micros), duplicated
/// here so obs does not depend on the server layer.
std::int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* SpanStageName(SpanStage stage) {
  switch (stage) {
    case SpanStage::kSubmitted:
      return "submitted";
    case SpanStage::kDispatched:
      return "dispatched";
    case SpanStage::kExecuting:
      return "executing";
    case SpanStage::kSuspended:
      return "suspended";
    case SpanStage::kParked:
      return "parked";
    case SpanStage::kFetchStarted:
      return "fetch_started";
    case SpanStage::kFetchDone:
      return "fetch_done";
    case SpanStage::kUnparked:
      return "unparked";
    case SpanStage::kResumed:
      return "resumed";
    case SpanStage::kCompleted:
      return "completed";
    case SpanStage::kShed:
      return "shed";
    case SpanStage::kPartial:
      return "partial";
    case SpanStage::kRefined:
      return "refined";
  }
  return "?";
}

TraceRecorder::TraceRecorder(const TraceRecorderConfig& config)
    : slots_(std::bit_ceil(std::max<std::size_t>(config.capacity, 2))),
      mask_(slots_.size() - 1),
      max_exemplars_(std::max(config.max_exemplars, 0)) {
  exemplars_.reserve(static_cast<std::size_t>(max_exemplars_));
}

void TraceRecorder::Record(SpanStage stage, std::int64_t quantum,
                           std::int64_t session, std::int64_t a,
                           std::int64_t b) {
  const std::uint64_t index = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[index & mask_];
  // Invalidate, write payload, publish: a reader comparing tickets across
  // its copy can only accept a slot whose payload it saw complete.
  slot.ticket.store(0, std::memory_order_release);
  slot.t_us.store(NowUs(), std::memory_order_relaxed);
  slot.quantum.store(quantum, std::memory_order_relaxed);
  slot.session.store(session, std::memory_order_relaxed);
  slot.stage.store(static_cast<std::uint8_t>(stage),
                   std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.ticket.store(index + 1, std::memory_order_release);
}

void TraceRecorder::NoteCompletion(const SlowQuantumExemplar& exemplar) {
  if (max_exemplars_ == 0) {
    return;
  }
  // Almost every completion loses to the retained set and exits here with
  // one relaxed load. The floor stays at -1 until the set is full, so the
  // fast path never consults the (mutex-guarded) vector itself.
  const std::int64_t floor =
      exemplar_floor_.load(std::memory_order_relaxed);
  if (floor >= 0 && exemplar.e2e_us <= floor) {
    return;
  }
  const std::lock_guard<std::mutex> lock(exemplar_mu_);
  if (static_cast<int>(exemplars_.size()) < max_exemplars_) {
    exemplars_.push_back(exemplar);
  } else {
    // Replace the current minimum if beaten (re-checked under the lock).
    auto worst = std::min_element(
        exemplars_.begin(), exemplars_.end(),
        [](const auto& x, const auto& y) { return x.e2e_us < y.e2e_us; });
    if (exemplar.e2e_us <= worst->e2e_us) {
      return;
    }
    *worst = exemplar;
  }
  if (static_cast<int>(exemplars_.size()) >= max_exemplars_) {
    const auto floor = std::min_element(
        exemplars_.begin(), exemplars_.end(),
        [](const auto& x, const auto& y) { return x.e2e_us < y.e2e_us; });
    exemplar_floor_.store(floor->e2e_us, std::memory_order_relaxed);
  }
}

std::vector<SpanEvent> TraceRecorder::Snapshot() const {
  std::vector<SpanEvent> events;
  events.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    const std::uint64_t before = slot.ticket.load(std::memory_order_acquire);
    if (before == 0) {
      continue;  // Never written.
    }
    SpanEvent event;
    event.t_us = slot.t_us.load(std::memory_order_relaxed);
    event.quantum = slot.quantum.load(std::memory_order_relaxed);
    event.session = slot.session.load(std::memory_order_relaxed);
    event.stage =
        static_cast<SpanStage>(slot.stage.load(std::memory_order_relaxed));
    event.a = slot.a.load(std::memory_order_relaxed);
    event.b = slot.b.load(std::memory_order_relaxed);
    const std::uint64_t after = slot.ticket.load(std::memory_order_acquire);
    if (after != before) {
      continue;  // Torn: a writer replaced the slot mid-copy.
    }
    event.ticket = before;
    events.push_back(event);
  }
  std::sort(events.begin(), events.end(),
            [](const SpanEvent& x, const SpanEvent& y) {
              return x.ticket < y.ticket;
            });
  return events;
}

std::vector<SlowQuantumExemplar> TraceRecorder::Exemplars() const {
  const std::lock_guard<std::mutex> lock(exemplar_mu_);
  std::vector<SlowQuantumExemplar> sorted = exemplars_;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& x, const auto& y) { return x.e2e_us > y.e2e_us; });
  return sorted;
}

void TraceRecorder::DumpJson(JsonWriter& writer) const {
  const std::vector<SpanEvent> events = Snapshot();
  const std::vector<SlowQuantumExemplar> exemplars = Exemplars();
  writer.BeginObject();
  writer.Field("capacity", static_cast<std::int64_t>(slots_.size()));
  writer.Field("recorded", static_cast<std::int64_t>(recorded()));
  writer.Field(
      "dropped",
      static_cast<std::int64_t>(
          recorded() > slots_.size() ? recorded() - slots_.size() : 0));
  writer.Key("events");
  writer.BeginArray();
  for (const SpanEvent& event : events) {
    writer.BeginObject();
    writer.Field("seq", static_cast<std::int64_t>(event.ticket));
    writer.Field("t_us", event.t_us);
    writer.Field("stage", SpanStageName(event.stage));
    writer.Field("quantum", event.quantum);
    writer.Field("session", event.session);
    if (event.a != 0 || event.b != 0) {
      writer.Field("a", event.a);
      writer.Field("b", event.b);
    }
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("slow_quanta");
  writer.BeginArray();
  for (const SlowQuantumExemplar& exemplar : exemplars) {
    writer.BeginObject();
    writer.Field("quantum", exemplar.quantum);
    writer.Field("session", exemplar.session);
    writer.Field("e2e_us", exemplar.e2e_us);
    writer.Field("queue_wait_us", exemplar.queue_wait_us);
    writer.Field("exec_us", exemplar.exec_us);
    writer.Field("fetch_stall_us", exemplar.fetch_stall_us);
    writer.Field("missed", exemplar.missed);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
}

std::string TraceRecorder::DumpJson() const {
  JsonWriter writer;
  DumpJson(writer);
  return std::move(writer).str();
}

}  // namespace dbtouch::obs
