// obs::TraceRecorder — per-quantum lifecycle spans in a fixed-capacity ring.
//
// Every touch quantum moving through the server traces a lifecycle:
//
//   submit -> (released) -> dispatched -> executing
//              -> (suspended -> fetch-start -> fetch-done -> unparked
//                  -> dispatched -> executing)*      [async cold faults]
//              -> completed | shed
//
// The recorder captures each transition as one fixed-size SpanEvent with a
// steady-clock timestamp and (quantum, session) tags, written into a
// power-of-two ring with a single relaxed fetch_add for slot allocation —
// no lock on the hot path, writers never wait on readers or each other.
// When the ring wraps, the oldest events are overwritten: a postmortem
// always holds the most recent window.
//
// Disabled cost: call sites guard on a raw pointer (null when tracing is
// off), so the entire subsystem is one predictable branch per hook when
// disabled; the ring is not even allocated.
//
// Consistency: every SpanEvent field is an atomic written with relaxed
// stores between two release stores of the slot's ticket. Snapshot() reads
// the ticket before and after copying and discards slots whose ticket
// moved — a torn read is dropped, never misreported. (A writer lapping the
// ring exactly once during one copy could in principle go unnoticed; with
// capacity >= 2^14 that needs the reader to stall for a full ring rotation
// mid-copy, which postmortem tooling can tolerate.)
//
// Slow-quantum exemplars: completed quanta whose end-to-end latency tops
// the retained set are kept separately (a small mutex-guarded top-K — the
// completion path takes the mutex only when the quantum beats the current
// K-th worst, i.e. almost never), so the "what were the worst frames and
// where did their budget go" question survives ring wraparound.

#ifndef DBTOUCH_OBS_TRACE_RECORDER_H_
#define DBTOUCH_OBS_TRACE_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dbtouch::obs {

class JsonWriter;

enum class SpanStage : std::uint8_t {
  kSubmitted = 0,   // Quantum admitted to its session queue.
  kDispatched = 1,  // EDF scheduler handed it to a worker.
  kExecuting = 2,   // Worker entered the kernel for it.
  kSuspended = 3,   // Kernel parked it on cold blocks (a=block, b=count).
  kParked = 4,      // Scheduler parked the session on the fetch.
  kFetchStarted = 5,  // Fetcher began a provider read (a=block, b=count).
  kFetchDone = 6,     // Provider read settled (a=ok, b=wall_us).
  kUnparked = 7,      // Fetch completion made the session runnable.
  kResumed = 8,       // Worker re-entered the kernel after a stall.
  kCompleted = 9,     // Quantum finished (a=latency_us, b=missed).
  kShed = 10,         // Quantum dropped (a=reason, see ShedReason).
  kPartial = 11,      // Answered coarsely at deadline pressure.
  kRefined = 12,      // Refinement landed (a=latency_us, b=late).
};

/// a-tag of a kShed event.
enum class ShedReason : std::int64_t {
  kLate = 0,         // Popped hopelessly past its deadline.
  kFetchFailed = 1,  // Awaited fetch failed past bounded retries.
  kAdmission = 2,    // Rejected at admission (session queue overflow).
};

const char* SpanStageName(SpanStage stage);

/// One lifecycle transition. quantum == 0 for events that cannot be
/// attributed to a single quantum (fetch-queue reads serve whole sessions;
/// their session field carries the FetchQueue owner/tag instead).
struct SpanEvent {
  std::uint64_t ticket = 0;  // Global sequence, 1-based; orders events.
  std::int64_t t_us = 0;     // server::SteadyNowUs() timebase.
  std::int64_t quantum = 0;
  std::int64_t session = 0;
  SpanStage stage = SpanStage::kSubmitted;
  std::int64_t a = 0;  // Stage-specific detail (block, latency, ...).
  std::int64_t b = 0;
};

/// Compact per-quantum roll-up retained for the slowest completions.
struct SlowQuantumExemplar {
  std::int64_t quantum = 0;
  std::int64_t session = 0;
  std::int64_t e2e_us = 0;
  std::int64_t queue_wait_us = 0;
  std::int64_t exec_us = 0;
  std::int64_t fetch_stall_us = 0;
  bool missed = false;
};

struct TraceRecorderConfig {
  /// Ring capacity in events; rounded up to a power of two.
  std::size_t capacity = 1 << 14;
  /// Slowest completed quanta retained past wraparound.
  int max_exemplars = 32;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(const TraceRecorderConfig& config = {});

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Hot path: one fetch_add + seven relaxed stores. Safe from any thread.
  void Record(SpanStage stage, std::int64_t quantum, std::int64_t session,
              std::int64_t a = 0, std::int64_t b = 0);

  /// Offers a completed quantum's roll-up for exemplar retention.
  void NoteCompletion(const SlowQuantumExemplar& exemplar);

  /// Consistent-read copy of the ring, oldest first. Torn slots (being
  /// rewritten during the copy) are skipped.
  std::vector<SpanEvent> Snapshot() const;

  std::vector<SlowQuantumExemplar> Exemplars() const;

  /// Events recorded since construction (>= capacity means wrapped).
  std::uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  std::size_t capacity() const { return slots_.size(); }

  /// Full postmortem document: config, counters, every live span event and
  /// the slow-quantum exemplars.
  void DumpJson(JsonWriter& writer) const;
  std::string DumpJson() const;

 private:
  struct Slot {
    /// 0 = never written; otherwise 1 + the event's global index. Written
    /// (release) after the payload fields, re-checked by readers.
    std::atomic<std::uint64_t> ticket{0};
    std::atomic<std::int64_t> t_us{0};
    std::atomic<std::int64_t> quantum{0};
    std::atomic<std::int64_t> session{0};
    std::atomic<std::uint8_t> stage{0};
    std::atomic<std::int64_t> a{0};
    std::atomic<std::int64_t> b{0};
  };

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> next_{0};

  mutable std::mutex exemplar_mu_;
  std::vector<SlowQuantumExemplar> exemplars_;
  int max_exemplars_;
  /// Fast-path filter: e2e of the K-th worst retained exemplar; a
  /// completion below it skips the mutex entirely.
  std::atomic<std::int64_t> exemplar_floor_{-1};
};

}  // namespace dbtouch::obs

#endif  // DBTOUCH_OBS_TRACE_RECORDER_H_
