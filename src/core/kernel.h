// The dbTouch kernel: the per-touch pipeline of paper Figure 3.
//
//   Operating system (sim):  recognise touch
//   Gesture layer:           recognise gesture
//   dbTouch:                 map touch to data, execute
//
// "This flow is not per query as it is in database systems; instead,
// dbTouch goes through these steps for every touch input on a data
// object." The kernel owns the per-user half of the system: the view
// hierarchy, per-object operator state, the result stream and the session
// tracker. The data half — catalog, sample hierarchies, base zone maps —
// lives in a SharedState that many kernels may share (one per connected
// session in the touch server); a kernel constructed without one gets a
// private SharedState and behaves exactly like the paper's single-user
// system. It is the public API of the library: examples and benchmarks
// drive everything through it.
//
// Thread-safety: one kernel serves one session and is not internally
// synchronised — the touch server serialises each session's touches.
// Kernels sharing a SharedState may run on different threads because all
// shared artefacts are immutable after construction.

#ifndef DBTOUCH_CORE_KERNEL_H_
#define DBTOUCH_CORE_KERNEL_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/buffer_manager.h"
#include "cache/hash_table_cache.h"
#include "common/result.h"
#include "common/status.h"
#include "core/action.h"
#include "core/result_stream.h"
#include "core/session.h"
#include "core/shared_state.h"
#include "exec/groupby.h"
#include "exec/join.h"
#include "gesture/recognizer.h"
#include "layout/rotation.h"
#include "sampling/level_policy.h"
#include "sampling/sample_hierarchy.h"
#include "sim/touch_device.h"
#include "sim/touch_event.h"
#include "sim/virtual_clock.h"
#include "storage/catalog.h"
#include "touch/data_object_view.h"
#include "touch/touch_mapper.h"
#include "touch/view.h"

namespace dbtouch::obs {
class TraceRecorder;
}  // namespace dbtouch::obs

namespace dbtouch::core {

struct KernelConfig {
  sim::TouchDeviceConfig device;
  gesture::RecognizerConfig recognizer;
  sampling::SampleHierarchyConfig sampling;
  sampling::LevelPolicyConfig level_policy;
  /// Feed from the sample hierarchy level matching object size and gesture
  /// speed (paper Section 2.6). Off = always read base data; the
  /// ABL-SAMPLE benchmark flips this.
  bool use_sampling = true;
  /// How long results stay on screen before fading (Section 2.3).
  sim::Micros result_fade_us = 1'500'000;
  /// Zoom clamp for pinch gestures (cm per axis).
  double zoom_min_extent_cm = 1.0;
  double zoom_max_extent_cm = 25.0;
  /// Hard bound on entries read for one touch — the paper's "maximum
  /// possible wait time for a single touch regardless of the query and the
  /// data sizes" (Section 4). Summary bands truncate to it.
  std::int64_t max_rows_per_touch = 1'000'000;
  /// Rows converted per touch while an incremental layout rotation is in
  /// flight (Section 2.8: "changing the layout can be done in steps").
  std::int64_t rotation_rows_per_step = 65'536;
  /// Rotation gestures beyond this angle trigger the layout change.
  double rotation_trigger_rad = 0.8;
  /// Idle gap that splits query sessions.
  sim::Micros session_idle_gap_us = 3'000'000;
  /// Buffer pool for paged base-data reads. Applies to this kernel's
  /// private SharedState; when a SharedState is passed in (the touch
  /// server), that state's pool — and its budget — win.
  cache::BufferManagerConfig buffer;
  /// Route column-object reads through the SharedState's BufferManager:
  /// block-at-a-time pinned reads under the pool's byte budget, with
  /// gesture-aware admission. Off = the paper's raw whole-column
  /// pointers (unbounded residency).
  bool use_buffer_manager = true;
  /// Suspend instead of stall: when a touch needs blocks a slow tier has
  /// not delivered yet, OnTouchAsync returns kSuspended (with the blocks
  /// to fetch) rather than blocking inside the fault. Off = cold faults
  /// fill synchronously on the calling thread. Only sources that may_block
  /// (async providers) are affected either way; the touch server sets
  /// this from its async_fetch config.
  bool non_blocking_faults = false;
  /// Prefetch along the extrapolated slide path (Section 2.6): slide
  /// steps over a slow-tier column enqueue low-priority warm-up fetches
  /// for the blocks the finger is predicted to reach within the horizon.
  bool prefetch_enabled = true;
  double prefetch_horizon_s = 0.25;
  /// Warm-up fetches issued per slide step at most (bounds queue growth
  /// when the extrapolator predicts a long reach).
  int max_prefetch_blocks_per_touch = 8;
};

struct KernelStats {
  std::int64_t touch_events = 0;
  std::int64_t gesture_events = 0;
  std::int64_t taps = 0;
  std::int64_t slide_steps = 0;
  std::int64_t pinch_steps = 0;
  std::int64_t rotate_steps = 0;
  std::int64_t entries_returned = 0;
  std::int64_t rows_scanned = 0;
  /// Touches answered "no match possible" from the zone map alone,
  /// without reading the data.
  std::int64_t rows_pruned = 0;
  std::int64_t layout_rotations = 0;
  /// EnableJoin calls served with previously built hash tables from the
  /// session's HashTableCache (Section 2.9: "caching of hash tables ...
  /// can enhance future queries").
  std::int64_t join_cache_hits = 0;
  /// Wall time spent inside per-touch execution (ns), and its max over
  /// any single touch — the interactivity headline number.
  std::int64_t exec_wall_ns = 0;
  std::int64_t max_touch_wall_ns = 0;
  /// Async read path: quanta suspended on cold slow-tier blocks, gesture
  /// executions shed because a backing-store read failed past its bounded
  /// retries, and warm-up fetches requested along the extrapolated slide
  /// path.
  std::int64_t suspensions = 0;
  std::int64_t fetch_errors = 0;
  std::int64_t prefetch_requests = 0;
  /// Partial-answer path (Section 4's fidelity-for-latency trade): quanta
  /// answered coarsely from the resident sample level at deadline
  /// pressure, and refinement executions that later replaced those
  /// answers with full-fidelity results.
  std::int64_t partial_answers = 0;
  std::int64_t refinements = 0;
};

struct ObjectStats {
  std::int64_t touches = 0;
  std::int64_t entries_returned = 0;
  std::int64_t rows_scanned = 0;
  int last_level_used = 0;
};

/// Outcome of feeding one touch quantum through an async-mode kernel.
enum class TouchOutcome {
  kCompleted,  // All gesture work for the touch executed.
  kSuspended,  // Waiting on cold blocks; see the TouchStall.
};

/// Outcome of one RefineNext attempt.
enum class RefineOutcome {
  kIdle,       // No refinement queued.
  kRefined,    // Head refinement executed at full fidelity.
  kStillCold,  // Needed blocks still missing; `stall` filled.
};

/// What a suspended quantum waits on: blocks the slow tiers have not
/// delivered, grouped per paged source. A fat-table tuple probe that
/// misses on several attributes reports them all in ONE stall (one
/// suspend/resume round trip, one fetch ticket) instead of suspending per
/// attribute; sources sharing a block namespace (PAX columns of one
/// table) are deduplicated into a single entry. The caller starts every
/// entry's fetches (entry.source->StartFetch) and calls ResumePending
/// once all complete.
struct TouchStall {
  struct Entry {
    std::shared_ptr<storage::PagedColumnSource> source;
    std::vector<std::int64_t> blocks;
  };
  std::vector<Entry> entries;

  std::int64_t total_blocks() const {
    std::int64_t n = 0;
    for (const Entry& e : entries) {
      n += static_cast<std::int64_t>(e.blocks.size());
    }
    return n;
  }
};

class Kernel {
 public:
  /// `shared`: the data context this kernel explores. Omitted (nullptr), a
  /// private SharedState is created from `config.sampling` — the classic
  /// single-user setup. The touch server passes one SharedState to every
  /// session's kernel.
  explicit Kernel(const KernelConfig& config = {},
                  std::shared_ptr<SharedState> shared = nullptr);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // ---- Catalog & data objects -------------------------------------------

  storage::Catalog& catalog() { return shared_->catalog(); }
  const sim::TouchDevice& device() const { return device_; }
  sim::VirtualClock& clock() { return clock_; }
  const KernelConfig& config() const { return config_; }
  const std::shared_ptr<SharedState>& shared_state() const {
    return shared_;
  }

  /// Registers a table and is the usual way data enters the kernel.
  Status RegisterTable(std::shared_ptr<storage::Table> table);

  /// Creates a column-shaped data object bound to `table.column`, placed
  /// at `frame` on screen. Builds its sample hierarchy.
  Result<ObjectId> CreateColumnObject(const std::string& table,
                                      const std::string& column,
                                      const touch::RectCm& frame);

  /// Creates a fat-rectangle table object bound to the whole table.
  Result<ObjectId> CreateTableObject(const std::string& table,
                                     const touch::RectCm& frame);

  Status DestroyObject(ObjectId id);

  /// The object's view (frame, orientation, ...). Borrowed pointer, owned
  /// by the kernel's view hierarchy.
  Result<touch::DataObjectView*> object_view(ObjectId id);

  /// Ids of all live data objects, in creation order.
  std::vector<ObjectId> ListObjects() const;

  /// Sets what gestures on the object compute. Resets per-object operator
  /// state (a new choice of action starts a new logical query).
  Status SetAction(ObjectId id, const ActionConfig& action);

  /// Declares a slide-driven join between the bound columns of two column
  /// objects. Sliding over either feeds that side; matches stream out as
  /// results (Section 2.9).
  Status EnableJoin(ObjectId left, ObjectId right);

  // ---- The OS feed -------------------------------------------------------

  /// The per-touch pipeline. Advances the virtual clock to the event's
  /// timestamp, recognises gestures, maps and executes. Cold slow-tier
  /// blocks are faulted synchronously (the classic single-user path).
  void OnTouch(const sim::TouchEvent& event);

  /// Suspendable variant of OnTouch for the touch server's async read
  /// path. The recognizer consumes the event either way; gesture work
  /// that needs cold slow-tier blocks parks in the kernel's pending queue
  /// and kSuspended is returned with the blocks to fetch in `stall`. The
  /// caller starts the fetches and, when they complete, re-enters via
  /// ResumePending — which may suspend again (the next gesture misses on
  /// other blocks) or complete. With non_blocking_faults off this never
  /// suspends; `stall` may then be null.
  TouchOutcome OnTouchAsync(const sim::TouchEvent& event, TouchStall* stall);

  /// Re-attempts gesture work parked by a previous kSuspended outcome.
  TouchOutcome ResumePending(TouchStall* stall);

  /// Gesture work parked behind a cold fetch (a kSuspended not yet
  /// resumed to completion).
  bool has_pending_gestures() const { return !pending_gestures_.empty(); }

  /// Sheds the gesture stalled at the head of the pending queue (and its
  /// probe pins) — the escape hatch when its fetch fails permanently.
  /// Gestures queued behind it remain; call ResumePending to continue
  /// with them. Recognizer state is unaffected (it already consumed the
  /// touches); only the stalled execution is shed (counted as a kernel
  /// fetch error).
  void AbandonPending();

  // ---- Partial answers & progressive refinement (Section 4) --------------

  /// Deadline escape hatch: answers the gesture stalled at the head of the
  /// pending queue immediately from the lowest *resident* sample level
  /// (never faulting), emits the result with partial = true / refine_seq =
  /// 0, and queues a refinement that will re-execute the same touch at
  /// full fidelity once its blocks land. Returns false — leaving the
  /// pending queue untouched, so the caller parks classically — when the
  /// stalled gesture is not eligible: only stateless actions (plain scans
  /// and summaries) on non-joined column objects with a materialised
  /// sample level can be re-executed bit-identically later.
  bool AnswerPartialFromResident();

  /// Executes the oldest queued refinement whose object is still alive.
  /// kRefined: full-fidelity results appended, tagged with the attempt's
  /// refine_seq. kStillCold: blocks are still missing — `stall` names
  /// them; the caller fetches and retries. kIdle: nothing queued.
  RefineOutcome RefineNext(TouchStall* stall);

  /// Refinements queued behind partial answers not yet refined.
  bool has_refinements() const { return !refinements_.empty(); }

  /// Drops the head refinement (its fetch failed permanently); counted as
  /// a kernel fetch error. The partial answer stays the final answer.
  void AbandonRefinement();

  /// Feeds a whole trace through OnTouch.
  void Replay(const sim::GestureTrace& trace);

  // ---- Results & introspection -------------------------------------------

  ResultStream& results() { return results_; }
  const KernelStats& stats() const { return stats_; }
  Result<const ObjectStats*> object_stats(ObjectId id) const;

  SessionTracker& sessions() { return sessions_; }

  /// Whether an incremental layout rotation is still converting.
  Result<bool> rotation_in_progress(ObjectId id) const;

  /// Drives background maintenance (pending rotation steps) without user
  /// input, e.g. while the device is idle.
  void PumpMaintenance();

  /// Load shedding hook for the touch server's frame scheduler: summary
  /// reads drop `levels` extra sample levels until reset to 0. Precision
  /// degrades, per-touch cost shrinks — the paper's speed/precision trade,
  /// driven by server load instead of gesture speed.
  void set_shed_levels(int levels) {
    config_.level_policy.shed_levels = levels;
  }
  int shed_levels() const { return config_.level_policy.shed_levels; }

  /// Trace hook for the touch server: the suspend transition inside
  /// DrainPending is recorded (stage kSuspended, a = first missing block,
  /// b = block count) against `session_tag` and the quantum last named by
  /// set_trace_quantum. Null recorder = off (the single-user paths never
  /// set one). Call under the session's execution lock, like everything
  /// else on a kernel.
  void set_trace_recorder(obs::TraceRecorder* recorder,
                          std::int64_t session_tag) {
    trace_ = recorder;
    trace_session_ = session_tag;
  }
  /// Names the quantum the next OnTouchAsync/ResumePending runs for.
  void set_trace_quantum(std::int64_t quantum) { trace_quantum_ = quantum; }

 private:
  struct ObjectState;

  void OnGesture(const gesture::GestureEvent& event);
  /// Executes queued gesture events in order. Before each one, probes that
  /// the blocks its execution reads are resident (pinning them so they
  /// stay put): in non-blocking mode a miss suspends the drain; in
  /// blocking mode the probe faults synchronously. A probe whose
  /// backing-store read fails past its retries sheds that gesture and
  /// counts a fetch error.
  TouchOutcome DrainPending(bool non_blocking, TouchStall* stall);
  /// True = ready (needed blocks pinned in probe_pins_); false = `stall`
  /// filled with the missing blocks. Error = the backing read failed.
  Result<bool> ProbeGesture(const gesture::GestureEvent& event,
                            bool non_blocking, TouchStall* stall);
  /// Probe for gestures on fat-table objects whose matrix was reclaimed:
  /// taps pin every attribute's covering block, scans / group-bys /
  /// summaries pin the attributes their execution reads. Every attribute
  /// is probed even after one misses, so a multi-attribute stall carries
  /// ALL the cold attributes' blocks in one TouchStall — one suspend
  /// covers them instead of one round trip per attribute; already-probed
  /// attributes stay pinned across the resume.
  Result<bool> ProbeTableGesture(const ObjectState& obj,
                                 const gesture::GestureEvent& event,
                                 bool non_blocking, TouchStall* stall);
  /// Pins `source`'s blocks covering base rows [first, last] into
  /// probe_pins_ (blocking or try-pin per `non_blocking`); shared tail of
  /// both probes above.
  Result<bool> ProbeBlocks(
      const std::shared_ptr<storage::PagedColumnSource>& source,
      storage::RowId first, storage::RowId last, bool non_blocking,
      TouchStall* stall);
  /// Half-width (base rows) of the summary band at level 0 — shared by
  /// execution and the residency probe so they can never diverge.
  std::int64_t SummaryBandK(const ObjectState& obj) const;
  /// Observes the slide for the object's extrapolator and requests
  /// low-priority warm-up fetches along the predicted path.
  void MaybePrefetch(ObjectState* obj, storage::RowId row,
                     const gesture::GestureEvent& event);
  void HandleTap(const gesture::GestureEvent& event, ObjectState* obj);
  void HandleSlideStep(const gesture::GestureEvent& event, ObjectState* obj);
  void HandlePinchStep(const gesture::GestureEvent& event, ObjectState* obj);
  void HandleRotate(const gesture::GestureEvent& event, ObjectState* obj);

  /// Executes the object's action for the touch mapped to `mapping`,
  /// appending results. Returns entries returned.
  std::int64_t ExecuteAction(ObjectState* obj,
                             const touch::TouchMapping& mapping,
                             const gesture::GestureEvent& event);

  /// Chooses the sample level for this slide step.
  int ChooseLevelFor(const ObjectState& obj,
                     const gesture::GestureEvent& event) const;

  ObjectState* FindObjectAt(const sim::PointCm& screen_point);
  ObjectState* FindObjectByView(const touch::View* view);

  sim::PointCm ResultPosition(const ObjectState& obj,
                              const sim::PointCm& screen_touch) const;

  KernelConfig config_;
  sim::TouchDevice device_;
  sim::VirtualClock clock_;
  gesture::GestureRecognizer recognizer_;
  std::shared_ptr<SharedState> shared_;
  touch::View root_view_;
  ResultStream results_;
  SessionTracker sessions_;
  KernelStats stats_;

  std::map<ObjectId, std::unique_ptr<ObjectState>> objects_;
  ObjectId next_object_id_ = 1;
  /// Object locked as the target while a gesture is in flight.
  ObjectState* gesture_target_ = nullptr;
  /// Cumulative pinch scale already applied to the target this gesture.
  double applied_pinch_scale_ = 1.0;
  /// Joins: each entry links two objects to a shared live join.
  struct JoinBinding {
    ObjectId left;
    ObjectId right;
    std::shared_ptr<exec::SymmetricHashJoin> join;
  };
  std::vector<JoinBinding> joins_;
  /// Session-scoped hash-table cache: re-enabling a join over the same
  /// columns resumes with all previously fed tuples (Section 2.9). Keyed
  /// by join identity; per session because SymmetricHashJoin is not
  /// internally synchronised.
  cache::HashTableCache join_cache_{8};
  /// Table identity pins for cached joins: a name re-registered with new
  /// data must miss, and the cached join's column views must not dangle.
  std::map<std::string,
           std::pair<std::shared_ptr<storage::Table>,
                     std::shared_ptr<storage::Table>>>
      join_cache_tables_;
  /// Span recorder wired by the touch server (null in single-user use)
  /// and the tags its suspend records carry.
  obs::TraceRecorder* trace_ = nullptr;
  std::int64_t trace_session_ = 0;
  std::int64_t trace_quantum_ = 0;
  /// Gesture events recognised but not yet executed: non-empty only while
  /// suspended on a cold fetch (execution order is gesture order, so
  /// everything behind the stalled event waits with it).
  std::deque<gesture::GestureEvent> pending_gestures_;
  /// Touches answered partially and awaiting full-fidelity re-execution.
  /// seq counts refinement attempts for the touch (the emitted partial
  /// item carries 0; each retry bumps it).
  struct PendingRefinement {
    gesture::GestureEvent event;
    ObjectId object = 0;
    std::int64_t seq = 0;
  };
  std::deque<PendingRefinement> refinements_;
  /// Pins taken by the residency probe; held through the gesture's
  /// execution (the probed blocks cannot evict mid-touch) and dropped
  /// after it. Declared last: pins reference sources owned by objects_.
  std::vector<storage::BlockPin> probe_pins_;
};

}  // namespace dbtouch::core

#endif  // DBTOUCH_CORE_KERNEL_H_
