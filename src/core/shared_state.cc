#include "core/shared_state.h"

#include "common/macros.h"

namespace dbtouch::core {

SharedState::SharedState(sampling::SampleHierarchyConfig sampling,
                         bool force_eager,
                         const cache::BufferManagerConfig& buffer)
    : sampling_(sampling), buffer_(buffer) {
  if (force_eager) {
    // Lazy materialisation mutates level storage on first read; under
    // sharing every level must exist before the hierarchy is handed out.
    sampling_.eager = true;
  }
}

Result<std::shared_ptr<sampling::SampleHierarchy>>
SharedState::GetOrBuildHierarchy(const std::string& table,
                                 std::size_t column) {
  DBTOUCH_ASSIGN_OR_RETURN(std::shared_ptr<storage::Table> t,
                           catalog_.Get(table));
  if (column >= t->schema().num_fields()) {
    return Status::OutOfRange("column " + std::to_string(column) +
                              " out of range for table '" + table + "'");
  }
  const ColumnKey key{table, column};
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = hierarchies_.find(key);
  if (it != hierarchies_.end() && it->second.table == t) {
    return it->second.hierarchy;
  }
  // First build, or the name was re-registered with a different table:
  // (re)build and retire any index set over the stale hierarchy.
  auto hierarchy = std::make_shared<sampling::SampleHierarchy>(
      t->ColumnViewAt(column), sampling_);
  if (it != hierarchies_.end()) {
    indexes_.erase(it->second.hierarchy.get());
  }
  hierarchies_[key] = HierarchyEntry{t, hierarchy};
  return hierarchy;
}

std::shared_ptr<const index::ZoneMap> SharedState::GetOrBuildBaseZoneMap(
    const std::shared_ptr<sampling::SampleHierarchy>& hierarchy) {
  DBTOUCH_CHECK(hierarchy != nullptr);
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = indexes_[hierarchy.get()];
  if (slot == nullptr) {
    // The index set captures the hierarchy shared_ptr in its deleter so
    // the raw pointer it holds — and this map's key — stay valid for the
    // set's whole life.
    slot = std::shared_ptr<index::LevelIndexSet>(
        new index::LevelIndexSet(hierarchy.get()),
        [hierarchy](index::LevelIndexSet* set) { delete set; });
    // Build now, under the lock; afterwards the zone map is read-only.
    slot->ZoneMapAt(0);
  }
  // Aliasing: the ZoneMap pointer keeps the whole index set (and through
  // it the hierarchy) alive for as long as any caller holds it.
  return std::shared_ptr<const index::ZoneMap>(slot, &slot->ZoneMapAt(0));
}

Result<std::shared_ptr<storage::PagedColumnSource>>
SharedState::GetColumnSource(const std::string& table, std::size_t column) {
  DBTOUCH_ASSIGN_OR_RETURN(std::shared_ptr<storage::Table> t,
                           catalog_.Get(table));
  return buffer_.ColumnSource(t, column);
}

std::size_t SharedState::hierarchy_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hierarchies_.size();
}

std::size_t SharedState::sample_bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& [key, entry] : hierarchies_) {
    total += entry.hierarchy->sample_bytes();
  }
  return total;
}

}  // namespace dbtouch::core
