#include "core/shared_state.h"

#include <vector>

#include "common/macros.h"
#include "storage/spill.h"

namespace dbtouch::core {

SharedState::SharedState(sampling::SampleHierarchyConfig sampling,
                         bool force_eager,
                         const cache::BufferManagerConfig& buffer)
    : sampling_(sampling), buffer_(buffer) {
  if (force_eager) {
    // Lazy materialisation mutates level storage on first read; under
    // sharing every level must exist before the hierarchy is handed out.
    sampling_.eager = true;
  }
}

Result<std::shared_ptr<sampling::SampleHierarchy>>
SharedState::GetOrBuildHierarchy(const std::string& table,
                                 std::size_t column) {
  DBTOUCH_ASSIGN_OR_RETURN(std::shared_ptr<storage::Table> t,
                           catalog_.Get(table));
  if (column >= t->schema().num_fields()) {
    return Status::OutOfRange("column " + std::to_string(column) +
                              " out of range for table '" + table + "'");
  }
  const ColumnKey key{table, column};
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = hierarchies_.find(key);
  if (it != hierarchies_.end() && it->second.table == t) {
    return it->second.hierarchy;
  }
  // First build, or the name was re-registered with a different table:
  // (re)build and retire any index set over the stale hierarchy. A
  // reclaimed table has no matrix to stride over — the rebuild pins
  // blocks of its paged rebind source instead (streamed through the
  // shared pool, so even this build honours the byte budget).
  auto hierarchy =
      t->raw_released()
          ? std::make_shared<sampling::SampleHierarchy>(
                t->PagedColumnAt(column), sampling_)
          : std::make_shared<sampling::SampleHierarchy>(
                t->ColumnViewAt(column), sampling_);
  if (it != hierarchies_.end()) {
    indexes_.erase(it->second.hierarchy.get());
  }
  hierarchies_[key] = HierarchyEntry{t, hierarchy};
  return hierarchy;
}

std::shared_ptr<const index::ZoneMap> SharedState::GetOrBuildBaseZoneMap(
    const std::shared_ptr<sampling::SampleHierarchy>& hierarchy) {
  DBTOUCH_CHECK(hierarchy != nullptr);
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = indexes_[hierarchy.get()];
  if (slot == nullptr) {
    // The index set captures the hierarchy shared_ptr in its deleter so
    // the raw pointer it holds — and this map's key — stay valid for the
    // set's whole life.
    slot = std::shared_ptr<index::LevelIndexSet>(
        new index::LevelIndexSet(hierarchy.get()),
        [hierarchy](index::LevelIndexSet* set) { delete set; });
    // Build now, under the lock; afterwards the zone map is read-only.
    slot->ZoneMapAt(0);
  }
  // Aliasing: the ZoneMap pointer keeps the whole index set (and through
  // it the hierarchy) alive for as long as any caller holds it.
  return std::shared_ptr<const index::ZoneMap>(slot, &slot->ZoneMapAt(0));
}

Result<std::shared_ptr<storage::PagedColumnSource>>
SharedState::GetColumnSource(const std::string& table, std::size_t column) {
  DBTOUCH_ASSIGN_OR_RETURN(std::shared_ptr<storage::Table> t,
                           catalog_.Get(table));
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = providers_.find(ColumnKey{table, column});
    if (it != providers_.end()) {
      if (it->second.table == t) {
        // PAX-spilled tables: every column reads its minipage of the one
        // shared multi-column binding.
        if (it->second.provider->pax_layout() != nullptr) {
          return buffer_.PaxSourceFor(table, column, it->second.provider);
        }
        return buffer_.SourceFor(table, column, it->second.provider);
      }
      // The name was re-registered with different data since the provider
      // was bound: the override is stale — retire it rather than serve
      // remote blocks of the old table under the new table's geometry.
      providers_.erase(it);
    }
  }
  return buffer_.ColumnSource(t, column);
}

Status SharedState::SetColumnProvider(
    const std::string& table, std::size_t column,
    std::shared_ptr<cache::BlockProvider> provider) {
  DBTOUCH_ASSIGN_OR_RETURN(std::shared_ptr<storage::Table> t,
                           catalog_.Get(table));
  return BindColumnProvider(std::move(t), column, std::move(provider));
}

Status SharedState::BindColumnProvider(
    std::shared_ptr<storage::Table> table, std::size_t column,
    std::shared_ptr<cache::BlockProvider> provider) {
  if (provider == nullptr) {
    return Status::InvalidArgument("null provider");
  }
  if (column >= table->schema().num_fields()) {
    return Status::OutOfRange("column " + std::to_string(column) +
                              " out of range for table '" +
                              table->name() + "'");
  }
  if (provider->geometry().row_count != table->row_count()) {
    return Status::InvalidArgument(
        "provider row count " +
        std::to_string(provider->geometry().row_count) +
        " does not match table '" + table->name() + "' (" +
        std::to_string(table->row_count()) + " rows)");
  }
  const std::string name = table->name();
  const std::lock_guard<std::mutex> lock(mu_);
  providers_[ColumnKey{name, column}] =
      ProviderEntry{std::move(table), std::move(provider)};
  return Status::OK();
}

Status SharedState::SpillTable(const std::string& table,
                               storage::TableSpiller& spiller,
                               bool reclaim_raw) {
  DBTOUCH_ASSIGN_OR_RETURN(std::shared_ptr<storage::Table> t,
                           catalog_.Get(table));
  // Write (and validate) every column's file before rebinding any: a
  // spill that fails halfway must not leave the table half on disk.
  std::vector<std::shared_ptr<cache::BlockProvider>> providers;
  providers.reserve(t->schema().num_fields());
  for (std::size_t column = 0; column < t->schema().num_fields();
       ++column) {
    DBTOUCH_ASSIGN_OR_RETURN(std::shared_ptr<cache::FileBlockProvider> p,
                             spiller.SpillColumn(t, column));
    providers.push_back(std::move(p));
  }
  for (std::size_t column = 0; column < providers.size(); ++column) {
    // Bind against the exact table the spill read — not a fresh catalog
    // lookup: a concurrent re-registration of the name must not get the
    // old table's spill files pinned under the new table's identity (the
    // identity mismatch then retires the binding, as for any provider).
    DBTOUCH_RETURN_IF_ERROR(BindColumnProvider(t, column, providers[column]));
  }
  if (!reclaim_raw) {
    return Status::OK();
  }
  // Reclamation: every file is written, validated and bound — the matrix
  // is now a redundant copy. Build the paged rebind sources (pool-backed,
  // same binding GetColumnSource hands out, so probe pins and point reads
  // share cache keys), move the hierarchies onto them, then free the raw
  // storage. ReleaseRaw waits out raw readers still in flight.
  std::vector<std::shared_ptr<storage::PagedColumnSource>> sources;
  sources.reserve(providers.size());
  for (std::size_t column = 0; column < providers.size(); ++column) {
    sources.push_back(
        buffer_.SourceFor(t->name(), column, providers[column]));
  }
  // One critical section for rebind + release: a concurrent
  // GetOrBuildHierarchy (same mutex) either runs before — and is rebound
  // here — or after, when raw_released() already steers it to the paged
  // build. Releasing between the two would let it build over a matrix
  // about to be freed. Lock order is mu_ then the table's release gate;
  // no raw-gate holder ever takes mu_.
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : hierarchies_) {
    if (entry.table == t) {
      // Materialises any unbuilt levels from the still-valid matrix,
      // then pins blocks for everything after.
      entry.hierarchy->RebindBase(sources[key.second]);
    }
  }
  return t->ReleaseRaw(std::move(sources));
}

Status SharedState::SpillTablePax(const std::string& table,
                                  storage::TableSpiller& spiller,
                                  bool reclaim_raw) {
  DBTOUCH_ASSIGN_OR_RETURN(std::shared_ptr<storage::Table> t,
                           catalog_.Get(table));
  // One file for the whole table; written and validated before any column
  // rebinds, so a failed spill leaves the in-memory binding intact.
  DBTOUCH_ASSIGN_OR_RETURN(std::shared_ptr<cache::FileBlockProvider> provider,
                           spiller.SpillTablePax(t));
  for (std::size_t column = 0; column < t->schema().num_fields(); ++column) {
    DBTOUCH_RETURN_IF_ERROR(BindColumnProvider(t, column, provider));
  }
  if (!reclaim_raw) {
    return Status::OK();
  }
  // Mirrors SpillTable's reclamation, except every rebind source is a PAX
  // column view of the one shared binding (see SpillTable for the
  // locking/failure discussion).
  std::vector<std::shared_ptr<storage::PagedColumnSource>> sources;
  sources.reserve(t->schema().num_fields());
  for (std::size_t column = 0; column < t->schema().num_fields(); ++column) {
    DBTOUCH_ASSIGN_OR_RETURN(
        std::shared_ptr<storage::PagedColumnSource> source,
        buffer_.PaxSourceFor(t->name(), column, provider));
    sources.push_back(std::move(source));
  }
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : hierarchies_) {
    if (entry.table == t) {
      entry.hierarchy->RebindBase(sources[key.second]);
    }
  }
  return t->ReleaseRaw(std::move(sources));
}

std::size_t SharedState::hierarchy_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hierarchies_.size();
}

std::size_t SharedState::sample_bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& [key, entry] : hierarchies_) {
    total += entry.hierarchy->sample_bytes();
  }
  return total;
}

}  // namespace dbtouch::core
