// ResultStream: dbTouch's result presentation model (paper Section 2.3,
// "Inspecting Results"): "results appear in place, i.e., as if every
// single result value pops up from the position in the data object where
// the raw value responsible for this result lies ... Soon after a result
// value becomes visible, it subsequently fades away."
//
// The stream records every produced result with its on-screen position and
// timestamp; VisibleAt() reconstructs what the user sees at any instant
// (bold for fresh results, faded out after the fade window).

#ifndef DBTOUCH_CORE_RESULT_STREAM_H_
#define DBTOUCH_CORE_RESULT_STREAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/touch_event.h"
#include "sim/virtual_clock.h"
#include "storage/types.h"
#include "storage/value.h"

namespace dbtouch::core {

using ObjectId = std::int64_t;

enum class ResultKind : std::uint8_t {
  kValue = 0,        // Plain scan: one data entry.
  kTuple = 1,        // Table tap: one attribute of a revealed tuple.
  kAggregate = 2,    // Running aggregate update.
  kSummary = 3,      // Interactive summary of a row band.
  kFilterMatch = 4,  // Entry passing the where-restriction.
  kJoinMatch = 5,    // Pair produced by a slide-driven join.
  kGroupUpdate = 6,  // Group-by bucket update.
};

const char* ResultKindName(ResultKind kind);

struct ResultItem {
  ObjectId object = 0;
  ResultKind kind = ResultKind::kValue;
  sim::Micros timestamp_us = 0;
  /// Where the value pops up (screen cm; shifted sideways from the touch
  /// so the finger does not hide it).
  sim::PointCm screen_position;
  /// Base row responsible for the result (band centre for summaries).
  storage::RowId row = 0;
  std::size_t attribute = 0;
  storage::Value value;
  /// Summary extras: the base-row band aggregated and how many entries
  /// were actually read to produce it.
  storage::RowId band_first = 0;
  storage::RowId band_last = 0;
  std::int64_t rows_aggregated = 0;
  /// True when produced from a sample rather than base data.
  bool approximate = false;
  /// Partial-answer protocol (paper Section 4): a deadline-pressed quantum
  /// answers from the resident sample level with partial = true, then
  /// refinement quanta re-execute at full fidelity as blocks land; each
  /// refinement carries the sequence number of the attempt that produced
  /// it (0 = the initial coarse answer).
  bool partial = false;
  std::int64_t refine_seq = 0;
};

struct VisibleResult {
  const ResultItem* item;
  /// 1.0 = just appeared (bold), decaying linearly to 0.0 at the fade
  /// deadline.
  double opacity;
};

class ResultStream {
 public:
  /// `fade_us`: how long a result stays visible after appearing.
  explicit ResultStream(sim::Micros fade_us = 1'500'000)
      : fade_us_(fade_us) {}

  void Append(ResultItem item) { items_.push_back(std::move(item)); }

  const std::vector<ResultItem>& items() const { return items_; }
  /// Mutable access for refinement tagging: the kernel stamps refine_seq
  /// onto items appended by a just-executed refinement quantum.
  std::vector<ResultItem>& mutable_items() { return items_; }
  std::int64_t size() const {
    return static_cast<std::int64_t>(items_.size());
  }
  const ResultItem& back() const { return items_.back(); }

  /// Results still on screen at `now`, most recent last, with opacities.
  std::vector<VisibleResult> VisibleAt(sim::Micros now) const;

  /// Count of items of the given kind.
  std::int64_t CountKind(ResultKind kind) const;

  void Clear() { items_.clear(); }

  sim::Micros fade_us() const { return fade_us_; }

 private:
  sim::Micros fade_us_;
  std::vector<ResultItem> items_;
};

}  // namespace dbtouch::core

#endif  // DBTOUCH_CORE_RESULT_STREAM_H_
