// ASCII rendering of the kernel's screen: the terminal stand-in for the
// paper's Figure 2 screenshots. Data objects draw as boxes; results pop
// up beside the touch position and fade with age (bold digits -> dots).

#ifndef DBTOUCH_CORE_ASCII_SCREEN_H_
#define DBTOUCH_CORE_ASCII_SCREEN_H_

#include <string>

#include "core/kernel.h"

namespace dbtouch::core {

struct AsciiScreenOptions {
  /// Character-grid resolution the physical screen maps onto.
  int columns = 78;
  int rows = 22;
  /// Results older than this fraction of the fade window render as dots.
  double dim_threshold = 0.4;
};

/// Renders the screen at the kernel's current virtual time: every data
/// object's frame (with its name), and every still-visible result from
/// the result stream at its on-screen position.
std::string RenderScreen(Kernel& kernel,
                         const AsciiScreenOptions& options = {});

}  // namespace dbtouch::core

#endif  // DBTOUCH_CORE_ASCII_SCREEN_H_
