#include "core/result_stream.h"

namespace dbtouch::core {

const char* ResultKindName(ResultKind kind) {
  switch (kind) {
    case ResultKind::kValue:
      return "value";
    case ResultKind::kTuple:
      return "tuple";
    case ResultKind::kAggregate:
      return "aggregate";
    case ResultKind::kSummary:
      return "summary";
    case ResultKind::kFilterMatch:
      return "filter-match";
    case ResultKind::kJoinMatch:
      return "join-match";
    case ResultKind::kGroupUpdate:
      return "group-update";
  }
  return "?";
}

std::vector<VisibleResult> ResultStream::VisibleAt(sim::Micros now) const {
  std::vector<VisibleResult> out;
  for (const ResultItem& item : items_) {
    if (item.timestamp_us > now) {
      continue;  // Not yet produced.
    }
    const sim::Micros age = now - item.timestamp_us;
    if (age >= fade_us_) {
      continue;  // Fully faded.
    }
    VisibleResult v;
    v.item = &item;
    v.opacity = 1.0 - static_cast<double>(age) /
                          static_cast<double>(fade_us_);
    out.push_back(v);
  }
  return out;
}

std::int64_t ResultStream::CountKind(ResultKind kind) const {
  std::int64_t n = 0;
  for (const ResultItem& item : items_) {
    if (item.kind == kind) {
      ++n;
    }
  }
  return n;
}

}  // namespace dbtouch::core
