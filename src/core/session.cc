#include "core/session.h"

namespace dbtouch::core {

void SessionTracker::OnGestureBegin(sim::Micros now) {
  if (active_ && now - last_activity_us_ > idle_gap_us_) {
    EndSession(last_activity_us_);
  }
  if (!active_) {
    active_ = true;
    current_ = SessionSummary{};
    current_.id = next_id_++;
    current_.started_us = now;
  }
  ++current_.gestures;
  last_activity_us_ = now;
}

void SessionTracker::OnTouch(sim::Micros now) {
  if (!active_) {
    return;
  }
  ++current_.touches;
  last_activity_us_ = now;
}

void SessionTracker::AddEntries(std::int64_t entries) {
  if (active_) {
    current_.entries_returned += entries;
  }
}

void SessionTracker::AddRowsScanned(std::int64_t rows) {
  if (active_) {
    current_.rows_scanned += rows;
  }
}

void SessionTracker::EndSession(sim::Micros now) {
  if (!active_) {
    return;
  }
  current_.ended_us = now;
  completed_.push_back(current_);
  active_ = false;
}

}  // namespace dbtouch::core
