// SharedState: the read-only half of the kernel, factored out so many
// concurrent sessions can explore one dataset.
//
// The single-user kernel of the paper owns everything: catalog, sample
// hierarchies, indexes, views, operator state. Serving many users forces a
// split: state that is a pure function of the data (catalog, sample
// hierarchies, base zone maps) is immutable once built and safe to share;
// state that depends on what one user is doing (views, operator state,
// result stream, session tracker) stays inside the per-session Kernel.
//
// Thread-safety contract: construction of shared artefacts (hierarchies,
// zone maps) happens under an internal mutex; everything handed out is
// immutable afterwards, so per-touch reads take no locks. Sample
// hierarchies are always built eagerly here — lazy materialisation is a
// single-user optimisation that would race under sharing.
//
// The SharedState also owns the server-wide cache::BufferManager: base
// column data read by any session flows through one bounded block cache
// keyed by (table, column, block), so the whole server's resident
// footprint honours one byte budget. The BufferManager is internally
// synchronised (sharded); sessions pin blocks concurrently.

#ifndef DBTOUCH_CORE_SHARED_STATE_H_
#define DBTOUCH_CORE_SHARED_STATE_H_

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "cache/buffer_manager.h"
#include "common/result.h"
#include "common/status.h"
#include "index/level_index_set.h"
#include "sampling/sample_hierarchy.h"
#include "storage/catalog.h"
#include "storage/paged_column.h"

namespace dbtouch::storage {
class TableSpiller;
}  // namespace dbtouch::storage

namespace dbtouch::core {

class SharedState {
 public:
  /// `force_eager`: build every hierarchy level up front. Required when
  /// the state is shared across sessions (lazy materialisation would
  /// race); a Kernel's private SharedState passes false to honour the
  /// user's sampling config exactly as the single-user system did.
  explicit SharedState(sampling::SampleHierarchyConfig sampling = {},
                       bool force_eager = true,
                       const cache::BufferManagerConfig& buffer = {});

  SharedState(const SharedState&) = delete;
  SharedState& operator=(const SharedState&) = delete;

  storage::Catalog& catalog() { return catalog_; }
  const storage::Catalog& catalog() const { return catalog_; }

  Status RegisterTable(std::shared_ptr<storage::Table> table) {
    return catalog_.Register(std::move(table));
  }

  /// The sample hierarchy over `table.column`, built eagerly on first
  /// request and shared by every session thereafter. The hierarchy is
  /// immutable once returned; concurrent LevelView reads are safe.
  Result<std::shared_ptr<sampling::SampleHierarchy>> GetOrBuildHierarchy(
      const std::string& table, std::size_t column);

  /// The base-level (level 0) zone map over `hierarchy`, built on first
  /// request and shared by every object bound to that hierarchy. Keyed by
  /// hierarchy identity — not table name — so an object always prunes
  /// with a map over exactly the data it scans, even after its table's
  /// name is re-registered with new contents. The returned (aliasing)
  /// shared_ptr pins the owning index set (and through it the hierarchy);
  /// the map itself is immutable, so per-touch MayMatch probes take no
  /// locks.
  std::shared_ptr<const index::ZoneMap> GetOrBuildBaseZoneMap(
      const std::shared_ptr<sampling::SampleHierarchy>& hierarchy);

  /// The server-wide buffer pool every session's base-data reads share.
  cache::BufferManager& buffer_manager() { return buffer_; }
  const cache::BufferManager& buffer_manager() const { return buffer_; }

  /// A paged source reading `table.column` through the shared buffer pool
  /// (one bounded footprint across sessions). One source per data object.
  Result<std::shared_ptr<storage::PagedColumnSource>> GetColumnSource(
      const std::string& table, std::size_t column);

  /// Binds `table.column` base reads to an explicit BlockProvider — the
  /// cold-tier deployment of paper Section 4 ("the server may store the
  /// base data ... the touch device may store only small samples"): the
  /// catalog's table supplies schema, row count and sample hierarchies,
  /// while block faults go to the provider (e.g. a RemoteBlockProvider).
  /// Sources created by GetColumnSource after this call fault through it.
  /// The provider's geometry must match the table's row count.
  Status SetColumnProvider(const std::string& table, std::size_t column,
                           std::shared_ptr<cache::BlockProvider> provider);

  /// Spills every column of `table` to disk through `spiller` and rebinds
  /// the columns' base reads to the resulting cache::FileBlockProvider —
  /// the disk tier: after this, a table many times the buffer budget
  /// explores through the pool's bounded resident set, faulting blocks
  /// from the spill files. Columns are rebound only after every file is
  /// written and validated, so a failed spill leaves the in-memory
  /// binding fully intact.
  ///
  /// With `reclaim_raw`, the spill then actually frees memory: every
  /// shared sample hierarchy over the table is rebound to the paged tier
  /// (its level copies are materialised first — they are all that
  /// survives in RAM), and the table's matrix storage is released
  /// (storage::Table::ReleaseRaw), so the tracked resident bytes of the
  /// table drop to ~0 and the pool's byte budget becomes the only bound
  /// on base-data residency — the out-of-core promise made literal.
  /// Remaining readers go through PagedColumnSource pins: taps and
  /// group-bys via Table::GetValue's paged fallback, hierarchies rebuilt
  /// later via GetOrBuildHierarchy's paged build, zone maps via the
  /// paged index builds. Racing readers are safe, not transparent:
  /// transient raw reads drain behind the table's release gate, a live
  /// zero-copy pin (an operator mid-gesture) makes the reclaim itself
  /// fail cleanly — the spill files stay written and bound, so retry
  /// once gestures pause — and pool sources handed out BEFORE the
  /// reclaim keep their in-memory binding and fail cleanly (shedding
  /// one gesture) if they fault after the matrix is gone. Reclaim
  /// before opening the table to sessions for zero disruption.
  Status SpillTable(const std::string& table, storage::TableSpiller& spiller,
                    bool reclaim_raw = false);

  /// SpillTable's PAX variant: the whole table goes to ONE multi-column
  /// block file (storage::TableSpiller::SpillTablePax) and every column
  /// rebinds to that shared provider through the pool's shared PAX
  /// binding — a block faulted for one attribute is resident for all of
  /// them, so fat-table tuple probes cost one fault instead of one per
  /// column. Same failure contract and `reclaim_raw` semantics as
  /// SpillTable.
  Status SpillTablePax(const std::string& table,
                       storage::TableSpiller& spiller,
                       bool reclaim_raw = false);

  /// Number of distinct (table, column) hierarchies built so far.
  std::size_t hierarchy_count() const;

  /// Bytes held by all shared sample copies.
  std::size_t sample_bytes() const;

  const sampling::SampleHierarchyConfig& sampling_config() const {
    return sampling_;
  }

 private:
  using ColumnKey = std::pair<std::string, std::size_t>;

  /// SetColumnProvider against an already-resolved table identity — the
  /// SpillTable path, where the binding must pin the table the spill
  /// actually read, not whatever the name resolves to at bind time.
  Status BindColumnProvider(std::shared_ptr<storage::Table> table,
                            std::size_t column,
                            std::shared_ptr<cache::BlockProvider> provider);

  storage::Catalog catalog_;
  sampling::SampleHierarchyConfig sampling_;
  cache::BufferManager buffer_;

  /// Cached artefacts pin the Table they were built over: the pin keeps
  /// the hierarchy's base ColumnView alive even if the catalog drops the
  /// table, and identity-checking it detects a name being re-registered
  /// with new data (the stale entry is then rebuilt).
  struct HierarchyEntry {
    std::shared_ptr<storage::Table> table;
    std::shared_ptr<sampling::SampleHierarchy> hierarchy;
  };

  /// Explicit cold-tier provider (SetColumnProvider), pinned to the
  /// identity of the table it was validated against: a name re-registered
  /// with new data silently retires the override (the new table's
  /// in-memory blocks serve) instead of faulting stale remote data.
  struct ProviderEntry {
    /// Identity pin (like HierarchyEntry's): holding the shared_ptr rules
    /// out a recycled allocation masquerading as the validated table.
    std::shared_ptr<storage::Table> table;
    std::shared_ptr<cache::BlockProvider> provider;
  };

  mutable std::mutex mu_;
  std::map<ColumnKey, HierarchyEntry> hierarchies_;
  /// Consulted by GetColumnSource before defaulting to table blocks.
  std::map<ColumnKey, ProviderEntry> providers_;
  /// Index sets piggy-back on the hierarchies, keyed by hierarchy
  /// identity; only their level-0 zone maps are exposed (built under mu_,
  /// then read-only). Each set's deleter pins its hierarchy, so the raw
  /// key pointer stays valid for the entry's whole life.
  std::map<const sampling::SampleHierarchy*,
           std::shared_ptr<index::LevelIndexSet>>
      indexes_;
};

}  // namespace dbtouch::core

#endif  // DBTOUCH_CORE_SHARED_STATE_H_
