// Action configuration: what a gesture on a data object computes. "Users
// define the query they wish to run by choosing a few query actions (say a
// scan or an aggregate ...) and then they start a slide gesture"
// (paper Section 2.3).

#ifndef DBTOUCH_CORE_ACTION_H_
#define DBTOUCH_CORE_ACTION_H_

#include <cstdint>
#include <optional>

#include "exec/aggregate.h"
#include "exec/predicate.h"

namespace dbtouch::core {

enum class ActionKind : std::uint8_t {
  /// Surface the touched entry as-is (the default first look).
  kScan = 0,
  /// Maintain a running aggregate over all entries touched so far.
  kAggregate = 1,
  /// Interactive summary: aggregate the band around each touched entry
  /// (Section 2.7).
  kSummary = 2,
  /// Scan with a where-restriction; only passing entries surface
  /// (Section 2.9).
  kFilteredScan = 3,
  /// Table objects: group the touched tuples by a key attribute and
  /// aggregate a value attribute (Section 2.9).
  kGroupBy = 4,
};

const char* ActionKindName(ActionKind kind);

struct ActionConfig {
  ActionKind kind = ActionKind::kScan;
  /// Aggregation for kAggregate / kSummary / kGroupBy.
  exec::AggKind agg = exec::AggKind::kAvg;
  /// Half-width of the summary band, in entries of the level actually
  /// read (paper Section 2.7's parameter k).
  std::int64_t summary_k = 10;
  /// Where-restriction for kFilteredScan.
  std::optional<exec::Predicate> predicate;
  /// kFilteredScan: consult the column's zone map before reading, skipping
  /// touches whose zone cannot contain a match (paper Section 2.6
  /// "Indexing" — index support for exploration).
  bool use_zone_map = false;
  /// Key / value attribute indices for kGroupBy on table objects.
  std::size_t group_key_attribute = 0;
  std::size_t group_value_attribute = 0;

  static ActionConfig Scan() { return ActionConfig{}; }
  static ActionConfig Aggregate(exec::AggKind agg) {
    ActionConfig c;
    c.kind = ActionKind::kAggregate;
    c.agg = agg;
    return c;
  }
  static ActionConfig Summary(std::int64_t k,
                              exec::AggKind agg = exec::AggKind::kAvg) {
    ActionConfig c;
    c.kind = ActionKind::kSummary;
    c.summary_k = k;
    c.agg = agg;
    return c;
  }
  static ActionConfig Filter(exec::Predicate predicate,
                             bool use_zone_map = false) {
    ActionConfig c;
    c.kind = ActionKind::kFilteredScan;
    c.predicate = predicate;
    c.use_zone_map = use_zone_map;
    return c;
  }
  static ActionConfig GroupBy(std::size_t key_attribute,
                              std::size_t value_attribute,
                              exec::AggKind agg) {
    ActionConfig c;
    c.kind = ActionKind::kGroupBy;
    c.group_key_attribute = key_attribute;
    c.group_value_attribute = value_attribute;
    c.agg = agg;
    return c;
  }
};

}  // namespace dbtouch::core

#endif  // DBTOUCH_CORE_ACTION_H_
