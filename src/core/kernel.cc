#include "core/kernel.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.h"
#include "common/macros.h"
#include "exec/summary.h"
#include "index/level_index_set.h"
#include "obs/trace_recorder.h"
#include "prefetch/extrapolator.h"
#include "touch/touch_mapper.h"

namespace dbtouch::core {

using gesture::GestureEvent;
using gesture::GesturePhase;
using gesture::GestureType;
using storage::RowId;
using touch::DataObjectView;
using touch::ObjectKind;
using touch::TouchMapping;

namespace {

std::int64_t NowWallNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* ActionKindName(ActionKind kind) {
  switch (kind) {
    case ActionKind::kScan:
      return "scan";
    case ActionKind::kAggregate:
      return "aggregate";
    case ActionKind::kSummary:
      return "summary";
    case ActionKind::kFilteredScan:
      return "filtered-scan";
    case ActionKind::kGroupBy:
      return "group-by";
  }
  return "?";
}

/// Everything the kernel knows about one on-screen data object.
struct Kernel::ObjectState {
  ObjectId id = 0;
  DataObjectView* view = nullptr;  // Owned by root_view_.
  std::shared_ptr<storage::Table> table;
  /// Column index for column objects.
  std::optional<std::size_t> column;
  /// Sample hierarchy over the bound column (column objects only). Owned
  /// by the SharedState; possibly shared with other sessions' kernels.
  std::shared_ptr<sampling::SampleHierarchy> hierarchy;
  ActionConfig action;
  /// Per-action operator state (reset on SetAction).
  std::unique_ptr<exec::TouchedAggregateOp> agg_op;
  std::unique_ptr<exec::FilteredScanOp> filter_op;
  std::unique_ptr<exec::IncrementalGroupBy> groupby_op;
  /// In-flight incremental layout rotation.
  std::unique_ptr<layout::IncrementalRotator> rotator;
  /// Base-level zone map, fetched once from the SharedState when a
  /// filtered scan asks for index support; immutable and lock-free after.
  /// The aliasing shared_ptr pins the owning index set.
  std::shared_ptr<const index::ZoneMap> base_zone_map;
  /// Paged source over the bound column through the SharedState's shared
  /// BufferManager (column objects, use_buffer_manager on). Null = legacy
  /// raw whole-column reads.
  std::shared_ptr<storage::PagedColumnSource> paged;
  /// Working cursor for per-touch point reads; holds the block under the
  /// finger pinned, so a slide inside one block re-pins nothing.
  storage::PagedColumnCursor cursor;
  ObjectStats stats;
  /// Rotation gesture latch: fire once per gesture.
  bool rotation_fired_this_gesture = false;
  /// Slide extrapolator driving warm-up prefetches over slow-tier
  /// sources (Section 2.6 "Prefetching Data").
  prefetch::GestureExtrapolator extrapolator;

  /// The paged source execution reads the bound column through: the
  /// buffer-pool source for paged column objects; otherwise the table's
  /// own source — the release-gated zero-copy form on a resident table,
  /// the rebind source once its matrix was reclaimed. Never a bare raw
  /// view: every operator the kernel builds survives (or cleanly
  /// refuses) a later spill reclamation.
  std::shared_ptr<storage::PagedColumnSource> BoundSource() const {
    if (paged != nullptr) {
      return paged;
    }
    return table->PagedColumnAt(column.value_or(0));
  }

  /// Paged source for an arbitrary attribute of the backing table (the
  /// fat-table read paths: taps, scans, group-bys).
  std::shared_ptr<storage::PagedColumnSource> AttributeSource(
      std::size_t attribute) const {
    if (column.has_value() && *column == attribute && paged != nullptr) {
      return paged;
    }
    return table->PagedColumnAt(attribute);
  }

  /// Point read of the bound column: pinned through the buffer pool when
  /// paged; otherwise through Table::GetValue, whose release gate makes
  /// the read safe against a concurrent spill reclamation (and which is
  /// rotation-safe, reading the current matrix each call).
  storage::Value ReadBoundValue(storage::RowId row) {
    if (cursor.valid()) {
      return cursor.GetValue(row);
    }
    return table->GetValue(row, column.value_or(0));
  }
};

Kernel::Kernel(const KernelConfig& config, std::shared_ptr<SharedState> shared)
    : config_(config),
      device_(config.device),
      recognizer_(config.recognizer),
      shared_(shared != nullptr
                  ? std::move(shared)
                  : std::make_shared<SharedState>(config.sampling,
                                                  /*force_eager=*/false,
                                                  config.buffer)),
      root_view_("screen",
                 touch::RectCm{0.0, 0.0, config.device.screen_width_cm,
                               config.device.screen_height_cm}),
      results_(config.result_fade_us),
      sessions_(config.session_idle_gap_us) {}

Kernel::~Kernel() = default;

Status Kernel::RegisterTable(std::shared_ptr<storage::Table> table) {
  return shared_->RegisterTable(std::move(table));
}

Result<ObjectId> Kernel::CreateColumnObject(const std::string& table,
                                            const std::string& column,
                                            const touch::RectCm& frame) {
  DBTOUCH_ASSIGN_OR_RETURN(std::shared_ptr<storage::Table> t,
                           shared_->catalog().Get(table));
  DBTOUCH_ASSIGN_OR_RETURN(const std::size_t col,
                           t->schema().FieldIndex(column));
  auto state = std::make_unique<ObjectState>();
  state->id = next_object_id_++;
  state->table = t;
  state->column = col;

  auto view = std::make_unique<DataObjectView>(
      table + "." + column, frame, ObjectKind::kColumn, t->row_count(), 1);
  view->BindColumn(table, col);
  state->view =
      static_cast<DataObjectView*>(root_view_.AddChild(std::move(view)));

  DBTOUCH_ASSIGN_OR_RETURN(state->hierarchy,
                           shared_->GetOrBuildHierarchy(table, col));
  if (config_.use_buffer_manager) {
    DBTOUCH_ASSIGN_OR_RETURN(state->paged,
                             shared_->GetColumnSource(table, col));
    state->cursor = storage::PagedColumnCursor(state->paged);
  }

  const ObjectId id = state->id;
  objects_.emplace(id, std::move(state));
  return id;
}

Result<ObjectId> Kernel::CreateTableObject(const std::string& table,
                                           const touch::RectCm& frame) {
  DBTOUCH_ASSIGN_OR_RETURN(std::shared_ptr<storage::Table> t,
                           shared_->catalog().Get(table));
  auto state = std::make_unique<ObjectState>();
  state->id = next_object_id_++;
  state->table = t;

  auto view = std::make_unique<DataObjectView>(
      table, frame, ObjectKind::kTable, t->row_count(),
      t->schema().num_fields());
  view->BindTable(table);
  state->view =
      static_cast<DataObjectView*>(root_view_.AddChild(std::move(view)));

  const ObjectId id = state->id;
  objects_.emplace(id, std::move(state));
  return id;
}

Status Kernel::DestroyObject(ObjectId id) {
  const auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("no object " + std::to_string(id));
  }
  if (gesture_target_ == it->second.get()) {
    gesture_target_ = nullptr;
  }
  std::erase_if(joins_, [id](const JoinBinding& b) {
    return b.left == id || b.right == id;
  });
  root_view_.RemoveChild(it->second->view);
  objects_.erase(it);
  return Status::OK();
}

Result<DataObjectView*> Kernel::object_view(ObjectId id) {
  const auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("no object " + std::to_string(id));
  }
  return it->second->view;
}

std::vector<ObjectId> Kernel::ListObjects() const {
  std::vector<ObjectId> out;
  out.reserve(objects_.size());
  for (const auto& [id, state] : objects_) {
    out.push_back(id);
  }
  return out;
}

Status Kernel::SetAction(ObjectId id, const ActionConfig& action) {
  const auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("no object " + std::to_string(id));
  }
  ObjectState* obj = it->second.get();
  if (action.kind == ActionKind::kGroupBy) {
    if (obj->view->kind() != ObjectKind::kTable) {
      return Status::InvalidArgument("group-by requires a table object");
    }
    const std::size_t fields = obj->table->schema().num_fields();
    if (action.group_key_attribute >= fields ||
        action.group_value_attribute >= fields) {
      return Status::OutOfRange("group-by attribute out of range");
    }
    const storage::DataType key_type =
        obj->table->schema().field(action.group_key_attribute).type;
    if (key_type == storage::DataType::kFloat ||
        key_type == storage::DataType::kDouble) {
      return Status::InvalidArgument(
          "group-by key must be integer or string");
    }
  }
  obj->action = action;
  // A new action is a new logical query: clear operator state.
  obj->agg_op.reset();
  obj->filter_op.reset();
  obj->groupby_op.reset();
  switch (action.kind) {
    case ActionKind::kAggregate:
      obj->agg_op = std::make_unique<exec::TouchedAggregateOp>(
          obj->BoundSource(), action.agg);
      break;
    case ActionKind::kFilteredScan:
      DBTOUCH_CHECK(action.predicate.has_value());
      obj->filter_op = std::make_unique<exec::FilteredScanOp>(
          obj->BoundSource(), *action.predicate);
      break;
    case ActionKind::kGroupBy:
      // Paged always: zero-copy block slices on a resident table, pinned
      // pool blocks on a reclaimed one — same values either way, and the
      // group-by no longer needs the matrix to exist.
      obj->groupby_op = std::make_unique<exec::IncrementalGroupBy>(
          obj->table->PagedColumnAt(action.group_key_attribute),
          obj->table->PagedColumnAt(action.group_value_attribute),
          action.agg);
      break;
    case ActionKind::kScan:
    case ActionKind::kSummary:
      break;  // Stateless per touch.
  }
  return Status::OK();
}

Status Kernel::EnableJoin(ObjectId left, ObjectId right) {
  const auto lit = objects_.find(left);
  const auto rit = objects_.find(right);
  if (lit == objects_.end() || rit == objects_.end()) {
    return Status::NotFound("join endpoint object missing");
  }
  ObjectState* l = lit->second.get();
  ObjectState* r = rit->second.get();
  if (!l->column.has_value() || !r->column.has_value()) {
    return Status::InvalidArgument("joins bind column objects");
  }
  // Per-side sources — each side independently, so joining a reclaimed
  // column against a resident one works.
  const std::shared_ptr<storage::PagedColumnSource> lsrc = l->BoundSource();
  const std::shared_ptr<storage::PagedColumnSource> rsrc = r->BoundSource();
  const storage::DataType lt = lsrc->type();
  const storage::DataType rt = rsrc->type();
  if (lt == storage::DataType::kFloat || lt == storage::DataType::kDouble ||
      rt == storage::DataType::kFloat || rt == storage::DataType::kDouble) {
    return Status::InvalidArgument("join keys must be integer or string");
  }
  // Hash-table cache (Section 2.9): re-enabling a join over the same two
  // columns resumes the cached SymmetricHashJoin with every previously fed
  // tuple still in its tables. Keyed by join identity at base fidelity;
  // the table pins guard against a name re-registered with new data (and
  // keep the cached join's column views alive).
  const std::string join_id =
      l->table->name() + "." + l->table->schema().field(*l->column).name +
      "=" + r->table->name() + "." +
      r->table->schema().field(*r->column).name;
  const std::string cache_key = cache::HashTableCache::MakeKey(join_id, 0);
  std::shared_ptr<exec::SymmetricHashJoin> join = join_cache_.Get(cache_key);
  const auto pins = join_cache_tables_.find(cache_key);
  if (join != nullptr && pins != join_cache_tables_.end() &&
      pins->second.first == l->table && pins->second.second == r->table) {
    ++stats_.join_cache_hits;
  } else {
    join = std::make_shared<exec::SymmetricHashJoin>(lsrc, rsrc);
    join_cache_.Put(cache_key, join);
    join_cache_tables_[cache_key] = {l->table, r->table};
    // Drop identity pins for joins the LRU just evicted, so the pin map
    // stays bounded by the cache capacity and evicted joins' tables can
    // actually be freed.
    std::erase_if(join_cache_tables_, [this](const auto& entry) {
      return !join_cache_.Contains(entry.first);
    });
  }
  JoinBinding binding;
  binding.left = left;
  binding.right = right;
  binding.join = std::move(join);
  joins_.push_back(std::move(binding));
  return Status::OK();
}

void Kernel::OnTouch(const sim::TouchEvent& event) {
  clock_.AdvanceTo(event.timestamp_us);
  ++stats_.touch_events;
  for (const GestureEvent& g : recognizer_.OnTouch(event)) {
    pending_gestures_.push_back(g);
  }
  // Blocking drain: probes fault synchronously, so this always completes.
  (void)DrainPending(/*non_blocking=*/false, nullptr);
}

TouchOutcome Kernel::OnTouchAsync(const sim::TouchEvent& event,
                                  TouchStall* stall) {
  clock_.AdvanceTo(event.timestamp_us);
  ++stats_.touch_events;
  for (const GestureEvent& g : recognizer_.OnTouch(event)) {
    pending_gestures_.push_back(g);
  }
  return DrainPending(config_.non_blocking_faults, stall);
}

TouchOutcome Kernel::ResumePending(TouchStall* stall) {
  return DrainPending(config_.non_blocking_faults, stall);
}

void Kernel::AbandonPending() {
  // Shed only the stalled head gesture: the ones queued behind it (e.g.
  // the slide's kEnded, whose execution releases working pins and signals
  // the gesture pause) still run on the caller's next ResumePending —
  // each may stall and be shed in turn, converging one gesture per cycle.
  if (!pending_gestures_.empty()) {
    pending_gestures_.pop_front();
    ++stats_.fetch_errors;
  }
  probe_pins_.clear();
}

bool Kernel::AnswerPartialFromResident() {
  if (pending_gestures_.empty()) {
    return false;
  }
  const GestureEvent g = pending_gestures_.front();
  // Eligible: slide steps only. Taps, gesture begins/ends and the
  // stateful actions fall through to the classic park — deferring their
  // execution would reorder operator-state feeds.
  if (g.type != GestureType::kSlide || g.phase != GesturePhase::kChanged) {
    return false;
  }
  // Mirror ProbeGesture's targeting (the stalled head is never a kBegan:
  // begins read no data, so they cannot stall).
  ObjectState* obj = gesture_target_;
  if (obj == nullptr || obj->view->kind() == ObjectKind::kTable) {
    return false;
  }
  // Only stateless actions can be re-executed bit-identically later.
  if (obj->action.kind != ActionKind::kScan &&
      obj->action.kind != ActionKind::kSummary) {
    return false;
  }
  // A joined object's slide feeds the join; a deferred re-execution would
  // not, so partial answers skip joined objects entirely.
  for (const JoinBinding& b : joins_) {
    if (b.left == obj->id || b.right == obj->id) {
      return false;
    }
  }
  if (!config_.use_sampling || obj->hierarchy == nullptr) {
    return false;
  }
  // Lowest already-materialised sample level. Never EnsureLevel here: a
  // lazy build reads the (cold) base and would fault — the whole point is
  // to answer from what is resident right now.
  int level = 0;
  for (int l = 1; l < obj->hierarchy->num_levels(); ++l) {
    if (obj->hierarchy->IsMaterialized(l)) {
      level = l;
      break;
    }
  }
  if (level == 0) {
    return false;
  }

  const sim::PointCm local = obj->view->ScreenToLocal(g.position);
  const TouchMapping mapping = touch::MapTouch(*obj->view, local);
  const RowId base_row = mapping.row;

  const std::int64_t start_ns = NowWallNs();
  ResultItem item;
  item.object = obj->id;
  item.timestamp_us = g.timestamp_us;
  item.screen_position = ResultPosition(*obj, g.position);
  item.row = base_row;
  item.approximate = true;
  item.partial = true;
  item.refine_seq = 0;
  std::int64_t scanned = 0;
  if (obj->action.kind == ActionKind::kScan) {
    item.kind = ResultKind::kValue;
    item.attribute = mapping.attribute;
    item.value = obj->hierarchy->LevelView(level).GetValue(
        obj->hierarchy->FromBaseRow(level, base_row));
    scanned = 1;
  } else {
    exec::InteractiveSummaryOp op(obj->hierarchy->LevelView(level),
                                  obj->action.summary_k, obj->action.agg);
    exec::SummaryResult sr =
        op.ComputeAt(obj->hierarchy->FromBaseRow(level, base_row));
    scanned = op.rows_scanned();
    sr.first = obj->hierarchy->ToBaseRow(level, sr.first);
    sr.last = std::min<RowId>(obj->hierarchy->ToBaseRow(level, sr.last) +
                                  obj->hierarchy->LevelStride(level) - 1,
                              obj->table->row_count() - 1);
    item.kind = ResultKind::kSummary;
    item.value = storage::Value(sr.value);
    item.band_first = sr.first;
    item.band_last = sr.last;
    item.rows_aggregated = sr.rows;
    obj->stats.last_level_used = level;
  }
  results_.Append(std::move(item));

  // The gesture is consumed here — account for it like OnGesture would.
  ++stats_.gesture_events;
  ++stats_.slide_steps;
  ++stats_.partial_answers;
  ++stats_.entries_returned;
  stats_.rows_scanned += scanned;
  ++obj->stats.touches;
  ++obj->stats.entries_returned;
  obj->stats.rows_scanned += scanned;
  sessions_.AddEntries(1);
  sessions_.AddRowsScanned(scanned);
  const std::int64_t wall = NowWallNs() - start_ns;
  stats_.exec_wall_ns += wall;
  stats_.max_touch_wall_ns = std::max(stats_.max_touch_wall_ns, wall);
  MaybePrefetch(obj, base_row, g);
  sessions_.OnTouch(g.timestamp_us);

  refinements_.push_back(PendingRefinement{g, obj->id, /*seq=*/1});
  pending_gestures_.pop_front();
  probe_pins_.clear();
  return true;
}

RefineOutcome Kernel::RefineNext(TouchStall* stall) {
  while (!refinements_.empty()) {
    PendingRefinement& ref = refinements_.front();
    const auto it = objects_.find(ref.object);
    if (it == objects_.end()) {
      refinements_.pop_front();  // Object destroyed; partial stands.
      continue;
    }
    ObjectState* obj = it->second.get();
    const sim::PointCm local = obj->view->ScreenToLocal(ref.event.position);
    const TouchMapping mapping = touch::MapTouch(*obj->view, local);
    const RowId base_row = mapping.row;

    // Base-row range the full-fidelity execution reads — mirrors
    // ProbeGesture's slide case; [-1, -1] = no base reads (the level
    // policy routes this summary to an in-memory sample anyway).
    RowId first = base_row;
    RowId last = base_row;
    if (obj->action.kind == ActionKind::kSummary) {
      if (ChooseLevelFor(*obj, ref.event) > 0) {
        first = -1;
      } else {
        const std::int64_t k = SummaryBandK(*obj);
        first = std::max<RowId>(base_row - k, 0);
        last = std::min<RowId>(base_row + k, obj->table->row_count() - 1);
      }
    }
    if (first >= 0 && obj->paged != nullptr && obj->paged->may_block()) {
      if (stall != nullptr) {
        stall->entries.clear();
      }
      const Result<bool> ready =
          ProbeBlocks(obj->paged, first, last, /*non_blocking=*/true, stall);
      if (!ready.ok()) {
        ++stats_.fetch_errors;
        probe_pins_.clear();
        refinements_.pop_front();
        continue;
      }
      if (!*ready) {
        ++ref.seq;  // This attempt failed; the next one carries seq + 1.
        probe_pins_.clear();
        return RefineOutcome::kStillCold;
      }
    }

    const std::int64_t before = results_.size();
    const std::int64_t start_ns = NowWallNs();
    const std::int64_t entries = ExecuteAction(obj, mapping, ref.event);
    const std::int64_t wall = NowWallNs() - start_ns;
    stats_.exec_wall_ns += wall;
    stats_.max_touch_wall_ns = std::max(stats_.max_touch_wall_ns, wall);
    stats_.entries_returned += entries;
    obj->stats.entries_returned += entries;
    sessions_.AddEntries(entries);
    for (std::int64_t i = before; i < results_.size(); ++i) {
      ResultItem& refined = results_.mutable_items()[static_cast<std::size_t>(i)];
      refined.partial = false;
      refined.refine_seq = ref.seq;
    }
    ++stats_.refinements;
    probe_pins_.clear();
    refinements_.pop_front();
    return RefineOutcome::kRefined;
  }
  return RefineOutcome::kIdle;
}

void Kernel::AbandonRefinement() {
  if (!refinements_.empty()) {
    refinements_.pop_front();
    ++stats_.fetch_errors;
  }
  probe_pins_.clear();
}

TouchOutcome Kernel::DrainPending(bool non_blocking, TouchStall* stall) {
  while (!pending_gestures_.empty()) {
    const GestureEvent g = pending_gestures_.front();
    const Result<bool> ready = ProbeGesture(g, non_blocking, stall);
    if (!ready.ok()) {
      // The backing read failed past its bounded retries: shed this
      // gesture's execution — one lost answer, not a lost session.
      ++stats_.fetch_errors;
      probe_pins_.clear();
      pending_gestures_.pop_front();
      continue;
    }
    if (!*ready) {
      ++stats_.suspensions;
      if (trace_ != nullptr) {
        const std::int64_t first =
            stall != nullptr && !stall->entries.empty() &&
                    !stall->entries.front().blocks.empty()
                ? stall->entries.front().blocks.front()
                : -1;
        const std::int64_t blocks =
            stall != nullptr ? stall->total_blocks() : 0;
        trace_->Record(obs::SpanStage::kSuspended, trace_quantum_,
                       trace_session_, first, blocks);
      }
      return TouchOutcome::kSuspended;
    }
    pending_gestures_.pop_front();
    OnGesture(g);
    probe_pins_.clear();
  }
  return TouchOutcome::kCompleted;
}

Result<bool> Kernel::ProbeGesture(const GestureEvent& event,
                                  bool non_blocking, TouchStall* stall) {
  if (stall != nullptr) {
    // Each probe attempt reports its own misses; entries from a previous
    // attempt of this (or another) gesture are stale.
    stall->entries.clear();
  }
  // Mirror OnGesture's targeting without mutating it. Events queued
  // behind an unexecuted kBegan are never probed before it runs (FIFO),
  // so gesture_target_ is current whenever it is consulted here.
  ObjectState* obj =
      event.type == GestureType::kTap || event.phase == GesturePhase::kBegan
          ? FindObjectAt(event.position)
          : gesture_target_;
  if (obj == nullptr) {
    return true;
  }
  if (obj->view->kind() == ObjectKind::kTable) {
    // Fat-table gestures read per-attribute sources; only a reclaimed
    // table's sources can fault from a slow tier (resident tables read
    // raw views or zero-copy slices).
    if (!obj->table->raw_released()) {
      return true;
    }
    return ProbeTableGesture(*obj, event, non_blocking, stall);
  }
  if (obj->paged == nullptr || !obj->paged->may_block()) {
    return true;  // No slow-tier reads possible.
  }

  // The base-row range this gesture's execution will read from the paged
  // column; [-1, -1] = none.
  RowId first = -1;
  RowId last = -1;
  if (event.type == GestureType::kTap) {
    const sim::PointCm local = obj->view->ScreenToLocal(event.position);
    first = last = touch::MapTouch(*obj->view, local).row;
  } else if (event.type == GestureType::kSlide &&
             event.phase == GesturePhase::kChanged) {
    const sim::PointCm local = obj->view->ScreenToLocal(event.position);
    const RowId row = touch::MapTouch(*obj->view, local).row;
    switch (obj->action.kind) {
      case ActionKind::kScan:
      case ActionKind::kAggregate:
      case ActionKind::kFilteredScan:
        first = last = row;
        break;
      case ActionKind::kSummary: {
        if (ChooseLevelFor(*obj, event) > 0) {
          return true;  // Served from the in-memory sample hierarchy.
        }
        const std::int64_t k = SummaryBandK(*obj);
        first = std::max<RowId>(row - k, 0);
        last = std::min<RowId>(row + k, obj->table->row_count() - 1);
        break;
      }
      case ActionKind::kGroupBy:
        return true;  // Table-object action; unreachable for columns.
    }
  } else {
    return true;  // Pinch / rotate / begin / end read no base data.
  }
  if (first < 0) {
    return true;
  }
  return ProbeBlocks(obj->paged, first, last, non_blocking, stall);
}

Result<bool> Kernel::ProbeTableGesture(const ObjectState& obj,
                                       const GestureEvent& event,
                                       bool non_blocking,
                                       TouchStall* stall) {
  // Which attributes this gesture's execution will read, at which rows.
  RowId row = -1;
  std::vector<std::size_t> attributes;
  RowId band_first = -1;
  RowId band_last = -1;
  if (event.type == GestureType::kTap) {
    // "A single tap anywhere on a table data object reveals a full
    // tuple": every attribute's covering block must be resident.
    const sim::PointCm local = obj.view->ScreenToLocal(event.position);
    row = touch::MapTouch(*obj.view, local).row;
    for (std::size_t c = 0; c < obj.table->schema().num_fields(); ++c) {
      attributes.push_back(c);
    }
  } else if (event.type == GestureType::kSlide &&
             event.phase == GesturePhase::kChanged) {
    const sim::PointCm local = obj.view->ScreenToLocal(event.position);
    const touch::TouchMapping mapping = touch::MapTouch(*obj.view, local);
    row = mapping.row;
    switch (obj.action.kind) {
      case ActionKind::kScan:
        attributes.push_back(mapping.attribute);
        break;
      case ActionKind::kGroupBy:
        attributes.push_back(obj.action.group_key_attribute);
        if (obj.action.group_value_attribute !=
            obj.action.group_key_attribute) {
          attributes.push_back(obj.action.group_value_attribute);
        }
        break;
      case ActionKind::kAggregate:
      case ActionKind::kFilteredScan:
        attributes.push_back(obj.column.value_or(0));
        break;
      case ActionKind::kSummary: {
        const std::int64_t k = SummaryBandK(obj);
        band_first = std::max<RowId>(row - k, 0);
        band_last = std::min<RowId>(row + k, obj.table->row_count() - 1);
        attributes.push_back(obj.column.value_or(0));
        break;
      }
    }
  } else {
    return true;  // Pinch / rotate / begin / end read no base data.
  }
  if (row < 0) {
    return true;
  }
  // Probe every attribute even after one misses: the stall then carries
  // all the cold attributes' blocks, so ONE suspend (and one fetch
  // ticket) covers the whole tuple instead of a round trip per
  // attribute. Resident attributes stay pinned in probe_pins_ across the
  // resume either way.
  bool ready = true;
  for (const std::size_t attribute : attributes) {
    const RowId first = band_first >= 0 ? band_first : row;
    const RowId last = band_last >= 0 ? band_last : row;
    DBTOUCH_ASSIGN_OR_RETURN(
        const bool attr_ready,
        ProbeBlocks(obj.AttributeSource(attribute), first, last,
                    non_blocking, stall));
    ready = ready && attr_ready;
  }
  return ready;
}

Result<bool> Kernel::ProbeBlocks(
    const std::shared_ptr<storage::PagedColumnSource>& source, RowId first,
    RowId last, bool non_blocking, TouchStall* stall) {
  if (source == nullptr || !source->may_block()) {
    return true;
  }
  const std::int64_t first_block = source->BlockFor(first);
  const std::int64_t last_block = source->BlockFor(last);
  if (!non_blocking && last_block > first_block) {
    // Blocking path over a slow tier: batch the band's cold stretches
    // into ranged reads up front, so the per-block pins below hit instead
    // of paying one backing-store round trip each. (The non-blocking path
    // gets the same batching from the FetchQueue, which coalesces the
    // stall's adjacent demand enqueues at pop time.)
    DBTOUCH_RETURN_IF_ERROR(source->Preload(first_block, last_block));
  }
  const std::uintptr_t token = source->share_token();
  std::vector<std::int64_t> missing;
  for (std::int64_t block = first_block; block <= last_block; ++block) {
    bool held = false;
    for (const storage::BlockPin& pin : probe_pins_) {
      // Token comparison, not source identity: PAX column sources of one
      // table share a block namespace, so a block pinned for one
      // attribute already keeps the whole multi-column payload resident.
      if (pin.block() == block &&
          pin.source()->share_token() == token) {
        held = true;  // Pinned by a previous attempt of this gesture.
        break;
      }
    }
    if (held) {
      continue;
    }
    if (non_blocking) {
      // row_hint -1: the probe must not feed the gesture detector (the
      // execution it fronts will, with the real touched rows).
      DBTOUCH_ASSIGN_OR_RETURN(std::optional<storage::BlockPin> pin,
                               source->TryPinBlock(block, -1));
      if (pin.has_value()) {
        probe_pins_.push_back(std::move(*pin));
      } else {
        missing.push_back(block);
      }
    } else {
      DBTOUCH_ASSIGN_OR_RETURN(storage::BlockPin pin,
                               source->PinBlock(block, -1));
      probe_pins_.push_back(std::move(pin));
    }
  }
  if (!missing.empty()) {
    if (stall != nullptr) {
      // Merge into the stall under the share token: two PAX column
      // sources waiting on the same payload become one entry, and a
      // block never gets fetched twice for one suspend.
      TouchStall::Entry* entry = nullptr;
      for (TouchStall::Entry& e : stall->entries) {
        if (e.source->share_token() == token) {
          entry = &e;
          break;
        }
      }
      if (entry == nullptr) {
        stall->entries.push_back(TouchStall::Entry{source, {}});
        entry = &stall->entries.back();
      }
      for (const std::int64_t block : missing) {
        if (std::find(entry->blocks.begin(), entry->blocks.end(), block) ==
            entry->blocks.end()) {
          entry->blocks.push_back(block);
        }
      }
    }
    return false;
  }
  return true;
}

std::int64_t Kernel::SummaryBandK(const ObjectState& obj) const {
  const std::int64_t stride =
      (obj.hierarchy != nullptr && config_.use_sampling)
          ? 1
          : std::max<std::int64_t>(
                obj.table->row_count() /
                    std::max<std::int64_t>(
                        device_.DistinctPositions(
                            obj.view->tuple_axis_extent()),
                        1),
                1);
  return std::min(obj.action.summary_k * stride,
                  config_.max_rows_per_touch / 2);
}

void Kernel::MaybePrefetch(ObjectState* obj, RowId row,
                           const GestureEvent& event) {
  const std::shared_ptr<storage::PagedColumnSource> source =
      obj->BoundSource();
  if (!config_.prefetch_enabled || source == nullptr ||
      !source->may_block()) {
    return;
  }
  obj->extrapolator.Observe(event.timestamp_us, row);
  // Close the warm-up feedback loop: the cache's claimed-before-eviction
  // score scales the horizon, so a stream of warm-ups dying unclaimed
  // shortens the reach instead of churning the staging pad forever.
  obj->extrapolator.ObserveClaimRate(
      shared_->buffer_manager().prefetch_claim_rate());
  const prefetch::RowRange range = obj->extrapolator.PredictRange(
      event.timestamp_us,
      config_.prefetch_horizon_s * obj->extrapolator.horizon_scale(),
      source->row_count());
  if (range.empty()) {
    return;
  }
  // The whole predicted path goes down as ranged warm-up tickets: the
  // horizon expresses itself in the read size (one backing read per cold
  // stretch) instead of block-by-block enqueues re-merged at pop time.
  // Only real enqueues spend the per-touch budget: during a steady slide
  // the head of the predicted range is already resident, and the cold
  // tail is exactly what needs warming.
  const std::int64_t issued = source->RequestPrefetchRange(
      source->BlockFor(range.first), source->BlockFor(range.last),
      config_.max_prefetch_blocks_per_touch);
  stats_.prefetch_requests += issued;
}

void Kernel::Replay(const sim::GestureTrace& trace) {
  for (const sim::TouchEvent& e : trace.events) {
    OnTouch(e);
  }
}

void Kernel::OnGesture(const GestureEvent& event) {
  ++stats_.gesture_events;

  if (event.phase == GesturePhase::kBegan) {
    sessions_.OnGestureBegin(event.timestamp_us);
    gesture_target_ = FindObjectAt(event.position);
    applied_pinch_scale_ = 1.0;
    if (gesture_target_ != nullptr) {
      gesture_target_->rotation_fired_this_gesture = false;
    }
  }
  // Taps never see a kBegan (they resolve at finger-up), so target them
  // directly.
  ObjectState* obj = event.type == GestureType::kTap
                         ? FindObjectAt(event.position)
                         : gesture_target_;
  if (event.type == GestureType::kTap) {
    sessions_.OnGestureBegin(event.timestamp_us);
  }
  if (obj == nullptr) {
    if (event.phase == GesturePhase::kEnded) {
      gesture_target_ = nullptr;
    }
    return;  // Gesture on empty screen space.
  }

  const std::int64_t start_ns = NowWallNs();
  switch (event.type) {
    case GestureType::kTap:
      ++stats_.taps;
      HandleTap(event, obj);
      break;
    case GestureType::kSlide:
      if (event.phase == GesturePhase::kChanged) {
        ++stats_.slide_steps;
        HandleSlideStep(event, obj);
      }
      break;
    case GestureType::kPinch:
      if (event.phase == GesturePhase::kChanged ||
          event.phase == GesturePhase::kEnded) {
        ++stats_.pinch_steps;
        HandlePinchStep(event, obj);
      }
      break;
    case GestureType::kRotate:
      ++stats_.rotate_steps;
      HandleRotate(event, obj);
      break;
  }
  // Pending layout rotations convert a bounded chunk per touch.
  if (obj->rotator != nullptr && !obj->rotator->done()) {
    obj->rotator->Step();
    if (obj->rotator->done()) {
      DBTOUCH_CHECK_OK(obj->rotator->Finish());
      obj->rotator.reset();
      ++stats_.layout_rotations;
    }
  }
  const std::int64_t wall = NowWallNs() - start_ns;
  stats_.exec_wall_ns += wall;
  stats_.max_touch_wall_ns = std::max(stats_.max_touch_wall_ns, wall);

  sessions_.OnTouch(event.timestamp_us);
  if (event.phase == GesturePhase::kEnded &&
      event.type != GestureType::kTap) {
    gesture_target_ = nullptr;
    // Finger lifted — the pause signal that re-enables block-cache
    // admission (Section 2.6: interest in the current region). Scoped to
    // this object's column so other sessions' scans are untouched. The
    // working pins drop too: an idle session must not hold buffer-pool
    // blocks pinned (retained blocks stay cached, so the next touch on
    // the region is still a hit).
    obj->BoundSource()->OnGesturePause();
    obj->cursor.ReleasePin();
    if (obj->agg_op != nullptr) {
      obj->agg_op->ReleasePin();
    }
    if (obj->filter_op != nullptr) {
      obj->filter_op->ReleasePin();
    }
    if (obj->groupby_op != nullptr) {
      obj->groupby_op->ReleasePins();
    }
    for (JoinBinding& binding : joins_) {
      if (binding.left == obj->id || binding.right == obj->id) {
        binding.join->ReleasePins();
      }
    }
  }
}

Kernel::ObjectState* Kernel::FindObjectAt(const sim::PointCm& screen_point) {
  touch::View* hit = root_view_.HitTest(screen_point);
  if (hit == nullptr || hit == &root_view_) {
    return nullptr;
  }
  return FindObjectByView(hit);
}

Kernel::ObjectState* Kernel::FindObjectByView(const touch::View* view) {
  for (auto& [id, state] : objects_) {
    if (state->view == view) {
      return state.get();
    }
  }
  return nullptr;
}

sim::PointCm Kernel::ResultPosition(const ObjectState& /*obj*/,
                                    const sim::PointCm& screen_touch) const {
  // "Result values are typically shifted slightly sideways from the exact
  // touch location such as to avoid being hidden below the user finger."
  sim::PointCm p = screen_touch;
  p.x += device_.config().finger_width_cm;
  return p;
}

void Kernel::HandleTap(const GestureEvent& event, ObjectState* obj) {
  const sim::PointCm local = obj->view->ScreenToLocal(event.position);
  const TouchMapping mapping = touch::MapTouch(*obj->view, local);
  ++obj->stats.touches;
  sessions_.OnGestureBegin(event.timestamp_us);

  if (obj->view->kind() == ObjectKind::kTable) {
    // "A single tap anywhere on a table data object reveals a full tuple."
    const std::size_t fields = obj->table->schema().num_fields();
    for (std::size_t c = 0; c < fields; ++c) {
      ResultItem item;
      item.object = obj->id;
      item.kind = ResultKind::kTuple;
      item.timestamp_us = event.timestamp_us;
      item.screen_position = ResultPosition(*obj, event.position);
      item.row = mapping.row;
      item.attribute = c;
      item.value = obj->table->GetValue(mapping.row, c);
      results_.Append(std::move(item));
    }
    stats_.entries_returned += 1;
    stats_.rows_scanned += 1;
    obj->stats.entries_returned += 1;
    obj->stats.rows_scanned += 1;
    sessions_.AddEntries(1);
    sessions_.AddRowsScanned(1);
    return;
  }
  // "A single tap anywhere on a column data object reveals a single
  // column value."
  ResultItem item;
  item.object = obj->id;
  item.kind = ResultKind::kValue;
  item.timestamp_us = event.timestamp_us;
  item.screen_position = ResultPosition(*obj, event.position);
  item.row = mapping.row;
  item.value = obj->ReadBoundValue(mapping.row);
  results_.Append(std::move(item));
  ++stats_.entries_returned;
  ++stats_.rows_scanned;
  ++obj->stats.entries_returned;
  ++obj->stats.rows_scanned;
  sessions_.AddEntries(1);
  sessions_.AddRowsScanned(1);
}

int Kernel::ChooseLevelFor(const ObjectState& obj,
                           const GestureEvent& event) const {
  if (!config_.use_sampling || obj.hierarchy == nullptr) {
    return 0;
  }
  const double extent = obj.view->tuple_axis_extent();
  const std::int64_t positions = device_.DistinctPositions(extent);
  // Positions skipped per registered event, from the slide velocity along
  // the tuple axis.
  const double axis_velocity =
      obj.view->orientation() == touch::Orientation::kVertical
          ? event.velocity_y_cm_s
          : event.velocity_x_cm_s;
  const double positions_per_event =
      std::abs(axis_velocity) * device_.config().points_per_cm /
      device_.config().touch_event_hz;
  return sampling::ChooseLevel(obj.table->row_count(), positions,
                               std::max(positions_per_event, 1.0),
                               obj.hierarchy->num_levels(),
                               config_.level_policy);
}

void Kernel::HandleSlideStep(const GestureEvent& event, ObjectState* obj) {
  const sim::PointCm local = obj->view->ScreenToLocal(event.position);
  const TouchMapping mapping = touch::MapTouch(*obj->view, local);
  ++obj->stats.touches;
  MaybePrefetch(obj, mapping.row, event);
  const std::int64_t entries = ExecuteAction(obj, mapping, event);
  stats_.entries_returned += entries;
  obj->stats.entries_returned += entries;
  sessions_.AddEntries(entries);

  // Slide-driven joins: feed every join this object participates in.
  for (JoinBinding& binding : joins_) {
    exec::JoinSide side;
    if (binding.left == obj->id) {
      side = exec::JoinSide::kLeft;
    } else if (binding.right == obj->id) {
      side = exec::JoinSide::kRight;
    } else {
      continue;
    }
    const auto matches = binding.join->Feed(side, mapping.row);
    for (const exec::JoinMatch& m : matches) {
      ResultItem item;
      item.object = obj->id;
      item.kind = ResultKind::kJoinMatch;
      item.timestamp_us = event.timestamp_us;
      item.screen_position = ResultPosition(*obj, event.position);
      item.row = side == exec::JoinSide::kLeft ? m.left_row : m.right_row;
      item.value = storage::Value(m.key);
      results_.Append(std::move(item));
    }
    stats_.entries_returned += static_cast<std::int64_t>(matches.size());
  }
}

std::int64_t Kernel::ExecuteAction(ObjectState* obj,
                                   const TouchMapping& mapping,
                                   const GestureEvent& event) {
  const sim::PointCm result_pos = ResultPosition(*obj, event.position);
  const RowId base_row = mapping.row;

  switch (obj->action.kind) {
    case ActionKind::kScan: {
      ResultItem item;
      item.object = obj->id;
      item.kind = ResultKind::kValue;
      item.timestamp_us = event.timestamp_us;
      item.screen_position = result_pos;
      item.row = base_row;
      item.attribute = mapping.attribute;
      item.value = obj->view->kind() == ObjectKind::kTable
                       ? obj->table->GetValue(base_row, mapping.attribute)
                       : obj->ReadBoundValue(base_row);
      results_.Append(std::move(item));
      ++stats_.rows_scanned;
      ++obj->stats.rows_scanned;
      sessions_.AddRowsScanned(1);
      return 1;
    }

    case ActionKind::kAggregate: {
      DBTOUCH_CHECK(obj->agg_op != nullptr);
      obj->agg_op->Feed(base_row);
      ResultItem item;
      item.object = obj->id;
      item.kind = ResultKind::kAggregate;
      item.timestamp_us = event.timestamp_us;
      item.screen_position = result_pos;
      item.row = base_row;
      item.value = storage::Value(obj->agg_op->value());
      item.rows_aggregated = obj->agg_op->rows_seen();
      results_.Append(std::move(item));
      ++stats_.rows_scanned;
      ++obj->stats.rows_scanned;
      sessions_.AddRowsScanned(1);
      return 1;
    }

    case ActionKind::kSummary: {
      // Band semantics: the touch denotes a band of base rows sized by the
      // chosen level's stride. With sampling, read 2k+1 sample entries;
      // without, read the full base band (same data region, more reads).
      const int level = ChooseLevelFor(*obj, event);
      obj->stats.last_level_used = level;
      std::int64_t scanned = 0;
      exec::SummaryResult sr;
      bool approximate = false;
      if (level > 0 && obj->hierarchy != nullptr) {
        exec::InteractiveSummaryOp op(obj->hierarchy->LevelView(level),
                                      obj->action.summary_k,
                                      obj->action.agg);
        sr = op.ComputeAt(obj->hierarchy->FromBaseRow(level, base_row));
        scanned = op.rows_scanned();
        // Convert the band back to base rows; the last sample entry
        // represents its whole stride of base rows.
        sr.first = obj->hierarchy->ToBaseRow(level, sr.first);
        sr.last = std::min<RowId>(
            obj->hierarchy->ToBaseRow(level, sr.last) +
                obj->hierarchy->LevelStride(level) - 1,
            obj->table->row_count() - 1);
        approximate = true;
      } else {
        // Base-data band of equivalent width, truncated to the per-touch
        // budget so one touch can never stall unboundedly.
        const std::int64_t k_base = SummaryBandK(*obj);
        // The band scans block-at-a-time whatever the tier: pool blocks
        // for paged objects, gated zero-copy slices on resident tables,
        // rebind-source pins once the matrix was reclaimed.
        exec::InteractiveSummaryOp op(obj->BoundSource(), k_base,
                                      obj->action.agg);
        sr = op.ComputeAt(base_row);
        scanned = op.rows_scanned();
      }
      ResultItem item;
      item.object = obj->id;
      item.kind = ResultKind::kSummary;
      item.timestamp_us = event.timestamp_us;
      item.screen_position = result_pos;
      item.row = base_row;
      item.value = storage::Value(sr.value);
      item.band_first = sr.first;
      item.band_last = sr.last;
      item.rows_aggregated = sr.rows;
      item.approximate = approximate;
      results_.Append(std::move(item));
      stats_.rows_scanned += scanned;
      obj->stats.rows_scanned += scanned;
      sessions_.AddRowsScanned(scanned);
      return 1;
    }

    case ActionKind::kFilteredScan: {
      DBTOUCH_CHECK(obj->filter_op != nullptr);
      // Index-assisted slide (Section 2.6): if this touch's zone cannot
      // contain a matching value, answer without reading the data.
      if (obj->action.use_zone_map && obj->hierarchy != nullptr) {
        if (obj->base_zone_map == nullptr) {
          // Keyed by the object's own hierarchy, so the map always
          // matches the data this object scans — even if the table name
          // was re-registered with new contents since binding.
          obj->base_zone_map =
              shared_->GetOrBuildBaseZoneMap(obj->hierarchy);
        }
        const exec::Predicate::Interval window =
            obj->action.predicate->ValueInterval();
        if (!obj->base_zone_map->MayMatch(base_row, window.lo, window.hi)) {
          ++stats_.rows_pruned;
          return 0;
        }
      }
      ++stats_.rows_scanned;
      ++obj->stats.rows_scanned;
      sessions_.AddRowsScanned(1);
      if (!obj->filter_op->Feed(base_row)) {
        return 0;  // Entry does not satisfy the where-restriction.
      }
      ResultItem item;
      item.object = obj->id;
      item.kind = ResultKind::kFilterMatch;
      item.timestamp_us = event.timestamp_us;
      item.screen_position = result_pos;
      item.row = base_row;
      item.value = obj->ReadBoundValue(base_row);
      results_.Append(std::move(item));
      return 1;
    }

    case ActionKind::kGroupBy: {
      DBTOUCH_CHECK(obj->groupby_op != nullptr);
      ++stats_.rows_scanned;
      ++obj->stats.rows_scanned;
      sessions_.AddRowsScanned(1);
      if (!obj->groupby_op->Feed(base_row)) {
        return 0;  // Revisited tuple.
      }
      // Surface the touched tuple's group with its fresh aggregate. The
      // key re-read goes through the operator's own backing (pinned
      // blocks on a reclaimed table), not a raw table view.
      const std::int64_t key = obj->groupby_op->KeyAt(base_row);
      double group_value = 0.0;
      std::int64_t group_count = 0;
      for (const auto& g : obj->groupby_op->Snapshot()) {
        if (g.key == key) {
          group_value = g.value;
          group_count = g.count;
          break;
        }
      }
      ResultItem item;
      item.object = obj->id;
      item.kind = ResultKind::kGroupUpdate;
      item.timestamp_us = event.timestamp_us;
      item.screen_position = result_pos;
      item.row = base_row;
      item.attribute = obj->action.group_key_attribute;
      item.value = storage::Value(group_value);
      item.rows_aggregated = group_count;
      results_.Append(std::move(item));
      return 1;
    }
  }
  return 0;
}

void Kernel::HandlePinchStep(const GestureEvent& event, ObjectState* obj) {
  // GestureEvent carries cumulative scale; apply only the delta.
  if (event.pinch_scale <= 0.0 || applied_pinch_scale_ <= 0.0) {
    return;
  }
  const double step = event.pinch_scale / applied_pinch_scale_;
  applied_pinch_scale_ = event.pinch_scale;
  obj->view->ApplyZoom(step, config_.zoom_min_extent_cm,
                       config_.zoom_max_extent_cm);
}

void Kernel::HandleRotate(const GestureEvent& event, ObjectState* obj) {
  if (obj->rotation_fired_this_gesture) {
    return;
  }
  if (std::abs(event.rotation_rad) < config_.rotation_trigger_rad) {
    return;
  }
  obj->rotation_fired_this_gesture = true;
  obj->view->FlipOrientation();
  if (obj->table->raw_released()) {
    // A spilled-and-reclaimed table has no matrix to rewrite; the gesture
    // still flips the on-screen orientation, the physical layout lives in
    // the block files (frozen, like registered tables under sharing).
    return;
  }
  if (obj->view->kind() == ObjectKind::kTable) {
    // "Rotating a row-oriented table changes its physical layout to a
    // column-store structure ... (and vice versa)" — incrementally.
    const storage::MajorOrder target =
        obj->table->layout() == storage::MajorOrder::kRowMajor
            ? storage::MajorOrder::kColumnMajor
            : storage::MajorOrder::kRowMajor;
    obj->rotator = std::make_unique<layout::IncrementalRotator>(
        obj->table.get(), target, config_.rotation_rows_per_step);
  }
}

Result<const ObjectStats*> Kernel::object_stats(ObjectId id) const {
  const auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("no object " + std::to_string(id));
  }
  return const_cast<const ObjectStats*>(&it->second->stats);
}

Result<bool> Kernel::rotation_in_progress(ObjectId id) const {
  const auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("no object " + std::to_string(id));
  }
  return it->second->rotator != nullptr && !it->second->rotator->done();
}

void Kernel::PumpMaintenance() {
  for (auto& [id, obj] : objects_) {
    if (obj->rotator != nullptr && !obj->rotator->done()) {
      obj->rotator->Step();
    }
    if (obj->rotator != nullptr && obj->rotator->done()) {
      DBTOUCH_CHECK_OK(obj->rotator->Finish());
      obj->rotator.reset();
      ++stats_.layout_rotations;
    }
  }
}

}  // namespace dbtouch::core
