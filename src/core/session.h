// Query sessions: "In dbTouch, a query is a session of one or more
// continuous gestures and the system needs to react to every touch"
// (paper Section 1). Sessions group gestures separated by less than an
// idle gap; their summaries are what an analyst reviews after exploring.

#ifndef DBTOUCH_CORE_SESSION_H_
#define DBTOUCH_CORE_SESSION_H_

#include <cstdint>
#include <vector>

#include "sim/virtual_clock.h"

namespace dbtouch::core {

struct SessionSummary {
  std::int64_t id = 0;
  sim::Micros started_us = 0;
  sim::Micros ended_us = 0;
  std::int64_t gestures = 0;
  std::int64_t touches = 0;
  std::int64_t entries_returned = 0;
  std::int64_t rows_scanned = 0;

  double duration_s() const {
    return sim::MicrosToSeconds(ended_us - started_us);
  }
};

/// Tracks the current session and the history of completed ones.
class SessionTracker {
 public:
  /// `idle_gap_us`: a gesture starting more than this after the previous
  /// activity opens a new session.
  explicit SessionTracker(sim::Micros idle_gap_us = 3'000'000)
      : idle_gap_us_(idle_gap_us) {}

  /// Called at each gesture begin; decides whether it extends the current
  /// session or opens a new one.
  void OnGestureBegin(sim::Micros now);

  /// Activity accounting (from the kernel's pipeline).
  void OnTouch(sim::Micros now);
  void AddEntries(std::int64_t entries);
  void AddRowsScanned(std::int64_t rows);

  /// Force-closes the current session (e.g. user lifts device).
  void EndSession(sim::Micros now);

  bool active() const { return active_; }
  const SessionSummary& current() const { return current_; }
  const std::vector<SessionSummary>& completed() const { return completed_; }

 private:
  sim::Micros idle_gap_us_;
  bool active_ = false;
  sim::Micros last_activity_us_ = 0;
  std::int64_t next_id_ = 1;
  SessionSummary current_;
  std::vector<SessionSummary> completed_;
};

}  // namespace dbtouch::core

#endif  // DBTOUCH_CORE_SESSION_H_
