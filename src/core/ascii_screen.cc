#include "core/ascii_screen.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace dbtouch::core {

namespace {

struct Grid {
  int columns;
  int rows;
  std::vector<std::string> lines;

  Grid(int c, int r) : columns(c), rows(r),
                       lines(static_cast<std::size_t>(r),
                             std::string(static_cast<std::size_t>(c), ' ')) {}

  void Put(int col, int row, char ch) {
    if (col >= 0 && col < columns && row >= 0 && row < rows) {
      lines[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
          ch;
    }
  }

  void PutText(int col, int row, const std::string& text) {
    for (std::size_t i = 0; i < text.size(); ++i) {
      Put(col + static_cast<int>(i), row, text[i]);
    }
  }
};

}  // namespace

std::string RenderScreen(Kernel& kernel, const AsciiScreenOptions& options) {
  const auto& device = kernel.device().config();
  Grid grid(options.columns, options.rows);
  const double x_scale =
      static_cast<double>(options.columns - 1) / device.screen_width_cm;
  const double y_scale =
      static_cast<double>(options.rows - 1) / device.screen_height_cm;
  const auto to_col = [&](double x_cm) {
    return static_cast<int>(std::lround(x_cm * x_scale));
  };
  const auto to_row = [&](double y_cm) {
    return static_cast<int>(std::lround(y_cm * y_scale));
  };

  // Object frames.
  for (const ObjectId id : kernel.ListObjects()) {
    const auto view = kernel.object_view(id);
    if (!view.ok()) {
      continue;
    }
    const touch::RectCm& f = (*view)->frame();
    const int left = to_col(f.x);
    const int right = to_col(f.x + f.width);
    const int top = to_row(f.y);
    const int bottom = to_row(f.y + f.height);
    for (int c = left; c <= right; ++c) {
      grid.Put(c, top, '-');
      grid.Put(c, bottom, '-');
    }
    for (int r = top; r <= bottom; ++r) {
      grid.Put(left, r, '|');
      grid.Put(right, r, '|');
    }
    grid.Put(left, top, '+');
    grid.Put(right, top, '+');
    grid.Put(left, bottom, '+');
    grid.Put(right, bottom, '+');
    grid.PutText(left + 1, top, (*view)->name().substr(
                                    0, static_cast<std::size_t>(std::max(
                                           right - left - 1, 0))));
  }

  // Visible results, oldest first so fresh values overdraw faded ones.
  for (const VisibleResult& v :
       kernel.results().VisibleAt(kernel.clock().now())) {
    const int col = to_col(v.item->screen_position.x);
    const int row = to_row(v.item->screen_position.y);
    if (v.opacity < options.dim_threshold) {
      grid.Put(col, row, '.');
    } else {
      grid.PutText(col, row, v.item->value.ToString().substr(0, 8));
    }
  }

  std::string out;
  out.reserve(static_cast<std::size_t>(options.rows) *
              static_cast<std::size_t>(options.columns + 1));
  for (const std::string& line : grid.lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace dbtouch::core
