#include "gesture/recognizer.h"

#include <cmath>

#include "common/macros.h"

namespace dbtouch::gesture {

using sim::DistanceCm;
using sim::TouchEvent;
using sim::TouchPhase;

namespace {

/// Wraps an angle delta into (-pi, pi] so rotation accumulates correctly
/// across the atan2 branch cut.
double WrapToPi(double a) {
  while (a > M_PI) {
    a -= 2.0 * M_PI;
  }
  while (a <= -M_PI) {
    a += 2.0 * M_PI;
  }
  return a;
}

}  // namespace

GestureRecognizer::GestureRecognizer(const RecognizerConfig& config)
    : config_(config) {}

void GestureRecognizer::Reset() {
  state_ = State::kIdle;
  fingers_.clear();
  velocity_x_ = 0.0;
  velocity_y_ = 0.0;
  initial_separation_ = 0.0;
  last_raw_angle_ = 0.0;
  last_scale_ = 1.0;
  last_rotation_ = 0.0;
}

std::vector<GestureEvent> GestureRecognizer::OnTouch(const TouchEvent& e) {
  std::vector<GestureEvent> out;
  switch (e.phase) {
    case TouchPhase::kBegan:
      HandleBegan(e, &out);
      break;
    case TouchPhase::kMoved:
      HandleMoved(e, &out);
      break;
    case TouchPhase::kEnded:
    case TouchPhase::kCancelled:
      HandleEnded(e, &out);
      break;
  }
  return out;
}

GestureEvent GestureRecognizer::MakeEvent(GestureType type,
                                          GesturePhase phase, Micros ts,
                                          PointCm pos) const {
  GestureEvent ev;
  ev.type = type;
  ev.phase = phase;
  ev.timestamp_us = ts;
  ev.position = pos;
  ev.velocity_x_cm_s = velocity_x_;
  ev.velocity_y_cm_s = velocity_y_;
  ev.pinch_scale = last_scale_;
  ev.rotation_rad = last_rotation_;
  return ev;
}

void GestureRecognizer::HandleBegan(const TouchEvent& e,
                                    std::vector<GestureEvent>* out) {
  fingers_[e.finger_id] = Finger{e.position, e.timestamp_us, e.position,
                                 e.timestamp_us};
  switch (state_) {
    case State::kIdle:
      velocity_x_ = 0.0;
      velocity_y_ = 0.0;
      last_scale_ = 1.0;
      last_rotation_ = 0.0;
      state_ = State::kSingleUndecided;
      break;
    case State::kSliding:
      out->push_back(MakeEvent(GestureType::kSlide, GesturePhase::kEnded,
                               e.timestamp_us, e.position));
      [[fallthrough]];
    case State::kSingleUndecided:
      if (fingers_.size() == 2) {
        initial_separation_ = PairSeparation();
        last_raw_angle_ = PairAngle();
        last_rotation_ = 0.0;
        state_ = State::kTwoUndecided;
      }
      break;
    default:
      // Third finger or touches during drain: ignored.
      break;
  }
}

void GestureRecognizer::UpdateVelocity(const Finger& finger,
                                       const TouchEvent& e) {
  const Micros dt = e.timestamp_us - finger.last_time;
  if (dt <= 0) {
    return;
  }
  const double dt_s = sim::MicrosToSeconds(dt);
  const double vx = (e.position.x - finger.last_pos.x) / dt_s;
  const double vy = (e.position.y - finger.last_pos.y) / dt_s;
  const double a = config_.velocity_smoothing;
  velocity_x_ = a * vx + (1.0 - a) * velocity_x_;
  velocity_y_ = a * vy + (1.0 - a) * velocity_y_;
}

double GestureRecognizer::PairSeparation() const {
  DBTOUCH_CHECK(fingers_.size() >= 2);
  const auto it = fingers_.begin();
  const auto jt = std::next(it);
  return DistanceCm(it->second.last_pos, jt->second.last_pos);
}

double GestureRecognizer::PairAngle() const {
  DBTOUCH_CHECK(fingers_.size() >= 2);
  const auto it = fingers_.begin();
  const auto jt = std::next(it);
  return std::atan2(jt->second.last_pos.y - it->second.last_pos.y,
                    jt->second.last_pos.x - it->second.last_pos.x);
}

PointCm GestureRecognizer::PairCentroid() const {
  DBTOUCH_CHECK(fingers_.size() >= 2);
  const auto it = fingers_.begin();
  const auto jt = std::next(it);
  return PointCm{(it->second.last_pos.x + jt->second.last_pos.x) / 2.0,
                 (it->second.last_pos.y + jt->second.last_pos.y) / 2.0};
}

void GestureRecognizer::HandleMoved(const TouchEvent& e,
                                    std::vector<GestureEvent>* out) {
  const auto fit = fingers_.find(e.finger_id);
  if (fit == fingers_.end()) {
    return;  // Move for an untracked finger (e.g. during drain).
  }
  Finger& finger = fit->second;

  switch (state_) {
    case State::kSingleUndecided: {
      UpdateVelocity(finger, e);
      finger.last_pos = e.position;
      finger.last_time = e.timestamp_us;
      if (DistanceCm(finger.begin_pos, e.position) > config_.slide_slop_cm) {
        state_ = State::kSliding;
        out->push_back(MakeEvent(GestureType::kSlide, GesturePhase::kBegan,
                                 finger.begin_time, finger.begin_pos));
        out->push_back(MakeEvent(GestureType::kSlide, GesturePhase::kChanged,
                                 e.timestamp_us, e.position));
      }
      break;
    }
    case State::kSliding: {
      UpdateVelocity(finger, e);
      finger.last_pos = e.position;
      finger.last_time = e.timestamp_us;
      out->push_back(MakeEvent(GestureType::kSlide, GesturePhase::kChanged,
                               e.timestamp_us, e.position));
      break;
    }
    case State::kTwoUndecided: {
      finger.last_pos = e.position;
      finger.last_time = e.timestamp_us;
      if (fingers_.size() < 2) {
        break;
      }
      const double sep = PairSeparation();
      const double angle = PairAngle();
      last_rotation_ += WrapToPi(angle - last_raw_angle_);
      last_raw_angle_ = angle;
      const double sep_change = std::abs(sep - initial_separation_);
      const double angle_change = std::abs(last_rotation_);
      if (sep_change > config_.pinch_threshold_cm &&
          sep_change >= angle_change * initial_separation_ / 2.0) {
        state_ = State::kPinching;
        last_scale_ = initial_separation_ > 0.0
                          ? sep / initial_separation_
                          : 1.0;
        out->push_back(MakeEvent(GestureType::kPinch, GesturePhase::kBegan,
                                 e.timestamp_us, PairCentroid()));
      } else if (angle_change > config_.rotate_threshold_rad) {
        state_ = State::kRotating;
        out->push_back(MakeEvent(GestureType::kRotate, GesturePhase::kBegan,
                                 e.timestamp_us, PairCentroid()));
      }
      break;
    }
    case State::kPinching: {
      finger.last_pos = e.position;
      finger.last_time = e.timestamp_us;
      if (fingers_.size() >= 2 && initial_separation_ > 0.0) {
        last_scale_ = PairSeparation() / initial_separation_;
      }
      out->push_back(MakeEvent(GestureType::kPinch, GesturePhase::kChanged,
                               e.timestamp_us, PairCentroid()));
      break;
    }
    case State::kRotating: {
      finger.last_pos = e.position;
      finger.last_time = e.timestamp_us;
      if (fingers_.size() >= 2) {
        const double angle = PairAngle();
        last_rotation_ += WrapToPi(angle - last_raw_angle_);
        last_raw_angle_ = angle;
      }
      out->push_back(MakeEvent(GestureType::kRotate, GesturePhase::kChanged,
                               e.timestamp_us, PairCentroid()));
      break;
    }
    case State::kIdle:
    case State::kDraining:
      finger.last_pos = e.position;
      finger.last_time = e.timestamp_us;
      break;
  }
}

void GestureRecognizer::HandleEnded(const TouchEvent& e,
                                    std::vector<GestureEvent>* out) {
  const auto fit = fingers_.find(e.finger_id);
  if (fit == fingers_.end()) {
    return;
  }
  const Finger finger = fit->second;
  fingers_.erase(fit);

  switch (state_) {
    case State::kSingleUndecided: {
      const double held_s =
          sim::MicrosToSeconds(e.timestamp_us - finger.begin_time);
      const bool is_tap =
          e.phase == TouchPhase::kEnded &&
          held_s <= config_.tap_max_duration_s &&
          DistanceCm(finger.begin_pos, e.position) <= config_.tap_slop_cm;
      if (is_tap) {
        out->push_back(MakeEvent(GestureType::kTap, GesturePhase::kEnded,
                                 e.timestamp_us, e.position));
      }
      state_ = State::kIdle;
      break;
    }
    case State::kSliding:
      out->push_back(MakeEvent(GestureType::kSlide, GesturePhase::kEnded,
                               e.timestamp_us, e.position));
      state_ = State::kIdle;
      break;
    case State::kTwoUndecided:
      state_ = fingers_.empty() ? State::kIdle : State::kDraining;
      break;
    case State::kPinching:
      out->push_back(MakeEvent(GestureType::kPinch, GesturePhase::kEnded,
                               e.timestamp_us, e.position));
      state_ = fingers_.empty() ? State::kIdle : State::kDraining;
      break;
    case State::kRotating:
      out->push_back(MakeEvent(GestureType::kRotate, GesturePhase::kEnded,
                               e.timestamp_us, e.position));
      state_ = fingers_.empty() ? State::kIdle : State::kDraining;
      break;
    case State::kDraining:
      if (fingers_.empty()) {
        state_ = State::kIdle;
      }
      break;
    case State::kIdle:
      break;
  }
}

}  // namespace dbtouch::gesture
