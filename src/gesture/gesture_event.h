// Gesture events: the output of recognition (paper Figure 3, "Recognize
// Gesture"), consumed by the dbTouch kernel's per-touch pipeline.

#ifndef DBTOUCH_GESTURE_GESTURE_EVENT_H_
#define DBTOUCH_GESTURE_GESTURE_EVENT_H_

#include <cstdint>

#include "sim/touch_event.h"
#include "sim/virtual_clock.h"

namespace dbtouch::gesture {

using sim::Micros;
using sim::PointCm;

enum class GestureType : std::uint8_t {
  kTap = 0,
  kSlide = 1,
  kPinch = 2,
  kRotate = 3,
};

const char* GestureTypeName(GestureType type);

enum class GesturePhase : std::uint8_t {
  kBegan = 0,
  kChanged = 1,
  kEnded = 2,
};

/// One recognised gesture step. Slides emit one kChanged per registered
/// touch move — the granularity at which the kernel processes data ("the
/// slide gesture is equivalent to the next operation", Section 2.3).
struct GestureEvent {
  GestureType type = GestureType::kTap;
  GesturePhase phase = GesturePhase::kBegan;
  Micros timestamp_us = 0;
  /// Current position (screen cm); the two-finger centroid for pinch and
  /// rotate.
  PointCm position;
  /// Smoothed slide velocity (cm/s), EWMA over registered moves. What the
  /// prefetcher extrapolates (Section 2.6 "Prefetching Data").
  double velocity_x_cm_s = 0.0;
  double velocity_y_cm_s = 0.0;
  /// Pinch only: current finger separation / initial separation
  /// (> 1 zoom-in, < 1 zoom-out).
  double pinch_scale = 1.0;
  /// Rotate only: accumulated rotation since the gesture began (radians).
  double rotation_rad = 0.0;
};

}  // namespace dbtouch::gesture

#endif  // DBTOUCH_GESTURE_GESTURE_EVENT_H_
