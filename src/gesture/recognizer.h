// Streaming gesture recognition: a state machine fed one TouchEvent at a
// time, emitting GestureEvents as classifications become unambiguous.
//
// Single finger: tap (short, within slop) vs slide (moves beyond slop).
// Two fingers: pinch (separation change dominates) vs rotate (angle change
// dominates). A second finger landing mid-slide ends the slide and opens a
// two-finger classification window.

#ifndef DBTOUCH_GESTURE_RECOGNIZER_H_
#define DBTOUCH_GESTURE_RECOGNIZER_H_

#include <map>
#include <vector>

#include "gesture/gesture_event.h"
#include "sim/touch_event.h"

namespace dbtouch::gesture {

struct RecognizerConfig {
  /// A contact that ends within this duration and moves less than
  /// `tap_slop_cm` is a tap.
  double tap_max_duration_s = 0.3;
  double tap_slop_cm = 0.4;
  /// Movement beyond this distance commits a single finger to a slide.
  double slide_slop_cm = 0.2;
  /// Two-finger separation change (cm) that commits to a pinch.
  double pinch_threshold_cm = 0.5;
  /// Two-finger angle change (radians) that commits to a rotate.
  double rotate_threshold_rad = 0.25;
  /// EWMA weight of the newest velocity sample (0..1].
  double velocity_smoothing = 0.4;
};

class GestureRecognizer {
 public:
  explicit GestureRecognizer(const RecognizerConfig& config = {});

  /// Feeds one touch event; returns zero or more recognised gesture steps.
  std::vector<GestureEvent> OnTouch(const sim::TouchEvent& event);

  /// Abandons any in-flight gesture (no kEnded is emitted).
  void Reset();

  /// Smoothed slide velocity of the current gesture (cm/s).
  double velocity_x() const { return velocity_x_; }
  double velocity_y() const { return velocity_y_; }

 private:
  enum class State {
    kIdle,
    kSingleUndecided,  // One finger down, tap still possible.
    kSliding,
    kTwoUndecided,  // Two fingers down, pinch/rotate undecided.
    kPinching,
    kRotating,
    kDraining,  // Gesture ended; swallowing leftover finger events.
  };

  struct Finger {
    PointCm begin_pos;
    Micros begin_time = 0;
    PointCm last_pos;
    Micros last_time = 0;
  };

  void HandleBegan(const sim::TouchEvent& e, std::vector<GestureEvent>* out);
  void HandleMoved(const sim::TouchEvent& e, std::vector<GestureEvent>* out);
  void HandleEnded(const sim::TouchEvent& e, std::vector<GestureEvent>* out);

  void UpdateVelocity(const Finger& finger, const sim::TouchEvent& e);
  /// Separation and angle of the two-finger pair.
  double PairSeparation() const;
  double PairAngle() const;
  PointCm PairCentroid() const;

  GestureEvent MakeEvent(GestureType type, GesturePhase phase, Micros ts,
                         PointCm pos) const;

  RecognizerConfig config_;
  State state_ = State::kIdle;
  std::map<std::int32_t, Finger> fingers_;
  double velocity_x_ = 0.0;
  double velocity_y_ = 0.0;
  double initial_separation_ = 0.0;
  /// Raw pair angle at the previous event; rotation accumulates wrapped
  /// per-event deltas so it tracks through the atan2 branch cut.
  double last_raw_angle_ = 0.0;
  double last_scale_ = 1.0;
  double last_rotation_ = 0.0;
};

}  // namespace dbtouch::gesture

#endif  // DBTOUCH_GESTURE_RECOGNIZER_H_
