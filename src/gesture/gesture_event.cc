#include "gesture/gesture_event.h"

namespace dbtouch::gesture {

const char* GestureTypeName(GestureType type) {
  switch (type) {
    case GestureType::kTap:
      return "tap";
    case GestureType::kSlide:
      return "slide";
    case GestureType::kPinch:
      return "pinch";
    case GestureType::kRotate:
      return "rotate";
  }
  return "?";
}

}  // namespace dbtouch::gesture
