#include "index/zone_map.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"
#include "exec/span_kernels.h"

namespace dbtouch::index {

namespace {

// Span-vectorized zone min/max: `if (v < min)` update order matches the
// scalar loop, so results are bit-identical (see span_kernels.h). String
// and strided views fall back to the per-row loop.
void AccumulateZone(const storage::ColumnView& rows, double* min_out,
                    double* max_out) {
  exec::MinMaxState state;
  if (exec::MinMaxSpan(rows, &state)) {
    if (state.min < *min_out) {
      *min_out = state.min;
    }
    if (state.max > *max_out) {
      *max_out = state.max;
    }
    return;
  }
  for (storage::RowId r = 0; r < rows.row_count(); ++r) {
    const double v = rows.GetAsDouble(r);
    *min_out = std::min(*min_out, v);
    *max_out = std::max(*max_out, v);
  }
}

}  // namespace

ZoneMap::ZoneMap(storage::ColumnView column, std::int64_t rows_per_zone)
    : rows_per_zone_(rows_per_zone) {
  DBTOUCH_CHECK(rows_per_zone > 0);
  const std::int64_t n = column.row_count();
  global_min_ = std::numeric_limits<double>::infinity();
  global_max_ = -std::numeric_limits<double>::infinity();
  for (storage::RowId first = 0; first < n; first += rows_per_zone) {
    Zone z;
    z.first = first;
    z.last = std::min<storage::RowId>(first + rows_per_zone - 1, n - 1);
    z.min = std::numeric_limits<double>::infinity();
    z.max = -std::numeric_limits<double>::infinity();
    AccumulateZone(column.Slice(z.first, z.last - z.first + 1), &z.min,
                   &z.max);
    global_min_ = std::min(global_min_, z.min);
    global_max_ = std::max(global_max_, z.max);
    zones_.push_back(z);
  }
}

ZoneMap::ZoneMap(const std::shared_ptr<storage::PagedColumnSource>& source,
                 std::int64_t rows_per_zone)
    : rows_per_zone_(rows_per_zone) {
  DBTOUCH_CHECK(rows_per_zone > 0);
  DBTOUCH_CHECK(source != nullptr);
  const std::int64_t n = source->row_count();
  global_min_ = std::numeric_limits<double>::infinity();
  global_max_ = -std::numeric_limits<double>::infinity();
  storage::PagedColumnCursor cursor(source);
  for (storage::RowId first = 0; first < n; first += rows_per_zone) {
    Zone z;
    z.first = first;
    z.last = std::min<storage::RowId>(first + rows_per_zone - 1, n - 1);
    z.min = std::numeric_limits<double>::infinity();
    z.max = -std::numeric_limits<double>::infinity();
    // One block-slice callback per overlapping block: the scan pins each
    // block once however many zones it spans.
    cursor.Scan(z.first, z.last,
                [&](const storage::ColumnView& rows, storage::RowId) {
                  AccumulateZone(rows, &z.min, &z.max);
                });
    global_min_ = std::min(global_min_, z.min);
    global_max_ = std::max(global_max_, z.max);
    zones_.push_back(z);
  }
}

std::int64_t ZoneMap::ZoneOf(storage::RowId row) const {
  DBTOUCH_CHECK(row >= 0);
  const std::int64_t z = row / rows_per_zone_;
  DBTOUCH_CHECK(z < num_zones());
  return z;
}

bool ZoneMap::MayMatch(storage::RowId row, double lo, double hi) const {
  const Zone& z = zones_[static_cast<std::size_t>(ZoneOf(row))];
  return z.max >= lo && z.min <= hi;
}

std::vector<Zone> ZoneMap::MatchingZones(double lo, double hi) const {
  std::vector<Zone> out;
  for (const Zone& z : zones_) {
    if (z.max >= lo && z.min <= hi) {
      out.push_back(z);
    }
  }
  return out;
}

}  // namespace dbtouch::index
