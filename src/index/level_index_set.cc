#include "index/level_index_set.h"

#include <algorithm>

#include "common/macros.h"

namespace dbtouch::index {

LevelIndexSet::LevelIndexSet(sampling::SampleHierarchy* hierarchy,
                             std::int64_t rows_per_zone)
    : hierarchy_(hierarchy), rows_per_zone_(rows_per_zone) {
  DBTOUCH_CHECK(hierarchy != nullptr);
  DBTOUCH_CHECK(rows_per_zone > 0);
  zone_maps_.resize(static_cast<std::size_t>(hierarchy->num_levels()));
  sorted_.resize(static_cast<std::size_t>(hierarchy->num_levels()));
}

const ZoneMap& LevelIndexSet::ZoneMapAt(int level) {
  DBTOUCH_CHECK(level >= 0 && level < hierarchy_->num_levels());
  auto& slot = zone_maps_[static_cast<std::size_t>(level)];
  if (slot == nullptr) {
    // Shrink zone size with the level so zones cover similar object area.
    const std::int64_t rows = std::max<std::int64_t>(
        rows_per_zone_ >> level, 16);
    // A spilled base has no raw level-0 view; build by pinning blocks.
    slot = level == 0 && hierarchy_->base_is_paged()
               ? std::make_unique<ZoneMap>(hierarchy_->paged_base(), rows)
               : std::make_unique<ZoneMap>(hierarchy_->LevelView(level),
                                           rows);
    ++stats_.zone_map_builds;
  }
  ++stats_.zone_map_uses;
  return *slot;
}

const SortedIndex& LevelIndexSet::SortedAt(int level) {
  DBTOUCH_CHECK(level >= 0 && level < hierarchy_->num_levels());
  auto& slot = sorted_[static_cast<std::size_t>(level)];
  if (slot == nullptr) {
    slot = level == 0 && hierarchy_->base_is_paged()
               ? std::make_unique<SortedIndex>(hierarchy_->paged_base())
               : std::make_unique<SortedIndex>(hierarchy_->LevelView(level));
    ++stats_.sorted_builds;
  }
  ++stats_.sorted_uses;
  return *slot;
}

bool LevelIndexSet::HasZoneMap(int level) const {
  return zone_maps_[static_cast<std::size_t>(level)] != nullptr;
}

bool LevelIndexSet::HasSorted(int level) const {
  return sorted_[static_cast<std::size_t>(level)] != nullptr;
}

}  // namespace dbtouch::index
