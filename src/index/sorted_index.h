// Sorted position index: (value, rowid) pairs in value order. "When
// querying an indexed column ... the slide gesture becomes the equivalent
// of an index scan" (Section 2.6): sliding over an indexed object walks
// the data in value order rather than position order.

#ifndef DBTOUCH_INDEX_SORTED_INDEX_H_
#define DBTOUCH_INDEX_SORTED_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/column.h"
#include "storage/paged_column.h"
#include "storage/types.h"

namespace dbtouch::index {

class SortedIndex {
 public:
  struct Entry {
    double value;
    storage::RowId row;
  };

  explicit SortedIndex(storage::ColumnView column);

  /// Builds by scanning `source` block-at-a-time (spilled/cold columns:
  /// the index materialises from pinned blocks, never a raw matrix).
  explicit SortedIndex(
      const std::shared_ptr<storage::PagedColumnSource>& source);

  std::int64_t size() const {
    return static_cast<std::int64_t>(entries_.size());
  }

  /// The i-th entry in value order.
  double ValueAt(std::int64_t i) const {
    return entries_[static_cast<std::size_t>(i)].value;
  }
  storage::RowId RowAt(std::int64_t i) const {
    return entries_[static_cast<std::size_t>(i)].row;
  }

  /// Index of the first entry with value >= v (size() if none).
  std::int64_t LowerBound(double v) const;

  /// Rows whose values fall in [lo, hi], in value order. This is the index
  /// scan a filtered slide performs.
  std::vector<storage::RowId> RowsInValueRange(double lo, double hi) const;

  /// Count of rows in [lo, hi] without materialising them (selectivity
  /// estimation for the adaptive optimizer).
  std::int64_t CountInValueRange(double lo, double hi) const;

 private:
  std::vector<Entry> entries_;
};

}  // namespace dbtouch::index

#endif  // DBTOUCH_INDEX_SORTED_INDEX_H_
