// Zone maps: per-block min/max summaries. During a filtered slide the
// kernel consults the zone map to skip summary windows that cannot match
// the predicate — the lightest of the paper's indexing options
// (Section 2.6 "Indexing").

#ifndef DBTOUCH_INDEX_ZONE_MAP_H_
#define DBTOUCH_INDEX_ZONE_MAP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/column.h"
#include "storage/paged_column.h"
#include "storage/types.h"

namespace dbtouch::index {

struct Zone {
  storage::RowId first = 0;  // inclusive
  storage::RowId last = 0;   // inclusive
  double min = 0.0;
  double max = 0.0;
};

class ZoneMap {
 public:
  /// Builds over `column`, one zone per `rows_per_zone` rows (last zone may
  /// be short).
  ZoneMap(storage::ColumnView column, std::int64_t rows_per_zone);

  /// Builds by scanning `source` block-at-a-time — the out-of-core path:
  /// a spilled column's base zone map streams through pinned cache blocks
  /// instead of dereferencing a (possibly reclaimed) matrix. Same zones,
  /// bounded residency.
  ZoneMap(const std::shared_ptr<storage::PagedColumnSource>& source,
          std::int64_t rows_per_zone);

  std::int64_t num_zones() const {
    return static_cast<std::int64_t>(zones_.size());
  }
  const Zone& zone(std::int64_t i) const {
    return zones_[static_cast<std::size_t>(i)];
  }
  std::int64_t rows_per_zone() const { return rows_per_zone_; }

  /// Zone index containing `row`.
  std::int64_t ZoneOf(storage::RowId row) const;

  /// True when the zone containing `row` may hold a value in [lo, hi].
  bool MayMatch(storage::RowId row, double lo, double hi) const;

  /// Rows of all zones overlapping value range [lo, hi] — candidate
  /// regions for an index-assisted exploration.
  std::vector<Zone> MatchingZones(double lo, double hi) const;

  /// Global min/max (for on-screen object annotations).
  double global_min() const { return global_min_; }
  double global_max() const { return global_max_; }

 private:
  std::int64_t rows_per_zone_;
  std::vector<Zone> zones_;
  double global_min_ = 0.0;
  double global_max_ = 0.0;
};

}  // namespace dbtouch::index

#endif  // DBTOUCH_INDEX_ZONE_MAP_H_
