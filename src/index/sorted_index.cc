#include "index/sorted_index.h"

#include <algorithm>

namespace dbtouch::index {

namespace {

void SortEntries(std::vector<SortedIndex::Entry>& entries);

}  // namespace

SortedIndex::SortedIndex(storage::ColumnView column) {
  entries_.reserve(static_cast<std::size_t>(column.row_count()));
  for (storage::RowId r = 0; r < column.row_count(); ++r) {
    entries_.push_back(Entry{column.GetAsDouble(r), r});
  }
  SortEntries(entries_);
}

SortedIndex::SortedIndex(
    const std::shared_ptr<storage::PagedColumnSource>& source) {
  entries_.reserve(static_cast<std::size_t>(source->row_count()));
  storage::PagedColumnCursor cursor(source);
  cursor.Scan(0, source->row_count() - 1,
              [&](const storage::ColumnView& rows,
                  storage::RowId first_row) {
                for (storage::RowId r = 0; r < rows.row_count(); ++r) {
                  entries_.push_back(
                      Entry{rows.GetAsDouble(r), first_row + r});
                }
              });
  SortEntries(entries_);
}

namespace {

void SortEntries(std::vector<SortedIndex::Entry>& entries) {
  std::sort(entries.begin(), entries.end(),
            [](const SortedIndex::Entry& a, const SortedIndex::Entry& b) {
              if (a.value != b.value) {
                return a.value < b.value;
              }
              return a.row < b.row;
            });
}

}  // namespace

std::int64_t SortedIndex::LowerBound(double v) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), v,
      [](const Entry& e, double x) { return e.value < x; });
  return it - entries_.begin();
}

std::vector<storage::RowId> SortedIndex::RowsInValueRange(double lo,
                                                          double hi) const {
  std::vector<storage::RowId> out;
  for (std::int64_t i = LowerBound(lo);
       i < size() && ValueAt(i) <= hi; ++i) {
    out.push_back(RowAt(i));
  }
  return out;
}

std::int64_t SortedIndex::CountInValueRange(double lo, double hi) const {
  const std::int64_t first = LowerBound(lo);
  const auto it = std::upper_bound(
      entries_.begin(), entries_.end(), hi,
      [](double x, const Entry& e) { return x < e.value; });
  return (it - entries_.begin()) - first;
}

}  // namespace dbtouch::index
