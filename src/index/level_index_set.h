// Per-sample-level indexes: "dbTouch can maintain a separate index for
// each sample level, treating each copy separately depending on how often
// index support is needed for this copy" (Section 2.6). Indexes build
// lazily, on the first query that wants one at that level, and usage is
// counted so callers can see which copies earned their indexes.

#ifndef DBTOUCH_INDEX_LEVEL_INDEX_SET_H_
#define DBTOUCH_INDEX_LEVEL_INDEX_SET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "index/sorted_index.h"
#include "index/zone_map.h"
#include "sampling/sample_hierarchy.h"

namespace dbtouch::index {

struct LevelIndexStats {
  std::int64_t zone_map_builds = 0;
  std::int64_t sorted_builds = 0;
  std::int64_t zone_map_uses = 0;
  std::int64_t sorted_uses = 0;
};

class LevelIndexSet {
 public:
  /// `rows_per_zone` applies at level 0 and shrinks with the level so a
  /// zone always summarises a comparable slice of the object.
  LevelIndexSet(sampling::SampleHierarchy* hierarchy,
                std::int64_t rows_per_zone = 4096);

  /// Zone map for `level`, building it on first use.
  const ZoneMap& ZoneMapAt(int level);

  /// Sorted index for `level`, building it on first use.
  const SortedIndex& SortedAt(int level);

  bool HasZoneMap(int level) const;
  bool HasSorted(int level) const;

  const LevelIndexStats& stats() const { return stats_; }

 private:
  sampling::SampleHierarchy* hierarchy_;  // Not owned.
  std::int64_t rows_per_zone_;
  std::vector<std::unique_ptr<ZoneMap>> zone_maps_;
  std::vector<std::unique_ptr<SortedIndex>> sorted_;
  LevelIndexStats stats_;
};

}  // namespace dbtouch::index

#endif  // DBTOUCH_INDEX_LEVEL_INDEX_SET_H_
