#include "remote/network.h"

#include "common/macros.h"

namespace dbtouch::remote {

SimulatedNetwork::SimulatedNetwork(const NetworkConfig& config)
    : config_(config) {
  DBTOUCH_CHECK(config_.one_way_latency_us >= 0);
  DBTOUCH_CHECK(config_.bytes_per_second > 0.0);
}

sim::Micros SimulatedNetwork::RoundTripDone(sim::Micros sent_at,
                                            std::int64_t request_bytes,
                                            std::int64_t response_bytes) const {
  const double transfer_s =
      static_cast<double>(request_bytes + response_bytes) /
      config_.bytes_per_second;
  return sent_at + 2 * config_.one_way_latency_us +
         config_.server_overhead_us + sim::SecondsToMicros(transfer_s);
}

void SimulatedNetwork::Account(std::int64_t request_bytes,
                               std::int64_t response_bytes) {
  ++requests_;
  bytes_up_ += request_bytes;
  bytes_down_ += response_bytes;
}

}  // namespace dbtouch::remote
