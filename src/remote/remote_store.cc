#include "remote/remote_store.h"

#include <algorithm>

#include "common/macros.h"

namespace dbtouch::remote {

RemoteServer::RemoteServer(storage::ColumnView base) : hierarchy_(base) {}

std::vector<double> RemoteServer::ReadRange(int level, storage::RowId first,
                                            std::int64_t count,
                                            std::int64_t* response_bytes) {
  ++requests_served_;
  ++range_reads_;
  if (fail_next_reads_ > 0 ||
      (fail_every_ > 0 && range_reads_ % fail_every_ == 0)) {
    // Injected transport failure: the response never arrives.
    if (fail_next_reads_ > 0) {
      --fail_next_reads_;
    }
    if (response_bytes != nullptr) {
      *response_bytes = 0;
    }
    return {};
  }
  std::vector<double> out;
  const storage::ColumnView view = hierarchy_.LevelView(level);
  const storage::RowId end =
      std::min<storage::RowId>(first + count, view.row_count());
  for (storage::RowId r = std::max<storage::RowId>(first, 0); r < end; ++r) {
    out.push_back(view.GetAsDouble(r));
  }
  if (response_bytes != nullptr) {
    *response_bytes = static_cast<std::int64_t>(out.size() * sizeof(double));
  }
  return out;
}

std::vector<double> RemoteServer::ReadRows(
    int level, const std::vector<storage::RowId>& rows,
    std::int64_t* response_bytes) {
  ++requests_served_;
  std::vector<double> out;
  out.reserve(rows.size());
  const storage::ColumnView view = hierarchy_.LevelView(level);
  for (const storage::RowId r : rows) {
    if (r >= 0 && r < view.row_count()) {
      out.push_back(view.GetAsDouble(r));
    }
  }
  if (response_bytes != nullptr) {
    *response_bytes = static_cast<std::int64_t>(out.size() * sizeof(double));
  }
  return out;
}

const char* RemoteStrategyName(RemoteStrategy s) {
  switch (s) {
    case RemoteStrategy::kLocalOnly:
      return "local-only";
    case RemoteStrategy::kPerTouchRpc:
      return "per-touch-rpc";
    case RemoteStrategy::kBatchedHybrid:
      return "batched-hybrid";
  }
  return "?";
}

RemoteClient::RemoteClient(RemoteServer* server, SimulatedNetwork* network,
                           const Config& config)
    : server_(server), network_(network), config_(config) {
  DBTOUCH_CHECK(server != nullptr);
  DBTOUCH_CHECK(network != nullptr);
  DBTOUCH_CHECK(config.local_levels >= 1);
  const int num_levels = server_->hierarchy().num_levels();
  local_level_ = std::max(0, num_levels - config.local_levels);
}

double RemoteClient::OnTouch(sim::Micros now, storage::RowId row) {
  ++stats_.touches;
  const auto& hierarchy = server_->hierarchy();

  switch (config_.strategy) {
    case RemoteStrategy::kLocalOnly: {
      // Answer from the coarse local sample: free and instant.
      ++stats_.local_answers;
      auto& h = server_->hierarchy();
      const storage::RowId s = h.FromBaseRow(local_level_, row);
      // First-answer latency is 0 in virtual time.
      return h.LevelView(local_level_).GetAsDouble(s);
    }
    case RemoteStrategy::kPerTouchRpc: {
      // Synchronous full-fidelity read: user waits the round trip.
      std::int64_t resp_bytes = 0;
      const storage::RowId s =
          hierarchy.FromBaseRow(config_.target_level, row);
      const auto values =
          server_->ReadRange(config_.target_level, s, 1, &resp_bytes);
      constexpr std::int64_t kRequestBytes = 32;
      network_->Account(kRequestBytes, resp_bytes);
      const sim::Micros done =
          network_->RoundTripDone(now, kRequestBytes, resp_bytes);
      stats_.total_first_answer_latency_us += done - now;
      ++stats_.remote_requests;
      ++stats_.refined_answers;
      stats_.total_refined_latency_us += done - now;
      return values.empty() ? 0.0 : values[0];
    }
    case RemoteStrategy::kBatchedHybrid: {
      // Instant local answer...
      ++stats_.local_answers;
      auto& h = server_->hierarchy();
      const storage::RowId s = h.FromBaseRow(local_level_, row);
      const double local_value =
          h.LevelView(local_level_).GetAsDouble(s);
      // ...and fold the touch into the refinement batch.
      if (!batch_open_) {
        batch_open_ = true;
        batch_started_ = now;
        batch_rows_.clear();
      }
      batch_rows_.push_back(row);
      if (now - batch_started_ >= config_.batch_window_us) {
        IssueBatch(now);
      }
      return local_value;
    }
  }
  return 0.0;
}

void RemoteClient::IssueBatch(sim::Micros now) {
  if (!batch_open_ || batch_rows_.empty()) {
    batch_open_ = false;
    return;
  }
  batch_open_ = false;
  const auto& hierarchy = server_->hierarchy();
  // One request carrying every touched position, refined at the target
  // level (deduplicated: several touches can share a sample row).
  std::vector<storage::RowId> sample_rows;
  sample_rows.reserve(batch_rows_.size());
  for (const storage::RowId base_row : batch_rows_) {
    sample_rows.push_back(
        hierarchy.FromBaseRow(config_.target_level, base_row));
  }
  std::sort(sample_rows.begin(), sample_rows.end());
  sample_rows.erase(std::unique(sample_rows.begin(), sample_rows.end()),
                    sample_rows.end());
  std::int64_t resp_bytes = 0;
  server_->ReadRows(config_.target_level, sample_rows, &resp_bytes);
  const std::int64_t request_bytes =
      32 + static_cast<std::int64_t>(sample_rows.size() * sizeof(std::int64_t));
  network_->Account(request_bytes, resp_bytes);
  const sim::Micros done =
      network_->RoundTripDone(now, request_bytes, resp_bytes);
  ++stats_.remote_requests;
  // Every touch in the batch refines when the response lands.
  const auto batch_touches =
      static_cast<std::int64_t>(batch_rows_.size());
  stats_.refined_answers += batch_touches;
  stats_.total_refined_latency_us += (done - now) * batch_touches;
  batch_rows_.clear();
}

void RemoteClient::Flush(sim::Micros now) {
  IssueBatch(now);
}

}  // namespace dbtouch::remote
