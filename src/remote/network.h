// Simulated network link between a dbTouch tablet client and a server.
// Models one-way latency plus bandwidth-limited transfer in virtual time;
// used to study the per-touch RPC cost the paper warns about ("sending a
// new remote request for every single touch input of a long gesture will
// lead to extensive administration and communication costs", Section 4).

#ifndef DBTOUCH_REMOTE_NETWORK_H_
#define DBTOUCH_REMOTE_NETWORK_H_

#include <cstdint>

#include "sim/virtual_clock.h"

namespace dbtouch::remote {

struct NetworkConfig {
  /// One-way propagation latency.
  sim::Micros one_way_latency_us = 20'000;  // 20 ms (WiFi to nearby cloud).
  /// Payload bandwidth.
  double bytes_per_second = 12.5e6;  // 100 Mbit/s.
  /// Fixed per-request processing cost at the server.
  sim::Micros server_overhead_us = 500;
};

class SimulatedNetwork {
 public:
  explicit SimulatedNetwork(const NetworkConfig& config = {});

  const NetworkConfig& config() const { return config_; }

  /// Completion time of a round trip issued at `sent_at` with
  /// `request_bytes` up and `response_bytes` down.
  sim::Micros RoundTripDone(sim::Micros sent_at, std::int64_t request_bytes,
                            std::int64_t response_bytes) const;

  std::int64_t requests_sent() const { return requests_; }
  std::int64_t bytes_up() const { return bytes_up_; }
  std::int64_t bytes_down() const { return bytes_down_; }

  /// Records traffic accounting for one request.
  void Account(std::int64_t request_bytes, std::int64_t response_bytes);

 private:
  NetworkConfig config_;
  std::int64_t requests_ = 0;
  std::int64_t bytes_up_ = 0;
  std::int64_t bytes_down_ = 0;
};

}  // namespace dbtouch::remote

#endif  // DBTOUCH_REMOTE_NETWORK_H_
