// Remote processing (paper Section 4): "the server may store the base data
// and the big samples, while the touch device may store only small
// samples. Then, during query processing dbTouch may use both local and
// remote data ... use local data to feed partial answers, while in the
// mean time more fine-grained answers are produced and delivered by the
// server."
//
// RemoteServer owns the base column and its full sample hierarchy.
// RemoteClient owns only the hierarchy's coarse top levels; every touch is
// answered immediately from local data, and refinement requests flow to
// the server under one of three strategies the ABL-REMOTE benchmark
// compares (local-only, per-touch RPC, batched hybrid).

#ifndef DBTOUCH_REMOTE_REMOTE_STORE_H_
#define DBTOUCH_REMOTE_REMOTE_STORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "remote/network.h"
#include "sampling/sample_hierarchy.h"
#include "sim/virtual_clock.h"
#include "storage/column.h"
#include "storage/types.h"

namespace dbtouch::remote {

/// The cloud side: base data plus all sample levels, and the handler for
/// range-read requests.
class RemoteServer {
 public:
  explicit RemoteServer(storage::ColumnView base);

  /// Serves `count` entries of `level` starting at `first`. Returns the
  /// values; `response_bytes` gets the payload size.
  std::vector<double> ReadRange(int level, storage::RowId first,
                                std::int64_t count,
                                std::int64_t* response_bytes);

  /// Serves the `level` entries at the given sample rows (one batched
  /// request for many point reads — what the hybrid client sends).
  std::vector<double> ReadRows(int level,
                               const std::vector<storage::RowId>& rows,
                               std::int64_t* response_bytes);

  sampling::SampleHierarchy& hierarchy() { return hierarchy_; }
  std::int64_t requests_served() const { return requests_served_; }

  /// Failure injection for transport-error testing: the next `n` ReadRange
  /// calls return an empty payload (a dropped response on the wire), which
  /// block consumers classify as a transient short read and retry.
  void FailNextReads(int n) { fail_next_reads_ = n; }
  /// Steady-state flakiness: every `n`th ReadRange drops its response
  /// (0 = reliable).
  void set_fail_every(int n) { fail_every_ = n; }

 private:
  sampling::SampleHierarchy hierarchy_;
  std::int64_t requests_served_ = 0;
  int fail_next_reads_ = 0;
  int fail_every_ = 0;
  std::int64_t range_reads_ = 0;
};

enum class RemoteStrategy : std::uint8_t {
  /// Only the local coarse sample is ever consulted. Zero network cost,
  /// lowest fidelity.
  kLocalOnly = 0,
  /// Every touch issues a synchronous server read at the requested
  /// fidelity (the naive per-touch RPC the paper warns about).
  kPerTouchRpc = 1,
  /// Touches answer locally at once; refinements are batched into ranged
  /// requests issued when the batch window closes (the paper's hybrid).
  kBatchedHybrid = 2,
};

const char* RemoteStrategyName(RemoteStrategy s);

struct RemoteClientStats {
  std::int64_t touches = 0;
  std::int64_t local_answers = 0;
  std::int64_t remote_requests = 0;
  std::int64_t refined_answers = 0;
  sim::Micros total_first_answer_latency_us = 0;
  sim::Micros total_refined_latency_us = 0;

  double avg_first_answer_ms() const {
    return touches == 0 ? 0.0
                        : sim::MicrosToMillis(total_first_answer_latency_us) /
                              static_cast<double>(touches);
  }
  double avg_refined_ms() const {
    return refined_answers == 0
               ? 0.0
               : sim::MicrosToMillis(total_refined_latency_us) /
                     static_cast<double>(refined_answers);
  }
};

/// The tablet side.
class RemoteClient {
 public:
  struct Config {
    RemoteStrategy strategy = RemoteStrategy::kBatchedHybrid;
    /// Levels the client stores locally: the top `local_levels` coarsest
    /// levels of the hierarchy.
    int local_levels = 2;
    /// Fidelity (level) the user ultimately wants answers at.
    int target_level = 0;
    /// Batch window for kBatchedHybrid: touches within this window share
    /// one ranged request.
    sim::Micros batch_window_us = 200'000;
  };

  RemoteClient(RemoteServer* server, SimulatedNetwork* network,
               const Config& config);

  /// One touch at base row `row`, at virtual time `now`. Returns the value
  /// shown to the user immediately (local fidelity for hybrid/local-only;
  /// full fidelity for per-touch RPC, after its round trip).
  double OnTouch(sim::Micros now, storage::RowId row);

  /// Closes any open batch (end of gesture): issues the pending ranged
  /// refinement request.
  void Flush(sim::Micros now);

  const RemoteClientStats& stats() const { return stats_; }

  /// The level the client can answer locally (coarsest stored locally).
  int local_level() const { return local_level_; }

 private:
  void IssueBatch(sim::Micros now);

  RemoteServer* server_;        // Not owned.
  SimulatedNetwork* network_;   // Not owned.
  Config config_;
  int local_level_;
  RemoteClientStats stats_;
  // Open batch (kBatchedHybrid): the touched base rows awaiting
  // refinement.
  bool batch_open_ = false;
  sim::Micros batch_started_ = 0;
  std::vector<storage::RowId> batch_rows_;
};

}  // namespace dbtouch::remote

#endif  // DBTOUCH_REMOTE_REMOTE_STORE_H_
