#include "baseline/monolithic.h"

#include <chrono>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "storage/column.h"
#include "storage/table.h"

namespace dbtouch::baseline {

using Clock = std::chrono::steady_clock;

namespace {

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

MonolithicExecutor::MonolithicExecutor(storage::Catalog* catalog)
    : catalog_(catalog) {
  DBTOUCH_CHECK(catalog != nullptr);
}

Result<QueryStats> MonolithicExecutor::Aggregate(
    const std::string& table, const std::string& column, exec::AggKind agg,
    const std::optional<exec::Predicate>& predicate) const {
  DBTOUCH_ASSIGN_OR_RETURN(std::shared_ptr<storage::Table> t,
                           catalog_->Get(table));
  DBTOUCH_ASSIGN_OR_RETURN(const storage::ColumnView view,
                           t->ColumnViewByName(column));
  const auto start = Clock::now();
  exec::RunningAggregate acc(agg);
  QueryStats out;
  for (storage::RowId r = 0; r < view.row_count(); ++r) {
    const double v = view.GetAsDouble(r);
    ++out.rows_scanned;
    if (predicate.has_value() && !predicate->Matches(v)) {
      continue;
    }
    acc.Add(v);
  }
  out.value = acc.value();
  out.wall_ms = ElapsedMs(start);
  return out;
}

Result<ExtremeRow> MonolithicExecutor::FindExtreme(const std::string& table,
                                                   const std::string& column,
                                                   bool find_max) const {
  DBTOUCH_ASSIGN_OR_RETURN(std::shared_ptr<storage::Table> t,
                           catalog_->Get(table));
  DBTOUCH_ASSIGN_OR_RETURN(const storage::ColumnView view,
                           t->ColumnViewByName(column));
  if (view.row_count() == 0) {
    return Status::FailedPrecondition("empty column");
  }
  const auto start = Clock::now();
  ExtremeRow out;
  out.row = 0;
  out.value = view.GetAsDouble(0);
  for (storage::RowId r = 1; r < view.row_count(); ++r) {
    const double v = view.GetAsDouble(r);
    if ((find_max && v > out.value) || (!find_max && v < out.value)) {
      out.value = v;
      out.row = r;
    }
  }
  out.rows_scanned = view.row_count();
  out.wall_ms = ElapsedMs(start);
  return out;
}

Result<JoinStats> MonolithicExecutor::HashJoin(
    const std::string& left_table, const std::string& left_column,
    const std::string& right_table, const std::string& right_column) const {
  DBTOUCH_ASSIGN_OR_RETURN(std::shared_ptr<storage::Table> lt,
                           catalog_->Get(left_table));
  DBTOUCH_ASSIGN_OR_RETURN(std::shared_ptr<storage::Table> rt,
                           catalog_->Get(right_table));
  DBTOUCH_ASSIGN_OR_RETURN(const storage::ColumnView left,
                           lt->ColumnViewByName(left_column));
  DBTOUCH_ASSIGN_OR_RETURN(const storage::ColumnView right,
                           rt->ColumnViewByName(right_column));
  if (left.type() == storage::DataType::kFloat ||
      left.type() == storage::DataType::kDouble ||
      right.type() == storage::DataType::kFloat ||
      right.type() == storage::DataType::kDouble) {
    return Status::InvalidArgument("join keys must be integer or string");
  }
  const auto key_at = [](const storage::ColumnView& c, storage::RowId r) {
    return c.type() == storage::DataType::kInt64
               ? c.GetInt64(r)
               : static_cast<std::int64_t>(c.GetInt32(r));
  };

  const auto start = Clock::now();
  JoinStats out;
  // Blocking build phase: the user sees nothing until it completes.
  std::unordered_map<std::int64_t, std::vector<storage::RowId>> table;
  table.reserve(static_cast<std::size_t>(left.row_count()));
  for (storage::RowId r = 0; r < left.row_count(); ++r) {
    table[key_at(left, r)].push_back(r);
    ++out.rows_scanned;
  }
  out.build_ms = ElapsedMs(start);
  // Probe phase.
  for (storage::RowId r = 0; r < right.row_count(); ++r) {
    ++out.rows_scanned;
    const auto it = table.find(key_at(right, r));
    if (it != table.end()) {
      out.matches += static_cast<std::int64_t>(it->second.size());
    }
  }
  out.total_ms = ElapsedMs(start);
  return out;
}

Result<QueryStats> MonolithicExecutor::CountWhere(
    const std::string& table, const std::string& column,
    const exec::Predicate& predicate) const {
  return Aggregate(table, column, exec::AggKind::kCount, predicate);
}

}  // namespace dbtouch::baseline
