// The traditional DBMS baseline for the paper's exploration contest
// (Appendix A): "a laptop installed with the open-source column store
// DBMS, loaded with the same data sets as dbTouch."
//
// MonolithicExecutor answers queries the classic way: it consumes the full
// input before producing anything, so its time-to-first-result equals its
// total execution time — the behaviour dbTouch's incremental, user-driven
// processing is contrasted against.

#ifndef DBTOUCH_BASELINE_MONOLITHIC_H_
#define DBTOUCH_BASELINE_MONOLITHIC_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/result.h"
#include "exec/aggregate.h"
#include "exec/predicate.h"
#include "storage/catalog.h"
#include "storage/types.h"

namespace dbtouch::baseline {

struct QueryStats {
  double value = 0.0;
  std::int64_t rows_scanned = 0;
  /// Wall time of the whole query. Monolithic execution surfaces nothing
  /// earlier, so this is also the time-to-first-result.
  double wall_ms = 0.0;
};

struct ExtremeRow {
  storage::RowId row = 0;
  double value = 0.0;
  std::int64_t rows_scanned = 0;
  double wall_ms = 0.0;
};

struct JoinStats {
  std::int64_t matches = 0;
  std::int64_t rows_scanned = 0;
  double build_ms = 0.0;   // Blocking build phase: nothing surfaces during it.
  double total_ms = 0.0;
};

class MonolithicExecutor {
 public:
  explicit MonolithicExecutor(storage::Catalog* catalog);

  /// SELECT agg(column) FROM table [WHERE column pred].
  Result<QueryStats> Aggregate(
      const std::string& table, const std::string& column,
      exec::AggKind agg,
      const std::optional<exec::Predicate>& predicate = std::nullopt) const;

  /// Row holding the maximum (or minimum) of the column — what an analyst
  /// fires repeatedly when hunting outliers with SQL.
  Result<ExtremeRow> FindExtreme(const std::string& table,
                                 const std::string& column, bool find_max)
      const;

  /// Classic blocking hash join: build on left, probe with right.
  Result<JoinStats> HashJoin(const std::string& left_table,
                             const std::string& left_column,
                             const std::string& right_table,
                             const std::string& right_column) const;

  /// SELECT count(*) FROM table WHERE column pred.
  Result<QueryStats> CountWhere(const std::string& table,
                                const std::string& column,
                                const exec::Predicate& predicate) const;

 private:
  storage::Catalog* catalog_;  // Not owned.
};

}  // namespace dbtouch::baseline

#endif  // DBTOUCH_BASELINE_MONOLITHIC_H_
