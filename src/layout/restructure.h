// Schema gestures (paper Section 2.8): dragging a column out of a fat
// table to its own object ("a user can project a specific column out of a
// fat table by dragging the column out"), and grouping independent columns
// into a new table ("one can create a table by drag and drop actions in a
// table placeholder object").

#ifndef DBTOUCH_LAYOUT_RESTRUCTURE_H_
#define DBTOUCH_LAYOUT_RESTRUCTURE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace dbtouch::layout {

/// Projects column `column_index` of `source` into a new standalone
/// single-column table named `new_table_name`, registered in `catalog`.
/// The user then explores just that array and "experiences faster response
/// times by going only through the needed data".
Result<std::shared_ptr<storage::Table>> ExtractColumnToTable(
    storage::Catalog* catalog, const storage::Table& source,
    std::size_t column_index, const std::string& new_table_name);

/// Combines equally-sized tables (the drag-and-drop group gesture) into a
/// new table holding all their columns side by side, registered in
/// `catalog`. Fails if row counts differ or a column name repeats.
Result<std::shared_ptr<storage::Table>> GroupTables(
    storage::Catalog* catalog, const std::vector<std::string>& table_names,
    const std::string& new_table_name,
    storage::MajorOrder order = storage::MajorOrder::kColumnMajor);

}  // namespace dbtouch::layout

#endif  // DBTOUCH_LAYOUT_RESTRUCTURE_H_
