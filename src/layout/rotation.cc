#include "layout/rotation.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"

namespace dbtouch::layout {

using storage::Matrix;
using storage::MajorOrder;
using storage::RowId;
using storage::Table;

IncrementalRotator::IncrementalRotator(Table* table, MajorOrder target,
                                       std::int64_t rows_per_step)
    : table_(table),
      target_(target),
      rows_per_step_(rows_per_step),
      total_rows_(table->row_count()) {
  DBTOUCH_CHECK(table != nullptr);
  DBTOUCH_CHECK(rows_per_step > 0);
  if (!IsNoop()) {
    scratch_ = std::make_unique<Matrix>(table_->schema(), target_);
    scratch_->Reserve(total_rows_);
  } else {
    rows_converted_ = total_rows_;
  }
}

bool IncrementalRotator::IsNoop() const {
  return table_->layout() == target_;
}

bool IncrementalRotator::Step() {
  if (done()) {
    return true;
  }
  const Matrix& src = table_->storage();
  const std::int64_t end =
      std::min(rows_converted_ + rows_per_step_, total_rows_);
  const std::size_t num_cols = src.schema().num_fields();
  // Append the chunk row-wise; the scratch matrix lays cells out in the
  // target order internally.
  for (RowId r = rows_converted_; r < end; ++r) {
    std::vector<storage::Value> row;
    row.reserve(num_cols);
    for (std::size_t c = 0; c < num_cols; ++c) {
      row.push_back(src.GetCell(r, c));
    }
    scratch_->AppendRow(row);
  }
  rows_converted_ = end;
  return done();
}

double IncrementalRotator::progress() const {
  if (total_rows_ == 0) {
    return 1.0;
  }
  return static_cast<double>(rows_converted_) /
         static_cast<double>(total_rows_);
}

Status IncrementalRotator::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("rotator already finished");
  }
  if (IsNoop()) {
    finished_ = true;
    return Status::OK();
  }
  if (!done()) {
    return Status::FailedPrecondition(
        "rotation incomplete: " + std::to_string(rows_converted_) + "/" +
        std::to_string(total_rows_) + " rows converted");
  }
  DBTOUCH_RETURN_IF_ERROR(table_->ReplaceStorage(std::move(*scratch_)));
  scratch_.reset();
  finished_ = true;
  return Status::OK();
}

Status RotateMonolithic(Table* table, MajorOrder target) {
  if (table == nullptr) {
    return Status::InvalidArgument("null table");
  }
  if (table->layout() == target) {
    return Status::OK();
  }
  return table->ReplaceStorage(table->storage().ToOrder(target));
}

}  // namespace dbtouch::layout
