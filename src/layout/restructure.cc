#include "layout/restructure.h"

#include <unordered_set>

#include "common/macros.h"

namespace dbtouch::layout {

using storage::Catalog;
using storage::Column;
using storage::Table;

Result<std::shared_ptr<Table>> ExtractColumnToTable(
    Catalog* catalog, const Table& source, std::size_t column_index,
    const std::string& new_table_name) {
  if (catalog == nullptr) {
    return Status::InvalidArgument("null catalog");
  }
  if (column_index >= source.schema().num_fields()) {
    return Status::OutOfRange("column " + std::to_string(column_index) +
                              " out of range for table '" + source.name() +
                              "'");
  }
  std::vector<Column> columns;
  columns.push_back(source.ExtractColumn(column_index));
  DBTOUCH_ASSIGN_OR_RETURN(
      std::shared_ptr<Table> table,
      Table::FromColumns(new_table_name, std::move(columns)));
  DBTOUCH_RETURN_IF_ERROR(catalog->Register(table));
  return table;
}

Result<std::shared_ptr<Table>> GroupTables(
    Catalog* catalog, const std::vector<std::string>& table_names,
    const std::string& new_table_name, storage::MajorOrder order) {
  if (catalog == nullptr) {
    return Status::InvalidArgument("null catalog");
  }
  if (table_names.empty()) {
    return Status::InvalidArgument("no tables to group");
  }
  std::vector<Column> columns;
  std::unordered_set<std::string> names_seen;
  std::int64_t rows = -1;
  for (const std::string& name : table_names) {
    DBTOUCH_ASSIGN_OR_RETURN(std::shared_ptr<Table> t, catalog->Get(name));
    if (rows < 0) {
      rows = t->row_count();
    } else if (t->row_count() != rows) {
      return Status::InvalidArgument(
          "table '" + name + "' has " + std::to_string(t->row_count()) +
          " rows; expected " + std::to_string(rows));
    }
    for (std::size_t c = 0; c < t->schema().num_fields(); ++c) {
      const std::string& col_name = t->schema().field(c).name;
      if (!names_seen.insert(col_name).second) {
        return Status::InvalidArgument("duplicate column name '" + col_name +
                                       "' while grouping");
      }
      columns.push_back(t->ExtractColumn(c));
    }
  }
  DBTOUCH_ASSIGN_OR_RETURN(
      std::shared_ptr<Table> table,
      Table::FromColumns(new_table_name, std::move(columns), order));
  DBTOUCH_RETURN_IF_ERROR(catalog->Register(table));
  return table;
}

}  // namespace dbtouch::layout
