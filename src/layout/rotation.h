// Incremental layout rotation (paper Section 2.8): "Rotating a
// row-oriented table changes its physical layout to a column-store
// structure ... Changing the layout can be done in steps as it is in
// general an expensive operation, requiring a full copy of the data."
//
// IncrementalRotator builds the target-order matrix chunk by chunk; each
// Step() converts a bounded number of rows so the per-touch latency budget
// holds. Reads keep hitting the old layout until Finish() swaps storage —
// the conversion is invisible except for its progress.

#ifndef DBTOUCH_LAYOUT_ROTATION_H_
#define DBTOUCH_LAYOUT_ROTATION_H_

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "storage/matrix.h"
#include "storage/table.h"

namespace dbtouch::layout {

class IncrementalRotator {
 public:
  /// Prepares rotation of `table` to `target` order, converting at most
  /// `rows_per_step` rows per Step() call. The table must outlive the
  /// rotator, and its row count must not change while rotating.
  IncrementalRotator(storage::Table* table, storage::MajorOrder target,
                     std::int64_t rows_per_step);

  /// True when the table is already in the target order (nothing to do).
  bool IsNoop() const;

  /// Converts the next chunk. Returns true when conversion has finished
  /// (call Finish() to swap). Safe to call after completion.
  bool Step();

  /// Rows converted so far.
  std::int64_t rows_converted() const { return rows_converted_; }
  double progress() const;
  bool done() const { return rows_converted_ >= total_rows_; }

  /// Swaps the rotated matrix into the table. FailedPrecondition unless
  /// done(); after a successful Finish() the rotator is spent.
  Status Finish();

 private:
  storage::Table* table_;  // Not owned.
  storage::MajorOrder target_;
  std::int64_t rows_per_step_;
  std::int64_t total_rows_;
  std::int64_t rows_converted_ = 0;
  std::unique_ptr<storage::Matrix> scratch_;
  bool finished_ = false;
};

/// Monolithic rotation (the baseline the incremental path is measured
/// against): one full-copy transpose, blocking.
Status RotateMonolithic(storage::Table* table, storage::MajorOrder target);

}  // namespace dbtouch::layout

#endif  // DBTOUCH_LAYOUT_ROTATION_H_
