// FetchQueue: the asynchronous block-fetch engine behind the BufferManager.
//
// PR 2 left one latency cliff on the read path: a cold-tier fault ran the
// provider's Fetch synchronously under the shard lock, so one slow remote
// read could stall a worker — and with it every session that worker would
// otherwise serve. The FetchQueue moves those reads onto a small fetcher
// thread pool:
//
//   TryPinBlock (miss) --> Enqueue(demand) ---+
//   Prefetcher slide path --> Enqueue(prefetch)+--> fetcher threads
//                                              |      provider->Fetch
//                                              |      (bounded retries,
//                                              |       exponential backoff)
//                                              v
//                                      deliver(key, payload) --> BlockCache
//                                      completion callbacks  --> waiters
//                                                               (scheduler
//                                                                unparks)
//
// Priorities: demand fetches (a session is parked on the answer) always
// pop before prefetch warm-ups (the extrapolated slide path); enqueueing a
// demand request for a block already queued at prefetch priority upgrades
// it in place. Requests for one block coalesce into a single fetch no
// matter how many waiters pile on.
//
// Failure contract: a fetch error is data, not an invariant violation.
// Transient errors (see IsTransientFetchError) are retried up to
// max_retries times with exponential backoff; the final status — OK or the
// last error — is handed to every waiter. Waiters are invoked on fetcher
// threads and must be cheap and non-blocking (the touch server's callback
// just unparks the session).

#ifndef DBTOUCH_CACHE_FETCH_QUEUE_H_
#define DBTOUCH_CACHE_FETCH_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/block_cache.h"
#include "cache/block_provider.h"
#include "common/result.h"
#include "common/status.h"

namespace dbtouch::cache {

enum class FetchPriority : std::uint8_t {
  kPrefetch = 0,  // Warm-up along the extrapolated slide path.
  kDemand = 1,    // A quantum is suspended on this block.
};

struct FetchQueueConfig {
  /// Fetcher threads. Cold-tier reads are latency- not CPU-bound, so a
  /// couple of threads overlap many outstanding fetches.
  int num_fetchers = 2;
  /// Retries after the first attempt for transient errors.
  int max_retries = 3;
  /// Backoff before retry k is backoff_us << k (exponential).
  std::int64_t retry_backoff_us = 200;
  /// Batched demand fetches: when the popped request has queued
  /// neighbours (same owner, adjacent block indices, not yet in flight),
  /// up to this many blocks are merged into one provider ReadRange — a
  /// cold summary band costs one round trip instead of N. <= 1 disables
  /// coalescing.
  int max_coalesce_blocks = 16;
};

struct FetchQueueStats {
  std::int64_t demand_enqueued = 0;
  std::int64_t prefetch_enqueued = 0;
  /// Enqueues absorbed by an already-queued/in-flight fetch of the block.
  std::int64_t coalesced = 0;
  /// Prefetch requests re-prioritised by a later demand enqueue.
  std::int64_t upgraded = 0;
  std::int64_t completed = 0;
  std::int64_t retries = 0;
  /// Fetches that exhausted retries (or hit a permanent error).
  std::int64_t failures = 0;
  /// Queued-not-in-flight demand requests dropped by CancelTagged (a
  /// session closed before its fetch started).
  std::int64_t cancelled = 0;
  /// Coalesced provider calls: ReadRange invocations spanning >= 2
  /// adjacent blocks, and the blocks they covered. completed counts every
  /// block, so (completed - ranged_blocks + ranged_reads) is the number
  /// of provider round trips actually paid.
  std::int64_t ranged_reads = 0;
  std::int64_t ranged_blocks = 0;
  /// Payload bytes delivered by the fetchers (bytes faulted in from the
  /// cold tier — disk or remote).
  std::int64_t bytes_fetched = 0;
  /// Wall time inside provider fetches, including retries + backoff.
  std::int64_t fetch_wall_us = 0;
  std::int64_t max_fetch_wall_us = 0;
};

/// True for error codes worth retrying: the transport may deliver on the
/// next attempt (lost response, backpressure, timeout). Invariant-shaped
/// errors (OutOfRange, InvalidArgument, ...) are permanent.
bool IsTransientFetchError(const Status& status);

/// Fetches `block` from `provider` with the queue's retry policy, inline
/// on the calling thread — the synchronous fallback path shares one
/// definition of "retryable read" with the async queue. `retries_out`
/// (optional) accumulates the retries spent.
Result<std::vector<std::byte>> FetchBlockWithRetry(
    BlockProvider& provider, std::int64_t block,
    const FetchQueueConfig& config, std::int64_t* retries_out = nullptr);

/// Ranged sibling of FetchBlockWithRetry: one provider ReadRange over
/// [first_block, first_block + count) under the same retry policy.
Result<std::vector<std::byte>> FetchRangeWithRetry(
    BlockProvider& provider, std::int64_t first_block, std::int64_t count,
    const FetchQueueConfig& config, std::int64_t* retries_out = nullptr);

class FetchQueue {
 public:
  /// Invoked with the fetch's final status after the payload (if any) was
  /// delivered to the sink — so a waiter that immediately retries its pin
  /// is guaranteed to hit.
  using Completion = std::function<void(const Status&)>;
  /// Receives successfully fetched payloads (the BufferManager's insert
  /// into its BlockCache) with the priority the fetch was served at, so
  /// the cache can shelter demand completions — a session is parked on
  /// those — from warm-up churn. Runs on a fetcher thread.
  using Sink = std::function<void(
      const BlockKey&, std::vector<std::byte> payload, FetchPriority)>;

  FetchQueue(const FetchQueueConfig& config, Sink sink);
  ~FetchQueue();

  FetchQueue(const FetchQueue&) = delete;
  FetchQueue& operator=(const FetchQueue&) = delete;

  /// Requests `block` of `provider`, identified in the cache as `key`.
  /// Coalesces with any queued/in-flight fetch of the same key (a demand
  /// request upgrades a still-queued prefetch). `done` may be null (fire
  /// and forget — the prefetch path). `tag` names the waiter's owner (the
  /// touch server passes the session id) so CancelTagged can retract its
  /// tickets; 0 = untagged. Returns true iff a NEW request was created —
  /// false for coalesced joins and shutdown rejections — so callers
  /// budgeting fetches don't spend their budget on no-ops.
  bool Enqueue(const BlockKey& key, std::shared_ptr<BlockProvider> provider,
               std::int64_t block, FetchPriority priority, Completion done,
               std::uint64_t tag = 0);

  /// Retracts `tag`'s still-queued tickets (a session closed): its waiters
  /// on queued — NOT in-flight — requests fail with Aborted, and a demand
  /// request left with no waiters is dropped entirely, so closed sessions
  /// stop consuming cold-tier bandwidth. In-flight fetches finish and
  /// settle normally (their completions must, to balance tickets).
  /// Returns the number of requests dropped.
  std::size_t CancelTagged(std::uint64_t tag);

  /// Queued + in-flight fetches.
  std::size_t outstanding() const;

  /// Blocks until no fetch is queued or in flight (tests).
  void WaitIdle();

  /// Stops the fetchers. Queued-but-unstarted requests fail their waiters
  /// with Aborted; in-flight fetches finish first. Idempotent.
  void Shutdown();

  FetchQueueStats stats() const;

 private:
  struct Waiter {
    Completion done;
    std::uint64_t tag = 0;
  };

  struct Request {
    std::shared_ptr<BlockProvider> provider;
    std::int64_t block = 0;
    FetchPriority priority = FetchPriority::kPrefetch;
    bool in_flight = false;
    std::vector<Waiter> waiters;
  };

  void FetcherLoop();
  /// Pops the next runnable key (demand first) or returns false.
  bool PopLocked(BlockKey* key);
  /// Extends the popped `key` with queued adjacent same-owner requests
  /// (same provider, consecutive block indices, not in flight), removing
  /// them from their lanes and marking every gathered request in flight.
  /// Returns the keys in ascending block order; size 1 = no coalescing.
  std::vector<BlockKey> GatherRangeLocked(const BlockKey& key);
  /// Completes `keys` (all in flight, ascending adjacent blocks) with the
  /// outcome of one fetch: on success `payload` is split per block and
  /// delivered through the sink before any waiter runs. Reacquires `lock`
  /// before returning.
  void SettleFetch(std::unique_lock<std::mutex>& lock,
                   const std::vector<BlockKey>& keys,
                   Result<std::vector<std::byte>> payload,
                   std::int64_t retries, std::int64_t wall_us);

  FetchQueueConfig config_;
  Sink sink_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<BlockKey> demand_queue_;
  std::deque<BlockKey> prefetch_queue_;
  std::unordered_map<BlockKey, Request, BlockKeyHash> requests_;
  FetchQueueStats stats_;
  /// Fetchers currently running waiter callbacks outside the lock;
  /// WaitIdle counts them as outstanding work.
  int active_callbacks_ = 0;
  bool shutdown_ = false;

  std::vector<std::thread> fetchers_;
};

}  // namespace dbtouch::cache

#endif  // DBTOUCH_CACHE_FETCH_QUEUE_H_
