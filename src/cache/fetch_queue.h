// FetchQueue: the asynchronous block-fetch engine behind the BufferManager.
//
// PR 2 left one latency cliff on the read path: a cold-tier fault ran the
// provider's Fetch synchronously under the shard lock, so one slow remote
// read could stall a worker — and with it every session that worker would
// otherwise serve. The FetchQueue moves those reads onto a small fetcher
// thread pool:
//
//   TryPinBlock (miss) --> Enqueue(demand) ---+
//   Prefetcher slide path --> Enqueue(prefetch)+--> fetcher threads
//                                              |      provider->Fetch
//                                              |      (bounded retries,
//                                              |       exponential backoff)
//                                              v
//                                      deliver(key, payload) --> BlockCache
//                                      completion callbacks  --> waiters
//                                                               (scheduler
//                                                                unparks)
//
// Priorities: demand fetches (a session is parked on the answer) always
// pop before prefetch warm-ups (the extrapolated slide path); enqueueing a
// demand request for a block already queued at prefetch priority upgrades
// it in place. Requests for one block coalesce into a single fetch no
// matter how many waiters pile on.
//
// Failure contract: a fetch error is data, not an invariant violation.
// Transient errors (see IsTransientFetchError) are retried up to
// max_retries times with exponential backoff; the final status — OK or the
// last error — is handed to every waiter. Waiters are invoked on fetcher
// threads and must be cheap and non-blocking (the touch server's callback
// just unparks the session).

#ifndef DBTOUCH_CACHE_FETCH_QUEUE_H_
#define DBTOUCH_CACHE_FETCH_QUEUE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/block_cache.h"
#include "cache/block_provider.h"
#include "common/result.h"
#include "common/status.h"

namespace dbtouch::obs {
class TraceRecorder;
}  // namespace dbtouch::obs

namespace dbtouch::cache {

enum class FetchPriority : std::uint8_t {
  kPrefetch = 0,  // Warm-up along the extrapolated slide path.
  kDemand = 1,    // A quantum is suspended on this block.
};

struct FetchQueueConfig {
  /// Fetcher threads. Cold-tier reads are latency- not CPU-bound, so a
  /// couple of threads overlap many outstanding fetches.
  int num_fetchers = 2;
  /// Retries after the first attempt for transient errors.
  int max_retries = 3;
  /// Backoff before retry k is backoff_us << k (exponential).
  std::int64_t retry_backoff_us = 200;
  /// Batched demand fetches: when the popped request has queued
  /// neighbours (same owner, adjacent block indices, not yet in flight),
  /// up to this many blocks are merged into one provider ReadRange — a
  /// cold summary band costs one round trip instead of N. <= 1 disables
  /// coalescing.
  int max_coalesce_blocks = 16;
};

struct FetchQueueStats {
  std::int64_t demand_enqueued = 0;
  std::int64_t prefetch_enqueued = 0;
  /// Enqueues absorbed by an already-queued/in-flight fetch of the block.
  std::int64_t coalesced = 0;
  /// Prefetch requests re-prioritised by a later demand enqueue.
  std::int64_t upgraded = 0;
  std::int64_t completed = 0;
  std::int64_t retries = 0;
  /// Fetches that exhausted retries (or hit a permanent error).
  std::int64_t failures = 0;
  /// Queued-not-in-flight demand requests dropped by CancelTagged (a
  /// session closed before its fetch started).
  std::int64_t cancelled = 0;
  /// In-flight fetches whose retry loop CancelTagged cut short: the
  /// session parked on them closed, so the read was capped at the attempt
  /// already running instead of a full retry budget.
  std::int64_t aborted = 0;
  /// Pre-formed ranged warm-up tickets (EnqueueRange runs of >= 2 blocks):
  /// the extrapolator's horizon expressed as single ReadRange fetches, no
  /// pop-time re-merging involved.
  std::int64_t prefetch_ranges = 0;
  /// Coalesced provider calls: ReadRange invocations spanning >= 2
  /// adjacent blocks, and the blocks they covered. completed counts every
  /// block, so (completed - ranged_blocks + ranged_reads) is the number
  /// of provider round trips actually paid.
  std::int64_t ranged_reads = 0;
  std::int64_t ranged_blocks = 0;
  /// Payload bytes delivered by the fetchers (bytes faulted in from the
  /// cold tier — disk or remote).
  std::int64_t bytes_fetched = 0;
  /// Wall time inside provider fetches, including retries + backoff.
  std::int64_t fetch_wall_us = 0;
  std::int64_t max_fetch_wall_us = 0;
  /// Smoothed per-block fetch wall (us) — the live estimate of what one
  /// cold block costs on this tier right now. 0 until a fetch settles.
  /// The scheduler extends deadlines of refinement quanta by exactly this
  /// measured latency, never by a guess.
  std::int64_t ewma_block_fetch_us = 0;
};

/// True for error codes worth retrying: the transport may deliver on the
/// next attempt (lost response, backpressure, timeout). Invariant-shaped
/// errors (OutOfRange, InvalidArgument, ...) are permanent.
bool IsTransientFetchError(const Status& status);

/// Fetches `block` from `provider` with the queue's retry policy, inline
/// on the calling thread — the synchronous fallback path shares one
/// definition of "retryable read" with the async queue. `retries_out`
/// (optional) accumulates the retries spent. `abort` (optional) is the
/// cancellation latch: once it reads true, the loop returns the current
/// attempt's outcome instead of spending further retries — a cancelled
/// session's read costs at most one attempt, not one full fetch.
Result<std::vector<std::byte>> FetchBlockWithRetry(
    BlockProvider& provider, std::int64_t block,
    const FetchQueueConfig& config, std::int64_t* retries_out = nullptr,
    const std::atomic<bool>* abort = nullptr);

/// Ranged sibling of FetchBlockWithRetry: one provider ReadRange over
/// [first_block, first_block + count) under the same retry policy.
Result<std::vector<std::byte>> FetchRangeWithRetry(
    BlockProvider& provider, std::int64_t first_block, std::int64_t count,
    const FetchQueueConfig& config, std::int64_t* retries_out = nullptr,
    const std::atomic<bool>* abort = nullptr);

class FetchQueue {
 public:
  /// Invoked with the fetch's final status after the payload (if any) was
  /// delivered to the sink — so a waiter that immediately retries its pin
  /// is guaranteed to hit.
  using Completion = std::function<void(const Status&)>;
  /// Receives successfully fetched payloads (the BufferManager's insert
  /// into its BlockCache) with the priority the fetch was served at, so
  /// the cache can shelter demand completions — a session is parked on
  /// those — from warm-up churn. Runs on a fetcher thread.
  using Sink = std::function<void(
      const BlockKey&, std::vector<std::byte> payload, FetchPriority)>;

  FetchQueue(const FetchQueueConfig& config, Sink sink);
  ~FetchQueue();

  FetchQueue(const FetchQueue&) = delete;
  FetchQueue& operator=(const FetchQueue&) = delete;

  /// Requests `block` of `provider`, identified in the cache as `key`.
  /// Coalesces with any queued/in-flight fetch of the same key (a demand
  /// request upgrades a still-queued prefetch). `done` may be null (fire
  /// and forget — the prefetch path). `tag` names the waiter's owner (the
  /// touch server passes the session id) so CancelTagged can retract its
  /// tickets; 0 = untagged. Returns true iff a NEW request was created —
  /// false for coalesced joins and shutdown rejections — so callers
  /// budgeting fetches don't spend their budget on no-ops.
  bool Enqueue(const BlockKey& key, std::shared_ptr<BlockProvider> provider,
               std::int64_t block, FetchPriority priority, Completion done,
               std::uint64_t tag = 0);

  /// Enqueues blocks [first_block, first_block + count) of `owner` as
  /// pre-formed ranged warm-up tickets: each run of blocks with no
  /// existing request becomes ONE prefetch ticket whose fetch is a single
  /// provider ReadRange — the predicted slide path rides one backing read
  /// sized by the horizon, with no pop-time re-merging (and no
  /// max_coalesce_blocks cap). Blocks already queued or in flight are
  /// skipped (counted as coalesced). A later demand Enqueue for a block
  /// inside a still-queued ticket splits the ticket around it, so demand
  /// never waits on (or inflates) a warm-up range. Fire-and-forget like
  /// RequestPrefetch; returns the number of blocks actually enqueued.
  std::size_t EnqueueRange(std::uint64_t owner,
                           std::shared_ptr<BlockProvider> provider,
                           std::int64_t first_block, std::int64_t count);

  /// Retracts `tag`'s tickets (a session closed). Waiters of still-queued
  /// requests fail with Aborted, and a demand request left with no
  /// waiters is dropped entirely, so closed sessions stop consuming
  /// cold-tier bandwidth. An IN-FLIGHT fetch whose every covered request
  /// is left waiterless demand gets its abort latch set: the read caps at
  /// the attempt already running instead of a full retry budget (counted
  /// in stats().aborted); fetches other sessions still wait on — and
  /// shared warm-ups — run to completion. Returns the number of queued
  /// requests dropped.
  std::size_t CancelTagged(std::uint64_t tag);

  /// Queued + in-flight fetches.
  std::size_t outstanding() const;

  /// Blocks until no fetch is queued or in flight (tests).
  void WaitIdle();

  /// Stops the fetchers. Queued-but-unstarted requests fail their waiters
  /// with Aborted; in-flight fetches finish first. Idempotent.
  void Shutdown();

  FetchQueueStats stats() const;

  /// Lock-free read of the smoothed per-block fetch wall (us); 0 until a
  /// fetch settles. Safe from the worker hot path.
  std::int64_t ewma_block_fetch_us() const {
    return ewma_block_us_.load(std::memory_order_relaxed);
  }

  /// Trace hook: each provider read the fetchers issue is recorded as a
  /// kFetchStarted/kFetchDone span pair (session field = block owner tag,
  /// a/b = first block + count, then ok + wall micros). Atomic because the
  /// recorder may be wired after the fetcher threads are already running;
  /// null = off.
  void set_trace_recorder(obs::TraceRecorder* recorder) {
    trace_.store(recorder, std::memory_order_release);
  }

 private:
  struct Waiter {
    Completion done;
    std::uint64_t tag = 0;
  };

  struct Request {
    std::shared_ptr<BlockProvider> provider;
    std::int64_t block = 0;
    FetchPriority priority = FetchPriority::kPrefetch;
    bool in_flight = false;
    /// Pre-formed ranged ticket (EnqueueRange): on the head request, how
    /// many consecutive blocks [block, block + range_count) one ReadRange
    /// serves. 1 = an ordinary single-block request.
    std::int64_t range_count = 1;
    /// Non-head blocks of a pre-formed ticket: only the head sits in the
    /// prefetch lane; members are findable here (so demand enqueues can
    /// coalesce or split) but never popped directly.
    bool range_member = false;
    std::int64_t head_block = 0;
    /// Cancellation latch shared by every request of one in-flight fetch;
    /// set by CancelTagged, read between retry attempts.
    std::shared_ptr<std::atomic<bool>> abort;
    std::vector<Waiter> waiters;
  };

  void FetcherLoop();
  /// Pops the next runnable key (demand first) or returns false.
  bool PopLocked(BlockKey* key);
  /// Extends the popped `key` with queued adjacent same-owner requests
  /// (same provider, consecutive block indices, not in flight), removing
  /// them from their lanes and marking every gathered request in flight.
  /// A pre-formed ranged ticket is taken whole instead (its size was set
  /// by the prefetch horizon, not max_coalesce_blocks) and never extended.
  /// Returns the keys in ascending block order; size 1 = no coalescing.
  std::vector<BlockKey> GatherRangeLocked(const BlockKey& key);
  /// Carves `key` out of the pre-formed ranged ticket covering it (no-op
  /// for ordinary requests): the ticket splits into up to two shorter
  /// tickets around `key`, which becomes a standalone queued-nowhere
  /// request the caller may re-lane. Only valid while nothing is in
  /// flight for the ticket.
  void DetachFromRangeLocked(const BlockKey& key);
  /// Completes `keys` (all in flight, ascending adjacent blocks) with the
  /// outcome of one fetch: on success `payload` is split per block and
  /// delivered through the sink before any waiter runs. Reacquires `lock`
  /// before returning.
  void SettleFetch(std::unique_lock<std::mutex>& lock,
                   const std::vector<BlockKey>& keys,
                   Result<std::vector<std::byte>> payload,
                   std::int64_t retries, std::int64_t wall_us);

  FetchQueueConfig config_;
  Sink sink_;
  std::atomic<obs::TraceRecorder*> trace_{nullptr};

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<BlockKey> demand_queue_;
  std::deque<BlockKey> prefetch_queue_;
  std::unordered_map<BlockKey, Request, BlockKeyHash> requests_;
  FetchQueueStats stats_;
  /// Mirror of stats_.ewma_block_fetch_us readable without mu_ (updated
  /// under mu_ in SettleFetch; alpha 0.2 favours stability over reaction).
  std::atomic<std::int64_t> ewma_block_us_{0};
  /// Fetchers currently running waiter callbacks outside the lock;
  /// WaitIdle counts them as outstanding work.
  int active_callbacks_ = 0;
  bool shutdown_ = false;

  std::vector<std::thread> fetchers_;
};

}  // namespace dbtouch::cache

#endif  // DBTOUCH_CACHE_FETCH_QUEUE_H_
