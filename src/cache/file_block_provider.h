// FileBlockProvider: the disk spill tier behind the BufferManager.
//
// A spilled column lives in one block file — a self-describing header, an
// explicit per-block extent table, and the block payloads back to back:
//
//   +--------------------+  BlockFileHeader (magic, version, geometry)
//   | header  (64 bytes) |
//   +--------------------+  num_blocks x BlockExtent {offset, bytes} —
//   | extent table       |  redundant for fixed-width data, but it makes
//   +--------------------+  the file checkable (a truncated or corrupted
//   | block 0 payload    |  file fails validation instead of serving
//   | block 1 payload    |  garbage) and keeps the format open to future
//   | ...                |  variable-width encodings.
//   +--------------------+
//
// BlockFileWriter streams a column out one block at a time (the spill
// itself never materialises the whole column), FileBlockProvider faults
// blocks back in: pread per block by default, a single pread spanning the
// extents for ranged reads (ReadRange — the batched demand fetch path),
// or zero-syscall memcpy reads from an optional read-only mmap of the
// file. The provider is async(): reads suspend quanta instead of blocking
// workers, exactly like the remote tier.
//
// Failure contract (mirrors RemoteBlockProvider): a short pread is a
// transient Status (Aborted) the fetch path retries with backoff; an
// unopenable file (deleted, permission) is permanent and sheds only the
// stalled gesture. FileFaultInjector injects both classes
// deterministically for the fault battery, the file-system ones
// (truncate, unlink) are exercised for real in tests/file_tier_test.cc.

#ifndef DBTOUCH_CACHE_FILE_BLOCK_PROVIDER_H_
#define DBTOUCH_CACHE_FILE_BLOCK_PROVIDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cache/block_provider.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/dictionary.h"
#include "storage/types.h"

namespace dbtouch::cache {

/// On-disk header of a spilled column (or PAX table). Fixed 64 bytes,
/// host endian (spill files are node-local scratch, not an interchange
/// format). Pre-flags files carry zeros where `flags`/`num_columns` now
/// live, which reads back as "plain single-column, dense extents" — the
/// old format, unchanged.
struct BlockFileHeader {
  static constexpr char kMagic[4] = {'D', 'B', 'T', 'B'};
  static constexpr std::uint32_t kVersion = 1;

  /// The file's blocks are PAX multi-column payloads; a column-type
  /// directory (num_columns x uint32) follows the extent table.
  static constexpr std::uint32_t kFlagPax = 1u << 0;
  /// Block payloads start on 4 KiB boundaries (extent.bytes still counts
  /// only real payload) so an O_DIRECT reader can read exact extents.
  static constexpr std::uint32_t kFlagAlignedExtents = 1u << 1;

  char magic[4] = {'D', 'B', 'T', 'B'};
  std::uint32_t version = kVersion;
  std::uint32_t type = 0;   // storage::DataType (PAX: of column 0)
  std::uint32_t width = 0;  // Row bytes in a payload; PAX: summed widths.
  std::int64_t row_count = 0;
  std::int64_t rows_per_block = 0;
  std::int64_t num_blocks = 0;
  /// File offset of the first block payload (= 64 + extent table bytes
  /// + column directory bytes, rounded up to 4 KiB under
  /// kFlagAlignedExtents).
  std::int64_t payload_offset = 0;
  std::uint32_t flags = 0;
  std::uint32_t num_columns = 0;  // 0 for plain single-column files.
  std::int64_t reserved = 0;
};
static_assert(sizeof(BlockFileHeader) == 64, "header layout is part of "
                                             "the on-disk format");

/// Alignment unit for O_DIRECT I/O and aligned extents: covers the
/// logical-block size of any common device and the page size.
inline constexpr std::int64_t kDirectIoAlignment = 4096;

constexpr std::int64_t AlignUpDirect(std::int64_t n) {
  return (n + kDirectIoAlignment - 1) & ~(kDirectIoAlignment - 1);
}

/// One block's location in the file.
struct BlockExtent {
  std::int64_t offset = 0;
  std::int64_t bytes = 0;
};

struct BlockFileWriterOptions {
  /// Pad every block payload's start to a 4 KiB boundary and set
  /// kFlagAlignedExtents, so an O_DIRECT reader can read whole extents
  /// without straddling alignment. Costs at most 4 KiB - 1 per block.
  bool aligned_extents = false;
  /// Write payloads through O_DIRECT (implies aligned_extents). Falls
  /// back to buffered writes when the filesystem refuses O_DIRECT
  /// (tmpfs/CI) — check direct_active() to see which engaged.
  bool use_direct = false;
  /// Non-empty = PAX multi-column payloads: the per-column field types,
  /// recorded in the file's column directory. geometry.row_bytes must
  /// equal PaxLayout(pax_columns).row_bytes().
  std::vector<storage::DataType> pax_columns;
};

/// Streams one column's blocks into a block file: Append each block in
/// order, then Finish (which seals header + extent table). A writer that
/// is destroyed without Finish leaves a file that fails Open validation —
/// a crashed spill can never serve partial data.
class BlockFileWriter {
 public:
  BlockFileWriter(std::string path, const BlockGeometry& geometry,
                  BlockFileWriterOptions options = {});
  ~BlockFileWriter();

  BlockFileWriter(const BlockFileWriter&) = delete;
  BlockFileWriter& operator=(const BlockFileWriter&) = delete;

  /// Appends the next block's payload; must be called in block order with
  /// exactly geometry.BlockRowCount(block) * width bytes.
  Status Append(const std::byte* data, std::size_t size);

  /// Writes the extent table, column directory (PAX) and header. No
  /// Append may follow.
  Status Finish();

  const std::string& path() const { return path_; }
  std::int64_t bytes_written() const { return bytes_written_; }
  /// True when payload writes actually go through O_DIRECT (use_direct
  /// requested and the filesystem accepted it).
  bool direct_active() const { return direct_active_; }

 private:
  std::string path_;
  BlockGeometry geometry_;
  BlockFileWriterOptions options_;
  int fd_ = -1;
  Status open_status_;
  std::int64_t next_block_ = 0;
  /// Next payload write offset (aligned up per block when
  /// aligned_extents); starts at payload_offset.
  std::int64_t bytes_written_ = 0;
  std::vector<BlockExtent> extents_;
  bool finished_ = false;
  bool direct_active_ = false;
  /// O_DIRECT staging: payload copied into an aligned buffer, tail
  /// zero-padded to the alignment unit.
  std::byte* staging_ = nullptr;
  std::size_t staging_capacity_ = 0;
};

/// Deterministic fault injection for the file tier — the disk analogue of
/// RemoteServer::FailNextReads. Installed on a FileBlockProvider, it
/// intercepts backing reads and substitutes a failure:
///
///   kShortRead        -> transient (Aborted): a read returned fewer bytes
///                        than the extent — retried with backoff.
///   kIoError          -> transient (ResourceExhausted): the device
///                        hiccupped (EAGAIN-shaped) — retried.
///   kPermissionDenied -> permanent (Internal): EACCES-shaped — fails the
///                        fetch immediately, shedding only the stalled
///                        gesture.
///
/// Thread-safe: concurrent fetchers draw faults from one budget.
class FileFaultInjector {
 public:
  enum class Fault : std::uint8_t {
    kNone = 0,
    kShortRead,
    kIoError,
    kPermissionDenied,
  };

  /// The next `n` backing reads fail with `fault`.
  void FailNextReads(int n, Fault fault = Fault::kShortRead);
  /// Steady-state flakiness: every `n`th read fails (0 = reliable).
  void set_fail_every(int n, Fault fault = Fault::kShortRead);

  /// Consumed by the provider before each backing read.
  Fault Next();

  std::int64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mu_;
  int fail_next_ = 0;
  Fault next_fault_ = Fault::kNone;
  int fail_every_ = 0;
  Fault every_fault_ = Fault::kNone;
  std::int64_t reads_ = 0;
  std::atomic<std::int64_t> injected_{0};
};

/// Pool of 4 KiB-aligned read buffers for O_DIRECT I/O: the kernel DMAs
/// straight into these, bypassing the page cache, so the buffer pool
/// budget is the true memory ceiling (no double-buffering in the kernel).
/// Thread-safe; keeps a small freelist to avoid a posix_memalign per
/// read.
class AlignedBufferPool {
 public:
  struct Buffer {
    std::byte* data = nullptr;
    std::size_t capacity = 0;
  };

  AlignedBufferPool() = default;
  ~AlignedBufferPool();
  AlignedBufferPool(const AlignedBufferPool&) = delete;
  AlignedBufferPool& operator=(const AlignedBufferPool&) = delete;

  /// A buffer of capacity >= bytes (rounded up to the alignment unit),
  /// aligned to kDirectIoAlignment. Dies on allocation failure (as every
  /// other allocation here does).
  Buffer Acquire(std::size_t bytes);
  /// Returns a buffer to the freelist (or frees it once the list is
  /// full). Must be the exact Buffer an Acquire returned.
  void Release(Buffer buffer);

 private:
  static constexpr std::size_t kMaxPooled = 8;
  std::mutex mu_;
  std::vector<Buffer> free_;
};

struct FileProviderOptions {
  /// Map the file read-only and serve blocks by memcpy from the mapping
  /// instead of pread (saves the syscall; the page cache backs both).
  bool use_mmap = false;
  /// Open the file anew on every fetch instead of holding one descriptor.
  /// Slower, but makes file-system state observable: a file deleted or
  /// chmodded mid-session fails the next fetch instead of being masked by
  /// the long-lived descriptor. The validation-time geometry still
  /// applies.
  bool reopen_per_fetch = false;
  /// Read payloads with O_DIRECT (page-cache bypass): reads are widened
  /// to 4 KiB-aligned spans into pooled aligned buffers and sliced out.
  /// When the filesystem rejects O_DIRECT (tmpfs/CI) the provider falls
  /// back to plain pread — check direct_active(). Ignored under use_mmap
  /// or reopen_per_fetch (both want the page cache / per-fetch fd).
  bool use_direct = false;
};

/// Cold tier over one spilled column (or PAX table) file.
class FileBlockProvider final : public BlockProvider {
 public:
  /// Opens and validates `path` (magic, version, type width, extent table
  /// coverage). `dictionary` is attached to views over fetched blocks
  /// (string columns); the provider keeps it alive. For PAX files,
  /// `pax_dictionaries[c]` (when provided) is the dictionary of schema
  /// column c; `dictionary` is ignored.
  static Result<std::shared_ptr<FileBlockProvider>> Open(
      const std::string& path, const FileProviderOptions& options = {},
      std::shared_ptr<storage::Dictionary> dictionary = nullptr,
      std::vector<std::shared_ptr<storage::Dictionary>> pax_dictionaries =
          {});

  ~FileBlockProvider() override;

  FileBlockProvider(const FileBlockProvider&) = delete;
  FileBlockProvider& operator=(const FileBlockProvider&) = delete;

  const BlockGeometry& geometry() const override { return geometry_; }
  const storage::Dictionary* dictionary() const override {
    return dictionary_.get();
  }
  Result<std::vector<std::byte>> Fetch(std::int64_t block) override;
  /// One pread (or mmap memcpy) spanning the adjacent blocks' extents —
  /// the coalesced cold-band read.
  Result<std::vector<std::byte>> ReadRange(std::int64_t first_block,
                                           std::int64_t count) override;
  bool async() const override { return true; }

  const storage::PaxLayout* pax_layout() const override {
    return pax_layout_ ? &*pax_layout_ : nullptr;
  }
  const storage::Dictionary* pax_dictionary(
      std::size_t column) const override {
    return column < pax_dictionaries_.size()
               ? pax_dictionaries_[column].get()
               : nullptr;
  }

  const std::string& path() const { return path_; }
  /// True when reads actually bypass the page cache (use_direct was
  /// requested and the filesystem accepted O_DIRECT at open).
  bool direct_active() const { return direct_active_; }
  /// True when the file's extents start on 4 KiB boundaries
  /// (kFlagAlignedExtents).
  bool aligned_extents() const { return aligned_extents_; }

  /// Observability: backing reads issued (single + ranged), how many were
  /// ranged, blocks they covered, and payload bytes read from disk.
  std::int64_t reads() const {
    return reads_.load(std::memory_order_relaxed);
  }
  std::int64_t ranged_reads() const {
    return ranged_reads_.load(std::memory_order_relaxed);
  }
  std::int64_t blocks_read() const {
    return blocks_read_.load(std::memory_order_relaxed);
  }
  std::int64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }

  /// Installs a fault injector (not owned; may be null to clear).
  void set_fault_injector(FileFaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

 private:
  FileBlockProvider() = default;

  /// Reads [offset, offset + size) into `dst`: pread on the held (or
  /// per-fetch reopened) descriptor, or memcpy from the mapping. Applies
  /// the fault injector. `what` labels errors ("block 3" / "blocks 3..7").
  Status ReadAt(std::int64_t offset, std::byte* dst, std::int64_t size,
                const std::string& what);

  std::string path_;
  FileProviderOptions options_;
  std::shared_ptr<storage::Dictionary> dictionary_;
  BlockGeometry geometry_;
  std::vector<BlockExtent> extents_;
  std::optional<storage::PaxLayout> pax_layout_;
  std::vector<std::shared_ptr<storage::Dictionary>> pax_dictionaries_;
  std::int64_t file_size_ = 0;
  int fd_ = -1;  // -1 in reopen_per_fetch mode.
  void* map_ = nullptr;  // Non-null iff use_mmap.
  bool aligned_extents_ = false;
  bool direct_active_ = false;
  AlignedBufferPool buffer_pool_;
  std::atomic<FileFaultInjector*> injector_{nullptr};
  std::atomic<std::int64_t> reads_{0};
  std::atomic<std::int64_t> ranged_reads_{0};
  std::atomic<std::int64_t> blocks_read_{0};
  std::atomic<std::int64_t> bytes_read_{0};
};

}  // namespace dbtouch::cache

#endif  // DBTOUCH_CACHE_FILE_BLOCK_PROVIDER_H_
