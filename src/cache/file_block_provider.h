// FileBlockProvider: the disk spill tier behind the BufferManager.
//
// A spilled column lives in one block file — a self-describing header, an
// explicit per-block extent table, and the block payloads back to back:
//
//   +--------------------+  BlockFileHeader (magic, version, geometry)
//   | header  (64 bytes) |
//   +--------------------+  num_blocks x BlockExtent {offset, bytes} —
//   | extent table       |  redundant for fixed-width data, but it makes
//   +--------------------+  the file checkable (a truncated or corrupted
//   | block 0 payload    |  file fails validation instead of serving
//   | block 1 payload    |  garbage) and keeps the format open to future
//   | ...                |  variable-width encodings.
//   +--------------------+
//
// BlockFileWriter streams a column out one block at a time (the spill
// itself never materialises the whole column), FileBlockProvider faults
// blocks back in: pread per block by default, a single pread spanning the
// extents for ranged reads (ReadRange — the batched demand fetch path),
// or zero-syscall memcpy reads from an optional read-only mmap of the
// file. The provider is async(): reads suspend quanta instead of blocking
// workers, exactly like the remote tier.
//
// Failure contract (mirrors RemoteBlockProvider): a short pread is a
// transient Status (Aborted) the fetch path retries with backoff; an
// unopenable file (deleted, permission) is permanent and sheds only the
// stalled gesture. FileFaultInjector injects both classes
// deterministically for the fault battery, the file-system ones
// (truncate, unlink) are exercised for real in tests/file_tier_test.cc.

#ifndef DBTOUCH_CACHE_FILE_BLOCK_PROVIDER_H_
#define DBTOUCH_CACHE_FILE_BLOCK_PROVIDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cache/block_provider.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/dictionary.h"
#include "storage/types.h"

namespace dbtouch::cache {

/// On-disk header of a spilled column. Fixed 64 bytes, host endian (spill
/// files are node-local scratch, not an interchange format).
struct BlockFileHeader {
  static constexpr char kMagic[4] = {'D', 'B', 'T', 'B'};
  static constexpr std::uint32_t kVersion = 1;

  char magic[4] = {'D', 'B', 'T', 'B'};
  std::uint32_t version = kVersion;
  std::uint32_t type = 0;   // storage::DataType
  std::uint32_t width = 0;  // Field width in bytes; must match the type.
  std::int64_t row_count = 0;
  std::int64_t rows_per_block = 0;
  std::int64_t num_blocks = 0;
  /// File offset of the first block payload (= 64 + extent table bytes).
  std::int64_t payload_offset = 0;
  std::int64_t reserved[2] = {0, 0};
};
static_assert(sizeof(BlockFileHeader) == 64, "header layout is part of "
                                             "the on-disk format");

/// One block's location in the file.
struct BlockExtent {
  std::int64_t offset = 0;
  std::int64_t bytes = 0;
};

/// Streams one column's blocks into a block file: Append each block in
/// order, then Finish (which seals header + extent table). A writer that
/// is destroyed without Finish leaves a file that fails Open validation —
/// a crashed spill can never serve partial data.
class BlockFileWriter {
 public:
  BlockFileWriter(std::string path, const BlockGeometry& geometry);
  ~BlockFileWriter();

  BlockFileWriter(const BlockFileWriter&) = delete;
  BlockFileWriter& operator=(const BlockFileWriter&) = delete;

  /// Appends the next block's payload; must be called in block order with
  /// exactly geometry.BlockRowCount(block) * width bytes.
  Status Append(const std::byte* data, std::size_t size);

  /// Writes the extent table and header. No Append may follow.
  Status Finish();

  const std::string& path() const { return path_; }
  std::int64_t bytes_written() const { return bytes_written_; }

 private:
  std::string path_;
  BlockGeometry geometry_;
  int fd_ = -1;
  Status open_status_;
  std::int64_t next_block_ = 0;
  std::int64_t bytes_written_ = 0;
  std::vector<BlockExtent> extents_;
  bool finished_ = false;
};

/// Deterministic fault injection for the file tier — the disk analogue of
/// RemoteServer::FailNextReads. Installed on a FileBlockProvider, it
/// intercepts backing reads and substitutes a failure:
///
///   kShortRead        -> transient (Aborted): a read returned fewer bytes
///                        than the extent — retried with backoff.
///   kIoError          -> transient (ResourceExhausted): the device
///                        hiccupped (EAGAIN-shaped) — retried.
///   kPermissionDenied -> permanent (Internal): EACCES-shaped — fails the
///                        fetch immediately, shedding only the stalled
///                        gesture.
///
/// Thread-safe: concurrent fetchers draw faults from one budget.
class FileFaultInjector {
 public:
  enum class Fault : std::uint8_t {
    kNone = 0,
    kShortRead,
    kIoError,
    kPermissionDenied,
  };

  /// The next `n` backing reads fail with `fault`.
  void FailNextReads(int n, Fault fault = Fault::kShortRead);
  /// Steady-state flakiness: every `n`th read fails (0 = reliable).
  void set_fail_every(int n, Fault fault = Fault::kShortRead);

  /// Consumed by the provider before each backing read.
  Fault Next();

  std::int64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mu_;
  int fail_next_ = 0;
  Fault next_fault_ = Fault::kNone;
  int fail_every_ = 0;
  Fault every_fault_ = Fault::kNone;
  std::int64_t reads_ = 0;
  std::atomic<std::int64_t> injected_{0};
};

struct FileProviderOptions {
  /// Map the file read-only and serve blocks by memcpy from the mapping
  /// instead of pread (saves the syscall; the page cache backs both).
  bool use_mmap = false;
  /// Open the file anew on every fetch instead of holding one descriptor.
  /// Slower, but makes file-system state observable: a file deleted or
  /// chmodded mid-session fails the next fetch instead of being masked by
  /// the long-lived descriptor. The validation-time geometry still
  /// applies.
  bool reopen_per_fetch = false;
};

/// Cold tier over one spilled column file.
class FileBlockProvider final : public BlockProvider {
 public:
  /// Opens and validates `path` (magic, version, type width, extent table
  /// coverage). `dictionary` is attached to views over fetched blocks
  /// (string columns); the provider keeps it alive.
  static Result<std::shared_ptr<FileBlockProvider>> Open(
      const std::string& path, const FileProviderOptions& options = {},
      std::shared_ptr<storage::Dictionary> dictionary = nullptr);

  ~FileBlockProvider() override;

  FileBlockProvider(const FileBlockProvider&) = delete;
  FileBlockProvider& operator=(const FileBlockProvider&) = delete;

  const BlockGeometry& geometry() const override { return geometry_; }
  const storage::Dictionary* dictionary() const override {
    return dictionary_.get();
  }
  Result<std::vector<std::byte>> Fetch(std::int64_t block) override;
  /// One pread (or mmap memcpy) spanning the adjacent blocks' extents —
  /// the coalesced cold-band read.
  Result<std::vector<std::byte>> ReadRange(std::int64_t first_block,
                                           std::int64_t count) override;
  bool async() const override { return true; }

  const std::string& path() const { return path_; }

  /// Observability: backing reads issued (single + ranged), how many were
  /// ranged, blocks they covered, and payload bytes read from disk.
  std::int64_t reads() const {
    return reads_.load(std::memory_order_relaxed);
  }
  std::int64_t ranged_reads() const {
    return ranged_reads_.load(std::memory_order_relaxed);
  }
  std::int64_t blocks_read() const {
    return blocks_read_.load(std::memory_order_relaxed);
  }
  std::int64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }

  /// Installs a fault injector (not owned; may be null to clear).
  void set_fault_injector(FileFaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

 private:
  FileBlockProvider() = default;

  /// Reads [offset, offset + size) into `dst`: pread on the held (or
  /// per-fetch reopened) descriptor, or memcpy from the mapping. Applies
  /// the fault injector. `what` labels errors ("block 3" / "blocks 3..7").
  Status ReadAt(std::int64_t offset, std::byte* dst, std::int64_t size,
                const std::string& what);

  std::string path_;
  FileProviderOptions options_;
  std::shared_ptr<storage::Dictionary> dictionary_;
  BlockGeometry geometry_;
  std::vector<BlockExtent> extents_;
  std::int64_t file_size_ = 0;
  int fd_ = -1;  // -1 in reopen_per_fetch mode.
  void* map_ = nullptr;  // Non-null iff use_mmap.
  std::atomic<FileFaultInjector*> injector_{nullptr};
  std::atomic<std::int64_t> reads_{0};
  std::atomic<std::int64_t> ranged_reads_{0};
  std::atomic<std::int64_t> blocks_read_{0};
  std::atomic<std::int64_t> bytes_read_{0};
};

}  // namespace dbtouch::cache

#endif  // DBTOUCH_CACHE_FILE_BLOCK_PROVIDER_H_
