#include "cache/block_provider.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/macros.h"

namespace dbtouch::cache {

Status CheckBlockRange(const BlockGeometry& geometry,
                       std::int64_t first_block, std::int64_t count) {
  if (count <= 0 || first_block < 0 ||
      first_block + count > geometry.num_blocks()) {
    return Status::OutOfRange("block range [" +
                              std::to_string(first_block) + ", " +
                              std::to_string(first_block + count) +
                              ") out of range");
  }
  return Status::OK();
}

Result<std::vector<std::byte>> BlockProvider::ReadRange(
    std::int64_t first_block, std::int64_t count) {
  DBTOUCH_RETURN_IF_ERROR(CheckBlockRange(geometry(), first_block, count));
  const std::int64_t rows =
      std::min((first_block + count) * geometry().rows_per_block,
               geometry().row_count) -
      first_block * geometry().rows_per_block;
  std::vector<std::byte> payload;
  payload.reserve(static_cast<std::size_t>(rows) * geometry().width());
  for (std::int64_t block = first_block; block < first_block + count;
       ++block) {
    DBTOUCH_ASSIGN_OR_RETURN(const std::vector<std::byte> one,
                             Fetch(block));
    payload.insert(payload.end(), one.begin(), one.end());
  }
  return payload;
}

TableBlockProvider::TableBlockProvider(
    std::shared_ptr<const storage::Table> table, std::size_t column,
    std::int64_t rows_per_block)
    : table_(std::move(table)), column_(column) {
  DBTOUCH_CHECK(table_ != nullptr);
  DBTOUCH_CHECK(column_ < table_->schema().num_fields());
  DBTOUCH_CHECK(rows_per_block > 0);
  geometry_.type = table_->schema().field(column_).type;
  geometry_.row_count = table_->row_count();
  geometry_.rows_per_block = rows_per_block;
}

Result<std::vector<std::byte>> TableBlockProvider::Fetch(std::int64_t block) {
  if (block < 0 || block >= geometry_.num_blocks()) {
    return Status::OutOfRange("block " + std::to_string(block) +
                              " out of range");
  }
  const std::size_t width = geometry_.width();
  const storage::RowId first = block * geometry_.rows_per_block;
  const std::int64_t count = geometry_.BlockRowCount(block);
  std::vector<std::byte> payload(static_cast<std::size_t>(count) * width);
  // The copy runs under the table's release gate: a concurrent spill
  // reclamation waits for it, and once the matrix is gone this fetch
  // fails permanently (FailedPrecondition is not a transient fetch
  // error) instead of reading freed memory — a stale binding sheds its
  // gesture cleanly while rebound sources serve from disk.
  DBTOUCH_RETURN_IF_ERROR(table_->WithRawColumn(
      column_, [&](const storage::ColumnView& view) -> Status {
        if (view.stride() == width) {
          // Column-major storage: the block is one contiguous run.
          std::memcpy(payload.data(),
                      view.data() + static_cast<std::size_t>(first) * width,
                      payload.size());
        } else {
          // Row-major storage: gather strided fields into a dense block.
          const std::byte* src =
              view.data() + static_cast<std::size_t>(first) * view.stride();
          std::byte* dst = payload.data();
          for (std::int64_t r = 0; r < count; ++r) {
            std::memcpy(dst, src, width);
            src += view.stride();
            dst += width;
          }
        }
        return Status::OK();
      }));
  return payload;
}

RemoteBlockProvider::RemoteBlockProvider(
    remote::RemoteServer* server, storage::DataType type,
    std::int64_t rows_per_block, const storage::Dictionary* dictionary)
    : server_(server), dictionary_(dictionary) {
  DBTOUCH_CHECK(server_ != nullptr);
  DBTOUCH_CHECK(rows_per_block > 0);
  geometry_.type = type;
  geometry_.row_count = server_->hierarchy().LevelView(0).row_count();
  geometry_.rows_per_block = rows_per_block;
}

Result<std::vector<std::byte>> RemoteBlockProvider::Fetch(
    std::int64_t block) {
  if (block < 0 || block >= geometry_.num_blocks()) {
    return Status::OutOfRange("block " + std::to_string(block) +
                              " out of range");
  }
  return FetchRows(block * geometry_.rows_per_block,
                   geometry_.BlockRowCount(block),
                   "block " + std::to_string(block));
}

Result<std::vector<std::byte>> RemoteBlockProvider::ReadRange(
    std::int64_t first_block, std::int64_t count) {
  DBTOUCH_RETURN_IF_ERROR(CheckBlockRange(geometry_, first_block, count));
  const storage::RowId first = first_block * geometry_.rows_per_block;
  const std::int64_t rows =
      std::min((first_block + count) * geometry_.rows_per_block,
               geometry_.row_count) -
      first;
  Result<std::vector<std::byte>> payload = FetchRows(
      first, rows,
      "blocks " + std::to_string(first_block) + ".." +
          std::to_string(first_block + count - 1));
  if (payload.ok() && count > 1) {
    ranged_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  return payload;
}

Result<std::vector<std::byte>> RemoteBlockProvider::FetchRows(
    storage::RowId first, std::int64_t count, const std::string& what) {
  std::int64_t response_bytes = 0;
  std::vector<double> values;
  {
    const std::lock_guard<std::mutex> lock(server_mu_);
    values = server_->ReadRange(0, first, count, &response_bytes);
  }
  // A short read is a transport failure (lost or truncated response), not
  // an invariant violation: surface it as a transient status so the fetch
  // path — FetchBlockWithRetry inline, or the FetchQueue's fetchers — can
  // retry with backoff instead of aborting the process.
  if (static_cast<std::int64_t>(values.size()) != count) {
    return Status::Aborted(
        "remote short read: got " + std::to_string(values.size()) +
        " of " + std::to_string(count) + " entries for " + what);
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  bytes_fetched_.fetch_add(response_bytes, std::memory_order_relaxed);

  const std::size_t width = geometry_.width();
  std::vector<std::byte> payload(static_cast<std::size_t>(count) * width);
  std::byte* dst = payload.data();
  for (std::int64_t r = 0; r < count; ++r, dst += width) {
    const double v = values[static_cast<std::size_t>(r)];
    switch (geometry_.type) {
      case storage::DataType::kInt32:
      case storage::DataType::kString: {
        const auto x = static_cast<std::int32_t>(std::llround(v));
        std::memcpy(dst, &x, sizeof(x));
        break;
      }
      case storage::DataType::kInt64: {
        const std::int64_t x = std::llround(v);
        std::memcpy(dst, &x, sizeof(x));
        break;
      }
      case storage::DataType::kFloat: {
        const auto x = static_cast<float>(v);
        std::memcpy(dst, &x, sizeof(x));
        break;
      }
      case storage::DataType::kDouble:
        std::memcpy(dst, &v, sizeof(v));
        break;
    }
  }
  return payload;
}

}  // namespace dbtouch::cache
