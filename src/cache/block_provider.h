// BlockProvider: the backing-store seam behind the BufferManager. A
// provider materialises one fixed-size block of a column as densely packed
// native-width fields; the BufferManager decides which blocks stay
// resident. Two tiers ship today:
//
//   - TableBlockProvider: copies blocks out of an in-memory base table
//     (the fast tier — a fault costs one memcpy).
//   - RemoteBlockProvider: faults blocks in from a remote::RemoteServer
//     via level-0 range reads (paper Section 4's slow tier: "the server
//     may store the base data ... while the touch device may store only
//     small samples").
//
// Later tiers (async fetch, spill-to-disk, NUMA-partitioned replicas) plug
// in behind the same interface without touching the read path.

#ifndef DBTOUCH_CACHE_BLOCK_PROVIDER_H_
#define DBTOUCH_CACHE_BLOCK_PROVIDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "remote/remote_store.h"
#include "storage/dictionary.h"
#include "storage/pax.h"
#include "storage/table.h"
#include "storage/types.h"

namespace dbtouch::cache {

/// Shape of the column (or PAX row-group) a provider serves.
struct BlockGeometry {
  storage::DataType type = storage::DataType::kInt32;
  std::int64_t row_count = 0;
  std::int64_t rows_per_block = 0;
  /// Bytes one row contributes to a block payload. 0 (the default) means
  /// "derive from `type`" — the single-column case. PAX multi-column
  /// providers set it to the summed field widths, so every size formula
  /// below (payload = BlockRowCount * width()) holds unchanged.
  std::size_t row_bytes = 0;

  std::size_t width() const {
    return row_bytes != 0 ? row_bytes : storage::TypeWidth(type);
  }
  std::int64_t num_blocks() const {
    return rows_per_block == 0
               ? 0
               : (row_count + rows_per_block - 1) / rows_per_block;
  }
  std::int64_t BlockRowCount(std::int64_t block) const {
    const std::int64_t first = block * rows_per_block;
    return std::min<std::int64_t>(rows_per_block, row_count - first);
  }
};

/// Shared bounds validation for Fetch/ReadRange implementations: OK iff
/// [first_block, first_block + count) lies inside the geometry.
Status CheckBlockRange(const BlockGeometry& geometry,
                       std::int64_t first_block, std::int64_t count);

class BlockProvider {
 public:
  virtual ~BlockProvider() = default;

  virtual const BlockGeometry& geometry() const = 0;
  /// Dictionary to attach to views over fetched blocks (string columns).
  virtual const storage::Dictionary* dictionary() const { return nullptr; }

  /// Materialises block `block` as geometry().BlockRowCount(block) densely
  /// packed fields of geometry().width() bytes. Must be thread-safe: the
  /// BufferManager may fault different blocks concurrently.
  ///
  /// Errors are data, not invariants: a provider over a lossy transport
  /// returns a transient status (Aborted / ResourceExhausted /
  /// DeadlineExceeded) and the fetch path retries with backoff — see
  /// cache/fetch_queue.h.
  virtual Result<std::vector<std::byte>> Fetch(std::int64_t block) = 0;

  /// Materialises blocks [first_block, first_block + count) as one densely
  /// packed payload (block payloads back to back). This is the batched
  /// demand-fetch seam: when a cold summary band misses N adjacent blocks,
  /// the fetch path calls this once instead of Fetch N times, so tiers
  /// with per-request cost (disk seeks, remote round trips) pay it once.
  /// The default loops over Fetch — correct for every provider, no faster.
  virtual Result<std::vector<std::byte>> ReadRange(std::int64_t first_block,
                                                   std::int64_t count);

  /// True when Fetch is slow enough that callers should suspend on it
  /// rather than block a worker (remote / disk tiers). Immediate providers
  /// (in-memory copies) fill synchronously even on the non-blocking path.
  virtual bool async() const { return false; }

  /// Multi-column (PAX) providers: how each block payload is carved into
  /// per-column minipages. Null for single-column providers. The layout
  /// must stay valid for the provider's lifetime.
  virtual const storage::PaxLayout* pax_layout() const { return nullptr; }

  /// Dictionary of PAX column `column` (string columns), else null. Only
  /// meaningful when pax_layout() is non-null.
  virtual const storage::Dictionary* pax_dictionary(
      std::size_t column) const {
    (void)column;
    return nullptr;
  }
};

/// Fast tier: blocks copied out of an in-memory table column. Reads the
/// column view at fetch time, so a layout rotation between faults changes
/// the copy path, never the values.
class TableBlockProvider final : public BlockProvider {
 public:
  TableBlockProvider(std::shared_ptr<const storage::Table> table,
                     std::size_t column, std::int64_t rows_per_block);

  const BlockGeometry& geometry() const override { return geometry_; }
  const storage::Dictionary* dictionary() const override {
    return table_->dictionary(column_).get();
  }
  Result<std::vector<std::byte>> Fetch(std::int64_t block) override;

 private:
  std::shared_ptr<const storage::Table> table_;
  std::size_t column_;
  BlockGeometry geometry_;
};

/// Slow tier: blocks faulted in from a RemoteServer's base level through
/// ranged reads. The wire format is doubles (the server's numeric view),
/// re-encoded into the declared type on arrival — exact for int32/float/
/// double and for int64 magnitudes below 2^53; string columns round-trip
/// their dictionary codes.
class RemoteBlockProvider final : public BlockProvider {
 public:
  RemoteBlockProvider(remote::RemoteServer* server, storage::DataType type,
                      std::int64_t rows_per_block,
                      const storage::Dictionary* dictionary = nullptr);

  const BlockGeometry& geometry() const override { return geometry_; }
  const storage::Dictionary* dictionary() const override {
    return dictionary_;
  }
  Result<std::vector<std::byte>> Fetch(std::int64_t block) override;
  /// One ranged read against the server spanning the blocks' rows — N
  /// adjacent cold blocks cost one round trip instead of N.
  Result<std::vector<std::byte>> ReadRange(std::int64_t first_block,
                                           std::int64_t count) override;
  bool async() const override { return true; }

  std::int64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  std::int64_t ranged_requests() const {
    return ranged_requests_.load(std::memory_order_relaxed);
  }
  std::int64_t bytes_fetched() const {
    return bytes_fetched_.load(std::memory_order_relaxed);
  }

 private:
  /// Shared fetch core: reads `count` rows from `first` as one server
  /// range read and re-encodes the doubles into the declared type.
  Result<std::vector<std::byte>> FetchRows(storage::RowId first,
                                           std::int64_t count,
                                           const std::string& what);
  remote::RemoteServer* server_;  // Not owned.
  /// RemoteServer models one synchronous endpoint and is not itself
  /// thread-safe; faults from concurrent cache shards serialise here.
  std::mutex server_mu_;
  const storage::Dictionary* dictionary_;
  BlockGeometry geometry_;
  std::atomic<std::int64_t> requests_{0};
  std::atomic<std::int64_t> ranged_requests_{0};
  std::atomic<std::int64_t> bytes_fetched_{0};
};

}  // namespace dbtouch::cache

#endif  // DBTOUCH_CACHE_BLOCK_PROVIDER_H_
