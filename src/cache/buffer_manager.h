// BufferManager: the server-wide buffer pool the touch read path runs
// through. Column data lives in fixed-size blocks owned by a payload-
// holding BlockCache (pin/unpin, byte budget, gesture-aware scan-bypass
// admission), keyed by (table, column, block) and faulted in from a
// pluggable BlockProvider — the in-memory base table by default, a
// remote::RemoteStore adapter for cold tiers.
//
// One BufferManager serves every session of a SharedState, so concurrent
// sessions share one bounded memory footprint; per-object access goes
// through storage::PagedColumnSource handles this class hands out, which
// kernels and exec operators consume without knowing whether the bytes
// are cached copies or zero-copy views.
//
// Thread-safety: the binding registry is mutex-guarded; pins go to the
// sharded BlockCache. Handed-out sources must not outlive the manager
// (the SharedState owns both the manager and, transitively, the kernels
// holding sources).

#ifndef DBTOUCH_CACHE_BUFFER_MANAGER_H_
#define DBTOUCH_CACHE_BUFFER_MANAGER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "cache/block_cache.h"
#include "cache/block_provider.h"
#include "common/result.h"
#include "storage/paged_column.h"
#include "storage/table.h"

namespace dbtouch::cache {

struct BufferManagerConfig {
  /// Byte budget for resident (retained) block payloads.
  std::int64_t budget_bytes = 64ll << 20;
  /// Rows per block. 16K rows of an 8-byte column = 128 KiB blocks.
  std::int64_t rows_per_block = 16'384;
  /// Gesture-aware scan-bypass admission (see BlockCache).
  bool gesture_aware = true;
  int scan_run_length = 8;
  /// BlockCache shards; the touch server raises this so workers pinning
  /// different blocks do not contend.
  int shards = 1;
};

class BufferManager {
 public:
  explicit BufferManager(const BufferManagerConfig& config = {});

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// A paged source reading `table.column` through this pool, faulting
  /// from an (auto-created) TableBlockProvider. Binding is by table name +
  /// column and pinned to the table's identity: re-registering the name
  /// with new contents rebinds under a fresh block namespace, so stale
  /// cached blocks can never serve the new data. The provider (and its
  /// row-count snapshot) is shared by every source of the binding —
  /// registered tables are treated as frozen for exploration, like the
  /// sample hierarchies do.
  Result<std::shared_ptr<storage::PagedColumnSource>> ColumnSource(
      const std::shared_ptr<storage::Table>& table, std::size_t column);

  /// A paged source over an explicit provider registered under
  /// `name.column` — the remote cold-tier path and the test seam. Repeat
  /// calls with the same (name, column, provider) share cached blocks;
  /// a different provider rebinds.
  std::shared_ptr<storage::PagedColumnSource> SourceFor(
      const std::string& name, std::size_t column,
      std::shared_ptr<BlockProvider> provider);

  /// Gesture pause: interest in the current region, admission resumes.
  void OnGesturePause() { cache_.OnGesturePause(); }

  BlockCacheStats stats() const { return cache_.stats(); }
  std::int64_t resident_bytes() const { return cache_.resident_bytes(); }
  bool in_scan_mode() const { return cache_.in_scan_mode(); }
  const BufferManagerConfig& config() const { return config_; }

 private:
  class Source;

  struct Binding {
    const void* identity = nullptr;
    std::uint64_t owner = 0;
    std::shared_ptr<BlockProvider> provider;
  };

  /// The binding for (name, column): reused while `identity` (provider or
  /// table) is unchanged; rebound with a fresh owner id — and a provider
  /// from `make_provider` — when it changed.
  Binding BindOwner(
      const std::string& name, std::size_t column, const void* identity,
      const std::function<std::shared_ptr<BlockProvider>()>& make_provider);

  BufferManagerConfig config_;
  BlockCache cache_;
  mutable std::mutex mu_;
  std::map<std::pair<std::string, std::size_t>, Binding> bindings_;
  std::uint64_t next_owner_ = 1;
};

}  // namespace dbtouch::cache

#endif  // DBTOUCH_CACHE_BUFFER_MANAGER_H_
