// BufferManager: the server-wide buffer pool the touch read path runs
// through. Column data lives in fixed-size blocks owned by a payload-
// holding BlockCache (pin/unpin, byte budget, gesture-aware scan-bypass
// admission), keyed by (table, column, block) and faulted in from a
// pluggable BlockProvider — the in-memory base table by default, a
// remote::RemoteStore adapter for cold tiers.
//
// One BufferManager serves every session of a SharedState, so concurrent
// sessions share one bounded memory footprint; per-object access goes
// through storage::PagedColumnSource handles this class hands out, which
// kernels and exec operators consume without knowing whether the bytes
// are cached copies or zero-copy views.
//
// Thread-safety: the binding registry is mutex-guarded; pins go to the
// sharded BlockCache. Handed-out sources must not outlive the manager
// (the SharedState owns both the manager and, transitively, the kernels
// holding sources).

#ifndef DBTOUCH_CACHE_BUFFER_MANAGER_H_
#define DBTOUCH_CACHE_BUFFER_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "cache/block_cache.h"
#include "cache/block_provider.h"
#include "cache/fetch_queue.h"
#include "common/result.h"
#include "storage/paged_column.h"
#include "storage/table.h"

namespace dbtouch::cache {

struct BufferManagerConfig {
  /// Byte budget for resident (retained) block payloads.
  std::int64_t budget_bytes = 64ll << 20;
  /// Rows per block. 16K rows of an 8-byte column = 128 KiB blocks.
  std::int64_t rows_per_block = 16'384;
  /// Gesture-aware scan-bypass admission (see BlockCache).
  bool gesture_aware = true;
  int scan_run_length = 8;
  /// BlockCache shards; the touch server raises this so workers pinning
  /// different blocks do not contend.
  int shards = 1;
  /// Async fetch pipeline for slow (async()) providers: misses probed via
  /// TryPinBlock go to a FetchQueue instead of blocking the pinning
  /// thread. Off = every fault fills synchronously under the shard lock
  /// (the pre-PR-3 behaviour, kept for A/B benchmarking).
  bool async_fetch = true;
  FetchQueueConfig fetch;
  /// Cap on unclaimed async completions (see BlockCache::Config).
  std::int64_t staged_cap_bytes = 0;
};

class BufferManager {
 public:
  explicit BufferManager(const BufferManagerConfig& config = {});
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// A paged source reading `table.column` through this pool, faulting
  /// from an (auto-created) TableBlockProvider. Binding is by table name +
  /// column and pinned to the table's identity: re-registering the name
  /// with new contents rebinds under a fresh block namespace, so stale
  /// cached blocks can never serve the new data. The provider (and its
  /// row-count snapshot) is shared by every source of the binding —
  /// registered tables are treated as frozen for exploration, like the
  /// sample hierarchies do.
  Result<std::shared_ptr<storage::PagedColumnSource>> ColumnSource(
      const std::shared_ptr<storage::Table>& table, std::size_t column);

  /// A paged source over an explicit provider registered under
  /// `name.column` — the remote cold-tier path and the test seam. Repeat
  /// calls with the same (name, column, provider) share cached blocks;
  /// a different provider rebinds.
  std::shared_ptr<storage::PagedColumnSource> SourceFor(
      const std::string& name, std::size_t column,
      std::shared_ptr<BlockProvider> provider);

  /// A paged source over schema column `column` of a PAX multi-column
  /// provider (provider->pax_layout() != nullptr). Every column of `name`
  /// binds to ONE shared owner and block namespace: a block pinned for
  /// any column is resident for all of them, so a fat-table tuple probe
  /// costs one fault instead of one per attribute. Sources of the same
  /// binding report one share_token(), which is how the kernel's stall
  /// dedup knows two attribute cursors wait on the same payload.
  Result<std::shared_ptr<storage::PagedColumnSource>> PaxSourceFor(
      const std::string& name, std::size_t column,
      std::shared_ptr<BlockProvider> provider);

  /// Gesture pause: interest in the current region, admission resumes.
  void OnGesturePause() { cache_.OnGesturePause(); }

  BlockCacheStats stats() const { return cache_.stats(); }
  std::int64_t resident_bytes() const { return cache_.resident_bytes(); }
  bool in_scan_mode() const { return cache_.in_scan_mode(); }
  const BufferManagerConfig& config() const { return config_; }

  bool async_enabled() const { return config_.async_fetch; }
  /// Stats of the async fetch pipeline (zeros when async_fetch is off or
  /// no async provider was ever bound).
  FetchQueueStats fetch_stats() const;
  /// Retries spent by synchronous (inline) fills — the blocking fallback
  /// path shares the queue's retry policy.
  std::int64_t sync_fetch_retries() const {
    return sync_retries_.load(std::memory_order_relaxed);
  }
  /// Ranged reads issued by the blocking Preload path (and the blocks
  /// they covered); the async queue's coalescing is counted in
  /// fetch_stats().ranged_reads.
  std::int64_t sync_ranged_reads() const {
    return sync_ranged_reads_.load(std::memory_order_relaxed);
  }
  std::int64_t sync_ranged_blocks() const {
    return sync_ranged_blocks_.load(std::memory_order_relaxed);
  }
  /// Smoothed per-block cold-fetch wall (us) from the async pipeline; 0
  /// until a fetch settles (or when async_fetch is off). Lock-free — the
  /// touch server reads it per quantum to extend refinement deadlines by
  /// *measured* tier latency.
  std::int64_t ewma_block_fetch_us() const {
    const FetchQueue* queue = fetch_queue();
    return queue == nullptr ? 0 : queue->ewma_block_fetch_us();
  }

  /// Claimed-before-eviction score of prefetch warm-ups: claims /
  /// (claims + staged evictions) over the cache's lifetime; 1.0 while no
  /// warm-up has been claimed or dropped yet (no evidence against the
  /// configured horizon).
  double prefetch_claim_rate() const {
    const BlockCacheStats s = cache_.stats();
    const std::int64_t total =
        s.prefetch_staged_claims + s.prefetch_staged_evictions;
    return total == 0 ? 1.0
                      : static_cast<double>(s.prefetch_staged_claims) /
                            static_cast<double>(total);
  }

  /// Retracts still-queued demand fetches enqueued under `tag` (the touch
  /// server's session id) — see FetchQueue::CancelTagged. Returns the
  /// number of queued fetches dropped.
  std::size_t CancelFetches(std::uint64_t tag);
  /// Blocks until no async fetch is queued or in flight (tests).
  void WaitForFetches();

  /// Wires span tracing into the async fetch pipeline (see
  /// FetchQueue::set_trace_recorder). The queue is created lazily on the
  /// first async binding, so the recorder is remembered and handed over
  /// whenever creation happens; safe before or after. Null = off.
  void SetTraceRecorder(obs::TraceRecorder* recorder);

 private:
  class Source;
  class PaxSource;

  struct Binding {
    const void* identity = nullptr;
    std::uint64_t owner = 0;
    std::shared_ptr<BlockProvider> provider;
  };

  /// The binding for (name, column): reused while `identity` (provider or
  /// table) is unchanged; rebound with a fresh owner id — and a provider
  /// from `make_provider` — when it changed.
  Binding BindOwner(
      const std::string& name, std::size_t column, const void* identity,
      const std::function<std::shared_ptr<BlockProvider>()>& make_provider);

  /// The fetch queue, created on the first binding of an async()
  /// provider — a manager serving only in-memory tables (every private
  /// kernel SharedState) never pays the fetcher threads. Non-null iff
  /// created; readers load the atomic, the owner keeps it alive.
  FetchQueue* fetch_queue() const {
    return fetch_queue_ptr_.load(std::memory_order_acquire);
  }
  /// Creates the queue once (caller holds mu_ or tolerates call_once).
  void EnsureFetchQueue();

  BufferManagerConfig config_;
  BlockCache cache_;
  /// Fetchers deliver into cache_, so they must stop first: declared after
  /// cache_ (destroyed before it), shut down explicitly in ~BufferManager.
  std::once_flag fetch_queue_once_;
  std::unique_ptr<FetchQueue> fetch_queue_;
  std::atomic<FetchQueue*> fetch_queue_ptr_{nullptr};
  /// Recorder to hand the queue at (lazy) creation; see SetTraceRecorder.
  std::atomic<obs::TraceRecorder*> trace_recorder_{nullptr};
  std::atomic<std::int64_t> sync_retries_{0};
  std::atomic<std::int64_t> sync_ranged_reads_{0};
  std::atomic<std::int64_t> sync_ranged_blocks_{0};
  mutable std::mutex mu_;
  std::map<std::pair<std::string, std::size_t>, Binding> bindings_;
  std::uint64_t next_owner_ = 1;
};

}  // namespace dbtouch::cache

#endif  // DBTOUCH_CACHE_BUFFER_MANAGER_H_
