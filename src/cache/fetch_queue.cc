#include "cache/fetch_queue.h"

#include <algorithm>
#include <chrono>

#include "common/macros.h"

namespace dbtouch::cache {

namespace {

std::int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

bool IsTransientFetchError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kAborted:             // Lost/short response.
    case StatusCode::kResourceExhausted:   // Backpressure.
    case StatusCode::kDeadlineExceeded:    // Timeout.
      return true;
    default:
      return false;
  }
}

namespace {

/// Shared retry loop of FetchBlockWithRetry / FetchRangeWithRetry.
template <typename Fetch>
Result<std::vector<std::byte>> RetryFetch(const Fetch& fetch,
                                          const FetchQueueConfig& config,
                                          std::int64_t* retries_out) {
  int attempt = 0;
  for (;;) {
    Result<std::vector<std::byte>> payload = fetch();
    if (payload.ok() || !IsTransientFetchError(payload.status()) ||
        attempt >= config.max_retries) {
      return payload;
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(config.retry_backoff_us << attempt));
    ++attempt;
    if (retries_out != nullptr) {
      ++*retries_out;
    }
  }
}

}  // namespace

Result<std::vector<std::byte>> FetchBlockWithRetry(
    BlockProvider& provider, std::int64_t block,
    const FetchQueueConfig& config, std::int64_t* retries_out) {
  return RetryFetch([&] { return provider.Fetch(block); }, config,
                    retries_out);
}

Result<std::vector<std::byte>> FetchRangeWithRetry(
    BlockProvider& provider, std::int64_t first_block, std::int64_t count,
    const FetchQueueConfig& config, std::int64_t* retries_out) {
  return RetryFetch([&] { return provider.ReadRange(first_block, count); },
                    config, retries_out);
}

FetchQueue::FetchQueue(const FetchQueueConfig& config, Sink sink)
    : config_(config), sink_(std::move(sink)) {
  DBTOUCH_CHECK(config_.num_fetchers > 0);
  DBTOUCH_CHECK(sink_ != nullptr);
  fetchers_.reserve(static_cast<std::size_t>(config_.num_fetchers));
  for (int i = 0; i < config_.num_fetchers; ++i) {
    fetchers_.emplace_back([this] { FetcherLoop(); });
  }
}

FetchQueue::~FetchQueue() { Shutdown(); }

bool FetchQueue::Enqueue(const BlockKey& key,
                         std::shared_ptr<BlockProvider> provider,
                         std::int64_t block, FetchPriority priority,
                         Completion done, std::uint64_t tag) {
  Completion reject;  // Invoked outside the lock if the enqueue is refused.
  bool created = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      reject = std::move(done);
    } else {
      auto [it, inserted] = requests_.try_emplace(key);
      created = inserted;
      Request& request = it->second;
      if (inserted) {
        request.provider = std::move(provider);
        request.block = block;
        request.priority = priority;
        if (priority == FetchPriority::kDemand) {
          ++stats_.demand_enqueued;
          demand_queue_.push_back(key);
        } else {
          ++stats_.prefetch_enqueued;
          prefetch_queue_.push_back(key);
        }
      } else {
        ++stats_.coalesced;
        if (priority == FetchPriority::kDemand &&
            request.priority == FetchPriority::kPrefetch) {
          // A session is now parked on a block that was only a warm-up:
          // raise the priority in place. Still queued → move it to the
          // demand lane; already in flight → the raised priority is what
          // the delivery reads (it is re-read after the fetch), so the
          // completion is staged with demand protection either way.
          request.priority = FetchPriority::kDemand;
          if (!request.in_flight) {
            std::erase(prefetch_queue_, key);
            demand_queue_.push_back(key);
            ++stats_.upgraded;
          }
        }
      }
      if (done != nullptr) {
        request.waiters.push_back(Waiter{std::move(done), tag});
      }
    }
  }
  if (reject != nullptr) {
    reject(Status::Aborted("fetch queue shut down"));
    return false;
  }
  work_cv_.notify_one();
  return created;
}

bool FetchQueue::PopLocked(BlockKey* key) {
  if (!demand_queue_.empty()) {
    *key = demand_queue_.front();
    demand_queue_.pop_front();
    return true;
  }
  if (!prefetch_queue_.empty()) {
    *key = prefetch_queue_.front();
    prefetch_queue_.pop_front();
    return true;
  }
  return false;
}

std::vector<BlockKey> FetchQueue::GatherRangeLocked(const BlockKey& key) {
  std::vector<BlockKey> keys{key};
  const auto head = requests_.find(key);
  DBTOUCH_CHECK(head != requests_.end());
  head->second.in_flight = true;
  if (config_.max_coalesce_blocks <= 1) {
    return keys;
  }
  const BlockProvider* provider = head->second.provider.get();
  const FetchPriority priority = head->second.priority;
  // Extend in both directions: a stall enqueues its band in ascending
  // order, but the fetcher may pop a middle block first when an earlier
  // one was already in flight. Only still-queued requests of the SAME
  // priority join — an in-flight neighbour is already being read (popping
  // it twice would double-deliver), and a warm-up must never ride a
  // demand range (it would inflate the read a session is parked on, and
  // demand pops must drain before prefetch work starts).
  const auto joinable = [&](std::int64_t block) -> bool {
    const auto it = requests_.find(BlockKey{key.owner, block});
    return it != requests_.end() && !it->second.in_flight &&
           it->second.priority == priority &&
           it->second.provider.get() == provider;
  };
  const auto take = [&](std::int64_t block) {
    const BlockKey neighbour{key.owner, block};
    Request& request = requests_.find(neighbour)->second;
    request.in_flight = true;
    std::erase(priority == FetchPriority::kDemand ? demand_queue_
                                                  : prefetch_queue_,
               neighbour);
    keys.push_back(neighbour);
  };
  std::int64_t lo = key.block;
  std::int64_t hi = key.block;
  while (static_cast<int>(keys.size()) < config_.max_coalesce_blocks) {
    if (joinable(hi + 1)) {
      take(++hi);
    } else if (joinable(lo - 1)) {
      take(--lo);
    } else {
      break;
    }
  }
  std::sort(keys.begin(), keys.end(),
            [](const BlockKey& a, const BlockKey& b) {
              return a.block < b.block;
            });
  return keys;
}

void FetchQueue::SettleFetch(std::unique_lock<std::mutex>& lock,
                             const std::vector<BlockKey>& keys,
                             Result<std::vector<std::byte>> payload,
                             std::int64_t retries, std::int64_t wall_us) {
  lock.lock();
  stats_.retries += retries;
  stats_.fetch_wall_us += wall_us;
  stats_.max_fetch_wall_us = std::max(stats_.max_fetch_wall_us, wall_us);
  const std::int64_t count = static_cast<std::int64_t>(keys.size());
  if (payload.ok()) {
    stats_.completed += count;
    stats_.bytes_fetched += static_cast<std::int64_t>(payload->size());
    if (count > 1) {
      ++stats_.ranged_reads;
      stats_.ranged_blocks += count;
    }
  } else {
    stats_.failures += count;
  }

  struct Delivery {
    BlockKey key;
    std::vector<std::byte> bytes;
    FetchPriority priority = FetchPriority::kPrefetch;
    std::vector<Waiter> waiters;
  };
  std::vector<Delivery> deliveries;
  deliveries.reserve(keys.size());
  std::size_t offset = 0;
  for (const BlockKey& key : keys) {
    const auto it = requests_.find(key);
    DBTOUCH_CHECK(it != requests_.end());
    Delivery delivery;
    delivery.key = key;
    // Read the priority only now: a demand enqueue that coalesced while
    // the fetch was in flight upgraded it, and the delivery must carry
    // that (the cache shelters demand-staged blocks from warm-up churn).
    delivery.priority = it->second.priority;
    delivery.waiters = std::move(it->second.waiters);
    if (payload.ok() && count == 1) {
      // Single fetch: the payload is the block, whatever its size (the
      // cache does not second-guess providers).
      delivery.bytes = *std::move(payload);
    } else if (payload.ok()) {
      // The range payload is the blocks' bytes back to back in block
      // order; geometry gives each block's slice. ReadRange's contract
      // (BlockRowCount * width bytes per block) is what makes the split
      // well-defined.
      const BlockGeometry& geometry = it->second.provider->geometry();
      const std::size_t bytes =
          static_cast<std::size_t>(geometry.BlockRowCount(key.block)) *
          geometry.width();
      DBTOUCH_CHECK(offset + bytes <= payload->size());
      delivery.bytes.assign(payload->begin() + offset,
                            payload->begin() + offset + bytes);
      offset += bytes;
    }
    requests_.erase(it);
    deliveries.push_back(std::move(delivery));
  }
  const Status status = payload.ok() ? Status::OK() : payload.status();
  ++active_callbacks_;  // Covers the sink too: WaitIdle implies
                        // delivered payloads are in the cache.
  lock.unlock();
  // Deliver every block before waking any waiter: a waiter that re-probes
  // its whole stall on the completion signal must hit all of it.
  if (status.ok()) {
    for (Delivery& delivery : deliveries) {
      sink_(delivery.key, std::move(delivery.bytes), delivery.priority);
    }
  }
  for (const Delivery& delivery : deliveries) {
    for (const Waiter& waiter : delivery.waiters) {
      waiter.done(status);
    }
  }
  lock.lock();
  --active_callbacks_;
  if (requests_.empty() && active_callbacks_ == 0) {
    idle_cv_.notify_all();
  }
}

void FetchQueue::FetcherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    BlockKey key;
    while (!shutdown_ && !PopLocked(&key)) {
      work_cv_.wait(lock);
    }
    if (shutdown_) {
      return;
    }
    // Gather queued adjacent requests into one ranged read (the popped
    // key rides alone when it has no queued neighbours). Demand pops
    // drain before any prefetch is even considered, so a demand fault
    // always preempts a coalesced prefetch range.
    const std::vector<BlockKey> keys = GatherRangeLocked(key);
    std::shared_ptr<BlockProvider> provider;
    {
      const auto it = requests_.find(key);
      DBTOUCH_CHECK(it != requests_.end());
      provider = it->second.provider;
      // The iterator must not outlive this scope: concurrent Enqueues
      // during the unlocked fetch below may rehash the map, invalidating
      // every iterator — the requests are re-found after relocking.
    }
    const std::int64_t first_block = keys.front().block;
    const std::int64_t count = static_cast<std::int64_t>(keys.size());

    lock.unlock();
    std::int64_t retries = 0;
    const std::int64_t t0 = NowUs();
    Result<std::vector<std::byte>> payload =
        count == 1
            ? FetchBlockWithRetry(*provider, first_block, config_, &retries)
            : FetchRangeWithRetry(*provider, first_block, count, config_,
                                  &retries);
    const std::int64_t wall = NowUs() - t0;
    SettleFetch(lock, keys, std::move(payload), retries, wall);
  }
}

std::size_t FetchQueue::CancelTagged(std::uint64_t tag) {
  std::vector<Waiter> cancelled;
  std::size_t dropped = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto it = requests_.begin(); it != requests_.end();) {
      Request& request = it->second;
      if (request.in_flight) {
        // Already being read: let it finish and settle normally (its
        // completions must fire to balance the caller's tickets).
        ++it;
        continue;
      }
      const std::size_t before = request.waiters.size();
      std::erase_if(request.waiters, [&](Waiter& waiter) {
        if (waiter.tag != tag) {
          return false;
        }
        cancelled.push_back(std::move(waiter));
        return true;
      });
      const bool retracted = request.waiters.size() < before;
      if (retracted && request.waiters.empty() &&
          request.priority == FetchPriority::kDemand) {
        // Nobody is left waiting on this demand read — fetching it would
        // only spend cold-tier bandwidth on a closed session. (Waiterless
        // prefetches stay: they are deliberate fire-and-forget warm-ups
        // of the shared pool.)
        std::erase(demand_queue_, it->first);
        it = requests_.erase(it);
        ++stats_.cancelled;
        ++dropped;
      } else {
        ++it;
      }
    }
    if (requests_.empty() && active_callbacks_ == 0) {
      idle_cv_.notify_all();
    }
  }
  for (const Waiter& waiter : cancelled) {
    waiter.done(Status::Aborted("fetch cancelled: session closed"));
  }
  return dropped;
}

std::size_t FetchQueue::outstanding() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return requests_.size();
}

void FetchQueue::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return shutdown_ || (requests_.empty() && active_callbacks_ == 0);
  });
}

void FetchQueue::Shutdown() {
  std::vector<Completion> orphans;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
    // Unstarted requests will never run: release their waiters and drop
    // them, so outstanding() converges to zero once in-flight fetches —
    // which complete on their fetcher before it exits — drain.
    for (auto it = requests_.begin(); it != requests_.end();) {
      if (!it->second.in_flight) {
        for (Waiter& waiter : it->second.waiters) {
          orphans.push_back(std::move(waiter.done));
        }
        it = requests_.erase(it);
      } else {
        ++it;
      }
    }
    demand_queue_.clear();
    prefetch_queue_.clear();
  }
  work_cv_.notify_all();
  idle_cv_.notify_all();
  for (const Completion& orphan : orphans) {
    orphan(Status::Aborted("fetch queue shut down"));
  }
  for (std::thread& fetcher : fetchers_) {
    fetcher.join();
  }
  fetchers_.clear();
}

FetchQueueStats FetchQueue::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace dbtouch::cache
