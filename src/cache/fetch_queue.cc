#include "cache/fetch_queue.h"

#include <algorithm>
#include <chrono>

#include "common/macros.h"
#include "obs/trace_recorder.h"

namespace dbtouch::cache {

namespace {

std::int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

bool IsTransientFetchError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kAborted:             // Lost/short response.
    case StatusCode::kResourceExhausted:   // Backpressure.
    case StatusCode::kDeadlineExceeded:    // Timeout.
      return true;
    default:
      return false;
  }
}

namespace {

/// Shared retry loop of FetchBlockWithRetry / FetchRangeWithRetry.
template <typename Fetch>
Result<std::vector<std::byte>> RetryFetch(const Fetch& fetch,
                                          const FetchQueueConfig& config,
                                          std::int64_t* retries_out,
                                          const std::atomic<bool>* abort) {
  int attempt = 0;
  for (;;) {
    Result<std::vector<std::byte>> payload = fetch();
    if (payload.ok() || !IsTransientFetchError(payload.status()) ||
        attempt >= config.max_retries) {
      return payload;
    }
    if (abort != nullptr && abort->load(std::memory_order_acquire)) {
      // Cancelled mid-flight: nobody is waiting for this read any more,
      // so return the attempt's outcome instead of burning the remaining
      // retry budget (and its backoff sleeps) on a dead session.
      return payload;
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(config.retry_backoff_us << attempt));
    ++attempt;
    if (retries_out != nullptr) {
      ++*retries_out;
    }
  }
}

}  // namespace

Result<std::vector<std::byte>> FetchBlockWithRetry(
    BlockProvider& provider, std::int64_t block,
    const FetchQueueConfig& config, std::int64_t* retries_out,
    const std::atomic<bool>* abort) {
  return RetryFetch([&] { return provider.Fetch(block); }, config,
                    retries_out, abort);
}

Result<std::vector<std::byte>> FetchRangeWithRetry(
    BlockProvider& provider, std::int64_t first_block, std::int64_t count,
    const FetchQueueConfig& config, std::int64_t* retries_out,
    const std::atomic<bool>* abort) {
  return RetryFetch([&] { return provider.ReadRange(first_block, count); },
                    config, retries_out, abort);
}

FetchQueue::FetchQueue(const FetchQueueConfig& config, Sink sink)
    : config_(config), sink_(std::move(sink)) {
  DBTOUCH_CHECK(config_.num_fetchers > 0);
  DBTOUCH_CHECK(sink_ != nullptr);
  fetchers_.reserve(static_cast<std::size_t>(config_.num_fetchers));
  for (int i = 0; i < config_.num_fetchers; ++i) {
    fetchers_.emplace_back([this] { FetcherLoop(); });
  }
}

FetchQueue::~FetchQueue() { Shutdown(); }

bool FetchQueue::Enqueue(const BlockKey& key,
                         std::shared_ptr<BlockProvider> provider,
                         std::int64_t block, FetchPriority priority,
                         Completion done, std::uint64_t tag) {
  Completion reject;  // Invoked outside the lock if the enqueue is refused.
  bool created = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      reject = std::move(done);
    } else {
      auto [it, inserted] = requests_.try_emplace(key);
      created = inserted;
      Request& request = it->second;
      if (inserted) {
        request.provider = std::move(provider);
        request.block = block;
        request.priority = priority;
        if (priority == FetchPriority::kDemand) {
          ++stats_.demand_enqueued;
          demand_queue_.push_back(key);
        } else {
          ++stats_.prefetch_enqueued;
          prefetch_queue_.push_back(key);
        }
      } else {
        ++stats_.coalesced;
        if (priority == FetchPriority::kDemand &&
            request.priority == FetchPriority::kPrefetch) {
          // A session is now parked on a block that was only a warm-up:
          // raise the priority in place. Still queued → move it to the
          // demand lane (carving it out of any pre-formed warm-up range
          // first, so the demand read stays block-sized and the range's
          // other blocks keep warming); already in flight → the raised
          // priority is what the delivery reads (it is re-read after the
          // fetch), so the completion is staged with demand protection
          // either way.
          if (!request.in_flight) {
            DetachFromRangeLocked(key);
            request.priority = FetchPriority::kDemand;
            std::erase(prefetch_queue_, key);
            demand_queue_.push_back(key);
            ++stats_.upgraded;
          } else {
            request.priority = FetchPriority::kDemand;
          }
        }
      }
      if (done != nullptr) {
        request.waiters.push_back(Waiter{std::move(done), tag});
      }
    }
  }
  if (reject != nullptr) {
    reject(Status::Aborted("fetch queue shut down"));
    return false;
  }
  work_cv_.notify_one();
  return created;
}

std::size_t FetchQueue::EnqueueRange(std::uint64_t owner,
                                     std::shared_ptr<BlockProvider> provider,
                                     std::int64_t first_block,
                                     std::int64_t count) {
  DBTOUCH_CHECK(provider != nullptr);
  std::size_t created = 0;
  std::size_t tickets = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ || count <= 0) {
      return 0;
    }
    // Each maximal run of blocks with no existing request becomes one
    // ticket; blocks with requests split the range (they are already on
    // their way however they got there).
    const auto commit = [&](std::int64_t start, std::int64_t end) {
      for (std::int64_t block = start; block < end; ++block) {
        auto [it, inserted] = requests_.try_emplace(BlockKey{owner, block});
        DBTOUCH_CHECK(inserted);
        Request& request = it->second;
        request.provider = provider;
        request.block = block;
        request.priority = FetchPriority::kPrefetch;
        if (block == start) {
          request.range_count = end - start;
        } else {
          request.range_member = true;
          request.head_block = start;
        }
        ++stats_.prefetch_enqueued;
      }
      if (end - start > 1) {
        ++stats_.prefetch_ranges;
      }
      prefetch_queue_.push_back(BlockKey{owner, start});
      created += static_cast<std::size_t>(end - start);
      ++tickets;
    };
    std::int64_t run_start = -1;
    for (std::int64_t block = first_block; block <= first_block + count;
         ++block) {
      const bool fresh = block < first_block + count &&
                         !requests_.contains(BlockKey{owner, block});
      if (fresh) {
        if (run_start < 0) {
          run_start = block;
        }
        continue;
      }
      if (block < first_block + count) {
        ++stats_.coalesced;  // Absorbed by whatever already covers it.
      }
      if (run_start >= 0) {
        commit(run_start, block);
        run_start = -1;
      }
    }
  }
  if (tickets > 1) {
    work_cv_.notify_all();
  } else if (tickets == 1) {
    work_cv_.notify_one();
  }
  return created;
}

void FetchQueue::DetachFromRangeLocked(const BlockKey& key) {
  Request& request = requests_.find(key)->second;
  std::int64_t head_block = 0;
  if (request.range_member) {
    head_block = request.head_block;
  } else if (request.range_count > 1) {
    head_block = request.block;
  } else {
    return;  // Ordinary request, nothing to carve.
  }
  Request& head = requests_.find(BlockKey{key.owner, head_block})->second;
  const std::int64_t end = head_block + head.range_count;  // One past.
  // Right remainder (key.block, end) re-heads and re-queues; the head's
  // lane position is unchanged for the left part.
  if (key.block + 1 < end) {
    const BlockKey new_head_key{key.owner, key.block + 1};
    Request& new_head = requests_.find(new_head_key)->second;
    new_head.range_member = false;
    new_head.range_count = end - (key.block + 1);
    for (std::int64_t block = key.block + 2; block < end; ++block) {
      requests_.find(BlockKey{key.owner, block})->second.head_block =
          new_head_key.block;
    }
    prefetch_queue_.push_back(new_head_key);
  }
  if (key.block == head_block) {
    // Carving the head: its lane entry now denotes just itself; the left
    // part is empty.
    head.range_count = 1;
  } else {
    head.range_count = key.block - head_block;
  }
  request.range_member = false;
  request.range_count = 1;
}

bool FetchQueue::PopLocked(BlockKey* key) {
  if (!demand_queue_.empty()) {
    *key = demand_queue_.front();
    demand_queue_.pop_front();
    return true;
  }
  if (!prefetch_queue_.empty()) {
    *key = prefetch_queue_.front();
    prefetch_queue_.pop_front();
    return true;
  }
  return false;
}

std::vector<BlockKey> FetchQueue::GatherRangeLocked(const BlockKey& key) {
  std::vector<BlockKey> keys{key};
  const auto head = requests_.find(key);
  DBTOUCH_CHECK(head != requests_.end());
  head->second.in_flight = true;
  if (head->second.range_count > 1) {
    // A pre-formed ranged ticket: the horizon sized it when it was
    // enqueued, so it is taken whole — no neighbour walk, no
    // max_coalesce_blocks cap, exactly one ReadRange.
    for (std::int64_t block = key.block + 1;
         block < key.block + head->second.range_count; ++block) {
      const BlockKey member{key.owner, block};
      requests_.find(member)->second.in_flight = true;
      keys.push_back(member);
    }
    return keys;
  }
  if (config_.max_coalesce_blocks <= 1) {
    return keys;
  }
  const BlockProvider* provider = head->second.provider.get();
  const FetchPriority priority = head->second.priority;
  // Extend in both directions: a stall enqueues its band in ascending
  // order, but the fetcher may pop a middle block first when an earlier
  // one was already in flight. Only still-queued requests of the SAME
  // priority join — an in-flight neighbour is already being read (popping
  // it twice would double-deliver), and a warm-up must never ride a
  // demand range (it would inflate the read a session is parked on, and
  // demand pops must drain before prefetch work starts).
  const auto joinable = [&](std::int64_t block) -> bool {
    const auto it = requests_.find(BlockKey{key.owner, block});
    // Blocks of a pre-formed ranged ticket never join a walk: their
    // ticket fetches them as its own unit (absorbing a member here would
    // double-deliver it when the ticket pops).
    return it != requests_.end() && !it->second.in_flight &&
           !it->second.range_member && it->second.range_count == 1 &&
           it->second.priority == priority &&
           it->second.provider.get() == provider;
  };
  const auto take = [&](std::int64_t block) {
    const BlockKey neighbour{key.owner, block};
    Request& request = requests_.find(neighbour)->second;
    request.in_flight = true;
    std::erase(priority == FetchPriority::kDemand ? demand_queue_
                                                  : prefetch_queue_,
               neighbour);
    keys.push_back(neighbour);
  };
  std::int64_t lo = key.block;
  std::int64_t hi = key.block;
  while (static_cast<int>(keys.size()) < config_.max_coalesce_blocks) {
    if (joinable(hi + 1)) {
      take(++hi);
    } else if (joinable(lo - 1)) {
      take(--lo);
    } else {
      break;
    }
  }
  std::sort(keys.begin(), keys.end(),
            [](const BlockKey& a, const BlockKey& b) {
              return a.block < b.block;
            });
  return keys;
}

void FetchQueue::SettleFetch(std::unique_lock<std::mutex>& lock,
                             const std::vector<BlockKey>& keys,
                             Result<std::vector<std::byte>> payload,
                             std::int64_t retries, std::int64_t wall_us) {
  lock.lock();
  stats_.retries += retries;
  stats_.fetch_wall_us += wall_us;
  stats_.max_fetch_wall_us = std::max(stats_.max_fetch_wall_us, wall_us);
  const std::int64_t count = static_cast<std::int64_t>(keys.size());
  if (payload.ok()) {
    stats_.completed += count;
    stats_.bytes_fetched += static_cast<std::int64_t>(payload->size());
    if (count > 1) {
      ++stats_.ranged_reads;
      stats_.ranged_blocks += count;
    }
    // Fold this fetch into the per-block latency EWMA (a ranged read
    // amortises its wall over the blocks it covered). Successful fetches
    // only: a failure's wall measures the retry/backoff policy, not the
    // tier.
    const std::int64_t per_block = wall_us / std::max<std::int64_t>(count, 1);
    const std::int64_t prev = stats_.ewma_block_fetch_us;
    stats_.ewma_block_fetch_us =
        prev == 0 ? per_block : (prev * 4 + per_block) / 5;
    ewma_block_us_.store(stats_.ewma_block_fetch_us,
                         std::memory_order_relaxed);
  } else {
    stats_.failures += count;
  }

  struct Delivery {
    BlockKey key;
    std::vector<std::byte> bytes;
    FetchPriority priority = FetchPriority::kPrefetch;
    std::vector<Waiter> waiters;
  };
  std::vector<Delivery> deliveries;
  deliveries.reserve(keys.size());
  std::size_t offset = 0;
  for (const BlockKey& key : keys) {
    const auto it = requests_.find(key);
    DBTOUCH_CHECK(it != requests_.end());
    Delivery delivery;
    delivery.key = key;
    // Read the priority only now: a demand enqueue that coalesced while
    // the fetch was in flight upgraded it, and the delivery must carry
    // that (the cache shelters demand-staged blocks from warm-up churn).
    delivery.priority = it->second.priority;
    delivery.waiters = std::move(it->second.waiters);
    if (payload.ok() && count == 1) {
      // Single fetch: the payload is the block, whatever its size (the
      // cache does not second-guess providers).
      delivery.bytes = *std::move(payload);
    } else if (payload.ok()) {
      // The range payload is the blocks' bytes back to back in block
      // order; geometry gives each block's slice. ReadRange's contract
      // (BlockRowCount * width bytes per block) is what makes the split
      // well-defined.
      const BlockGeometry& geometry = it->second.provider->geometry();
      const std::size_t bytes =
          static_cast<std::size_t>(geometry.BlockRowCount(key.block)) *
          geometry.width();
      DBTOUCH_CHECK(offset + bytes <= payload->size());
      delivery.bytes.assign(payload->begin() + offset,
                            payload->begin() + offset + bytes);
      offset += bytes;
    }
    requests_.erase(it);
    deliveries.push_back(std::move(delivery));
  }
  const Status status = payload.ok() ? Status::OK() : payload.status();
  ++active_callbacks_;  // Covers the sink too: WaitIdle implies
                        // delivered payloads are in the cache.
  lock.unlock();
  // Deliver every block before waking any waiter: a waiter that re-probes
  // its whole stall on the completion signal must hit all of it.
  if (status.ok()) {
    for (Delivery& delivery : deliveries) {
      sink_(delivery.key, std::move(delivery.bytes), delivery.priority);
    }
  }
  for (const Delivery& delivery : deliveries) {
    for (const Waiter& waiter : delivery.waiters) {
      waiter.done(status);
    }
  }
  lock.lock();
  --active_callbacks_;
  if (requests_.empty() && active_callbacks_ == 0) {
    idle_cv_.notify_all();
  }
}

void FetchQueue::FetcherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    BlockKey key;
    while (!shutdown_ && !PopLocked(&key)) {
      work_cv_.wait(lock);
    }
    if (shutdown_) {
      return;
    }
    // Gather queued adjacent requests into one ranged read (the popped
    // key rides alone when it has no queued neighbours). Demand pops
    // drain before any prefetch is even considered, so a demand fault
    // always preempts a coalesced prefetch range.
    const std::vector<BlockKey> keys = GatherRangeLocked(key);
    std::shared_ptr<BlockProvider> provider;
    // One cancellation latch covers the whole fetch: CancelTagged flips
    // it when every covered request has lost its last waiter.
    auto abort = std::make_shared<std::atomic<bool>>(false);
    for (const BlockKey& k : keys) {
      const auto it = requests_.find(k);
      DBTOUCH_CHECK(it != requests_.end());
      it->second.abort = abort;
      provider = it->second.provider;
      // Iterators must not outlive this scope: concurrent Enqueues
      // during the unlocked fetch below may rehash the map, invalidating
      // every iterator — the requests are re-found after relocking.
    }
    const std::int64_t first_block = keys.front().block;
    const std::int64_t count = static_cast<std::int64_t>(keys.size());

    lock.unlock();
    obs::TraceRecorder* trace = trace_.load(std::memory_order_acquire);
    const std::int64_t trace_owner =
        static_cast<std::int64_t>(keys.front().owner);
    if (trace != nullptr) {
      trace->Record(obs::SpanStage::kFetchStarted, 0, trace_owner,
                    first_block, count);
    }
    std::int64_t retries = 0;
    const std::int64_t t0 = NowUs();
    Result<std::vector<std::byte>> payload =
        count == 1 ? FetchBlockWithRetry(*provider, first_block, config_,
                                         &retries, abort.get())
                   : FetchRangeWithRetry(*provider, first_block, count,
                                         config_, &retries, abort.get());
    const std::int64_t wall = NowUs() - t0;
    if (trace != nullptr) {
      trace->Record(obs::SpanStage::kFetchDone, 0, trace_owner,
                    payload.ok() ? 1 : 0, wall);
    }
    SettleFetch(lock, keys, std::move(payload), retries, wall);
  }
}

std::size_t FetchQueue::CancelTagged(std::uint64_t tag) {
  std::vector<Waiter> cancelled;
  std::size_t dropped = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    // In-flight fetches that may deserve an abort: decided after the
    // retraction pass, once every request's surviving waiters are known.
    std::vector<std::shared_ptr<std::atomic<bool>>> candidates;
    for (auto it = requests_.begin(); it != requests_.end();) {
      Request& request = it->second;
      const std::size_t before = request.waiters.size();
      std::erase_if(request.waiters, [&](Waiter& waiter) {
        if (waiter.tag != tag) {
          return false;
        }
        cancelled.push_back(std::move(waiter));
        return true;
      });
      const bool retracted = request.waiters.size() < before;
      if (request.in_flight) {
        // Already being read: the fetch finishes its current attempt and
        // settles (deliveries balance; the retracted waiters were failed
        // here instead). If this retraction left the request — a demand
        // read nobody else shares — waiterless, its fetch is an abort
        // candidate: no further retries for a closed session.
        if (retracted && request.waiters.empty() &&
            request.priority == FetchPriority::kDemand &&
            request.abort != nullptr) {
          candidates.push_back(request.abort);
        }
        ++it;
        continue;
      }
      if (retracted && request.waiters.empty() &&
          request.priority == FetchPriority::kDemand) {
        // Nobody is left waiting on this demand read — fetching it would
        // only spend cold-tier bandwidth on a closed session. (Waiterless
        // prefetches stay: they are deliberate fire-and-forget warm-ups
        // of the shared pool.)
        std::erase(demand_queue_, it->first);
        it = requests_.erase(it);
        ++stats_.cancelled;
        ++dropped;
      } else {
        ++it;
      }
    }
    // Abort only fetches no request of which still has a waiter or is a
    // shared warm-up: a ranged read another session is parked on — or
    // that warms the pool — runs its full retry budget as before.
    for (const auto& abort : candidates) {
      bool still_wanted = false;
      for (const auto& [k, request] : requests_) {
        if (request.abort == abort &&
            (!request.waiters.empty() ||
             request.priority == FetchPriority::kPrefetch)) {
          still_wanted = true;
          break;
        }
      }
      if (!still_wanted &&
          !abort->exchange(true, std::memory_order_acq_rel)) {
        ++stats_.aborted;
      }
    }
    if (requests_.empty() && active_callbacks_ == 0) {
      idle_cv_.notify_all();
    }
  }
  for (const Waiter& waiter : cancelled) {
    waiter.done(Status::Aborted("fetch cancelled: session closed"));
  }
  return dropped;
}

std::size_t FetchQueue::outstanding() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return requests_.size();
}

void FetchQueue::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return shutdown_ || (requests_.empty() && active_callbacks_ == 0);
  });
}

void FetchQueue::Shutdown() {
  std::vector<Completion> orphans;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
    // Unstarted requests will never run: release their waiters and drop
    // them, so outstanding() converges to zero once in-flight fetches —
    // which complete on their fetcher before it exits — drain.
    for (auto it = requests_.begin(); it != requests_.end();) {
      if (!it->second.in_flight) {
        for (Waiter& waiter : it->second.waiters) {
          orphans.push_back(std::move(waiter.done));
        }
        it = requests_.erase(it);
      } else {
        ++it;
      }
    }
    demand_queue_.clear();
    prefetch_queue_.clear();
  }
  work_cv_.notify_all();
  idle_cv_.notify_all();
  for (const Completion& orphan : orphans) {
    orphan(Status::Aborted("fetch queue shut down"));
  }
  for (std::thread& fetcher : fetchers_) {
    fetcher.join();
  }
  fetchers_.clear();
}

FetchQueueStats FetchQueue::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace dbtouch::cache
