#include "cache/fetch_queue.h"

#include <algorithm>
#include <chrono>

#include "common/macros.h"

namespace dbtouch::cache {

namespace {

std::int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

bool IsTransientFetchError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kAborted:             // Lost/short response.
    case StatusCode::kResourceExhausted:   // Backpressure.
    case StatusCode::kDeadlineExceeded:    // Timeout.
      return true;
    default:
      return false;
  }
}

Result<std::vector<std::byte>> FetchBlockWithRetry(
    BlockProvider& provider, std::int64_t block,
    const FetchQueueConfig& config, std::int64_t* retries_out) {
  int attempt = 0;
  for (;;) {
    Result<std::vector<std::byte>> payload = provider.Fetch(block);
    if (payload.ok() || !IsTransientFetchError(payload.status()) ||
        attempt >= config.max_retries) {
      return payload;
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(config.retry_backoff_us << attempt));
    ++attempt;
    if (retries_out != nullptr) {
      ++*retries_out;
    }
  }
}

FetchQueue::FetchQueue(const FetchQueueConfig& config, Sink sink)
    : config_(config), sink_(std::move(sink)) {
  DBTOUCH_CHECK(config_.num_fetchers > 0);
  DBTOUCH_CHECK(sink_ != nullptr);
  fetchers_.reserve(static_cast<std::size_t>(config_.num_fetchers));
  for (int i = 0; i < config_.num_fetchers; ++i) {
    fetchers_.emplace_back([this] { FetcherLoop(); });
  }
}

FetchQueue::~FetchQueue() { Shutdown(); }

bool FetchQueue::Enqueue(const BlockKey& key,
                         std::shared_ptr<BlockProvider> provider,
                         std::int64_t block, FetchPriority priority,
                         Completion done) {
  Completion reject;  // Invoked outside the lock if the enqueue is refused.
  bool created = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      reject = std::move(done);
    } else {
      auto [it, inserted] = requests_.try_emplace(key);
      created = inserted;
      Request& request = it->second;
      if (inserted) {
        request.provider = std::move(provider);
        request.block = block;
        request.priority = priority;
        if (priority == FetchPriority::kDemand) {
          ++stats_.demand_enqueued;
          demand_queue_.push_back(key);
        } else {
          ++stats_.prefetch_enqueued;
          prefetch_queue_.push_back(key);
        }
      } else {
        ++stats_.coalesced;
        if (priority == FetchPriority::kDemand &&
            request.priority == FetchPriority::kPrefetch) {
          // A session is now parked on a block that was only a warm-up:
          // raise the priority in place. Still queued → move it to the
          // demand lane; already in flight → the raised priority is what
          // the delivery reads (it is re-read after the fetch), so the
          // completion is staged with demand protection either way.
          request.priority = FetchPriority::kDemand;
          if (!request.in_flight) {
            std::erase(prefetch_queue_, key);
            demand_queue_.push_back(key);
            ++stats_.upgraded;
          }
        }
      }
      if (done != nullptr) {
        request.waiters.push_back(std::move(done));
      }
    }
  }
  if (reject != nullptr) {
    reject(Status::Aborted("fetch queue shut down"));
    return false;
  }
  work_cv_.notify_one();
  return created;
}

bool FetchQueue::PopLocked(BlockKey* key) {
  if (!demand_queue_.empty()) {
    *key = demand_queue_.front();
    demand_queue_.pop_front();
    return true;
  }
  if (!prefetch_queue_.empty()) {
    *key = prefetch_queue_.front();
    prefetch_queue_.pop_front();
    return true;
  }
  return false;
}

void FetchQueue::FetcherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    BlockKey key;
    while (!shutdown_ && !PopLocked(&key)) {
      work_cv_.wait(lock);
    }
    if (shutdown_) {
      return;
    }
    std::shared_ptr<BlockProvider> provider;
    std::int64_t block = 0;
    {
      const auto it = requests_.find(key);
      DBTOUCH_CHECK(it != requests_.end());
      it->second.in_flight = true;
      provider = it->second.provider;
      block = it->second.block;
      // The iterator must not outlive this scope: concurrent Enqueues
      // during the unlocked fetch below may rehash the map, invalidating
      // every iterator — the request is re-found after relocking.
    }

    lock.unlock();
    std::int64_t retries = 0;
    const std::int64_t t0 = NowUs();
    Result<std::vector<std::byte>> payload =
        FetchBlockWithRetry(*provider, block, config_, &retries);
    const std::int64_t wall = NowUs() - t0;
    lock.lock();

    stats_.retries += retries;
    stats_.fetch_wall_us += wall;
    stats_.max_fetch_wall_us = std::max(stats_.max_fetch_wall_us, wall);
    if (payload.ok()) {
      ++stats_.completed;
    } else {
      ++stats_.failures;
    }
    const auto it = requests_.find(key);
    DBTOUCH_CHECK(it != requests_.end());
    // Read the priority only now: a demand enqueue that coalesced while
    // the fetch was in flight upgraded it, and the delivery must carry
    // that (the cache shelters demand-staged blocks from warm-up churn).
    const FetchPriority priority = it->second.priority;
    std::vector<Completion> waiters = std::move(it->second.waiters);
    requests_.erase(it);
    const Status status = payload.ok() ? Status::OK() : payload.status();
    ++active_callbacks_;  // Covers the sink too: WaitIdle implies
                          // delivered payloads are in the cache.
    lock.unlock();
    if (payload.ok()) {
      // Deliver before waking waiters: a waiter that re-probes its pin on
      // the completion signal must hit.
      sink_(key, *std::move(payload), priority);
    }
    for (const Completion& waiter : waiters) {
      waiter(status);
    }
    lock.lock();
    --active_callbacks_;
    if (requests_.empty() && active_callbacks_ == 0) {
      idle_cv_.notify_all();
    }
  }
}

std::size_t FetchQueue::outstanding() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return requests_.size();
}

void FetchQueue::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return shutdown_ || (requests_.empty() && active_callbacks_ == 0);
  });
}

void FetchQueue::Shutdown() {
  std::vector<Completion> orphans;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
    // Unstarted requests will never run: release their waiters and drop
    // them, so outstanding() converges to zero once in-flight fetches —
    // which complete on their fetcher before it exits — drain.
    for (auto it = requests_.begin(); it != requests_.end();) {
      if (!it->second.in_flight) {
        for (Completion& waiter : it->second.waiters) {
          orphans.push_back(std::move(waiter));
        }
        it = requests_.erase(it);
      } else {
        ++it;
      }
    }
    demand_queue_.clear();
    prefetch_queue_.clear();
  }
  work_cv_.notify_all();
  idle_cv_.notify_all();
  for (const Completion& orphan : orphans) {
    orphan(Status::Aborted("fetch queue shut down"));
  }
  for (std::thread& fetcher : fetchers_) {
    fetcher.join();
  }
  fetchers_.clear();
}

FetchQueueStats FetchQueue::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace dbtouch::cache
