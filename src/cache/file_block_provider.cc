#include "cache/file_block_provider.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/macros.h"

namespace dbtouch::cache {

namespace {

Status ErrnoStatus(const std::string& op, const std::string& path, int err) {
  const std::string msg =
      op + " '" + path + "': " + std::strerror(err);
  switch (err) {
    // Transient: the next attempt may succeed (signal, backpressure).
    case EAGAIN:
    case EINTR:
      return Status::ResourceExhausted(msg);
    case ENOENT:
      return Status::NotFound(msg);
    default:
      // EACCES, EBADF, EIO, ...: permanent for the fetch path — shed the
      // stalled gesture instead of spinning retries against a dead file.
      return Status::Internal(msg);
  }
}

/// Full-coverage pread: loops over short kernel reads and EINTR. Returns
/// bytes actually read (< size only at EOF).
Result<std::int64_t> PreadFully(int fd, std::byte* dst, std::int64_t size,
                                std::int64_t offset,
                                const std::string& path) {
  std::int64_t done = 0;
  while (done < size) {
    const ssize_t n = ::pread(fd, dst + done,
                              static_cast<std::size_t>(size - done),
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("pread", path, errno);
    }
    if (n == 0) {
      break;  // EOF: the file is shorter than the extent table claims.
    }
    done += n;
  }
  return done;
}

/// Full-coverage pwrite: loops over short writes and EINTR.
Status PwriteFully(int fd, const std::byte* src, std::int64_t size,
                   std::int64_t offset, const std::string& path) {
  std::int64_t done = 0;
  while (done < size) {
    const ssize_t n = ::pwrite(fd, src + done,
                               static_cast<std::size_t>(size - done),
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("pwrite", path, errno);
    }
    done += n;
  }
  return Status::OK();
}

/// Opens `path` for writing, trying O_DIRECT first when requested.
/// Filesystems without O_DIRECT support (tmpfs) fail the open with
/// EINVAL; fall back to buffered and report which engaged.
int OpenForWrite(const std::string& path, bool want_direct,
                 bool* direct_active) {
  *direct_active = false;
#ifdef O_DIRECT
  if (want_direct) {
    const int fd =
        ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_DIRECT, 0644);
    if (fd >= 0) {
      *direct_active = true;
      return fd;
    }
  }
#else
  (void)want_direct;
#endif
  return ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
}

}  // namespace

// ---- BlockFileWriter --------------------------------------------------------

BlockFileWriter::BlockFileWriter(std::string path,
                                 const BlockGeometry& geometry,
                                 BlockFileWriterOptions options)
    : path_(std::move(path)),
      geometry_(geometry),
      options_(std::move(options)) {
  DBTOUCH_CHECK(geometry_.rows_per_block > 0);
  if (options_.use_direct) {
    options_.aligned_extents = true;  // O_DIRECT needs aligned offsets.
  }
  if (!options_.pax_columns.empty()) {
    // The geometry must agree with the layout the columns imply — the
    // reader reconstructs minipage offsets from the column directory
    // alone.
    const storage::PaxLayout layout(options_.pax_columns);
    DBTOUCH_CHECK(geometry_.width() == layout.row_bytes());
  }
  fd_ = OpenForWrite(path_, options_.use_direct, &direct_active_);
  if (fd_ < 0) {
    open_status_ = ErrnoStatus("open", path_, errno);
    return;
  }
  // Header + extent table + column directory are sealed by Finish, so a
  // crashed spill leaves an invalid (zero-magic) file, never a
  // half-readable one. Payload writes are positioned (pwrite), so nothing
  // needs pre-extending.
  std::int64_t payload_offset =
      static_cast<std::int64_t>(sizeof(BlockFileHeader)) +
      geometry_.num_blocks() *
          static_cast<std::int64_t>(sizeof(BlockExtent)) +
      static_cast<std::int64_t>(options_.pax_columns.size() *
                                sizeof(std::uint32_t));
  if (options_.aligned_extents) {
    payload_offset = AlignUpDirect(payload_offset);
  }
  bytes_written_ = payload_offset;
  extents_.reserve(static_cast<std::size_t>(geometry_.num_blocks()));
}

BlockFileWriter::~BlockFileWriter() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
  std::free(staging_);
}

Status BlockFileWriter::Append(const std::byte* data, std::size_t size) {
  DBTOUCH_RETURN_IF_ERROR(open_status_);
  if (finished_) {
    return Status::FailedPrecondition("block file already finished");
  }
  if (next_block_ >= geometry_.num_blocks()) {
    return Status::OutOfRange("append past the last block of '" + path_ +
                              "'");
  }
  const std::int64_t expected =
      geometry_.BlockRowCount(next_block_) *
      static_cast<std::int64_t>(geometry_.width());
  if (static_cast<std::int64_t>(size) != expected) {
    return Status::InvalidArgument(
        "block " + std::to_string(next_block_) + " of '" + path_ +
        "' is " + std::to_string(size) + " bytes, expected " +
        std::to_string(expected));
  }
  if (options_.aligned_extents) {
    bytes_written_ = AlignUpDirect(bytes_written_);
  }
  const std::int64_t offset = bytes_written_;
  if (direct_active_) {
    // O_DIRECT writes need aligned buffer, offset and length: stage the
    // payload in an aligned buffer with a zero tail. The padding lands in
    // the inter-extent gap the aligned layout reserves anyway.
    const std::size_t padded =
        static_cast<std::size_t>(AlignUpDirect(
            static_cast<std::int64_t>(size)));
    if (staging_capacity_ < padded) {
      std::free(staging_);
      void* mem = nullptr;
      if (posix_memalign(&mem, static_cast<std::size_t>(kDirectIoAlignment),
                         padded) != 0) {
        staging_ = nullptr;
        staging_capacity_ = 0;
        return Status::ResourceExhausted("aligned staging allocation of " +
                                         std::to_string(padded) +
                                         " bytes failed");
      }
      staging_ = static_cast<std::byte*>(mem);
      staging_capacity_ = padded;
    }
    std::memcpy(staging_, data, size);
    std::memset(staging_ + size, 0, padded - size);
    DBTOUCH_RETURN_IF_ERROR(PwriteFully(
        fd_, staging_, static_cast<std::int64_t>(padded), offset, path_));
  } else {
    DBTOUCH_RETURN_IF_ERROR(PwriteFully(
        fd_, data, static_cast<std::int64_t>(size), offset, path_));
  }
  extents_.push_back(BlockExtent{offset, static_cast<std::int64_t>(size)});
  bytes_written_ = offset + static_cast<std::int64_t>(size);
  ++next_block_;
  return Status::OK();
}

Status BlockFileWriter::Finish() {
  DBTOUCH_RETURN_IF_ERROR(open_status_);
  if (finished_) {
    return Status::FailedPrecondition("block file already finished");
  }
  if (next_block_ != geometry_.num_blocks()) {
    return Status::FailedPrecondition(
        "finish after " + std::to_string(next_block_) + " of " +
        std::to_string(geometry_.num_blocks()) + " blocks of '" + path_ +
        "'");
  }
  const std::int64_t extent_bytes =
      geometry_.num_blocks() * static_cast<std::int64_t>(sizeof(BlockExtent));
  const std::int64_t dir_bytes = static_cast<std::int64_t>(
      options_.pax_columns.size() * sizeof(std::uint32_t));
  BlockFileHeader header;
  header.type = static_cast<std::uint32_t>(geometry_.type);
  header.width = static_cast<std::uint32_t>(geometry_.width());
  header.row_count = geometry_.row_count;
  header.rows_per_block = geometry_.rows_per_block;
  header.num_blocks = geometry_.num_blocks();
  header.payload_offset =
      static_cast<std::int64_t>(sizeof(BlockFileHeader)) + extent_bytes +
      dir_bytes;
  if (options_.aligned_extents) {
    header.payload_offset = AlignUpDirect(header.payload_offset);
    header.flags |= BlockFileHeader::kFlagAlignedExtents;
  }
  if (!options_.pax_columns.empty()) {
    header.flags |= BlockFileHeader::kFlagPax;
    header.num_columns =
        static_cast<std::uint32_t>(options_.pax_columns.size());
  }
  // Metadata writes are small and unaligned; under O_DIRECT they go
  // through a second, buffered descriptor to the same file.
  int meta_fd = fd_;
  int plain_fd = -1;
  if (direct_active_) {
    plain_fd = ::open(path_.c_str(), O_WRONLY);
    if (plain_fd < 0) {
      return ErrnoStatus("open (metadata)", path_, errno);
    }
    meta_fd = plain_fd;
  }
  const auto finish_meta = [&]() -> Status {
    DBTOUCH_RETURN_IF_ERROR(PwriteFully(
        meta_fd, reinterpret_cast<const std::byte*>(extents_.data()),
        extent_bytes, static_cast<std::int64_t>(sizeof(BlockFileHeader)),
        path_));
    if (dir_bytes > 0) {
      std::vector<std::uint32_t> dir;
      dir.reserve(options_.pax_columns.size());
      for (const storage::DataType type : options_.pax_columns) {
        dir.push_back(static_cast<std::uint32_t>(type));
      }
      DBTOUCH_RETURN_IF_ERROR(PwriteFully(
          meta_fd, reinterpret_cast<const std::byte*>(dir.data()), dir_bytes,
          static_cast<std::int64_t>(sizeof(BlockFileHeader)) + extent_bytes,
          path_));
    }
    // The header goes last: its magic is the commit record.
    return PwriteFully(meta_fd,
                       reinterpret_cast<const std::byte*>(&header),
                       sizeof(header), 0, path_);
  };
  const Status meta = finish_meta();
  if (plain_fd >= 0) {
    ::close(plain_fd);
  }
  DBTOUCH_RETURN_IF_ERROR(meta);
  if (::close(fd_) != 0) {
    fd_ = -1;
    return ErrnoStatus("close", path_, errno);
  }
  fd_ = -1;
  finished_ = true;
  return Status::OK();
}

// ---- AlignedBufferPool ------------------------------------------------------

AlignedBufferPool::~AlignedBufferPool() {
  for (Buffer& buffer : free_) {
    std::free(buffer.data);
  }
}

AlignedBufferPool::Buffer AlignedBufferPool::Acquire(std::size_t bytes) {
  const std::size_t capacity = static_cast<std::size_t>(
      AlignUpDirect(static_cast<std::int64_t>(bytes)));
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].capacity >= capacity) {
        const Buffer buffer = free_[i];
        free_[i] = free_.back();
        free_.pop_back();
        return buffer;
      }
    }
  }
  void* mem = nullptr;
  DBTOUCH_CHECK(posix_memalign(&mem,
                               static_cast<std::size_t>(kDirectIoAlignment),
                               capacity) == 0);
  return Buffer{static_cast<std::byte*>(mem), capacity};
}

void AlignedBufferPool::Release(Buffer buffer) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (free_.size() < kMaxPooled) {
      free_.push_back(buffer);
      return;
    }
  }
  std::free(buffer.data);
}

// ---- FileFaultInjector ------------------------------------------------------

void FileFaultInjector::FailNextReads(int n, Fault fault) {
  const std::lock_guard<std::mutex> lock(mu_);
  fail_next_ = n;
  next_fault_ = fault;
}

void FileFaultInjector::set_fail_every(int n, Fault fault) {
  const std::lock_guard<std::mutex> lock(mu_);
  fail_every_ = n;
  every_fault_ = fault;
}

FileFaultInjector::Fault FileFaultInjector::Next() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++reads_;
  Fault fault = Fault::kNone;
  if (fail_next_ > 0) {
    --fail_next_;
    fault = next_fault_;
  } else if (fail_every_ > 0 && reads_ % fail_every_ == 0) {
    fault = every_fault_;
  }
  if (fault != Fault::kNone) {
    injected_.fetch_add(1, std::memory_order_relaxed);
  }
  return fault;
}

// ---- FileBlockProvider ------------------------------------------------------

Result<std::shared_ptr<FileBlockProvider>> FileBlockProvider::Open(
    const std::string& path, const FileProviderOptions& options,
    std::shared_ptr<storage::Dictionary> dictionary,
    std::vector<std::shared_ptr<storage::Dictionary>> pax_dictionaries) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return ErrnoStatus("open", path, errno);
  }
  // From here every early return must close fd (no RAII wrapper needed
  // for this one linear function).
  const auto fail = [&](Status status) -> Result<
                        std::shared_ptr<FileBlockProvider>> {
    ::close(fd);
    return status;
  };

  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    return fail(ErrnoStatus("fstat", path, errno));
  }
  BlockFileHeader header;
  if (st.st_size < static_cast<off_t>(sizeof(header))) {
    return fail(Status::InvalidArgument("'" + path +
                                        "' is too small for a block file "
                                        "header"));
  }
  const Result<std::int64_t> header_read =
      PreadFully(fd, reinterpret_cast<std::byte*>(&header), sizeof(header),
                 0, path);
  if (!header_read.ok()) {
    return fail(header_read.status());
  }
  if (*header_read != sizeof(header) ||
      std::memcmp(header.magic, BlockFileHeader::kMagic, 4) != 0) {
    return fail(Status::InvalidArgument("'" + path +
                                        "' is not a dbTouch block file "
                                        "(bad magic)"));
  }
  if (header.version != BlockFileHeader::kVersion) {
    return fail(Status::InvalidArgument(
        "'" + path + "' has block-file version " +
        std::to_string(header.version) + ", expected " +
        std::to_string(BlockFileHeader::kVersion)));
  }
  constexpr std::uint32_t kKnownFlags =
      BlockFileHeader::kFlagPax | BlockFileHeader::kFlagAlignedExtents;
  if ((header.flags & ~kKnownFlags) != 0) {
    return fail(Status::InvalidArgument(
        "'" + path + "' carries unknown block-file flags " +
        std::to_string(header.flags)));
  }
  const bool is_pax = (header.flags & BlockFileHeader::kFlagPax) != 0;
  const bool aligned =
      (header.flags & BlockFileHeader::kFlagAlignedExtents) != 0;
  if (header.rows_per_block <= 0 || header.row_count < 0 ||
      (is_pax ? header.num_columns == 0 : header.num_columns != 0)) {
    return fail(Status::InvalidArgument("'" + path +
                                        "' has an inconsistent header"));
  }
  const std::int64_t extent_bytes =
      header.num_blocks * static_cast<std::int64_t>(sizeof(BlockExtent));
  const std::int64_t dir_bytes = static_cast<std::int64_t>(
      header.num_columns * sizeof(std::uint32_t));

  BlockGeometry geometry;
  geometry.type = static_cast<storage::DataType>(header.type);
  geometry.row_count = header.row_count;
  geometry.rows_per_block = header.rows_per_block;

  // PAX files: the column directory (after the extent table) is the
  // source of truth for the row layout; it must reproduce the header's
  // row width, and its first column the header's type.
  std::optional<storage::PaxLayout> pax_layout;
  if (is_pax) {
    std::vector<std::uint32_t> dir(header.num_columns);
    const Result<std::int64_t> dir_read = PreadFully(
        fd, reinterpret_cast<std::byte*>(dir.data()), dir_bytes,
        static_cast<std::int64_t>(sizeof(BlockFileHeader)) + extent_bytes,
        path);
    if (!dir_read.ok()) {
      return fail(dir_read.status());
    }
    if (*dir_read != dir_bytes) {
      return fail(Status::InvalidArgument("'" + path +
                                          "' column directory is "
                                          "truncated"));
    }
    std::vector<storage::DataType> types;
    types.reserve(dir.size());
    for (const std::uint32_t code : dir) {
      if (code > static_cast<std::uint32_t>(storage::DataType::kString)) {
        return fail(Status::InvalidArgument(
            "'" + path + "' column directory has unknown type code " +
            std::to_string(code)));
      }
      types.push_back(static_cast<storage::DataType>(code));
    }
    pax_layout.emplace(std::move(types));
    geometry.row_bytes = pax_layout->row_bytes();
    if (pax_layout->type(0) != geometry.type) {
      return fail(Status::InvalidArgument("'" + path +
                                          "' has an inconsistent header"));
    }
  }
  if (header.width != geometry.width() ||
      header.num_blocks != geometry.num_blocks()) {
    return fail(Status::InvalidArgument("'" + path +
                                        "' has an inconsistent header"));
  }
  std::int64_t expected_payload =
      static_cast<std::int64_t>(sizeof(BlockFileHeader)) + extent_bytes +
      dir_bytes;
  if (aligned) {
    expected_payload = AlignUpDirect(expected_payload);
  }
  if (header.payload_offset != expected_payload) {
    return fail(Status::InvalidArgument("'" + path +
                                        "' has an inconsistent header"));
  }

  auto provider =
      std::shared_ptr<FileBlockProvider>(new FileBlockProvider());
  provider->path_ = path;
  provider->options_ = options;
  provider->dictionary_ = is_pax ? nullptr : std::move(dictionary);
  provider->pax_dictionaries_ =
      is_pax ? std::move(pax_dictionaries)
             : std::vector<std::shared_ptr<storage::Dictionary>>{};
  provider->pax_layout_ = std::move(pax_layout);
  provider->geometry_ = geometry;
  provider->aligned_extents_ = aligned;
  provider->file_size_ = static_cast<std::int64_t>(st.st_size);
  provider->extents_.resize(static_cast<std::size_t>(header.num_blocks));
  const Result<std::int64_t> extents_read =
      PreadFully(fd, reinterpret_cast<std::byte*>(provider->extents_.data()),
                 extent_bytes, sizeof(BlockFileHeader), path);
  if (!extents_read.ok()) {
    return fail(extents_read.status());
  }
  if (*extents_read != extent_bytes) {
    return fail(Status::InvalidArgument("'" + path +
                                        "' extent table is truncated"));
  }
  // Extents must tile [payload_offset, ...) with the sizes the geometry
  // dictates — plain files contiguously, aligned files with each payload
  // rounded up to the next 4 KiB boundary. That determinism is what lets
  // ReadRange span adjacent blocks with one read (compacting the gaps for
  // aligned files).
  std::int64_t expected_offset = header.payload_offset;
  for (std::int64_t b = 0; b < header.num_blocks; ++b) {
    const BlockExtent& extent =
        provider->extents_[static_cast<std::size_t>(b)];
    if (aligned) {
      expected_offset = AlignUpDirect(expected_offset);
    }
    const std::int64_t expected_bytes =
        geometry.BlockRowCount(b) *
        static_cast<std::int64_t>(geometry.width());
    if (extent.offset != expected_offset ||
        extent.bytes != expected_bytes) {
      return fail(Status::InvalidArgument(
          "'" + path + "' extent " + std::to_string(b) +
          " does not tile the payload"));
    }
    expected_offset = extent.offset + extent.bytes;
  }

  if (options.use_mmap) {
    if (static_cast<off_t>(expected_offset) > st.st_size) {
      return fail(Status::InvalidArgument("'" + path +
                                          "' is shorter than its extent "
                                          "table claims"));
    }
    void* map = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                       PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      return fail(ErrnoStatus("mmap", path, errno));
    }
    provider->map_ = map;
  }
  if (options.reopen_per_fetch || options.use_mmap) {
    ::close(fd);
    return provider;
  }
  provider->fd_ = fd;
#ifdef O_DIRECT
  if (options.use_direct) {
    // Swap the validated descriptor for an O_DIRECT one. Filesystems
    // without support (tmpfs) fail this open; keep the buffered fd and
    // report direct_active() = false.
    const int direct_fd = ::open(path.c_str(), O_RDONLY | O_DIRECT);
    if (direct_fd >= 0) {
      ::close(fd);
      provider->fd_ = direct_fd;
      provider->direct_active_ = true;
    }
  }
#endif
  return provider;
}

FileBlockProvider::~FileBlockProvider() {
  if (map_ != nullptr) {
    ::munmap(map_, static_cast<std::size_t>(file_size_));
  }
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status FileBlockProvider::ReadAt(std::int64_t offset, std::byte* dst,
                                 std::int64_t size,
                                 const std::string& what) {
  if (FileFaultInjector* injector =
          injector_.load(std::memory_order_acquire)) {
    switch (injector->Next()) {
      case FileFaultInjector::Fault::kNone:
        break;
      case FileFaultInjector::Fault::kShortRead:
        return Status::Aborted("injected short read of " + what +
                               " from '" + path_ + "'");
      case FileFaultInjector::Fault::kIoError:
        return Status::ResourceExhausted("injected I/O error reading " +
                                         what + " from '" + path_ + "'");
      case FileFaultInjector::Fault::kPermissionDenied:
        return Status::Internal("injected permission error reading " +
                                what + " from '" + path_ + "'");
    }
  }
  if (map_ != nullptr) {
    // Bounds were validated against the mapping at Open; the mapping's
    // length is fixed, so this cannot fault on a well-formed file.
    std::memcpy(dst, static_cast<const std::byte*>(map_) + offset,
                static_cast<std::size_t>(size));
    return Status::OK();
  }
  if (direct_active_) {
    // O_DIRECT needs aligned offset, length and buffer: widen the read to
    // the enclosing 4 KiB-aligned span, land it in a pooled aligned
    // buffer, and slice the requested bytes out. A short kernel read at
    // EOF is fine as long as it still covers the requested span.
    const std::int64_t aligned_offset =
        offset & ~(kDirectIoAlignment - 1);
    const std::int64_t lead = offset - aligned_offset;
    const std::int64_t span = AlignUpDirect(lead + size);
    AlignedBufferPool::Buffer buffer =
        buffer_pool_.Acquire(static_cast<std::size_t>(span));
    const Result<std::int64_t> read =
        PreadFully(fd_, buffer.data, span, aligned_offset, path_);
    if (!read.ok()) {
      buffer_pool_.Release(buffer);
      return read.status();
    }
    if (*read < lead + size) {
      buffer_pool_.Release(buffer);
      return Status::Aborted("short read of " + what + " from '" + path_ +
                             "': got " + std::to_string(*read) + " of " +
                             std::to_string(lead + size) + " bytes");
    }
    std::memcpy(dst, buffer.data + lead, static_cast<std::size_t>(size));
    buffer_pool_.Release(buffer);
    return Status::OK();
  }
  int fd = fd_;
  if (fd < 0) {
    // reopen_per_fetch: surface the file's *current* state — a deleted or
    // chmodded file fails here instead of being masked by a held fd.
    fd = ::open(path_.c_str(), O_RDONLY);
    if (fd < 0) {
      return ErrnoStatus("open", path_, errno);
    }
  }
  const Result<std::int64_t> read = PreadFully(fd, dst, size, offset, path_);
  if (fd != fd_) {
    ::close(fd);
  }
  DBTOUCH_RETURN_IF_ERROR(read.status());
  if (*read != size) {
    // The file ended before the extent did (e.g. truncated underneath
    // us). Transient by contract: the spill may still be completing or
    // the file healing; bounded retries decide when to give up.
    return Status::Aborted("short read of " + what + " from '" + path_ +
                           "': got " + std::to_string(*read) + " of " +
                           std::to_string(size) + " bytes");
  }
  return Status::OK();
}

Result<std::vector<std::byte>> FileBlockProvider::Fetch(std::int64_t block) {
  if (block < 0 || block >= geometry_.num_blocks()) {
    return Status::OutOfRange("block " + std::to_string(block) +
                              " out of range");
  }
  const BlockExtent& extent = extents_[static_cast<std::size_t>(block)];
  std::vector<std::byte> payload(static_cast<std::size_t>(extent.bytes));
  DBTOUCH_RETURN_IF_ERROR(ReadAt(extent.offset, payload.data(),
                                 extent.bytes,
                                 "block " + std::to_string(block)));
  reads_.fetch_add(1, std::memory_order_relaxed);
  blocks_read_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(extent.bytes, std::memory_order_relaxed);
  return payload;
}

Result<std::vector<std::byte>> FileBlockProvider::ReadRange(
    std::int64_t first_block, std::int64_t count) {
  DBTOUCH_RETURN_IF_ERROR(CheckBlockRange(geometry_, first_block, count));
  const BlockExtent& first = extents_[static_cast<std::size_t>(first_block)];
  const BlockExtent& last =
      extents_[static_cast<std::size_t>(first_block + count - 1)];
  const std::int64_t raw = last.offset + last.bytes - first.offset;
  std::int64_t payload_bytes = 0;
  for (std::int64_t b = first_block; b < first_block + count; ++b) {
    payload_bytes += extents_[static_cast<std::size_t>(b)].bytes;
  }
  std::vector<std::byte> payload(static_cast<std::size_t>(raw));
  DBTOUCH_RETURN_IF_ERROR(
      ReadAt(first.offset, payload.data(), raw,
             "blocks " + std::to_string(first_block) + ".." +
                 std::to_string(first_block + count - 1)));
  if (payload_bytes != raw) {
    // Aligned-extent files pad between payloads; callers expect the
    // blocks back to back, so compact the alignment gaps out in place
    // (left-shifting, so overlapping memmove is safe).
    std::int64_t out = 0;
    for (std::int64_t b = first_block; b < first_block + count; ++b) {
      const BlockExtent& extent = extents_[static_cast<std::size_t>(b)];
      std::memmove(payload.data() + out,
                   payload.data() + (extent.offset - first.offset),
                   static_cast<std::size_t>(extent.bytes));
      out += extent.bytes;
    }
    payload.resize(static_cast<std::size_t>(payload_bytes));
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  if (count > 1) {
    ranged_reads_.fetch_add(1, std::memory_order_relaxed);
  }
  blocks_read_.fetch_add(count, std::memory_order_relaxed);
  bytes_read_.fetch_add(payload_bytes, std::memory_order_relaxed);
  return payload;
}

}  // namespace dbtouch::cache
