#include "cache/file_block_provider.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/macros.h"

namespace dbtouch::cache {

namespace {

Status ErrnoStatus(const std::string& op, const std::string& path, int err) {
  const std::string msg =
      op + " '" + path + "': " + std::strerror(err);
  switch (err) {
    // Transient: the next attempt may succeed (signal, backpressure).
    case EAGAIN:
    case EINTR:
      return Status::ResourceExhausted(msg);
    case ENOENT:
      return Status::NotFound(msg);
    default:
      // EACCES, EBADF, EIO, ...: permanent for the fetch path — shed the
      // stalled gesture instead of spinning retries against a dead file.
      return Status::Internal(msg);
  }
}

/// Full-coverage pread: loops over short kernel reads and EINTR. Returns
/// bytes actually read (< size only at EOF).
Result<std::int64_t> PreadFully(int fd, std::byte* dst, std::int64_t size,
                                std::int64_t offset,
                                const std::string& path) {
  std::int64_t done = 0;
  while (done < size) {
    const ssize_t n = ::pread(fd, dst + done,
                              static_cast<std::size_t>(size - done),
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("pread", path, errno);
    }
    if (n == 0) {
      break;  // EOF: the file is shorter than the extent table claims.
    }
    done += n;
  }
  return done;
}

}  // namespace

// ---- BlockFileWriter --------------------------------------------------------

BlockFileWriter::BlockFileWriter(std::string path,
                                 const BlockGeometry& geometry)
    : path_(std::move(path)), geometry_(geometry) {
  DBTOUCH_CHECK(geometry_.rows_per_block > 0);
  fd_ = ::open(path_.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd_ < 0) {
    open_status_ = ErrnoStatus("open", path_, errno);
    return;
  }
  // Reserve header + extent table; both are sealed by Finish, so a crashed
  // spill leaves an invalid (zero-magic) file, never a half-readable one.
  const std::int64_t payload_offset =
      static_cast<std::int64_t>(sizeof(BlockFileHeader)) +
      geometry_.num_blocks() *
          static_cast<std::int64_t>(sizeof(BlockExtent));
  if (::lseek(fd_, static_cast<off_t>(payload_offset), SEEK_SET) < 0) {
    open_status_ = ErrnoStatus("lseek", path_, errno);
    return;
  }
  bytes_written_ = payload_offset;
  extents_.reserve(static_cast<std::size_t>(geometry_.num_blocks()));
}

BlockFileWriter::~BlockFileWriter() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status BlockFileWriter::Append(const std::byte* data, std::size_t size) {
  DBTOUCH_RETURN_IF_ERROR(open_status_);
  if (finished_) {
    return Status::FailedPrecondition("block file already finished");
  }
  if (next_block_ >= geometry_.num_blocks()) {
    return Status::OutOfRange("append past the last block of '" + path_ +
                              "'");
  }
  const std::int64_t expected =
      geometry_.BlockRowCount(next_block_) *
      static_cast<std::int64_t>(geometry_.width());
  if (static_cast<std::int64_t>(size) != expected) {
    return Status::InvalidArgument(
        "block " + std::to_string(next_block_) + " of '" + path_ +
        "' is " + std::to_string(size) + " bytes, expected " +
        std::to_string(expected));
  }
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd_, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("write", path_, errno);
    }
    done += static_cast<std::size_t>(n);
  }
  extents_.push_back(
      BlockExtent{bytes_written_, static_cast<std::int64_t>(size)});
  bytes_written_ += static_cast<std::int64_t>(size);
  ++next_block_;
  return Status::OK();
}

Status BlockFileWriter::Finish() {
  DBTOUCH_RETURN_IF_ERROR(open_status_);
  if (finished_) {
    return Status::FailedPrecondition("block file already finished");
  }
  if (next_block_ != geometry_.num_blocks()) {
    return Status::FailedPrecondition(
        "finish after " + std::to_string(next_block_) + " of " +
        std::to_string(geometry_.num_blocks()) + " blocks of '" + path_ +
        "'");
  }
  BlockFileHeader header;
  header.type = static_cast<std::uint32_t>(geometry_.type);
  header.width = static_cast<std::uint32_t>(geometry_.width());
  header.row_count = geometry_.row_count;
  header.rows_per_block = geometry_.rows_per_block;
  header.num_blocks = geometry_.num_blocks();
  header.payload_offset =
      static_cast<std::int64_t>(sizeof(BlockFileHeader)) +
      header.num_blocks * static_cast<std::int64_t>(sizeof(BlockExtent));
  if (::pwrite(fd_, extents_.data(),
               extents_.size() * sizeof(BlockExtent),
               static_cast<off_t>(sizeof(BlockFileHeader))) !=
      static_cast<ssize_t>(extents_.size() * sizeof(BlockExtent))) {
    return ErrnoStatus("pwrite extents", path_, errno);
  }
  // The header goes last: its magic is the commit record.
  if (::pwrite(fd_, &header, sizeof(header), 0) !=
      static_cast<ssize_t>(sizeof(header))) {
    return ErrnoStatus("pwrite header", path_, errno);
  }
  if (::close(fd_) != 0) {
    fd_ = -1;
    return ErrnoStatus("close", path_, errno);
  }
  fd_ = -1;
  finished_ = true;
  return Status::OK();
}

// ---- FileFaultInjector ------------------------------------------------------

void FileFaultInjector::FailNextReads(int n, Fault fault) {
  const std::lock_guard<std::mutex> lock(mu_);
  fail_next_ = n;
  next_fault_ = fault;
}

void FileFaultInjector::set_fail_every(int n, Fault fault) {
  const std::lock_guard<std::mutex> lock(mu_);
  fail_every_ = n;
  every_fault_ = fault;
}

FileFaultInjector::Fault FileFaultInjector::Next() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++reads_;
  Fault fault = Fault::kNone;
  if (fail_next_ > 0) {
    --fail_next_;
    fault = next_fault_;
  } else if (fail_every_ > 0 && reads_ % fail_every_ == 0) {
    fault = every_fault_;
  }
  if (fault != Fault::kNone) {
    injected_.fetch_add(1, std::memory_order_relaxed);
  }
  return fault;
}

// ---- FileBlockProvider ------------------------------------------------------

Result<std::shared_ptr<FileBlockProvider>> FileBlockProvider::Open(
    const std::string& path, const FileProviderOptions& options,
    std::shared_ptr<storage::Dictionary> dictionary) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return ErrnoStatus("open", path, errno);
  }
  // From here every early return must close fd (no RAII wrapper needed
  // for this one linear function).
  const auto fail = [&](Status status) -> Result<
                        std::shared_ptr<FileBlockProvider>> {
    ::close(fd);
    return status;
  };

  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    return fail(ErrnoStatus("fstat", path, errno));
  }
  BlockFileHeader header;
  if (st.st_size < static_cast<off_t>(sizeof(header))) {
    return fail(Status::InvalidArgument("'" + path +
                                        "' is too small for a block file "
                                        "header"));
  }
  const Result<std::int64_t> header_read =
      PreadFully(fd, reinterpret_cast<std::byte*>(&header), sizeof(header),
                 0, path);
  if (!header_read.ok()) {
    return fail(header_read.status());
  }
  if (*header_read != sizeof(header) ||
      std::memcmp(header.magic, BlockFileHeader::kMagic, 4) != 0) {
    return fail(Status::InvalidArgument("'" + path +
                                        "' is not a dbTouch block file "
                                        "(bad magic)"));
  }
  if (header.version != BlockFileHeader::kVersion) {
    return fail(Status::InvalidArgument(
        "'" + path + "' has block-file version " +
        std::to_string(header.version) + ", expected " +
        std::to_string(BlockFileHeader::kVersion)));
  }
  BlockGeometry geometry;
  geometry.type = static_cast<storage::DataType>(header.type);
  geometry.row_count = header.row_count;
  geometry.rows_per_block = header.rows_per_block;
  if (header.rows_per_block <= 0 || header.row_count < 0 ||
      header.width != geometry.width() ||
      header.num_blocks != geometry.num_blocks()) {
    return fail(Status::InvalidArgument("'" + path +
                                        "' has an inconsistent header"));
  }

  auto provider =
      std::shared_ptr<FileBlockProvider>(new FileBlockProvider());
  provider->path_ = path;
  provider->options_ = options;
  provider->dictionary_ = std::move(dictionary);
  provider->geometry_ = geometry;
  provider->file_size_ = static_cast<std::int64_t>(st.st_size);
  provider->extents_.resize(static_cast<std::size_t>(header.num_blocks));
  const std::int64_t extent_bytes =
      header.num_blocks * static_cast<std::int64_t>(sizeof(BlockExtent));
  const Result<std::int64_t> extents_read =
      PreadFully(fd, reinterpret_cast<std::byte*>(provider->extents_.data()),
                 extent_bytes, sizeof(BlockFileHeader), path);
  if (!extents_read.ok()) {
    return fail(extents_read.status());
  }
  if (*extents_read != extent_bytes) {
    return fail(Status::InvalidArgument("'" + path +
                                        "' extent table is truncated"));
  }
  // Extents must tile [payload_offset, ...) contiguously with the sizes
  // the geometry dictates — that contiguity is what lets ReadRange span
  // adjacent blocks with one read.
  std::int64_t expected_offset = header.payload_offset;
  for (std::int64_t b = 0; b < header.num_blocks; ++b) {
    const BlockExtent& extent =
        provider->extents_[static_cast<std::size_t>(b)];
    const std::int64_t expected_bytes =
        geometry.BlockRowCount(b) *
        static_cast<std::int64_t>(geometry.width());
    if (extent.offset != expected_offset ||
        extent.bytes != expected_bytes) {
      return fail(Status::InvalidArgument(
          "'" + path + "' extent " + std::to_string(b) +
          " does not tile the payload"));
    }
    expected_offset += extent.bytes;
  }

  if (options.use_mmap) {
    if (static_cast<off_t>(expected_offset) > st.st_size) {
      return fail(Status::InvalidArgument("'" + path +
                                          "' is shorter than its extent "
                                          "table claims"));
    }
    void* map = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                       PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      return fail(ErrnoStatus("mmap", path, errno));
    }
    provider->map_ = map;
  }
  if (options.reopen_per_fetch || options.use_mmap) {
    ::close(fd);
  } else {
    provider->fd_ = fd;
  }
  return provider;
}

FileBlockProvider::~FileBlockProvider() {
  if (map_ != nullptr) {
    ::munmap(map_, static_cast<std::size_t>(file_size_));
  }
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status FileBlockProvider::ReadAt(std::int64_t offset, std::byte* dst,
                                 std::int64_t size,
                                 const std::string& what) {
  if (FileFaultInjector* injector =
          injector_.load(std::memory_order_acquire)) {
    switch (injector->Next()) {
      case FileFaultInjector::Fault::kNone:
        break;
      case FileFaultInjector::Fault::kShortRead:
        return Status::Aborted("injected short read of " + what +
                               " from '" + path_ + "'");
      case FileFaultInjector::Fault::kIoError:
        return Status::ResourceExhausted("injected I/O error reading " +
                                         what + " from '" + path_ + "'");
      case FileFaultInjector::Fault::kPermissionDenied:
        return Status::Internal("injected permission error reading " +
                                what + " from '" + path_ + "'");
    }
  }
  if (map_ != nullptr) {
    // Bounds were validated against the mapping at Open; the mapping's
    // length is fixed, so this cannot fault on a well-formed file.
    std::memcpy(dst, static_cast<const std::byte*>(map_) + offset,
                static_cast<std::size_t>(size));
    return Status::OK();
  }
  int fd = fd_;
  if (fd < 0) {
    // reopen_per_fetch: surface the file's *current* state — a deleted or
    // chmodded file fails here instead of being masked by a held fd.
    fd = ::open(path_.c_str(), O_RDONLY);
    if (fd < 0) {
      return ErrnoStatus("open", path_, errno);
    }
  }
  const Result<std::int64_t> read = PreadFully(fd, dst, size, offset, path_);
  if (fd != fd_) {
    ::close(fd);
  }
  DBTOUCH_RETURN_IF_ERROR(read.status());
  if (*read != size) {
    // The file ended before the extent did (e.g. truncated underneath
    // us). Transient by contract: the spill may still be completing or
    // the file healing; bounded retries decide when to give up.
    return Status::Aborted("short read of " + what + " from '" + path_ +
                           "': got " + std::to_string(*read) + " of " +
                           std::to_string(size) + " bytes");
  }
  return Status::OK();
}

Result<std::vector<std::byte>> FileBlockProvider::Fetch(std::int64_t block) {
  if (block < 0 || block >= geometry_.num_blocks()) {
    return Status::OutOfRange("block " + std::to_string(block) +
                              " out of range");
  }
  const BlockExtent& extent = extents_[static_cast<std::size_t>(block)];
  std::vector<std::byte> payload(static_cast<std::size_t>(extent.bytes));
  DBTOUCH_RETURN_IF_ERROR(ReadAt(extent.offset, payload.data(),
                                 extent.bytes,
                                 "block " + std::to_string(block)));
  reads_.fetch_add(1, std::memory_order_relaxed);
  blocks_read_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(extent.bytes, std::memory_order_relaxed);
  return payload;
}

Result<std::vector<std::byte>> FileBlockProvider::ReadRange(
    std::int64_t first_block, std::int64_t count) {
  DBTOUCH_RETURN_IF_ERROR(CheckBlockRange(geometry_, first_block, count));
  const BlockExtent& first = extents_[static_cast<std::size_t>(first_block)];
  const BlockExtent& last =
      extents_[static_cast<std::size_t>(first_block + count - 1)];
  const std::int64_t total = last.offset + last.bytes - first.offset;
  std::vector<std::byte> payload(static_cast<std::size_t>(total));
  DBTOUCH_RETURN_IF_ERROR(
      ReadAt(first.offset, payload.data(), total,
             "blocks " + std::to_string(first_block) + ".." +
                 std::to_string(first_block + count - 1)));
  reads_.fetch_add(1, std::memory_order_relaxed);
  if (count > 1) {
    ranged_reads_.fetch_add(1, std::memory_order_relaxed);
  }
  blocks_read_.fetch_add(count, std::memory_order_relaxed);
  bytes_read_.fetch_add(total, std::memory_order_relaxed);
  return payload;
}

}  // namespace dbtouch::cache
