// Gesture-aware block cache: "caching can be exploited such that dbTouch
// is ready if the user decides to re-examine a data area already seen.
// dbTouch needs to observe the gesture patterns and adjust the caching
// policy" (Section 2.6 "Caching Data").
//
// The cache is an LRU of fixed-size blocks with one gesture-derived
// refinement: steady one-directional slides are scans — caching their
// blocks just evicts data the user might return to — so admission is
// bypassed while the gesture is in "scan" mode and re-enabled when the
// gesture reverses or pauses (both signals that the user is interested in
// the current region).

#ifndef DBTOUCH_CACHE_BLOCK_CACHE_H_
#define DBTOUCH_CACHE_BLOCK_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "storage/types.h"

namespace dbtouch::cache {

struct BlockCacheStats {
  std::int64_t lookups = 0;
  std::int64_t hits = 0;
  std::int64_t admissions = 0;
  std::int64_t bypasses = 0;   // Admission skipped in scan mode.
  std::int64_t evictions = 0;

  double hit_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

class BlockCache {
 public:
  struct Config {
    std::int64_t capacity_blocks = 64;
    /// Enables the gesture-aware scan-bypass policy; false = plain LRU.
    bool gesture_aware = true;
    /// Consecutive same-direction accesses after which the stream is
    /// treated as a scan.
    int scan_run_length = 8;
  };

  explicit BlockCache(const Config& config);

  /// Accesses `block` for the touch of `row` (row ordering feeds the
  /// direction detector). Returns true on hit. On miss the block is
  /// admitted unless the policy is currently bypassing. The most recently
  /// touched block is always held in a working buffer, so consecutive
  /// touches within one block hit even in bypass mode.
  bool Access(std::int64_t block, storage::RowId row);

  /// Signals that the gesture paused — interest in the current region, so
  /// admission resumes.
  void OnGesturePause();

  bool Contains(std::int64_t block) const;
  std::int64_t size() const {
    return static_cast<std::int64_t>(lru_.size());
  }
  const BlockCacheStats& stats() const { return stats_; }
  bool in_scan_mode() const { return scan_run_ >= config_.scan_run_length; }

 private:
  void Admit(std::int64_t block);
  void TouchLru(std::int64_t block);

  Config config_;
  std::list<std::int64_t> lru_;  // Front = most recent.
  std::unordered_map<std::int64_t, std::list<std::int64_t>::iterator> map_;
  BlockCacheStats stats_;
  storage::RowId last_row_ = -1;
  /// The block currently under the finger (working buffer).
  std::int64_t current_block_ = -1;
  int direction_ = 0;  // +1 / -1 / 0 unknown.
  int scan_run_ = 0;
};

}  // namespace dbtouch::cache

#endif  // DBTOUCH_CACHE_BLOCK_CACHE_H_
