// Gesture-aware block cache: "caching can be exploited such that dbTouch
// is ready if the user decides to re-examine a data area already seen.
// dbTouch needs to observe the gesture patterns and adjust the caching
// policy" (Section 2.6 "Caching Data").
//
// The cache is an LRU of fixed-size blocks with one gesture-derived
// refinement: steady one-directional slides are scans — caching their
// blocks just evicts data the user might return to — so admission is
// bypassed while the gesture is in "scan" mode and re-enabled when the
// gesture reverses or pauses (both signals that the user is interested in
// the current region).
//
// Concurrency: the LRU state is split across `Config::shards` shards, each
// guarded by its own mutex, so server workers touching different blocks
// rarely contend. The gesture/direction detector is inherently sequential
// (it models one finger) and lives under its own small mutex. With the
// default single shard the eviction order is exactly the classic LRU the
// unit tests pin down.

#ifndef DBTOUCH_CACHE_BLOCK_CACHE_H_
#define DBTOUCH_CACHE_BLOCK_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/types.h"

namespace dbtouch::cache {

struct BlockCacheStats {
  std::int64_t lookups = 0;
  std::int64_t hits = 0;
  std::int64_t admissions = 0;
  std::int64_t bypasses = 0;   // Admission skipped in scan mode.
  std::int64_t evictions = 0;

  double hit_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

class BlockCache {
 public:
  struct Config {
    std::int64_t capacity_blocks = 64;
    /// Enables the gesture-aware scan-bypass policy; false = plain LRU.
    bool gesture_aware = true;
    /// Consecutive same-direction accesses after which the stream is
    /// treated as a scan.
    int scan_run_length = 8;
    /// Number of independently locked LRU shards. 1 (the default) keeps
    /// the exact global-LRU eviction order; the touch server raises it so
    /// concurrent sessions touching different blocks do not contend.
    /// Clamped to capacity_blocks; shard capacities sum to exactly
    /// capacity_blocks.
    int shards = 1;
  };

  explicit BlockCache(const Config& config);

  /// Accesses `block` for the touch of `row` (row ordering feeds the
  /// direction detector). Returns true on hit. On miss the block is
  /// admitted unless the policy is currently bypassing. The most recently
  /// touched block is always held in a working buffer, so consecutive
  /// touches within one block hit even in bypass mode.
  bool Access(std::int64_t block, storage::RowId row);

  /// Signals that the gesture paused — interest in the current region, so
  /// admission resumes.
  void OnGesturePause();

  bool Contains(std::int64_t block) const;
  std::int64_t size() const;
  /// Aggregated over all shards; a coherent snapshot, not a live reference.
  BlockCacheStats stats() const;
  bool in_scan_mode() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::int64_t capacity = 0;
    std::list<std::int64_t> lru;  // Front = most recent.
    std::unordered_map<std::int64_t, std::list<std::int64_t>::iterator> map;
    BlockCacheStats stats;
  };

  Shard& ShardFor(std::int64_t block) const {
    return *shards_[static_cast<std::size_t>(block) % shards_.size()];
  }
  /// Caller holds the shard mutex.
  void Admit(Shard& shard, std::int64_t block);
  void TouchLru(Shard& shard, std::int64_t block);

  Config config_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Gesture/direction state: models the (single) finger driving the
  /// cache, so it is one small critical section, not per-shard.
  mutable std::mutex gesture_mu_;
  storage::RowId last_row_ = -1;
  /// The block currently under the finger (working buffer).
  std::int64_t current_block_ = -1;
  int direction_ = 0;  // +1 / -1 / 0 unknown.
  int scan_run_ = 0;
};

}  // namespace dbtouch::cache

#endif  // DBTOUCH_CACHE_BLOCK_CACHE_H_
