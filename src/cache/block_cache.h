// Gesture-aware block cache: "caching can be exploited such that dbTouch
// is ready if the user decides to re-examine a data area already seen.
// dbTouch needs to observe the gesture patterns and adjust the caching
// policy" (Section 2.6 "Caching Data").
//
// The cache owns block payloads under a byte budget with pin/unpin: a
// pinned block's bytes stay valid (and the block cannot be evicted) until
// every pin releases. Retention is LRU with one gesture-derived
// refinement: steady one-directional slides are scans — retaining their
// blocks just evicts data the user might return to — so admission is
// bypassed while the gesture is in "scan" mode and re-enabled when the
// gesture reverses or pauses (both signals that the user is interested in
// the current region). A bypassed (or budget-rejected) block is served as
// a transient: materialised for its pins, freed when the last pin drops,
// never counted against the resident budget.
//
// Invariant: resident_bytes (retained payloads) never exceeds
// Config::capacity_bytes — admission evicts unpinned victims to make room
// and falls back to transient service when pins leave no room.
//
// Concurrency: entries are split across `Config::shards` shards, each
// guarded by its own mutex, so server workers touching different blocks
// rarely contend. Miss fills run under the shard mutex, serialising
// concurrent faults of one block (single fetch, no duplicate payloads).
// The gesture/direction detector is keyed per owner (one model per bound
// column) under its own small mutex.

#ifndef DBTOUCH_CACHE_BLOCK_CACHE_H_
#define DBTOUCH_CACHE_BLOCK_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/types.h"

namespace dbtouch::cache {

/// Identity of one cached block: `owner` names a bound (table, column)
/// pairing (ids handed out by the BufferManager), `block` the block index
/// within that column.
struct BlockKey {
  std::uint64_t owner = 0;
  std::int64_t block = 0;

  friend bool operator==(const BlockKey&, const BlockKey&) = default;
};

struct BlockKeyHash {
  std::size_t operator()(const BlockKey& k) const {
    // splitmix-style mix of the two words.
    std::uint64_t x = k.owner * 0x9e3779b97f4a7c15ULL +
                      static_cast<std::uint64_t>(k.block);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    return static_cast<std::size_t>(x * 0x94d049bb133111ebULL);
  }
};

struct BlockCacheStats {
  std::int64_t lookups = 0;
  std::int64_t hits = 0;
  /// Misses that materialised a payload — via the caller's filler (sync
  /// path) or an adopted async completion (Insert).
  std::int64_t faults = 0;
  std::int64_t admissions = 0;
  std::int64_t bypasses = 0;           // Retention skipped in scan mode.
  std::int64_t budget_rejections = 0;  // Pins left no evictable room.
  std::int64_t evictions = 0;
  /// TryPin misses — the would-block signal driving async fetches.
  std::int64_t would_block = 0;
  /// Async completions adopted via Insert / dropped as already present.
  std::int64_t inserts = 0;
  std::int64_t insert_duplicates = 0;
  /// Staged (unclaimed async) blocks evicted by the staging cap.
  std::int64_t staged_evictions = 0;
  /// Prefetch warm-up outcomes: staged warm-ups claimed by a pin before
  /// eviction vs dropped unclaimed. Their ratio is the claimed-before-
  /// eviction score fed back into the extrapolator's horizon — warm-ups
  /// that keep dying unclaimed mean the horizon outruns the cache.
  std::int64_t prefetch_staged_claims = 0;
  std::int64_t prefetch_staged_evictions = 0;
  std::int64_t staged_blocks = 0;  // Gauge.
  std::int64_t staged_bytes = 0;   // Gauge.
  /// Gauges (a coherent snapshot at stats() time).
  std::int64_t pinned_blocks = 0;
  std::int64_t resident_blocks = 0;
  std::int64_t resident_bytes = 0;
  /// Sum of per-shard high-water marks: an upper bound on the true
  /// simultaneous peak (shards may peak at different times), and always
  /// <= capacity_bytes.
  std::int64_t peak_resident_bytes = 0;

  double hit_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

class BlockCache {
 public:
  struct Config {
    /// Byte budget for retained payloads (the bounded-memory contract).
    std::int64_t capacity_bytes = 64ll << 20;
    /// Enables the gesture-aware scan-bypass policy; false = plain LRU.
    bool gesture_aware = true;
    /// Consecutive same-direction block transitions after which the
    /// stream is treated as a scan.
    int scan_run_length = 8;
    /// Number of independently locked shards. 1 (the default) keeps the
    /// exact global-LRU eviction order; the touch server raises it so
    /// concurrent sessions touching different blocks do not contend.
    /// Shard budgets sum to exactly capacity_bytes.
    int shards = 1;
    /// Byte cap (per cache, split across shards) on *staged* payloads:
    /// async completions parked by Insert until their first pin claims
    /// them. Staged bytes live outside the resident budget — they are the
    /// landing pad that makes suspend/resume race-free — so they get their
    /// own small bound; the oldest unclaimed block is dropped when a new
    /// completion would exceed it. 0 = capacity_bytes / 8.
    std::int64_t staged_cap_bytes = 0;
  };

  /// Produces a block's payload on a miss. Runs under the shard mutex.
  using Filler = std::function<Result<std::vector<std::byte>>()>;

  /// What Pin hands back; `data` stays valid until the matching Unpin.
  struct Pinned {
    const std::byte* data = nullptr;
    std::size_t size = 0;
    bool hit = false;       // Served from a resident payload.
    bool retained = false;  // Will stay resident after the last unpin.
  };

  explicit BlockCache(const Config& config);

  /// Pins `key`, materialising it via `fill` on a miss. `row` is the base
  /// row whose touch drives the read; it feeds the per-owner direction
  /// detector (pass -1 for reads no gesture drives — admission then
  /// follows the current mode). Every successful Pin must be matched by
  /// exactly one Unpin.
  Result<Pinned> Pin(const BlockKey& key, storage::RowId row,
                     const Filler& fill);
  void Unpin(const BlockKey& key);

  /// Non-blocking pin: returns the pinned block if its payload is resident
  /// (retained, transient with live pins, or staged by an async
  /// completion), nullopt on a miss — never runs a filler. The async read
  /// path probes with this and schedules a FetchQueue fetch on nullopt.
  std::optional<Pinned> TryPin(const BlockKey& key, storage::RowId row);

  /// Adopts an asynchronously fetched payload. The block is *staged*: kept
  /// resident outside the LRU until its first pin claims it (the claim
  /// then runs normal admission, so a claimed demand block is retained
  /// when the budget allows). Unclaimed staged bytes are bounded by
  /// Config::staged_cap_bytes so completions for sessions that died
  /// cannot leak; eviction takes the oldest prefetch warm-up first and
  /// touches `demand`-staged blocks — a session is parked on each of
  /// those — only when warm-ups alone cannot make room. A payload already
  /// present (e.g. a racing synchronous fill) is dropped.
  void Insert(const BlockKey& key, std::vector<std::byte> payload,
              bool demand = false);

  /// Signals that the gesture paused — interest in the current region, so
  /// admission resumes. The one-argument form resets only that owner's
  /// detector (one session's finger-lift must not cancel another
  /// session's scan on a different column); the no-argument form resets
  /// every owner (tests, global quiesce).
  void OnGesturePause();
  void OnGesturePause(std::uint64_t owner);

  /// Drops the owner's gesture detector (the owner id was retired — e.g.
  /// its table re-registered). Its blocks age out of the LRU naturally.
  void ForgetOwner(std::uint64_t owner);

  /// True while the block's payload is resident (retained, or transient
  /// with live pins).
  bool Contains(const BlockKey& key) const;
  /// Retained blocks / bytes across all shards.
  std::int64_t size() const;
  std::int64_t resident_bytes() const;
  /// Aggregated over all shards; a coherent snapshot, not a live reference.
  BlockCacheStats stats() const;
  /// True if any owner's access stream is currently in scan mode.
  bool in_scan_mode() const;

  const Config& config() const { return config_; }

 private:
  struct Entry {
    std::vector<std::byte> payload;
    int pins = 0;
    bool retained = false;
    /// Unclaimed async completion; mutually exclusive with retained.
    bool staged = false;
    /// Staged at demand priority (a suspended session awaits the claim).
    bool staged_demand = false;
    std::list<BlockKey>::iterator lru_it;     // Valid iff retained.
    std::list<BlockKey>::iterator staged_it;  // Valid iff staged.
  };

  struct Shard {
    mutable std::mutex mu;
    std::int64_t capacity_bytes = 0;
    std::int64_t resident_bytes = 0;
    std::int64_t pinned_blocks = 0;
    std::int64_t staged_bytes = 0;
    std::int64_t staged_cap_bytes = 0;
    std::list<BlockKey> lru;  // Front = most recent; retained entries only.
    std::list<BlockKey> staged_fifo;  // Front = oldest unclaimed completion.
    std::unordered_map<BlockKey, Entry, BlockKeyHash> map;
    BlockCacheStats stats;
  };

  /// Per-owner gesture/direction state: models the finger driving reads of
  /// one bound column.
  struct Detector {
    storage::RowId last_row = -1;
    int direction = 0;  // +1 / -1 / 0 unknown.
    int scan_run = 0;
  };

  Shard& ShardFor(const BlockKey& key) const {
    return *shards_[BlockKeyHash{}(key) % shards_.size()];
  }
  /// Caller holds the shard mutex. Evicts unpinned LRU victims until
  /// `need` more bytes fit; false if pins make that impossible.
  bool MakeRoom(Shard& shard, std::int64_t need);
  /// Caller holds the shard mutex. Pins a resident entry (the shared hit
  /// path of Pin and TryPin); a staged entry is claimed here — pulled off
  /// the staging list and promoted to retained when admission allows.
  Pinned PinHitLocked(Shard& shard, const BlockKey& key, Entry& entry,
                      bool bypassing);
  /// Caller holds the shard mutex.
  void TouchLru(Shard& shard, const BlockKey& key, Entry& entry);
  /// Updates the owner's detector with this access; returns whether
  /// admission is currently bypassed.
  bool UpdateGesture(const BlockKey& key, storage::RowId row);

  Config config_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex gesture_mu_;
  std::unordered_map<std::uint64_t, Detector> detectors_;
};

}  // namespace dbtouch::cache

#endif  // DBTOUCH_CACHE_BLOCK_CACHE_H_
