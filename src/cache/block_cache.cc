#include "cache/block_cache.h"

#include <algorithm>

#include "common/macros.h"

namespace dbtouch::cache {

BlockCache::BlockCache(const Config& config) : config_(config) {
  DBTOUCH_CHECK(config.capacity_blocks > 0);
  DBTOUCH_CHECK(config.shards > 0);
  // Never more shards than capacity (a zero-capacity shard could hold
  // nothing), and spread the remainder so the shard capacities sum to
  // exactly capacity_blocks.
  const int shards = static_cast<int>(std::min<std::int64_t>(
      config.shards, config.capacity_blocks));
  const std::int64_t base = config.capacity_blocks / shards;
  const std::int64_t remainder = config.capacity_blocks % shards;
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = base + (i < remainder ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

bool BlockCache::Access(std::int64_t block, storage::RowId row) {
  bool bypassing = false;
  bool working_buffer_hit = false;
  {
    const std::lock_guard<std::mutex> lock(gesture_mu_);
    // Direction tracking.
    if (last_row_ >= 0 && row != last_row_) {
      const int dir = row > last_row_ ? 1 : -1;
      if (dir == direction_) {
        ++scan_run_;
      } else {
        direction_ = dir;
        scan_run_ = 0;  // Reversal: user re-examining — cache again.
      }
    }
    last_row_ = row;

    // Working buffer: the block under the finger is always resident.
    if (block == current_block_) {
      working_buffer_hit = true;
    } else {
      current_block_ = block;
    }
    bypassing = config_.gesture_aware && scan_run_ >= config_.scan_run_length;
  }

  Shard& shard = ShardFor(block);
  const std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.stats.lookups;
  if (working_buffer_hit) {
    ++shard.stats.hits;
    return true;
  }
  const auto it = shard.map.find(block);
  if (it != shard.map.end()) {
    ++shard.stats.hits;
    TouchLru(shard, block);
    return true;
  }
  if (bypassing) {
    ++shard.stats.bypasses;
    return false;
  }
  Admit(shard, block);
  return false;
}

void BlockCache::OnGesturePause() {
  const std::lock_guard<std::mutex> lock(gesture_mu_);
  scan_run_ = 0;
}

bool BlockCache::Contains(std::int64_t block) const {
  Shard& shard = ShardFor(block);
  const std::lock_guard<std::mutex> lock(shard.mu);
  return shard.map.count(block) > 0;
}

std::int64_t BlockCache::size() const {
  std::int64_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    total += static_cast<std::int64_t>(shard->lru.size());
  }
  return total;
}

BlockCacheStats BlockCache::stats() const {
  BlockCacheStats total;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    total.lookups += shard->stats.lookups;
    total.hits += shard->stats.hits;
    total.admissions += shard->stats.admissions;
    total.bypasses += shard->stats.bypasses;
    total.evictions += shard->stats.evictions;
  }
  return total;
}

bool BlockCache::in_scan_mode() const {
  const std::lock_guard<std::mutex> lock(gesture_mu_);
  return scan_run_ >= config_.scan_run_length;
}

void BlockCache::Admit(Shard& shard, std::int64_t block) {
  if (static_cast<std::int64_t>(shard.lru.size()) >= shard.capacity) {
    const std::int64_t victim = shard.lru.back();
    shard.lru.pop_back();
    shard.map.erase(victim);
    ++shard.stats.evictions;
  }
  shard.lru.push_front(block);
  shard.map[block] = shard.lru.begin();
  ++shard.stats.admissions;
}

void BlockCache::TouchLru(Shard& shard, std::int64_t block) {
  const auto it = shard.map.find(block);
  DBTOUCH_CHECK(it != shard.map.end());
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  it->second = shard.lru.begin();
}

}  // namespace dbtouch::cache
