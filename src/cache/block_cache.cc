#include "cache/block_cache.h"

#include "common/macros.h"

namespace dbtouch::cache {

BlockCache::BlockCache(const Config& config) : config_(config) {
  DBTOUCH_CHECK(config.capacity_blocks > 0);
}

bool BlockCache::Access(std::int64_t block, storage::RowId row) {
  ++stats_.lookups;

  // Direction tracking.
  if (last_row_ >= 0 && row != last_row_) {
    const int dir = row > last_row_ ? 1 : -1;
    if (dir == direction_) {
      ++scan_run_;
    } else {
      direction_ = dir;
      scan_run_ = 0;  // Reversal: user re-examining — cache again.
    }
  }
  last_row_ = row;

  // Working buffer: the block under the finger is always resident.
  if (block == current_block_) {
    ++stats_.hits;
    return true;
  }
  current_block_ = block;

  const auto it = map_.find(block);
  if (it != map_.end()) {
    ++stats_.hits;
    TouchLru(block);
    return true;
  }
  if (config_.gesture_aware && in_scan_mode()) {
    ++stats_.bypasses;
    return false;
  }
  Admit(block);
  return false;
}

void BlockCache::OnGesturePause() {
  scan_run_ = 0;
}

bool BlockCache::Contains(std::int64_t block) const {
  return map_.count(block) > 0;
}

void BlockCache::Admit(std::int64_t block) {
  if (static_cast<std::int64_t>(lru_.size()) >= config_.capacity_blocks) {
    const std::int64_t victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    ++stats_.evictions;
  }
  lru_.push_front(block);
  map_[block] = lru_.begin();
  ++stats_.admissions;
}

void BlockCache::TouchLru(std::int64_t block) {
  const auto it = map_.find(block);
  DBTOUCH_CHECK(it != map_.end());
  lru_.splice(lru_.begin(), lru_, it->second);
  it->second = lru_.begin();
}

}  // namespace dbtouch::cache
