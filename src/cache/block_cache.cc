#include "cache/block_cache.h"

#include <algorithm>

#include "common/macros.h"

namespace dbtouch::cache {

BlockCache::BlockCache(const Config& config) : config_(config) {
  DBTOUCH_CHECK(config.capacity_bytes >= 0);
  DBTOUCH_CHECK(config.shards > 0);
  const int shards = config.shards;
  const std::int64_t base = config.capacity_bytes / shards;
  const std::int64_t remainder = config.capacity_bytes % shards;
  const std::int64_t staged_cap = config.staged_cap_bytes > 0
                                      ? config.staged_cap_bytes
                                      : config.capacity_bytes / 8;
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity_bytes = base + (i < remainder ? 1 : 0);
    shard->staged_cap_bytes = std::max<std::int64_t>(staged_cap / shards, 1);
    shards_.push_back(std::move(shard));
  }
}

bool BlockCache::UpdateGesture(const BlockKey& key, storage::RowId row) {
  const std::lock_guard<std::mutex> lock(gesture_mu_);
  Detector& d = detectors_[key.owner];
  if (row >= 0) {
    if (d.last_row >= 0 && row != d.last_row) {
      const int dir = row > d.last_row ? 1 : -1;
      if (dir == d.direction) {
        ++d.scan_run;
      } else {
        d.direction = dir;
        d.scan_run = 0;  // Reversal: user re-examining — cache again.
      }
    }
    d.last_row = row;
  }
  return config_.gesture_aware && d.scan_run >= config_.scan_run_length;
}

BlockCache::Pinned BlockCache::PinHitLocked(Shard& shard, const BlockKey& key,
                                            Entry& entry, bool bypassing) {
  ++shard.stats.hits;
  if (entry.pins++ == 0) {
    ++shard.pinned_blocks;
  }
  if (entry.staged) {
    // First claim of an async completion: leave the staging pad and run
    // normal admission, so an awaited block is retained when room exists.
    if (!entry.staged_demand) {
      ++shard.stats.prefetch_staged_claims;  // Warm-up paid off.
    }
    entry.staged = false;
    entry.staged_demand = false;
    shard.staged_fifo.erase(entry.staged_it);
    const auto size = static_cast<std::int64_t>(entry.payload.size());
    shard.staged_bytes -= size;
    if (!bypassing && MakeRoom(shard, size)) {
      entry.retained = true;
      shard.lru.push_front(key);
      entry.lru_it = shard.lru.begin();
      shard.resident_bytes += size;
      shard.stats.peak_resident_bytes =
          std::max(shard.stats.peak_resident_bytes, shard.resident_bytes);
      ++shard.stats.admissions;
    } else if (bypassing) {
      ++shard.stats.bypasses;
    } else {
      ++shard.stats.budget_rejections;
    }
  } else if (entry.retained) {
    TouchLru(shard, key, entry);
  }
  return Pinned{entry.payload.data(), entry.payload.size(), true,
                entry.retained};
}

Result<BlockCache::Pinned> BlockCache::Pin(const BlockKey& key,
                                           storage::RowId row,
                                           const Filler& fill) {
  const bool bypassing = UpdateGesture(key, row);

  Shard& shard = ShardFor(key);
  const std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.stats.lookups;
  const auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    return PinHitLocked(shard, key, it->second, bypassing);
  }

  // Miss: materialise under the shard lock (concurrent faults of one
  // block serialise into a single fetch).
  ++shard.stats.faults;
  DBTOUCH_ASSIGN_OR_RETURN(std::vector<std::byte> payload, fill());
  const auto size = static_cast<std::int64_t>(payload.size());

  Entry entry;
  entry.payload = std::move(payload);
  entry.pins = 1;
  ++shard.pinned_blocks;
  if (!bypassing && MakeRoom(shard, size)) {
    entry.retained = true;
    shard.lru.push_front(key);
    entry.lru_it = shard.lru.begin();
    shard.resident_bytes += size;
    shard.stats.peak_resident_bytes =
        std::max(shard.stats.peak_resident_bytes, shard.resident_bytes);
    ++shard.stats.admissions;
  } else if (bypassing) {
    ++shard.stats.bypasses;
  } else {
    ++shard.stats.budget_rejections;
  }
  const auto [ins, ok] = shard.map.emplace(key, std::move(entry));
  DBTOUCH_CHECK(ok);
  Entry& stored = ins->second;
  return Pinned{stored.payload.data(), stored.payload.size(), false,
                stored.retained};
}

void BlockCache::Unpin(const BlockKey& key) {
  Shard& shard = ShardFor(key);
  const std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key);
  DBTOUCH_CHECK(it != shard.map.end());
  Entry& entry = it->second;
  DBTOUCH_CHECK(entry.pins > 0);
  if (--entry.pins == 0) {
    --shard.pinned_blocks;
    if (!entry.retained) {
      shard.map.erase(it);  // Transient: freed with its last pin.
    }
  }
}

std::optional<BlockCache::Pinned> BlockCache::TryPin(const BlockKey& key,
                                                     storage::RowId row) {
  const bool bypassing = UpdateGesture(key, row);

  Shard& shard = ShardFor(key);
  const std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.stats.lookups;
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.stats.would_block;
    return std::nullopt;
  }
  return PinHitLocked(shard, key, it->second, bypassing);
}

void BlockCache::Insert(const BlockKey& key, std::vector<std::byte> payload,
                        bool demand) {
  Shard& shard = ShardFor(key);
  const std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.map.count(key) > 0) {
    // A synchronous fill (or a duplicate completion) beat us to it.
    ++shard.stats.insert_duplicates;
    return;
  }
  const auto size = static_cast<std::int64_t>(payload.size());
  // Make room on the staging pad. Oldest prefetch warm-ups go first; a
  // demand-staged block — some session is parked until it claims it — is
  // evicted only when warm-ups alone cannot make room, so prefetch churn
  // cannot force a suspended session to re-fetch its own answer. (Staged
  // entries are never pinned — a pin claims them off the pad.)
  const auto evict = [&](bool spare_demand) {
    for (auto it = shard.staged_fifo.begin();
         it != shard.staged_fifo.end(); ++it) {
      const auto vit = shard.map.find(*it);
      DBTOUCH_CHECK(vit != shard.map.end());
      if (spare_demand && vit->second.staged_demand) {
        continue;
      }
      if (!vit->second.staged_demand) {
        ++shard.stats.prefetch_staged_evictions;  // Warm-up died unclaimed.
      }
      shard.staged_bytes -=
          static_cast<std::int64_t>(vit->second.payload.size());
      shard.staged_fifo.erase(it);
      shard.map.erase(vit);
      ++shard.stats.staged_evictions;
      return true;
    }
    return false;
  };
  while (shard.staged_bytes + size > shard.staged_cap_bytes &&
         !shard.staged_fifo.empty()) {
    if (!evict(/*spare_demand=*/true) && !evict(/*spare_demand=*/false)) {
      break;
    }
  }
  ++shard.stats.inserts;
  // An adopted completion IS the materialisation of an async miss: count
  // it as a fault so cold-tier fault/hit accounting agrees across the
  // sync (Pin-filler) and async (FetchQueue) paths.
  ++shard.stats.faults;
  Entry entry;
  entry.payload = std::move(payload);
  entry.staged = true;
  entry.staged_demand = demand;
  shard.staged_fifo.push_back(key);
  entry.staged_it = std::prev(shard.staged_fifo.end());
  shard.staged_bytes += size;
  const auto [ins, ok] = shard.map.emplace(key, std::move(entry));
  DBTOUCH_CHECK(ok);
}

void BlockCache::OnGesturePause() {
  const std::lock_guard<std::mutex> lock(gesture_mu_);
  for (auto& [owner, detector] : detectors_) {
    detector.scan_run = 0;
  }
}

void BlockCache::OnGesturePause(std::uint64_t owner) {
  const std::lock_guard<std::mutex> lock(gesture_mu_);
  const auto it = detectors_.find(owner);
  if (it != detectors_.end()) {
    it->second.scan_run = 0;
  }
}

void BlockCache::ForgetOwner(std::uint64_t owner) {
  const std::lock_guard<std::mutex> lock(gesture_mu_);
  detectors_.erase(owner);
}

bool BlockCache::Contains(const BlockKey& key) const {
  Shard& shard = ShardFor(key);
  const std::lock_guard<std::mutex> lock(shard.mu);
  return shard.map.count(key) > 0;
}

std::int64_t BlockCache::size() const {
  std::int64_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    total += static_cast<std::int64_t>(shard->lru.size());
  }
  return total;
}

std::int64_t BlockCache::resident_bytes() const {
  std::int64_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->resident_bytes;
  }
  return total;
}

BlockCacheStats BlockCache::stats() const {
  BlockCacheStats total;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    total.lookups += shard->stats.lookups;
    total.hits += shard->stats.hits;
    total.faults += shard->stats.faults;
    total.admissions += shard->stats.admissions;
    total.bypasses += shard->stats.bypasses;
    total.budget_rejections += shard->stats.budget_rejections;
    total.evictions += shard->stats.evictions;
    total.would_block += shard->stats.would_block;
    total.inserts += shard->stats.inserts;
    total.insert_duplicates += shard->stats.insert_duplicates;
    total.staged_evictions += shard->stats.staged_evictions;
    total.prefetch_staged_claims += shard->stats.prefetch_staged_claims;
    total.prefetch_staged_evictions +=
        shard->stats.prefetch_staged_evictions;
    total.staged_blocks +=
        static_cast<std::int64_t>(shard->staged_fifo.size());
    total.staged_bytes += shard->staged_bytes;
    total.pinned_blocks += shard->pinned_blocks;
    total.resident_blocks += static_cast<std::int64_t>(shard->lru.size());
    total.resident_bytes += shard->resident_bytes;
    total.peak_resident_bytes += shard->stats.peak_resident_bytes;
  }
  return total;
}

bool BlockCache::in_scan_mode() const {
  const std::lock_guard<std::mutex> lock(gesture_mu_);
  for (const auto& [owner, detector] : detectors_) {
    if (detector.scan_run >= config_.scan_run_length) {
      return true;
    }
  }
  return false;
}

bool BlockCache::MakeRoom(Shard& shard, std::int64_t need) {
  if (need > shard.capacity_bytes) {
    return false;
  }
  while (shard.resident_bytes + need > shard.capacity_bytes) {
    // Coldest unpinned retained block; pinned entries are skipped (and
    // re-skipped next round — pins are few and short-lived).
    auto victim = shard.lru.end();
    for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
      if (shard.map.at(*it).pins == 0) {
        victim = std::prev(it.base());
        break;
      }
    }
    if (victim == shard.lru.end()) {
      return false;  // Everything left is pinned.
    }
    const auto it = shard.map.find(*victim);
    shard.resident_bytes -=
        static_cast<std::int64_t>(it->second.payload.size());
    shard.lru.erase(victim);
    shard.map.erase(it);
    ++shard.stats.evictions;
  }
  return true;
}

void BlockCache::TouchLru(Shard& shard, const BlockKey& /*key*/,
                          Entry& entry) {
  shard.lru.splice(shard.lru.begin(), shard.lru, entry.lru_it);
  entry.lru_it = shard.lru.begin();
}

}  // namespace dbtouch::cache
