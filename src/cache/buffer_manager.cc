#include "cache/buffer_manager.h"

#include <algorithm>

#include "common/macros.h"

namespace dbtouch::cache {

namespace {

BlockCache::Config CacheConfigFrom(const BufferManagerConfig& config) {
  BlockCache::Config out;
  out.capacity_bytes = config.budget_bytes;
  out.gesture_aware = config.gesture_aware;
  out.scan_run_length = config.scan_run_length;
  // Never shard so finely that one shard cannot retain a handful of
  // blocks — a shard whose budget is below one block rejects every
  // admission and the cache silently degrades to transient-only service.
  // Sized for the widest (8-byte) field.
  const std::int64_t block_bytes = config.rows_per_block * 8;
  const std::int64_t max_shards =
      std::max<std::int64_t>(config.budget_bytes / (4 * block_bytes), 1);
  out.shards = static_cast<int>(
      std::min<std::int64_t>(config.shards, max_shards));
  return out;
}

}  // namespace

/// PagedColumnSource pinning blocks in the shared BlockCache and faulting
/// from one provider. Cheap to create; one per bound data object.
class BufferManager::Source final : public storage::PagedColumnSource {
 public:
  Source(BufferManager* manager, std::uint64_t owner,
         std::shared_ptr<BlockProvider> provider)
      : manager_(manager), owner_(owner), provider_(std::move(provider)) {}

  storage::DataType type() const override {
    return provider_->geometry().type;
  }
  const storage::Dictionary* dictionary() const override {
    return provider_->dictionary();
  }
  std::int64_t row_count() const override {
    return provider_->geometry().row_count;
  }
  std::int64_t rows_per_block() const override {
    return provider_->geometry().rows_per_block;
  }

  void OnGesturePause() override {
    manager_->cache_.OnGesturePause(owner_);
  }

  Result<storage::BlockPin> PinBlock(std::int64_t block,
                                     storage::RowId row_hint) override {
    if (block < 0 || block >= num_blocks()) {
      return Status::OutOfRange("block " + std::to_string(block) +
                                " out of range");
    }
    const BlockKey key{owner_, block};
    DBTOUCH_ASSIGN_OR_RETURN(
        const BlockCache::Pinned pinned,
        manager_->cache_.Pin(key, row_hint,
                             [&] { return provider_->Fetch(block); }));
    const storage::ColumnView view(
        type(), pinned.data, provider_->geometry().width(),
        provider_->geometry().BlockRowCount(block), dictionary());
    return storage::BlockPin(this, block, view, BlockFirstRow(block));
  }

 protected:
  void UnpinBlock(std::int64_t block) override {
    manager_->cache_.Unpin(BlockKey{owner_, block});
  }

 private:
  BufferManager* manager_;  // Not owned; outlives the source.
  std::uint64_t owner_;
  std::shared_ptr<BlockProvider> provider_;
};

BufferManager::BufferManager(const BufferManagerConfig& config)
    : config_(config), cache_(CacheConfigFrom(config)) {
  DBTOUCH_CHECK(config.rows_per_block > 0);
}

BufferManager::Binding BufferManager::BindOwner(
    const std::string& name, std::size_t column, const void* identity,
    const std::function<std::shared_ptr<BlockProvider>()>& make_provider) {
  const std::lock_guard<std::mutex> lock(mu_);
  Binding& binding = bindings_[{name, column}];
  if (binding.identity != identity) {
    // First bind, or the name now denotes different data: a fresh owner id
    // gives it a clean block namespace (stale blocks age out via LRU; the
    // retired owner's gesture detector is dropped eagerly).
    if (binding.owner != 0) {
      cache_.ForgetOwner(binding.owner);
    }
    binding.identity = identity;
    binding.owner = next_owner_++;
    binding.provider = make_provider();
  }
  return binding;
}

Result<std::shared_ptr<storage::PagedColumnSource>>
BufferManager::ColumnSource(const std::shared_ptr<storage::Table>& table,
                            std::size_t column) {
  if (table == nullptr) {
    return Status::InvalidArgument("null table");
  }
  if (column >= table->schema().num_fields()) {
    return Status::OutOfRange("column " + std::to_string(column) +
                              " out of range for table '" + table->name() +
                              "'");
  }
  const Binding binding = BindOwner(table->name(), column, table.get(), [&] {
    return std::make_shared<TableBlockProvider>(table, column,
                                                config_.rows_per_block);
  });
  // Explicit upcast: Result<T> will not chain the derived-to-base
  // shared_ptr conversion with its own converting constructor.
  return std::shared_ptr<storage::PagedColumnSource>(
      std::make_shared<Source>(this, binding.owner, binding.provider));
}

std::shared_ptr<storage::PagedColumnSource> BufferManager::SourceFor(
    const std::string& name, std::size_t column,
    std::shared_ptr<BlockProvider> provider) {
  DBTOUCH_CHECK(provider != nullptr);
  const Binding binding = BindOwner(name, column, provider.get(),
                                    [&] { return provider; });
  return std::make_shared<Source>(this, binding.owner, binding.provider);
}

}  // namespace dbtouch::cache
