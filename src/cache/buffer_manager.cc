#include "cache/buffer_manager.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"

namespace dbtouch::cache {

namespace {

BlockCache::Config CacheConfigFrom(const BufferManagerConfig& config) {
  BlockCache::Config out;
  out.capacity_bytes = config.budget_bytes;
  out.gesture_aware = config.gesture_aware;
  out.scan_run_length = config.scan_run_length;
  // Never shard so finely that one shard cannot retain a handful of
  // blocks — a shard whose budget is below one block rejects every
  // admission and the cache silently degrades to transient-only service.
  // Sized for the widest (8-byte) field.
  const std::int64_t block_bytes = config.rows_per_block * 8;
  const std::int64_t max_shards =
      std::max<std::int64_t>(config.budget_bytes / (4 * block_bytes), 1);
  out.shards = static_cast<int>(
      std::min<std::int64_t>(config.shards, max_shards));
  // The staging pad must hold at least one block per shard, or a
  // multi-block stall would thrash it — each completion evicting the
  // previous block, the resume re-fetching what was already delivered.
  out.staged_cap_bytes = std::max<std::int64_t>(
      config.staged_cap_bytes > 0 ? config.staged_cap_bytes
                                  : config.budget_bytes / 8,
      out.shards * block_bytes);
  return out;
}

}  // namespace

/// PagedColumnSource pinning blocks in the shared BlockCache and faulting
/// from one provider. Cheap to create; one per bound data object.
class BufferManager::Source : public storage::PagedColumnSource {
 public:
  Source(BufferManager* manager, std::uint64_t owner,
         std::shared_ptr<BlockProvider> provider)
      : manager_(manager), owner_(owner), provider_(std::move(provider)) {}

  storage::DataType type() const override {
    return provider_->geometry().type;
  }
  const storage::Dictionary* dictionary() const override {
    return provider_->dictionary();
  }
  std::int64_t row_count() const override {
    return provider_->geometry().row_count;
  }
  std::int64_t rows_per_block() const override {
    return provider_->geometry().rows_per_block;
  }
  /// Sources of one binding share blocks, so they share a token: two PAX
  /// column sources of the same table dedup to one stall entry.
  std::uintptr_t share_token() const override {
    return static_cast<std::uintptr_t>(owner_);
  }

  void OnGesturePause() override {
    manager_->cache_.OnGesturePause(owner_);
  }

  Result<storage::BlockPin> PinBlock(std::int64_t block,
                                     storage::RowId row_hint) override {
    if (block < 0 || block >= num_blocks()) {
      return Status::OutOfRange("block " + std::to_string(block) +
                                " out of range");
    }
    const BlockKey key{owner_, block};
    DBTOUCH_ASSIGN_OR_RETURN(
        const BlockCache::Pinned pinned,
        manager_->cache_.Pin(key, row_hint, [&] {
          // Inline fill under the shard lock; shares the queue's bounded
          // retry policy so transient backing-store errors stay transient
          // on the blocking path too.
          std::int64_t retries = 0;
          auto payload = FetchBlockWithRetry(*provider_, block,
                                             manager_->config_.fetch,
                                             &retries);
          manager_->sync_retries_.fetch_add(retries,
                                            std::memory_order_relaxed);
          return payload;
        }));
    return MakePin(block, pinned);
  }

  /// Non-blocking pin: a cache hit pins as usual; a miss on an immediate
  /// provider fills inline (a memcpy is cheaper than a suspend cycle); a
  /// miss on a slow provider reports "would block" so the caller can
  /// StartFetch and suspend.
  Result<std::optional<storage::BlockPin>> TryPinBlock(
      std::int64_t block, storage::RowId row_hint) override {
    if (!may_block()) {
      return PagedColumnSource::TryPinBlock(block, row_hint);
    }
    if (block < 0 || block >= num_blocks()) {
      return Status::OutOfRange("block " + std::to_string(block) +
                                " out of range");
    }
    const std::optional<BlockCache::Pinned> pinned =
        manager_->cache_.TryPin(BlockKey{owner_, block}, row_hint);
    if (!pinned.has_value()) {
      return std::optional<storage::BlockPin>();
    }
    return std::optional<storage::BlockPin>(MakePin(block, *pinned));
  }

  bool may_block() const override {
    return provider_->async() && manager_->async_enabled();
  }

  Status StartFetch(std::int64_t block, FetchCompletion done,
                    std::uint64_t tag = 0) override {
    if (block < 0 || block >= num_blocks()) {
      return Status::OutOfRange("block " + std::to_string(block) +
                                " out of range");
    }
    if (!may_block()) {
      return PagedColumnSource::StartFetch(block, std::move(done), tag);
    }
    // Non-null by construction: binding an async provider created it.
    FetchQueue* queue = manager_->fetch_queue();
    DBTOUCH_CHECK(queue != nullptr);
    queue->Enqueue(BlockKey{owner_, block}, provider_, block,
                   FetchPriority::kDemand, std::move(done), tag);
    return Status::OK();
  }

  /// Batched demand fetch for the blocking read path: materialise the
  /// band's missing stretches with one ranged provider read each,
  /// staging the blocks in the cache so the per-block pins that follow
  /// all hit. Only slow tiers benefit — an in-memory provider's Fetch is
  /// a memcpy with no per-call round trip to amortise.
  Status Preload(std::int64_t first_block,
                 std::int64_t last_block) override {
    if (!provider_->async()) {
      return Status::OK();
    }
    Status status = Status::OK();
    ForEachMissingRun(first_block, last_block,
                      [&](std::int64_t run_start, std::int64_t count) {
                        if (status.ok()) {
                          status = FetchRun(run_start, count);
                        }
                        return status.ok();
                      });
    return status;
  }

  bool RequestPrefetch(std::int64_t block) override {
    if (!may_block() || block < 0 || block >= num_blocks()) {
      return false;
    }
    const BlockKey key{owner_, block};
    if (manager_->cache_.Contains(key)) {
      return false;  // Already resident; nothing to warm.
    }
    FetchQueue* queue = manager_->fetch_queue();
    DBTOUCH_CHECK(queue != nullptr);
    // A coalesced join (the block is already queued/in flight) is a
    // no-op for the caller's budget, same as an already-resident block.
    return queue->Enqueue(key, provider_, block, FetchPriority::kPrefetch,
                          nullptr);
  }

  /// Ranged warm-up: each non-resident stretch of the predicted path goes
  /// to the queue as ONE pre-formed ranged ticket (one ReadRange when it
  /// pops), so the extrapolation horizon — not pop-time re-merging or its
  /// max_coalesce_blocks cap — decides the read size.
  std::int64_t RequestPrefetchRange(std::int64_t first_block,
                                    std::int64_t last_block,
                                    std::int64_t max_new_blocks) override {
    if (!may_block() || max_new_blocks <= 0) {
      return 0;
    }
    FetchQueue* queue = manager_->fetch_queue();
    DBTOUCH_CHECK(queue != nullptr);
    std::int64_t issued = 0;
    ForEachMissingRun(
        first_block, last_block,
        [&](std::int64_t run_start, std::int64_t count) {
          const std::int64_t len =
              std::min<std::int64_t>(count, max_new_blocks - issued);
          issued += static_cast<std::int64_t>(
              queue->EnqueueRange(owner_, provider_, run_start, len));
          return issued < max_new_blocks;
        });
    return issued;
  }

 protected:
  void UnpinBlock(std::int64_t block) override {
    manager_->cache_.Unpin(BlockKey{owner_, block});
  }

  /// View over the pinned payload handed to BlockPin. Virtual so PAX
  /// sources can carve their column's minipage out of the shared payload.
  virtual storage::BlockPin MakePin(std::int64_t block,
                                    const BlockCache::Pinned& pinned) {
    const storage::ColumnView view(
        type(), pinned.data, provider_->geometry().width(),
        provider_->geometry().BlockRowCount(block), dictionary());
    return storage::BlockPin(this, block, view, BlockFirstRow(block));
  }

  BufferManager* manager_;  // Not owned; outlives the source.
  std::uint64_t owner_;
  std::shared_ptr<BlockProvider> provider_;

 private:
  /// Walks [first_block, last_block] (clamped) and invokes `fn(start,
  /// count)` for each maximal run of blocks not resident in the cache —
  /// the shared skeleton of the blocking Preload and the ranged warm-up
  /// path. `fn` returns false to stop early (budget exhausted, error).
  void ForEachMissingRun(
      std::int64_t first_block, std::int64_t last_block,
      const std::function<bool(std::int64_t, std::int64_t)>& fn) {
    first_block = std::max<std::int64_t>(first_block, 0);
    last_block = std::min<std::int64_t>(last_block, num_blocks() - 1);
    std::int64_t run_start = -1;
    for (std::int64_t block = first_block; block <= last_block + 1;
         ++block) {
      const bool missing =
          block <= last_block &&
          !manager_->cache_.Contains(BlockKey{owner_, block});
      if (missing) {
        if (run_start < 0) {
          run_start = block;
        }
        continue;
      }
      if (run_start >= 0) {
        const std::int64_t start = run_start;
        run_start = -1;
        if (!fn(start, block - start)) {
          return;
        }
      }
    }
  }

  /// One ranged read (with the shared retry policy) for a missing run,
  /// split and staged per block. Demand-staged: a gesture is about to pin
  /// every one of these.
  Status FetchRun(std::int64_t first_block, std::int64_t count) {
    std::int64_t retries = 0;
    Result<std::vector<std::byte>> payload =
        count == 1 ? FetchBlockWithRetry(*provider_, first_block,
                                         manager_->config_.fetch, &retries)
                   : FetchRangeWithRetry(*provider_, first_block, count,
                                         manager_->config_.fetch, &retries);
    manager_->sync_retries_.fetch_add(retries, std::memory_order_relaxed);
    DBTOUCH_RETURN_IF_ERROR(payload.status());
    if (count > 1) {
      manager_->sync_ranged_reads_.fetch_add(1, std::memory_order_relaxed);
      manager_->sync_ranged_blocks_.fetch_add(count,
                                              std::memory_order_relaxed);
    }
    const BlockGeometry& geometry = provider_->geometry();
    std::size_t offset = 0;
    for (std::int64_t block = first_block; block < first_block + count;
         ++block) {
      const std::size_t bytes =
          static_cast<std::size_t>(geometry.BlockRowCount(block)) *
          geometry.width();
      DBTOUCH_CHECK(offset + bytes <= payload->size());
      manager_->cache_.Insert(
          BlockKey{owner_, block},
          std::vector<std::byte>(payload->begin() + offset,
                                 payload->begin() + offset + bytes),
          /*demand=*/true);
      offset += bytes;
    }
    return Status::OK();
  }

};

/// One schema column of a PAX binding: pins the shared multi-column block
/// and views only its own minipage. Everything else — fetch, stall,
/// prefetch, residency — is the base Source against the shared owner.
class BufferManager::PaxSource final : public BufferManager::Source {
 public:
  PaxSource(BufferManager* manager, std::uint64_t owner,
            std::shared_ptr<BlockProvider> provider, std::size_t column)
      : Source(manager, owner, std::move(provider)), column_(column) {}

  storage::DataType type() const override {
    return provider_->pax_layout()->type(column_);
  }
  const storage::Dictionary* dictionary() const override {
    return provider_->pax_dictionary(column_);
  }

 protected:
  storage::BlockPin MakePin(std::int64_t block,
                            const BlockCache::Pinned& pinned) override {
    const storage::PaxLayout& layout = *provider_->pax_layout();
    const std::int64_t rows = provider_->geometry().BlockRowCount(block);
    const storage::ColumnView view(
        type(), pinned.data + layout.MinipageOffset(rows, column_),
        storage::TypeWidth(type()), rows, dictionary());
    return storage::BlockPin(this, block, view, BlockFirstRow(block));
  }

 private:
  std::size_t column_;
};

BufferManager::BufferManager(const BufferManagerConfig& config)
    : config_(config), cache_(CacheConfigFrom(config)) {
  DBTOUCH_CHECK(config.rows_per_block > 0);
}

BufferManager::~BufferManager() {
  FetchQueue* queue = fetch_queue();
  if (queue != nullptr) {
    queue->Shutdown();  // Stop deliveries into cache_ first.
  }
}

void BufferManager::EnsureFetchQueue() {
  std::call_once(fetch_queue_once_, [this] {
    fetch_queue_ = std::make_unique<FetchQueue>(
        config_.fetch, [this](const BlockKey& key,
                              std::vector<std::byte> payload,
                              FetchPriority priority) {
          cache_.Insert(key, std::move(payload),
                        priority == FetchPriority::kDemand);
        });
    fetch_queue_->set_trace_recorder(
        trace_recorder_.load(std::memory_order_acquire));
    fetch_queue_ptr_.store(fetch_queue_.get(), std::memory_order_release);
  });
}

void BufferManager::SetTraceRecorder(obs::TraceRecorder* recorder) {
  trace_recorder_.store(recorder, std::memory_order_release);
  FetchQueue* queue = fetch_queue();
  if (queue != nullptr) {
    queue->set_trace_recorder(recorder);
  }
}

FetchQueueStats BufferManager::fetch_stats() const {
  const FetchQueue* queue = fetch_queue();
  return queue != nullptr ? queue->stats() : FetchQueueStats{};
}

std::size_t BufferManager::CancelFetches(std::uint64_t tag) {
  FetchQueue* queue = fetch_queue();
  return queue != nullptr ? queue->CancelTagged(tag) : 0;
}

void BufferManager::WaitForFetches() {
  FetchQueue* queue = fetch_queue();
  if (queue != nullptr) {
    queue->WaitIdle();
  }
}

BufferManager::Binding BufferManager::BindOwner(
    const std::string& name, std::size_t column, const void* identity,
    const std::function<std::shared_ptr<BlockProvider>()>& make_provider) {
  const std::lock_guard<std::mutex> lock(mu_);
  Binding& binding = bindings_[{name, column}];
  if (binding.identity != identity) {
    // First bind, or the name now denotes different data: a fresh owner id
    // gives it a clean block namespace (stale blocks age out via LRU; the
    // retired owner's gesture detector is dropped eagerly).
    if (binding.owner != 0) {
      cache_.ForgetOwner(binding.owner);
    }
    binding.identity = identity;
    binding.owner = next_owner_++;
    binding.provider = make_provider();
  }
  if (config_.async_fetch && binding.provider->async()) {
    // First slow tier bound: spin up the fetchers. In-memory-only
    // managers (every private kernel SharedState) never reach here.
    EnsureFetchQueue();
  }
  return binding;
}

Result<std::shared_ptr<storage::PagedColumnSource>>
BufferManager::ColumnSource(const std::shared_ptr<storage::Table>& table,
                            std::size_t column) {
  if (table == nullptr) {
    return Status::InvalidArgument("null table");
  }
  if (column >= table->schema().num_fields()) {
    return Status::OutOfRange("column " + std::to_string(column) +
                              " out of range for table '" + table->name() +
                              "'");
  }
  const Binding binding = BindOwner(table->name(), column, table.get(), [&] {
    return std::make_shared<TableBlockProvider>(table, column,
                                                config_.rows_per_block);
  });
  // Explicit upcast: Result<T> will not chain the derived-to-base
  // shared_ptr conversion with its own converting constructor.
  return std::shared_ptr<storage::PagedColumnSource>(
      std::make_shared<Source>(this, binding.owner, binding.provider));
}

std::shared_ptr<storage::PagedColumnSource> BufferManager::SourceFor(
    const std::string& name, std::size_t column,
    std::shared_ptr<BlockProvider> provider) {
  DBTOUCH_CHECK(provider != nullptr);
  const Binding binding = BindOwner(name, column, provider.get(),
                                    [&] { return provider; });
  return std::make_shared<Source>(this, binding.owner, binding.provider);
}

Result<std::shared_ptr<storage::PagedColumnSource>>
BufferManager::PaxSourceFor(const std::string& name, std::size_t column,
                            std::shared_ptr<BlockProvider> provider) {
  if (provider == nullptr || provider->pax_layout() == nullptr) {
    return Status::InvalidArgument("provider for '" + name +
                                   "' is not a PAX provider");
  }
  if (column >= provider->pax_layout()->num_columns()) {
    return Status::OutOfRange("PAX column " + std::to_string(column) +
                              " out of range for '" + name + "'");
  }
  // All columns bind under one sentinel column key: one owner, one block
  // namespace — a fault for any column is a hit for the rest.
  constexpr std::size_t kPaxBindingColumn =
      std::numeric_limits<std::size_t>::max();
  const Binding binding = BindOwner(name, kPaxBindingColumn, provider.get(),
                                    [&] { return provider; });
  return std::shared_ptr<storage::PagedColumnSource>(
      std::make_shared<PaxSource>(this, binding.owner, binding.provider,
                                  column));
}

}  // namespace dbtouch::cache
