// Hash-table cache for joins: "caching of hash tables across the various
// sample copies can enhance future queries" (Section 2.9 "Joins").
//
// Keyed by (join identity, sample level); holds live SymmetricHashJoin
// instances so a re-opened join session at the same granularity resumes
// with all previously fed tuples already in its tables.
//
// Concurrency: Get/Put are serialised by an internal mutex so sessions on
// different server workers can share one cache. The cache hands out
// shared_ptrs; feeding a join concurrently from two sessions is the
// caller's problem (the touch server keys joins per session).

#ifndef DBTOUCH_CACHE_HASH_TABLE_CACHE_H_
#define DBTOUCH_CACHE_HASH_TABLE_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "exec/join.h"

namespace dbtouch::cache {

struct HashTableCacheStats {
  std::int64_t lookups = 0;
  std::int64_t hits = 0;
  std::int64_t inserts = 0;
  std::int64_t evictions = 0;
};

class HashTableCache {
 public:
  explicit HashTableCache(std::size_t capacity = 8);

  /// Cache key: join identity (e.g. "orders.cid=cust.id") + sample level.
  static std::string MakeKey(const std::string& join_id, int level);

  /// Returns the cached join for `key`, or nullptr.
  std::shared_ptr<exec::SymmetricHashJoin> Get(const std::string& key);

  /// Whether `key` is currently cached; no stats or LRU effect (for
  /// callers maintaining side state keyed like the cache).
  bool Contains(const std::string& key) const {
    const std::lock_guard<std::mutex> lock(mu_);
    return map_.count(key) > 0;
  }

  /// Inserts (LRU-evicting) a join state under `key`.
  void Put(const std::string& key,
           std::shared_ptr<exec::SymmetricHashJoin> join);

  HashTableCacheStats stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

 private:
  /// Caller holds mu_.
  void TouchLru(const std::string& key);

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<std::string> lru_;  // Front = most recent.
  struct Entry {
    std::shared_ptr<exec::SymmetricHashJoin> join;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, Entry> map_;
  HashTableCacheStats stats_;
};

}  // namespace dbtouch::cache

#endif  // DBTOUCH_CACHE_HASH_TABLE_CACHE_H_
