#include "cache/hash_table_cache.h"

#include "common/macros.h"

namespace dbtouch::cache {

HashTableCache::HashTableCache(std::size_t capacity) : capacity_(capacity) {
  DBTOUCH_CHECK(capacity > 0);
}

std::string HashTableCache::MakeKey(const std::string& join_id, int level) {
  return join_id + "@L" + std::to_string(level);
}

std::shared_ptr<exec::SymmetricHashJoin> HashTableCache::Get(
    const std::string& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.lookups;
  const auto it = map_.find(key);
  if (it == map_.end()) {
    return nullptr;
  }
  ++stats_.hits;
  TouchLru(key);
  return it->second.join;
}

void HashTableCache::Put(const std::string& key,
                         std::shared_ptr<exec::SymmetricHashJoin> join) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.join = std::move(join);
    TouchLru(key);
    return;
  }
  if (map_.size() >= capacity_) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    ++stats_.evictions;
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{std::move(join), lru_.begin()});
  ++stats_.inserts;
}

void HashTableCache::TouchLru(const std::string& key) {
  auto it = map_.find(key);
  DBTOUCH_CHECK(it != map_.end());
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  it->second.lru_it = lru_.begin();
}

}  // namespace dbtouch::cache
