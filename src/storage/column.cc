#include "storage/column.h"

#include "common/macros.h"

namespace dbtouch::storage {

Value ColumnView::GetValue(RowId row) const {
  switch (type_) {
    case DataType::kInt32:
      return Value(static_cast<std::int64_t>(GetInt32(row)));
    case DataType::kInt64:
      return Value(GetInt64(row));
    case DataType::kFloat:
      return Value(static_cast<double>(GetFloat(row)));
    case DataType::kDouble:
      return Value(GetDouble(row));
    case DataType::kString: {
      const std::int32_t code = GetInt32(row);
      if (dictionary_ != nullptr) {
        return Value(dictionary_->Lookup(code));
      }
      return Value(static_cast<std::int64_t>(code));
    }
  }
  return Value();
}

ColumnView ColumnView::Slice(RowId first, std::int64_t count) const {
  DBTOUCH_CHECK(first >= 0 && count >= 0 && first + count <= row_count_);
  return ColumnView(type_, data_ + static_cast<std::size_t>(first) * stride_,
                    stride_, count, dictionary_);
}

Column::Column(std::string name, DataType type)
    : name_(std::move(name)), type_(type), width_(TypeWidth(type)) {
  if (type_ == DataType::kString) {
    dictionary_ = std::make_shared<Dictionary>();
  }
}

Column Column::FromInt32(std::string name,
                         const std::vector<std::int32_t>& v) {
  Column c(std::move(name), DataType::kInt32);
  c.Reserve(static_cast<std::int64_t>(v.size()));
  for (const auto x : v) {
    c.AppendInt32(x);
  }
  return c;
}

Column Column::FromInt64(std::string name,
                         const std::vector<std::int64_t>& v) {
  Column c(std::move(name), DataType::kInt64);
  c.Reserve(static_cast<std::int64_t>(v.size()));
  for (const auto x : v) {
    c.AppendInt64(x);
  }
  return c;
}

Column Column::FromDouble(std::string name, const std::vector<double>& v) {
  Column c(std::move(name), DataType::kDouble);
  c.Reserve(static_cast<std::int64_t>(v.size()));
  for (const auto x : v) {
    c.AppendDouble(x);
  }
  return c;
}

Column Column::FromFloat(std::string name, const std::vector<float>& v) {
  Column c(std::move(name), DataType::kFloat);
  c.Reserve(static_cast<std::int64_t>(v.size()));
  for (const auto x : v) {
    c.AppendFloat(x);
  }
  return c;
}

Column Column::FromStrings(std::string name,
                           const std::vector<std::string>& v) {
  Column c(std::move(name), DataType::kString);
  c.Reserve(static_cast<std::int64_t>(v.size()));
  for (const auto& s : v) {
    c.AppendString(s);
  }
  return c;
}

void Column::Reserve(std::int64_t rows) {
  data_.reserve(static_cast<std::size_t>(rows) * width_);
  tracked_.Update(data_.capacity());
}

void Column::AppendString(std::string_view s) {
  DBTOUCH_CHECK(type_ == DataType::kString);
  const std::int32_t code = dictionary_->Intern(s);
  AppendRaw(&code, sizeof(code));
}

void Column::AppendValue(const Value& v) {
  switch (type_) {
    case DataType::kInt32:
      AppendInt32(static_cast<std::int32_t>(v.AsInt()));
      return;
    case DataType::kInt64:
      AppendInt64(v.AsInt());
      return;
    case DataType::kFloat:
      AppendFloat(static_cast<float>(v.ToDouble()));
      return;
    case DataType::kDouble:
      AppendDouble(v.ToDouble());
      return;
    case DataType::kString:
      AppendString(v.AsString());
      return;
  }
}

void Column::AppendRaw(const void* src, std::size_t n) {
  DBTOUCH_CHECK(n == width_);
  const std::size_t old = data_.size();
  data_.resize(old + n);
  std::memcpy(data_.data() + old, src, n);
  tracked_.Update(data_.capacity());
}

}  // namespace dbtouch::storage
