// MemoryTracker: the resident-bytes accounting seam for raw column
// storage. Every byte buffer that can hold base data — a Table's Matrix
// and every standalone Column (generator outputs, sample-hierarchy level
// copies) — reports its allocation size here, so "how much raw column
// data is actually resident" is one number the server can surface and
// tests can assert against.
//
// The point of the seam is the spill tier: after
// core::SharedState::SpillTable releases a spilled table's matrix, the
// tracked matrix bytes for that table drop to ~0 and the BufferManager's
// byte budget becomes the only bound on base-data residency. Without the
// tracker that claim is unfalsifiable; with it, CI asserts it
// (tests/reclaim_test.cc, bench_cache's ABL-CACHE-RECLAIM report).
//
// Thread-safety: counters are relaxed atomics — buffers grow and free on
// whatever thread owns them; readers want a cheap, monotonic-enough
// snapshot, not a fence.

#ifndef DBTOUCH_STORAGE_MEMORY_TRACKER_H_
#define DBTOUCH_STORAGE_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace dbtouch::storage {

/// What kind of raw storage a buffer holds. Matrices are table cell
/// storage (what SpillTable reclaims); columns are standalone copies
/// (sample levels, extracted columns) that stay resident by design.
enum class MemoryCategory : std::uint8_t { kMatrix = 0, kColumn = 1 };

class MemoryTracker {
 public:
  /// The process-wide tracker every buffer reports to.
  static MemoryTracker& Instance();

  void OnAlloc(MemoryCategory category, std::int64_t bytes);
  void OnFree(MemoryCategory category, std::int64_t bytes);

  /// Bytes currently held by table matrices / standalone columns.
  std::int64_t matrix_bytes() const {
    return matrix_bytes_.load(std::memory_order_relaxed);
  }
  std::int64_t column_bytes() const {
    return column_bytes_.load(std::memory_order_relaxed);
  }
  std::int64_t resident_bytes() const {
    return matrix_bytes() + column_bytes();
  }
  /// High-water mark of resident_bytes() since process start.
  std::int64_t peak_resident_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }

 private:
  MemoryTracker() = default;

  std::atomic<std::int64_t> matrix_bytes_{0};
  std::atomic<std::int64_t> column_bytes_{0};
  std::atomic<std::int64_t> peak_bytes_{0};
};

/// Accounting token owned by one byte buffer: Update(n) reports the delta
/// between n and whatever was last reported; destruction reports the
/// buffer gone. Copying a token re-reports the copied size (a copied
/// buffer holds its own bytes); moving transfers the report.
class TrackedBytes {
 public:
  explicit TrackedBytes(MemoryCategory category) : category_(category) {}
  ~TrackedBytes() { Update(0); }

  TrackedBytes(const TrackedBytes& other) : category_(other.category_) {
    Update(other.reported_);
  }
  TrackedBytes& operator=(const TrackedBytes& other) {
    if (this != &other) {
      Update(0);
      category_ = other.category_;
      Update(other.reported_);
    }
    return *this;
  }
  TrackedBytes(TrackedBytes&& other) noexcept
      : category_(other.category_), reported_(other.reported_) {
    other.reported_ = 0;
  }
  TrackedBytes& operator=(TrackedBytes&& other) noexcept {
    if (this != &other) {
      Update(0);
      category_ = other.category_;
      reported_ = other.reported_;
      other.reported_ = 0;
    }
    return *this;
  }

  /// Reports that the owning buffer now holds `bytes` bytes.
  void Update(std::size_t bytes);

  std::size_t reported() const { return reported_; }

 private:
  MemoryCategory category_;
  std::size_t reported_ = 0;
};

}  // namespace dbtouch::storage

#endif  // DBTOUCH_STORAGE_MEMORY_TRACKER_H_
