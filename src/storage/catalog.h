// Catalog: the named tables available for exploration. In dbTouch the
// catalog is what the user "sees" on screen — every registered table can be
// bound to a data-object view (paper Section 2.2 "Schema-less Querying":
// glancing at the screen reveals how many tables and columns exist).

#ifndef DBTOUCH_STORAGE_CATALOG_H_
#define DBTOUCH_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/table.h"

namespace dbtouch::storage {

class Catalog {
 public:
  Catalog() = default;

  /// Registers a table under its name. AlreadyExists if taken.
  Status Register(std::shared_ptr<Table> table);

  /// Removes a table. NotFound if absent.
  Status Drop(const std::string& name);

  Result<std::shared_ptr<Table>> Get(const std::string& name) const;

  bool Contains(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  /// Table names in lexicographic order.
  std::vector<std::string> List() const;

  std::size_t size() const { return tables_.size(); }

 private:
  std::map<std::string, std::shared_ptr<Table>> tables_;
};

}  // namespace dbtouch::storage

#endif  // DBTOUCH_STORAGE_CATALOG_H_
