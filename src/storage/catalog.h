// Catalog: the named tables available for exploration. In dbTouch the
// catalog is what the user "sees" on screen — every registered table can be
// bound to a data-object view (paper Section 2.2 "Schema-less Querying":
// glancing at the screen reveals how many tables and columns exist).
//
// The catalog is internally synchronised: the touch server shares one
// catalog across all sessions, so registrations and lookups may race.
// Table contents themselves are treated as read-only while shared (the
// server disables layout rotation on shared tables).

#ifndef DBTOUCH_STORAGE_CATALOG_H_
#define DBTOUCH_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/table.h"

namespace dbtouch::storage {

class Catalog {
 public:
  Catalog() = default;

  /// Registers a table under its name. AlreadyExists if taken.
  Status Register(std::shared_ptr<Table> table);

  /// Removes a table. NotFound if absent.
  Status Drop(const std::string& name);

  Result<std::shared_ptr<Table>> Get(const std::string& name) const;

  bool Contains(const std::string& name) const {
    const std::lock_guard<std::mutex> lock(mu_);
    return tables_.count(name) > 0;
  }

  /// Table names in lexicographic order.
  std::vector<std::string> List() const;

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return tables_.size();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Table>> tables_;
};

}  // namespace dbtouch::storage

#endif  // DBTOUCH_STORAGE_CATALOG_H_
