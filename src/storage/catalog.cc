#include "storage/catalog.h"

namespace dbtouch::storage {

Status Catalog::Register(std::shared_ptr<Table> table) {
  if (table == nullptr) {
    return Status::InvalidArgument("null table");
  }
  const std::string& name = table->name();
  const std::lock_guard<std::mutex> lock(mu_);
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table '" + name + "' already registered");
  }
  tables_.emplace(name, std::move(table));
  return Status::OK();
}

Status Catalog::Drop(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (tables_.erase(name) == 0) {
    return Status::NotFound("table '" + name + "' not in catalog");
  }
  return Status::OK();
}

Result<std::shared_ptr<Table>> Catalog::Get(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' not in catalog");
  }
  return it->second;
}

std::vector<std::string> Catalog::List() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace dbtouch::storage
