// TableSpiller: writes a loaded Table's columns out as block files, so the
// base data can be served from disk through cache::FileBlockProvider
// instead of RAM. With the columns spilled and rebound
// (core::SharedState::SpillTable), the BufferManager's byte budget is the
// only resident bound on base-data reads: blocks fault in from the file,
// evicted blocks cost nothing (the file *is* the copy — spilling is the
// write-once eviction path; everything after is re-faultable), and a table
// many times the budget explores through a bounded pool.
//
// The spill streams one block at a time through a TableBlockProvider — a
// column is never materialised whole — so spilling itself runs in O(block)
// memory. Spilled columns are treated as frozen, like registered tables
// generally are under sharing: a layout rotation after a spill rewrites
// only the in-memory matrix, so server sessions (where rotation is
// disabled) always see consistent data.

#ifndef DBTOUCH_STORAGE_SPILL_H_
#define DBTOUCH_STORAGE_SPILL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "cache/file_block_provider.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/table.h"

namespace dbtouch::storage {

struct SpillOptions {
  /// Rows per on-disk block. Callers that rebind into a BufferManager
  /// should match its rows_per_block so cache keys and file blocks agree.
  std::int64_t rows_per_block = 16'384;
  /// Serve reads from a read-only mmap of the file instead of pread.
  bool use_mmap = false;
  /// Reopen the file on every fetch (observability of deletion /
  /// permission changes; see FileProviderOptions).
  bool reopen_per_fetch = false;
  /// Start every block payload on a 4 KiB boundary (see
  /// cache::BlockFileWriterOptions::aligned_extents).
  bool aligned_extents = false;
  /// Spill and fault through O_DIRECT (implies aligned extents; falls
  /// back to buffered I/O where the filesystem refuses — tmpfs/CI).
  /// Ignored on the read side under use_mmap / reopen_per_fetch.
  bool use_direct = false;
};

class TableSpiller {
 public:
  /// `dir` must exist and be writable; spill files are created inside it
  /// as "<table>.<column>.dbb".
  explicit TableSpiller(std::string dir, SpillOptions options = {});

  /// Streams `table.column` into its block file and opens a provider over
  /// it (the column's dictionary rides along for string decoding).
  /// Overwrites any previous spill of the same column.
  Result<std::shared_ptr<cache::FileBlockProvider>> SpillColumn(
      const std::shared_ptr<const Table>& table, std::size_t column);

  /// Streams the whole table into one PAX block file — each block holds
  /// every column's minipage for its row range (storage/pax.h) — and
  /// opens a provider over it. One fault then makes a block's rows
  /// resident for *all* attributes, which is what a fat-table gesture
  /// probe touches. Overwrites any previous PAX spill of the table.
  Result<std::shared_ptr<cache::FileBlockProvider>> SpillTablePax(
      const std::shared_ptr<const Table>& table);

  std::string PathFor(const std::string& table, std::size_t column) const;
  std::string PaxPathFor(const std::string& table) const;

  const SpillOptions& options() const { return options_; }
  std::int64_t columns_spilled() const { return columns_spilled_; }
  std::int64_t bytes_written() const { return bytes_written_; }

 private:
  std::string dir_;
  SpillOptions options_;
  std::int64_t columns_spilled_ = 0;
  std::int64_t bytes_written_ = 0;
};

}  // namespace dbtouch::storage

#endif  // DBTOUCH_STORAGE_SPILL_H_
