#include "storage/dictionary.h"

#include "common/macros.h"

namespace dbtouch::storage {

std::int32_t Dictionary::Intern(std::string_view s) {
  const auto it = index_.find(std::string(s));
  if (it != index_.end()) {
    return it->second;
  }
  const std::int32_t code = static_cast<std::int32_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), code);
  return code;
}

std::int32_t Dictionary::Find(std::string_view s) const {
  const auto it = index_.find(std::string(s));
  return it == index_.end() ? -1 : it->second;
}

const std::string& Dictionary::Lookup(std::int32_t code) const {
  DBTOUCH_CHECK(code >= 0 &&
                code < static_cast<std::int32_t>(strings_.size()));
  return strings_[static_cast<std::size_t>(code)];
}

}  // namespace dbtouch::storage
