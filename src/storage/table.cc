#include "storage/table.h"

#include <mutex>
#include <utility>

#include "common/macros.h"

namespace dbtouch::storage {

/// Zero-copy paged source over a resident table column, gated against
/// spill reclamation: every pin registers in the table's pin counter
/// before touching the matrix, and ReleaseRaw refuses to free while any
/// pin is live — so operators holding block views (group-bys, joins,
/// summary cursors) can never dangle; a reclaim racing them fails
/// cleanly and is retried once gestures pause. Pins attempted after the
/// release fail with FailedPrecondition.
class GatedTableColumnSource final : public PagedColumnSource {
 public:
  GatedTableColumnSource(const Table* table, std::size_t column,
                         std::int64_t rows_per_block)
      : table_(table),
        column_(column),
        type_(table->schema().field(column).type),
        rows_per_block_(rows_per_block > 0
                            ? rows_per_block
                            : std::max<std::int64_t>(table->row_count(), 1)),
        row_count_(table->row_count()) {}

  DataType type() const override { return type_; }
  const Dictionary* dictionary() const override {
    return table_->dictionaries_[column_].get();
  }
  std::int64_t row_count() const override { return row_count_; }
  std::int64_t rows_per_block() const override { return rows_per_block_; }

  Result<BlockPin> PinBlock(std::int64_t block,
                            RowId /*row_hint*/ = -1) override {
    if (block < 0 || block >= num_blocks()) {
      return Status::OutOfRange("block " + std::to_string(block) +
                                " out of range");
    }
    // Register first, check second; ReleaseRaw flips the flag first and
    // checks the counter second — whichever interleaving, either the pin
    // sees the flag (and backs out) or the release sees the pin (and
    // backs out). seq_cst keeps the four accesses in one total order.
    table_->zero_copy_pins_.fetch_add(1, std::memory_order_seq_cst);
    if (table_->raw_released_.load(std::memory_order_seq_cst)) {
      table_->zero_copy_pins_.fetch_sub(1, std::memory_order_seq_cst);
      return Status::FailedPrecondition(
          "raw storage of table '" + table_->name() +
          "' was released after a spill; rebind through PagedColumnAt");
    }
    const RowId first = BlockFirstRow(block);
    const ColumnView view =
        table_->storage_.ColumnAt(column_, dictionary());
    return BlockPin(this, block, view.Slice(first, BlockRowCount(block)),
                    first);
  }

 protected:
  void UnpinBlock(std::int64_t /*block*/) override {
    table_->zero_copy_pins_.fetch_sub(1, std::memory_order_seq_cst);
  }

 private:
  const Table* table_;  // Borrowed; callers hold the owning shared_ptr.
  std::size_t column_;
  DataType type_;
  std::int64_t rows_per_block_;
  std::int64_t row_count_;
};

Table::Table(std::string name, Schema schema, MajorOrder order)
    : name_(std::move(name)),
      schema_(schema),
      storage_(schema, order),
      dictionaries_(schema_.num_fields()) {
  for (std::size_t c = 0; c < schema_.num_fields(); ++c) {
    if (schema_.field(c).type == DataType::kString) {
      dictionaries_[c] = std::make_shared<Dictionary>();
    }
  }
}

Result<std::shared_ptr<Table>> Table::FromColumns(std::string name,
                                                  std::vector<Column> columns,
                                                  MajorOrder order) {
  if (columns.empty()) {
    return Status::InvalidArgument("table needs at least one column");
  }
  const std::int64_t rows = columns[0].row_count();
  std::vector<Field> fields;
  fields.reserve(columns.size());
  for (const Column& c : columns) {
    if (c.row_count() != rows) {
      return Status::InvalidArgument(
          "column '" + c.name() + "' has " + std::to_string(c.row_count()) +
          " rows, expected " + std::to_string(rows));
    }
    fields.push_back(Field{c.name(), c.type()});
  }
  auto table =
      std::make_shared<Table>(std::move(name), Schema(std::move(fields)),
                              order);
  std::vector<const std::byte*> field_data;
  field_data.reserve(columns.size());
  for (const Column& c : columns) {
    field_data.push_back(c.raw_data());
  }
  table->storage_.AppendRowsColumnar(field_data, rows);
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (columns[c].type() == DataType::kString) {
      table->dictionaries_[c] = columns[c].dictionary();
    }
  }
  return table;
}

Status Table::AppendRow(const std::vector<Value>& row) {
  // The gate covers the whole append: a reclaim cannot free the matrix
  // between the released check and the mutation.
  const std::shared_lock<std::shared_mutex> lock(raw_mu_);
  if (raw_released_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "table '" + name_ + "' is spilled and frozen; cannot append");
  }
  if (row.size() != schema_.num_fields()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_fields()));
  }
  // Intern strings first so AppendRow sees only fixed-width values.
  std::vector<Value> encoded;
  encoded.reserve(row.size());
  for (std::size_t c = 0; c < row.size(); ++c) {
    const DataType t = schema_.field(c).type;
    if (t == DataType::kString) {
      if (!row[c].is_string()) {
        return Status::InvalidArgument("field " + std::to_string(c) +
                                       " expects a string value");
      }
      encoded.push_back(Value(static_cast<std::int64_t>(
          dictionaries_[c]->Intern(row[c].AsString()))));
    } else if (row[c].is_string()) {
      return Status::InvalidArgument("field " + std::to_string(c) +
                                     " is numeric but got a string");
    } else {
      encoded.push_back(row[c]);
    }
  }
  storage_.AppendRow(encoded);
  return Status::OK();
}

Value Table::GetValue(RowId row, std::size_t col) const {
  {
    const std::shared_lock<std::shared_mutex> lock(raw_mu_);
    if (!raw_released_.load(std::memory_order_acquire)) {
      const Value raw = storage_.GetCell(row, col);
      if (schema_.field(col).type == DataType::kString &&
          dictionaries_[col] != nullptr) {
        return Value(dictionaries_[col]->Lookup(
            static_cast<std::int32_t>(raw.AsInt())));
      }
      return raw;
    }
  }
  // Released: pin the covering block through the paged tier. The view
  // carries the provider's dictionary, so strings decode as before.
  const std::shared_ptr<PagedColumnSource>& source = paged_rebind_[col];
  Result<BlockPin> pin = source->PinBlock(source->BlockFor(row), row);
  DBTOUCH_CHECK(pin.ok());
  return pin->view().GetValue(row - pin->first_row());
}

ColumnView Table::ColumnViewAt(std::size_t col) const {
  DBTOUCH_CHECK(col < schema_.num_fields());
  // Raw views escape any lock scope, so they cannot exist at all once the
  // matrix may be freed; every surviving caller reads under WithRawColumn
  // or through PagedColumnAt.
  DBTOUCH_CHECK(!raw_released());
  return storage_.ColumnAt(col, dictionaries_[col].get());
}

Result<ColumnView> Table::ColumnViewByName(const std::string& name) const {
  DBTOUCH_ASSIGN_OR_RETURN(const std::size_t idx, schema_.FieldIndex(name));
  return ColumnViewAt(idx);
}

Status Table::WithRawColumn(
    std::size_t col,
    const std::function<Status(const ColumnView&)>& fn) const {
  DBTOUCH_CHECK(col < schema_.num_fields());
  const std::shared_lock<std::shared_mutex> lock(raw_mu_);
  if (raw_released_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "raw storage of table '" + name_ +
        "' was released after a spill; read the paged tier instead");
  }
  return fn(storage_.ColumnAt(col, dictionaries_[col].get()));
}

std::shared_ptr<PagedColumnSource> Table::PagedColumnAt(
    std::size_t col, std::int64_t rows_per_block) const {
  DBTOUCH_CHECK(col < schema_.num_fields());
  if (raw_released()) {
    return paged_rebind_[col];
  }
  return std::make_shared<GatedTableColumnSource>(this, col,
                                                  rows_per_block);
}

Column Table::ExtractColumn(std::size_t col) const {
  DBTOUCH_CHECK(col < schema_.num_fields());
  const Field& f = schema_.field(col);
  Column out(f.name, f.type);
  out.Reserve(row_count());
  // Block-at-a-time through whatever tier backs the column: raw slices on
  // a resident table, pinned cache blocks on a released one.
  PagedColumnCursor cursor(PagedColumnAt(col));
  for (RowId r = 0; r < row_count(); ++r) {
    switch (f.type) {
      case DataType::kInt32:
        out.AppendInt32(cursor.GetInt32(r));
        break;
      case DataType::kInt64:
        out.AppendInt64(cursor.GetInt64(r));
        break;
      case DataType::kFloat:
        out.AppendFloat(cursor.GetFloat(r));
        break;
      case DataType::kDouble:
        out.AppendDouble(cursor.GetDouble(r));
        break;
      case DataType::kString:
        // Codes are interned in row order, matching the original column's
        // dictionary order for first occurrences.
        out.AppendString(dictionaries_[col]->Lookup(cursor.GetInt32(r)));
        break;
    }
  }
  return out;
}

Status Table::ReplaceStorage(Matrix replacement) {
  const std::unique_lock<std::shared_mutex> lock(raw_mu_);
  if (raw_released_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "table '" + name_ +
        "' is spilled; its layout lives in the block files");
  }
  if (!(replacement.schema() == schema_)) {
    return Status::InvalidArgument("replacement schema mismatch");
  }
  if (replacement.row_count() != storage_.row_count()) {
    return Status::InvalidArgument("replacement row count mismatch");
  }
  storage_ = std::move(replacement);
  return Status::OK();
}

Status Table::ReleaseRaw(
    std::vector<std::shared_ptr<PagedColumnSource>> paged) {
  if (paged.size() != schema_.num_fields()) {
    return Status::InvalidArgument(
        "release needs one paged source per column: got " +
        std::to_string(paged.size()) + ", want " +
        std::to_string(schema_.num_fields()));
  }
  for (std::size_t c = 0; c < paged.size(); ++c) {
    if (paged[c] == nullptr) {
      return Status::InvalidArgument("null paged source for column " +
                                     std::to_string(c));
    }
    if (paged[c]->row_count() != row_count() ||
        paged[c]->type() != schema_.field(c).type) {
      return Status::InvalidArgument(
          "paged source geometry mismatch for column " + std::to_string(c) +
          " of table '" + name_ + "'");
    }
  }
  // Exclusive lock: every transient raw reader in flight drains first,
  // every later one observes the released state. Zero-copy pins
  // (GatedTableColumnSource) are longer-lived than a lock hold, so they
  // are handled by counter instead: flip the flag, then look for
  // survivors — a pin registers before checking the flag, so whichever
  // side moves second backs out. Live pins abort the release cleanly
  // (the matrix stays; the caller retries once gestures pause).
  const std::unique_lock<std::shared_mutex> lock(raw_mu_);
  if (raw_released_.load(std::memory_order_seq_cst)) {
    return Status::FailedPrecondition("raw storage of table '" + name_ +
                                      "' already released");
  }
  raw_released_.store(true, std::memory_order_seq_cst);
  if (zero_copy_pins_.load(std::memory_order_seq_cst) != 0) {
    raw_released_.store(false, std::memory_order_seq_cst);
    return Status::FailedPrecondition(
        "table '" + name_ +
        "' has live zero-copy pins; pause gestures and retry the reclaim");
  }
  paged_rebind_ = std::move(paged);
  storage_.ReleaseStorage();
  return Status::OK();
}

}  // namespace dbtouch::storage
