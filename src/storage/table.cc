#include "storage/table.h"

#include "common/macros.h"

namespace dbtouch::storage {

Table::Table(std::string name, Schema schema, MajorOrder order)
    : name_(std::move(name)),
      schema_(schema),
      storage_(schema, order),
      dictionaries_(schema_.num_fields()) {
  for (std::size_t c = 0; c < schema_.num_fields(); ++c) {
    if (schema_.field(c).type == DataType::kString) {
      dictionaries_[c] = std::make_shared<Dictionary>();
    }
  }
}

Result<std::shared_ptr<Table>> Table::FromColumns(std::string name,
                                                  std::vector<Column> columns,
                                                  MajorOrder order) {
  if (columns.empty()) {
    return Status::InvalidArgument("table needs at least one column");
  }
  const std::int64_t rows = columns[0].row_count();
  std::vector<Field> fields;
  fields.reserve(columns.size());
  for (const Column& c : columns) {
    if (c.row_count() != rows) {
      return Status::InvalidArgument(
          "column '" + c.name() + "' has " + std::to_string(c.row_count()) +
          " rows, expected " + std::to_string(rows));
    }
    fields.push_back(Field{c.name(), c.type()});
  }
  auto table =
      std::make_shared<Table>(std::move(name), Schema(std::move(fields)),
                              order);
  std::vector<const std::byte*> field_data;
  field_data.reserve(columns.size());
  for (const Column& c : columns) {
    field_data.push_back(c.raw_data());
  }
  table->storage_.AppendRowsColumnar(field_data, rows);
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (columns[c].type() == DataType::kString) {
      table->dictionaries_[c] = columns[c].dictionary();
    }
  }
  return table;
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != schema_.num_fields()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_fields()));
  }
  // Intern strings first so AppendRow sees only fixed-width values.
  std::vector<Value> encoded;
  encoded.reserve(row.size());
  for (std::size_t c = 0; c < row.size(); ++c) {
    const DataType t = schema_.field(c).type;
    if (t == DataType::kString) {
      if (!row[c].is_string()) {
        return Status::InvalidArgument("field " + std::to_string(c) +
                                       " expects a string value");
      }
      encoded.push_back(Value(static_cast<std::int64_t>(
          dictionaries_[c]->Intern(row[c].AsString()))));
    } else if (row[c].is_string()) {
      return Status::InvalidArgument("field " + std::to_string(c) +
                                     " is numeric but got a string");
    } else {
      encoded.push_back(row[c]);
    }
  }
  storage_.AppendRow(encoded);
  return Status::OK();
}

Value Table::GetValue(RowId row, std::size_t col) const {
  const Value raw = storage_.GetCell(row, col);
  if (schema_.field(col).type == DataType::kString &&
      dictionaries_[col] != nullptr) {
    return Value(
        dictionaries_[col]->Lookup(static_cast<std::int32_t>(raw.AsInt())));
  }
  return raw;
}

ColumnView Table::ColumnViewAt(std::size_t col) const {
  DBTOUCH_CHECK(col < schema_.num_fields());
  return storage_.ColumnAt(col, dictionaries_[col].get());
}

Result<ColumnView> Table::ColumnViewByName(const std::string& name) const {
  DBTOUCH_ASSIGN_OR_RETURN(const std::size_t idx, schema_.FieldIndex(name));
  return ColumnViewAt(idx);
}

std::shared_ptr<PagedColumnSource> Table::PagedColumnAt(
    std::size_t col, std::int64_t rows_per_block) const {
  return std::make_shared<UnpagedColumnSource>(ColumnViewAt(col),
                                               rows_per_block);
}

Column Table::ExtractColumn(std::size_t col) const {
  DBTOUCH_CHECK(col < schema_.num_fields());
  const Field& f = schema_.field(col);
  Column out(f.name, f.type);
  out.Reserve(row_count());
  const ColumnView view = ColumnViewAt(col);
  for (RowId r = 0; r < view.row_count(); ++r) {
    switch (f.type) {
      case DataType::kInt32:
        out.AppendInt32(view.GetInt32(r));
        break;
      case DataType::kInt64:
        out.AppendInt64(view.GetInt64(r));
        break;
      case DataType::kFloat:
        out.AppendFloat(view.GetFloat(r));
        break;
      case DataType::kDouble:
        out.AppendDouble(view.GetDouble(r));
        break;
      case DataType::kString:
        out.AppendString(dictionaries_[col]->Lookup(view.GetInt32(r)));
        break;
    }
  }
  return out;
}

Status Table::ReplaceStorage(Matrix replacement) {
  if (!(replacement.schema() == schema_)) {
    return Status::InvalidArgument("replacement schema mismatch");
  }
  if (replacement.row_count() != storage_.row_count()) {
    return Status::InvalidArgument("replacement row count mismatch");
  }
  storage_ = std::move(replacement);
  return Status::OK();
}

}  // namespace dbtouch::storage
