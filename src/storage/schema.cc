#include "storage/schema.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace dbtouch::storage {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  offsets_.reserve(fields_.size());
  for (const Field& f : fields_) {
    offsets_.push_back(row_width_);
    row_width_ += TypeWidth(f.type);
  }
}

Result<std::size_t> Schema::FieldIndex(const std::string& name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) {
      return i;
    }
  }
  return Status::NotFound("no field named '" + name + "'");
}

Schema Schema::Project(const std::vector<std::size_t>& indices) const {
  std::vector<Field> projected;
  projected.reserve(indices.size());
  for (const std::size_t i : indices) {
    DBTOUCH_CHECK(i < fields_.size());
    projected.push_back(fields_[i]);
  }
  return Schema(std::move(projected));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const Field& f : fields_) {
    parts.push_back(f.name + ":" + std::string(DataTypeName(f.type)));
  }
  return "(" + Join(parts, ", ") + ")";
}

}  // namespace dbtouch::storage
