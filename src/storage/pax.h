// PAX multi-column block layout (Ailamaki et al.'s Partition Attributes
// Across, the MonetDB/X100-style unit of I/O).
//
// One PAX block covers a row range of a whole table: the payload is the
// concatenation of per-column "minipages", each a densely packed array of
// that column's fields for the block's rows. A fat-table tuple therefore
// costs ONE block fault — every attribute of the tuple lives in the same
// payload — while each minipage is still a contiguous typed span the
// vectorized kernels can run over.
//
// Layout contract (see src/storage/README.md):
//   - Minipages are placed in DESCENDING field-width order (ties broken
//     by schema index, so the order is deterministic). Because widths are
//     4 or 8 bytes, every minipage offset `rows * prefix_width` is then
//     naturally aligned for its type with ZERO padding: once the 8-byte
//     columns are exhausted, only 4-byte columns remain.
//   - Payload size is exactly rows * row_bytes. No per-block header; the
//     geometry (rows per block, row byte width) lives in the file header,
//     the column types in the file's column directory.

#ifndef DBTOUCH_STORAGE_PAX_H_
#define DBTOUCH_STORAGE_PAX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/types.h"

namespace dbtouch::storage {

/// Describes how a PAX block payload is carved into per-column minipages.
/// Immutable after construction; cheap to copy.
class PaxLayout {
 public:
  /// `types[c]` is the field type of schema column c. Must be non-empty.
  explicit PaxLayout(std::vector<DataType> types);

  std::size_t num_columns() const { return types_.size(); }
  DataType type(std::size_t column) const { return types_[column]; }
  const std::vector<DataType>& types() const { return types_; }

  /// Bytes one row contributes to a block payload (sum of field widths).
  std::size_t row_bytes() const { return row_bytes_; }

  /// Byte offset of schema column `column`'s minipage inside the payload
  /// of a block holding `rows` rows.
  std::size_t MinipageOffset(std::int64_t rows, std::size_t column) const {
    return static_cast<std::size_t>(rows) * prefix_bytes_[column];
  }

  /// Bytes of schema column `column`'s minipage for a `rows`-row block.
  std::size_t MinipageBytes(std::int64_t rows, std::size_t column) const {
    return static_cast<std::size_t>(rows) * TypeWidth(types_[column]);
  }

  /// Total payload bytes of a `rows`-row block.
  std::size_t BlockBytes(std::int64_t rows) const {
    return static_cast<std::size_t>(rows) * row_bytes_;
  }

 private:
  std::vector<DataType> types_;
  // prefix_bytes_[c]: summed field widths of every minipage placed before
  // column c's (i.e. of wider columns, and equal-width columns with a
  // smaller schema index).
  std::vector<std::size_t> prefix_bytes_;
  std::size_t row_bytes_ = 0;
};

}  // namespace dbtouch::storage

#endif  // DBTOUCH_STORAGE_PAX_H_
