#include "storage/spill.h"

#include <utility>

#include "cache/block_provider.h"
#include "common/macros.h"

namespace dbtouch::storage {

TableSpiller::TableSpiller(std::string dir, SpillOptions options)
    : dir_(std::move(dir)), options_(options) {
  DBTOUCH_CHECK(options_.rows_per_block > 0);
}

std::string TableSpiller::PathFor(const std::string& table,
                                  std::size_t column) const {
  return dir_ + "/" + table + "." + std::to_string(column) + ".dbb";
}

Result<std::shared_ptr<cache::FileBlockProvider>> TableSpiller::SpillColumn(
    const std::shared_ptr<const Table>& table, std::size_t column) {
  if (table == nullptr) {
    return Status::InvalidArgument("null table");
  }
  if (column >= table->schema().num_fields()) {
    return Status::OutOfRange("column " + std::to_string(column) +
                              " out of range for table '" + table->name() +
                              "'");
  }
  // The table provider already knows how to densify one block out of
  // either layout; the spill is its blocks streamed to disk in order.
  cache::TableBlockProvider reader(table, column, options_.rows_per_block);
  const std::string path = PathFor(table->name(), column);
  cache::BlockFileWriter writer(path, reader.geometry());
  for (std::int64_t block = 0; block < reader.geometry().num_blocks();
       ++block) {
    DBTOUCH_ASSIGN_OR_RETURN(const std::vector<std::byte> payload,
                             reader.Fetch(block));
    DBTOUCH_RETURN_IF_ERROR(writer.Append(payload.data(), payload.size()));
  }
  DBTOUCH_RETURN_IF_ERROR(writer.Finish());

  cache::FileProviderOptions provider_options;
  provider_options.use_mmap = options_.use_mmap;
  provider_options.reopen_per_fetch = options_.reopen_per_fetch;
  DBTOUCH_ASSIGN_OR_RETURN(
      std::shared_ptr<cache::FileBlockProvider> provider,
      cache::FileBlockProvider::Open(path, provider_options,
                                     table->dictionary(column)));
  ++columns_spilled_;
  bytes_written_ += writer.bytes_written();
  return provider;
}

}  // namespace dbtouch::storage
