#include "storage/spill.h"

#include <cstring>
#include <utility>

#include "cache/block_provider.h"
#include "common/macros.h"
#include "storage/pax.h"

namespace dbtouch::storage {

TableSpiller::TableSpiller(std::string dir, SpillOptions options)
    : dir_(std::move(dir)), options_(options) {
  DBTOUCH_CHECK(options_.rows_per_block > 0);
}

std::string TableSpiller::PathFor(const std::string& table,
                                  std::size_t column) const {
  return dir_ + "/" + table + "." + std::to_string(column) + ".dbb";
}

std::string TableSpiller::PaxPathFor(const std::string& table) const {
  return dir_ + "/" + table + ".pax.dbb";
}

Result<std::shared_ptr<cache::FileBlockProvider>> TableSpiller::SpillColumn(
    const std::shared_ptr<const Table>& table, std::size_t column) {
  if (table == nullptr) {
    return Status::InvalidArgument("null table");
  }
  if (column >= table->schema().num_fields()) {
    return Status::OutOfRange("column " + std::to_string(column) +
                              " out of range for table '" + table->name() +
                              "'");
  }
  // The table provider already knows how to densify one block out of
  // either layout; the spill is its blocks streamed to disk in order.
  cache::TableBlockProvider reader(table, column, options_.rows_per_block);
  const std::string path = PathFor(table->name(), column);
  cache::BlockFileWriterOptions writer_options;
  writer_options.aligned_extents = options_.aligned_extents;
  writer_options.use_direct = options_.use_direct;
  cache::BlockFileWriter writer(path, reader.geometry(), writer_options);
  for (std::int64_t block = 0; block < reader.geometry().num_blocks();
       ++block) {
    DBTOUCH_ASSIGN_OR_RETURN(const std::vector<std::byte> payload,
                             reader.Fetch(block));
    DBTOUCH_RETURN_IF_ERROR(writer.Append(payload.data(), payload.size()));
  }
  DBTOUCH_RETURN_IF_ERROR(writer.Finish());

  cache::FileProviderOptions provider_options;
  provider_options.use_mmap = options_.use_mmap;
  provider_options.reopen_per_fetch = options_.reopen_per_fetch;
  provider_options.use_direct = options_.use_direct;
  DBTOUCH_ASSIGN_OR_RETURN(
      std::shared_ptr<cache::FileBlockProvider> provider,
      cache::FileBlockProvider::Open(path, provider_options,
                                     table->dictionary(column)));
  ++columns_spilled_;
  bytes_written_ += writer.bytes_written();
  return provider;
}

Result<std::shared_ptr<cache::FileBlockProvider>>
TableSpiller::SpillTablePax(const std::shared_ptr<const Table>& table) {
  if (table == nullptr) {
    return Status::InvalidArgument("null table");
  }
  const std::size_t num_columns = table->schema().num_fields();
  if (num_columns == 0) {
    return Status::InvalidArgument("table '" + table->name() +
                                   "' has no columns");
  }
  std::vector<DataType> types;
  types.reserve(num_columns);
  for (std::size_t c = 0; c < num_columns; ++c) {
    types.push_back(table->schema().field(c).type);
  }
  const PaxLayout layout(types);

  // One per-column streaming reader; each PAX block is the columns'
  // same-index blocks scattered into their minipage slots. Still O(block)
  // memory: only one block of each column is live at a time.
  std::vector<std::unique_ptr<cache::TableBlockProvider>> readers;
  readers.reserve(num_columns);
  for (std::size_t c = 0; c < num_columns; ++c) {
    readers.push_back(std::make_unique<cache::TableBlockProvider>(
        table, c, options_.rows_per_block));
  }

  cache::BlockGeometry geometry;
  geometry.type = types[0];
  geometry.row_count = readers[0]->geometry().row_count;
  geometry.rows_per_block = options_.rows_per_block;
  geometry.row_bytes = layout.row_bytes();

  const std::string path = PaxPathFor(table->name());
  cache::BlockFileWriterOptions writer_options;
  writer_options.aligned_extents = options_.aligned_extents;
  writer_options.use_direct = options_.use_direct;
  writer_options.pax_columns = types;
  cache::BlockFileWriter writer(path, geometry, writer_options);
  std::vector<std::byte> block_payload;
  for (std::int64_t block = 0; block < geometry.num_blocks(); ++block) {
    const std::int64_t rows = geometry.BlockRowCount(block);
    block_payload.assign(layout.BlockBytes(rows), std::byte{0});
    for (std::size_t c = 0; c < num_columns; ++c) {
      DBTOUCH_ASSIGN_OR_RETURN(const std::vector<std::byte> minipage,
                               readers[c]->Fetch(block));
      DBTOUCH_CHECK(minipage.size() == layout.MinipageBytes(rows, c));
      std::memcpy(block_payload.data() + layout.MinipageOffset(rows, c),
                  minipage.data(), minipage.size());
    }
    DBTOUCH_RETURN_IF_ERROR(
        writer.Append(block_payload.data(), block_payload.size()));
  }
  DBTOUCH_RETURN_IF_ERROR(writer.Finish());

  cache::FileProviderOptions provider_options;
  provider_options.use_mmap = options_.use_mmap;
  provider_options.reopen_per_fetch = options_.reopen_per_fetch;
  provider_options.use_direct = options_.use_direct;
  std::vector<std::shared_ptr<Dictionary>> dictionaries;
  dictionaries.reserve(num_columns);
  for (std::size_t c = 0; c < num_columns; ++c) {
    dictionaries.push_back(table->dictionary(c));
  }
  DBTOUCH_ASSIGN_OR_RETURN(
      std::shared_ptr<cache::FileBlockProvider> provider,
      cache::FileBlockProvider::Open(path, provider_options, nullptr,
                                     std::move(dictionaries)));
  ++columns_spilled_;
  bytes_written_ += writer.bytes_written();
  return provider;
}

}  // namespace dbtouch::storage
