#include "storage/value.h"

#include <cstdio>

#include "common/macros.h"

namespace dbtouch::storage {

std::int64_t Value::AsInt() const {
  DBTOUCH_CHECK(is_int());
  return std::get<std::int64_t>(v_);
}

double Value::AsDouble() const {
  DBTOUCH_CHECK(is_double());
  return std::get<double>(v_);
}

const std::string& Value::AsString() const {
  DBTOUCH_CHECK(is_string());
  return std::get<std::string>(v_);
}

double Value::ToDouble() const {
  if (is_int()) {
    return static_cast<double>(std::get<std::int64_t>(v_));
  }
  DBTOUCH_CHECK(is_double());
  return std::get<double>(v_);
}

std::string Value::ToString() const {
  if (is_string()) {
    return std::get<std::string>(v_);
  }
  if (is_int()) {
    return std::to_string(std::get<std::int64_t>(v_));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", std::get<double>(v_));
  return buf;
}

}  // namespace dbtouch::storage
