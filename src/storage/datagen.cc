#include "storage/datagen.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/macros.h"

namespace dbtouch::storage {

Column GenUniformInt32(std::string name, std::int64_t n, std::int32_t lo,
                       std::int32_t hi, std::uint64_t seed) {
  DBTOUCH_CHECK(lo <= hi);
  Rng rng(seed);
  Column c(std::move(name), DataType::kInt32);
  c.Reserve(n);
  for (std::int64_t i = 0; i < n; ++i) {
    c.AppendInt32(static_cast<std::int32_t>(rng.NextInt64(lo, hi)));
  }
  return c;
}

Column GenGaussianDouble(std::string name, std::int64_t n, double mean,
                         double stddev, std::uint64_t seed) {
  Rng rng(seed);
  Column c(std::move(name), DataType::kDouble);
  c.Reserve(n);
  for (std::int64_t i = 0; i < n; ++i) {
    c.AppendDouble(mean + stddev * rng.NextGaussian());
  }
  return c;
}

Column GenZipfInt32(std::string name, std::int64_t n,
                    std::int64_t num_distinct, double skew,
                    std::uint64_t seed) {
  Rng rng(seed);
  const ZipfDistribution zipf(static_cast<std::uint64_t>(num_distinct), skew);
  Column c(std::move(name), DataType::kInt32);
  c.Reserve(n);
  for (std::int64_t i = 0; i < n; ++i) {
    c.AppendInt32(static_cast<std::int32_t>(zipf.Sample(rng)));
  }
  return c;
}

Column GenSequenceInt64(std::string name, std::int64_t n, std::int64_t start,
                        std::int64_t step) {
  Column c(std::move(name), DataType::kInt64);
  c.Reserve(n);
  for (std::int64_t i = 0; i < n; ++i) {
    c.AppendInt64(start + i * step);
  }
  return c;
}

Column GenSinusoidDouble(std::string name, std::int64_t n, double amplitude,
                         double period, double noise_stddev,
                         std::uint64_t seed) {
  DBTOUCH_CHECK(period > 0.0);
  Rng rng(seed);
  Column c(std::move(name), DataType::kDouble);
  c.Reserve(n);
  for (std::int64_t i = 0; i < n; ++i) {
    const double base =
        amplitude *
        std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / period);
    c.AppendDouble(base + noise_stddev * rng.NextGaussian());
  }
  return c;
}

Column GenSegmentedDouble(std::string name, std::int64_t n,
                          const std::vector<double>& segment_means,
                          double noise_stddev, std::uint64_t seed) {
  DBTOUCH_CHECK(!segment_means.empty());
  Rng rng(seed);
  Column c(std::move(name), DataType::kDouble);
  c.Reserve(n);
  const std::int64_t num_segments =
      static_cast<std::int64_t>(segment_means.size());
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t seg =
        std::min(num_segments - 1, i * num_segments / std::max<std::int64_t>(n, 1));
    c.AppendDouble(segment_means[static_cast<std::size_t>(seg)] +
                   noise_stddev * rng.NextGaussian());
  }
  return c;
}

Column GenCategorical(std::string name, std::int64_t n,
                      const std::vector<std::string>& categories,
                      std::uint64_t seed) {
  DBTOUCH_CHECK(!categories.empty());
  Rng rng(seed);
  Column c(std::move(name), DataType::kString);
  c.Reserve(n);
  for (std::int64_t i = 0; i < n; ++i) {
    c.AppendString(
        categories[rng.NextBounded(categories.size())]);
  }
  return c;
}

std::vector<RowId> InjectOutliers(Column& column, double fraction,
                                  double magnitude, std::uint64_t seed) {
  DBTOUCH_CHECK(column.type() == DataType::kDouble);
  DBTOUCH_CHECK(fraction >= 0.0 && fraction <= 1.0);
  Rng rng(seed);
  const std::int64_t n = column.row_count();
  const auto count = static_cast<std::int64_t>(
      fraction * static_cast<double>(n));
  std::vector<RowId> rows;
  rows.reserve(static_cast<std::size_t>(count));
  // Rebuild the column with spikes planted at sampled rows.
  std::vector<bool> is_outlier(static_cast<std::size_t>(n), false);
  for (std::int64_t i = 0; i < count; ++i) {
    RowId r;
    do {
      r = static_cast<RowId>(rng.NextBounded(static_cast<std::uint64_t>(n)));
    } while (is_outlier[static_cast<std::size_t>(r)]);
    is_outlier[static_cast<std::size_t>(r)] = true;
    rows.push_back(r);
  }
  const ColumnView view = column.View();
  Column rebuilt(column.name(), DataType::kDouble);
  rebuilt.Reserve(n);
  for (RowId r = 0; r < n; ++r) {
    if (is_outlier[static_cast<std::size_t>(r)]) {
      const double sign = rng.NextBernoulli(0.5) ? 1.0 : -1.0;
      rebuilt.AppendDouble(sign * magnitude);
    } else {
      rebuilt.AppendDouble(view.GetDouble(r));
    }
  }
  column = std::move(rebuilt);
  std::sort(rows.begin(), rows.end());
  return rows;
}

Column MakePaperEvalColumn(std::int64_t n, std::uint64_t seed) {
  return GenUniformInt32("values", n, 0, 1'000'000, seed);
}

std::shared_ptr<Table> MakeSkyTable(
    std::int64_t n, std::uint64_t seed,
    std::vector<RowId>* planted_transients,
    std::vector<std::pair<RowId, RowId>>* burst_regions) {
  Rng rng(seed);
  std::vector<Column> cols;
  cols.push_back(GenSequenceInt64("object_id", n, 1, 1));
  cols.push_back(
      GenGaussianDouble("right_ascension", n, 180.0, 60.0, rng.NextUint64()));
  cols.push_back(
      GenGaussianDouble("declination", n, 0.0, 30.0, rng.NextUint64()));
  Column base =
      GenSinusoidDouble("brightness", n, 2.0, static_cast<double>(n) / 8.0,
                        0.3, rng.NextUint64());
  // Burst regions at fixed sky fractions, each ~1% of the survey.
  const double burst_centers[] = {0.18, 0.43, 0.67, 0.88};
  const std::int64_t half_width = std::max<std::int64_t>(n / 200, 1);
  std::vector<std::pair<RowId, RowId>> bursts;
  for (const double c : burst_centers) {
    const RowId center = static_cast<RowId>(c * static_cast<double>(n));
    bursts.emplace_back(std::max<RowId>(center - half_width, 0),
                        std::min<RowId>(center + half_width, n - 1));
  }
  Column brightness("brightness", DataType::kDouble);
  brightness.Reserve(n);
  const ColumnView base_view = base.View();
  std::size_t next_burst = 0;
  for (RowId r = 0; r < n; ++r) {
    double v = base_view.GetDouble(r);
    while (next_burst < bursts.size() && r > bursts[next_burst].second) {
      ++next_burst;
    }
    if (next_burst < bursts.size() && r >= bursts[next_burst].first &&
        r <= bursts[next_burst].second) {
      v += 20.0;
    }
    brightness.AppendDouble(v);
  }
  if (burst_regions != nullptr) {
    *burst_regions = std::move(bursts);
  }
  // Point transients last, so they overwrite rather than stack with
  // bursts and always reach full |25| magnitude.
  auto planted = InjectOutliers(brightness, 0.0005, 25.0, rng.NextUint64());
  if (planted_transients != nullptr) {
    *planted_transients = std::move(planted);
  }
  cols.push_back(std::move(brightness));
  auto table = Table::FromColumns("sky", std::move(cols));
  DBTOUCH_CHECK_OK(table.status());
  return std::move(table).value();
}

std::shared_ptr<Table> MakeMonitoringTable(
    std::int64_t n, std::uint64_t seed, std::vector<RowId>* planted_spikes) {
  Rng rng(seed);
  std::vector<Column> cols;
  cols.push_back(GenSequenceInt64("timestamp", n, 1'357'000'000, 60));
  cols.push_back(GenCategorical(
      "host", n, {"web-1", "web-2", "db-1", "db-2", "cache-1"},
      rng.NextUint64()));
  Column latency = GenSegmentedDouble(
      "latency_ms", n, {12.0, 14.0, 11.0, 55.0, 13.0, 12.5, 90.0, 12.0}, 2.0,
      rng.NextUint64());
  auto planted = InjectOutliers(latency, 0.001, 400.0, rng.NextUint64());
  if (planted_spikes != nullptr) {
    *planted_spikes = std::move(planted);
  }
  cols.push_back(std::move(latency));
  cols.push_back(
      GenGaussianDouble("error_rate", n, 0.01, 0.002, rng.NextUint64()));
  auto table = Table::FromColumns("monitoring", std::move(cols));
  DBTOUCH_CHECK_OK(table.status());
  return std::move(table).value();
}

}  // namespace dbtouch::storage
