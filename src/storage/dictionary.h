// Dictionary encoding for string attributes: maps each distinct string to a
// dense int32 code so string columns stay fixed-width (paper Section 2.6).

#ifndef DBTOUCH_STORAGE_DICTIONARY_H_
#define DBTOUCH_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dbtouch::storage {

class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the code for `s`, inserting it if unseen. Codes are dense and
  /// assigned in first-seen order.
  std::int32_t Intern(std::string_view s);

  /// Returns the code for `s`, or -1 if absent (does not insert).
  std::int32_t Find(std::string_view s) const;

  /// The string for a valid code. CHECK-fails on out-of-range codes.
  const std::string& Lookup(std::int32_t code) const;

  std::int64_t size() const {
    return static_cast<std::int64_t>(strings_.size());
  }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, std::int32_t> index_;
};

}  // namespace dbtouch::storage

#endif  // DBTOUCH_STORAGE_DICTIONARY_H_
