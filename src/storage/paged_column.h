// Paged column access: the read path for data that may not be resident.
//
// The paper's kernel reads columns through raw whole-column pointers, which
// assumes every column fits in memory. The paged path splits a column into
// fixed-size blocks and hands out per-block ColumnView slices through an
// abstract PagedColumnSource, so the same operator code runs against
//
//   - UnpagedColumnSource: zero-copy slices of an in-memory column (the
//     classic single-user setup, no cache involved), or
//   - cache::BufferManager sources: blocks pinned in a bounded block cache
//     and faulted in from a BlockProvider (base table or remote store).
//
// A BlockPin is the RAII pin token: while it lives, the block's bytes stay
// valid; its destructor returns the block to the source. PagedColumnCursor
// wraps a source with a one-block working buffer for row-at-a-time reads —
// a slide that stays inside one block re-pins nothing.

#ifndef DBTOUCH_STORAGE_PAGED_COLUMN_H_
#define DBTOUCH_STORAGE_PAGED_COLUMN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "common/result.h"
#include "storage/column.h"
#include "storage/types.h"

namespace dbtouch::storage {

class PagedColumnSource;

/// Typed contiguous window over one pinned block: `data[i]` is base row
/// `first_row + i`, for i in [0, rows). `data` is null when the block
/// cannot be exposed as a packed T array (strided layout, type/width
/// mismatch, misalignment) — callers fall back to per-row view() reads.
/// The pointer borrows the pin's storage: it is valid only while the
/// BlockPin that produced it lives.
template <typename T>
struct BlockSpan {
  const T* data = nullptr;
  RowId first_row = 0;
  std::int64_t rows = 0;

  explicit operator bool() const { return data != nullptr; }
};

/// RAII pin over one block of a paged column. While valid, `view()` reads
/// the block's fields (rows local to the block); destruction unpins.
class BlockPin {
 public:
  BlockPin() = default;
  BlockPin(PagedColumnSource* source, std::int64_t block, ColumnView view,
           RowId first_row)
      : source_(source), block_(block), view_(view), first_row_(first_row) {}

  BlockPin(const BlockPin&) = delete;
  BlockPin& operator=(const BlockPin&) = delete;
  BlockPin(BlockPin&& other) noexcept { *this = std::move(other); }
  BlockPin& operator=(BlockPin&& other) noexcept {
    if (this != &other) {
      Release();
      source_ = std::exchange(other.source_, nullptr);
      block_ = other.block_;
      view_ = other.view_;
      first_row_ = other.first_row_;
    }
    return *this;
  }
  ~BlockPin() { Release(); }

  bool valid() const { return source_ != nullptr; }
  /// Rows in the view are block-local: base row r maps to r - first_row().
  const ColumnView& view() const { return view_; }
  /// The source this pin holds a block of (callers juggling pins over
  /// several sources — the kernel's multi-column table probe — need it to
  /// tell same-index blocks of different columns apart).
  PagedColumnSource* source() const { return source_; }
  std::int64_t block() const { return block_; }
  RowId first_row() const { return first_row_; }
  RowId last_row() const { return first_row_ + view_.row_count() - 1; }
  bool Covers(RowId row) const {
    return valid() && row >= first_row_ && row <= last_row();
  }

  /// The block as a typed contiguous span (see BlockSpan). Span lifetime
  /// is this pin's lifetime.
  template <typename T>
  BlockSpan<T> Span() const {
    BlockSpan<T> span;
    span.data = view_.TypedData<T>();
    span.first_row = first_row_;
    span.rows = view_.row_count();
    return span;
  }

  void Release();

 private:
  PagedColumnSource* source_ = nullptr;
  std::int64_t block_ = 0;
  ColumnView view_;
  RowId first_row_ = 0;
};

/// A column readable block-at-a-time. Implementations decide where block
/// bytes live (in place, in a buffer pool, behind a network).
class PagedColumnSource {
 public:
  virtual ~PagedColumnSource() = default;

  virtual DataType type() const = 0;
  virtual const Dictionary* dictionary() const { return nullptr; }
  virtual std::int64_t row_count() const = 0;
  virtual std::int64_t rows_per_block() const = 0;

  /// Residency-sharing identity: two sources with equal tokens pin the
  /// same underlying blocks (same block index -> same backing bytes), so
  /// a caller holding a pin from one may treat that block as resident
  /// for the other. Per-column readers of one PAX multi-column block
  /// file share a token; standalone sources are their own token.
  virtual std::uintptr_t share_token() const {
    return reinterpret_cast<std::uintptr_t>(this);
  }

  std::int64_t num_blocks() const {
    const std::int64_t rpb = rows_per_block();
    return rpb == 0 ? 0 : (row_count() + rpb - 1) / rpb;
  }
  std::int64_t BlockFor(RowId row) const { return row / rows_per_block(); }
  RowId BlockFirstRow(std::int64_t block) const {
    return block * rows_per_block();
  }
  std::int64_t BlockRowCount(std::int64_t block) const;

  /// Pins `block`. `row_hint` is the base row whose touch caused the pin;
  /// caching sources feed it to their gesture-aware admission policy
  /// (pass -1 when no touch drives the read).
  ///
  /// Error contract: a non-OK result means the caller broke the source's
  /// invariants (block out of range, backing data changed underneath) or a
  /// backing-store read failed past its bounded retries. Callers that
  /// probe residency first (the kernel's pre-touch probe) surface the
  /// Status; PagedColumnCursor — which reads only pre-validated rows —
  /// still treats a pin failure as fatal.
  virtual Result<BlockPin> PinBlock(std::int64_t block,
                                    RowId row_hint = -1) = 0;

  /// Completion signal for StartFetch: OK once the block is resident (a
  /// TryPinBlock after the callback is guaranteed to hit), else the
  /// fetch's final error after bounded retries. May run on a fetcher
  /// thread; must be cheap and non-blocking.
  using FetchCompletion = std::function<void(const Status&)>;

  /// Non-blocking pin: the pin when the block is resident — or can be
  /// materialised immediately (in-memory tiers) — and nullopt when pinning
  /// would wait on a slow fetch. Pair with StartFetch to suspend instead
  /// of stalling. Default: delegate to PinBlock (nothing to wait for).
  virtual Result<std::optional<BlockPin>> TryPinBlock(std::int64_t block,
                                                      RowId row_hint = -1) {
    auto pin = PinBlock(block, row_hint);
    if (!pin.ok()) {
      return pin.status();
    }
    return std::optional<BlockPin>(std::move(*pin));
  }

  /// True when TryPinBlock can return nullopt — i.e. reads may fault from
  /// a slow tier and callers should be prepared to suspend.
  virtual bool may_block() const { return false; }

  /// Begins an asynchronous demand fetch of `block`; `done` fires when it
  /// completes (possibly inline for immediate sources). `tag` names the
  /// requesting party (the touch server passes its session id, 0 =
  /// untagged) so still-queued fetches can be cancelled when the party
  /// goes away. Returns non-OK only when the fetch cannot even be
  /// scheduled.
  virtual Status StartFetch(std::int64_t block, FetchCompletion done,
                            std::uint64_t tag = 0) {
    (void)block;
    (void)tag;
    if (done != nullptr) {
      done(Status::OK());
    }
    return Status::OK();
  }

  /// Hints that a contiguous block run [first_block, last_block] is about
  /// to be read (a cold summary band): a caching source materialises the
  /// missing stretches with ranged backing reads — one round trip per
  /// stretch instead of one per block — before the per-block pins run.
  /// Default: no-op (immediate sources have no round trips to batch).
  /// Non-OK mirrors PinBlock's contract: the backing read failed past its
  /// bounded retries.
  virtual Status Preload(std::int64_t first_block, std::int64_t last_block) {
    (void)first_block;
    (void)last_block;
    return Status::OK();
  }

  /// Hints that `block` will likely be touched soon (the prefetcher's
  /// extrapolated slide path). Low priority: demand fetches preempt.
  /// Returns true iff a warm-up fetch was actually enqueued (false when
  /// the block is already resident or the source is immediate), so
  /// callers budget against real fetches, not no-op hints.
  virtual bool RequestPrefetch(std::int64_t block) {
    (void)block;
    return false;
  }

  /// Ranged sibling of RequestPrefetch: the extrapolator predicted the
  /// whole slide path [first_block, last_block], so the horizon should
  /// express itself in the read size — a caching source turns each missing
  /// stretch into ONE ranged warm-up ticket (one backing read) instead of
  /// block-by-block enqueues re-merged at pop time. At most
  /// `max_new_blocks` blocks are actually enqueued (already-resident or
  /// already-queued blocks are free); returns how many were. Default:
  /// per-block loop, same budget semantics.
  virtual std::int64_t RequestPrefetchRange(std::int64_t first_block,
                                            std::int64_t last_block,
                                            std::int64_t max_new_blocks) {
    std::int64_t issued = 0;
    for (std::int64_t block = first_block;
         block <= last_block && issued < max_new_blocks; ++block) {
      if (RequestPrefetch(block)) {
        ++issued;
      }
    }
    return issued;
  }

  /// The gesture driving reads of this column paused — a caching source
  /// re-enables admission for it. No-op for sources without a policy.
  virtual void OnGesturePause() {}

 protected:
  friend class BlockPin;
  /// Called exactly once when a pin handed out by PinBlock releases.
  virtual void UnpinBlock(std::int64_t block) = 0;
};

/// Zero-copy source over an in-memory ColumnView: blocks are slices of the
/// backing storage, pinning is free. `rows_per_block` 0 = the whole column
/// as one block.
class UnpagedColumnSource final : public PagedColumnSource {
 public:
  explicit UnpagedColumnSource(ColumnView column,
                               std::int64_t rows_per_block = 0);

  DataType type() const override { return column_.type(); }
  const Dictionary* dictionary() const override {
    return column_.dictionary();
  }
  std::int64_t row_count() const override { return column_.row_count(); }
  std::int64_t rows_per_block() const override { return rows_per_block_; }
  Result<BlockPin> PinBlock(std::int64_t block, RowId row_hint = -1) override;

 protected:
  void UnpinBlock(std::int64_t block) override;

 private:
  ColumnView column_;
  std::int64_t rows_per_block_;
};

/// Row-at-a-time reads over a paged source, holding the current block
/// pinned as a working buffer. Move-only (owns a pin).
class PagedColumnCursor {
 public:
  PagedColumnCursor() = default;
  explicit PagedColumnCursor(std::shared_ptr<PagedColumnSource> source)
      : source_(std::move(source)) {}
  /// Convenience: wraps an in-memory column in an UnpagedColumnSource.
  explicit PagedColumnCursor(ColumnView column)
      : source_(std::make_shared<UnpagedColumnSource>(column)) {}

  bool valid() const { return source_ != nullptr; }
  DataType type() const { return source_->type(); }
  std::int64_t row_count() const { return source_->row_count(); }
  bool InRange(RowId row) const {
    return row >= 0 && row < source_->row_count();
  }

  /// Point reads; the caller guarantees InRange. Crossing a block boundary
  /// swaps the working pin. The in-range fast path is two compares against
  /// the cached span bounds — no per-row residency probe.
  double GetAsDouble(RowId row) {
    return Ensure(row).GetAsDouble(row - span_first_);
  }
  Value GetValue(RowId row);

  /// Typed point reads (the caller guarantees the type, as with
  /// ColumnView): what lets paged readers copy fields bit-exactly — the
  /// sample-hierarchy build path over a spilled base must produce the same
  /// bytes it produced from the raw matrix.
  std::int32_t GetInt32(RowId row) {
    return Ensure(row).GetInt32(row - span_first_);
  }
  std::int64_t GetInt64(RowId row) {
    return Ensure(row).GetInt64(row - span_first_);
  }
  float GetFloat(RowId row) {
    return Ensure(row).GetFloat(row - span_first_);
  }
  double GetDouble(RowId row) {
    return Ensure(row).GetDouble(row - span_first_);
  }

  /// Block-at-a-time scan of base rows [first, last], both clamped to the
  /// column. `fn` sees each overlapping block's slice (rows local to the
  /// slice) with the base row its first entry maps to. Rows are visited in
  /// ascending order, each exactly once.
  void Scan(RowId first, RowId last,
            const std::function<void(const ColumnView& rows,
                                     RowId first_row)>& fn);

  /// Drops the working pin (returns the block to its cache).
  void ReleasePin() {
    pin_ = BlockPin();
    span_view_ = ColumnView();
    span_first_ = 0;
    span_last_ = -1;
  }

  const std::shared_ptr<PagedColumnSource>& source() const { return source_; }

 private:
  /// The view over the block covering `row`. Fast path: `row` is inside
  /// the cached span of the working pin, no call leaves the header.
  const ColumnView& Ensure(RowId row) {
    if (row < span_first_ || row > span_last_) {
      return EnsureSlow(row);
    }
    return span_view_;
  }

  /// Pins the block covering `row` and refreshes the cached span bounds.
  const ColumnView& EnsureSlow(RowId row);

  std::shared_ptr<PagedColumnSource> source_;
  BlockPin pin_;
  // Cached bounds + view of the working pin: [span_first_, span_last_]
  // (empty when span_last_ < span_first_). Mirrors pin_; invalidated by
  // ReleasePin.
  ColumnView span_view_;
  RowId span_first_ = 0;
  RowId span_last_ = -1;
};

}  // namespace dbtouch::storage

#endif  // DBTOUCH_STORAGE_PAGED_COLUMN_H_
