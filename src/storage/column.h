// Column (owning, growable) and ColumnView (non-owning, strided).
//
// ColumnView is the read path every operator consumes: it abstracts over
// column-major storage (stride == field width), row-major storage
// (stride == row width) and sample copies, so the same operator code runs
// against any layout — which is what lets the rotate gesture change layout
// without touching the executor.

#ifndef DBTOUCH_STORAGE_COLUMN_H_
#define DBTOUCH_STORAGE_COLUMN_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "storage/dictionary.h"
#include "storage/memory_tracker.h"
#include "storage/types.h"
#include "storage/value.h"

namespace dbtouch::storage {

/// Non-owning view over `row_count` fixed-width fields starting at `data`,
/// `stride` bytes apart. The typed getters CHECK type in debug via asserts
/// in callers; reads use memcpy so unaligned row-major access is defined.
class ColumnView {
 public:
  ColumnView() = default;
  ColumnView(DataType type, const std::byte* data, std::size_t stride,
             std::int64_t row_count, const Dictionary* dictionary = nullptr)
      : type_(type),
        data_(data),
        stride_(stride),
        row_count_(row_count),
        dictionary_(dictionary) {}

  DataType type() const { return type_; }
  std::int64_t row_count() const { return row_count_; }
  std::size_t stride() const { return stride_; }
  const std::byte* data() const { return data_; }
  const Dictionary* dictionary() const { return dictionary_; }

  bool InRange(RowId row) const { return row >= 0 && row < row_count_; }

  /// True when fields are densely packed (stride == field width) — the
  /// layout the span kernels can iterate as a typed array.
  bool contiguous() const { return stride_ == TypeWidth(type_); }

  /// Typed pointer to the packed fields, or nullptr when the view is
  /// strided (row-major), the requested width does not match the field
  /// width, or the storage is not naturally aligned for T. Callers fall
  /// back to the per-row getters on nullptr; a non-null result is valid
  /// for direct indexing p[0..row_count).
  template <typename T>
  const T* TypedData() const {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!contiguous() || sizeof(T) != TypeWidth(type_)) {
      return nullptr;
    }
    if (reinterpret_cast<std::uintptr_t>(data_) % alignof(T) != 0) {
      return nullptr;
    }
    return reinterpret_cast<const T*>(data_);
  }

  std::int32_t GetInt32(RowId row) const { return Load<std::int32_t>(row); }
  std::int64_t GetInt64(RowId row) const { return Load<std::int64_t>(row); }
  float GetFloat(RowId row) const { return Load<float>(row); }
  double GetDouble(RowId row) const { return Load<double>(row); }

  /// Numeric value of the field as double; string fields yield their
  /// dictionary code (the only numeric view a string has).
  double GetAsDouble(RowId row) const {
    switch (type_) {
      case DataType::kInt32:
        return static_cast<double>(Load<std::int32_t>(row));
      case DataType::kInt64:
        return static_cast<double>(Load<std::int64_t>(row));
      case DataType::kFloat:
        return static_cast<double>(Load<float>(row));
      case DataType::kDouble:
        return Load<double>(row);
      case DataType::kString:
        return static_cast<double>(Load<std::int32_t>(row));
    }
    return 0.0;
  }

  /// Boxed value; string fields are decoded through the dictionary when one
  /// is attached, otherwise surfaced as their integer code.
  Value GetValue(RowId row) const;

  /// A sub-view of rows [first, first + count).
  ColumnView Slice(RowId first, std::int64_t count) const;

 private:
  template <typename T>
  T Load(RowId row) const {
    T out;
    std::memcpy(&out, data_ + static_cast<std::size_t>(row) * stride_,
                sizeof(T));
    return out;
  }

  DataType type_ = DataType::kInt32;
  const std::byte* data_ = nullptr;
  std::size_t stride_ = 0;
  std::int64_t row_count_ = 0;
  const Dictionary* dictionary_ = nullptr;
};

/// An owning, densely packed, growable column of fixed-width fields.
/// This is the unit data generators produce and the sample hierarchy copies.
class Column {
 public:
  Column(std::string name, DataType type);

  /// Convenience constructors from typed vectors.
  static Column FromInt32(std::string name, const std::vector<std::int32_t>& v);
  static Column FromInt64(std::string name, const std::vector<std::int64_t>& v);
  static Column FromDouble(std::string name, const std::vector<double>& v);
  static Column FromFloat(std::string name, const std::vector<float>& v);
  /// Builds a dictionary-encoded string column (creates the dictionary).
  static Column FromStrings(std::string name,
                            const std::vector<std::string>& v);

  const std::string& name() const { return name_; }
  DataType type() const { return type_; }
  std::size_t width() const { return width_; }
  std::int64_t row_count() const {
    return static_cast<std::int64_t>(data_.size() / width_);
  }

  void Reserve(std::int64_t rows);

  void AppendInt32(std::int32_t v) { AppendRaw(&v, sizeof(v)); }
  void AppendInt64(std::int64_t v) { AppendRaw(&v, sizeof(v)); }
  void AppendFloat(float v) { AppendRaw(&v, sizeof(v)); }
  void AppendDouble(double v) { AppendRaw(&v, sizeof(v)); }
  /// Interns into this column's dictionary (string columns only).
  void AppendString(std::string_view s);
  /// Appends a boxed value; must match the column type.
  void AppendValue(const Value& v);

  ColumnView View() const {
    return ColumnView(type_, data_.data(), width_, row_count(),
                      dictionary_.get());
  }

  /// Paged access over this column's storage (see Table::PagedColumnAt).
  /// Declared here, defined in paged_column.cc to keep headers acyclic.
  std::shared_ptr<class PagedColumnSource> PagedSource(
      std::int64_t rows_per_block = 0) const;

  Value GetValue(RowId row) const { return View().GetValue(row); }

  const std::shared_ptr<Dictionary>& dictionary() const { return dictionary_; }

  /// Raw bytes (for bulk copies into matrices and samples).
  const std::byte* raw_data() const { return data_.data(); }
  std::size_t raw_size() const { return data_.size(); }

 private:
  void AppendRaw(const void* src, std::size_t n);

  std::string name_;
  DataType type_;
  std::size_t width_;
  std::vector<std::byte> data_;
  TrackedBytes tracked_{MemoryCategory::kColumn};
  std::shared_ptr<Dictionary> dictionary_;  // non-null iff type == kString
};

}  // namespace dbtouch::storage

#endif  // DBTOUCH_STORAGE_COLUMN_H_
