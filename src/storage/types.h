// Data types. dbTouch storage is fixed-width per attribute (paper
// Section 2.6 "Physical Layout"): fixed widths make touch-location ->
// tuple-identifier arithmetic a pure computation with no metadata access.
// Variable-length strings are dictionary-encoded to a fixed-width code.

#ifndef DBTOUCH_STORAGE_TYPES_H_
#define DBTOUCH_STORAGE_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dbtouch::storage {

/// Tuple identifier: position of a tuple within its base column/table.
/// The paper's touch mapping ("id = n * t / o") produces these.
using RowId = std::int64_t;

enum class DataType : std::uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kFloat = 2,
  kDouble = 3,
  /// Dictionary-encoded string; stored as an int32 code.
  kString = 4,
};

/// Storage width in bytes of one field of `type`.
constexpr std::size_t TypeWidth(DataType type) {
  switch (type) {
    case DataType::kInt32:
      return 4;
    case DataType::kInt64:
      return 8;
    case DataType::kFloat:
      return 4;
    case DataType::kDouble:
      return 8;
    case DataType::kString:
      return 4;  // dictionary code
  }
  return 0;
}

/// True for types whose values order/aggregate numerically.
constexpr bool IsNumeric(DataType type) {
  return type != DataType::kString;
}

std::string_view DataTypeName(DataType type);

}  // namespace dbtouch::storage

#endif  // DBTOUCH_STORAGE_TYPES_H_
