#include "storage/types.h"

namespace dbtouch::storage {

std::string_view DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt32:
      return "int32";
    case DataType::kInt64:
      return "int64";
    case DataType::kFloat:
      return "float";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "?";
}

}  // namespace dbtouch::storage
