#include "storage/csv_loader.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/macros.h"
#include "common/string_util.h"

namespace dbtouch::storage {
namespace {

/// Splits one CSV record. Minimal quoting support: a field wrapped in
/// double quotes may contain the delimiter; "" inside quotes is a literal
/// quote.
std::vector<std::string> SplitRecord(const std::string& line,
                                     char delimiter) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += ch;
      }
    } else if (ch == '"' && current.empty()) {
      in_quotes = true;
    } else if (ch == delimiter) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += ch;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

bool ParseInt64(const std::string& s, std::int64_t* out) {
  if (s.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) {
    return false;
  }
  *out = v;
  return true;
}

/// Narrowest type that fits the value: int64 < double < string.
DataType TypeOfField(const std::string& s) {
  std::int64_t i;
  if (ParseInt64(s, &i)) {
    return DataType::kInt64;
  }
  double d;
  if (ParseDouble(s, &d)) {
    return DataType::kDouble;
  }
  return DataType::kString;
}

DataType Widen(DataType a, DataType b) {
  if (a == b) {
    return a;
  }
  if (a == DataType::kString || b == DataType::kString) {
    return DataType::kString;
  }
  return DataType::kDouble;  // int64 + double.
}

}  // namespace

Result<std::shared_ptr<Table>> LoadCsv(const std::string& text,
                                       const std::string& table_name,
                                       const CsvOptions& options) {
  std::istringstream in(text);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (!StripWhitespace(line).empty()) {
      lines.push_back(line);
    }
  }
  if (lines.empty()) {
    return Status::InvalidArgument("empty CSV input");
  }

  std::vector<std::string> names;
  std::size_t first_data = 0;
  if (options.has_header) {
    names = SplitRecord(lines[0], options.delimiter);
    first_data = 1;
    if (lines.size() == 1) {
      return Status::InvalidArgument("CSV has a header but no data rows");
    }
  } else {
    const std::size_t arity =
        SplitRecord(lines[0], options.delimiter).size();
    for (std::size_t c = 0; c < arity; ++c) {
      names.push_back("c" + std::to_string(c));
    }
  }
  const std::size_t arity = names.size();

  // Type inference over a sample of rows.
  std::vector<DataType> types(arity, DataType::kInt64);
  std::vector<bool> seen(arity, false);
  const std::size_t inference_end = std::min(
      lines.size(),
      first_data + static_cast<std::size_t>(options.inference_rows));
  for (std::size_t i = first_data; i < inference_end; ++i) {
    const auto fields = SplitRecord(lines[i], options.delimiter);
    if (fields.size() != arity) {
      return Status::InvalidArgument(
          "line " + std::to_string(i + 1) + ": expected " +
          std::to_string(arity) + " fields, got " +
          std::to_string(fields.size()));
    }
    for (std::size_t c = 0; c < arity; ++c) {
      const DataType t = TypeOfField(fields[c]);
      types[c] = seen[c] ? Widen(types[c], t) : t;
      seen[c] = true;
    }
  }

  std::vector<Field> schema_fields;
  for (std::size_t c = 0; c < arity; ++c) {
    schema_fields.push_back(Field{names[c], types[c]});
  }
  auto table = std::make_shared<Table>(table_name,
                                       Schema(std::move(schema_fields)),
                                       options.order);

  for (std::size_t i = first_data; i < lines.size(); ++i) {
    const auto fields = SplitRecord(lines[i], options.delimiter);
    if (fields.size() != arity) {
      return Status::InvalidArgument(
          "line " + std::to_string(i + 1) + ": expected " +
          std::to_string(arity) + " fields, got " +
          std::to_string(fields.size()));
    }
    std::vector<Value> row;
    row.reserve(arity);
    for (std::size_t c = 0; c < arity; ++c) {
      switch (types[c]) {
        case DataType::kInt64: {
          std::int64_t v;
          if (!ParseInt64(fields[c], &v)) {
            return Status::InvalidArgument(
                "line " + std::to_string(i + 1) + ", column '" + names[c] +
                "': '" + fields[c] + "' is not an integer");
          }
          row.push_back(Value(v));
          break;
        }
        case DataType::kDouble: {
          double v;
          if (!ParseDouble(fields[c], &v)) {
            return Status::InvalidArgument(
                "line " + std::to_string(i + 1) + ", column '" + names[c] +
                "': '" + fields[c] + "' is not numeric");
          }
          row.push_back(Value(v));
          break;
        }
        default:
          row.push_back(Value(fields[c]));
          break;
      }
    }
    DBTOUCH_RETURN_IF_ERROR(table->AppendRow(row));
  }
  return table;
}

Result<std::shared_ptr<Table>> LoadCsvFile(const std::string& path,
                                           const std::string& table_name,
                                           const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return LoadCsv(buf.str(), table_name, options);
}

std::string TableToCsv(const Table& table, char delimiter) {
  std::ostringstream out;
  const Schema& schema = table.schema();
  for (std::size_t c = 0; c < schema.num_fields(); ++c) {
    if (c > 0) {
      out << delimiter;
    }
    out << schema.field(c).name;
  }
  out << "\n";
  for (RowId r = 0; r < table.row_count(); ++r) {
    for (std::size_t c = 0; c < schema.num_fields(); ++c) {
      if (c > 0) {
        out << delimiter;
      }
      const Value v = table.GetValue(r, c);
      const std::string s = v.ToString();
      // Quote fields containing the delimiter or quotes.
      if (s.find(delimiter) != std::string::npos ||
          s.find('"') != std::string::npos) {
        out << '"';
        for (const char ch : s) {
          if (ch == '"') {
            out << '"';
          }
          out << ch;
        }
        out << '"';
      } else {
        out << s;
      }
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace dbtouch::storage
