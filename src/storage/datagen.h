// Synthetic data generators. The paper's evaluation uses a column of 10^7
// integers; its demo loads "alternative data sets with a varying set of
// properties and patterns" that the audience must discover by touch
// (Appendix A). These generators produce exactly such data: base
// distributions plus plantable patterns (outliers, level shifts, periodic
// structure) at known locations so tests and examples can verify that
// exploration finds them.

#ifndef DBTOUCH_STORAGE_DATAGEN_H_
#define DBTOUCH_STORAGE_DATAGEN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/column.h"
#include "storage/table.h"

namespace dbtouch::storage {

/// Uniform int32 in [lo, hi].
Column GenUniformInt32(std::string name, std::int64_t n, std::int32_t lo,
                       std::int32_t hi, std::uint64_t seed);

/// Gaussian doubles (mean, stddev).
Column GenGaussianDouble(std::string name, std::int64_t n, double mean,
                         double stddev, std::uint64_t seed);

/// Zipf-distributed int32 ranks in [0, num_distinct).
Column GenZipfInt32(std::string name, std::int64_t n,
                    std::int64_t num_distinct, double skew,
                    std::uint64_t seed);

/// Monotonic int64 sequence start, start+step, ... (timestamps, ids).
Column GenSequenceInt64(std::string name, std::int64_t n, std::int64_t start,
                        std::int64_t step);

/// amplitude * sin(2*pi*row/period) + gaussian noise. A smooth pattern the
/// eye catches while sliding.
Column GenSinusoidDouble(std::string name, std::int64_t n, double amplitude,
                         double period, double noise_stddev,
                         std::uint64_t seed);

/// Piecewise-constant segments: `segment_means[i]` + noise over equal-width
/// ranges. Models data whose properties differ by region (the adaptive
/// optimisation scenario in paper Section 2.9).
Column GenSegmentedDouble(std::string name, std::int64_t n,
                          const std::vector<double>& segment_means,
                          double noise_stddev, std::uint64_t seed);

/// Categorical strings drawn uniformly from `categories`.
Column GenCategorical(std::string name, std::int64_t n,
                      const std::vector<std::string>& categories,
                      std::uint64_t seed);

/// Overwrites a random `fraction` of rows of a double column with
/// `magnitude`-sized spikes; returns the planted row ids (sorted). This is
/// the "interesting pattern" the demo audience hunts for.
std::vector<RowId> InjectOutliers(Column& column, double fraction,
                                  double magnitude, std::uint64_t seed);

/// The paper's evaluation column: 10^7 uniform int32 values (Section 3).
/// `n` is overridable so unit tests stay fast.
Column MakePaperEvalColumn(std::int64_t n = 10'000'000,
                           std::uint64_t seed = 2013);

/// A sky-survey-like table for the astronomer scenario: object id, right
/// ascension, declination, brightness. Two kinds of planted anomalies:
/// isolated point transients (returned via `planted_transients`) and
/// contiguous burst regions — stretches of consecutive survey rows with
/// elevated brightness, the pattern a supernova leaves across a scan
/// (returned via `burst_regions`, inclusive row ranges). Bursts are what
/// sampled summaries can catch; point transients require fine-grained
/// drill-down.
std::shared_ptr<Table> MakeSkyTable(
    std::int64_t n, std::uint64_t seed,
    std::vector<RowId>* planted_transients,
    std::vector<std::pair<RowId, RowId>>* burst_regions = nullptr);

/// An IT-monitoring-like table: timestamp, host (categorical), latency_ms
/// (segmented + outliers), error_rate.
std::shared_ptr<Table> MakeMonitoringTable(std::int64_t n, std::uint64_t seed,
                                           std::vector<RowId>* planted_spikes);

}  // namespace dbtouch::storage

#endif  // DBTOUCH_STORAGE_DATAGEN_H_
