#include "storage/memory_tracker.h"

namespace dbtouch::storage {

MemoryTracker& MemoryTracker::Instance() {
  static MemoryTracker tracker;
  return tracker;
}

void MemoryTracker::OnAlloc(MemoryCategory category, std::int64_t bytes) {
  auto& counter =
      category == MemoryCategory::kMatrix ? matrix_bytes_ : column_bytes_;
  counter.fetch_add(bytes, std::memory_order_relaxed);
  // Peak maintenance: racy reads are fine — the peak only needs to be a
  // value resident_bytes() actually passed through.
  const std::int64_t now = resident_bytes();
  std::int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (now > peak && !peak_bytes_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void MemoryTracker::OnFree(MemoryCategory category, std::int64_t bytes) {
  auto& counter =
      category == MemoryCategory::kMatrix ? matrix_bytes_ : column_bytes_;
  counter.fetch_sub(bytes, std::memory_order_relaxed);
}

void TrackedBytes::Update(std::size_t bytes) {
  if (bytes == reported_) {
    return;
  }
  if (bytes > reported_) {
    MemoryTracker::Instance().OnAlloc(
        category_, static_cast<std::int64_t>(bytes - reported_));
  } else {
    MemoryTracker::Instance().OnFree(
        category_, static_cast<std::int64_t>(reported_ - bytes));
  }
  reported_ = bytes;
}

}  // namespace dbtouch::storage
