// Table: a named relation backed by a fixed-width Matrix plus the
// dictionaries of its string attributes. The table owns its layout
// (row-store or column-store); the rotate gesture swaps it.
//
// Out-of-core state: after a verified spill (storage::TableSpiller +
// core::SharedState::SpillTable with reclamation), ReleaseRaw() frees the
// matrix's cell storage and rebinds every remaining reader to per-column
// PagedColumnSource handles — GetValue pins the covering block, the raw
// ColumnView accessors become programmer errors, and the table's resident
// footprint drops to schema + dictionaries. That is what makes "base
// tables exceed RAM" literal: the BufferManager's byte budget bounds the
// only copies of base data left in memory.

#ifndef DBTOUCH_STORAGE_TABLE_H_
#define DBTOUCH_STORAGE_TABLE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/column.h"
#include "storage/matrix.h"
#include "storage/paged_column.h"
#include "storage/schema.h"

namespace dbtouch::storage {

class Table {
 public:
  Table(std::string name, Schema schema,
        MajorOrder order = MajorOrder::kColumnMajor);

  /// Bulk-builds a table from equal-length columns (the generator path).
  /// Dictionaries are taken over from the string columns.
  static Result<std::shared_ptr<Table>> FromColumns(
      std::string name, std::vector<Column> columns,
      MajorOrder order = MajorOrder::kColumnMajor);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  std::int64_t row_count() const { return storage_.row_count(); }
  MajorOrder layout() const { return storage_.order(); }

  /// Appends one tuple; string Values are interned into the column's
  /// dictionary. Returns InvalidArgument on arity/type mismatch and
  /// FailedPrecondition after ReleaseRaw (spilled tables are frozen).
  Status AppendRow(const std::vector<Value>& row);

  /// Cell with string decoding. Released tables serve this through the
  /// paged tier (one block pin per read); a paged read that fails past its
  /// bounded retries CHECK-fails — gesture paths that can shed pre-pin
  /// their blocks via the kernel's residency probe instead.
  Value GetValue(RowId row, std::size_t col) const;

  /// Strided view over column `col` with its dictionary attached.
  /// CHECK-fails on a released table — raw views cannot outlive the
  /// matrix; converted readers go through PagedColumnAt.
  ColumnView ColumnViewAt(std::size_t col) const;
  Result<ColumnView> ColumnViewByName(const std::string& name) const;

  /// Runs `fn` over column `col`'s raw view while holding the release
  /// lock shared, so ReleaseRaw cannot free the matrix mid-read. Returns
  /// FailedPrecondition once the raw storage is gone — the caller's cue
  /// to fail the read cleanly (cache::TableBlockProvider turns it into a
  /// permanent fetch error that sheds one gesture, not a session).
  Status WithRawColumn(
      std::size_t col, const std::function<Status(const ColumnView&)>& fn) const;

  /// Paged (block-at-a-time) access to column `col`: zero-copy slices of
  /// the in-memory storage, `rows_per_block` rows each (0 = one block).
  /// cache::BufferManager provides the bounded-memory equivalent backed by
  /// a block cache; both satisfy the same PagedColumnSource interface.
  /// On a released table this returns the column's rebind source (its
  /// fixed block geometry wins over `rows_per_block`). Resident-table
  /// sources are release-gated: live pins make a concurrent ReleaseRaw
  /// fail cleanly, and pins attempted after a release fail instead of
  /// slicing a freed matrix. The source borrows this table — callers
  /// (kernel object state, operators) hold the owning shared_ptr.
  std::shared_ptr<PagedColumnSource> PagedColumnAt(
      std::size_t col, std::int64_t rows_per_block = 0) const;

  const std::shared_ptr<Dictionary>& dictionary(std::size_t col) const {
    return dictionaries_[col];
  }

  /// Deep-copies column `col` out of the table (the paper's "drag a column
  /// out of a fat table" gesture produces one of these). Reads through the
  /// paged tier on a released table.
  Column ExtractColumn(std::size_t col) const;

  /// Direct storage access for the layout manager.
  Matrix& mutable_storage() { return storage_; }
  const Matrix& storage() const { return storage_; }

  /// Swaps in a replacement matrix (must have the same schema and row
  /// count); used when a layout rotation completes. FailedPrecondition on
  /// a released table (its data lives in the spill files; there is no
  /// matrix to rotate).
  Status ReplaceStorage(Matrix replacement);

  // ---- Spill reclamation ---------------------------------------------------

  /// Frees the matrix's cell storage and rebinds point reads to `paged`
  /// (one source per column, same order as the schema; geometries must
  /// match the table). Raw readers racing the release either drain first
  /// (transient reads — GetValue's matrix branch, WithRawColumn — hold
  /// the gate shared, which this takes exclusively) or make the release
  /// fail cleanly (a zero-copy PagedColumnAt pin still live: freeing
  /// under it would dangle the pinned view, so the caller retries once
  /// gestures pause). After the flip, raw reads and pins fail cleanly
  /// and GetValue pins pool blocks. A second call is FailedPrecondition.
  Status ReleaseRaw(std::vector<std::shared_ptr<PagedColumnSource>> paged);

  /// True once ReleaseRaw has run.
  bool raw_released() const {
    return raw_released_.load(std::memory_order_acquire);
  }

  /// Bytes of raw cell storage still resident (0 after ReleaseRaw) — the
  /// number tests assert drops when a spill reclaims.
  std::int64_t resident_raw_bytes() const {
    return static_cast<std::int64_t>(storage_.byte_size());
  }

 private:
  friend class GatedTableColumnSource;

  std::string name_;
  Schema schema_;
  Matrix storage_;
  std::vector<std::shared_ptr<Dictionary>> dictionaries_;

  /// Release gate: raw readers (GetValue's matrix branch, WithRawColumn)
  /// hold it shared for the duration of each access; ReleaseRaw holds it
  /// exclusive while freeing, so reclamation waits for active readers
  /// instead of freeing under them.
  mutable std::shared_mutex raw_mu_;
  std::atomic<bool> raw_released_{false};
  /// Live zero-copy pins into the matrix (GatedTableColumnSource).
  /// ReleaseRaw refuses to free while any exist; pins check the released
  /// flag after registering, so the two can never miss each other.
  mutable std::atomic<std::int64_t> zero_copy_pins_{0};
  /// Per-column paged rebinds, set once by ReleaseRaw and immutable after
  /// (readers see them only behind the acquire-load of raw_released_).
  std::vector<std::shared_ptr<PagedColumnSource>> paged_rebind_;
};

}  // namespace dbtouch::storage

#endif  // DBTOUCH_STORAGE_TABLE_H_
