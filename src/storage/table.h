// Table: a named relation backed by a fixed-width Matrix plus the
// dictionaries of its string attributes. The table owns its layout
// (row-store or column-store); the rotate gesture swaps it.

#ifndef DBTOUCH_STORAGE_TABLE_H_
#define DBTOUCH_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/column.h"
#include "storage/matrix.h"
#include "storage/paged_column.h"
#include "storage/schema.h"

namespace dbtouch::storage {

class Table {
 public:
  Table(std::string name, Schema schema,
        MajorOrder order = MajorOrder::kColumnMajor);

  /// Bulk-builds a table from equal-length columns (the generator path).
  /// Dictionaries are taken over from the string columns.
  static Result<std::shared_ptr<Table>> FromColumns(
      std::string name, std::vector<Column> columns,
      MajorOrder order = MajorOrder::kColumnMajor);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  std::int64_t row_count() const { return storage_.row_count(); }
  MajorOrder layout() const { return storage_.order(); }

  /// Appends one tuple; string Values are interned into the column's
  /// dictionary. Returns InvalidArgument on arity/type mismatch.
  Status AppendRow(const std::vector<Value>& row);

  /// Cell with string decoding.
  Value GetValue(RowId row, std::size_t col) const;

  /// Strided view over column `col` with its dictionary attached.
  ColumnView ColumnViewAt(std::size_t col) const;
  Result<ColumnView> ColumnViewByName(const std::string& name) const;

  /// Paged (block-at-a-time) access to column `col`: zero-copy slices of
  /// the in-memory storage, `rows_per_block` rows each (0 = one block).
  /// cache::BufferManager provides the bounded-memory equivalent backed by
  /// a block cache; both satisfy the same PagedColumnSource interface.
  std::shared_ptr<PagedColumnSource> PagedColumnAt(
      std::size_t col, std::int64_t rows_per_block = 0) const;

  const std::shared_ptr<Dictionary>& dictionary(std::size_t col) const {
    return dictionaries_[col];
  }

  /// Deep-copies column `col` out of the table (the paper's "drag a column
  /// out of a fat table" gesture produces one of these).
  Column ExtractColumn(std::size_t col) const;

  /// Direct storage access for the layout manager.
  Matrix& mutable_storage() { return storage_; }
  const Matrix& storage() const { return storage_; }

  /// Swaps in a replacement matrix (must have the same schema and row
  /// count); used when a layout rotation completes.
  Status ReplaceStorage(Matrix replacement);

 private:
  std::string name_;
  Schema schema_;
  Matrix storage_;
  std::vector<std::shared_ptr<Dictionary>> dictionaries_;
};

}  // namespace dbtouch::storage

#endif  // DBTOUCH_STORAGE_TABLE_H_
