#include "storage/pax.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/macros.h"

namespace dbtouch::storage {

PaxLayout::PaxLayout(std::vector<DataType> types) : types_(std::move(types)) {
  DBTOUCH_CHECK(!types_.empty());
  const std::size_t n = types_.size();
  // Placement order: wider minipages first, schema index as tie-break.
  // stable_sort on the index vector keeps the order deterministic.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return TypeWidth(types_[a]) > TypeWidth(types_[b]);
                   });
  prefix_bytes_.assign(n, 0);
  std::size_t offset_width = 0;
  for (const std::size_t column : order) {
    prefix_bytes_[column] = offset_width;
    offset_width += TypeWidth(types_[column]);
  }
  row_bytes_ = offset_width;
}

}  // namespace dbtouch::storage
