// Value: a scalar crossing module boundaries (results surfaced to the user,
// row appends, predicate constants). Hot loops never use Value; they read
// raw fixed-width fields through ColumnView.

#ifndef DBTOUCH_STORAGE_VALUE_H_
#define DBTOUCH_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "storage/types.h"

namespace dbtouch::storage {

class Value {
 public:
  Value() : v_(std::int64_t{0}) {}
  explicit Value(std::int64_t v) : v_(v) {}
  explicit Value(std::int32_t v) : v_(static_cast<std::int64_t>(v)) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(float v) : v_(static_cast<double>(v)) {}
  explicit Value(std::string v) : v_(std::move(v)) {}

  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  std::int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// Numeric view of the value for aggregation; strings are not numeric and
  /// CHECK-fail (callers aggregate string columns over dictionary codes at
  /// the ColumnView layer, never through Value).
  double ToDouble() const;

  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) = default;

 private:
  std::variant<std::int64_t, double, std::string> v_;
};

}  // namespace dbtouch::storage

#endif  // DBTOUCH_STORAGE_VALUE_H_
