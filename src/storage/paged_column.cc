#include "storage/paged_column.h"

#include <algorithm>

#include "common/macros.h"

namespace dbtouch::storage {

std::shared_ptr<PagedColumnSource> Column::PagedSource(
    std::int64_t rows_per_block) const {
  return std::make_shared<UnpagedColumnSource>(View(), rows_per_block);
}

void BlockPin::Release() {
  if (source_ != nullptr) {
    source_->UnpinBlock(block_);
    source_ = nullptr;
  }
}

std::int64_t PagedColumnSource::BlockRowCount(std::int64_t block) const {
  const RowId first = BlockFirstRow(block);
  return std::min<std::int64_t>(rows_per_block(), row_count() - first);
}

UnpagedColumnSource::UnpagedColumnSource(ColumnView column,
                                         std::int64_t rows_per_block)
    : column_(column),
      rows_per_block_(rows_per_block > 0
                          ? rows_per_block
                          : std::max<std::int64_t>(column.row_count(), 1)) {}

Result<BlockPin> UnpagedColumnSource::PinBlock(std::int64_t block,
                                               RowId /*row_hint*/) {
  if (block < 0 || block >= num_blocks()) {
    return Status::OutOfRange("block " + std::to_string(block) +
                              " out of range");
  }
  const RowId first = BlockFirstRow(block);
  return BlockPin(this, block, column_.Slice(first, BlockRowCount(block)),
                  first);
}

void UnpagedColumnSource::UnpinBlock(std::int64_t /*block*/) {}

const ColumnView& PagedColumnCursor::EnsureSlow(RowId row) {
  auto pin = source_->PinBlock(source_->BlockFor(row), row);
  DBTOUCH_CHECK(pin.ok());
  pin_ = std::move(*pin);
  span_view_ = pin_.view();
  span_first_ = pin_.first_row();
  span_last_ = pin_.last_row();
  return span_view_;
}

Value PagedColumnCursor::GetValue(RowId row) {
  return Ensure(row).GetValue(row - span_first_);
}

void PagedColumnCursor::Scan(
    RowId first, RowId last,
    const std::function<void(const ColumnView& rows, RowId first_row)>& fn) {
  const std::int64_t n = source_->row_count();
  first = std::max<RowId>(first, 0);
  last = std::min<RowId>(last, n - 1);
  for (RowId row = first; row <= last;) {
    const ColumnView& block = Ensure(row);
    const RowId begin = row - span_first_;
    const std::int64_t count =
        std::min<std::int64_t>(block.row_count() - begin, last - row + 1);
    fn(block.Slice(begin, count), row);
    row += count;
  }
}

}  // namespace dbtouch::storage
