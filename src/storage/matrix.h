// Matrix: the paper's storage structure — "the underlying storage layout
// used in our current dbTouch is matrixes. Each matrix may contain one or
// more columns and each column contains fixed-width fields. The matrixes
// are dense" (Section 2.6).
//
// A Matrix stores its cells either column-major (column store: each
// attribute contiguous) or row-major (row store: each tuple contiguous).
// The rotate gesture flips the major order (Section 2.8); layout/ performs
// that incrementally across two matrices.

#ifndef DBTOUCH_STORAGE_MATRIX_H_
#define DBTOUCH_STORAGE_MATRIX_H_

#include <cstddef>
#include <cstring>
#include <vector>

#include "storage/column.h"
#include "storage/memory_tracker.h"
#include "storage/schema.h"
#include "storage/types.h"
#include "storage/value.h"

namespace dbtouch::storage {

enum class MajorOrder : std::uint8_t {
  kColumnMajor = 0,  // column store
  kRowMajor = 1,     // row store
};

const char* MajorOrderName(MajorOrder order);

class Matrix {
 public:
  /// An empty matrix with the given shape. String fields store int32
  /// dictionary codes; dictionaries live in Table.
  Matrix(Schema schema, MajorOrder order);

  const Schema& schema() const { return schema_; }
  MajorOrder order() const { return order_; }
  std::int64_t row_count() const { return row_count_; }
  std::size_t num_columns() const { return schema_.num_fields(); }

  void Reserve(std::int64_t rows);

  /// Appends one tuple given raw per-field values (numerics and dictionary
  /// codes boxed in Value; string Values are not accepted here).
  void AppendRow(const std::vector<Value>& row);

  /// Appends `count` rows copied from field-wise source pointers (bulk
  /// load). `field_data[i]` must point at `count` densely packed fields of
  /// column i's width.
  void AppendRowsColumnar(const std::vector<const std::byte*>& field_data,
                          std::int64_t count);

  /// Raw cell access.
  const std::byte* CellPtr(RowId row, std::size_t col) const;
  std::byte* MutableCellPtr(RowId row, std::size_t col);

  /// Boxed cell value (string fields yield their int32 code).
  Value GetCell(RowId row, std::size_t col) const;
  void SetCell(RowId row, std::size_t col, const Value& v);

  /// Strided view of column `col`. Works in both orders; in row-major the
  /// stride is the full row width. This is what makes every operator
  /// layout-agnostic.
  ColumnView ColumnAt(std::size_t col,
                      const Dictionary* dictionary = nullptr) const;

  /// Bytes between consecutive fields of one column.
  std::size_t column_stride(std::size_t col) const;

  /// Full copy in the requested order (monolithic transpose — the baseline
  /// the incremental rotation of layout/ is measured against).
  Matrix ToOrder(MajorOrder order) const;

  /// Total bytes of cell storage.
  std::size_t byte_size() const { return data_.size(); }

  /// Frees the cell buffer — the spill tier's reclamation step: once every
  /// reader has been rebound to the paged tier (see Table::ReleaseRaw),
  /// keeping the matrix resident would defeat the buffer pool's byte
  /// budget. Shape metadata (schema, row count) survives so geometry
  /// queries keep answering; any cell access afterwards is a programmer
  /// error and CHECK-fails.
  void ReleaseStorage();
  bool storage_released() const { return released_; }

 private:
  std::size_t CellOffset(RowId row, std::size_t col) const;
  /// In column-major order, growth may require spreading columns out;
  /// this re-packs the buffer for a new capacity.
  void GrowCapacity(std::int64_t at_least_rows);

  Schema schema_;
  MajorOrder order_;
  std::int64_t row_count_ = 0;
  std::int64_t row_capacity_ = 0;
  bool released_ = false;
  std::vector<std::byte> data_;
  TrackedBytes tracked_{MemoryCategory::kMatrix};
};

}  // namespace dbtouch::storage

#endif  // DBTOUCH_STORAGE_MATRIX_H_
