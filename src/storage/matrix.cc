#include "storage/matrix.h"

#include <algorithm>

#include "common/macros.h"

namespace dbtouch::storage {

const char* MajorOrderName(MajorOrder order) {
  return order == MajorOrder::kColumnMajor ? "column-major" : "row-major";
}

Matrix::Matrix(Schema schema, MajorOrder order)
    : schema_(std::move(schema)), order_(order) {}

void Matrix::Reserve(std::int64_t rows) {
  if (rows > row_capacity_) {
    GrowCapacity(rows);
  }
}

void Matrix::GrowCapacity(std::int64_t at_least_rows) {
  DBTOUCH_CHECK(!released_);
  std::int64_t new_capacity = std::max<std::int64_t>(row_capacity_, 64);
  while (new_capacity < at_least_rows) {
    new_capacity *= 2;
  }
  const std::size_t row_width = schema_.row_width();
  std::vector<std::byte> new_data(static_cast<std::size_t>(new_capacity) *
                                  row_width);
  if (row_count_ > 0) {
    if (order_ == MajorOrder::kRowMajor) {
      std::memcpy(new_data.data(), data_.data(),
                  static_cast<std::size_t>(row_count_) * row_width);
    } else {
      // Column-major: each column region moves to its new, wider slot.
      std::size_t old_off = 0;
      std::size_t new_off = 0;
      for (std::size_t c = 0; c < schema_.num_fields(); ++c) {
        const std::size_t w = TypeWidth(schema_.field(c).type);
        std::memcpy(new_data.data() + new_off, data_.data() + old_off,
                    static_cast<std::size_t>(row_count_) * w);
        old_off += static_cast<std::size_t>(row_capacity_) * w;
        new_off += static_cast<std::size_t>(new_capacity) * w;
      }
    }
  }
  data_ = std::move(new_data);
  row_capacity_ = new_capacity;
  tracked_.Update(data_.capacity());
}

void Matrix::ReleaseStorage() {
  // swap-with-empty actually returns the capacity; clear() would keep it.
  std::vector<std::byte>().swap(data_);
  tracked_.Update(0);
  row_capacity_ = 0;
  released_ = true;
}

std::size_t Matrix::CellOffset(RowId row, std::size_t col) const {
  DBTOUCH_CHECK(!released_);
  DBTOUCH_CHECK(row >= 0 && row < row_count_ && col < schema_.num_fields());
  if (order_ == MajorOrder::kRowMajor) {
    return static_cast<std::size_t>(row) * schema_.row_width() +
           schema_.field_offset(col);
  }
  // Column-major: columns packed one after another at full capacity.
  std::size_t base = 0;
  for (std::size_t c = 0; c < col; ++c) {
    base += static_cast<std::size_t>(row_capacity_) *
            TypeWidth(schema_.field(c).type);
  }
  return base + static_cast<std::size_t>(row) *
                    TypeWidth(schema_.field(col).type);
}

void Matrix::AppendRow(const std::vector<Value>& row) {
  DBTOUCH_CHECK(row.size() == schema_.num_fields());
  if (row_count_ == row_capacity_) {
    GrowCapacity(row_count_ + 1);
  }
  ++row_count_;
  for (std::size_t c = 0; c < row.size(); ++c) {
    SetCell(row_count_ - 1, c, row[c]);
  }
}

void Matrix::AppendRowsColumnar(
    const std::vector<const std::byte*>& field_data, std::int64_t count) {
  DBTOUCH_CHECK(field_data.size() == schema_.num_fields());
  DBTOUCH_CHECK(count >= 0);
  if (count == 0) {
    return;
  }
  if (row_count_ + count > row_capacity_) {
    GrowCapacity(row_count_ + count);
  }
  const RowId first = row_count_;
  row_count_ += count;
  for (std::size_t c = 0; c < field_data.size(); ++c) {
    const std::size_t w = TypeWidth(schema_.field(c).type);
    if (order_ == MajorOrder::kColumnMajor) {
      std::memcpy(MutableCellPtr(first, c), field_data[c],
                  static_cast<std::size_t>(count) * w);
    } else {
      for (std::int64_t r = 0; r < count; ++r) {
        std::memcpy(MutableCellPtr(first + r, c),
                    field_data[c] + static_cast<std::size_t>(r) * w, w);
      }
    }
  }
}

const std::byte* Matrix::CellPtr(RowId row, std::size_t col) const {
  return data_.data() + CellOffset(row, col);
}

std::byte* Matrix::MutableCellPtr(RowId row, std::size_t col) {
  return data_.data() + CellOffset(row, col);
}

Value Matrix::GetCell(RowId row, std::size_t col) const {
  const std::byte* p = CellPtr(row, col);
  switch (schema_.field(col).type) {
    case DataType::kInt32:
    case DataType::kString: {
      std::int32_t v;
      std::memcpy(&v, p, sizeof(v));
      return Value(static_cast<std::int64_t>(v));
    }
    case DataType::kInt64: {
      std::int64_t v;
      std::memcpy(&v, p, sizeof(v));
      return Value(v);
    }
    case DataType::kFloat: {
      float v;
      std::memcpy(&v, p, sizeof(v));
      return Value(static_cast<double>(v));
    }
    case DataType::kDouble: {
      double v;
      std::memcpy(&v, p, sizeof(v));
      return Value(v);
    }
  }
  return Value();
}

void Matrix::SetCell(RowId row, std::size_t col, const Value& v) {
  std::byte* p = MutableCellPtr(row, col);
  switch (schema_.field(col).type) {
    case DataType::kInt32:
    case DataType::kString: {
      const std::int32_t x = static_cast<std::int32_t>(v.AsInt());
      std::memcpy(p, &x, sizeof(x));
      return;
    }
    case DataType::kInt64: {
      const std::int64_t x = v.AsInt();
      std::memcpy(p, &x, sizeof(x));
      return;
    }
    case DataType::kFloat: {
      const float x = static_cast<float>(v.ToDouble());
      std::memcpy(p, &x, sizeof(x));
      return;
    }
    case DataType::kDouble: {
      const double x = v.ToDouble();
      std::memcpy(p, &x, sizeof(x));
      return;
    }
  }
}

ColumnView Matrix::ColumnAt(std::size_t col,
                            const Dictionary* dictionary) const {
  DBTOUCH_CHECK(col < schema_.num_fields());
  if (row_count_ == 0) {
    return ColumnView(schema_.field(col).type, nullptr, column_stride(col), 0,
                      dictionary);
  }
  return ColumnView(schema_.field(col).type, CellPtr(0, col),
                    column_stride(col), row_count_, dictionary);
}

std::size_t Matrix::column_stride(std::size_t col) const {
  if (order_ == MajorOrder::kRowMajor) {
    return schema_.row_width();
  }
  return TypeWidth(schema_.field(col).type);
}

Matrix Matrix::ToOrder(MajorOrder order) const {
  Matrix out(schema_, order);
  out.Reserve(row_count_);
  out.row_count_ = row_count_;
  for (std::size_t c = 0; c < schema_.num_fields(); ++c) {
    const std::size_t w = TypeWidth(schema_.field(c).type);
    for (RowId r = 0; r < row_count_; ++r) {
      std::memcpy(out.MutableCellPtr(r, c), CellPtr(r, c), w);
    }
  }
  return out;
}

}  // namespace dbtouch::storage
