// CSV loading: the path real data takes into a dbTouch catalog. The
// paper's lineage (NoDB, adaptive loading [24, 4]) assumes analysts start
// from raw files; this loader parses delimited text into fixed-width
// tables, inferring column types when no schema is given.

#ifndef DBTOUCH_STORAGE_CSV_LOADER_H_
#define DBTOUCH_STORAGE_CSV_LOADER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace dbtouch::storage {

struct CsvOptions {
  char delimiter = ',';
  /// First line holds column names. Without it, columns are named c0..cN.
  bool has_header = true;
  /// Rows sampled for type inference (int64 -> double -> string, widened
  /// per column until every sampled value fits).
  std::int64_t inference_rows = 1000;
  /// Physical layout of the loaded table.
  MajorOrder order = MajorOrder::kColumnMajor;
};

/// Parses CSV text into a table named `table_name`. Types are inferred;
/// malformed rows (wrong arity, unparsable field for the inferred type)
/// yield InvalidArgument with the line number.
Result<std::shared_ptr<Table>> LoadCsv(const std::string& text,
                                       const std::string& table_name,
                                       const CsvOptions& options = {});

/// Reads `path` and delegates to LoadCsv.
Result<std::shared_ptr<Table>> LoadCsvFile(const std::string& path,
                                           const std::string& table_name,
                                           const CsvOptions& options = {});

/// Serialises a table back to CSV (header + rows) — the export side.
std::string TableToCsv(const Table& table, char delimiter = ',');

}  // namespace dbtouch::storage

#endif  // DBTOUCH_STORAGE_CSV_LOADER_H_
