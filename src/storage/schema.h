// Schema: ordered, named, typed fields of a table or matrix.

#ifndef DBTOUCH_STORAGE_SCHEMA_H_
#define DBTOUCH_STORAGE_SCHEMA_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/types.h"

namespace dbtouch::storage {

struct Field {
  std::string name;
  DataType type;

  friend bool operator==(const Field&, const Field&) = default;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  std::size_t num_fields() const { return fields_.size(); }
  const Field& field(std::size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, or NotFound.
  Result<std::size_t> FieldIndex(const std::string& name) const;

  /// Total bytes of one tuple (sum of fixed widths).
  std::size_t row_width() const { return row_width_; }

  /// Byte offset of field `i` within a row-major tuple.
  std::size_t field_offset(std::size_t i) const { return offsets_[i]; }

  /// Schema with just the selected fields, in the given order.
  Schema Project(const std::vector<std::size_t>& indices) const;

  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.fields_ == b.fields_;
  }

 private:
  std::vector<Field> fields_;
  std::vector<std::size_t> offsets_;
  std::size_t row_width_ = 0;
};

}  // namespace dbtouch::storage

#endif  // DBTOUCH_STORAGE_SCHEMA_H_
