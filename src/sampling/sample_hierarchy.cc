#include "sampling/sample_hierarchy.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/macros.h"

namespace dbtouch::sampling {

using storage::Column;
using storage::ColumnView;
using storage::RowId;

SampleHierarchy::SampleHierarchy(ColumnView base,
                                 const SampleHierarchyConfig& config)
    : base_(base), config_(config) {
  Init();
}

SampleHierarchy::SampleHierarchy(
    std::shared_ptr<storage::PagedColumnSource> base,
    const SampleHierarchyConfig& config)
    : paged_base_(std::move(base)), config_(config) {
  DBTOUCH_CHECK(paged_base_ != nullptr);
  // Metadata-only view: null data, real type/row-count/dictionary. Level
  // geometry questions read it; cell reads go through paged_base_.
  base_ = ColumnView(paged_base_->type(), nullptr,
                     storage::TypeWidth(paged_base_->type()),
                     paged_base_->row_count(), paged_base_->dictionary());
  Init();
}

void SampleHierarchy::Init() {
  // Count how many levels clear the minimum-row threshold.
  int levels = 1;
  while (levels <= config_.max_level &&
         (base_.row_count() >> levels) >= config_.min_level_rows) {
    ++levels;
  }
  num_levels_ = levels;
  for (int l = 1; l < num_levels_; ++l) {
    levels_.emplace_back("sample", base_.type());
  }
  materialized_.assign(levels_.size(), false);
  if (config_.eager) {
    EnsureLevel(num_levels_ - 1);
    for (int l = 1; l < num_levels_; ++l) {
      EnsureLevel(l);
    }
  }
}

bool SampleHierarchy::IsMaterialized(int level) const {
  DBTOUCH_CHECK(level >= 0 && level < num_levels_);
  if (level == 0) {
    return true;
  }
  return materialized_[static_cast<std::size_t>(level - 1)];
}

void SampleHierarchy::EnsureLevel(int level) {
  DBTOUCH_CHECK(level >= 0 && level < num_levels_);
  if (level == 0 || IsMaterialized(level)) {
    return;
  }
  // Build from the nearest materialised ancestor below (halving is cheap);
  // fall back to striding over the base.
  int from = level - 1;
  while (from > 0 && !IsMaterialized(from)) {
    --from;
  }
  // Materialise intermediate levels on the way up so the chain stays
  // usable for future queries at neighbouring granularities.
  for (int l = from + 1; l <= level; ++l) {
    if (IsMaterialized(l)) {
      continue;
    }
    Column& dst = levels_[static_cast<std::size_t>(l - 1)];
    const std::int64_t rows = LevelRows(l);
    dst.Reserve(rows);
    // One read path for every source tier: a paged base strides over
    // pinned blocks (the cursor keeps the block under the read pinned,
    // so a stride smaller than a block re-pins nothing and the build
    // streams through the cache); in-memory parents and raw bases wrap
    // in zero-copy cursors.
    storage::PagedColumnCursor src =
        (l - 1 == 0)
            ? (base_is_paged() ? storage::PagedColumnCursor(paged_base_)
                               : storage::PagedColumnCursor(base_))
            : storage::PagedColumnCursor(
                  levels_[static_cast<std::size_t>(l - 2)].View());
    const std::int64_t src_stride = (l - 1 == 0) ? LevelStride(l) : 2;
    for (std::int64_t s = 0; s < rows; ++s) {
      const RowId src_row = s * src_stride;
      switch (base_.type()) {
        case storage::DataType::kInt32:
        case storage::DataType::kString:
          dst.AppendInt32(src.GetInt32(src_row));
          break;
        case storage::DataType::kInt64:
          dst.AppendInt64(src.GetInt64(src_row));
          break;
        case storage::DataType::kFloat:
          dst.AppendFloat(src.GetFloat(src_row));
          break;
        case storage::DataType::kDouble:
          dst.AppendDouble(src.GetDouble(src_row));
          break;
      }
    }
    materialized_[static_cast<std::size_t>(l - 1)] = true;
  }
}

ColumnView SampleHierarchy::LevelView(int level) {
  DBTOUCH_CHECK(level >= 0 && level < num_levels_);
  if (level == 0) {
    // A paged base has no raw whole-column view; base-fidelity readers
    // hold the paged source instead (kernel objects, zone-map builds).
    DBTOUCH_CHECK(!base_is_paged());
    return base_;
  }
  EnsureLevel(level);
  // Re-attach the base dictionary so string samples still decode.
  const Column& c = levels_[static_cast<std::size_t>(level - 1)];
  return ColumnView(c.type(), c.raw_data(), c.width(), c.row_count(),
                    base_.dictionary());
}

std::int64_t SampleHierarchy::LevelRows(int level) const {
  DBTOUCH_CHECK(level >= 0 && level < num_levels_);
  if (level == 0) {
    return base_.row_count();
  }
  // ceil(base / 2^level): row 0 is always sampled.
  const std::int64_t stride = LevelStride(level);
  return (base_.row_count() + stride - 1) / stride;
}

RowId SampleHierarchy::ToBaseRow(int level, RowId sample_row) const {
  DBTOUCH_CHECK(level >= 0 && level < num_levels_);
  return sample_row << level;
}

RowId SampleHierarchy::FromBaseRow(int level, RowId base_row) const {
  DBTOUCH_CHECK(level >= 0 && level < num_levels_);
  const RowId clamped =
      std::clamp<RowId>(base_row, 0, std::max<RowId>(base_.row_count() - 1, 0));
  return clamped >> level;
}

std::size_t SampleHierarchy::sample_bytes() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (materialized_[i]) {
      total += levels_[i].raw_size();
    }
  }
  return total;
}

void SampleHierarchy::RebindBase(
    std::shared_ptr<storage::PagedColumnSource> base) {
  DBTOUCH_CHECK(base != nullptr);
  DBTOUCH_CHECK(base->type() == base_.type());
  DBTOUCH_CHECK(base->row_count() == base_.row_count());
  // Copy every level out of the raw base while it is still addressable —
  // "hierarchies already copy their sample levels"; the rebind just
  // finishes the job for levels a lazy hierarchy had not built yet.
  for (int l = 1; l < num_levels_; ++l) {
    EnsureLevel(l);
  }
  // base_ keeps its (now stale) data pointer but is never dereferenced
  // again: LevelView(0) CHECKs base_is_paged, and with every level
  // materialised EnsureLevel never reads the base. Leaving the view
  // untouched means concurrent readers of its metadata (row counts,
  // type, dictionary) race with nothing.
  paged_base_ = std::move(base);
}

}  // namespace dbtouch::sampling
