#include "sampling/sample_hierarchy.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"

namespace dbtouch::sampling {

using storage::Column;
using storage::ColumnView;
using storage::RowId;

SampleHierarchy::SampleHierarchy(ColumnView base,
                                 const SampleHierarchyConfig& config)
    : base_(base), config_(config) {
  // Count how many levels clear the minimum-row threshold.
  int levels = 1;
  while (levels <= config_.max_level &&
         (base_.row_count() >> levels) >= config_.min_level_rows) {
    ++levels;
  }
  num_levels_ = levels;
  for (int l = 1; l < num_levels_; ++l) {
    levels_.emplace_back("sample", base_.type());
  }
  materialized_.assign(levels_.size(), false);
  if (config_.eager) {
    EnsureLevel(num_levels_ - 1);
    for (int l = 1; l < num_levels_; ++l) {
      EnsureLevel(l);
    }
  }
}

bool SampleHierarchy::IsMaterialized(int level) const {
  DBTOUCH_CHECK(level >= 0 && level < num_levels_);
  if (level == 0) {
    return true;
  }
  return materialized_[static_cast<std::size_t>(level - 1)];
}

void SampleHierarchy::EnsureLevel(int level) {
  DBTOUCH_CHECK(level >= 0 && level < num_levels_);
  if (level == 0 || IsMaterialized(level)) {
    return;
  }
  // Build from the nearest materialised ancestor below (halving is cheap);
  // fall back to striding over the base.
  int from = level - 1;
  while (from > 0 && !IsMaterialized(from)) {
    --from;
  }
  // Materialise intermediate levels on the way up so the chain stays
  // usable for future queries at neighbouring granularities.
  for (int l = from + 1; l <= level; ++l) {
    if (IsMaterialized(l)) {
      continue;
    }
    const ColumnView src =
        (l - 1 == 0) ? base_
                     : levels_[static_cast<std::size_t>(l - 2)].View();
    Column& dst = levels_[static_cast<std::size_t>(l - 1)];
    const std::int64_t rows = LevelRows(l);
    dst.Reserve(rows);
    const std::int64_t src_stride = (l - 1 == 0) ? LevelStride(l) : 2;
    for (std::int64_t s = 0; s < rows; ++s) {
      const RowId src_row = s * src_stride;
      switch (base_.type()) {
        case storage::DataType::kInt32:
        case storage::DataType::kString:
          dst.AppendInt32(src.GetInt32(src_row));
          break;
        case storage::DataType::kInt64:
          dst.AppendInt64(src.GetInt64(src_row));
          break;
        case storage::DataType::kFloat:
          dst.AppendFloat(src.GetFloat(src_row));
          break;
        case storage::DataType::kDouble:
          dst.AppendDouble(src.GetDouble(src_row));
          break;
      }
    }
    materialized_[static_cast<std::size_t>(l - 1)] = true;
  }
}

ColumnView SampleHierarchy::LevelView(int level) {
  DBTOUCH_CHECK(level >= 0 && level < num_levels_);
  if (level == 0) {
    return base_;
  }
  EnsureLevel(level);
  // Re-attach the base dictionary so string samples still decode.
  const Column& c = levels_[static_cast<std::size_t>(level - 1)];
  return ColumnView(c.type(), c.raw_data(), c.width(), c.row_count(),
                    base_.dictionary());
}

std::int64_t SampleHierarchy::LevelRows(int level) const {
  DBTOUCH_CHECK(level >= 0 && level < num_levels_);
  if (level == 0) {
    return base_.row_count();
  }
  // ceil(base / 2^level): row 0 is always sampled.
  const std::int64_t stride = LevelStride(level);
  return (base_.row_count() + stride - 1) / stride;
}

RowId SampleHierarchy::ToBaseRow(int level, RowId sample_row) const {
  DBTOUCH_CHECK(level >= 0 && level < num_levels_);
  return sample_row << level;
}

RowId SampleHierarchy::FromBaseRow(int level, RowId base_row) const {
  DBTOUCH_CHECK(level >= 0 && level < num_levels_);
  const RowId clamped =
      std::clamp<RowId>(base_row, 0, std::max<RowId>(base_.row_count() - 1, 0));
  return clamped >> level;
}

std::size_t SampleHierarchy::sample_bytes() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (materialized_[i]) {
      total += levels_[i].raw_size();
    }
  }
  return total;
}

}  // namespace dbtouch::sampling
