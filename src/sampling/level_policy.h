// Level selection: "depending on the object size and gesture speed feed
// from the proper copy" (paper Section 2.6).
//
// The driver is the touch granularity: an object of height o cm on a
// device with p distinct positions/cm exposes P = o*p touchable positions
// over n tuples, so consecutive touch positions are n/P base rows apart.
// Feeding from the sample level whose stride matches that distance turns a
// slide into a sequential read of the sample copy. Fast gestures skip
// positions, so their effective stride — and the chosen level — grows.

#ifndef DBTOUCH_SAMPLING_LEVEL_POLICY_H_
#define DBTOUCH_SAMPLING_LEVEL_POLICY_H_

#include <cstdint>

namespace dbtouch::sampling {

struct LevelPolicyConfig {
  /// Never choose a level whose stride exceeds the touch distance by more
  /// than this factor (coarser reads lose entries the user pointed at).
  double max_overshoot = 1.0;
  /// Extra coarsening per unit of gesture speed, in positions skipped per
  /// registered event. 0 disables speed-based coarsening.
  double speed_weight = 1.0;
  /// Load shedding: extra levels dropped on top of the speed-derived
  /// choice. The touch server raises this for a session that is running
  /// behind its frame deadlines, trading precision for latency (the same
  /// trade the paper makes for fast gestures), and lowers it back to 0
  /// once the session catches up.
  int shed_levels = 0;
};

/// Chooses the sample level for a data object of `base_rows` tuples whose
/// visible extent offers `distinct_positions` touchable positions, while
/// the gesture is skipping `positions_per_event` positions per registered
/// touch (1.0 = finger lands on adjacent positions).
///
/// Returns a level in [0, num_levels). Level 0 (base data) is returned
/// whenever positions resolve individual tuples.
int ChooseLevel(std::int64_t base_rows, std::int64_t distinct_positions,
                double positions_per_event, int num_levels,
                const LevelPolicyConfig& config = {});

}  // namespace dbtouch::sampling

#endif  // DBTOUCH_SAMPLING_LEVEL_POLICY_H_
