#include "sampling/level_policy.h"

#include <algorithm>
#include <cmath>

namespace dbtouch::sampling {

int ChooseLevel(std::int64_t base_rows, std::int64_t distinct_positions,
                double positions_per_event, int num_levels,
                const LevelPolicyConfig& config) {
  if (base_rows <= 0 || distinct_positions <= 0 || num_levels <= 1) {
    return 0;
  }
  const int shed = std::max(config.shed_levels, 0);
  // Base rows between adjacent touch positions.
  double rows_per_position = static_cast<double>(base_rows) /
                             static_cast<double>(distinct_positions);
  // A gesture skipping k positions per event only samples every k-th
  // position; reads can be k times coarser without losing touched entries.
  const double speed = std::max(positions_per_event, 1.0);
  double target_stride =
      rows_per_position * (1.0 + config.speed_weight * (speed - 1.0));
  target_stride *= config.max_overshoot;
  if (target_stride <= 1.0) {
    // Shedding coarsens even when positions resolve individual tuples:
    // under overload a cheaper approximate answer beats a late exact one.
    return std::clamp(shed, 0, num_levels - 1);
  }
  const int level = static_cast<int>(std::floor(std::log2(target_stride)));
  return std::clamp(level + shed, 0, num_levels - 1);
}

}  // namespace dbtouch::sampling
