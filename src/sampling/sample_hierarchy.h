// SampleHierarchy: "store separately various different samples of the base
// data and depending on the object size and gesture speed feed from the
// proper copy, minimizing the auxiliary data reads" (paper Section 2.6,
// citing Sciborg's hierarchies of samples).
//
// Level 0 is the base data (never copied). Level l >= 1 materialises every
// 2^l-th tuple densely, so sample row s at level l is base row s << l. The
// power-of-two strides make levels nested: every tuple present at level l
// is also present at all levels below it.
//
// The base can live in two places:
//   - a raw ColumnView into the owning table's matrix (the classic
//     in-memory setup; LevelView(0) returns it directly), or
//   - a PagedColumnSource (a spilled/cold column): level builds pin
//     blocks instead of dereferencing the matrix, and LevelView(0) is a
//     programmer error — base-fidelity reads go through the paged source
//     the kernel already holds. RebindBase flips an in-memory hierarchy
//     to this mode before its matrix is reclaimed.

#ifndef DBTOUCH_SAMPLING_SAMPLE_HIERARCHY_H_
#define DBTOUCH_SAMPLING_SAMPLE_HIERARCHY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/column.h"
#include "storage/paged_column.h"
#include "storage/types.h"

namespace dbtouch::sampling {

struct SampleHierarchyConfig {
  /// Highest materialisable level (stride 2^max_level).
  int max_level = 16;
  /// Levels whose sample would fall below this row count are not built;
  /// tiny samples cost more in bookkeeping than they save in reads.
  std::int64_t min_level_rows = 256;
  /// If true, Build() materialises every level eagerly; otherwise levels
  /// are built on first use (EnsureLevel), modelling the paper's
  /// "incrementally create a new copy ... to answer future queries".
  bool eager = true;
};

class SampleHierarchy {
 public:
  /// Builds over `base`. The view must outlive the hierarchy (in dbTouch
  /// the kernel pins the owning Table for the life of the data object).
  SampleHierarchy(storage::ColumnView base,
                  const SampleHierarchyConfig& config = {});

  /// Builds over a paged base — the out-of-core rebuild path: level copies
  /// are filled by pinning blocks of `base` (streamed through whatever
  /// cache backs it), never by dereferencing a raw matrix pointer.
  SampleHierarchy(std::shared_ptr<storage::PagedColumnSource> base,
                  const SampleHierarchyConfig& config = {});

  /// Number of addressable levels (level 0 always exists).
  int num_levels() const { return num_levels_; }

  /// True once level `level`'s sample copy is materialised (level 0 always
  /// is, being the base itself).
  bool IsMaterialized(int level) const;

  /// Materialises `level` (and, as a side effect, the cheapest ancestor
  /// chain) if needed.
  void EnsureLevel(int level);

  /// View of the rows at `level`. Materialises lazily if needed.
  /// CHECK-fails for level 0 of a paged-base hierarchy (there is no raw
  /// whole-column view to return); use paged_base() there.
  storage::ColumnView LevelView(int level);

  /// Rows at `level` without materialising it.
  std::int64_t LevelRows(int level) const;

  /// Stride in base rows between consecutive sample rows at `level`.
  std::int64_t LevelStride(int level) const { return std::int64_t{1} << level; }

  /// Base row backing sample row `sample_row` of `level`.
  storage::RowId ToBaseRow(int level, storage::RowId sample_row) const;

  /// Sample row at `level` nearest to (at or before) `base_row`.
  storage::RowId FromBaseRow(int level, storage::RowId base_row) const;

  /// Bytes held by materialised sample copies (excludes the base).
  std::size_t sample_bytes() const;

  /// True when level 0 lives behind a PagedColumnSource (spilled base).
  bool base_is_paged() const { return paged_base_ != nullptr; }
  const std::shared_ptr<storage::PagedColumnSource>& paged_base() const {
    return paged_base_;
  }

  /// Switches level 0 from the raw base view to `base` — the spill
  /// reclamation step. Every level is materialised first (while the raw
  /// view is still valid: the caller runs this BEFORE releasing the
  /// matrix), so after the switch nothing ever dereferences the old view.
  /// `base` must have the same type and row count as the raw base.
  void RebindBase(std::shared_ptr<storage::PagedColumnSource> base);

 private:
  /// Shared tail of both constructors (base_ metadata already set).
  void Init();

  storage::ColumnView base_;
  /// Non-null iff the base is paged. base_ then carries metadata only
  /// (type, row count, dictionary) with a null data pointer.
  std::shared_ptr<storage::PagedColumnSource> paged_base_;
  SampleHierarchyConfig config_;
  int num_levels_;
  /// levels_[l-1] holds level l (level 0 is base_). Unmaterialised levels
  /// have row_count() == 0 and materialized_[l-1] == false.
  std::vector<storage::Column> levels_;
  std::vector<bool> materialized_;
};

}  // namespace dbtouch::sampling

#endif  // DBTOUCH_SAMPLING_SAMPLE_HIERARCHY_H_
