// ReplayHarness: paced, per-session gesture timelines replayed over real
// sockets against a running Gateway — the load side of bench_gateway and
// the gateway's end-to-end tests.
//
// Each session gets a deterministic ICEBOAT-style exploration log
// synthesized from the paper's gesture vocabulary: a seeded sequence of
// slides over its data object separated by think-time gaps, sampled at
// the simulated device's touch rate (sim::TraceBuilder). The timeline is
// then cut into one batch per display-frame interval and each batch is
// sent at its position on the session's own clock — so a harness that
// falls behind its send schedule (send lag) or a server that answers
// late (ack RTT) is visible separately from the server's internal
// quantum latency.
//
// Threads each drive an interleaved slice of the sessions with blocking
// request/response clients; one batch round-trip is cheap (the server
// only enqueues), so a thread comfortably paces hundreds of sessions.

#ifndef DBTOUCH_GATEWAY_REPLAY_H_
#define DBTOUCH_GATEWAY_REPLAY_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "obs/histogram.h"
#include "server/api.h"
#include "sim/touch_device.h"

namespace dbtouch::gateway {

struct ReplayConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Concurrent paced sessions, one connection each.
  int sessions = 64;
  /// Client threads; each drives sessions/threads sessions.
  int threads = 8;
  /// Gestures in each session's timeline.
  int gestures_per_session = 2;
  double slide_min_s = 0.4;
  double slide_max_s = 1.2;
  /// Think-time gap between gestures.
  double think_min_s = 0.05;
  double think_max_s = 0.3;
  /// Batch cut interval — one SubmitBatch per this many micros of
  /// session timeline. 0 = the device's touch-event interval (one batch
  /// per registered touch frame).
  sim::Micros batch_interval_us = 0;
  /// Server-side pacing flag forwarded in every SubmitBatchReq.
  bool paced = true;
  /// Client-side pacing: true sends each batch at its timeline slot,
  /// false sends back-to-back (flood mode; send lag is not recorded).
  bool pace_sends = true;
  std::uint64_t seed = 42;
  /// Table the sessions' objects bind to (must be registered).
  std::string table;
  /// Column for the column objects.
  std::string column;
  sim::TouchDeviceConfig device;
  /// Per-session result-stream tail to pull through SessionSnapshot
  /// after the drain (0 = skip the snapshot phase).
  std::int64_t snapshot_tail = 0;
};

struct ReplayResult {
  int sessions = 0;
  std::int64_t batches_sent = 0;
  std::int64_t events_sent = 0;
  std::int64_t events_accepted = 0;
  /// Admission rejections reported by SubmitBatchResp — the server's
  /// backpressure signal.
  std::int64_t events_rejected = 0;
  /// Failed calls (connect/submit/snapshot errors).
  std::int64_t errors = 0;
  /// Results observed via the post-drain SessionSnapshot phase.
  std::int64_t snapshot_results = 0;
  /// Client-observed SubmitBatch round-trip time (us).
  obs::HistogramSnapshot ack_rtt_us;
  /// How late each batch left relative to its timeline slot (us).
  obs::HistogramSnapshot send_lag_us;
  /// Wall time of the paced replay phase (not setup/drain).
  double replay_wall_s = 0.0;
  /// Server stats fetched over the wire after the drain.
  server::api::StatsResp server_stats;
};

class ReplayHarness {
 public:
  explicit ReplayHarness(ReplayConfig config);

  /// Opens sessions, replays every timeline to completion, drains the
  /// server and tears the sessions down. One call per harness.
  Result<ReplayResult> Run();

 private:
  ReplayConfig config_;
};

}  // namespace dbtouch::gateway

#endif  // DBTOUCH_GATEWAY_REPLAY_H_
